// Fundamental scalar types shared by every timing model in the library.
#pragma once

#include <cstdint>

namespace bridge {

/// Simulated core-clock cycle count. All timing models in the library are
/// expressed in cycles of the *core* clock domain; off-core components
/// (DRAM, buses) convert their nanosecond parameters to core cycles when a
/// platform is instantiated, so a single counter suffices.
using Cycle = std::uint64_t;

/// Simulated physical byte address.
using Addr = std::uint64_t;

/// Sentinel for "no cycle yet" / "never".
inline constexpr Cycle kCycleNever = ~Cycle{0};

/// Cache line size used throughout the SoC models. Both Rocket/BOOM and the
/// SpacemiT K1 / SG2042 use 64-byte lines, so this is a project constant
/// rather than a per-platform parameter.
inline constexpr unsigned kLineBytes = 64;
inline constexpr unsigned kLineShift = 6;

/// Line-align an address.
constexpr Addr lineAddr(Addr a) { return a & ~Addr{kLineBytes - 1}; }

/// Convert seconds <-> cycles at a given core frequency in GHz.
constexpr double cyclesToSeconds(Cycle c, double freq_ghz) {
  return static_cast<double>(c) / (freq_ghz * 1e9);
}
constexpr Cycle nsToCycles(double ns, double freq_ghz) {
  const double c = ns * freq_ghz;
  return c <= 0.0 ? Cycle{0} : static_cast<Cycle>(c + 0.5);
}

}  // namespace bridge
