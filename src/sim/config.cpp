#include "sim/config.h"

#include <cctype>
#include <charconv>
#include <sstream>

namespace bridge {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void Config::set(std::string_view key, std::string_view value) {
  values_.insert_or_assign(std::string(key), std::string(value));
}

bool Config::has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::getString(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Config::getInt(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  const std::string& s = it->second;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> Config::getDouble(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  // std::from_chars for double is not available everywhere; use strtod on a
  // NUL-terminated copy.
  const std::string& s = it->second;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty()) return std::nullopt;
  return v;
}

std::optional<bool> Config::getBool(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return std::nullopt;
}

std::string Config::getString(std::string_view key,
                              std::string_view dflt) const {
  auto v = getString(key);
  return v ? *v : std::string(dflt);
}

std::int64_t Config::getInt(std::string_view key, std::int64_t dflt) const {
  auto v = getInt(key);
  return v ? *v : dflt;
}

double Config::getDouble(std::string_view key, double dflt) const {
  auto v = getDouble(key);
  return v ? *v : dflt;
}

bool Config::getBool(std::string_view key, bool dflt) const {
  auto v = getBool(key);
  return v ? *v : dflt;
}

bool Config::parse(std::string_view text, std::string* error) {
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": missing '='";
      }
      return false;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": empty key";
      }
      return false;
    }
    set(key, value);
  }
  return true;
}

void Config::forEach(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  for (const auto& [k, v] : values_) fn(k, v);
}

std::string Config::toText() const {
  std::ostringstream out;
  for (const auto& [k, v] : values_) out << k << " = " << v << '\n';
  return out.str();
}

}  // namespace bridge
