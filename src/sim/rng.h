// Deterministic pseudo-random number generation for workload synthesis.
//
// Every stochastic stream in the simulator (random address patterns,
// unpredictable branch outcomes, particle placement, ...) owns an explicitly
// seeded Xorshift64Star instance, so simulations are bit-reproducible across
// runs and platforms. std::mt19937 is deliberately avoided: its distributions
// are not specified bit-exactly across standard library implementations.
#pragma once

#include <cstdint>

namespace bridge {

/// xorshift64* generator (Vigna, 2016): tiny state, passes BigCrush for the
/// purposes of workload pattern synthesis, and fully portable.
class Xorshift64Star {
 public:
  explicit Xorshift64Star(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed != 0 ? seed : 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t nextBelow(std::uint64_t bound) {
    // Multiply-shift reduction (Lemire); bias is negligible for our bounds.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool nextBool(double p) { return nextDouble() < p; }

  std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// splitmix64: used to expand one user seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace bridge
