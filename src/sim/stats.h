// Named statistics registry.
//
// Every timing model registers counters (and occasionally distributions)
// against a StatRegistry owned by the SoC. The harness reads them after a
// run to compute derived metrics (IPC, miss rates, DRAM row-hit rate, ...)
// and the tests assert on them to verify model behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace bridge {

/// A monotonically increasing 64-bit event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A scalar sample accumulator tracking count / sum / min / max, enough to
/// derive means without storing samples.
class Distribution {
 public:
  void sample(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  void reset();

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Registry of counters and distributions, addressed by dotted path names
/// such as "core0.l1d.miss" or "dram.ch0.row_hit". Registration returns a
/// stable reference; names are unique (re-registering a name returns the
/// existing object so components can share counters).
class StatRegistry {
 public:
  Counter& counter(std::string_view name);
  Distribution& distribution(std::string_view name);

  /// Value of a counter, or 0 if it was never registered. Useful in tests.
  std::uint64_t counterValue(std::string_view name) const;
  bool hasCounter(std::string_view name) const;

  /// Snapshot of all counters sorted by name (for dumps / regression logs).
  std::vector<std::pair<std::string, std::uint64_t>> allCounters() const;

  void resetAll();

 private:
  // std::map keeps iteration deterministic and references stable.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Distribution, std::less<>> distributions_;
};

}  // namespace bridge
