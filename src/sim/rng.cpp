#include "sim/rng.h"

// All members are defined inline in the header; this translation unit exists
// so the module has a home for future out-of-line additions and to anchor the
// library's debug symbols for the RNG types.
namespace bridge {}
