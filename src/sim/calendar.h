// Busy-interval calendar for shared-resource occupancy.
//
// Multi-core co-simulation processes each core's micro-ops in bursts whose
// resource charges are spread over a window of cycles (an out-of-order
// core's loads issue far apart from its fetches). A scalar `next_free`
// cursor would let a reservation made at a *future* cycle block another
// core's *earlier* access — serializing cores that should overlap. The
// calendar instead records recent busy intervals and places each new
// reservation in the first real gap, so interleaved charges from skewed
// cores only contend when they genuinely collide.
//
// The window is bounded: intervals older than the `window` most recent are
// forgotten, which can let a very late straggler overlap forgotten history
// (slightly optimistic, never deadlocking). With the co-simulation's skew
// bound this is negligible.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/types.h"

namespace bridge {

class BusyCalendar {
 public:
  explicit BusyCalendar(unsigned window = 64) : window_(window) {}

  /// Reserve `duration` cycles starting no earlier than `ready`; returns
  /// the start cycle of the reservation. duration must be > 0.
  Cycle reserve(Cycle ready, Cycle duration);

  /// Where would reserve() place this request? Does not mutate.
  Cycle peek(Cycle ready, Cycle duration) const;

  /// Total cycles ever reserved (utilization accounting).
  std::uint64_t busyCycles() const { return busy_cycles_; }

  /// End of the latest reservation (diagnostics / tests).
  Cycle horizon() const {
    return intervals_.empty() ? 0 : intervals_.back().end;
  }

  std::size_t trackedIntervals() const { return intervals_.size(); }

 private:
  struct Interval {
    Cycle start;
    Cycle end;  // exclusive
  };

  unsigned window_;
  std::deque<Interval> intervals_;  // sorted by start, non-overlapping
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace bridge
