// Leveled diagnostic logging.
//
// The simulator is silent by default; tests and examples raise the level to
// inspect model decisions. Logging goes through a single global sink so the
// harness can redirect it.
//
// Thread safety: level and sink are atomics (the level check is lock-free),
// and sink invocations are serialized, so concurrent SoC runs on sweep
// workers never interleave records. Level/sink *changes* are global: set
// them before launching a parallel sweep, not during one.
#pragma once

#include <sstream>
#include <string>

namespace bridge {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log level; messages above it are dropped before formatting.
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Sink invoked for every emitted record. Defaults to stderr.
using LogSink = void (*)(LogLevel, const std::string&);
void setLogSink(LogSink sink);
void resetLogSink();

namespace detail {
void emit(LogLevel level, const std::string& msg);
}

}  // namespace bridge

// Stream-style macros: BRIDGE_LOG(kInfo) << "l1 miss @" << addr;
#define BRIDGE_LOG(level_enum)                                            \
  for (bool bridge_log_once =                                             \
           static_cast<int>(::bridge::LogLevel::level_enum) <=            \
           static_cast<int>(::bridge::logLevel());                        \
       bridge_log_once; bridge_log_once = false)                          \
  ::bridge::detail::LogLine(::bridge::LogLevel::level_enum)

namespace bridge::detail {

/// Accumulates one record and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace bridge::detail
