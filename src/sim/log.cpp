#include "sim/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace bridge {
namespace {

// Level and sink are read on every log call site from any sweep worker
// thread, so both are atomics; the level check in the BRIDGE_LOG macro
// stays lock-free. Sink *invocations* are serialized by a mutex so
// concurrent SoC runs cannot interleave records inside a custom sink
// (test sinks append to strings; stderr lines could tear on some libcs).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

void defaultSink(LogLevel level, const std::string& msg) {
  static const char* const kNames[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::fprintf(stderr, "[bridge:%s] %s\n",
               kNames[static_cast<int>(level)], msg.c_str());
}

std::atomic<LogSink> g_sink{&defaultSink};

std::mutex& emitMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }
void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void setLogSink(LogSink sink) {
  g_sink.store(sink ? sink : &defaultSink, std::memory_order_release);
}
void resetLogSink() {
  g_sink.store(&defaultSink, std::memory_order_release);
}

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) >
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  const LogSink sink = g_sink.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(emitMutex());
  sink(level, msg);
}
}  // namespace detail

}  // namespace bridge
