#include "sim/log.h"

#include <cstdio>

namespace bridge {
namespace {

LogLevel g_level = LogLevel::kWarn;

void defaultSink(LogLevel level, const std::string& msg) {
  static const char* const kNames[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::fprintf(stderr, "[bridge:%s] %s\n",
               kNames[static_cast<int>(level)], msg.c_str());
}

LogSink g_sink = &defaultSink;

}  // namespace

LogLevel logLevel() { return g_level; }
void setLogLevel(LogLevel level) { g_level = level; }

void setLogSink(LogSink sink) { g_sink = sink ? sink : &defaultSink; }
void resetLogSink() { g_sink = &defaultSink; }

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <= static_cast<int>(g_level)) g_sink(level, msg);
}
}  // namespace detail

}  // namespace bridge
