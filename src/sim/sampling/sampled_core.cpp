#include "sim/sampling/sampled_core.h"

#include <cassert>
#include <cmath>

namespace bridge {

SampledCore::SampledCore(std::unique_ptr<CoreModel> inner,
                         const SamplingParams& params, StatRegistry* stats,
                         const std::string& stat_prefix)
    : inner_(std::move(inner)), params_(params), exact_(params.exact()) {
  assert(inner_ != nullptr);
  assert(stats != nullptr);
  assert(params_.enabled);
  const std::string p = stat_prefix + ".sampling.";
  c_intervals_ = &stats->counter(p + "intervals");
  c_ff_ops_ = &stats->counter(p + "ff_ops");
  c_measured_ops_ = &stats->counter(p + "measured_ops");
  c_measured_cycles_ = &stats->counter(p + "measured_cycles");
  c_skipped_cycles_ = &stats->counter(p + "skipped_cycles");
}

double SampledCore::estimatedCpi() const {
  // Phase-local recency: average the last kCpiWindow closed windows, never
  // reaching back past the current phase's first window. A phase that has
  // not measured yet (short inter-MPI segment whose window offset fell past
  // the drain) borrows the most recent windows of earlier phases instead —
  // recent phases share execution character; a lifetime average would let
  // a cold warmup instance bleed into everything after it.
  const std::size_t end = measurements_.size();
  std::size_t begin = end > kCpiWindow ? end - kCpiWindow : 0;
  if (begin < phase_first_ && phase_first_ < end) begin = phase_first_;
  std::uint64_t ops = 0;
  Cycle cycles = 0;
  for (std::size_t i = begin; i < end; ++i) {
    ops += measurements_[i].ops;
    cycles += measurements_[i].cycles;
  }
  if (ops > 0) return static_cast<double>(cycles) / static_cast<double>(ops);
  return 1.0;  // nothing measured yet anywhere
}

void SampledCore::beginInterval() {
  window_off_ = samplingWindowOffset(params_, interval_index_);
  c_intervals_->add();
}

void SampledCore::beginMeasure() {
  // Re-arm every per-window accumulator; see the header on why a stale one
  // is not a rounding error but a systematic CPI skew.
  measure_begin_cycle_ = inner_->frontier();
  measured_skip_window_ = 0;
  measured_ops_window_ = 0;
  measuring_ = true;
}

void SampledCore::endMeasure() {
  Cycle cycles = inner_->frontier() - measure_begin_cycle_;
  cycles -= std::min(cycles, measured_skip_window_);
  measured_ops_ += measured_ops_window_;
  measured_cycles_ += cycles;
  c_measured_ops_->add(measured_ops_window_);
  c_measured_cycles_->add(cycles);
  measurements_.push_back(
      {interval_index_, window_off_, measured_ops_window_, cycles});
  measuring_ = false;
  // Deferred billing: the fast-forward gap *before* this window is billed
  // only now, at an estimate that includes the window itself. Billing the
  // gap on entry at the previous windows' CPI is left-endpoint integration
  // of the CPI trajectory — on a falling curve (caches filling, the burst
  // after an MPI exchange) it systematically overestimates; bracketing the
  // gap with the window that follows it makes the estimate trapezoidal.
  flushFastForward();
}

void SampledCore::flushFastForward() {
  if (ff_pending_ == 0) return;
  const Cycle skip = static_cast<Cycle>(std::llround(
      static_cast<double>(ff_pending_) * estimatedCpi()));
  c_skipped_cycles_->add(skip);
  // Target the frontier, not the issue clock: skipTo(now + skip) could land
  // below an in-flight completion, making the fast-forwarded ops free on
  // the clock the windows (and drain) are measured on.
  inner_->skipTo(inner_->frontier() + skip);
  ff_pending_ = 0;
}

void SampledCore::consume(const MicroOp& op) {
  if (exact_) {
    inner_->consume(op);
    return;
  }
  if (pos_ == 0) beginInterval();

  const std::uint64_t measure_begin = window_off_ + params_.warmup_ops;
  const std::uint64_t window_end = window_off_ + params_.detailedOps();
  if (pos_ >= window_off_ && pos_ < window_end) {
    if (pos_ >= measure_begin && !measuring_) beginMeasure();
    inner_->consume(op);
    if (measuring_) ++measured_ops_window_;
  } else {
    inner_->warmOp(op);
    ++ff_pending_;
    ++ff_retired_;
    c_ff_ops_->add();
  }

  ++pos_;
  if (measuring_ && pos_ >= window_end) endMeasure();
  if (pos_ >= params_.interval_ops) {
    pos_ = 0;
    ++interval_index_;
  }
}

Cycle SampledCore::drain() {
  if (!exact_) {
    // Close an open window first: the drain frontier jump is real cost
    // (charged directly through the inner clock) but amortizing it over a
    // handful of measured ops would poison the CPI estimate. The pending
    // fast-forward flushes at the *old* phase's estimate — those ops ran
    // before the boundary.
    if (measuring_) endMeasure();
    flushFastForward();
    // A drain marks a phase boundary (end of trace, an MPI call site): the
    // next segment re-measures before extrapolating and the estimator
    // forgets everything before it, so a cold warmup instance or a
    // pre-barrier phase can never contaminate the cycles extrapolated
    // after it.
    if (pos_ != 0) {
      pos_ = 0;
      ++interval_index_;
    }
    phase_first_ = measurements_.size();
  }
  return inner_->drain();
}

void SampledCore::skipTo(Cycle c) {
  if (measuring_) {
    // Exclude the wait from the window on the same clock the window is
    // measured on: the frontier delta across the skip, not `c - now()`.
    const Cycle before = inner_->frontier();
    inner_->skipTo(c);
    const Cycle after = inner_->frontier();
    measured_skip_window_ += after - before;
    return;
  }
  inner_->skipTo(c);
}

}  // namespace bridge
