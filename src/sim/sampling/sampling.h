// Sampled-simulation parameters (DESIGN.md §5i).
//
// Sampled mode trades accuracy for raw simulator speed: execution is split
// into fixed-length intervals of micro-ops, and inside each interval only a
// short *detailed window* runs through the full timing model. Everything
// outside the window is *fast-forwarded* — micro-ops still update the
// functional state that carries long-range history (cache and TLB residency,
// branch-predictor tables, prefetcher strides) but skip all timing: no MSHR,
// bus, bank-calendar, or DRAM charges. The detailed window opens with
// `warmup_ops` of unmeasured detailed execution (refilling pipeline and
// queue occupancy after the jump) followed by `measure_ops` of measured
// execution; the cycles a fast-forwarded segment would have taken are
// extrapolated from the measured windows' CPI, each gap billed when the
// window after it closes so the estimate brackets the gap (sampled_core.h).
// The window's position inside each interval is a deterministic seeded
// phase so periodic program structure cannot alias with the sampling
// period.
//
// The parameters live on SocConfig and serialize through the same
// "key = value" override mechanism as every other knob (`sampling.*`), so a
// sampled job's fingerprint can never alias a full-fidelity one — the
// result cache, the serve daemon's dedup, and tuner checkpoints all keep
// them apart for free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bridge {

class Config;

struct SamplingParams {
  bool enabled = false;
  /// Interval length in micro-ops (per core). Each interval contributes one
  /// detailed window; everything else fast-forwards. The stock 20000/300/1000
  /// split is the widest interval that keeps every bench/sim_speed kernel
  /// inside its error bound (MicroBench 5%, NPB/LAMMPS 8%) while clearing
  /// >=3x on the NPB class.
  std::uint64_t interval_ops = 20000;
  /// Unmeasured detailed ops at the start of the window (pipeline/queue
  /// refill after the fast-forward jump).
  std::uint64_t warmup_ops = 300;
  /// Measured detailed ops per window; their CPI extrapolates the interval.
  std::uint64_t measure_ops = 1000;
  /// Phase seed for the per-interval window offset.
  std::uint64_t seed = 1;

  std::uint64_t detailedOps() const { return warmup_ops + measure_ops; }

  /// A window at least as long as the interval degenerates to exact full
  /// simulation (every op detailed) — cycles are bit-identical to a
  /// disabled run, only the fingerprint differs.
  bool exact() const { return !enabled || detailedOps() >= interval_ops; }

  /// False (with a message) on nonsense: enabled with interval_ops == 0 or
  /// measure_ops == 0.
  bool validate(std::string* error = nullptr) const;

  /// Canonical spec string: "off" or
  /// "interval=<N>,measure=<N>,warmup=<N>,seed=<N>".
  std::string specString() const;

  /// Fingerprint fragment: "<interval>/<measure>/<warmup>/<seed>". Only
  /// ever folded into describeSocConfig() when enabled, so full-fidelity
  /// fingerprints are byte-identical to pre-sampling builds.
  std::string describe() const;

  /// BRIDGE_SAMPLING environment knob ("on", "off", or a spec string). A
  /// malformed value disables sampling with one warning — an env typo must
  /// degrade to full fidelity, never crash a sweep.
  static SamplingParams fromEnv();

  bool operator==(const SamplingParams&) const = default;
};

/// Parse "on" / "off" / "interval=N,measure=N,warmup=N,seed=N" (keys
/// optional, any order; unknown keys and malformed numbers are errors).
/// On success *out holds the params (enabled unless spec is "off").
bool parseSamplingSpec(std::string_view spec, SamplingParams* out,
                       std::string* error = nullptr);

/// Set the `sampling.*` SocConfig override keys for `p` (enabled or not).
void applySamplingOverrides(Config* overrides, const SamplingParams& p);

/// True when `overrides` carries any explicit `sampling.*` key — such a
/// spec's fidelity was pinned by its author and engine-level sampling must
/// not rewrite it.
bool hasSamplingOverrides(const Config& overrides);

/// Offset of the detailed window inside interval `index`, in
/// [0, interval_ops - detailedOps()]. Interval 0 is always 0 (measure
/// before the first extrapolation); later intervals take a seeded
/// deterministic phase so strided program structure cannot hide from the
/// sampler.
std::uint64_t samplingWindowOffset(const SamplingParams& p,
                                   std::uint64_t index);

}  // namespace bridge
