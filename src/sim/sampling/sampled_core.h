// Sampled-execution decorator around a detailed core model.
//
// SampledCore owns an inner CoreModel and splits its op stream into
// fixed-length intervals (sampling.h). Ops inside the interval's detailed
// window go to inner->consume() (full timing); everything else goes to
// inner->warmOp() (functional state only) and is *extrapolated*: the
// accumulated fast-forwarded op count is converted to cycles at the
// measured CPI and applied with inner->skipTo(). Billing is *deferred*:
// a gap is flushed when the window after it closes, so the estimate
// brackets the gap (trapezoidal) instead of projecting the previous
// windows forward (left-endpoint, which systematically overestimates any
// falling CPI trajectory — caches filling, the burst after an MPI
// exchange). Only the tail of a phase, which no window follows, is billed
// at the phase's trailing estimate.
//
// Measurement hygiene (the part that is easy to get wrong):
//  * windows are measured on the *retirement frontier* (frontier()), not
//    the issue clock: both core models defer cost (posted stores, load
//    completions nothing waits on) until drain, so the issue clock sees
//    CPI near 1 on store- or miss-bound kernels while the real cost is an
//    order of magnitude larger. Fast-forward flushes likewise advance the
//    frontier by exactly the extrapolated skip;
//  * every per-window accumulator (begin cycle, op count, skip correction)
//    is re-armed in beginMeasure() — a stale accumulator from the previous
//    interval would fold old cycles into the new window and skew every
//    later extrapolation;
//  * skipTo() calls arriving during a measure window (the MPI runtime
//    resuming this rank after a wait) are tracked and subtracted from the
//    window's cycles — wait cycles are already charged directly, counting
//    them again through the CPI estimate would double-bill every
//    fast-forwarded segment;
//  * drain() closes an open window *before* draining, so the drain
//    frontier jump (completing a long in-flight miss amortized over few
//    measured ops) cannot inflate the estimate;
//  * the CPI estimate is *phase-local*: it averages only the most recent
//    windows (kCpiWindow) of the current phase, and a drain — the end of a
//    trace or an MPI call site, exactly where execution character changes —
//    starts a new phase. Deferred billing keeps the phase honest: the ops
//    before a phase's first window are billed at that window's own CPI, so
//    a cold warmup instance can never bleed its CPI into the warm timed
//    phase that follows. A phase too short to close any window borrows the
//    most recent windows of earlier phases (not a lifetime average).
//
// With a window at least as long as the interval (params.exact()) every op
// is detailed and the wrapper is a pure passthrough: cycle counts are
// bit-identical to an unwrapped run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "sim/sampling/sampling.h"
#include "sim/stats.h"

namespace bridge {

class SampledCore final : public CoreModel {
 public:
  /// `stat_prefix` matches the inner core's (e.g. "core0"); sampling
  /// counters register under "<prefix>.sampling.*".
  SampledCore(std::unique_ptr<CoreModel> inner, const SamplingParams& params,
              StatRegistry* stats, const std::string& stat_prefix);

  void consume(const MicroOp& op) override;
  void warmOp(const MicroOp& op) override { inner_->warmOp(op); }
  Cycle now() const override { return inner_->now(); }
  Cycle frontier() const override { return inner_->frontier(); }
  Cycle drain() override;
  void skipTo(Cycle c) override;
  std::uint64_t retired() const override {
    return inner_->retired() + ff_retired_;
  }

  CoreModel& inner() { return *inner_; }
  const SamplingParams& params() const { return params_; }

  /// One record per closed measure window, in order. Tests use these to
  /// prove the per-window accumulators reset at interval boundaries.
  struct Measurement {
    std::uint64_t interval = 0;       // interval index
    std::uint64_t window_offset = 0;  // ops into the interval
    std::uint64_t ops = 0;            // measured ops in this window
    Cycle cycles = 0;                 // skip-corrected cycles
  };
  const std::vector<Measurement>& measurements() const {
    return measurements_;
  }

  /// CPI estimate the next fast-forward flush would use: the average over
  /// the last kCpiWindow closed windows of the current phase.
  double estimatedCpi() const;

  /// Windows folded into the CPI estimate. Two, so a deferred gap flush
  /// averages exactly its bracketing windows (trapezoid) and a tail flush
  /// stays local to the trajectory instead of dragging half the phase's
  /// history into it.
  static constexpr std::size_t kCpiWindow = 2;

 private:
  void beginInterval();
  void beginMeasure();
  void endMeasure();
  void flushFastForward();

  std::unique_ptr<CoreModel> inner_;
  SamplingParams params_;
  bool exact_ = false;

  std::uint64_t interval_index_ = 0;
  std::uint64_t pos_ = 0;         // ops into the current interval
  std::uint64_t window_off_ = 0;  // this interval's window offset
  std::size_t phase_first_ = 0;   // first measurement of the current phase

  std::uint64_t ff_pending_ = 0;  // warmed ops awaiting extrapolation
  std::uint64_t ff_retired_ = 0;  // warmed ops total (for retired())

  bool measuring_ = false;
  Cycle measure_begin_cycle_ = 0;
  Cycle measured_skip_window_ = 0;
  std::uint64_t measured_ops_window_ = 0;

  std::uint64_t measured_ops_ = 0;  // closed-window totals (CPI estimate)
  Cycle measured_cycles_ = 0;

  std::vector<Measurement> measurements_;

  Counter* c_intervals_;
  Counter* c_ff_ops_;
  Counter* c_measured_ops_;
  Counter* c_measured_cycles_;
  Counter* c_skipped_cycles_;
};

}  // namespace bridge
