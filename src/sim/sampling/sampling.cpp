#include "sim/sampling/sampling.h"

#include <cstdlib>

#include "sim/config.h"
#include "sim/log.h"
#include "sim/rng.h"

namespace bridge {

bool SamplingParams::validate(std::string* error) const {
  if (!enabled) return true;
  const auto fail = [&](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (interval_ops == 0) return fail("sampling interval_ops must be >= 1");
  if (measure_ops == 0) return fail("sampling measure_ops must be >= 1");
  return true;
}

std::string SamplingParams::specString() const {
  if (!enabled) return "off";
  return "interval=" + std::to_string(interval_ops) +
         ",measure=" + std::to_string(measure_ops) +
         ",warmup=" + std::to_string(warmup_ops) +
         ",seed=" + std::to_string(seed);
}

std::string SamplingParams::describe() const {
  return std::to_string(interval_ops) + '/' + std::to_string(measure_ops) +
         '/' + std::to_string(warmup_ops) + '/' + std::to_string(seed);
}

namespace {

bool parseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 18) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

bool parseSamplingSpec(std::string_view spec, SamplingParams* out,
                       std::string* error) {
  const auto fail = [&](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  SamplingParams p;
  if (spec.empty()) return fail("empty sampling spec");
  if (spec == "off" || spec == "0") {
    *out = p;
    return true;
  }
  p.enabled = true;
  if (spec == "on" || spec == "1") {
    *out = p;
    return true;
  }
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view field = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return fail("malformed sampling field '" + std::string(field) +
                  "' (expected key=value)");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    std::uint64_t* slot = nullptr;
    if (key == "interval") {
      slot = &p.interval_ops;
    } else if (key == "measure") {
      slot = &p.measure_ops;
    } else if (key == "warmup") {
      slot = &p.warmup_ops;
    } else if (key == "seed") {
      slot = &p.seed;
    } else {
      return fail("unknown sampling key '" + std::string(key) + "'");
    }
    if (!parseU64(value, slot)) {
      return fail("invalid sampling value '" + std::string(value) + "' for " +
                  std::string(key));
    }
  }
  std::string why;
  if (!p.validate(&why)) return fail(std::move(why));
  *out = p;
  return true;
}

SamplingParams SamplingParams::fromEnv() {
  const char* env = std::getenv("BRIDGE_SAMPLING");
  if (env == nullptr || *env == '\0') return {};
  SamplingParams p;
  std::string error;
  if (!parseSamplingSpec(env, &p, &error)) {
    BRIDGE_LOG(kWarn) << "BRIDGE_SAMPLING='" << env << "' is malformed ("
                      << error << "); sampling disabled";
    return {};
  }
  return p;
}

void applySamplingOverrides(Config* overrides, const SamplingParams& p) {
  overrides->set("sampling.enabled", p.enabled ? "true" : "false");
  overrides->set("sampling.interval_ops", std::to_string(p.interval_ops));
  overrides->set("sampling.measure_ops", std::to_string(p.measure_ops));
  overrides->set("sampling.warmup_ops", std::to_string(p.warmup_ops));
  overrides->set("sampling.seed", std::to_string(p.seed));
}

bool hasSamplingOverrides(const Config& overrides) {
  bool found = false;
  overrides.forEach([&](const std::string& key, const std::string&) {
    if (key.rfind("sampling.", 0) == 0) found = true;
  });
  return found;
}

std::uint64_t samplingWindowOffset(const SamplingParams& p,
                                   std::uint64_t index) {
  const std::uint64_t detailed = p.detailedOps();
  if (detailed >= p.interval_ops || index == 0) return 0;
  const std::uint64_t slack = p.interval_ops - detailed;
  // One splitmix64 draw per interval keyed on (seed, index): the phase is a
  // pure function of the spec, so any worker count and any resume replays
  // the identical interval layout.
  SplitMix64 mix(p.seed ^ (index * 0x9E3779B97F4A7C15ull));
  return mix.next() % (slack + 1);
}

}  // namespace bridge
