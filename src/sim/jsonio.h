// Minimal JSON reading/writing shared by every module that persists state
// to disk (the sweep result cache, the tuner checkpoints).
//
// The writer emits a strict subset of JSON: objects, arrays, ASCII-escaped
// strings, unsigned integers, and %.17g doubles (which round-trip exactly
// through the parser, a property the tuner's bit-identical resume relies
// on). The parser is a recursive-descent reader for exactly that subset; it
// only ever reads files this code wrote, so anything unexpected simply
// fails the parse and callers treat the file as absent/corrupt. Nesting is
// capped at kMaxParseDepth so a hostile or corrupted file (e.g. a megabyte
// of '[') fails the parse instead of overflowing the C++ stack —
// tests/test_jsonio_fuzz.cpp drives this with truncated, mis-escaped, and
// deeply nested inputs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace bridge::jsonio {

/// Append `s` as a double-quoted, escaped JSON string.
void appendEscaped(std::string* out, std::string_view s);

/// %.17g (exact double round-trip); non-finite values degrade to "0" so the
/// output stays parseable.
std::string formatDouble(double v);

/// Max object/array nesting the Parser accepts. Far above anything the
/// writers emit (checkpoints nest 3 deep) and far below stack exhaustion.
inline constexpr std::size_t kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Parse `{ "key": <value>, ... }`, calling on_field for each field. The
  /// callback must consume the field's value from the parser.
  bool parseObject(
      const std::function<bool(const std::string&, Parser&)>& on_field);

  /// Parse `[ <value>, ... ]`, calling on_element for each element.
  bool parseArray(const std::function<bool(Parser&)>& on_element);

  bool parseString(std::string* out);
  bool parseUint64(std::uint64_t* out);
  bool parseDouble(double* out);

  /// True once only trailing whitespace remains.
  bool atEnd();

 private:
  void skipWs();
  bool consume(char c);

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace bridge::jsonio
