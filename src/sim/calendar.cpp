#include "sim/calendar.h"

#include <algorithm>
#include <cassert>

namespace bridge {

Cycle BusyCalendar::peek(Cycle ready, Cycle duration) const {
  assert(duration > 0);
  // At-or-past-horizon requests never collide — the common case for a
  // monotone access stream, and the hot one in bench/sim_speed profiles.
  if (intervals_.empty() || ready >= intervals_.back().end) return ready;
  Cycle candidate = ready;
  for (const Interval& iv : intervals_) {
    if (candidate + duration <= iv.start) break;
    candidate = std::max(candidate, iv.end);
  }
  return candidate;
}

Cycle BusyCalendar::reserve(Cycle ready, Cycle duration) {
  assert(duration > 0);
  busy_cycles_ += duration;

  // At-or-past-horizon reservations append (or extend the last interval)
  // without scanning; placement is identical to the general path below.
  if (intervals_.empty() || ready >= intervals_.back().end) {
    if (!intervals_.empty() && intervals_.back().end == ready) {
      intervals_.back().end = ready + duration;
    } else {
      intervals_.push_back(Interval{ready, ready + duration});
      if (intervals_.size() > window_) intervals_.pop_front();
    }
    return ready;
  }

  // Find the first gap at or after `ready` that fits `duration`.
  Cycle candidate = ready;
  std::size_t insert_at = 0;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const Interval& iv = intervals_[i];
    if (candidate + duration <= iv.start) {
      // Fits entirely before this interval.
      insert_at = i;
      break;
    }
    candidate = std::max(candidate, iv.end);
    insert_at = i + 1;
  }

  // Merge with neighbours when adjacent to keep the deque small.
  const Cycle end = candidate + duration;
  if (insert_at > 0 && intervals_[insert_at - 1].end == candidate) {
    intervals_[insert_at - 1].end = end;
    // May now touch the next interval.
    if (insert_at < intervals_.size() &&
        intervals_[insert_at].start == end) {
      intervals_[insert_at - 1].end = intervals_[insert_at].end;
      intervals_.erase(intervals_.begin() +
                       static_cast<std::ptrdiff_t>(insert_at));
    }
  } else if (insert_at < intervals_.size() &&
             intervals_[insert_at].start == end) {
    intervals_[insert_at].start = candidate;
  } else {
    intervals_.insert(
        intervals_.begin() + static_cast<std::ptrdiff_t>(insert_at),
        Interval{candidate, end});
  }

  while (intervals_.size() > window_) intervals_.pop_front();
  return candidate;
}

}  // namespace bridge
