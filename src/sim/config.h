// Minimal typed key/value configuration store with a text parser.
//
// Platform definitions in src/platforms are plain structs; this Config class
// exists for the *tooling* layer: examples and the tuning-loop harness accept
// "key = value" override files (the moral equivalent of Chipyard config
// fragments) and apply them on top of a base platform.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace bridge {

/// Flat string->string map with typed accessors. Keys use dotted paths,
/// e.g. "core.fetch_width" or "dram.kind".
class Config {
 public:
  void set(std::string_view key, std::string_view value);
  bool has(std::string_view key) const;

  std::optional<std::string> getString(std::string_view key) const;
  std::optional<std::int64_t> getInt(std::string_view key) const;
  std::optional<double> getDouble(std::string_view key) const;
  std::optional<bool> getBool(std::string_view key) const;

  /// Typed accessors with defaults.
  std::string getString(std::string_view key, std::string_view dflt) const;
  std::int64_t getInt(std::string_view key, std::int64_t dflt) const;
  double getDouble(std::string_view key, double dflt) const;
  bool getBool(std::string_view key, bool dflt) const;

  std::size_t size() const { return values_.size(); }

  /// Visit every (key, value) pair in sorted key order.
  void forEach(const std::function<void(const std::string& key,
                                        const std::string& value)>& fn) const;

  /// Parse "key = value" lines. '#' starts a comment; blank lines are
  /// ignored; later duplicates win. Returns false (and stops) on a malformed
  /// line, reporting it via *error if non-null.
  bool parse(std::string_view text, std::string* error = nullptr);

  /// Serialize back to "key = value" lines, sorted by key.
  std::string toText() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace bridge
