#include "sim/stats.h"

#include <algorithm>

namespace bridge {

void Distribution::sample(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Distribution::reset() {
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Counter& StatRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Distribution& StatRegistry::distribution(std::string_view name) {
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_.emplace(std::string(name), Distribution{}).first;
  }
  return it->second;
}

std::uint64_t StatRegistry::counterValue(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

bool StatRegistry::hasCounter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

std::vector<std::pair<std::string, std::uint64_t>> StatRegistry::allCounters()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

void StatRegistry::resetAll() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, d] : distributions_) d.reset();
}

}  // namespace bridge
