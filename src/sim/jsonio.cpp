#include "sim/jsonio.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bridge::jsonio {

void appendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Bare "inf"/"nan" are not JSON; keep the file parseable regardless.
  std::string s = buf;
  if (s.find_first_not_of("0123456789+-.eE") != std::string::npos) s = "0";
  return s;
}

namespace {

/// Decrements the shared nesting counter on every exit path; the nested
/// field/element callbacks recurse through the same Parser object, so the
/// counter tracks the true recursion depth.
struct DepthGuard {
  explicit DepthGuard(std::size_t* depth) : depth_(depth) { ++*depth_; }
  ~DepthGuard() { --*depth_; }
  std::size_t* depth_;
};

}  // namespace

bool Parser::parseObject(
    const std::function<bool(const std::string&, Parser&)>& on_field) {
  if (depth_ >= kMaxParseDepth) return false;
  DepthGuard guard(&depth_);
  skipWs();
  if (!consume('{')) return false;
  skipWs();
  if (consume('}')) return true;
  for (;;) {
    std::string key;
    if (!parseString(&key)) return false;
    skipWs();
    if (!consume(':')) return false;
    if (!on_field(key, *this)) return false;
    skipWs();
    if (consume(',')) {
      skipWs();
      continue;
    }
    return consume('}');
  }
}

bool Parser::parseArray(const std::function<bool(Parser&)>& on_element) {
  if (depth_ >= kMaxParseDepth) return false;
  DepthGuard guard(&depth_);
  skipWs();
  if (!consume('[')) return false;
  skipWs();
  if (consume(']')) return true;
  for (;;) {
    if (!on_element(*this)) return false;
    skipWs();
    if (consume(',')) {
      skipWs();
      continue;
    }
    return consume(']');
  }
}

bool Parser::parseString(std::string* out) {
  skipWs();
  if (!consume('"')) return false;
  out->clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return true;
    if (c == '\\') {
      if (pos_ >= text_.size()) return false;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (code > 0x7F) return false;  // we only ever emit ASCII escapes
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    } else {
      out->push_back(c);
    }
  }
  return false;
}

bool Parser::parseUint64(std::uint64_t* out) {
  skipWs();
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
  if (pos_ == start) return false;
  *out = std::strtoull(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr, 10);
  return true;
}

bool Parser::parseDouble(double* out) {
  skipWs();
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          std::string_view("+-.eE").find(text_[pos_]) !=
              std::string_view::npos)) {
    ++pos_;
  }
  if (pos_ == start) return false;
  *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                     nullptr);
  return true;
}

bool Parser::atEnd() {
  skipWs();
  return pos_ == text_.size();
}

void Parser::skipWs() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool Parser::consume(char c) {
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

}  // namespace bridge::jsonio
