// Hardware-variability decorator around a core model.
//
// HwVarCore owns an inner CoreModel (the detailed core, or a SampledCore
// wrapping one — variability wraps outermost so it sees every consumed op)
// and injects the timing consequences of the HwVarParams model at
// fixed-length op-interval boundaries:
//
//  * DVFS stretch: the work cycles accumulated over the interval are
//    scaled by the interval's frequency state — an interval at 80% of
//    nominal costs work * 100/80 cycles. The state holding for an interval
//    is decided at its open (hwvarDvfsStep); a state change charges the
//    transition latency.
//  * Thermal throttling: an integer heat accumulator gains per executed op
//    and cools per interval. Crossing the threshold clamps the frequency to
//    the slowest DVFS state until heat falls to half the threshold
//    (hysteresis) — the classic sustained-load throttle ramp.
//  * OS noise: one periodic tick per tick_ops executed ops, plus a
//    preemption slice on boundaries where the preemption hash fires.
//
// Accounting hygiene: "work" is the inner clock's advance over the
// interval *minus* cycles skipped in from outside (skipTo() — the MPI
// runtime resuming this rank after a wait). Wait cycles are real time, not
// core activity; stretching them would make a communication-bound rank
// look thermally loaded. Stall injection itself goes through
// inner_->skipTo(), which a SampledCore underneath already treats as an
// external skip, so injected noise can never pollute a CPI estimate.
// drain() closes the open partial interval *after* draining, so deferred
// cost surfacing at the drain (posted stores, in-flight misses) is
// stretched like the work it is.
//
// Every decision is a pure hash of (seed, stream, physical core, interval)
// — see hwvar.h — so runs replay bit-identically at any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/core.h"
#include "sim/hwvar/hwvar.h"
#include "sim/stats.h"

namespace bridge {

class HwVarCore final : public CoreModel {
 public:
  /// `stat_prefix` matches the inner core's (e.g. "core0"); variability
  /// counters register under "<prefix>.hwvar.*".
  HwVarCore(std::unique_ptr<CoreModel> inner, const HwVarParams& params,
            unsigned core_id, StatRegistry* stats,
            const std::string& stat_prefix);

  void consume(const MicroOp& op) override;
  void warmOp(const MicroOp& op) override { inner_->warmOp(op); }
  Cycle now() const override { return inner_->now(); }
  Cycle frontier() const override { return inner_->frontier(); }
  Cycle drain() override;
  void skipTo(Cycle c) override;
  std::uint64_t retired() const override { return inner_->retired(); }

  CoreModel& inner() { return *inner_; }
  const HwVarParams& params() const { return params_; }

  /// Physical core identity feeding the hash streams (core_id + placement).
  std::uint64_t physicalCore() const { return physical_core_; }
  /// DVFS state holding for the currently open interval.
  unsigned dvfsState() const { return state_; }
  /// Thermal accumulator and throttle latch, for tests.
  std::uint64_t heat() const { return heat_; }
  bool throttled() const { return throttled_; }

 private:
  /// Close the open interval at the current inner clock: stretch its work
  /// by the interval's frequency, pay OS noise, update the heat model,
  /// decide the next interval's DVFS state, and re-arm the accumulators.
  void closeInterval();

  std::unique_ptr<CoreModel> inner_;
  HwVarParams params_;
  std::uint64_t physical_core_;

  std::uint64_t interval_index_ = 0;
  std::uint64_t pos_ = 0;           // ops into the open interval
  Cycle interval_begin_ = 0;        // inner clock at interval open
  Cycle external_skip_ = 0;         // skipTo() advance since interval open
  std::uint64_t total_ops_ = 0;     // lifetime ops (drives the tick)
  std::uint64_t ticks_paid_ = 0;

  unsigned state_ = 0;              // DVFS state of the open interval
  std::uint64_t heat_ = 0;
  bool throttled_ = false;

  Counter* c_intervals_;
  Counter* c_stall_cycles_;    // total injected (stretch + noise + latency)
  Counter* c_stretch_cycles_;  // DVFS/thermal stretch component
  Counter* c_transitions_;
  Counter* c_throttled_;
  Counter* c_ticks_;
  Counter* c_preemptions_;
};

}  // namespace bridge
