// Hardware-variability parameters (DESIGN.md §5j).
//
// The paper treats each silicon platform as one deterministic machine; real
// chips are not. A K1 or SG2042 run sits inside a cloud of run-to-run and
// core-to-core spread caused by per-core DVFS governors, thermal throttling
// under sustained load, and OS noise (timer ticks, preemption by other
// processes). HwVarParams models the *causes*: per-core frequency states
// with transition latencies, a thermal-throttling curve driven by an
// activity-accumulator heat model, and OS-noise injection (a periodic tick
// plus randomly placed preemption slices).
//
// Everything is deterministic and seeded. Each per-interval decision — does
// the DVFS governor shift state, which state does it pick, does a
// preemption land here — is a pure splitmix64 hash of (seed, stream,
// physical core, interval index), the FaultPlan idiom: no generator state
// is shared across cores or jobs, so any `--jobs N`, any remote worker
// count, and any resume replays bit-identically. "Physical core" is the
// simulated core id plus a `placement` offset, so the same kernel can be
// pinned to different cores of the modeled chip purely by spec — that is
// what makes core-to-core spread studies possible on single-core jobs.
//
// The parameters live on SocConfig and serialize through the same
// "key = value" override mechanism as every other knob (`hwvar.*`), so a
// variability run's fingerprint can never alias a deterministic one — the
// result cache, the serve daemon's dedup, and tuner checkpoints all keep
// them apart for free, exactly like sampling (sim/sampling).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bridge {

class Config;

struct HwVarParams {
  bool enabled = false;
  /// Root seed for every per-interval hash draw.
  std::uint64_t seed = 1;
  /// Decision interval in micro-ops (per core): DVFS shifts, preemption
  /// slices, and thermal updates land on these boundaries.
  std::uint64_t interval_ops = 10000;
  /// Physical-core offset: simulated core c behaves like physical core
  /// c + placement. Distinct placements give distinct DVFS/noise streams —
  /// the core-to-core axis of a variability study.
  std::uint64_t placement = 0;

  // --- DVFS ---
  /// Number of frequency states (1 disables DVFS wander). State 0 is
  /// nominal frequency; state levels-1 runs at min_freq_pct.
  std::uint64_t levels = 4;
  /// Frequency of the slowest state as a percentage of nominal, in
  /// [1, 100]. Intermediate states interpolate linearly.
  std::uint64_t min_freq_pct = 70;
  /// Per-mille probability (0..1000) that the governor re-draws the state
  /// at an interval boundary.
  std::uint64_t dvfs_shift_pm = 150;
  /// Stall cycles charged on a state change (PLL relock / voltage ramp).
  std::uint64_t dvfs_latency_cycles = 400;

  // --- Thermal throttling ---
  /// Heat units accrued per executed op, per-mille (an op at nominal
  /// frequency adds therm_heat_pm/1000 units; a throttled interval's ops
  /// run cooler, scaled by min_freq_pct/100).
  std::uint64_t therm_heat_pm = 300;
  /// Heat units dissipated per op-slot per interval, per-mille. Cooling
  /// below heating under sustained load is what builds the throttle ramp.
  std::uint64_t therm_cool_pm = 250;
  /// Heat level that trips throttling (clamp to the slowest DVFS state).
  /// Recovery at half this level (hysteresis). 0 disables the thermal model.
  std::uint64_t therm_threshold = 100000;

  // --- OS noise ---
  /// Periodic scheduler tick: one tick per tick_ops executed ops.
  /// 0 disables the tick.
  std::uint64_t tick_ops = 2500;
  /// Cycles stolen by each tick.
  std::uint64_t tick_cycles = 120;
  /// Per-mille probability (0..1000) that a preemption slice lands on an
  /// interval boundary.
  std::uint64_t preempt_pm = 30;
  /// Cycles stolen by one preemption slice.
  std::uint64_t preempt_cycles = 8000;

  /// False (with a message) on nonsense: enabled with a zero interval,
  /// zero DVFS levels, a min frequency outside [1, 100], or a per-mille
  /// knob above 1000.
  bool validate(std::string* error = nullptr) const;

  /// Canonical spec string: "off" or the full key=value list.
  std::string specString() const;

  /// Fingerprint fragment: slash-joined values. Only ever folded into
  /// describeSocConfig() when enabled, so deterministic fingerprints are
  /// byte-identical to pre-hwvar builds.
  std::string describe() const;

  /// BRIDGE_HWVAR environment knob ("on", "off", or a spec string). A
  /// malformed value disables variability with one warning — an env typo
  /// must degrade to the deterministic machine, never crash a sweep.
  static HwVarParams fromEnv();

  bool operator==(const HwVarParams&) const = default;
};

/// Parse "on" / "off" / "interval=N,seed=N,placement=N,levels=N,minfreq=N,
/// shift=N,dvfslat=N,heat=N,cool=N,threshold=N,tick=N,tickcycles=N,
/// preempt=N,preemptcycles=N" (keys optional, any order; unknown keys and
/// malformed numbers are errors). On success *out holds the params
/// (enabled unless spec is "off").
bool parseHwVarSpec(std::string_view spec, HwVarParams* out,
                    std::string* error = nullptr);

/// Set the `hwvar.*` SocConfig override keys for `p` (enabled or not).
void applyHwVarOverrides(Config* overrides, const HwVarParams& p);

/// True when `overrides` carries any explicit `hwvar.*` key — such a spec's
/// variability was pinned by its author and engine-level hwvar must not
/// rewrite it.
bool hasHwVarOverrides(const Config& overrides);

/// Apply one dotted override key to `p` if it is a `hwvar.*` knob; returns
/// false for keys this module does not own (applySocOverrides owns the
/// unknown-key error).
bool applyHwVarOverrideKey(HwVarParams* p, const std::string& key,
                           const Config& overrides);

/// Independent hash streams for the per-interval decisions.
enum class HwVarStream : std::uint64_t {
  kDvfsShift = 1,  // does the governor re-draw the state this interval?
  kDvfsLevel = 2,  // which state does it draw?
  kPreempt = 3,    // does a preemption slice land on this boundary?
};

/// One pure splitmix64 draw keyed on (seed, stream, physical core,
/// interval). The whole variability plan is a function of the spec: no
/// generator state exists to share, so any worker count replays it.
std::uint64_t hwvarRoll(const HwVarParams& p, HwVarStream stream,
                        std::uint64_t physical_core, std::uint64_t interval);

/// Physical core the simulated core `core_id` is pinned to.
std::uint64_t hwvarPhysicalCore(const HwVarParams& p, unsigned core_id);

/// DVFS state transition for one interval boundary: the state holding for
/// `interval`, given the state `prev` that held for `interval - 1`.
/// Interval 0 always starts at state 0 (nominal).
unsigned hwvarDvfsStep(const HwVarParams& p, std::uint64_t physical_core,
                       std::uint64_t interval, unsigned prev);

/// The DVFS state holding for `interval`, folded from interval 0 — O(n) in
/// the interval index, for tests and offline analysis; HwVarCore tracks it
/// incrementally via hwvarDvfsStep.
unsigned hwvarDvfsState(const HwVarParams& p, std::uint64_t physical_core,
                        std::uint64_t interval);

/// Frequency of DVFS state `state` as a percentage of nominal, in
/// [min_freq_pct, 100]: state 0 is 100, state levels-1 is ~min_freq_pct,
/// intermediate states interpolate linearly (integer arithmetic).
unsigned hwvarFreqPct(const HwVarParams& p, unsigned state);

/// True when a preemption slice lands on the boundary closing `interval`.
bool hwvarPreempts(const HwVarParams& p, std::uint64_t physical_core,
                   std::uint64_t interval);

/// Derived seed for replica `replica` of a variability study: one
/// splitmix64 expansion of the base seed, so replicas are independent,
/// well-separated streams and the mapping is a pure function (any worker
/// count or resume regenerates the identical replica set).
std::uint64_t hwvarReplicaSeed(std::uint64_t base_seed, std::uint64_t replica);

}  // namespace bridge
