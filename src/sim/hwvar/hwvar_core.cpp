#include "sim/hwvar/hwvar_core.h"

#include <utility>

namespace bridge {

HwVarCore::HwVarCore(std::unique_ptr<CoreModel> inner,
                     const HwVarParams& params, unsigned core_id,
                     StatRegistry* stats, const std::string& stat_prefix)
    : inner_(std::move(inner)),
      params_(params),
      physical_core_(hwvarPhysicalCore(params, core_id)),
      interval_begin_(inner_->now()),
      c_intervals_(&stats->counter(stat_prefix + ".hwvar.intervals")),
      c_stall_cycles_(&stats->counter(stat_prefix + ".hwvar.stall_cycles")),
      c_stretch_cycles_(
          &stats->counter(stat_prefix + ".hwvar.stretch_cycles")),
      c_transitions_(&stats->counter(stat_prefix + ".hwvar.dvfs_transitions")),
      c_throttled_(
          &stats->counter(stat_prefix + ".hwvar.throttled_intervals")),
      c_ticks_(&stats->counter(stat_prefix + ".hwvar.ticks")),
      c_preemptions_(&stats->counter(stat_prefix + ".hwvar.preemptions")) {}

void HwVarCore::consume(const MicroOp& op) {
  inner_->consume(op);
  ++total_ops_;
  if (++pos_ >= params_.interval_ops) closeInterval();
}

void HwVarCore::skipTo(Cycle c) {
  // Track only the actual clock advance: wait cycles the MPI runtime skips
  // in are real time spent blocked, not core activity, and must not be
  // stretched or fed into the heat model.
  const Cycle before = inner_->now();
  inner_->skipTo(c);
  const Cycle after = inner_->now();
  if (after > before) external_skip_ += after - before;
}

Cycle HwVarCore::drain() {
  Cycle drained = inner_->drain();
  if (pos_ > 0) {
    // Close the partial interval through the drain frontier: the deferred
    // cost that just surfaced (store flushes, in-flight misses) is work
    // executed under this interval's frequency state.
    closeInterval();
    drained = inner_->drain();
  } else {
    // Nothing executed since the last boundary; just re-arm the baseline
    // so accumulated wait time cannot leak into the next interval.
    interval_begin_ = inner_->now();
    external_skip_ = 0;
  }
  return drained;
}

void HwVarCore::closeInterval() {
  const Cycle now = inner_->now();
  const Cycle elapsed = now - interval_begin_;
  const Cycle work = elapsed > external_skip_ ? elapsed - external_skip_ : 0;

  // 1. DVFS / thermal stretch: work executed at pct% of nominal frequency
  // takes work * 100/pct cycles; the surplus is injected as stall.
  const unsigned pct = throttled_ ? static_cast<unsigned>(params_.min_freq_pct)
                                  : hwvarFreqPct(params_, state_);
  Cycle stall = 0;
  if (pct < 100) {
    const Cycle stretch = work * (100 - pct) / pct;
    stall += stretch;
    c_stretch_cycles_->add(stretch);
  }

  // 2. Periodic OS tick: pay every tick that fell due since the last
  // boundary (total-op driven, so partial drain intervals stay exact).
  if (params_.tick_ops > 0 && params_.tick_cycles > 0) {
    const std::uint64_t due = total_ops_ / params_.tick_ops - ticks_paid_;
    if (due > 0) {
      stall += due * params_.tick_cycles;
      ticks_paid_ += due;
      c_ticks_->add(due);
    }
  }

  // 3. Preemption slice on this boundary?
  if (hwvarPreempts(params_, physical_core_, interval_index_)) {
    stall += params_.preempt_cycles;
    c_preemptions_->add(1);
  }

  // 4. Heat model: ops executed this interval heat the core (cooler when
  // throttled — it runs slower), each op-slot dissipates cool_pm. The
  // latch trips at the threshold and releases at half of it.
  if (params_.therm_threshold > 0) {
    const std::uint64_t gain_pm =
        throttled_ ? params_.therm_heat_pm * params_.min_freq_pct / 100
                   : params_.therm_heat_pm;
    heat_ += pos_ * gain_pm / 1000;
    const std::uint64_t cool = pos_ * params_.therm_cool_pm / 1000;
    heat_ -= heat_ < cool ? heat_ : cool;
    if (!throttled_ && heat_ >= params_.therm_threshold) {
      throttled_ = true;
    } else if (throttled_ && heat_ * 2 <= params_.therm_threshold) {
      throttled_ = false;
    }
  }
  if (throttled_) c_throttled_->add(1);

  // 5. The state holding for the next interval (pure hash; a change pays
  // the transition latency).
  ++interval_index_;
  const unsigned next =
      hwvarDvfsStep(params_, physical_core_, interval_index_, state_);
  if (next != state_) {
    stall += params_.dvfs_latency_cycles;
    c_transitions_->add(1);
    state_ = next;
  }

  // 6. Inject and re-arm. The injection goes through inner_->skipTo(), so
  // a SampledCore underneath sees it as an external skip and keeps it out
  // of its CPI estimate.
  if (stall > 0) {
    inner_->skipTo(now + stall);
    c_stall_cycles_->add(stall);
  }
  c_intervals_->add(1);
  pos_ = 0;
  interval_begin_ = inner_->now();
  external_skip_ = 0;
}

}  // namespace bridge
