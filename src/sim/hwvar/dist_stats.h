// Deterministic sample-distribution statistics for variability studies.
//
// Floating-point accumulation is order-dependent, so naive mean/variance
// over a replica set would differ between worker counts that deliver
// results in different orders. Every routine here sorts its samples by
// value first and accumulates in sorted order: the result is a pure
// function of the multiset, bitwise identical under any permutation —
// which is what lets spread tables be golden-snapshotted and lets a
// distribution-matching objective (tune/dist_objective.h) be cached and
// resumed safely.
#pragma once

#include <cstddef>
#include <vector>

namespace bridge {

/// Summary statistics of one replica sample set.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double sd = 0.0;  // sample standard deviation (n-1); 0 for count < 2
  double min = 0.0;
  double max = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double iqr = 0.0;  // q75 - q25
};

/// Samples sorted ascending (the canonical order every routine uses).
std::vector<double> sortedSamples(std::vector<double> samples);

/// Quantile q in [0, 1] of an ascending-sorted sample set, by linear
/// interpolation between order statistics (R type-7: h = (n-1)q).
/// Precondition: sorted non-empty ascending.
double sortedQuantile(const std::vector<double>& sorted, double q);

/// Mean/sd (Welford over sorted order), extrema, and quartiles. Bitwise
/// permutation-invariant. An empty set summarizes to all zeros.
SampleSummary summarizeSamples(std::vector<double> samples);

/// Two-sample Kolmogorov–Smirnov statistic: sup |F_a(x) - F_b(x)| over the
/// pooled support, in [0, 1]. Deterministic (sorted merge walk, exact tie
/// handling). Either side empty: 1.0 (maximal mismatch), unless both are
/// empty (0.0).
double ksDistance(std::vector<double> a, std::vector<double> b);

/// Scale-free quantile distance: the mean over the deciles q = 0.1..0.9 of
/// |Qa - Qb| / ((|Qa| + |Qb|) / 2), with an exact 0 for identical
/// distributions. Symmetric; comparing x against 2x gives exactly 2/3.
/// Either side empty: 2.0 (the metric's upper bound), unless both (0.0).
double quantileDistance(std::vector<double> a, std::vector<double> b);

}  // namespace bridge
