#include "sim/hwvar/dist_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace bridge {

std::vector<double> sortedSamples(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples;
}

double sortedQuantile(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted.front();
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double h = static_cast<double>(n - 1) * q;
  const std::size_t lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (frac == 0.0 || lo + 1 >= n) return sorted[lo];
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

SampleSummary summarizeSamples(std::vector<double> samples) {
  SampleSummary s;
  if (samples.empty()) return s;
  const std::vector<double> sorted = sortedSamples(std::move(samples));
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  // Welford in sorted order: the accumulation order is a function of the
  // multiset alone, so the mean and sd are bitwise permutation-invariant.
  double mean = 0.0;
  double m2 = 0.0;
  std::uint64_t n = 0;
  for (const double x : sorted) {
    ++n;
    const double d1 = x - mean;
    mean += d1 / static_cast<double>(n);
    m2 += d1 * (x - mean);
  }
  s.mean = mean;
  s.sd = s.count >= 2 ? std::sqrt(m2 / static_cast<double>(s.count - 1)) : 0.0;
  s.q25 = sortedQuantile(sorted, 0.25);
  s.median = sortedQuantile(sorted, 0.5);
  s.q75 = sortedQuantile(sorted, 0.75);
  s.iqr = s.q75 - s.q25;
  return s;
}

double ksDistance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  const std::vector<double> sa = sortedSamples(std::move(a));
  const std::vector<double> sb = sortedSamples(std::move(b));
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double sup = 0.0;
  while (i < sa.size() && j < sb.size()) {
    // Advance past every sample equal to the smaller head before comparing
    // the empirical CDFs, so ties contribute a single evaluation point.
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] == x) ++i;
    while (j < sb.size() && sb[j] == x) ++j;
    const double diff = std::fabs(static_cast<double>(i) / na -
                                  static_cast<double>(j) / nb);
    if (diff > sup) sup = diff;
  }
  // The tail past the shorter side's max: F of one side is already 1.
  if (i < sa.size()) {
    const double diff = 1.0 - static_cast<double>(j) / nb;
    if (diff > sup) sup = diff;
  }
  if (j < sb.size()) {
    const double diff = 1.0 - static_cast<double>(i) / na;
    if (diff > sup) sup = diff;
  }
  return sup;
}

double quantileDistance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 2.0;
  const std::vector<double> sa = sortedSamples(std::move(a));
  const std::vector<double> sb = sortedSamples(std::move(b));
  double total = 0.0;
  for (int decile = 1; decile <= 9; ++decile) {
    const double q = static_cast<double>(decile) / 10.0;
    const double qa = sortedQuantile(sa, q);
    const double qb = sortedQuantile(sb, q);
    if (qa == qb) continue;  // exact zero for identical distributions
    const double scale = (std::fabs(qa) + std::fabs(qb)) / 2.0;
    if (scale > 0.0) total += std::fabs(qa - qb) / scale;
  }
  return total / 9.0;
}

}  // namespace bridge
