#include "sim/hwvar/hwvar.h"

#include <cstdlib>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/log.h"
#include "sim/rng.h"

namespace bridge {

namespace {

/// Every u64 knob, in canonical spec order. One table drives the parser,
/// specString(), describe(), and the override plumbing so the five can
/// never drift apart.
struct HwVarKnob {
  const char* spec_key;      // name in the --hwvar spec string
  const char* override_key;  // dotted SocConfig override key
  std::uint64_t HwVarParams::* slot;
};

const std::vector<HwVarKnob>& knobs() {
  static const std::vector<HwVarKnob> k = {
      {"interval", "hwvar.interval_ops", &HwVarParams::interval_ops},
      {"seed", "hwvar.seed", &HwVarParams::seed},
      {"placement", "hwvar.placement", &HwVarParams::placement},
      {"levels", "hwvar.levels", &HwVarParams::levels},
      {"minfreq", "hwvar.min_freq_pct", &HwVarParams::min_freq_pct},
      {"shift", "hwvar.dvfs_shift_pm", &HwVarParams::dvfs_shift_pm},
      {"dvfslat", "hwvar.dvfs_latency_cycles",
       &HwVarParams::dvfs_latency_cycles},
      {"heat", "hwvar.therm_heat_pm", &HwVarParams::therm_heat_pm},
      {"cool", "hwvar.therm_cool_pm", &HwVarParams::therm_cool_pm},
      {"threshold", "hwvar.therm_threshold", &HwVarParams::therm_threshold},
      {"tick", "hwvar.tick_ops", &HwVarParams::tick_ops},
      {"tickcycles", "hwvar.tick_cycles", &HwVarParams::tick_cycles},
      {"preempt", "hwvar.preempt_pm", &HwVarParams::preempt_pm},
      {"preemptcycles", "hwvar.preempt_cycles", &HwVarParams::preempt_cycles},
  };
  return k;
}

bool parseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 18) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

bool HwVarParams::validate(std::string* error) const {
  if (!enabled) return true;
  const auto fail = [&](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (interval_ops == 0) return fail("hwvar interval_ops must be >= 1");
  if (levels == 0) return fail("hwvar levels must be >= 1");
  if (min_freq_pct == 0 || min_freq_pct > 100) {
    return fail("hwvar min_freq_pct must be in [1, 100]");
  }
  if (dvfs_shift_pm > 1000) {
    return fail("hwvar dvfs_shift_pm must be in [0, 1000]");
  }
  if (preempt_pm > 1000) return fail("hwvar preempt_pm must be in [0, 1000]");
  if (therm_heat_pm > 100000 || therm_cool_pm > 100000) {
    return fail("hwvar thermal per-mille rates must be in [0, 100000]");
  }
  return true;
}

std::string HwVarParams::specString() const {
  if (!enabled) return "off";
  std::string out;
  for (const HwVarKnob& k : knobs()) {
    if (!out.empty()) out += ',';
    out += k.spec_key;
    out += '=';
    out += std::to_string(this->*k.slot);
  }
  return out;
}

std::string HwVarParams::describe() const {
  std::string out;
  for (const HwVarKnob& k : knobs()) {
    if (!out.empty()) out += '/';
    out += std::to_string(this->*k.slot);
  }
  return out;
}

bool parseHwVarSpec(std::string_view spec, HwVarParams* out,
                    std::string* error) {
  const auto fail = [&](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  HwVarParams p;
  if (spec.empty()) return fail("empty hwvar spec");
  if (spec == "off" || spec == "0") {
    *out = p;
    return true;
  }
  p.enabled = true;
  if (spec == "on" || spec == "1") {
    *out = p;
    return true;
  }
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view field = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return fail("malformed hwvar field '" + std::string(field) +
                  "' (expected key=value)");
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    std::uint64_t* slot = nullptr;
    for (const HwVarKnob& k : knobs()) {
      if (key == k.spec_key) {
        slot = &(p.*k.slot);
        break;
      }
    }
    if (slot == nullptr) {
      return fail("unknown hwvar key '" + std::string(key) + "'");
    }
    if (!parseU64(value, slot)) {
      return fail("invalid hwvar value '" + std::string(value) + "' for " +
                  std::string(key));
    }
  }
  std::string why;
  if (!p.validate(&why)) return fail(std::move(why));
  *out = p;
  return true;
}

HwVarParams HwVarParams::fromEnv() {
  const char* env = std::getenv("BRIDGE_HWVAR");
  if (env == nullptr || *env == '\0') return {};
  HwVarParams p;
  std::string error;
  if (!parseHwVarSpec(env, &p, &error)) {
    BRIDGE_LOG(kWarn) << "BRIDGE_HWVAR='" << env << "' is malformed ("
                      << error << "); variability disabled";
    return {};
  }
  return p;
}

void applyHwVarOverrides(Config* overrides, const HwVarParams& p) {
  overrides->set("hwvar.enabled", p.enabled ? "true" : "false");
  for (const HwVarKnob& k : knobs()) {
    overrides->set(k.override_key, std::to_string(p.*k.slot));
  }
}

bool hasHwVarOverrides(const Config& overrides) {
  bool found = false;
  overrides.forEach([&](const std::string& key, const std::string&) {
    if (key.rfind("hwvar.", 0) == 0) found = true;
  });
  return found;
}

bool applyHwVarOverrideKey(HwVarParams* p, const std::string& key,
                           const Config& overrides) {
  if (key == "hwvar.enabled") {
    p->enabled = overrides.getBool(key, p->enabled);
    return true;
  }
  for (const HwVarKnob& k : knobs()) {
    if (key == k.override_key) {
      p->*k.slot = static_cast<std::uint64_t>(overrides.getInt(
          key, static_cast<std::int64_t>(p->*k.slot)));
      return true;
    }
  }
  return false;
}

std::uint64_t hwvarRoll(const HwVarParams& p, HwVarStream stream,
                        std::uint64_t physical_core, std::uint64_t interval) {
  // One splitmix64 finalization of the combined key: the draw is a pure
  // function of (seed, stream, core, interval), the FaultPlan idiom.
  SplitMix64 mix(p.seed ^
                 (static_cast<std::uint64_t>(stream) * 0x9E3779B97F4A7C15ull) ^
                 (physical_core * 0xBF58476D1CE4E5B9ull) ^
                 (interval * 0x94D049BB133111EBull));
  return mix.next();
}

std::uint64_t hwvarPhysicalCore(const HwVarParams& p, unsigned core_id) {
  return static_cast<std::uint64_t>(core_id) + p.placement;
}

unsigned hwvarDvfsStep(const HwVarParams& p, std::uint64_t physical_core,
                       std::uint64_t interval, unsigned prev) {
  if (p.levels <= 1 || interval == 0) return 0;
  if (hwvarRoll(p, HwVarStream::kDvfsShift, physical_core, interval) % 1000 >=
      p.dvfs_shift_pm) {
    return prev;
  }
  return static_cast<unsigned>(
      hwvarRoll(p, HwVarStream::kDvfsLevel, physical_core, interval) %
      p.levels);
}

unsigned hwvarDvfsState(const HwVarParams& p, std::uint64_t physical_core,
                        std::uint64_t interval) {
  unsigned state = 0;
  for (std::uint64_t i = 1; i <= interval; ++i) {
    state = hwvarDvfsStep(p, physical_core, i, state);
  }
  return state;
}

unsigned hwvarFreqPct(const HwVarParams& p, unsigned state) {
  if (p.levels <= 1 || state == 0) return 100;
  const unsigned span = 100 - static_cast<unsigned>(p.min_freq_pct);
  const unsigned step = span / static_cast<unsigned>(p.levels - 1);
  return 100 - state * step;
}

std::uint64_t hwvarReplicaSeed(std::uint64_t base_seed,
                               std::uint64_t replica) {
  SplitMix64 mix(base_seed ^ (replica * 0x9E3779B97F4A7C15ull));
  return mix.next();
}

bool hwvarPreempts(const HwVarParams& p, std::uint64_t physical_core,
                   std::uint64_t interval) {
  if (p.preempt_pm == 0 || p.preempt_cycles == 0) return false;
  return hwvarRoll(p, HwVarStream::kPreempt, physical_core, interval) % 1000 <
         p.preempt_pm;
}

}  // namespace bridge
