#include "soc/soc.h"

#include <cassert>
#include <stdexcept>

namespace bridge {

Soc::Soc(const SocConfig& config) : config_(config) {
  MemSysParams mem_params = config.mem;
  mem_params.freq_ghz = config.freq_ghz;
  mem_ = std::make_unique<MemoryHierarchy>(config.cores, mem_params,
                                           &stats_);
  cores_.reserve(config.cores);
  for (unsigned c = 0; c < config.cores; ++c) {
    const std::string prefix = "core" + std::to_string(c);
    if (config.core_kind == CoreKind::kInOrder) {
      cores_.push_back(std::make_unique<InOrderCore>(
          c, config.inorder, mem_.get(), &stats_, prefix));
    } else {
      cores_.push_back(std::make_unique<OooCore>(c, config.ooo, mem_.get(),
                                                 &stats_, prefix));
    }
  }
}

Cycle Soc::runTrace(TraceSource& trace, unsigned core_id) {
  CoreModel& core = *cores_.at(core_id);
  MicroOp op;
  while (trace.next(&op)) {
    if (op.cls == OpClass::kMpi) {
      throw std::logic_error(
          "Soc::runTrace cannot execute MPI ops; use MpiSimulation");
    }
    core.consume(op);
  }
  return core.drain();
}

}  // namespace bridge
