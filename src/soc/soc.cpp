#include "soc/soc.h"

#include <cassert>
#include <stdexcept>

#include "sim/hwvar/hwvar_core.h"
#include "sim/sampling/sampled_core.h"

namespace bridge {

Soc::Soc(const SocConfig& config) : config_(config) {
  {
    std::string why;
    if (!config.sampling.validate(&why)) {
      throw std::invalid_argument("SocConfig.sampling: " + why);
    }
    if (!config.hwvar.validate(&why)) {
      throw std::invalid_argument("SocConfig.hwvar: " + why);
    }
  }
  MemSysParams mem_params = config.mem;
  mem_params.freq_ghz = config.freq_ghz;
  mem_ = std::make_unique<MemoryHierarchy>(config.cores, mem_params,
                                           &stats_);
  cores_.reserve(config.cores);
  for (unsigned c = 0; c < config.cores; ++c) {
    const std::string prefix = "core" + std::to_string(c);
    std::unique_ptr<CoreModel> core;
    if (config.core_kind == CoreKind::kInOrder) {
      core = std::make_unique<InOrderCore>(c, config.inorder, mem_.get(),
                                           &stats_, prefix);
    } else {
      core = std::make_unique<OooCore>(c, config.ooo, mem_.get(), &stats_,
                                       prefix);
    }
    if (config.sampling.enabled) {
      core = std::make_unique<SampledCore>(std::move(core), config.sampling,
                                           &stats_, prefix);
    }
    if (config.hwvar.enabled) {
      core = std::make_unique<HwVarCore>(std::move(core), config.hwvar, c,
                                         &stats_, prefix);
    }
    cores_.push_back(std::move(core));
  }
}

Cycle Soc::runTrace(TraceSource& trace, unsigned core_id) {
  CoreModel& core = *cores_.at(core_id);
  MicroOp op;
  while (trace.next(&op)) {
    if (op.cls == OpClass::kMpi) {
      throw std::logic_error(
          "Soc::runTrace cannot execute MPI ops; use MpiSimulation");
    }
    core.consume(op);
  }
  return core.drain();
}

}  // namespace bridge
