// SoC: cores + memory hierarchy wired per a platform configuration.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "core/core.h"
#include "core/inorder.h"
#include "core/ooo.h"
#include "sim/hwvar/hwvar.h"
#include "sim/sampling/sampling.h"
#include "sim/stats.h"
#include "trace/trace_source.h"

namespace bridge {

enum class CoreKind { kInOrder, kOutOfOrder };

struct SocConfig {
  std::string name = "soc";
  double freq_ghz = 1.6;
  unsigned cores = 1;
  CoreKind core_kind = CoreKind::kInOrder;
  InOrderParams inorder;
  OooParams ooo;
  MemSysParams mem;
  // Sampled execution (sim/sampling): disabled = full fidelity. When
  // enabled, every core is wrapped in a SampledCore decorator.
  SamplingParams sampling;
  // Hardware variability (sim/hwvar): disabled = the paper's deterministic
  // machine. When enabled, every core is wrapped in an HwVarCore decorator
  // (outside the sampling wrapper, so it sees every consumed op).
  HwVarParams hwvar;
};

class Soc {
 public:
  explicit Soc(const SocConfig& config);

  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  CoreModel& core(unsigned i) { return *cores_.at(i); }
  unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
  MemoryHierarchy& mem() { return *mem_; }
  StatRegistry& stats() { return stats_; }
  const SocConfig& config() const { return config_; }

  /// Drive `trace` to completion on core `core_id`; returns total cycles.
  /// MicroOps of class kMpi are rejected (use the MPI runtime for those).
  Cycle runTrace(TraceSource& trace, unsigned core_id = 0);

  /// Simulated seconds for a cycle count at this SoC's clock.
  double seconds(Cycle c) const { return cyclesToSeconds(c, config_.freq_ghz); }

 private:
  SocConfig config_;
  StatRegistry stats_;
  std::unique_ptr<MemoryHierarchy> mem_;
  std::vector<std::unique_ptr<CoreModel>> cores_;
};

}  // namespace bridge
