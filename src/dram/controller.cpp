#include "dram/controller.h"

#include <algorithm>
#include <cassert>

namespace bridge {

DramController::DramController(const DramTimings& timings,
                               double core_freq_ghz)
    : timings_(timings),
      t_cas_(nsToCycles(timings.t_cas_ns, core_freq_ghz)),
      t_rcd_(nsToCycles(timings.t_rcd_ns, core_freq_ghz)),
      t_rp_(nsToCycles(timings.t_rp_ns, core_freq_ghz)),
      t_burst_(nsToCycles(timings.t_burst_ns, core_freq_ghz)),
      t_ctrl_(nsToCycles(timings.t_ctrl_ns, core_freq_ghz)),
      banks_(timings.totalBanks()),
      lines_per_row_(std::max(1u, timings.row_bytes / kLineBytes)),
      read_slots_(timings.read_queue_depth, 0),
      write_slots_(timings.write_queue_depth, 0) {
  assert(core_freq_ghz > 0.0);
  // The data bus must make progress even for "free" burst presets.
  if (t_burst_ == 0) t_burst_ = 1;
}

unsigned DramController::bankOf(Addr line_addr) const {
  // Row-interleaved mapping (RoBaCo): consecutive lines share a row; the
  // bank index comes from the bits just above the row offset, so streaming
  // traffic gets row hits and random traffic spreads across banks.
  const std::uint64_t line_index = line_addr >> kLineShift;
  return static_cast<unsigned>((line_index / lines_per_row_) %
                               banks_.size());
}

std::uint64_t DramController::rowOf(Addr line_addr) const {
  const std::uint64_t line_index = line_addr >> kLineShift;
  return (line_index / lines_per_row_) / banks_.size();
}

Cycle DramController::schedule(Addr line_addr, Cycle now, bool is_write) {
  Bank& bank = banks_[bankOf(line_addr)];
  const std::uint64_t row = rowOf(line_addr);

  const bool row_transition = bank.open_row != row;
  Cycle access = 0;
  if (!row_transition) {
    access = t_cas_;
    ++stats_.row_hits;
  } else if (bank.open_row == Bank::kNoRow) {
    access = t_rcd_ + t_cas_;
    ++stats_.row_misses;
  } else {
    access = t_rp_ + t_rcd_ + t_cas_;
    ++stats_.row_conflicts;
  }

  // The bank is occupied for the activate/precharge work on a row
  // transition; column commands to an open row pipeline at the burst rate
  // (tCCD ~ burst).
  const Cycle bank_occupancy = row_transition ? access : t_burst_;
  const Cycle start =
      bank.busy.reserve(now + t_ctrl_, std::max<Cycle>(1, bank_occupancy));

  // The burst serializes on the shared channel data bus.
  const Cycle data_start = data_bus_.reserve(start + access, t_burst_);
  const Cycle done = data_start + t_burst_;
  stats_.data_bus_busy += t_burst_;

  bank.open_row = row;

  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  return done;
}

Cycle DramController::read(Addr line_addr, Cycle now) {
  // Bounded read queue: if all slots hold requests completing after `now`,
  // the new request stalls at the cache hierarchy until the oldest frees.
  Cycle admitted = std::max(now, read_slots_[read_head_]);
  const Cycle done = schedule(line_addr, admitted, /*is_write=*/false);
  read_slots_[read_head_] = done;
  read_head_ = (read_head_ + 1) % read_slots_.size();
  return done;
}

Cycle DramController::write(Addr line_addr, Cycle now) {
  // Posted write: admission waits for a write-queue slot, then the drain is
  // scheduled like any other command (it competes with reads for the bank
  // and data bus, which is what throttles store-bandwidth kernels).
  Cycle admitted = std::max(now, write_slots_[write_head_]);
  const Cycle done = schedule(line_addr, admitted, /*is_write=*/true);
  write_slots_[write_head_] = done;
  write_head_ = (write_head_ + 1) % write_slots_.size();
  return done;
}

}  // namespace bridge
