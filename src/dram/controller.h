// Single-channel DRAM controller timing model.
//
// One-pass occupancy model in the FR-FCFS family: open-row policy per bank,
// bank-level parallelism, a serialized data bus, buffered writes that drain
// behind reads, and bounded read-queue occupancy that back-pressures the
// cache hierarchy. Requests are scheduled greedily at arrival (arrival order
// = service order within a bank), which preserves the first-order FR-FCFS
// behaviours — row-hit streaks are cheap, same-bank row conflicts are
// expensive, and random traffic spreads over banks — without requiring a
// future-knowledge reordering queue. Bank and data-bus occupancy use
// BusyCalendars so interleaved charges from skewed cores only contend when
// their intervals genuinely collide.
//
// All times are core-clock cycles; nanosecond device timings are converted
// once at construction using the core frequency, so the same device preset
// "costs more cycles" on a faster core (the paper's Fast Banana Pi effect).
#pragma once

#include <cstdint>
#include <vector>

#include "dram/timings.h"
#include "sim/calendar.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace bridge {

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;     // row closed, activate needed
  std::uint64_t row_conflicts = 0;  // other row open: precharge + activate
  Cycle data_bus_busy = 0;          // cycles the channel data bus was driven

  double rowHitRate() const {
    const std::uint64_t total = row_hits + row_misses + row_conflicts;
    return total == 0 ? 0.0
                      : static_cast<double>(row_hits) /
                            static_cast<double>(total);
  }
};

class DramController {
 public:
  DramController(const DramTimings& timings, double core_freq_ghz);

  /// Issue a line read arriving at the controller at `now`; returns the
  /// core cycle at which the critical word is back at the controller edge.
  Cycle read(Addr line_addr, Cycle now);

  /// Issue a line write arriving at `now`. Writes complete from the core's
  /// perspective immediately (posted), but occupy queue slots, banks and the
  /// data bus, so heavy write traffic slows subsequent reads. Returns the
  /// cycle the write is drained to the device.
  Cycle write(Addr line_addr, Cycle now);

  const DramStats& stats() const { return stats_; }
  const DramTimings& timings() const { return timings_; }

  /// Minimum possible read latency in core cycles (idle channel, row hit).
  Cycle idleRowHitLatency() const { return t_ctrl_ + t_cas_ + t_burst_; }
  /// Idle-channel latency with a full precharge-activate sequence.
  Cycle idleRowConflictLatency() const {
    return t_ctrl_ + t_rp_ + t_rcd_ + t_cas_ + t_burst_;
  }

  /// Achieved data-bus utilization in [0,1] up to cycle `now`.
  double busUtilization(Cycle now) const {
    return now == 0 ? 0.0
                    : static_cast<double>(stats_.data_bus_busy) /
                          static_cast<double>(now);
  }

 private:
  struct Bank {
    std::uint64_t open_row = kNoRow;
    BusyCalendar busy;
    static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};
  };

  Cycle schedule(Addr line_addr, Cycle now, bool is_write);
  unsigned bankOf(Addr line_addr) const;
  std::uint64_t rowOf(Addr line_addr) const;

  DramTimings timings_;
  Cycle t_cas_, t_rcd_, t_rp_, t_burst_, t_ctrl_;
  std::vector<Bank> banks_;
  unsigned lines_per_row_;

  // Queue occupancy model: a ring of completion times per queue slot; a new
  // request must wait for the oldest slot to free when the queue is full.
  std::vector<Cycle> read_slots_;
  std::vector<Cycle> write_slots_;
  std::size_t read_head_ = 0;
  std::size_t write_head_ = 0;

  BusyCalendar data_bus_;
  DramStats stats_;
};

}  // namespace bridge
