// DRAM device timing parameters and the presets the paper's platforms use.
//
// FireSim only ships a DDR3 FR-FCFS model; the silicon uses LPDDR4 (Banana
// Pi: dual 32-bit LPDDR4-2666) and DDR4 (MILK-V: 4-channel DDR4-3200). That
// asymmetry is the paper's headline explanation for the memory-benchmark
// gap, so all three device families are modeled here as parameter presets of
// one controller. Timings are kept in nanoseconds and converted to core
// cycles when a platform is instantiated — which is also what makes the
// "Fast" (2x clock) Banana Pi model see relatively slower DRAM.
#pragma once

#include <string>

#include "sim/types.h"

namespace bridge {

struct DramTimings {
  std::string name = "ddr3-2000";
  double t_cas_ns = 10.0;     // CAS (column access) latency
  double t_rcd_ns = 10.0;     // RAS-to-CAS (row activate)
  double t_rp_ns = 10.0;      // row precharge
  double t_burst_ns = 4.0;    // one 64B line on the device data bus
  double t_ctrl_ns = 10.0;    // controller front-end / PHY latency
  unsigned banks_per_rank = 8;
  unsigned ranks = 1;
  unsigned row_bytes = 2048;  // open-row (page) size
  unsigned read_queue_depth = 16;
  unsigned write_queue_depth = 16;

  unsigned totalBanks() const { return banks_per_rank * ranks; }

  /// Peak data-bus bandwidth implied by the burst time (GB/s).
  double peakBandwidthGBs() const {
    return static_cast<double>(kLineBytes) / t_burst_ns;  // bytes per ns
  }
};

/// FireSim's DDR3-2000 FR-FCFS quad-rank model (paper Table 5).
DramTimings ddr3_2000_quadrank();

/// MILK-V Pioneer's DDR4-3200 (per channel).
DramTimings ddr4_3200();

/// Banana Pi's 32-bit LPDDR4-2666 (per channel; two channels on the board).
DramTimings lpddr4_2666();

/// Uniform fixed-latency "magic" memory for unit tests and ablations.
DramTimings fixedLatency(double ns);

}  // namespace bridge
