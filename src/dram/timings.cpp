#include "dram/timings.h"

namespace bridge {

DramTimings ddr3_2000_quadrank() {
  DramTimings t;
  t.name = "ddr3-2000-fr-fcfs-quadrank";
  // DDR3-2000: CL ~ 10ns class devices; 64B over a 64-bit bus at 2000 MT/s
  // is 8 beats = 4 ns.
  // Calibrated against the paper's measured bands rather than DDR3 data
  // sheets: FireSim's token-gated DRAM model stalls cores and memory to
  // hold the target frequency (paper §3.2.2) and uses conservative
  // close-to-worst-case bank timings, so random (row-conflict) traffic is
  // far slower than the silicon's — the 0.28-0.43 relative performance the
  // paper measures on MM/MM_st — while streaming row-hit traffic retains
  // reasonable bandwidth.
  t.t_cas_ns = 30.0;
  t.t_rcd_ns = 45.0;
  t.t_rp_ns = 45.0;
  t.t_burst_ns = 4.0;
  t.t_ctrl_ns = 60.0;
  t.banks_per_rank = 8;
  t.ranks = 4;
  t.row_bytes = 2048;
  // The large front-end latency must not strangle streaming bandwidth:
  // FireSim's controller keeps many requests buffered behind its token
  // pipeline, so give the model queue depth to match.
  t.read_queue_depth = 64;
  t.write_queue_depth = 32;
  return t;
}

DramTimings ddr4_3200() {
  DramTimings t;
  t.name = "ddr4-3200";
  // DDR4-3200 CL22: 13.75 ns; 64B over 64-bit @3200 MT/s = 2.5 ns.
  t.t_cas_ns = 13.75;
  t.t_rcd_ns = 13.75;
  t.t_rp_ns = 13.75;
  t.t_burst_ns = 2.5;
  t.t_ctrl_ns = 10.0;
  t.banks_per_rank = 16;
  t.ranks = 2;
  t.row_bytes = 2048;
  return t;
}

DramTimings lpddr4_2666() {
  DramTimings t;
  t.name = "lpddr4-2666";
  // LPDDR4 trades latency for power: longer core timings, narrow (32-bit)
  // channel: 64B = 16 beats @2666 MT/s = 6 ns.
  t.t_cas_ns = 15.0;
  t.t_rcd_ns = 18.0;
  t.t_rp_ns = 18.0;
  t.t_burst_ns = 6.0;
  t.t_ctrl_ns = 8.0;
  t.banks_per_rank = 8;
  t.ranks = 1;
  t.row_bytes = 1024;
  return t;
}

DramTimings fixedLatency(double ns) {
  DramTimings t;
  t.name = "fixed";
  t.t_cas_ns = ns;
  t.t_rcd_ns = 0.0;
  t.t_rp_ns = 0.0;
  t.t_burst_ns = 0.0;
  t.t_ctrl_ns = 0.0;
  t.banks_per_rank = 1;
  t.ranks = 1;
  t.row_bytes = 1u << 30;  // one giant row: every access is a row hit
  return t;
}

}  // namespace bridge
