// Kernel builder: declarative synthesis of micro-op streams.
//
// A kernel is a sequence of segments; each segment is a basic-block template
// executed for a given iteration count, with an automatic loop back-edge
// branch (taken except on the last iteration). Memory templates draw
// addresses from AddressGen instances; conditional-branch templates draw
// directions from BranchGen instances. Call/return templates are linked
// through a generator-side shadow stack so RAS behaviour is exact.
//
// This covers most of the MicroBench suite in a dozen lines per kernel;
// irregular workloads (recursion trees, sorts, apps) implement TraceSource
// directly and can still embed KernelTrace pieces via SequenceTrace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "trace/address_gen.h"
#include "trace/branch_gen.h"
#include "trace/trace_source.h"

namespace bridge {

struct UopTemplate {
  OpClass cls = OpClass::kIntAlu;
  Reg dst = kNoReg;
  Reg src0 = kNoReg;
  Reg src1 = kNoReg;
  Reg src2 = kNoReg;
  int addr_gen = -1;    // required for kLoad/kStore
  int branch_gen = -1;  // required for kBranch
  Addr fixed_target = 0;  // kJump/kCall target override (0 = auto)
  // Indirect-jump modeling (switch statements): the jump target cycles over
  // `target_count` distinct addresses, switching every `target_period`
  // executions (0 = a pseudo-random target each time). With target_count > 1
  // the BTB can only track one target at a time, so frequent switches cost
  // redirects — the CS1/CS3 kernels.
  unsigned target_count = 1;
  unsigned target_period = 1;
  std::uint8_t mem_size = 8;
};

struct Segment {
  std::vector<UopTemplate> body;
  std::uint64_t iterations = 1;
  // 0 = compact code (a few lines); otherwise program counters rotate over
  // this many bytes of code, producing i-cache pressure (MIP kernel).
  std::uint64_t code_footprint = 0;
  bool loop_branch = true;

  Segment& add(const UopTemplate& t) {
    body.push_back(t);
    return *this;
  }
};

class KernelTrace;

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  /// Register generators; returns the id to reference from templates.
  int addrGen(std::unique_ptr<AddressGen> gen);
  int branchGen(std::unique_ptr<BranchGen> gen);

  /// Append a segment executed `iterations` times.
  Segment& segment(std::uint64_t iterations);

  /// Finalize. The builder is consumed.
  TraceSourcePtr build();

 private:
  friend class KernelTrace;
  std::string name_;
  std::vector<std::unique_ptr<AddressGen>> addr_gens_;
  std::vector<std::unique_ptr<BranchGen>> branch_gens_;
  std::vector<Segment> segments_;
};

/// Convenience factory for MPI runtime calls embedded in traces.
MicroOp makeMpiOp(MpiKind kind, std::int32_t peer, std::uint64_t bytes,
                  std::int32_t tag = 0);

/// Concatenation of trace pieces and literal micro-ops (used by the
/// application workloads to interleave compute phases with MPI calls).
class SequenceTrace final : public TraceSource {
 public:
  explicit SequenceTrace(std::string name) : name_(std::move(name)) {}

  void append(TraceSourcePtr piece);
  void appendOp(const MicroOp& op);

  bool next(MicroOp* out) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  std::vector<std::variant<TraceSourcePtr, MicroOp>> items_;
  std::size_t i_ = 0;
};

/// Template helpers, so kernel catalogs read like assembly listings.
UopTemplate alu(Reg dst, Reg src0 = kNoReg, Reg src1 = kNoReg);
UopTemplate mul(Reg dst, Reg src0, Reg src1);
UopTemplate idiv(Reg dst, Reg src0, Reg src1);
UopTemplate fadd(Reg dst, Reg src0, Reg src1);
UopTemplate fmul(Reg dst, Reg src0, Reg src1);
UopTemplate fma(Reg dst, Reg src0, Reg src1, Reg src2);
UopTemplate fdiv(Reg dst, Reg src0, Reg src1);
UopTemplate fcvt(Reg dst, Reg src0);
UopTemplate load(Reg dst, int addr_gen, Reg addr_src = kNoReg,
                 std::uint8_t size = 8);
UopTemplate store(int addr_gen, Reg data_src = kNoReg, Reg addr_src = kNoReg,
                  std::uint8_t size = 8);
UopTemplate branch(int branch_gen, Reg cond_src = kNoReg);
UopTemplate call(Addr target = 0);
UopTemplate ret();
/// Indirect jump over `targets` destinations, switching every `period`
/// executions (period 0 = random).
UopTemplate indirectJump(unsigned targets, unsigned period);

}  // namespace bridge
