#include "trace/kernel.h"

#include <cassert>
#include <utility>

namespace bridge {

namespace {
// Code region base; kernels live well away from data regions, which the
// workload catalogs place from 0x1000'0000 upward.
constexpr Addr kCodeBase = 0x40'0000;
constexpr Addr kSegmentCodeStride = 0x1'0000;  // 64 KiB apart
}  // namespace

KernelBuilder::KernelBuilder(std::string name) : name_(std::move(name)) {}

int KernelBuilder::addrGen(std::unique_ptr<AddressGen> gen) {
  addr_gens_.push_back(std::move(gen));
  return static_cast<int>(addr_gens_.size()) - 1;
}

int KernelBuilder::branchGen(std::unique_ptr<BranchGen> gen) {
  branch_gens_.push_back(std::move(gen));
  return static_cast<int>(branch_gens_.size()) - 1;
}

Segment& KernelBuilder::segment(std::uint64_t iterations) {
  segments_.emplace_back();
  segments_.back().iterations = iterations;
  return segments_.back();
}

/// Runtime engine that expands a built kernel into micro-ops.
class KernelTrace final : public TraceSource {
 public:
  explicit KernelTrace(KernelBuilder&& b)
      : name_(std::move(b.name_)),
        addr_gens_(std::move(b.addr_gens_)),
        branch_gens_(std::move(b.branch_gens_)),
        segments_(std::move(b.segments_)) {}

  bool next(MicroOp* out) override {
    while (seg_ < segments_.size()) {
      const Segment& seg = segments_[seg_];
      const std::size_t body_len = seg.body.size();
      const bool emit_loop_branch = seg.loop_branch && seg.iterations > 1;

      if (slot_ < body_len) {
        emit(seg, seg.body[slot_], slot_, out);
        ++slot_;
        return true;
      }
      if (emit_loop_branch && slot_ == body_len) {
        // Back-edge: taken on every iteration except the last.
        out->cls = OpClass::kBranch;
        out->dst = kNoReg;
        out->src0 = kNoReg;
        out->src1 = kNoReg;
        out->src2 = kNoReg;
        out->mem_size = 0;
        out->pc = pcOf(seg, body_len);
        out->addr = pcOf(seg, 0);
        out->taken = iter_ + 1 < seg.iterations;
        out->mpi = {};
        ++slot_;
        return true;
      }
      // Iteration finished.
      slot_ = 0;
      ++iter_;
      if (iter_ >= seg.iterations) {
        iter_ = 0;
        ++seg_;
      }
    }
    return false;
  }

  const std::string& name() const override { return name_; }

 private:
  Addr segBase(const Segment& seg) const {
    const std::size_t index =
        static_cast<std::size_t>(&seg - segments_.data());
    return kCodeBase + index * kSegmentCodeStride;
  }

  Addr pcOf(const Segment& seg, std::size_t slot) const {
    const Addr base = segBase(seg);
    if (seg.code_footprint == 0) {
      return base + slot * 4;
    }
    // Rotate program counters across the footprint so the instruction
    // stream sweeps more lines than the L1I holds.
    const std::uint64_t instr_index =
        iter_ * (seg.body.size() + 1) + slot;
    return base + (instr_index * 4) % seg.code_footprint;
  }

  void emit(const Segment& seg, const UopTemplate& t, std::size_t slot,
            MicroOp* out) {
    out->cls = t.cls;
    out->dst = t.dst;
    out->src0 = t.src0;
    out->src1 = t.src1;
    out->src2 = t.src2;
    out->mem_size = t.mem_size;
    out->taken = false;
    out->pc = pcOf(seg, slot);
    out->addr = 0;
    out->mpi = {};

    switch (t.cls) {
      case OpClass::kLoad:
      case OpClass::kStore:
        assert(t.addr_gen >= 0 &&
               static_cast<std::size_t>(t.addr_gen) < addr_gens_.size());
        out->addr = addr_gens_[static_cast<std::size_t>(t.addr_gen)]->next();
        break;
      case OpClass::kBranch:
        assert(t.branch_gen >= 0 &&
               static_cast<std::size_t>(t.branch_gen) < branch_gens_.size());
        out->taken =
            branch_gens_[static_cast<std::size_t>(t.branch_gen)]->next();
        out->addr = out->pc + 32;  // short forward skip
        break;
      case OpClass::kJump:
        if (t.target_count > 1) {
          const std::uint64_t exec = jump_execs_++;
          const std::uint64_t idx =
              t.target_period == 0
                  ? jump_rng_.nextBelow(t.target_count)
                  : (exec / t.target_period) % t.target_count;
          out->addr = out->pc + 0x40 * (idx + 1);
        } else {
          out->addr = t.fixed_target != 0 ? t.fixed_target : out->pc + 16;
        }
        break;
      case OpClass::kCall:
        out->addr = t.fixed_target != 0 ? t.fixed_target : out->pc + 0x400;
        shadow_stack_.push_back(out->pc + 4);
        break;
      case OpClass::kRet:
        if (!shadow_stack_.empty()) {
          out->addr = shadow_stack_.back();
          shadow_stack_.pop_back();
        } else {
          out->addr = kCodeBase;  // underflow: arbitrary (mispredicts)
        }
        break;
      default:
        break;
    }
  }

  std::string name_;
  std::vector<std::unique_ptr<AddressGen>> addr_gens_;
  std::vector<std::unique_ptr<BranchGen>> branch_gens_;
  std::vector<Segment> segments_;

  std::size_t seg_ = 0;
  std::uint64_t iter_ = 0;
  std::size_t slot_ = 0;
  std::vector<Addr> shadow_stack_;
  std::uint64_t jump_execs_ = 0;
  Xorshift64Star jump_rng_{0xA5C3u};
};

TraceSourcePtr KernelBuilder::build() {
  return std::make_unique<KernelTrace>(std::move(*this));
}

MicroOp makeMpiOp(MpiKind kind, std::int32_t peer, std::uint64_t bytes,
                  std::int32_t tag) {
  MicroOp op;
  op.cls = OpClass::kMpi;
  op.mpi.kind = kind;
  op.mpi.peer = peer;
  op.mpi.bytes = bytes;
  op.mpi.tag = tag;
  return op;
}

void SequenceTrace::append(TraceSourcePtr piece) {
  items_.emplace_back(std::move(piece));
}

void SequenceTrace::appendOp(const MicroOp& op) { items_.emplace_back(op); }

bool SequenceTrace::next(MicroOp* out) {
  while (i_ < items_.size()) {
    auto& item = items_[i_];
    if (std::holds_alternative<MicroOp>(item)) {
      *out = std::get<MicroOp>(item);
      ++i_;
      return true;
    }
    if (std::get<TraceSourcePtr>(item)->next(out)) return true;
    ++i_;
  }
  return false;
}

UopTemplate alu(Reg dst, Reg src0, Reg src1) {
  UopTemplate t;
  t.cls = OpClass::kIntAlu;
  t.dst = dst;
  t.src0 = src0;
  t.src1 = src1;
  return t;
}

UopTemplate mul(Reg dst, Reg src0, Reg src1) {
  UopTemplate t;
  t.cls = OpClass::kIntMul;
  t.dst = dst;
  t.src0 = src0;
  t.src1 = src1;
  return t;
}

UopTemplate idiv(Reg dst, Reg src0, Reg src1) {
  UopTemplate t;
  t.cls = OpClass::kIntDiv;
  t.dst = dst;
  t.src0 = src0;
  t.src1 = src1;
  return t;
}

UopTemplate fadd(Reg dst, Reg src0, Reg src1) {
  UopTemplate t;
  t.cls = OpClass::kFpAdd;
  t.dst = dst;
  t.src0 = src0;
  t.src1 = src1;
  return t;
}

UopTemplate fmul(Reg dst, Reg src0, Reg src1) {
  UopTemplate t;
  t.cls = OpClass::kFpMul;
  t.dst = dst;
  t.src0 = src0;
  t.src1 = src1;
  return t;
}

UopTemplate fma(Reg dst, Reg src0, Reg src1, Reg src2) {
  UopTemplate t;
  t.cls = OpClass::kFpMul;
  t.dst = dst;
  t.src0 = src0;
  t.src1 = src1;
  t.src2 = src2;
  return t;
}

UopTemplate fdiv(Reg dst, Reg src0, Reg src1) {
  UopTemplate t;
  t.cls = OpClass::kFpDiv;
  t.dst = dst;
  t.src0 = src0;
  t.src1 = src1;
  return t;
}

UopTemplate fcvt(Reg dst, Reg src0) {
  UopTemplate t;
  t.cls = OpClass::kFpCvt;
  t.dst = dst;
  t.src0 = src0;
  return t;
}

UopTemplate load(Reg dst, int addr_gen, Reg addr_src, std::uint8_t size) {
  UopTemplate t;
  t.cls = OpClass::kLoad;
  t.dst = dst;
  t.src0 = addr_src;
  t.addr_gen = addr_gen;
  t.mem_size = size;
  return t;
}

UopTemplate store(int addr_gen, Reg data_src, Reg addr_src,
                  std::uint8_t size) {
  UopTemplate t;
  t.cls = OpClass::kStore;
  t.src0 = data_src;
  t.src1 = addr_src;
  t.addr_gen = addr_gen;
  t.mem_size = size;
  return t;
}

UopTemplate branch(int branch_gen, Reg cond_src) {
  UopTemplate t;
  t.cls = OpClass::kBranch;
  t.src0 = cond_src;
  t.branch_gen = branch_gen;
  return t;
}

UopTemplate call(Addr target) {
  UopTemplate t;
  t.cls = OpClass::kCall;
  t.fixed_target = target;
  return t;
}

UopTemplate ret() {
  UopTemplate t;
  t.cls = OpClass::kRet;
  return t;
}

UopTemplate indirectJump(unsigned targets, unsigned period) {
  UopTemplate t;
  t.cls = OpClass::kJump;
  t.target_count = targets;
  t.target_period = period;
  return t;
}

}  // namespace bridge
