// Branch outcome generators: the direction behaviour of the control-flow
// MicroBench kernels (completely biased, alternating, random, heavily
// biased, impossible-to-predict...).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.h"

namespace bridge {

class BranchGen {
 public:
  virtual ~BranchGen() = default;
  virtual bool next() = 0;
};

/// Always the same direction (Cca: completely biased branch).
class ConstantBranchGen final : public BranchGen {
 public:
  explicit ConstantBranchGen(bool taken) : taken_(taken) {}
  bool next() override { return taken_; }

 private:
  bool taken_;
};

/// T,N,T,N,... with configurable period (Cce: alternating branches).
class AlternatingBranchGen final : public BranchGen {
 public:
  explicit AlternatingBranchGen(unsigned period = 1) : period_(period) {}
  bool next() override {
    const bool taken = (count_ / period_) % 2 == 0;
    ++count_;
    return taken;
  }

 private:
  unsigned period_;
  std::uint64_t count_ = 0;
};

/// Bernoulli(p) outcomes (CCh: random control flow; CCm: heavily biased).
class RandomBranchGen final : public BranchGen {
 public:
  RandomBranchGen(double p_taken, std::uint64_t seed)
      : p_(p_taken), rng_(seed) {}
  bool next() override { return rng_.nextBool(p_); }

 private:
  double p_;
  Xorshift64Star rng_;
};

/// Fixed repeating pattern (switch-style kernels CS1/CS3).
class PatternBranchGen final : public BranchGen {
 public:
  explicit PatternBranchGen(std::vector<bool> pattern)
      : pattern_(std::move(pattern)) {}
  bool next() override {
    const bool taken = pattern_[i_];
    i_ = (i_ + 1) % pattern_.size();
    return taken;
  }

 private:
  std::vector<bool> pattern_;
  std::size_t i_ = 0;
};

}  // namespace bridge
