// Address sequence generators for workload synthesis.
//
// Each memory micro-op template in a kernel owns one of these; the generator
// defines the access *pattern*, which is what distinguishes the MicroBench
// cache/memory kernels (sequential stream, random within a working set,
// pointer-chase permutation, same-line hammering) and the application
// kernels (strided fields, irregular gathers).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace bridge {

class AddressGen {
 public:
  virtual ~AddressGen() = default;
  virtual Addr next() = 0;
};

/// base, base+stride, base+2*stride, ... wrapping at base+length.
class StrideGen final : public AddressGen {
 public:
  StrideGen(Addr base, std::int64_t stride, std::uint64_t length);
  Addr next() override;

 private:
  Addr base_;
  std::int64_t stride_;
  std::uint64_t length_;
  std::uint64_t offset_ = 0;
};

/// Uniformly random `align`-aligned addresses in [base, base+length).
class RandomGen final : public AddressGen {
 public:
  RandomGen(Addr base, std::uint64_t length, unsigned align,
            std::uint64_t seed);
  Addr next() override;

 private:
  Addr base_;
  std::uint64_t slots_;
  unsigned align_;
  Xorshift64Star rng_;
};

/// Pointer-chase over a random single-cycle permutation of `nodes` nodes of
/// `node_bytes` each (Sattolo's algorithm), starting at node 0. Used with a
/// load whose destination feeds its own address register, this produces the
/// fully serialized dependent-miss chains of MD / ML2 / MM.
class ChaseGen final : public AddressGen {
 public:
  ChaseGen(Addr base, std::uint64_t nodes, unsigned node_bytes,
           std::uint64_t seed);
  Addr next() override;

 private:
  Addr base_;
  unsigned node_bytes_;
  std::vector<std::uint32_t> next_node_;
  std::uint32_t cur_ = 0;
};

/// Always the same address (store-hammering kernels STc / STL2).
class ConstGen final : public AddressGen {
 public:
  explicit ConstGen(Addr addr) : addr_(addr) {}
  Addr next() override { return addr_; }

 private:
  Addr addr_;
};

/// Random accesses with spatial locality: a stream position sweeps the
/// region; each address lands uniformly inside a window centred on the
/// position. Models indirection through mesh/graph connectivity, where
/// consecutive entities reference mostly nearby data (high cache hit rate)
/// with occasional distant references (misses) — UME's access pattern.
class LocalityGen final : public AddressGen {
 public:
  /// `far_fraction` of accesses instead go anywhere in the region.
  LocalityGen(Addr base, std::uint64_t region, std::uint64_t window,
              unsigned align, double far_fraction, std::uint64_t seed);
  Addr next() override;

 private:
  Addr base_;
  std::uint64_t region_;
  std::uint64_t window_;
  unsigned align_;
  double far_fraction_;
  Xorshift64Star rng_;
  std::uint64_t pos_ = 0;  // sweeping window centre (bytes)
};

/// Addresses that collide in the same cache set: base + i * set_stride,
/// cycling over `ways_touched` distinct lines. With ways_touched greater
/// than the cache associativity this produces systematic conflict misses
/// (MC / MCS kernels).
class ConflictGen final : public AddressGen {
 public:
  ConflictGen(Addr base, std::uint64_t set_stride, unsigned ways_touched);
  Addr next() override;

 private:
  Addr base_;
  std::uint64_t set_stride_;
  unsigned ways_touched_;
  unsigned i_ = 0;
};

}  // namespace bridge
