// Trace source interface: the boundary between workload models and core
// timing models. Generators synthesize micro-op streams on the fly (no trace
// files), so arbitrarily long workloads cost O(1) memory.
#pragma once

#include <memory>
#include <string>

#include "uop/uop.h"

namespace bridge {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next micro-op. Returns false at end of stream.
  virtual bool next(MicroOp* out) = 0;

  /// Diagnostic name ("microbench.MM", "npb.cg.rank0", ...).
  virtual const std::string& name() const = 0;
};

using TraceSourcePtr = std::unique_ptr<TraceSource>;

}  // namespace bridge
