#include "trace/address_gen.h"

#include <cassert>

namespace bridge {

StrideGen::StrideGen(Addr base, std::int64_t stride, std::uint64_t length)
    : base_(base), stride_(stride), length_(length) {
  assert(length != 0);
}

Addr StrideGen::next() {
  const Addr a = base_ + offset_;
  const std::int64_t next_off =
      static_cast<std::int64_t>(offset_) + stride_;
  if (next_off < 0 || static_cast<std::uint64_t>(next_off) >= length_) {
    offset_ = 0;
  } else {
    offset_ = static_cast<std::uint64_t>(next_off);
  }
  return a;
}

RandomGen::RandomGen(Addr base, std::uint64_t length, unsigned align,
                     std::uint64_t seed)
    : base_(base), slots_(length / align), align_(align), rng_(seed) {
  assert(align != 0 && length >= align);
}

Addr RandomGen::next() { return base_ + rng_.nextBelow(slots_) * align_; }

ChaseGen::ChaseGen(Addr base, std::uint64_t nodes, unsigned node_bytes,
                   std::uint64_t seed)
    : base_(base), node_bytes_(node_bytes), next_node_(nodes) {
  assert(nodes >= 2);
  // Sattolo's algorithm: a uniformly random single cycle covering all
  // nodes, so the chase visits every node before repeating.
  std::vector<std::uint32_t> order(nodes);
  for (std::uint64_t i = 0; i < nodes; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  Xorshift64Star rng(seed);
  for (std::uint64_t i = nodes - 1; i >= 1; --i) {
    const std::uint64_t j = rng.nextBelow(i);  // j in [0, i)
    std::swap(order[i], order[j]);
  }
  // order defines the cycle: order[k] -> order[(k+1) % nodes].
  for (std::uint64_t k = 0; k < nodes; ++k) {
    next_node_[order[k]] = order[(k + 1) % nodes];
  }
  cur_ = 0;
}

Addr ChaseGen::next() {
  const Addr a = base_ + static_cast<Addr>(cur_) * node_bytes_;
  cur_ = next_node_[cur_];
  return a;
}

LocalityGen::LocalityGen(Addr base, std::uint64_t region,
                         std::uint64_t window, unsigned align,
                         double far_fraction, std::uint64_t seed)
    : base_(base),
      region_(region),
      window_(window),
      align_(align),
      far_fraction_(far_fraction),
      rng_(seed) {
  assert(align != 0 && region >= align && window >= align);
  assert(window <= region);
}

Addr LocalityGen::next() {
  // Sweep the window centre through the region (one step per access).
  pos_ = (pos_ + align_) % region_;
  std::uint64_t offset;
  if (rng_.nextBool(far_fraction_)) {
    offset = rng_.nextBelow(region_ / align_) * align_;
  } else {
    const std::uint64_t within = rng_.nextBelow(window_ / align_) * align_;
    offset = (pos_ + within) % region_;
  }
  return base_ + offset;
}

ConflictGen::ConflictGen(Addr base, std::uint64_t set_stride,
                         unsigned ways_touched)
    : base_(base), set_stride_(set_stride), ways_touched_(ways_touched) {
  assert(ways_touched != 0);
}

Addr ConflictGen::next() {
  const Addr a = base_ + std::uint64_t{i_} * set_stride_;
  i_ = (i_ + 1) % ways_touched_;
  return a;
}

}  // namespace bridge
