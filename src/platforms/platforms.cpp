#include "platforms/platforms.h"

#include <stdexcept>

#include "dram/timings.h"

namespace bridge {

namespace {

/// Common Rocket-tile memory system: 32 KiB L1s (64 sets x 8 ways),
/// 512 KiB shared L2 (1024 sets x 8 ways) — paper Table 5.
MemSysParams rocketMemBase() {
  MemSysParams m;
  m.l1i = {64, 8, /*latency=*/2, /*mshrs=*/1};
  m.l1d = {64, 8, /*latency=*/2, /*mshrs=*/4};
  m.l2 = {1024, 8, /*latency=*/14, /*banks=*/1, /*bank_busy=*/2,
          /*mshrs=*/8};
  m.bus = {/*width_bits=*/64, /*request_cycles=*/1};
  m.has_llc = false;
  m.dram = ddr3_2000_quadrank();
  m.dram_channels = 1;
  m.prefetch.enabled = false;
  // Table 5: "L1 D,I - 32 entry (fully associative)"; Rocket has no L2 TLB.
  m.tlb.enabled = true;
  m.tlb.l1_entries = 32;
  m.tlb.l2_entries = 0;
  return m;
}

InOrderParams rocketCore() {
  InOrderParams p;
  p.issue_width = 1;
  p.pipeline_depth = 5;
  p.store_buffer = 2;
  p.bht_entries = 512;
  p.btb_entries = 64;
  p.ras_depth = 8;
  // Rocket MulDiv: 4-cycle mul, iterative div; FPU ~4-cycle.
  p.lat.set(OpClass::kIntMul, 4);
  p.lat.set(OpClass::kIntDiv, 32);
  p.lat.set(OpClass::kFpAdd, 4);
  p.lat.set(OpClass::kFpMul, 4);
  p.lat.set(OpClass::kFpDiv, 24);
  p.lat.set(OpClass::kFpSqrt, 28);
  return p;
}

/// BOOM-tile memory system per Table 4: L1 64 sets x 4 ways (Small/Medium)
/// or x 8 (Large), 512 KiB L2 in 4 banks, 128-bit bus.
MemSysParams boomMemBase(unsigned l1_ways) {
  MemSysParams m;
  m.l1i = {64, l1_ways, /*latency=*/2, /*mshrs=*/1};
  // BOOM's default data cache carries 4 MSHRs: enough to overlap a few
  // misses but a real serialization point for gather-heavy code — which is
  // what makes the paper's L1-size ablation (CG, 27.7%) visible at all.
  m.l1d = {64, l1_ways, /*latency=*/3, /*mshrs=*/4};
  m.l2 = {1024, 8, /*latency=*/16, /*banks=*/4, /*bank_busy=*/2,
          /*mshrs=*/8};
  m.bus = {/*width_bits=*/128, /*request_cycles=*/1};
  // Stock FireSim BOOM targets ship with the framework's default
  // simplified (SRAM-like) LLC model; 4 MiB single slice.
  m.has_llc = true;
  m.llc.mode = LlcMode::kSimplifiedSram;
  m.llc.sets = 4096;
  m.llc.ways = 16;
  m.llc.sram_latency = 8;
  m.dram = ddr3_2000_quadrank();
  m.dram_channels = 1;
  m.prefetch.enabled = false;
  // Table 5: 32-entry fully-associative L1 TLBs + 1024-entry direct-mapped
  // L2 TLB for the BOOM configurations.
  m.tlb.enabled = true;
  m.tlb.l1_entries = 32;
  m.tlb.l2_entries = 1024;
  return m;
}

LatencyTable boomLatencies() {
  LatencyTable lat;
  lat.set(OpClass::kIntMul, 3);
  lat.set(OpClass::kIntDiv, 20);
  lat.set(OpClass::kFpAdd, 4);
  lat.set(OpClass::kFpMul, 4);
  lat.set(OpClass::kFpDiv, 16);
  lat.set(OpClass::kFpSqrt, 20);
  return lat;
}

SocConfig rocket1(unsigned cores) {
  SocConfig c;
  c.name = "Rocket1";
  c.freq_ghz = 1.6;
  c.cores = cores;
  c.core_kind = CoreKind::kInOrder;
  c.inorder = rocketCore();
  c.mem = rocketMemBase();
  return c;
}

SocConfig rocket2(unsigned cores) {
  SocConfig c = rocket1(cores);
  c.name = "Rocket2";
  c.mem.l2.banks = 4;
  return c;
}

SocConfig bananaPiSim(unsigned cores) {
  SocConfig c = rocket2(cores);
  c.name = "BananaPiSim";
  c.mem.bus.width_bits = 128;
  return c;
}

SocConfig fastBananaPiSim(unsigned cores) {
  SocConfig c = bananaPiSim(cores);
  c.name = "FastBananaPiSim";
  // "To mimic the dual issue execute in simulation, we doubled the modeled
  // frequency to 3.2 GHz" (paper §4). DRAM nanosecond timings become twice
  // as many core cycles, which is exactly the imbalance the paper reports.
  c.freq_ghz = 3.2;
  return c;
}

SocConfig boom(unsigned cores, const OooParams& core_params,
               const char* name, unsigned l1_ways) {
  SocConfig c;
  c.name = name;
  c.freq_ghz = 2.0;
  c.cores = cores;
  c.core_kind = CoreKind::kOutOfOrder;
  c.ooo = core_params;
  c.ooo.lat = boomLatencies();
  c.mem = boomMemBase(l1_ways);
  return c;
}

SocConfig milkVSim(unsigned cores) {
  SocConfig c = boom(cores, largeBoomParams(), "MilkVSim", 8);
  // Tuned Large BOOM (paper §4): 64 KiB L1s (128 sets x 8 ways), 1 MiB L2,
  // 64 MiB LLC as four 16 MiB simplified slices, one per DDR3 channel.
  c.mem.l1i = {128, 8, 2, 1};
  c.mem.l1d = {128, 8, 3, 4};
  c.mem.l2 = {2048, 8, /*latency=*/18, /*banks=*/4, /*bank_busy=*/2,
              /*mshrs=*/8};
  c.mem.has_llc = true;
  c.mem.llc.mode = LlcMode::kSimplifiedSram;
  c.mem.llc.sets = 16384;  // 16 MiB per slice at 16 ways
  c.mem.llc.ways = 16;
  c.mem.llc.sram_latency = 8;
  c.mem.dram_channels = 4;
  return c;
}

SocConfig bananaPiHw(unsigned cores) {
  SocConfig c;
  c.name = "BananaPiHw";
  c.freq_ghz = 1.6;
  c.cores = cores;
  c.core_kind = CoreKind::kInOrder;
  // SpacemiT K1: dual-issue, 8-stage in-order; beefier front end than
  // Rocket; stride prefetcher; dual-channel LPDDR4-2666.
  c.inorder = rocketCore();
  c.inorder.issue_width = 2;
  c.inorder.pipeline_depth = 8;
  c.inorder.store_buffer = 8;
  c.inorder.bht_entries = 4096;
  c.inorder.btb_entries = 256;
  c.inorder.ras_depth = 16;
  c.inorder.lat.set(OpClass::kIntMul, 3);
  c.inorder.lat.set(OpClass::kIntDiv, 14);
  c.inorder.lat.set(OpClass::kFpAdd, 3);
  c.inorder.lat.set(OpClass::kFpMul, 3);
  c.inorder.lat.set(OpClass::kFpDiv, 12);
  c.inorder.lat.set(OpClass::kFpSqrt, 14);
  c.mem = rocketMemBase();
  c.mem.l1d.mshrs = 8;
  c.mem.l2.banks = 4;
  c.mem.l2.latency = 12;
  c.mem.bus.width_bits = 128;
  c.mem.dram = lpddr4_2666();
  c.mem.dram_channels = 2;
  // No hardware prefetcher: the paper's NPB results show the Banana Pi
  // only modestly ahead of the Rocket models on streaming kernels, which
  // is inconsistent with an aggressive stream prefetcher on the K1.
  c.mem.prefetch.enabled = false;
  // The K1's MMU details are undisclosed; commercial cores of this class
  // carry much larger translation reach than the 32-entry Rocket TLB.
  c.mem.tlb.enabled = true;
  c.mem.tlb.l1_entries = 64;
  c.mem.tlb.l2_entries = 2048;
  return c;
}

SocConfig milkVHw(unsigned cores) {
  SocConfig c;
  c.name = "MilkVHw";
  c.freq_ghz = 2.0;
  c.cores = cores;
  c.core_kind = CoreKind::kOutOfOrder;
  // SOPHON SG2042 (T-Head C920 class): wider than Large BOOM, deep
  // windows, dual memory ports, quad-channel DDR4-3200, real 64 MiB LLC.
  // T-Head C920: 3-wide decode like the Large BOOM but with much deeper
  // windows, dual memory ports and faster hardware dividers.
  OooParams p = largeBoomParams();
  p.fetch_width = 8;
  p.decode_width = 3;
  p.fetch_buffer = 32;
  p.rob = 192;
  p.int_issue = 3;
  p.mem_issue = 2;
  p.fp_issue = 2;
  p.int_iq = 64;
  p.mem_iq = 32;
  p.fp_iq = 32;
  p.ldq = 32;
  p.stq = 32;
  p.redirect_penalty = 10;
  p.tage.table_entries = 2048;
  p.btb_entries = 1024;
  p.ras_depth = 32;
  p.lat = boomLatencies();
  // FP divide/sqrt stay at BOOM-like latencies: the paper's EP benchmark
  // (divide/sqrt heavy) shows near performance parity between the Large
  // BOOM model and the SG2042.
  p.lat.set(OpClass::kIntDiv, 14);
  c.ooo = p;
  c.mem = boomMemBase(/*l1_ways=*/8);
  c.mem.l1i = {128, 8, 2, 1};
  c.mem.l1d = {128, 8, 3, 8};
  c.mem.l2 = {2048, 8, /*latency=*/14, /*banks=*/4, /*bank_busy=*/2,
              /*mshrs=*/16};
  c.mem.has_llc = true;
  c.mem.llc.mode = LlcMode::kRealistic;
  c.mem.llc.sets = 16384;
  c.mem.llc.ways = 16;
  c.mem.llc.tag_latency = 6;
  c.mem.llc.data_latency = 26;
  c.mem.llc.banks = 4;
  c.mem.llc.bank_busy = 4;
  c.mem.dram = ddr4_3200();
  c.mem.dram_channels = 4;
  c.mem.prefetch.enabled = true;
  c.mem.prefetch.degree = 4;
  // SG2042 (C920 cores): large MMU caches; modeled as a wide two-level TLB.
  c.mem.tlb.enabled = true;
  c.mem.tlb.l1_entries = 64;
  c.mem.tlb.l2_entries = 4096;
  return c;
}

}  // namespace

SocConfig makePlatform(PlatformId id, unsigned cores) {
  switch (id) {
    case PlatformId::kRocket1: return rocket1(cores);
    case PlatformId::kRocket2: return rocket2(cores);
    case PlatformId::kBananaPiSim: return bananaPiSim(cores);
    case PlatformId::kFastBananaPiSim: return fastBananaPiSim(cores);
    case PlatformId::kSmallBoom:
      return boom(cores, smallBoomParams(), "SmallBoom", 4);
    case PlatformId::kMediumBoom:
      return boom(cores, mediumBoomParams(), "MediumBoom", 4);
    case PlatformId::kLargeBoom:
      return boom(cores, largeBoomParams(), "LargeBoom", 8);
    case PlatformId::kMilkVSim: return milkVSim(cores);
    case PlatformId::kBananaPiHw: return bananaPiHw(cores);
    case PlatformId::kMilkVHw: return milkVHw(cores);
  }
  throw std::invalid_argument("unknown PlatformId");
}

std::string_view platformName(PlatformId id) {
  switch (id) {
    case PlatformId::kRocket1: return "Rocket1";
    case PlatformId::kRocket2: return "Rocket2";
    case PlatformId::kBananaPiSim: return "BananaPiSim";
    case PlatformId::kFastBananaPiSim: return "FastBananaPiSim";
    case PlatformId::kSmallBoom: return "SmallBoom";
    case PlatformId::kMediumBoom: return "MediumBoom";
    case PlatformId::kLargeBoom: return "LargeBoom";
    case PlatformId::kMilkVSim: return "MilkVSim";
    case PlatformId::kBananaPiHw: return "BananaPiHw";
    case PlatformId::kMilkVHw: return "MilkVHw";
  }
  return "unknown";
}

bool isHardwareModel(PlatformId id) {
  return id == PlatformId::kBananaPiHw || id == PlatformId::kMilkVHw;
}

std::vector<PlatformId> allPlatforms() {
  return {PlatformId::kRocket1,     PlatformId::kRocket2,
          PlatformId::kBananaPiSim, PlatformId::kFastBananaPiSim,
          PlatformId::kSmallBoom,   PlatformId::kMediumBoom,
          PlatformId::kLargeBoom,   PlatformId::kMilkVSim,
          PlatformId::kBananaPiHw,  PlatformId::kMilkVHw};
}

std::vector<PlatformId> rocketFamily() {
  return {PlatformId::kRocket1, PlatformId::kRocket2,
          PlatformId::kBananaPiSim, PlatformId::kFastBananaPiSim};
}

std::vector<PlatformId> boomFamily() {
  return {PlatformId::kSmallBoom, PlatformId::kMediumBoom,
          PlatformId::kLargeBoom, PlatformId::kMilkVSim};
}

}  // namespace bridge
