// Platform catalog: every configuration the paper evaluates (Tables 4/5).
//
// FireSim models:
//   Rocket1        — "Huge Rocket" equivalent: 1.6 GHz in-order, 1 L2 bank,
//                    64-bit system bus, DDR3-2000 FR-FCFS quad-rank.
//   Rocket2        — Rocket1 with 4 L2 banks.
//   BananaPiSim    — Rocket2 with a 128-bit system bus (the paper's
//                    "Banana Pi Sim Model").
//   FastBananaPiSim— BananaPiSim clocked at 3.2 GHz to mimic dual issue.
//   SmallBoom / MediumBoom / LargeBoom — riscv-boom repository presets.
//   MilkVSim       — Large BOOM with MILK-V cache capacities: 64 KiB L1s,
//                    1 MiB L2, 4 x 16 MiB simplified (SRAM-like) LLC slices
//                    on 4 DDR3-2000 channels.
//
// Silicon references (the substitution for physical hardware, DESIGN.md §2):
//   BananaPiHw     — SpacemiT K1 cluster: dual-issue 8-stage in-order,
//                    LPDDR4-2666 dual channel, stride prefetcher.
//   MilkVHw        — SOPHON SG2042 cluster: wider out-of-order core,
//                    DDR4-3200 quad channel, latency-accurate 64 MiB LLC,
//                    stride prefetcher.
#pragma once

#include <string_view>
#include <vector>

#include "soc/soc.h"

namespace bridge {

enum class PlatformId {
  kRocket1,
  kRocket2,
  kBananaPiSim,
  kFastBananaPiSim,
  kSmallBoom,
  kMediumBoom,
  kLargeBoom,
  kMilkVSim,
  kBananaPiHw,
  kMilkVHw,
};

/// Build the SocConfig for a platform with `cores` cores (the paper models
/// one 4-core cluster; single-core runs use cores = 1).
SocConfig makePlatform(PlatformId id, unsigned cores);

std::string_view platformName(PlatformId id);

/// True for the silicon reference models (the "hardware" side of every
/// relative-speedup comparison).
bool isHardwareModel(PlatformId id);

/// All platforms, in presentation order.
std::vector<PlatformId> allPlatforms();

/// The FireSim-side platforms compared against a given hardware model.
std::vector<PlatformId> rocketFamily();  // compared against kBananaPiHw
std::vector<PlatformId> boomFamily();    // compared against kMilkVHw

}  // namespace bridge
