#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bridge {

namespace {
constexpr Addr kRankBufBase = 0x9000'0000;
constexpr Addr kRankBufStride = 0x0200'0000;
constexpr Addr kShmBase = 0xE000'0000;
constexpr Addr kShmStride = 0x0040'0000;
constexpr unsigned kStepQuantum = 4096;
}  // namespace

ClusterSimulation::ClusterSimulation(
    const SocConfig& node_config, const ClusterConfig& config,
    const std::function<TraceSourcePtr(int, int)>& program)
    : config_(config) {
  if (config.nodes < 1 || config.ranks_per_node < 1) {
    throw std::invalid_argument("cluster needs >= 1 node and rank");
  }
  if (node_config.cores < config.ranks_per_node) {
    throw std::invalid_argument("node SoC has fewer cores than ranks/node");
  }

  const double freq = node_config.freq_ghz;
  net_latency_ = nsToCycles(config.network.latency_us * 1000.0, freq);
  // bytes per cycle = (gbps / 8) bytes-per-ns / freq cycles-per-ns.
  const double bytes_per_cycle =
      (config.network.bandwidth_gbps / 8.0) / freq;
  cycles_per_byte_ = bytes_per_cycle > 0 ? 1.0 / bytes_per_cycle : 0.0;
  sw_overhead_ = nsToCycles(config.network.sw_overhead_ns, freq);

  const int nranks =
      static_cast<int>(config.nodes * config.ranks_per_node);
  nodes_.reserve(config.nodes);
  for (unsigned n = 0; n < config.nodes; ++n) {
    nodes_.push_back(std::make_unique<Soc>(node_config));
    nic_tx_.emplace_back();
    nic_rx_.emplace_back();
  }
  ranks_.resize(nranks);
  sends_.resize(nranks);
  recvs_.resize(nranks);
  for (int r = 0; r < nranks; ++r) {
    RankState& st = ranks_[r];
    st.node = static_cast<unsigned>(r) / config.ranks_per_node;
    st.local_core = static_cast<unsigned>(r) % config.ranks_per_node;
    st.core = &nodes_[st.node]->core(st.local_core);
    st.trace = program(r, nranks);
  }
  result_.rank_cycles.assign(nranks, 0);
}

Addr ClusterSimulation::rankBuffer(int rank) const {
  // Local-core-indexed so buffers are disjoint within a node.
  return kRankBufBase +
         static_cast<Addr>(ranks_[rank].local_core) * kRankBufStride;
}

Addr ClusterSimulation::shmBuffer(int src, int dst) const {
  const unsigned slots = config_.ranks_per_node * config_.ranks_per_node;
  const unsigned slot = (static_cast<unsigned>(src) +
                         static_cast<unsigned>(dst) *
                             config_.ranks_per_node) %
                        slots;
  return kShmBase + static_cast<Addr>(slot) * kShmStride;
}

void ClusterSimulation::unblock(int rank, Cycle resume) {
  RankState& st = ranks_[rank];
  assert(st.blocked);
  st.core->skipTo(resume);
  st.blocked = false;
}

ClusterRunResult ClusterSimulation::run() {
  const int n = numRanks();
  while (true) {
    int pick = -1;
    Cycle best = kCycleNever;
    bool all_done = true;
    for (int r = 0; r < n; ++r) {
      const RankState& st = ranks_[r];
      if (st.done) continue;
      all_done = false;
      if (!st.blocked && st.core->now() < best) {
        best = st.core->now();
        pick = r;
      }
    }
    if (all_done) break;
    if (pick < 0) {
      throw std::runtime_error("cluster MPI deadlock: all ranks blocked");
    }
    step(pick);
  }

  result_.cycles = 0;
  result_.retired = 0;
  for (int r = 0; r < n; ++r) {
    result_.cycles = std::max(result_.cycles, result_.rank_cycles[r]);
    result_.retired += ranks_[r].core->retired();
  }
  return result_;
}

void ClusterSimulation::step(int rank) {
  RankState& st = ranks_[rank];
  Cycle limit = kCycleNever;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (static_cast<int>(r) == rank) continue;
    const RankState& other = ranks_[r];
    if (!other.done && !other.blocked) {
      limit = std::min(limit, other.core->now() + config_.skew_slack);
    }
  }

  MicroOp op;
  for (unsigned i = 0; i < kStepQuantum; ++i) {
    if (st.core->now() > limit) return;
    if (!st.trace->next(&op)) {
      st.done = true;
      result_.rank_cycles[rank] = st.core->drain();
      return;
    }
    if (op.cls == OpClass::kMpi) {
      handleMpiOp(rank, op);
      return;
    }
    st.core->consume(op);
  }
}

void ClusterSimulation::handleMpiOp(int rank, const MicroOp& op) {
  RankState& st = ranks_[rank];
  st.arrive = st.core->drain();
  st.pending = op;
  st.blocked = true;

  switch (op.mpi.kind) {
    case MpiKind::kSend: {
      const int dst = op.mpi.peer;
      if (dst < 0 || dst >= numRanks() || dst == rank) {
        throw std::invalid_argument("kSend: bad peer rank");
      }
      PostedSend s;
      s.src = rank;
      s.tag = op.mpi.tag;
      s.bytes = op.mpi.bytes;
      // Eager only intra-node; cross-node always rendezvous in this model.
      s.eager = op.mpi.bytes <= config_.eager_limit &&
                ranks_[dst].node == st.node;
      if (s.eager) {
        s.data_ready = nodes_[st.node]->mem().bulkCopy(
            st.local_core, rankBuffer(rank), shmBuffer(rank, dst),
            op.mpi.bytes, st.arrive + sw_overhead_);
        unblock(rank, s.data_ready);
      } else {
        s.data_ready = st.arrive;
      }
      sends_[dst].push_back(s);
      trySendRecvMatch(dst);
      break;
    }
    case MpiKind::kRecv: {
      PostedRecv r;
      r.peer = op.mpi.peer;
      r.tag = op.mpi.tag;
      r.arrive = st.arrive;
      recvs_[rank].push_back(r);
      trySendRecvMatch(rank);
      break;
    }
    case MpiKind::kWaitall:
      unblock(rank, st.arrive + sw_overhead_ / 4);
      break;
    case MpiKind::kBarrier:
    case MpiKind::kBcast:
    case MpiKind::kReduce:
    case MpiKind::kAllreduce:
    case MpiKind::kAlltoall:
      tryCollective(op.mpi.kind);
      break;
    case MpiKind::kNone:
      throw std::invalid_argument("kMpi micro-op with kind kNone");
  }
}

void ClusterSimulation::trySendRecvMatch(int dst) {
  auto& rq = recvs_[dst];
  auto& sq = sends_[dst];
  while (!rq.empty()) {
    const PostedRecv recv = rq.front();
    auto it = std::find_if(sq.begin(), sq.end(), [&](const PostedSend& s) {
      return (recv.peer == kAnyPeer || recv.peer == s.src) &&
             (recv.tag == -1 || recv.tag == s.tag);
    });
    if (it == sq.end()) return;
    const PostedSend send = *it;
    sq.erase(it);
    rq.pop_front();
    completeTransfer(send.src, dst, send, recv.arrive);
  }
}

std::pair<Cycle, Cycle> ClusterSimulation::transferCost(
    int src, int dst, std::uint64_t bytes, Cycle t_src, Cycle t_dst) {
  const RankState& s = ranks_[src];
  const RankState& d = ranks_[dst];

  if (s.node == d.node) {
    ++result_.intra_messages;
    Soc& soc = *nodes_[s.node];
    const Cycle start = std::max(t_src, t_dst) + sw_overhead_;
    const Cycle in_done =
        soc.mem().bulkCopy(s.local_core, rankBuffer(src),
                           shmBuffer(src, dst), bytes, start);
    const Cycle out_done =
        soc.mem().bulkCopy(d.local_core, shmBuffer(src, dst),
                           rankBuffer(dst), bytes, in_done);
    return {in_done, out_done};
  }

  // Cross-node: sender drains its buffer to the NIC, the wire serializes
  // at link bandwidth, the flight adds latency, the receiver's NIC and
  // memory system land the payload.
  ++result_.inter_messages;
  result_.inter_bytes += bytes;
  const Cycle wire_cycles = std::max<Cycle>(
      1, static_cast<Cycle>(static_cast<double>(bytes) * cycles_per_byte_));

  const Cycle src_ready = t_src + sw_overhead_;
  const Cycle nic_in = nodes_[s.node]->mem().bulkCopy(
      s.local_core, rankBuffer(src), shmBuffer(src, src), bytes, src_ready);
  const Cycle tx_start = nic_tx_[s.node].reserve(nic_in, wire_cycles);
  const Cycle arrive_remote = tx_start + wire_cycles + net_latency_;
  const Cycle rx_done =
      nic_rx_[d.node].reserve(arrive_remote, wire_cycles) + wire_cycles;
  const Cycle landed = std::max(rx_done, t_dst + sw_overhead_);
  const Cycle out_done = nodes_[d.node]->mem().bulkCopy(
      d.local_core, shmBuffer(dst, dst), rankBuffer(dst), bytes, landed);
  // Sender completes once the NIC has taken the data (buffered send).
  return {tx_start + wire_cycles, out_done};
}

void ClusterSimulation::completeTransfer(int src, int dst,
                                         const PostedSend& send,
                                         Cycle recv_arrive) {
  if (send.eager) {
    // Intra-node eager path: sender already resumed.
    const RankState& d = ranks_[dst];
    const Cycle start = std::max(send.data_ready, recv_arrive + sw_overhead_);
    const Cycle done = nodes_[d.node]->mem().bulkCopy(
        d.local_core, shmBuffer(src, dst), rankBuffer(dst), send.bytes,
        start);
    ++result_.intra_messages;
    unblock(dst, done);
    return;
  }
  const auto [src_done, dst_done] =
      transferCost(src, dst, send.bytes, send.data_ready, recv_arrive);
  unblock(src, src_done);
  unblock(dst, dst_done);
}

void ClusterSimulation::tryCollective(MpiKind kind) {
  for (const RankState& st : ranks_) {
    if (st.done) {
      throw std::runtime_error("collective after a rank finished");
    }
    const bool at_collective =
        st.blocked && st.pending.cls == OpClass::kMpi &&
        st.pending.mpi.kind != MpiKind::kSend &&
        st.pending.mpi.kind != MpiKind::kRecv &&
        st.pending.mpi.kind != MpiKind::kWaitall;
    if (!at_collective) return;
  }
  for (const RankState& st : ranks_) {
    if (st.pending.mpi.kind != kind) {
      throw std::runtime_error("mismatched collective kinds across ranks");
    }
  }
  resolveCollective(kind);
}

void ClusterSimulation::resolveCollective(MpiKind kind) {
  const int n = numRanks();
  std::vector<Cycle> t(n);
  for (int i = 0; i < n; ++i) t[i] = ranks_[i].arrive + sw_overhead_;
  const std::uint64_t bytes = ranks_[0].pending.mpi.bytes;
  const int root = std::max(0, ranks_[0].pending.mpi.peer);

  auto combine = [&](std::uint64_t b) { return 2 * (b / 8 + 1); };

  switch (kind) {
    case MpiKind::kBarrier: {
      for (int k = 1; k < n; k <<= 1) {
        std::vector<Cycle> send_done(n), recv_done(n);
        for (int i = 0; i < n; ++i) {
          const int dst = (i + k) % n;
          const auto [s, r] = transferCost(i, dst, 8, t[i], t[dst]);
          send_done[i] = s;
          recv_done[dst] = r;
        }
        for (int i = 0; i < n; ++i) {
          t[i] = std::max(send_done[i], recv_done[i]);
        }
      }
      break;
    }
    case MpiKind::kBcast: {
      for (int k = 1; k < n; k <<= 1) {
        for (int rel = 0; rel < k && rel + k < n; ++rel) {
          const int src = (root + rel) % n;
          const int dst = (root + rel + k) % n;
          const auto [s, r] = transferCost(src, dst, bytes, t[src], t[dst]);
          t[src] = s;
          t[dst] = std::max(t[dst], r);
        }
      }
      break;
    }
    case MpiKind::kReduce:
    case MpiKind::kAllreduce: {
      for (int k = 1; k < n; k <<= 1) {
        for (int rel = 0; rel + k < n; rel += 2 * k) {
          const int dst = (root + rel) % n;
          const int src = (root + rel + k) % n;
          const auto [s, r] = transferCost(src, dst, bytes, t[src], t[dst]);
          t[src] = s;
          t[dst] = std::max(t[dst], r) + combine(bytes);
        }
      }
      if (kind == MpiKind::kAllreduce) {
        for (int k = 1; k < n; k <<= 1) {
          for (int rel = 0; rel < k && rel + k < n; ++rel) {
            const int src = (root + rel) % n;
            const int dst = (root + rel + k) % n;
            const auto [s, r] =
                transferCost(src, dst, bytes, t[src], t[dst]);
            t[src] = s;
            t[dst] = std::max(t[dst], r);
          }
        }
      }
      break;
    }
    case MpiKind::kAlltoall: {
      for (int s = 1; s < n; ++s) {
        std::vector<Cycle> next = t;
        for (int i = 0; i < n; ++i) {
          const int dst = (i + s) % n;
          const auto [sd, rd] = transferCost(i, dst, bytes, t[i], t[dst]);
          next[i] = std::max(next[i], sd);
          next[dst] = std::max(next[dst], rd);
        }
        t = next;
      }
      break;
    }
    default:
      throw std::logic_error("not a collective");
  }

  for (int i = 0; i < n; ++i) unblock(i, t[i]);
}

ClusterRunResult runClusterProgram(
    const SocConfig& node_config, const ClusterConfig& cluster,
    const std::function<TraceSourcePtr(int, int)>& program) {
  ClusterSimulation sim(node_config, cluster, program);
  return sim.run();
}

}  // namespace bridge
