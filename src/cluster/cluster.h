// Multi-node cluster simulation (the paper's §7 future work: "One key
// advantage of FireSim is its ability to simulate multiple nodes, enabling
// the execution of distributed runs. In future studies, simulations up to
// eight nodes can be performed...").
//
// A cluster is N identical SoC nodes connected by a network. MPI ranks are
// distributed block-wise across nodes; intra-node messages move through the
// node's simulated memory hierarchy (as in MpiSimulation), inter-node
// messages additionally traverse per-node NIC links modeled with latency +
// serialization bandwidth (BusyCalendar per direction, so concurrent flows
// share the wire honestly).
//
// Collectives use the same algorithms as the single-node runtime
// (dissemination barrier, binomial trees, pairwise all-to-all); their
// rank-to-rank hops simply cost more when they cross nodes, so the network
// penalty of naive (non-hierarchical) collectives emerges — the effect a
// multi-node FireSim study would measure.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "soc/soc.h"
#include "trace/trace_source.h"

namespace bridge {

struct NetworkParams {
  double latency_us = 2.0;        // one-way NIC-to-NIC latency
  double bandwidth_gbps = 10.0;   // per-link (paper: 10 Gbps X540-T2)
  double sw_overhead_ns = 800.0;  // per-message MPI software cost
};

struct ClusterConfig {
  unsigned nodes = 2;
  unsigned ranks_per_node = 4;
  NetworkParams network;
  std::uint64_t eager_limit = 8192;
  Cycle skew_slack = 512;
};

struct ClusterRunResult {
  Cycle cycles = 0;
  std::vector<Cycle> rank_cycles;
  std::uint64_t retired = 0;
  std::uint64_t intra_messages = 0;
  std::uint64_t inter_messages = 0;
  std::uint64_t inter_bytes = 0;
};

class ClusterSimulation {
 public:
  /// Builds `config.nodes` SoCs from `node_config` (cores >=
  /// ranks_per_node) and runs `program(rank, nranks)` on every rank.
  ClusterSimulation(const SocConfig& node_config,
                    const ClusterConfig& config,
                    const std::function<TraceSourcePtr(int, int)>& program);

  ClusterRunResult run();

  int numRanks() const { return static_cast<int>(ranks_.size()); }
  unsigned nodeOf(int rank) const {
    return static_cast<unsigned>(rank) / config_.ranks_per_node;
  }
  Soc& node(unsigned n) { return *nodes_.at(n); }

 private:
  struct RankState {
    TraceSourcePtr trace;
    CoreModel* core = nullptr;
    unsigned node = 0;
    unsigned local_core = 0;
    bool done = false;
    bool blocked = false;
    MicroOp pending{};
    Cycle arrive = 0;
  };

  struct PostedSend {
    int src = 0;
    std::int32_t tag = 0;
    std::uint64_t bytes = 0;
    Cycle data_ready = 0;
    bool eager = false;
  };

  struct PostedRecv {
    std::int32_t peer = kAnyPeer;
    std::int32_t tag = 0;
    Cycle arrive = 0;
  };

  void step(int rank);
  void handleMpiOp(int rank, const MicroOp& op);
  void trySendRecvMatch(int dst);
  void completeTransfer(int src, int dst, const PostedSend& send,
                        Cycle recv_arrive);
  void tryCollective(MpiKind kind);
  void resolveCollective(MpiKind kind);

  /// Data leaves rank `src` at `t_src`, lands at rank `dst` no earlier
  /// than `t_dst`; returns (src_done, dst_done). Crosses the network when
  /// the ranks live on different nodes.
  std::pair<Cycle, Cycle> transferCost(int src, int dst,
                                       std::uint64_t bytes, Cycle t_src,
                                       Cycle t_dst);

  Addr rankBuffer(int rank) const;
  Addr shmBuffer(int src, int dst) const;
  void unblock(int rank, Cycle resume);

  ClusterConfig config_;
  std::vector<std::unique_ptr<Soc>> nodes_;
  std::vector<RankState> ranks_;
  std::vector<std::deque<PostedSend>> sends_;
  std::vector<std::deque<PostedRecv>> recvs_;

  // Per-node NIC serialization, one calendar per direction.
  std::vector<BusyCalendar> nic_tx_;
  std::vector<BusyCalendar> nic_rx_;
  Cycle net_latency_;
  double cycles_per_byte_;
  Cycle sw_overhead_;

  ClusterRunResult result_;
};

/// Convenience wrapper mirroring runMpiProgram.
ClusterRunResult runClusterProgram(
    const SocConfig& node_config, const ClusterConfig& cluster,
    const std::function<TraceSourcePtr(int, int)>& program);

}  // namespace bridge
