// Content-addressed fingerprints for simulation jobs.
//
// A fingerprint is a 64-bit FNV-1a hash (hex string) over a canonical text
// description of everything that determines a run's outcome:
//   simulator version + resolved SocConfig (every timing parameter) +
//   workload spec (kind, benchmark, ranks, scale, seed, warmup, knobs).
// Two jobs with the same fingerprint produce bit-identical RunResults, so
// the result cache can key on it. Bump kSimulatorVersion whenever a timing
// model changes behaviour — that invalidates every cached result at once.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "soc/soc.h"
#include "sweep/job.h"

namespace bridge {

/// Version tag folded into every fingerprint. Bump on any change that can
/// move a simulated cycle count (core/cache/DRAM/bus/MPI models, workload
/// trace generation, platform presets).
inline constexpr std::string_view kSimulatorVersion = "bridge-sim-1";

/// 64-bit FNV-1a.
std::uint64_t fnv1a64(std::string_view data);

/// Exhaustive canonical dump of a SocConfig's timing parameters.
std::string describeSocConfig(const SocConfig& cfg);

/// The full fingerprint input for a job (version + config + workload).
std::string fingerprintInput(const JobSpec& spec);

/// 16-hex-digit cache key for a job.
std::string jobFingerprint(const JobSpec& spec);

}  // namespace bridge
