// Persistent result cache for simulation jobs.
//
// One file per fingerprint under the cache directory (default
// build/sweep-cache/, overridable with $BRIDGE_SWEEP_CACHE). Entries store
// the RunResult, the counter snapshot, and the human-readable fingerprint
// input for debugging.
//
// Crash safety (DESIGN.md §5f): an entry is a JSON body *sealed* with a
// version+checksum footer line ("#bridge-cache-v2 crc=<fnv1a64> len=<n>").
// Writes build the sealed payload in memory, write it to a unique temp
// file, and atomically rename it into place — readers and concurrent
// writers only ever observe complete entries, and a crash mid-write leaves
// a stale temp file, never a half-entry under the real name. Lookups
// verify the footer before parsing: a truncated, bit-flipped, or
// version-mismatched entry is detected, deleted, and treated as a miss —
// corrupt bytes are never deserialized into results. fsck() audits the
// whole directory and (in repair mode) removes bad entries and stale temp
// files; the cache-fsck tool wraps it for operators.
//
// Invalidation is by construction: the fingerprint folds in the simulator
// version and every timing parameter, so a stale entry is simply never
// looked up again. `clear()` evicts everything for manual housekeeping.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace bridge {

class FaultInjector;

struct CachedRun {
  RunResult result;
  StatsSnapshot stats;
  std::string description;  // fingerprint input (provenance / debugging)
};

/// fsck() audit of one cache directory.
struct CacheFsck {
  std::size_t scanned = 0;    // entry files examined
  std::size_t ok = 0;         // verified + parseable entries
  std::size_t corrupt = 0;    // bad footer / checksum / unparseable body
  std::size_t stale_tmp = 0;  // leftover temp files from interrupted writers
  std::size_t removed = 0;    // files deleted (repair mode only)
  std::vector<std::string> bad_files;  // corrupt entries + stale temps

  bool clean() const { return corrupt == 0 && stale_tmp == 0; }
};

class ResultCache {
 public:
  /// Opens (and lazily creates) `dir`. Empty selects defaultDir().
  explicit ResultCache(std::string dir = {});

  const std::string& dir() const { return dir_; }

  /// Entry for `key`, or nullopt on miss. A present-but-invalid entry
  /// (failed footer check or unparseable body) is deleted, logged, and
  /// reported as a miss so it is recomputed instead of read as garbage.
  std::optional<CachedRun> lookup(const std::string& key) const;

  /// Persist `run` under `key`; returns false if the write failed (the
  /// cache is best-effort: a failed store only costs a future re-run).
  bool store(const std::string& key, const CachedRun& run) const;

  /// Remove every entry; returns the number of files evicted.
  std::size_t clear() const;

  /// Verify every entry in the directory. With `repair`, corrupt entries
  /// and stale temp files are deleted (they re-simulate on next use).
  CacheFsck fsck(bool repair) const;

  /// True when the directory can be created and written to. The sweep
  /// engine probes this once and degrades to cache-off (with one warning)
  /// instead of failing mid-run on an unwritable $BRIDGE_SWEEP_CACHE.
  bool writable() const;

  /// Chaos hook: when set, store() passes its sealed payload through
  /// injector->mangleCachePayload() so tests can exercise torn and
  /// bit-corrupted entries. Not owned; nullptr disables.
  void setChaos(const FaultInjector* injector) { chaos_ = injector; }

  /// $BRIDGE_SWEEP_CACHE if set, else "build/sweep-cache".
  static std::string defaultDir();

 private:
  std::string pathFor(const std::string& key) const;

  std::string dir_;
  const FaultInjector* chaos_ = nullptr;
};

/// JSON round-trip helpers (exposed for tests).
std::string cachedRunToJson(const CachedRun& run);
std::optional<CachedRun> cachedRunFromJson(const std::string& json);

/// Footer seal/verify (exposed for tests). sealCacheEntry appends the
/// version+checksum footer line; verifyCacheEntry checks it and, on
/// success, yields the JSON body. On failure `*reason` names the defect
/// (truncated / checksum mismatch / version mismatch / trailing garbage).
std::string sealCacheEntry(const std::string& json);
bool verifyCacheEntry(const std::string& payload, std::string* json,
                      std::string* reason);

}  // namespace bridge
