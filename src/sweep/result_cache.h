// Persistent result cache for simulation jobs.
//
// Sharded layout (DESIGN.md §5g): entries live two levels deep, keyed by
// fingerprint prefix —
//   <dir>/<first-2-hex-of-fingerprint>/<fingerprint>.json
// so one cache tree can be shared by several concurrent *processes* (sweep
// daemons, workers, benches) without funnelling every write through one
// directory. Each shard carries a `.lock` file; writers hold an advisory
// flock(2) on it for the duration of a store. The kernel releases a flock
// when its holder dies, so a crashed writer can never wedge a shard — the
// lock *file* it leaves behind is inert litter that fsck(--repair) sweeps
// up. Entries written by pre-shard versions at the directory root are still
// found by lookup() (read-only compat) and audited by fsck().
//
// Crash safety (DESIGN.md §5f): an entry is a JSON body *sealed* with a
// version+checksum footer line ("#bridge-cache-v2 crc=<fnv1a64> len=<n>").
// Writes build the sealed payload in memory, write it to a unique temp
// file, and atomically rename it into place — readers and concurrent
// writers only ever observe complete entries, and a crash mid-write leaves
// a stale temp file, never a half-entry under the real name. Lookups
// verify the footer before parsing: a truncated, bit-flipped, or
// version-mismatched entry is detected, deleted, and treated as a miss —
// corrupt bytes are never deserialized into results. fsck() audits the
// whole tree (root + every shard, with per-shard statistics) and (in
// repair mode) removes bad entries, stale temp files, and unheld shard
// lock files; the cache-fsck tool wraps it for operators.
//
// Invalidation is by construction: the fingerprint folds in the simulator
// version and every timing parameter, so a stale entry is simply never
// looked up again. `clear()` evicts everything for manual housekeeping.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace bridge {

class FaultInjector;

struct CachedRun {
  RunResult result;
  StatsSnapshot stats;
  std::string description;  // fingerprint input (provenance / debugging)
};

/// fsck() audit of one shard directory (or the legacy root, shard "/").
struct ShardFsck {
  std::string shard;          // two-hex shard name, or "/" for root entries
  std::size_t scanned = 0;    // entry files examined
  std::size_t ok = 0;         // verified + parseable entries
  std::size_t corrupt = 0;    // bad footer / checksum / unparseable body
  std::size_t stale_tmp = 0;  // leftover temp files from interrupted writers
  std::size_t stale_lock = 0; // unheld .lock files (writer exited or died)
  std::size_t removed = 0;    // files deleted (repair mode only)
};

/// fsck() audit of a whole cache tree.
struct CacheFsck {
  std::size_t scanned = 0;    // entry files examined
  std::size_t ok = 0;         // verified + parseable entries
  std::size_t corrupt = 0;    // bad footer / checksum / unparseable body
  std::size_t stale_tmp = 0;  // leftover temp files from interrupted writers
  std::size_t stale_lock = 0; // unheld shard lock files (pure litter)
  std::size_t removed = 0;    // files deleted (repair mode only)
  std::vector<ShardFsck> shards;       // per-shard breakdown, sorted by name
  std::vector<std::string> bad_files;  // corrupt entries, stale temps + locks

  /// Lock files are litter, not defects: a live writer holds one by design
  /// and an unheld one costs nothing, so cleanliness ignores them.
  bool clean() const { return corrupt == 0 && stale_tmp == 0; }
};

class ResultCache {
 public:
  /// Opens (and lazily creates) `dir`. Empty selects defaultDir().
  explicit ResultCache(std::string dir = {});

  const std::string& dir() const { return dir_; }

  /// Two-hex shard name for a fingerprint (its first two characters).
  static std::string shardFor(const std::string& key);

  /// Absolute path an entry for `key` is written to (sharded layout).
  std::string entryPath(const std::string& key) const;

  /// Entry for `key`, or nullopt on miss. Looks in the key's shard first,
  /// then at the directory root (entries written by pre-shard versions). A
  /// present-but-invalid entry (failed footer check or unparseable body) is
  /// deleted, logged, and reported as a miss so it is recomputed instead of
  /// read as garbage.
  std::optional<CachedRun> lookup(const std::string& key) const;

  /// Persist `run` under `key` in its shard, holding the shard's lock file
  /// for the write; returns false if the write failed (the cache is
  /// best-effort: a failed store only costs a future re-run).
  bool store(const std::string& key, const CachedRun& run) const;

  /// Remove every entry (root and all shards); returns the number evicted.
  std::size_t clear() const;

  /// Verify every entry in the tree, reporting per-shard statistics. With
  /// `repair`, corrupt entries and stale temp files are deleted (they
  /// re-simulate on next use), and so are shard lock files nobody currently
  /// holds — the litter a killed daemon leaves behind.
  CacheFsck fsck(bool repair) const;

  /// True when the directory can be created and written to. The sweep
  /// engine probes this once and degrades to cache-off (with one warning)
  /// instead of failing mid-run on an unwritable $BRIDGE_SWEEP_CACHE.
  bool writable() const;

  /// Chaos hook: when set, store() passes its sealed payload through
  /// injector->mangleCachePayload() so tests can exercise torn and
  /// bit-corrupted entries. Not owned; nullptr disables.
  void setChaos(const FaultInjector* injector) { chaos_ = injector; }

  /// $BRIDGE_SWEEP_CACHE if set, else "build/sweep-cache".
  static std::string defaultDir();

 private:
  std::string legacyPath(const std::string& key) const;

  std::string dir_;
  const FaultInjector* chaos_ = nullptr;
};

/// JSON round-trip helpers (exposed for tests).
std::string cachedRunToJson(const CachedRun& run);
std::optional<CachedRun> cachedRunFromJson(const std::string& json);

/// Footer seal/verify (exposed for tests). sealCacheEntry appends the
/// version+checksum footer line; verifyCacheEntry checks it and, on
/// success, yields the JSON body. On failure `*reason` names the defect
/// (truncated / checksum mismatch / version mismatch / trailing garbage).
std::string sealCacheEntry(const std::string& json);
bool verifyCacheEntry(const std::string& payload, std::string* json,
                      std::string* reason);

}  // namespace bridge
