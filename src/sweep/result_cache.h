// Persistent result cache for simulation jobs.
//
// One JSON file per fingerprint under the cache directory (default
// build/sweep-cache/, overridable with $BRIDGE_SWEEP_CACHE). Entries store
// the RunResult, the counter snapshot, and the human-readable fingerprint
// input for debugging. Lookups treat any unreadable or malformed file as a
// miss, so a corrupted cache degrades to re-simulation, never to wrong
// results. Writes go through a temp file + rename, so concurrent writers
// (threads or processes) can only ever leave a complete entry behind.
//
// Invalidation is by construction: the fingerprint folds in the simulator
// version and every timing parameter, so a stale entry is simply never
// looked up again. `clear()` evicts everything for manual housekeeping.
#pragma once

#include <optional>
#include <string>

#include "harness/experiment.h"

namespace bridge {

struct CachedRun {
  RunResult result;
  StatsSnapshot stats;
  std::string description;  // fingerprint input (provenance / debugging)
};

class ResultCache {
 public:
  /// Opens (and lazily creates) `dir`. Empty selects defaultDir().
  explicit ResultCache(std::string dir = {});

  const std::string& dir() const { return dir_; }

  /// Entry for `key`, or nullopt on miss / unreadable / malformed entry.
  std::optional<CachedRun> lookup(const std::string& key) const;

  /// Persist `run` under `key`; returns false if the write failed (the
  /// cache is best-effort: a failed store only costs a future re-run).
  bool store(const std::string& key, const CachedRun& run) const;

  /// Remove every entry; returns the number of files evicted.
  std::size_t clear() const;

  /// $BRIDGE_SWEEP_CACHE if set, else "build/sweep-cache".
  static std::string defaultDir();

 private:
  std::string pathFor(const std::string& key) const;

  std::string dir_;
};

/// JSON round-trip helpers (exposed for tests).
std::string cachedRunToJson(const CachedRun& run);
std::optional<CachedRun> cachedRunFromJson(const std::string& json);

}  // namespace bridge
