#include "sweep/result_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "sim/jsonio.h"
#include "sim/log.h"
#include "sweep/faults.h"
#include "sweep/fingerprint.h"

namespace fs = std::filesystem;

namespace bridge {

std::string cachedRunToJson(const CachedRun& run) {
  std::string out = "{\n";
  out += "  \"description\": ";
  jsonio::appendEscaped(&out, run.description);
  out += ",\n";
  out += "  \"cycles\": " + std::to_string(run.result.cycles) + ",\n";
  out += "  \"seconds\": " + jsonio::formatDouble(run.result.seconds) + ",\n";
  out += "  \"retired\": " + std::to_string(run.result.retired) + ",\n";
  out += "  \"ipc\": " + jsonio::formatDouble(run.result.ipc) + ",\n";
  out += "  \"messages\": " + std::to_string(run.result.messages) + ",\n";
  out += "  \"stats\": {";
  bool first = true;
  for (const auto& [name, value] : run.stats) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    jsonio::appendEscaped(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::optional<CachedRun> cachedRunFromJson(const std::string& json) {
  CachedRun run;
  jsonio::Parser p(json);
  const bool ok = p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "description") return v.parseString(&run.description);
    if (key == "cycles") return v.parseUint64(&run.result.cycles);
    if (key == "seconds") return v.parseDouble(&run.result.seconds);
    if (key == "retired") return v.parseUint64(&run.result.retired);
    if (key == "ipc") return v.parseDouble(&run.result.ipc);
    if (key == "messages") return v.parseUint64(&run.result.messages);
    if (key == "stats") {
      return v.parseObject([&](const std::string& name, jsonio::Parser& sv) {
        std::uint64_t value = 0;
        if (!sv.parseUint64(&value)) return false;
        run.stats.emplace_back(name, value);
        return true;
      });
    }
    return false;  // unknown field: written by a different version — miss
  });
  if (!ok || !p.atEnd()) return std::nullopt;
  return run;
}

namespace {

constexpr std::string_view kFooterMagic = "#bridge-cache-v2";
constexpr std::string_view kShardLockName = ".lock";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Advisory per-shard write lock: open-or-create the shard's `.lock` file
/// and flock(2) it exclusively. flock is released by the kernel when the
/// holder exits or dies, so a crashed writer never wedges the shard; the
/// lock file itself stays behind as litter for fsck to sweep. Lock failure
/// is non-fatal — the atomic temp+rename write is already safe without the
/// lock; the lock only serializes same-shard writers across processes.
class ShardLock {
 public:
  explicit ShardLock(const std::string& shard_dir) {
    const std::string path = shard_dir + "/" + std::string(kShardLockName);
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~ShardLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  int fd_ = -1;
};

/// True when nobody currently holds the shard lock file at `path` — i.e.
/// the file is litter from an exited (or killed) writer, safe to remove.
bool lockFileIsStale(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return false;  // vanished or unreadable: not ours to judge
  const bool stale = ::flock(fd, LOCK_EX | LOCK_NB) == 0;
  if (stale) ::flock(fd, LOCK_UN);
  ::close(fd);
  return stale;
}

}  // namespace

std::string sealCacheEntry(const std::string& json) {
  std::string out = json;
  out += kFooterMagic;
  out += " crc=" + hex16(fnv1a64(json));
  out += " len=" + std::to_string(json.size());
  out += "\n";
  return out;
}

bool verifyCacheEntry(const std::string& payload, std::string* json,
                      std::string* reason) {
  const auto fail = [&](const char* why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  // The footer is the last line; locate it by the magic marker so a
  // truncated body cannot alias into a valid-looking layout.
  const std::size_t at = payload.rfind(kFooterMagic);
  if (at == std::string::npos) {
    // A well-formed v1 entry lands here too: no footer means either a
    // truncated write or a pre-footer writer — recompute in both cases.
    return fail("missing footer (truncated or pre-v2 entry)");
  }
  unsigned long long crc = 0;
  unsigned long long len = 0;
  char newline = '\0';
  const int fields =
      std::sscanf(payload.c_str() + at + kFooterMagic.size(),
                  " crc=%16llx len=%llu%c", &crc, &len, &newline);
  if (fields != 3 || newline != '\n') return fail("malformed footer");
  if (len != at) return fail("length mismatch (truncated body)");
  // Everything after the footer newline is unexpected trailing data.
  const std::size_t footer_end = payload.find('\n', at);
  if (footer_end + 1 != payload.size()) return fail("trailing garbage");
  if (fnv1a64(std::string_view(payload).substr(0, at)) != crc) {
    return fail("checksum mismatch");
  }
  if (json != nullptr) *json = payload.substr(0, at);
  return true;
}

std::string ResultCache::defaultDir() {
  if (const char* env = std::getenv("BRIDGE_SWEEP_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/sweep-cache";
}

ResultCache::ResultCache(std::string dir)
    : dir_(dir.empty() ? defaultDir() : std::move(dir)) {}

std::string ResultCache::shardFor(const std::string& key) {
  // Fingerprints are 16 hex digits, so two characters give 256 shards.
  // Sanitize so an odd key from a test or tool can never escape the tree.
  std::string shard = "00";
  for (std::size_t i = 0; i < 2 && i < key.size(); ++i) {
    const char c = key[i];
    shard[i] = std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return shard;
}

std::string ResultCache::entryPath(const std::string& key) const {
  return dir_ + "/" + shardFor(key) + "/" + key + ".json";
}

std::string ResultCache::legacyPath(const std::string& key) const {
  return dir_ + "/" + key + ".json";
}

std::optional<CachedRun> ResultCache::lookup(const std::string& key) const {
  // The key's shard is authoritative; the directory root is read-only
  // compat with entries written before the layout was sharded.
  for (const std::string& path : {entryPath(key), legacyPath(key)}) {
    std::ifstream in(path);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string json;
    std::string reason;
    if (!verifyCacheEntry(buf.str(), &json, &reason)) {
      // Detected corruption: delete so the entry is recomputed, and never
      // hand unverified bytes to the JSON layer.
      BRIDGE_LOG(kWarn) << "sweep cache: corrupt entry " << path << " ("
                        << reason << "); removing for recompute";
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    std::optional<CachedRun> run = cachedRunFromJson(json);
    if (!run) {
      // Checksum-valid but unparseable: written by an incompatible writer
      // under the same footer version. Same recovery: recompute.
      BRIDGE_LOG(kWarn) << "sweep cache: unparseable entry " << path
                        << "; removing for recompute";
      std::error_code ec;
      fs::remove(path, ec);
      continue;
    }
    return run;
  }
  return std::nullopt;
}

bool ResultCache::store(const std::string& key, const CachedRun& run) const {
  std::error_code ec;
  const std::string shard_dir = dir_ + "/" + shardFor(key);
  fs::create_directories(shard_dir, ec);
  // Serialize same-shard writers across *processes* (daemons and workers
  // sharing one tree). Correctness does not depend on it — the temp+rename
  // below is atomic either way — but it keeps concurrent writers of the
  // same entry from racing redundant temp files.
  ShardLock lock(shard_dir);
  // Unique temp name per writer, then an atomic rename: readers and
  // concurrent writers only ever observe complete entries.
  std::ostringstream tmp_name;
  tmp_name << entryPath(key) << ".tmp." << ::getpid() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = tmp_name.str();
  std::string payload = sealCacheEntry(cachedRunToJson(run));
  if (chaos_ != nullptr) payload = chaos_->mangleCachePayload(key, payload);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      BRIDGE_LOG(kWarn) << "sweep cache: cannot write " << tmp;
      return false;
    }
    out << payload;
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, entryPath(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::size_t ResultCache::clear() const {
  std::error_code ec;
  std::size_t evicted = 0;
  const auto sweep_dir = [&](const fs::path& where) {
    std::error_code iter_ec;
    for (const fs::directory_entry& e : fs::directory_iterator(where, iter_ec)) {
      if (e.path().extension() == ".json" && fs::remove(e.path(), ec)) {
        ++evicted;
      }
    }
  };
  sweep_dir(dir_);
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    std::error_code sub_ec;
    if (e.is_directory(sub_ec)) sweep_dir(e.path());
  }
  return evicted;
}

CacheFsck ResultCache::fsck(bool repair) const {
  CacheFsck report;
  std::error_code ec;

  const auto condemn = [&](const fs::path& p, ShardFsck* shard) {
    report.bad_files.push_back(p.string());
    if (repair && fs::remove(p, ec)) {
      ++report.removed;
      ++shard->removed;
    }
  };

  // Audit one directory of entries; `is_root` treats subdirectories as
  // shards (skipped here, walked by the caller) and lock files as unknown
  // litter only inside shards.
  const auto audit = [&](const fs::path& where, ShardFsck* shard) {
    std::vector<fs::path> files;
    std::error_code iter_ec;
    for (const fs::directory_entry& e : fs::directory_iterator(where, iter_ec)) {
      if (e.is_regular_file(iter_ec)) files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());  // deterministic report order

    for (const fs::path& p : files) {
      const std::string name = p.filename().string();
      if (name.find(".tmp.") != std::string::npos) {
        // A writer died between write and rename; the real entry (if any)
        // is intact, so the temp is pure litter.
        ++report.stale_tmp;
        ++shard->stale_tmp;
        condemn(p, shard);
        continue;
      }
      if (name == kShardLockName) {
        // Held lock = a live writer, leave it alone. Unheld lock = litter
        // from an exited or killed writer; harmless, removable.
        if (lockFileIsStale(p.string())) {
          ++report.stale_lock;
          ++shard->stale_lock;
          condemn(p, shard);
        }
        continue;
      }
      if (p.extension() != ".json") continue;
      ++report.scanned;
      ++shard->scanned;
      std::ifstream in(p);
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string json;
      std::string reason;
      if (!in || !verifyCacheEntry(buf.str(), &json, &reason) ||
          !cachedRunFromJson(json)) {
        ++report.corrupt;
        ++shard->corrupt;
        condemn(p, shard);
        continue;
      }
      ++report.ok;
      ++shard->ok;
    }
  };

  // Root first ("/" = legacy flat entries + temp litter), then every shard
  // subdirectory in sorted order.
  ShardFsck root;
  root.shard = "/";
  audit(dir_, &root);
  if (root.scanned + root.stale_tmp + root.stale_lock + root.removed != 0) {
    report.shards.push_back(std::move(root));
  }

  std::vector<fs::path> shard_dirs;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    std::error_code sub_ec;
    // The admission journal (DESIGN §5k) lives inside the cache tree but
    // is not a shard: its segments and rotation temps have their own
    // format and their own fsck (cache_fsck audits it separately).
    if (e.path().filename() == "journal") continue;
    if (e.is_directory(sub_ec)) shard_dirs.push_back(e.path());
  }
  std::sort(shard_dirs.begin(), shard_dirs.end());
  for (const fs::path& d : shard_dirs) {
    ShardFsck shard;
    shard.shard = d.filename().string();
    audit(d, &shard);
    report.shards.push_back(std::move(shard));
  }
  return report;
}

bool ResultCache::writable() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  std::ostringstream probe_name;
  probe_name << dir_ << "/.probe." << ::getpid() << "."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string probe = probe_name.str();
  std::ofstream out(probe, std::ios::trunc);
  if (!out) return false;
  out << "probe";
  out.close();
  const bool ok = out.good();
  fs::remove(probe, ec);
  return ok;
}

}  // namespace bridge
