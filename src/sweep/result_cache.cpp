#include "sweep/result_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "sim/jsonio.h"
#include "sim/log.h"
#include "sweep/faults.h"
#include "sweep/fingerprint.h"

namespace fs = std::filesystem;

namespace bridge {

std::string cachedRunToJson(const CachedRun& run) {
  std::string out = "{\n";
  out += "  \"description\": ";
  jsonio::appendEscaped(&out, run.description);
  out += ",\n";
  out += "  \"cycles\": " + std::to_string(run.result.cycles) + ",\n";
  out += "  \"seconds\": " + jsonio::formatDouble(run.result.seconds) + ",\n";
  out += "  \"retired\": " + std::to_string(run.result.retired) + ",\n";
  out += "  \"ipc\": " + jsonio::formatDouble(run.result.ipc) + ",\n";
  out += "  \"messages\": " + std::to_string(run.result.messages) + ",\n";
  out += "  \"stats\": {";
  bool first = true;
  for (const auto& [name, value] : run.stats) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    jsonio::appendEscaped(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::optional<CachedRun> cachedRunFromJson(const std::string& json) {
  CachedRun run;
  jsonio::Parser p(json);
  const bool ok = p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "description") return v.parseString(&run.description);
    if (key == "cycles") return v.parseUint64(&run.result.cycles);
    if (key == "seconds") return v.parseDouble(&run.result.seconds);
    if (key == "retired") return v.parseUint64(&run.result.retired);
    if (key == "ipc") return v.parseDouble(&run.result.ipc);
    if (key == "messages") return v.parseUint64(&run.result.messages);
    if (key == "stats") {
      return v.parseObject([&](const std::string& name, jsonio::Parser& sv) {
        std::uint64_t value = 0;
        if (!sv.parseUint64(&value)) return false;
        run.stats.emplace_back(name, value);
        return true;
      });
    }
    return false;  // unknown field: written by a different version — miss
  });
  if (!ok || !p.atEnd()) return std::nullopt;
  return run;
}

namespace {

constexpr std::string_view kFooterMagic = "#bridge-cache-v2";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string sealCacheEntry(const std::string& json) {
  std::string out = json;
  out += kFooterMagic;
  out += " crc=" + hex16(fnv1a64(json));
  out += " len=" + std::to_string(json.size());
  out += "\n";
  return out;
}

bool verifyCacheEntry(const std::string& payload, std::string* json,
                      std::string* reason) {
  const auto fail = [&](const char* why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  // The footer is the last line; locate it by the magic marker so a
  // truncated body cannot alias into a valid-looking layout.
  const std::size_t at = payload.rfind(kFooterMagic);
  if (at == std::string::npos) {
    // A well-formed v1 entry lands here too: no footer means either a
    // truncated write or a pre-footer writer — recompute in both cases.
    return fail("missing footer (truncated or pre-v2 entry)");
  }
  unsigned long long crc = 0;
  unsigned long long len = 0;
  char newline = '\0';
  const int fields =
      std::sscanf(payload.c_str() + at + kFooterMagic.size(),
                  " crc=%16llx len=%llu%c", &crc, &len, &newline);
  if (fields != 3 || newline != '\n') return fail("malformed footer");
  if (len != at) return fail("length mismatch (truncated body)");
  // Everything after the footer newline is unexpected trailing data.
  const std::size_t footer_end = payload.find('\n', at);
  if (footer_end + 1 != payload.size()) return fail("trailing garbage");
  if (fnv1a64(std::string_view(payload).substr(0, at)) != crc) {
    return fail("checksum mismatch");
  }
  if (json != nullptr) *json = payload.substr(0, at);
  return true;
}

std::string ResultCache::defaultDir() {
  if (const char* env = std::getenv("BRIDGE_SWEEP_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/sweep-cache";
}

ResultCache::ResultCache(std::string dir)
    : dir_(dir.empty() ? defaultDir() : std::move(dir)) {}

std::string ResultCache::pathFor(const std::string& key) const {
  return dir_ + "/" + key + ".json";
}

std::optional<CachedRun> ResultCache::lookup(const std::string& key) const {
  const std::string path = pathFor(key);
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string json;
  std::string reason;
  if (!verifyCacheEntry(buf.str(), &json, &reason)) {
    // Detected corruption: delete so the entry is recomputed, and never
    // hand unverified bytes to the JSON layer.
    BRIDGE_LOG(kWarn) << "sweep cache: corrupt entry " << path << " ("
                      << reason << "); removing for recompute";
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  }
  std::optional<CachedRun> run = cachedRunFromJson(json);
  if (!run) {
    // Checksum-valid but unparseable: written by an incompatible writer
    // under the same footer version. Same recovery: recompute.
    BRIDGE_LOG(kWarn) << "sweep cache: unparseable entry " << path
                      << "; removing for recompute";
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  }
  return run;
}

bool ResultCache::store(const std::string& key, const CachedRun& run) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Unique temp name per writer, then an atomic rename: readers and
  // concurrent writers only ever observe complete entries.
  std::ostringstream tmp_name;
  tmp_name << pathFor(key) << ".tmp." << ::getpid() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = tmp_name.str();
  std::string payload = sealCacheEntry(cachedRunToJson(run));
  if (chaos_ != nullptr) payload = chaos_->mangleCachePayload(key, payload);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      BRIDGE_LOG(kWarn) << "sweep cache: cannot write " << tmp;
      return false;
    }
    out << payload;
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, pathFor(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::size_t ResultCache::clear() const {
  std::error_code ec;
  std::size_t evicted = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (e.path().extension() == ".json" && fs::remove(e.path(), ec)) {
      ++evicted;
    }
  }
  return evicted;
}

CacheFsck ResultCache::fsck(bool repair) const {
  CacheFsck report;
  std::error_code ec;
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (e.is_regular_file(ec)) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());  // deterministic report order

  const auto condemn = [&](const fs::path& p) {
    report.bad_files.push_back(p.string());
    if (repair && fs::remove(p, ec)) ++report.removed;
  };

  for (const fs::path& p : files) {
    const std::string name = p.filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      // A writer died between write and rename; the real entry (if any)
      // is intact, so the temp is pure litter.
      ++report.stale_tmp;
      condemn(p);
      continue;
    }
    if (p.extension() != ".json") continue;
    ++report.scanned;
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string json;
    std::string reason;
    if (!in || !verifyCacheEntry(buf.str(), &json, &reason) ||
        !cachedRunFromJson(json)) {
      ++report.corrupt;
      condemn(p);
      continue;
    }
    ++report.ok;
  }
  return report;
}

bool ResultCache::writable() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  std::ostringstream probe_name;
  probe_name << dir_ << "/.probe." << ::getpid() << "."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string probe = probe_name.str();
  std::ofstream out(probe, std::ios::trunc);
  if (!out) return false;
  out << "probe";
  out.close();
  const bool ok = out.good();
  fs::remove(probe, ec);
  return ok;
}

}  // namespace bridge
