#include "sweep/result_cache.h"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "sim/log.h"

namespace fs = std::filesystem;

namespace bridge {
namespace {

// ---------------------------------------------------------------- writer --

void appendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string formatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Bare "inf"/"nan" are not JSON; they cannot occur in a RunResult, but
  // keep the file parseable regardless.
  std::string s = buf;
  if (s.find_first_not_of("0123456789+-.eE") != std::string::npos) s = "0";
  return s;
}

// ----------------------------------------------------------------- parser --
// Minimal recursive-descent JSON subset parser: objects, strings, numbers.
// It only ever reads files this module wrote; anything unexpected fails the
// parse and the cache treats the entry as a miss.

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parseObject(
      const std::function<bool(const std::string&, JsonParser&)>& on_field) {
    skipWs();
    if (!consume('{')) return false;
    skipWs();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      if (!parseString(&key)) return false;
      skipWs();
      if (!consume(':')) return false;
      if (!on_field(key, *this)) return false;
      skipWs();
      if (consume(',')) {
        skipWs();
        continue;
      }
      return consume('}');
    }
  }

  bool parseString(std::string* out) {
    skipWs();
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0x7F) return false;  // we only ever emit ASCII escapes
            out->push_back(static_cast<char>(code));
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool parseUint64(std::uint64_t* out) {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start) return false;
    *out = std::strtoull(std::string(text_.substr(start, pos_ - start)).c_str(),
                         nullptr, 10);
    return true;
  }

  bool parseDouble(double* out) {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::string_view("+-.eE").find(text_[pos_]) != std::string_view::npos)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                       nullptr);
    return true;
  }

  bool atEnd() {
    skipWs();
    return pos_ == text_.size();
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string cachedRunToJson(const CachedRun& run) {
  std::string out = "{\n";
  out += "  \"description\": ";
  appendEscaped(&out, run.description);
  out += ",\n";
  out += "  \"cycles\": " + std::to_string(run.result.cycles) + ",\n";
  out += "  \"seconds\": " + formatDouble(run.result.seconds) + ",\n";
  out += "  \"retired\": " + std::to_string(run.result.retired) + ",\n";
  out += "  \"ipc\": " + formatDouble(run.result.ipc) + ",\n";
  out += "  \"messages\": " + std::to_string(run.result.messages) + ",\n";
  out += "  \"stats\": {";
  bool first = true;
  for (const auto& [name, value] : run.stats) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendEscaped(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::optional<CachedRun> cachedRunFromJson(const std::string& json) {
  CachedRun run;
  JsonParser p(json);
  const bool ok = p.parseObject([&](const std::string& key, JsonParser& v) {
    if (key == "description") return v.parseString(&run.description);
    if (key == "cycles") return v.parseUint64(&run.result.cycles);
    if (key == "seconds") return v.parseDouble(&run.result.seconds);
    if (key == "retired") return v.parseUint64(&run.result.retired);
    if (key == "ipc") return v.parseDouble(&run.result.ipc);
    if (key == "messages") return v.parseUint64(&run.result.messages);
    if (key == "stats") {
      return v.parseObject([&](const std::string& name, JsonParser& sv) {
        std::uint64_t value = 0;
        if (!sv.parseUint64(&value)) return false;
        run.stats.emplace_back(name, value);
        return true;
      });
    }
    return false;  // unknown field: written by a different version — miss
  });
  if (!ok || !p.atEnd()) return std::nullopt;
  return run;
}

std::string ResultCache::defaultDir() {
  if (const char* env = std::getenv("BRIDGE_SWEEP_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/sweep-cache";
}

ResultCache::ResultCache(std::string dir)
    : dir_(dir.empty() ? defaultDir() : std::move(dir)) {}

std::string ResultCache::pathFor(const std::string& key) const {
  return dir_ + "/" + key + ".json";
}

std::optional<CachedRun> ResultCache::lookup(const std::string& key) const {
  std::ifstream in(pathFor(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return cachedRunFromJson(buf.str());
}

bool ResultCache::store(const std::string& key, const CachedRun& run) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Unique temp name per writer, then an atomic rename: readers and
  // concurrent writers only ever observe complete entries.
  std::ostringstream tmp_name;
  tmp_name << pathFor(key) << ".tmp." << ::getpid() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      BRIDGE_LOG(kWarn) << "sweep cache: cannot write " << tmp;
      return false;
    }
    out << cachedRunToJson(run);
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, pathFor(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::size_t ResultCache::clear() const {
  std::error_code ec;
  std::size_t evicted = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (e.path().extension() == ".json" && fs::remove(e.path(), ec)) {
      ++evicted;
    }
  }
  return evicted;
}

}  // namespace bridge
