#include "sweep/result_cache.h"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "sim/jsonio.h"
#include "sim/log.h"

namespace fs = std::filesystem;

namespace bridge {

std::string cachedRunToJson(const CachedRun& run) {
  std::string out = "{\n";
  out += "  \"description\": ";
  jsonio::appendEscaped(&out, run.description);
  out += ",\n";
  out += "  \"cycles\": " + std::to_string(run.result.cycles) + ",\n";
  out += "  \"seconds\": " + jsonio::formatDouble(run.result.seconds) + ",\n";
  out += "  \"retired\": " + std::to_string(run.result.retired) + ",\n";
  out += "  \"ipc\": " + jsonio::formatDouble(run.result.ipc) + ",\n";
  out += "  \"messages\": " + std::to_string(run.result.messages) + ",\n";
  out += "  \"stats\": {";
  bool first = true;
  for (const auto& [name, value] : run.stats) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    jsonio::appendEscaped(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::optional<CachedRun> cachedRunFromJson(const std::string& json) {
  CachedRun run;
  jsonio::Parser p(json);
  const bool ok = p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "description") return v.parseString(&run.description);
    if (key == "cycles") return v.parseUint64(&run.result.cycles);
    if (key == "seconds") return v.parseDouble(&run.result.seconds);
    if (key == "retired") return v.parseUint64(&run.result.retired);
    if (key == "ipc") return v.parseDouble(&run.result.ipc);
    if (key == "messages") return v.parseUint64(&run.result.messages);
    if (key == "stats") {
      return v.parseObject([&](const std::string& name, jsonio::Parser& sv) {
        std::uint64_t value = 0;
        if (!sv.parseUint64(&value)) return false;
        run.stats.emplace_back(name, value);
        return true;
      });
    }
    return false;  // unknown field: written by a different version — miss
  });
  if (!ok || !p.atEnd()) return std::nullopt;
  return run;
}

std::string ResultCache::defaultDir() {
  if (const char* env = std::getenv("BRIDGE_SWEEP_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/sweep-cache";
}

ResultCache::ResultCache(std::string dir)
    : dir_(dir.empty() ? defaultDir() : std::move(dir)) {}

std::string ResultCache::pathFor(const std::string& key) const {
  return dir_ + "/" + key + ".json";
}

std::optional<CachedRun> ResultCache::lookup(const std::string& key) const {
  std::ifstream in(pathFor(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return cachedRunFromJson(buf.str());
}

bool ResultCache::store(const std::string& key, const CachedRun& run) const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Unique temp name per writer, then an atomic rename: readers and
  // concurrent writers only ever observe complete entries.
  std::ostringstream tmp_name;
  tmp_name << pathFor(key) << ".tmp." << ::getpid() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      BRIDGE_LOG(kWarn) << "sweep cache: cannot write " << tmp;
      return false;
    }
    out << cachedRunToJson(run);
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, pathFor(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::size_t ResultCache::clear() const {
  std::error_code ec;
  std::size_t evicted = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_, ec)) {
    if (e.path().extension() == ".json" && fs::remove(e.path(), ec)) {
      ++evicted;
    }
  }
  return evicted;
}

}  // namespace bridge
