#include "sweep/fingerprint.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "uop/uop.h"

namespace bridge {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

namespace {

/// Doubles are printed with round-trip precision so equal configs always
/// serialize identically and nearby ones never collide textually.
void putDouble(std::ostream& os, const char* key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << ' ' << key << '=' << buf;
}

void putLatencyTable(std::ostream& os, const char* key,
                     const LatencyTable& lat) {
  os << ' ' << key << '=';
  for (unsigned i = 0; i < kNumOpClasses; ++i) {
    os << (i ? "," : "") << lat.lat[i];
  }
}

}  // namespace

std::string describeSocConfig(const SocConfig& cfg) {
  std::ostringstream os;
  os << "name=" << cfg.name << " cores=" << cfg.cores << " core_kind="
     << (cfg.core_kind == CoreKind::kInOrder ? "inorder" : "ooo");
  putDouble(os, "freq_ghz", cfg.freq_ghz);

  if (cfg.core_kind == CoreKind::kInOrder) {
    const InOrderParams& p = cfg.inorder;
    os << " io.issue=" << p.issue_width << " io.depth=" << p.pipeline_depth
       << " io.sb=" << p.store_buffer << " io.bht=" << p.bht_entries
       << " io.btb=" << p.btb_entries << " io.ras=" << p.ras_depth;
    putLatencyTable(os, "io.lat", p.lat);
  } else {
    const OooParams& p = cfg.ooo;
    os << " ooo.fetch=" << p.fetch_width << " ooo.decode=" << p.decode_width
       << " ooo.fb=" << p.fetch_buffer << " ooo.rob=" << p.rob
       << " ooo.int_issue=" << p.int_issue << " ooo.mem_issue=" << p.mem_issue
       << " ooo.fp_issue=" << p.fp_issue << " ooo.int_iq=" << p.int_iq
       << " ooo.mem_iq=" << p.mem_iq << " ooo.fp_iq=" << p.fp_iq
       << " ooo.ldq=" << p.ldq << " ooo.stq=" << p.stq
       << " ooo.redirect=" << p.redirect_penalty
       << " ooo.btb=" << p.btb_entries << " ooo.ras=" << p.ras_depth
       << " tage.base=" << p.tage.base_entries
       << " tage.entries=" << p.tage.table_entries
       << " tage.tables=" << p.tage.num_tables
       << " tage.minh=" << p.tage.min_history
       << " tage.maxh=" << p.tage.max_history
       << " tage.tag=" << p.tage.tag_bits
       << " tage.reset=" << p.tage.useful_reset_period;
    putLatencyTable(os, "ooo.lat", p.lat);
  }

  const MemSysParams& m = cfg.mem;
  const auto putL1 = [&](const char* tag, const L1Params& l1) {
    os << ' ' << tag << '=' << l1.sets << '/' << l1.ways << '/' << l1.latency
       << '/' << l1.mshrs;
  };
  putL1("l1i", m.l1i);
  putL1("l1d", m.l1d);
  os << " l2=" << m.l2.sets << '/' << m.l2.ways << '/' << m.l2.latency << '/'
     << m.l2.banks << '/' << m.l2.bank_busy << '/' << m.l2.mshrs;
  os << " bus=" << m.bus.width_bits << '/' << m.bus.request_cycles;
  os << " llc=" << (m.has_llc ? 1 : 0) << '/'
     << (m.llc.mode == LlcMode::kSimplifiedSram ? "sram" : "real") << '/'
     << m.llc.sets << '/' << m.llc.ways << '/' << m.llc.sram_latency << '/'
     << m.llc.tag_latency << '/' << m.llc.data_latency << '/' << m.llc.banks
     << '/' << m.llc.bank_busy;
  os << " dram=" << m.dram.name << '/' << m.dram.banks_per_rank << '/'
     << m.dram.ranks << '/' << m.dram.row_bytes << '/'
     << m.dram.read_queue_depth << '/' << m.dram.write_queue_depth << '/'
     << m.dram_channels;
  putDouble(os, "dram.cas", m.dram.t_cas_ns);
  putDouble(os, "dram.rcd", m.dram.t_rcd_ns);
  putDouble(os, "dram.rp", m.dram.t_rp_ns);
  putDouble(os, "dram.burst", m.dram.t_burst_ns);
  putDouble(os, "dram.ctrl", m.dram.t_ctrl_ns);
  os << " pf=" << (m.prefetch.enabled ? 1 : 0) << '/'
     << m.prefetch.table_entries << '/' << m.prefetch.degree << '/'
     << m.prefetch.min_confidence;
  os << " tlb=" << (m.tlb.enabled ? 1 : 0) << '/' << m.tlb.l1_entries << '/'
     << m.tlb.l2_entries << '/' << m.tlb.l2_latency << '/'
     << m.tlb.walk_levels << '/' << m.tlb.page_bits;
  putDouble(os, "mem.freq_ghz", m.freq_ghz);
  // Folded in only when enabled: full-fidelity descriptions (and thus
  // fingerprints, cache keys, and golden snapshots) stay byte-identical to
  // pre-sampling builds, while any sampled variant can never alias them.
  if (cfg.sampling.enabled) os << " sampling=" << cfg.sampling.describe();
  if (cfg.hwvar.enabled) os << " hwvar=" << cfg.hwvar.describe();
  return os.str();
}

std::string fingerprintInput(const JobSpec& spec) {
  std::string s;
  s += kSimulatorVersion;
  s += '|';
  s += describeSocConfig(resolveSocConfig(spec));
  s += '|';
  s += describeJob(spec);
  return s;
}

std::string jobFingerprint(const JobSpec& spec) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fnv1a64(fingerprintInput(spec)));
  return buf;
}

}  // namespace bridge
