#include "sweep/sweep.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <stdexcept>
#include <thread>

#include "sweep/fingerprint.h"
#include "sweep/thread_pool.h"

namespace bridge {

unsigned defaultWorkers() {
  if (const char* env = std::getenv("BRIDGE_JOBS");
      env != nullptr && *env != '\0') {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SweepEngine::SweepEngine(const SweepOptions& options)
    : options_(options),
      workers_(options.workers == 0 ? defaultWorkers() : options.workers),
      cache_(options.cache_dir) {}

SweepResult SweepEngine::execute(const JobSpec& job) {
  SweepResult out;
  out.label = job.label;
  out.fingerprint = jobFingerprint(job);
  if (options_.use_cache) {
    if (std::optional<CachedRun> hit = cache_.lookup(out.fingerprint)) {
      out.result = hit->result;
      out.stats = std::move(hit->stats);
      out.from_cache = true;
      return out;
    }
  }
  out.result = executeJob(job, &out.stats);
  if (options_.use_cache) {
    CachedRun entry;
    entry.result = out.result;
    entry.stats = out.stats;
    entry.description = fingerprintInput(job);
    cache_.store(out.fingerprint, entry);
  }
  return out;
}

SweepResult SweepEngine::runOne(const JobSpec& job) { return execute(job); }

std::vector<SweepResult> SweepEngine::run(const std::vector<JobSpec>& jobs) {
  std::vector<SweepResult> results(jobs.size());
  if (jobs.empty()) return results;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(workers_, jobs.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      futures.push_back(pool.submit([this, &jobs, &results, i] {
        results[i] = execute(jobs[i]);
      }));
    }
    // Pool destruction drains the queue; get() below surfaces failures.
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::optional<long> parsePositiveInt(std::string_view text) {
  if (text.empty() || text.size() > 7) return std::nullopt;  // > 1'000'000
  long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  if (value < 1 || value > 1'000'000) return std::nullopt;
  return value;
}

bool SweepCli::tryParse(const std::vector<std::string>& args, SweepCli* out,
                        std::string* error) {
  SweepCli cli;
  auto setJobs = [&](const std::string& text) {
    const std::optional<long> n = parsePositiveInt(text);
    if (!n) {
      if (error != nullptr) {
        *error = "invalid --jobs value '" + text +
                 "' (expected an integer in [1, 1000000])";
      }
      return false;
    }
    cli.options.workers = static_cast<unsigned>(*n);
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--jobs") {
      if (i + 1 >= args.size()) {
        if (error != nullptr) *error = "--jobs requires a worker count";
        return false;
      }
      if (!setJobs(args[++i])) return false;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!setJobs(arg.substr(7))) return false;
    } else if (arg == "--no-cache") {
      cli.options.use_cache = false;
    } else if (arg == "--csv") {
      cli.csv = true;
    } else {
      cli.rest.push_back(arg);
    }
  }
  *out = std::move(cli);
  return true;
}

SweepCli SweepCli::parse(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  SweepCli cli;
  std::string error;
  if (!tryParse(args, &cli, &error)) {
    // CLI misuse path: a clean one-line error beats an uncaught throw.
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(2);
  }
  return cli;
}

}  // namespace bridge
