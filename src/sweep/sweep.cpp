#include "sweep/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <stdexcept>
#include <thread>

#include "serve/client.h"
#include "sim/log.h"
#include "sweep/fingerprint.h"
#include "sweep/thread_pool.h"

namespace bridge {

unsigned defaultWorkers() {
  if (const char* env = std::getenv("BRIDGE_JOBS");
      env != nullptr && *env != '\0') {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::string_view jobOutcomeName(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kOk:
      return "ok";
    case JobOutcome::kFailed:
      return "failed";
    case JobOutcome::kTimedOut:
      return "timed-out";
    case JobOutcome::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string FailurePolicy::signature() const {
  if (strict) return "strict";
  std::string sig = "retries=" + std::to_string(max_retries);
  sig += ",backoff=" + std::to_string(backoff_ms) + ".." +
         std::to_string(backoff_cap_ms) + "ms";
  if (timeout_seconds > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", timeout_seconds);
    sig += ",timeout=";
    sig += buf;
    sig += "s";
  } else {
    sig += ",timeout=off";
  }
  sig += quarantine ? ",quarantine=on" : ",quarantine=off";
  return sig;
}

std::string RunReport::summary() const {
  std::string line = std::to_string(ok) + "/" + std::to_string(total) + " ok";
  line += " (" + std::to_string(from_cache) + " cached";
  if (retried != 0) line += ", " + std::to_string(retried) + " retried";
  line += ")";
  if (failed != 0) line += ", " + std::to_string(failed) + " failed";
  if (timed_out != 0) line += ", " + std::to_string(timed_out) + " timed out";
  if (quarantined != 0) {
    line += ", " + std::to_string(quarantined) + " quarantined";
  }
  return line;
}

SweepEngine::SweepEngine(const SweepOptions& options)
    : options_(options),
      workers_(options.workers == 0 ? defaultWorkers() : options.workers),
      cache_(options.cache_dir),
      injector_(options.faults) {
  if (options_.use_cache && !cache_.writable()) {
    // Degrade, don't die: an unwritable $BRIDGE_SWEEP_CACHE costs cache
    // hits, not the run. One warning so the slowdown is explainable.
    BRIDGE_LOG(kWarn) << "sweep cache: " << cache_.dir()
                      << " is not writable; continuing without cache";
    options_.use_cache = false;
  }
  if (injector_.active()) cache_.setChaos(&injector_);
  if (options_.failures.quarantine && !options_.failures.strict) {
    std::string path = options_.failures.quarantine_file;
    if (path.empty() && options_.use_cache) {
      path = cache_.dir() + "/quarantine.list";
    }
    quarantine_.open(std::move(path));  // empty path = in-memory only
  }
}

SweepEngine::~SweepEngine() = default;

serve::ServeClient& SweepEngine::ensureRemote() {
  if (!remote_) {
    auto client = std::make_unique<serve::ServeClient>(options_.serve_socket);
    // Results computed under a different failure policy or chaos plan are
    // not comparable with local ones; refuse at handshake, not after data
    // has been mixed.
    client->requirePolicy(policySignature());
    remote_ = std::move(client);
  }
  return *remote_;
}

std::string SweepEngine::policySignature() const {
  std::string sig = options_.failures.signature();
  if (injector_.active()) {
    sig += ' ';
    sig += injector_.plan().signature();
  }
  return sig;
}

// Pre-PR5 semantics: cache, execute, let exceptions escape to the future.
SweepResult SweepEngine::executeStrict(const JobSpec& job, SweepResult out) {
  out.fingerprint = jobFingerprint(job);
  if (options_.use_cache) {
    if (std::optional<CachedRun> hit = cache_.lookup(out.fingerprint)) {
      out.result = hit->result;
      out.stats = std::move(hit->stats);
      out.from_cache = true;
      return out;
    }
  }
  out.attempts = 1;
  injector_.beforeExecute(job.label, out.fingerprint, 0);
  out.result = executeJob(job, &out.stats);
  if (options_.use_cache) {
    CachedRun entry;
    entry.result = out.result;
    entry.stats = out.stats;
    entry.description = fingerprintInput(job);
    cache_.store(out.fingerprint, entry);
  }
  return out;
}

SweepResult SweepEngine::execute(const JobSpec& job) {
  SweepResult out;
  out.label = job.label;
  if (options_.failures.strict) return executeStrict(job, std::move(out));

  const FailurePolicy& policy = options_.failures;
  try {
    out.fingerprint = jobFingerprint(job);
  } catch (const std::exception& e) {
    // A spec that cannot even be fingerprinted (unknown override key) is a
    // configuration error: retrying cannot help and there is no stable
    // fingerprint to quarantine under.
    out.outcome = JobOutcome::kFailed;
    out.error = e.what();
    BRIDGE_LOG(kWarn) << "sweep: job " << job.label
                      << " failed to fingerprint: " << e.what()
                      << " [policy " << policySignature() << "]";
    return out;
  }

  if (options_.use_cache) {
    if (std::optional<CachedRun> hit = cache_.lookup(out.fingerprint)) {
      // A cached result is a valid result, even for a quarantined
      // fingerprint (quarantine only exists to avoid re-running failures).
      out.result = hit->result;
      out.stats = std::move(hit->stats);
      out.from_cache = true;
      return out;
    }
  }

  if (quarantine_.contains(out.fingerprint)) {
    out.outcome = JobOutcome::kQuarantined;
    out.error = quarantine_.reasonFor(out.fingerprint);
    BRIDGE_LOG(kInfo) << "sweep: skipping quarantined job " << job.label
                      << " fp=" << out.fingerprint << " (" << out.error
                      << ") [policy " << policySignature() << "]";
    return out;
  }

  for (unsigned attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0 && policy.backoff_ms > 0) {
      // Deterministic capped exponential backoff; purely a politeness
      // delay, so determinism of *results* never depends on it.
      const std::uint64_t shift = std::min(attempt - 1, 20u);
      const std::uint64_t delay =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(policy.backoff_ms)
                                      << shift,
                                  policy.backoff_cap_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    ++out.attempts;
    const auto start = std::chrono::steady_clock::now();
    try {
      injector_.beforeExecute(job.label, out.fingerprint, attempt);
      StatsSnapshot stats;
      const RunResult result = executeJob(job, &stats);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (policy.timeout_seconds > 0.0 && elapsed > policy.timeout_seconds) {
        // Cooperative timeout: the attempt ran to completion (workers are
        // never killed), but the result is discarded as over-budget. Not
        // retried — a deterministic job would only time out again — and
        // not quarantined, because wall time is load-dependent.
        out.outcome = JobOutcome::kTimedOut;
        out.error = "attempt " + std::to_string(attempt + 1) + " took " +
                    std::to_string(elapsed) + "s (budget " +
                    std::to_string(policy.timeout_seconds) + "s)";
        BRIDGE_LOG(kWarn) << "sweep: job " << job.label << " timed out: "
                          << out.error << " fp=" << out.fingerprint
                          << " [policy " << policySignature() << "]";
        return out;
      }
      out.result = result;
      out.stats = std::move(stats);
      out.outcome = JobOutcome::kOk;
      if (options_.use_cache) {
        CachedRun entry;
        entry.result = out.result;
        entry.stats = out.stats;
        entry.description = fingerprintInput(job);
        cache_.store(out.fingerprint, entry);
      }
      return out;
    } catch (const std::exception& e) {
      out.error = e.what();
      BRIDGE_LOG(kWarn) << "sweep: job " << job.label << " attempt "
                        << (attempt + 1) << "/" << (policy.max_retries + 1)
                        << " failed: " << e.what() << " fp="
                        << out.fingerprint << " [policy " << policySignature()
                        << "]";
    }
  }

  out.outcome = JobOutcome::kFailed;
  if (policy.quarantine) {
    if (quarantine_.add(out.fingerprint, job.label, out.error)) {
      BRIDGE_LOG(kWarn) << "sweep: quarantining job " << job.label << " fp="
                        << out.fingerprint << " after " << out.attempts
                        << " attempts (" << out.error << ") [policy "
                        << policySignature() << "]";
    }
  }
  return out;
}

JobSpec SweepEngine::effectiveSpec(const JobSpec& job) const {
  // Specs that pin their own sampling.* / hwvar.* keys had their fidelity
  // (or variability) chosen by their author (e.g. a job received over the
  // serve protocol); the engine-level defaults must not rewrite them.
  JobSpec out = job;
  if (options_.sampling.enabled && !hasSamplingOverrides(job.overrides)) {
    applySamplingOverrides(&out.overrides, options_.sampling);
  }
  if (options_.hwvar.enabled && !hasHwVarOverrides(job.overrides)) {
    applyHwVarOverrides(&out.overrides, options_.hwvar);
  }
  return out;
}

SweepResult SweepEngine::runOne(const JobSpec& raw_job) {
  const JobSpec job = effectiveSpec(raw_job);
  if (remote()) {
    std::vector<SweepResult> results = ensureRemote().run({job});
    SweepResult out = std::move(results.front());
    if (options_.failures.strict && out.outcome == JobOutcome::kFailed) {
      throw std::runtime_error(out.error);  // strict contract, remote or not
    }
    return out;
  }
  return execute(job);
}

RunReport SweepEngine::reportFor(const std::vector<SweepResult>& results) {
  RunReport report;
  report.total = results.size();
  for (const SweepResult& r : results) {
    switch (r.outcome) {
      case JobOutcome::kOk:
        ++report.ok;
        if (r.from_cache) ++report.from_cache;
        break;
      case JobOutcome::kFailed:
        ++report.failed;
        break;
      case JobOutcome::kTimedOut:
        ++report.timed_out;
        break;
      case JobOutcome::kQuarantined:
        ++report.quarantined;
        break;
    }
    if (r.outcome != JobOutcome::kOk) report.failed_labels.push_back(r.label);
    if (r.attempts > 1) ++report.retried;
  }
  return report;
}

std::vector<SweepResult> SweepEngine::run(const std::vector<JobSpec>& raw_jobs,
                                          RunReport* report) {
  std::vector<SweepResult> results(raw_jobs.size());
  if (raw_jobs.empty()) {
    if (report != nullptr) *report = RunReport{};
    return results;
  }

  // Rewrite once up front so every downstream consumer — fingerprinting,
  // the cache, the quarantine list, a remote daemon — sees the rewritten
  // (sampled / variability-carrying) spec.
  std::vector<JobSpec> jobs = raw_jobs;
  if (options_.sampling.enabled || options_.hwvar.enabled) {
    for (JobSpec& job : jobs) job = effectiveSpec(job);
  }

  if (remote()) {
    // Remote mode: the daemon is the execution side (cache, retries,
    // quarantine, chaos); this engine is a thin client. One request
    // carries the whole batch so the daemon can dedup within it too.
    RunReport tally;
    results = ensureRemote().run(jobs, &tally);
    if (options_.failures.strict) {
      for (const SweepResult& r : results) {
        if (r.outcome == JobOutcome::kFailed) throw std::runtime_error(r.error);
      }
    }
    if (!tally.allOk()) {
      BRIDGE_LOG(kWarn) << "sweep (remote " << options_.serve_socket
                        << "): " << tally.summary() << " [policy "
                        << policySignature() << "]";
    }
    if (report != nullptr) *report = tally;
    return results;
  }

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(workers_, jobs.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      futures.push_back(pool.submit([this, &jobs, &results, i] {
        results[i] = execute(jobs[i]);
      }));
    }
    // Pool destruction drains the queue; get() below surfaces failures.
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  // Under the default policy execute() never throws, so first_error only
  // arms in strict mode — preserving the pre-PR5 contract.
  if (first_error) std::rethrow_exception(first_error);

  const RunReport tally = reportFor(results);
  if (!tally.allOk()) {
    BRIDGE_LOG(kWarn) << "sweep: " << tally.summary() << " [policy "
                      << policySignature() << "]";
  }
  if (report != nullptr) *report = tally;
  return results;
}

namespace {

std::optional<long> parseIntInRange(std::string_view text, long lo) {
  if (text.empty() || text.size() > 7) return std::nullopt;  // > 1'000'000
  long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  if (value < lo || value > 1'000'000) return std::nullopt;
  return value;
}

}  // namespace

std::optional<long> parsePositiveInt(std::string_view text) {
  return parseIntInRange(text, 1);
}

std::optional<long> parseNonNegativeInt(std::string_view text) {
  return parseIntInRange(text, 0);
}

bool SweepCli::tryParse(const std::vector<std::string>& args, SweepCli* out,
                        std::string* error) {
  SweepCli cli;
  // Env default first, explicit flag below overrides. Only this CLI layer
  // reads BRIDGE_SAMPLING / BRIDGE_HWVAR — see SweepOptions::sampling and
  // SweepOptions::hwvar.
  cli.options.sampling = SamplingParams::fromEnv();
  cli.options.hwvar = HwVarParams::fromEnv();
  const auto setError = [&](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  auto setSampling = [&](const std::string& text) {
    std::string why;
    if (!parseSamplingSpec(text, &cli.options.sampling, &why)) {
      return setError("invalid --sampling value '" + text + "' (" + why + ")");
    }
    return true;
  };
  auto setHwVar = [&](const std::string& text) {
    std::string why;
    if (!parseHwVarSpec(text, &cli.options.hwvar, &why)) {
      return setError("invalid --hwvar value '" + text + "' (" + why + ")");
    }
    return true;
  };
  auto setJobs = [&](const std::string& text) {
    const std::optional<long> n = parsePositiveInt(text);
    if (!n) {
      return setError("invalid --jobs value '" + text +
                      "' (expected an integer in [1, 1000000])");
    }
    cli.options.workers = static_cast<unsigned>(*n);
    return true;
  };
  auto setRetries = [&](const std::string& text) {
    const std::optional<long> n = parseNonNegativeInt(text);
    if (!n) {
      return setError("invalid --retries value '" + text +
                      "' (expected an integer in [0, 1000000])");
    }
    cli.options.failures.max_retries = static_cast<unsigned>(*n);
    return true;
  };
  auto setTimeout = [&](const std::string& text) {
    char* end = nullptr;
    const double s = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() || !(s > 0.0)) {
      return setError("invalid --timeout value '" + text +
                      "' (expected seconds > 0)");
    }
    cli.options.failures.timeout_seconds = s;
    return true;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--jobs") {
      if (i + 1 >= args.size()) return setError("--jobs requires a worker count");
      if (!setJobs(args[++i])) return false;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!setJobs(arg.substr(7))) return false;
    } else if (arg == "--retries") {
      if (i + 1 >= args.size()) return setError("--retries requires a count");
      if (!setRetries(args[++i])) return false;
    } else if (arg.rfind("--retries=", 0) == 0) {
      if (!setRetries(arg.substr(10))) return false;
    } else if (arg == "--timeout") {
      if (i + 1 >= args.size()) return setError("--timeout requires seconds");
      if (!setTimeout(args[++i])) return false;
    } else if (arg.rfind("--timeout=", 0) == 0) {
      if (!setTimeout(arg.substr(10))) return false;
    } else if (arg == "--serve") {
      if (i + 1 >= args.size()) return setError("--serve requires a socket path");
      cli.options.serve_socket = args[++i];
    } else if (arg.rfind("--serve=", 0) == 0) {
      cli.options.serve_socket = arg.substr(8);
    } else if (arg == "--sampling") {
      if (i + 1 >= args.size()) return setError("--sampling requires a spec");
      if (!setSampling(args[++i])) return false;
    } else if (arg.rfind("--sampling=", 0) == 0) {
      if (!setSampling(arg.substr(11))) return false;
    } else if (arg == "--hwvar") {
      if (i + 1 >= args.size()) return setError("--hwvar requires a spec");
      if (!setHwVar(args[++i])) return false;
    } else if (arg.rfind("--hwvar=", 0) == 0) {
      if (!setHwVar(arg.substr(8))) return false;
    } else if (arg == "--strict") {
      cli.options.failures.strict = true;
    } else if (arg == "--no-cache") {
      cli.options.use_cache = false;
    } else if (arg == "--csv") {
      cli.csv = true;
    } else {
      cli.rest.push_back(arg);
    }
  }
  *out = std::move(cli);
  return true;
}

SweepCli SweepCli::parse(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  SweepCli cli;
  std::string error;
  if (!tryParse(args, &cli, &error)) {
    // CLI misuse path: a clean one-line error beats an uncaught throw.
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(2);
  }
  return cli;
}

}  // namespace bridge
