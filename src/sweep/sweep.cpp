#include "sweep/sweep.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <stdexcept>
#include <thread>

#include "sweep/fingerprint.h"
#include "sweep/thread_pool.h"

namespace bridge {

unsigned defaultWorkers() {
  if (const char* env = std::getenv("BRIDGE_JOBS");
      env != nullptr && *env != '\0') {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SweepEngine::SweepEngine(const SweepOptions& options)
    : options_(options),
      workers_(options.workers == 0 ? defaultWorkers() : options.workers),
      cache_(options.cache_dir) {}

SweepResult SweepEngine::execute(const JobSpec& job) {
  SweepResult out;
  out.label = job.label;
  out.fingerprint = jobFingerprint(job);
  if (options_.use_cache) {
    if (std::optional<CachedRun> hit = cache_.lookup(out.fingerprint)) {
      out.result = hit->result;
      out.stats = std::move(hit->stats);
      out.from_cache = true;
      return out;
    }
  }
  out.result = executeJob(job, &out.stats);
  if (options_.use_cache) {
    CachedRun entry;
    entry.result = out.result;
    entry.stats = out.stats;
    entry.description = fingerprintInput(job);
    cache_.store(out.fingerprint, entry);
  }
  return out;
}

SweepResult SweepEngine::runOne(const JobSpec& job) { return execute(job); }

std::vector<SweepResult> SweepEngine::run(const std::vector<JobSpec>& jobs) {
  std::vector<SweepResult> results(jobs.size());
  if (jobs.empty()) return results;

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(workers_, jobs.size()));
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  {
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      futures.push_back(pool.submit([this, &jobs, &results, i] {
        results[i] = execute(jobs[i]);
      }));
    }
    // Pool destruction drains the queue; get() below surfaces failures.
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

namespace {

// CLI misuse path: a clean one-line error beats an uncaught throw.
[[noreturn]] void cliUsageError(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::exit(2);
}

}  // namespace

SweepCli SweepCli::parse(int argc, char** argv) {
  SweepCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) cliUsageError("--jobs requires a worker count");
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1) cliUsageError("--jobs must be a number >= 1");
      cli.options.workers = static_cast<unsigned>(n);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const long n = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (n < 1) cliUsageError("--jobs must be a number >= 1");
      cli.options.workers = static_cast<unsigned>(n);
    } else if (arg == "--no-cache") {
      cli.options.use_cache = false;
    } else if (arg == "--csv") {
      cli.csv = true;
    } else {
      cli.rest.push_back(arg);
    }
  }
  return cli;
}

}  // namespace bridge
