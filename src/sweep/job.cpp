#include "sweep/job.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "workloads/microbench.h"

namespace bridge {

std::string_view workloadKindName(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kMicrobench: return "microbench";
    case WorkloadKind::kNpb: return "npb";
    case WorkloadKind::kUme: return "ume";
    case WorkloadKind::kLammps: return "lammps";
  }
  return "?";
}

JobSpec microbenchJob(PlatformId platform, std::string kernel, double scale,
                      std::uint64_t seed) {
  JobSpec s;
  s.kind = WorkloadKind::kMicrobench;
  s.platform = platform;
  s.kernel = std::move(kernel);
  s.scale = scale;
  s.seed = seed;
  s.label = s.kernel + "@" + std::string(platformName(platform));
  return s;
}

JobSpec npbJob(PlatformId platform, NpbBenchmark bench, int ranks,
               double scale, std::uint64_t seed) {
  JobSpec s;
  s.kind = WorkloadKind::kNpb;
  s.platform = platform;
  s.npb = bench;
  s.ranks = ranks;
  s.scale = scale;
  s.seed = seed;
  s.label = std::string(npbName(bench)) + "/" + std::to_string(ranks) +
            "r@" + std::string(platformName(platform));
  return s;
}

JobSpec npbJob(PlatformId platform, NpbBenchmark bench, int ranks,
               const NpbConfig& cfg) {
  JobSpec s = npbJob(platform, bench, ranks, cfg.scale, cfg.seed);
  s.npb_mg_top = cfg.mg_top;
  return s;
}

JobSpec umeJob(PlatformId platform, int ranks, const UmeConfig& cfg) {
  JobSpec s;
  s.kind = WorkloadKind::kUme;
  s.platform = platform;
  s.ranks = ranks;
  s.scale = cfg.scale;
  s.seed = cfg.seed;
  s.ume_zones_per_dim = cfg.zones_per_dim;
  s.label = "ume/" + std::to_string(ranks) + "r@" +
            std::string(platformName(platform));
  return s;
}

JobSpec lammpsJob(PlatformId platform, LammpsBenchmark bench, int ranks,
                  const LammpsConfig& cfg) {
  JobSpec s;
  s.kind = WorkloadKind::kLammps;
  s.platform = platform;
  s.lammps = bench;
  s.ranks = ranks;
  s.scale = cfg.scale;
  s.seed = cfg.seed;
  s.lammps_atoms = cfg.atoms;
  s.lammps_timesteps = cfg.timesteps;
  s.lammps_neighbors = cfg.neighbors;
  s.lammps_simd_lanes = cfg.simd_lanes;
  s.label = std::string(bench == LammpsBenchmark::kLennardJones ? "lammps-lj"
                                                                : "lammps-chain") +
            "/" + std::to_string(ranks) + "r@" +
            std::string(platformName(platform));
  return s;
}

std::vector<SocKnob> socConfigKnobs(SocConfig& cfg) {
  // Every knob the tuning tools and ablations touch, addressed by the same
  // dotted paths the "key = value" files use.
  return {
      {"cores", &cfg.cores},
      {"inorder.issue_width", &cfg.inorder.issue_width},
      {"inorder.pipeline_depth", &cfg.inorder.pipeline_depth},
      {"inorder.store_buffer", &cfg.inorder.store_buffer},
      {"ooo.fetch_width", &cfg.ooo.fetch_width},
      {"ooo.decode_width", &cfg.ooo.decode_width},
      {"ooo.fetch_buffer", &cfg.ooo.fetch_buffer},
      {"ooo.rob", &cfg.ooo.rob},
      {"ooo.int_iq", &cfg.ooo.int_iq},
      {"ooo.mem_iq", &cfg.ooo.mem_iq},
      {"ooo.fp_iq", &cfg.ooo.fp_iq},
      {"ooo.ldq", &cfg.ooo.ldq},
      {"ooo.stq", &cfg.ooo.stq},
      {"l1i.sets", &cfg.mem.l1i.sets},
      {"l1i.ways", &cfg.mem.l1i.ways},
      {"l1i.mshrs", &cfg.mem.l1i.mshrs},
      {"l1d.sets", &cfg.mem.l1d.sets},
      {"l1d.ways", &cfg.mem.l1d.ways},
      {"l1d.latency", &cfg.mem.l1d.latency},
      {"l1d.mshrs", &cfg.mem.l1d.mshrs},
      {"l2.sets", &cfg.mem.l2.sets},
      {"l2.ways", &cfg.mem.l2.ways},
      {"l2.latency", &cfg.mem.l2.latency},
      {"l2.banks", &cfg.mem.l2.banks},
      {"l2.mshrs", &cfg.mem.l2.mshrs},
      {"bus.width_bits", &cfg.mem.bus.width_bits},
      {"llc.sets", &cfg.mem.llc.sets},
      {"llc.ways", &cfg.mem.llc.ways},
      {"dram.channels", &cfg.mem.dram_channels},
      {"dram.read_queue_depth", &cfg.mem.dram.read_queue_depth},
      {"dram.write_queue_depth", &cfg.mem.dram.write_queue_depth},
      {"prefetch.degree", &cfg.mem.prefetch.degree},
  };
}

unsigned socConfigKnobValue(const SocConfig& cfg, std::string_view key) {
  SocConfig& mutable_cfg = const_cast<SocConfig&>(cfg);
  for (const SocKnob& k : socConfigKnobs(mutable_cfg)) {
    if (k.key == key) return *k.slot;
  }
  throw std::invalid_argument("unknown SocConfig knob: " + std::string(key));
}

void applySocOverrides(SocConfig* cfg, const Config& overrides) {
  // An unknown key throws: a typo must not silently leave the base config
  // (and its fingerprint) intact.
  const std::vector<SocKnob> unsigned_knobs = socConfigKnobs(*cfg);

  // Config has no key iteration, so serialize and re-parse the dotted
  // pairs; the text format is the canonical representation anyway.
  Config pending = overrides;
  std::istringstream lines(overrides.toText());
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = line.substr(0, eq);
    while (!key.empty() && key.back() == ' ') key.pop_back();

    bool known = false;
    for (const SocKnob& k : unsigned_knobs) {
      if (key == k.key) {
        *k.slot = static_cast<unsigned>(
            overrides.getInt(key, static_cast<std::int64_t>(*k.slot)));
        known = true;
        break;
      }
    }
    if (key == "freq_ghz") {
      cfg->freq_ghz = overrides.getDouble(key, cfg->freq_ghz);
      cfg->mem.freq_ghz = cfg->freq_ghz;
      known = true;
    } else if (key == "prefetch.enabled") {
      cfg->mem.prefetch.enabled =
          overrides.getBool(key, cfg->mem.prefetch.enabled);
      known = true;
    } else if (key == "sampling.enabled") {
      cfg->sampling.enabled = overrides.getBool(key, cfg->sampling.enabled);
      known = true;
    } else if (key == "sampling.interval_ops") {
      cfg->sampling.interval_ops = static_cast<std::uint64_t>(overrides.getInt(
          key, static_cast<std::int64_t>(cfg->sampling.interval_ops)));
      known = true;
    } else if (key == "sampling.measure_ops") {
      cfg->sampling.measure_ops = static_cast<std::uint64_t>(overrides.getInt(
          key, static_cast<std::int64_t>(cfg->sampling.measure_ops)));
      known = true;
    } else if (key == "sampling.warmup_ops") {
      cfg->sampling.warmup_ops = static_cast<std::uint64_t>(overrides.getInt(
          key, static_cast<std::int64_t>(cfg->sampling.warmup_ops)));
      known = true;
    } else if (key == "sampling.seed") {
      cfg->sampling.seed = static_cast<std::uint64_t>(overrides.getInt(
          key, static_cast<std::int64_t>(cfg->sampling.seed)));
      known = true;
    } else if (applyHwVarOverrideKey(&cfg->hwvar, key, overrides)) {
      known = true;
    }
    if (!known) {
      throw std::invalid_argument("unknown SocConfig override key: " + key);
    }
  }

  std::string why;
  if (!cfg->sampling.validate(&why)) {
    throw std::invalid_argument("invalid sampling overrides: " + why);
  }
  if (!cfg->hwvar.validate(&why)) {
    throw std::invalid_argument("invalid hwvar overrides: " + why);
  }
}

SocConfig resolveSocConfig(const JobSpec& spec) {
  const unsigned cores =
      spec.kind == WorkloadKind::kMicrobench
          ? 1u
          : (spec.ranks <= 4 ? 4u : static_cast<unsigned>(spec.ranks));
  SocConfig cfg = makePlatform(spec.platform, cores);
  applySocOverrides(&cfg, spec.overrides);
  return cfg;
}

std::string describeJob(const JobSpec& spec) {
  std::ostringstream os;
  char scale_buf[40];
  std::snprintf(scale_buf, sizeof scale_buf, "%.17g", spec.scale);
  os << "workload=" << workloadKindName(spec.kind)
     << " platform=" << platformName(spec.platform)
     << " ranks=" << spec.ranks << " scale=" << scale_buf
     << " seed=" << spec.seed;
  switch (spec.kind) {
    case WorkloadKind::kMicrobench:
      os << " kernel=" << spec.kernel << " warmup=" << (spec.warmup ? 1 : 0);
      break;
    case WorkloadKind::kNpb:
      os << " bench=" << npbName(spec.npb) << " mg_top=" << spec.npb_mg_top;
      break;
    case WorkloadKind::kUme:
      os << " zones=" << spec.ume_zones_per_dim;
      break;
    case WorkloadKind::kLammps: {
      const LammpsConfig eff = resolveLammpsConfig(
          spec.platform, LammpsConfig{spec.lammps_atoms, spec.lammps_timesteps,
                                      spec.lammps_neighbors, spec.scale,
                                      spec.lammps_simd_lanes, spec.seed});
      os << " bench="
         << (spec.lammps == LammpsBenchmark::kLennardJones ? "lj" : "chain")
         << " atoms=" << eff.atoms << " timesteps=" << eff.timesteps
         << " neighbors=" << eff.neighbors << " simd=" << eff.simd_lanes;
      break;
    }
  }
  return os.str();
}

RunResult executeJob(const JobSpec& spec, StatsSnapshot* stats) {
  const SocConfig cfg = resolveSocConfig(spec);
  switch (spec.kind) {
    case WorkloadKind::kMicrobench: {
      const TraceFactory warm =
          spec.warmup ? TraceFactory([&] {
            return makeMicrobench(spec.kernel, spec.scale,
                                  spec.seed + kWarmupSeedOffset);
          })
                      : TraceFactory(nullptr);
      return runSingleCore(
          cfg, [&] { return makeMicrobench(spec.kernel, spec.scale, spec.seed); },
          warm, stats);
    }
    case WorkloadKind::kNpb: {
      NpbConfig ncfg;
      ncfg.scale = spec.scale;
      ncfg.seed = spec.seed;
      ncfg.mg_top = spec.npb_mg_top;
      return runMultiRank(
          cfg, spec.ranks,
          [&](int rank, int nranks) {
            return makeNpbRank(spec.npb, rank, nranks, ncfg);
          },
          stats);
    }
    case WorkloadKind::kUme: {
      UmeConfig ucfg;
      ucfg.zones_per_dim = spec.ume_zones_per_dim;
      ucfg.scale = spec.scale;
      ucfg.seed = spec.seed;
      return runMultiRank(
          cfg, spec.ranks,
          [&](int rank, int nranks) { return makeUmeRank(rank, nranks, ucfg); },
          stats);
    }
    case WorkloadKind::kLammps: {
      LammpsConfig lcfg;
      lcfg.atoms = spec.lammps_atoms;
      lcfg.timesteps = spec.lammps_timesteps;
      lcfg.neighbors = spec.lammps_neighbors;
      lcfg.scale = spec.scale;
      lcfg.simd_lanes = spec.lammps_simd_lanes;
      lcfg.seed = spec.seed;
      const LammpsConfig eff = resolveLammpsConfig(spec.platform, lcfg);
      return runMultiRank(
          cfg, spec.ranks,
          [&](int rank, int nranks) {
            return makeLammpsRank(spec.lammps, rank, nranks, eff);
          },
          stats);
    }
  }
  throw std::logic_error("unreachable workload kind");
}

}  // namespace bridge
