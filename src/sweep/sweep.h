// SweepEngine: thread-pooled execution of declarative experiment grids.
//
// The engine takes a list of JobSpecs, fans them out across a ThreadPool,
// and returns RunResults (plus per-job counter snapshots) in submission
// order. Each job builds its own SoC and traces from its spec's seed, so a
// sweep is deterministic: any worker count produces cycle-for-cycle the
// same results as a serial run.
//
// A content-addressed ResultCache sits in front of execution: a job whose
// fingerprint (platform parameters + workload spec + simulator version) has
// been simulated before is served from disk. See result_cache.h.
//
// Worker-count resolution: explicit SweepOptions::workers, else the
// BRIDGE_JOBS environment variable, else std::thread::hardware_concurrency.
// Bench drivers additionally accept --jobs N / --no-cache via SweepCli.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sweep/job.h"
#include "sweep/result_cache.h"

namespace bridge {

struct SweepOptions {
  unsigned workers = 0;   // 0 = BRIDGE_JOBS env or hardware concurrency
  bool use_cache = true;
  std::string cache_dir;  // empty = ResultCache::defaultDir()
};

struct SweepResult {
  std::string label;        // copied from the spec
  std::string fingerprint;  // cache key
  RunResult result;
  StatsSnapshot stats;
  bool from_cache = false;
};

/// BRIDGE_JOBS if set (clamped to >= 1), else hardware_concurrency.
unsigned defaultWorkers();

class SweepEngine {
 public:
  explicit SweepEngine(const SweepOptions& options = {});

  /// Run every job; results are in job order. If any job throws, the first
  /// failing job's exception is rethrown after all jobs finish (workers are
  /// never abandoned mid-run).
  std::vector<SweepResult> run(const std::vector<JobSpec>& jobs);

  /// Single-job convenience using the same cache path (no pool spin-up).
  SweepResult runOne(const JobSpec& job);

  unsigned workers() const { return workers_; }
  const SweepOptions& options() const { return options_; }
  const ResultCache& cache() const { return cache_; }

 private:
  SweepResult execute(const JobSpec& job);

  SweepOptions options_;
  unsigned workers_;
  ResultCache cache_;
};

/// Shared command-line handling for bench drivers:
///   --jobs N     worker threads (default: BRIDGE_JOBS or all cores)
///   --no-cache   bypass the result cache
///   --csv        CSV output (driver-interpreted)
/// Unrecognized arguments are preserved in `rest`.
struct SweepCli {
  SweepOptions options;
  bool csv = false;
  std::vector<std::string> rest;

  /// Exits(2) with a one-line message on malformed input (e.g. "--jobs 0",
  /// "--jobs -3", "--jobs many"): a bad worker count must never silently
  /// fall through to a degenerate pool.
  static SweepCli parse(int argc, char** argv);

  /// Non-exiting variant (args excludes argv[0]): false + *error on
  /// malformed input. parse() is this plus fprintf/exit.
  static bool tryParse(const std::vector<std::string>& args, SweepCli* out,
                       std::string* error);
};

/// Strict decimal parse for CLI worker/count arguments: the whole string
/// must be digits and the value in [1, 1'000'000]. Shared by SweepCli and
/// the tune drivers.
std::optional<long> parsePositiveInt(std::string_view text);

}  // namespace bridge
