// SweepEngine: thread-pooled execution of declarative experiment grids.
//
// The engine takes a list of JobSpecs, fans them out across a ThreadPool,
// and returns SweepResults (plus per-job counter snapshots) in submission
// order. Each job builds its own SoC and traces from its spec's seed, so a
// sweep is deterministic: any worker count produces cycle-for-cycle the
// same results as a serial run.
//
// A content-addressed ResultCache sits in front of execution: a job whose
// fingerprint (platform parameters + workload spec + simulator version) has
// been simulated before is served from disk. See result_cache.h.
//
// Fault tolerance (DESIGN.md §5f): failures are isolated per job, never
// fatal by default. Each job carries a JobOutcome; a throwing job is
// retried with deterministic capped backoff, a job exceeding its
// cooperative timeout budget is marked timed-out, and a job that exhausts
// its retries is recorded in a persisted quarantine list and skipped (with
// an explicit log line) on subsequent runs — the paper's "drop CRm and
// keep the other 39 kernels" operation. run() can summarize every job's
// fate in a RunReport. The pre-PR5 first-exception-rethrow behaviour
// survives behind FailurePolicy::strict. A FaultPlan (BRIDGE_CHAOS env
// knob, see faults.h) injects deterministic faults to exercise all of it.
//
// Worker-count resolution: explicit SweepOptions::workers, else the
// BRIDGE_JOBS environment variable, else std::thread::hardware_concurrency.
// Bench drivers additionally accept --jobs N / --no-cache via SweepCli.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/hwvar/hwvar.h"
#include "sim/sampling/sampling.h"
#include "sweep/faults.h"
#include "sweep/job.h"
#include "sweep/quarantine.h"
#include "sweep/result_cache.h"

namespace bridge {

namespace serve {
class ServeClient;
}  // namespace serve

/// Per-job failure handling. The defaults embody "never fatal": bounded
/// retries, quarantine on permanent failure, no exception escapes run().
struct FailurePolicy {
  /// Legacy mode: one attempt per job, no quarantine, and run() rethrows
  /// the first failing job's exception after the batch completes.
  bool strict = false;
  /// Extra attempts after the first failure (attempts = max_retries + 1).
  unsigned max_retries = 2;
  /// Deterministic capped exponential backoff before retry k:
  /// min(backoff_ms << k, backoff_cap_ms). 0 retries immediately.
  unsigned backoff_ms = 0;
  unsigned backoff_cap_ms = 1000;
  /// Cooperative per-attempt wall-clock budget in seconds; 0 disables.
  /// Workers are never killed: the attempt runs to completion, and a
  /// result that arrives over budget is discarded and marked timed-out
  /// (timeouts are not retried — a deterministic job would only time out
  /// again — and not quarantined, because wall time is load-dependent).
  double timeout_seconds = 0.0;
  /// Record jobs that fail every retry and skip them on subsequent runs.
  bool quarantine = true;
  /// Quarantine persistence path. Empty selects <cache_dir>/quarantine.list
  /// when the cache is usable, else in-memory quarantine only.
  std::string quarantine_file;

  /// Canonical one-line description, e.g. "retries=2,backoff=0..1000ms,
  /// timeout=off,quarantine=on". Logged with every failed job and folded
  /// into tuner checkpoint identities.
  std::string signature() const;
};

struct SweepOptions {
  unsigned workers = 0;   // 0 = BRIDGE_JOBS env or hardware concurrency
  bool use_cache = true;
  std::string cache_dir;  // empty = ResultCache::defaultDir()
  FailurePolicy failures;
  /// Fault injection plan; inactive unless filled in (tests) or the
  /// BRIDGE_CHAOS environment knob is set.
  FaultPlan faults = FaultPlan::fromEnv();
  /// Sampled execution (sim/sampling): when enabled, every job this engine
  /// runs is rewritten to carry `sampling.*` overrides before it is
  /// fingerprinted, so sampled results live under their own cache keys and
  /// can never alias full-fidelity ones. Jobs whose spec already pins
  /// `sampling.*` keys are passed through untouched. Deliberately NOT
  /// defaulted from BRIDGE_SAMPLING: only SweepCli reads the env knob, so
  /// serve daemons and workers never re-sample jobs that arrive with their
  /// fidelity already encoded in the spec.
  SamplingParams sampling;
  /// Hardware variability (sim/hwvar): when enabled, every job this engine
  /// runs is rewritten to carry `hwvar.*` overrides before it is
  /// fingerprinted, so variability results live under their own cache keys
  /// and can never alias deterministic ones. Jobs whose spec already pins
  /// `hwvar.*` keys are passed through untouched. Deliberately NOT
  /// defaulted from BRIDGE_HWVAR: only SweepCli reads the env knob, so
  /// serve daemons and workers never perturb jobs that arrive with their
  /// variability already encoded in the spec.
  HwVarParams hwvar;
  /// Non-empty: forward every job to the sweep daemon listening on this
  /// Unix-domain socket (serve/daemon.h) instead of simulating locally.
  /// The daemon's policySignature() must equal this engine's — verified at
  /// the protocol handshake on first use; a mismatch throws rather than
  /// silently mixing results computed under different failure policies.
  /// Set by SweepCli's --serve flag, so every bench driver has the mode.
  std::string serve_socket;
};

enum class JobOutcome {
  kOk,           // result and stats are valid (fresh or from cache)
  kFailed,       // every attempt threw; `error` holds the last message
  kTimedOut,     // finished over the timeout budget; result discarded
  kQuarantined,  // skipped: fingerprint is on the quarantine list
};

std::string_view jobOutcomeName(JobOutcome outcome);

struct SweepResult {
  std::string label;        // copied from the spec
  std::string fingerprint;  // cache key ("" if fingerprinting itself failed)
  RunResult result;
  StatsSnapshot stats;
  bool from_cache = false;
  JobOutcome outcome = JobOutcome::kOk;
  std::string error;      // last failure message (non-kOk outcomes)
  unsigned attempts = 0;  // attempts made (0: cache hit, skip, or spec error)

  bool ok() const { return outcome == JobOutcome::kOk; }
};

/// Per-run outcome accounting: total == ok + failed + timed_out +
/// quarantined, always — a fault-tolerant run must account for every job.
struct RunReport {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t quarantined = 0;
  std::size_t from_cache = 0;  // subset of ok
  std::size_t retried = 0;     // jobs that needed more than one attempt
  std::vector<std::string> failed_labels;  // every non-kOk job, in job order

  bool allOk() const { return ok == total; }
  std::string summary() const;  // one line, for logs and driver output
};

/// BRIDGE_JOBS if set (clamped to >= 1), else hardware_concurrency.
unsigned defaultWorkers();

class SweepEngine {
 public:
  explicit SweepEngine(const SweepOptions& options = {});

  /// Out of line for the unique_ptr<serve::ServeClient> member.
  ~SweepEngine();

  /// Run every job; results are in job order. Under the default policy no
  /// exception escapes: each result carries its outcome, and `report` (if
  /// non-null) receives the outcome accounting. Under strict policy the
  /// first failing job's exception is rethrown after all jobs finish
  /// (workers are never abandoned mid-run).
  std::vector<SweepResult> run(const std::vector<JobSpec>& jobs,
                               RunReport* report = nullptr);

  /// Single-job convenience using the same cache path (no pool spin-up).
  SweepResult runOne(const JobSpec& job);

  /// Outcome accounting for a finished result set.
  static RunReport reportFor(const std::vector<SweepResult>& results);

  unsigned workers() const { return workers_; }
  const SweepOptions& options() const { return options_; }
  /// True when jobs are forwarded to a daemon instead of run locally.
  bool remote() const { return !options_.serve_socket.empty(); }
  const ResultCache& cache() const { return cache_; }
  const FaultInjector& injector() const { return injector_; }
  QuarantineList& quarantine() { return quarantine_; }
  const QuarantineList& quarantine() const { return quarantine_; }

  /// Failure policy + fault plan in one canonical string — the identity
  /// logged with failed jobs and bound into tuner checkpoints.
  std::string policySignature() const;

  /// The spec this engine would actually run for `job`: identical unless
  /// engine-level sampling (or hwvar) is on and the spec does not already
  /// pin its own `sampling.*` (`hwvar.*`) overrides. Exposed so drivers and
  /// tests can ask what fingerprint a job will land under.
  JobSpec effectiveSpec(const JobSpec& job) const;

 private:
  SweepResult execute(const JobSpec& job);
  SweepResult executeStrict(const JobSpec& job, SweepResult out);
  /// Lazily connect to options_.serve_socket and verify the daemon's
  /// policy signature; throws std::runtime_error on mismatch or if the
  /// daemon is unreachable.
  serve::ServeClient& ensureRemote();

  SweepOptions options_;
  unsigned workers_;
  ResultCache cache_;
  FaultInjector injector_;
  QuarantineList quarantine_;
  std::unique_ptr<serve::ServeClient> remote_;
};

/// Shared command-line handling for bench drivers:
///   --jobs N      worker threads (default: BRIDGE_JOBS or all cores)
///   --no-cache    bypass the result cache
///   --csv         CSV output (driver-interpreted)
///   --strict      legacy failure mode: first job exception aborts the run
///   --retries N   per-job retry count (default 2; 0 disables retries)
///   --timeout S   cooperative per-job budget in seconds (default: off)
///   --serve PATH  forward jobs to the sweep daemon on this Unix socket
///                 instead of simulating locally (see bench/sweep_serve)
///   --sampling S  sampled execution: "on", "off", or
///                 "interval=N,measure=N,warmup=N,seed=N" (sim/sampling).
///                 Defaults from $BRIDGE_SAMPLING (malformed env value:
///                 warn + full fidelity; malformed flag value: hard error)
///   --hwvar S     hardware variability: "on", "off", or a key=value spec
///                 (sim/hwvar: interval, seed, placement, levels, minfreq,
///                 shift, dvfslat, heat, cool, threshold, tick, tickcycles,
///                 preempt, preemptcycles). Defaults from $BRIDGE_HWVAR
///                 (malformed env value: warn + deterministic machine;
///                 malformed flag value: hard error)
/// Unrecognized arguments are preserved in `rest`.
struct SweepCli {
  SweepOptions options;
  bool csv = false;
  std::vector<std::string> rest;

  /// Exits(2) with a one-line message on malformed input (e.g. "--jobs 0",
  /// "--jobs -3", "--jobs many"): a bad worker count must never silently
  /// fall through to a degenerate pool.
  static SweepCli parse(int argc, char** argv);

  /// Non-exiting variant (args excludes argv[0]): false + *error on
  /// malformed input. parse() is this plus fprintf/exit.
  static bool tryParse(const std::vector<std::string>& args, SweepCli* out,
                       std::string* error);
};

/// Strict decimal parse for CLI worker/count arguments: the whole string
/// must be digits and the value in [1, 1'000'000]. Shared by SweepCli and
/// the tune drivers.
std::optional<long> parsePositiveInt(std::string_view text);

/// As parsePositiveInt but admitting 0 (retry counts may be zero).
std::optional<long> parseNonNegativeInt(std::string_view text);

}  // namespace bridge
