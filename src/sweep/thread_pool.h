// Fixed-size worker pool with a FIFO task queue.
//
// The sweep engine fans independent simulation jobs out across this pool.
// Semantics chosen for a batch engine (not a server):
//  * submit() returns a std::future carrying the task's result; an exception
//    thrown by the task is captured and rethrown from future::get();
//  * destruction is a *clean* shutdown: already-queued tasks are drained and
//    completed before the workers join, so a pool going out of scope never
//    silently drops work;
//  * tasks must not submit to the pool they run on (the sweep engine has no
//    need for nesting, and forbidding it keeps shutdown trivially correct).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bridge {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 is clamped to 1.
  explicit ThreadPool(unsigned workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue (running every task already submitted) and joins.
  ~ThreadPool();

  /// Begin the clean shutdown early: drain the queue, join the workers.
  /// Idempotent; the destructor calls it. submit() after shutdown() has
  /// begun throws std::runtime_error instead of queueing work that could
  /// never run.
  void shutdown();

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Number of tasks submitted over the pool's lifetime (diagnostics).
  std::uint64_t submitted() const;

  /// Enqueue `fn`; returns a future for its result. Thread-safe.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> job);
  void workerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace bridge
