// Deterministic fault injection for the sweep subsystem (DESIGN.md §5f).
//
// Long sweep campaigns hit real failures — the paper's own 40-kernel suite
// lost CRm to a segfault on every platform — and the recovery machinery
// (retry, quarantine, cache repair) is exactly the code that never runs in
// a healthy test environment. The FaultInjector makes those paths testable:
// given a FaultPlan it decides, *deterministically per job fingerprint*,
// whether a job throws, runs slow, or has its cache entry torn or
// bit-corrupted on write. Decisions are pure functions of (plan seed, fault
// stream, fingerprint), so a chaos run is bit-reproducible: the same plan
// over the same jobs injects the same faults at --jobs 1 and --jobs 8, and
// the failed-job log lines alone are enough to replay a failure.
//
// Injection is OFF by default. Tests enable it by filling a FaultPlan;
// operators enable it with the BRIDGE_CHAOS environment knob, e.g.
//   BRIDGE_CHAOS="throw=0.3,seed=7"            30% transient job failures
//   BRIDGE_CHAOS="match=CRm"                   every CRm job fails hard
//   BRIDGE_CHAOS="torn=0.1,corrupt=0.1"        mangle 20% of cache writes
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace bridge {

/// Thrown by injected job failures; a distinct type so tests (and log
/// readers) can tell injected faults from organic ones.
class FaultInjectionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  /// Seed folded into every injection decision. Two plans with the same
  /// rates but different seeds select different jobs.
  std::uint64_t seed = 1;
  /// Fraction of jobs that fail transiently: a selected job throws on its
  /// first `transient_failures` attempts, then succeeds — the retry path.
  double throw_rate = 0.0;
  unsigned transient_failures = 1;
  /// Fraction of jobs that fail on *every* attempt — the quarantine path.
  double permanent_rate = 0.0;
  /// Jobs whose label contains this substring fail on every attempt (the
  /// targeted "CRm mechanism": reproduce one permanently bad workload).
  std::string fail_label_substring;
  /// Fraction of jobs delayed by `slow_ms` before executing — the timeout
  /// path (the delay is real wall time, so keep it small in tests).
  double slow_rate = 0.0;
  unsigned slow_ms = 50;
  /// Fractions of cache stores whose on-disk payload is truncated (torn
  /// write) or has one bit flipped (media corruption) — the cache-repair
  /// path. The in-memory result of the run itself is untouched.
  double torn_write_rate = 0.0;
  double corrupt_write_rate = 0.0;
  /// Transport-level faults (DESIGN §5k), applied by the serve daemon on
  /// its send path. Decisions are pure hashes of (seed, stream, connection,
  /// frame), so a chaos run injects the same socket faults at --jobs 1 and
  /// --jobs 8 — recovery (client reconnect + fingerprint dedup) is what
  /// makes the *results* identical anyway.
  double conn_drop_rate = 0.0;    // close the connection instead of replying
  double frame_torn_rate = 0.0;   // send a truncated frame, then drop
  double frame_delay_rate = 0.0;  // stall a reply by frame_delay_ms
  unsigned frame_delay_ms = 20;
  double hello_torn_rate = 0.0;   // truncate the unsolicited hello

  /// True when any fault can actually fire.
  bool any() const;

  /// True when any socket-layer fault can fire (subset of any()).
  bool anyTransport() const;

  /// Canonical one-line description ("" when !any()); folded into the
  /// engine's policy signature, job log lines, and tuner checkpoints.
  std::string signature() const;

  /// Parse $BRIDGE_CHAOS ("key=value,key=value"; keys: seed, throw,
  /// transient, permanent, match, slow, slow-ms, torn, corrupt, conn-drop,
  /// frame-torn, frame-delay, frame-delay-ms, hello-torn). Unset or empty
  /// yields the default (inactive) plan; a malformed value disables the
  /// whole plan with one warning — chaos must never abort a run.
  static FaultPlan fromEnv();

  /// fromEnv() on an explicit string (exposed for tests).
  static FaultPlan fromSpec(std::string_view spec);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {});

  bool active() const { return plan_.any(); }
  const FaultPlan& plan() const { return plan_; }

  /// Number of leading attempts of this job that will throw: 0 for
  /// unselected jobs, plan.transient_failures for transient picks, and
  /// kFailsForever for permanent picks. Pure in its inputs — tests use it
  /// to predict exactly which jobs retry.
  static constexpr unsigned kFailsForever = ~0u;
  unsigned plannedFailures(std::string_view label,
                           const std::string& fingerprint) const;

  /// Called by the engine before each execution attempt (0-based). Sleeps
  /// for slow faults, then throws FaultInjectionError while `attempt` <
  /// plannedFailures(...).
  void beforeExecute(std::string_view label, const std::string& fingerprint,
                     unsigned attempt) const;

  /// Possibly mangle a serialized cache entry before it reaches disk:
  /// torn writes truncate the payload, corrupt writes flip one bit. The
  /// returned payload is what the cache persists.
  std::string mangleCachePayload(const std::string& fingerprint,
                                 std::string payload) const;

  /// Socket-layer fault for response `frame` on `connection` (both are
  /// daemon-side counters). At most one fault fires per frame; drop wins
  /// over torn wins over delay, so a plan with all three rates still makes
  /// one deterministic decision.
  enum class TransportFault { kNone, kDelay, kTorn, kDrop };
  TransportFault transportFault(std::uint64_t connection,
                                std::uint64_t frame) const;

  /// Whether the unsolicited hello on `connection` is truncated.
  bool tornHello(std::uint64_t connection) const;

  unsigned frameDelayMs() const { return plan_.frame_delay_ms; }

 private:
  /// Uniform [0,1) draw, a pure hash of (seed, stream, fingerprint).
  double roll(std::string_view stream, const std::string& fingerprint) const;

  FaultPlan plan_;
};

}  // namespace bridge
