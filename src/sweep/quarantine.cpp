#include "sweep/quarantine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/log.h"

namespace fs = std::filesystem;

namespace bridge {

namespace {

/// Tabs and newlines are the record separators; flatten them so a reason
/// string can never split an entry.
std::string sanitizeField(std::string text) {
  std::replace_if(
      text.begin(), text.end(),
      [](char c) { return c == '\t' || c == '\n' || c == '\r'; }, ' ');
  return text;
}

}  // namespace

QuarantineList::QuarantineList(std::string path) { open(std::move(path)); }

void QuarantineList::open(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
  order_.clear();
  fingerprints_.clear();
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in) return;  // no file yet: empty list
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t t1 = line.find('\t');
    if (t1 == std::string::npos || t1 == 0) continue;  // malformed: skip
    const std::size_t t2 = line.find('\t', t1 + 1);
    Entry e;
    e.fingerprint = line.substr(0, t1);
    if (t2 == std::string::npos) {
      e.label = line.substr(t1 + 1);
    } else {
      e.label = line.substr(t1 + 1, t2 - t1 - 1);
      e.reason = line.substr(t2 + 1);
    }
    if (fingerprints_.insert(e.fingerprint).second) {
      order_.push_back(std::move(e));
    }
  }
}

bool QuarantineList::contains(const std::string& fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fingerprints_.count(fingerprint) != 0;
}

std::string QuarantineList::reasonFor(const std::string& fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : order_) {
    if (e.fingerprint == fingerprint) return e.reason;
  }
  return {};
}

bool QuarantineList::add(const std::string& fingerprint,
                         const std::string& label, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fingerprints_.insert(fingerprint).second) return false;
  Entry e;
  e.fingerprint = fingerprint;
  e.label = sanitizeField(label);
  e.reason = sanitizeField(reason);
  appendToFile(e);
  order_.push_back(std::move(e));
  return true;
}

void QuarantineList::appendToFile(const Entry& entry) {
  if (path_.empty()) return;
  std::error_code ec;
  const fs::path p(path_);
  if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    BRIDGE_LOG(kWarn) << "quarantine: cannot append to " << path_
                      << "; entry kept in memory only";
    return;
  }
  out << entry.fingerprint << '\t' << entry.label << '\t' << entry.reason
      << '\n';
}

std::size_t QuarantineList::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_.size();
}

std::vector<QuarantineList::Entry> QuarantineList::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

std::size_t QuarantineList::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = order_.size();
  order_.clear();
  fingerprints_.clear();
  if (!path_.empty()) {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  return n;
}

}  // namespace bridge
