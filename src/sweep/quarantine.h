// Persistent quarantine list for permanently failing jobs (DESIGN.md §5f).
//
// The paper dropped the CRm microbenchmark after it segfaulted on every
// platform — "drop the bad kernel and keep going" is a necessary operation
// for any long campaign. QuarantineList is that mechanism for the sweep
// engine: a job that exhausts its retries is recorded here by content
// fingerprint, and subsequent runs skip it with an explicit log line
// instead of burning its retry budget again. Entries carry the label and
// the last error so the skip line explains itself.
//
// Persistence is line-oriented (fingerprint \t label \t reason) and
// best-effort: an unwritable file degrades to in-memory quarantine for the
// process lifetime, never to a failed run. Reads tolerate malformed lines
// (a torn append loses one entry, not the list). All operations are
// thread-safe — sweep workers quarantine concurrently.
#pragma once

#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace bridge {

class QuarantineList {
 public:
  struct Entry {
    std::string fingerprint;
    std::string label;
    std::string reason;
  };

  /// Loads `path` if it exists. An empty path keeps the list purely
  /// in-memory (no persistence across runs).
  explicit QuarantineList(std::string path = {});

  /// Re-point the list at `path` (discarding current contents) and load it
  /// if it exists. Lets an owner pick the path after construction — the
  /// sweep engine only knows its quarantine file once the cache directory
  /// is resolved. Not safe concurrently with other operations.
  void open(std::string path);

  const std::string& path() const { return path_; }
  bool persistent() const { return !path_.empty(); }

  bool contains(const std::string& fingerprint) const;

  /// Entry for `fingerprint`, or an empty reason when absent.
  std::string reasonFor(const std::string& fingerprint) const;

  /// Record a permanently failing job and append it to the backing file
  /// (best-effort). Returns false if the fingerprint was already listed.
  bool add(const std::string& fingerprint, const std::string& label,
           const std::string& reason);

  std::size_t size() const;
  std::vector<Entry> entries() const;

  /// Forget every entry and delete the backing file; returns the number of
  /// entries dropped.
  std::size_t clear();

 private:
  void appendToFile(const Entry& entry);

  std::string path_;
  mutable std::mutex mu_;
  std::vector<Entry> order_;
  std::unordered_set<std::string> fingerprints_;
};

}  // namespace bridge
