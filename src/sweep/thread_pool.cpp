#include "sweep/thread_pool.h"

namespace bridge {

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned n = workers == 0 ? 1 : workers;
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t ThreadPool::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown began");
    }
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: only exit once the queue is empty, so queued
      // work submitted before destruction always runs.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // A packaged_task captures any exception into its future; a raw
    // throwing closure would terminate, which is the correct loud failure
    // for a task submitted outside submit().
    job();
  }
}

}  // namespace bridge
