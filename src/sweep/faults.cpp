#include "sweep/faults.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/log.h"
#include "sweep/fingerprint.h"

namespace bridge {

bool FaultPlan::any() const {
  return throw_rate > 0.0 || permanent_rate > 0.0 ||
         !fail_label_substring.empty() || slow_rate > 0.0 ||
         torn_write_rate > 0.0 || corrupt_write_rate > 0.0 || anyTransport();
}

bool FaultPlan::anyTransport() const {
  return conn_drop_rate > 0.0 || frame_torn_rate > 0.0 ||
         frame_delay_rate > 0.0 || hello_torn_rate > 0.0;
}

std::string FaultPlan::signature() const {
  if (!any()) return {};
  char buf[64];
  std::string out = "chaos[seed=" + std::to_string(seed);
  const auto rate = [&](const char* name, double value) {
    if (value <= 0.0) return;
    std::snprintf(buf, sizeof buf, ",%s=%.4g", name, value);
    out += buf;
  };
  rate("throw", throw_rate);
  if (throw_rate > 0.0 && transient_failures != 1) {
    out += ",transient=" + std::to_string(transient_failures);
  }
  rate("permanent", permanent_rate);
  if (!fail_label_substring.empty()) out += ",match=" + fail_label_substring;
  rate("slow", slow_rate);
  if (slow_rate > 0.0) {
    out += '/';
    out += std::to_string(slow_ms);
    out += "ms";
  }
  rate("torn", torn_write_rate);
  rate("corrupt", corrupt_write_rate);
  rate("conn-drop", conn_drop_rate);
  rate("frame-torn", frame_torn_rate);
  rate("frame-delay", frame_delay_rate);
  if (frame_delay_rate > 0.0) {
    out += '/';
    out += std::to_string(frame_delay_ms);
    out += "ms";
  }
  rate("hello-torn", hello_torn_rate);
  out += "]";
  return out;
}

namespace {

bool parseRate(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(v >= 0.0) || !(v <= 1.0)) {
    return false;
  }
  *out = v;
  return true;
}

bool parseUnsigned(const std::string& text, unsigned long max,
                   unsigned long* out) {
  if (text.empty() || text.size() > 10) return false;
  unsigned long v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned long>(c - '0');
  }
  if (v > max) return false;
  *out = v;
  return true;
}

}  // namespace

FaultPlan FaultPlan::fromSpec(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      BRIDGE_LOG(kWarn) << "BRIDGE_CHAOS: malformed item '" << item
                        << "' (expected key=value); chaos disabled";
      return FaultPlan{};
    }
    const std::string_view key = item.substr(0, eq);
    const std::string value(item.substr(eq + 1));
    unsigned long n = 0;
    bool ok = true;
    if (key == "seed") {
      ok = parseUnsigned(value, 0xFFFFFFFFul, &n);
      plan.seed = n;
    } else if (key == "throw") {
      ok = parseRate(value, &plan.throw_rate);
    } else if (key == "transient") {
      ok = parseUnsigned(value, 64, &n) && n >= 1;
      plan.transient_failures = static_cast<unsigned>(n);
    } else if (key == "permanent") {
      ok = parseRate(value, &plan.permanent_rate);
    } else if (key == "match") {
      ok = !value.empty();
      plan.fail_label_substring = value;
    } else if (key == "slow") {
      ok = parseRate(value, &plan.slow_rate);
    } else if (key == "slow-ms") {
      ok = parseUnsigned(value, 60'000, &n);
      plan.slow_ms = static_cast<unsigned>(n);
    } else if (key == "torn") {
      ok = parseRate(value, &plan.torn_write_rate);
    } else if (key == "corrupt") {
      ok = parseRate(value, &plan.corrupt_write_rate);
    } else if (key == "conn-drop") {
      ok = parseRate(value, &plan.conn_drop_rate);
    } else if (key == "frame-torn") {
      ok = parseRate(value, &plan.frame_torn_rate);
    } else if (key == "frame-delay") {
      ok = parseRate(value, &plan.frame_delay_rate);
    } else if (key == "frame-delay-ms") {
      ok = parseUnsigned(value, 60'000, &n);
      plan.frame_delay_ms = static_cast<unsigned>(n);
    } else if (key == "hello-torn") {
      ok = parseRate(value, &plan.hello_torn_rate);
    } else {
      ok = false;
    }
    if (!ok) {
      BRIDGE_LOG(kWarn) << "BRIDGE_CHAOS: bad item '" << item
                        << "'; chaos disabled";
      return FaultPlan{};
    }
  }
  return plan;
}

FaultPlan FaultPlan::fromEnv() {
  const char* env = std::getenv("BRIDGE_CHAOS");
  if (env == nullptr || *env == '\0') return FaultPlan{};
  return fromSpec(env);
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {}

double FaultInjector::roll(std::string_view stream,
                           const std::string& fingerprint) const {
  std::string key = std::to_string(plan_.seed);
  key += '|';
  key += stream;
  key += '|';
  key += fingerprint;
  // FNV-1a's high bits are visibly biased on short keys, and the rate
  // comparison below consumes exactly those bits — run the hash through a
  // splitmix64-style finalizer so the [0,1) draw is actually uniform.
  std::uint64_t h = fnv1a64(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

unsigned FaultInjector::plannedFailures(std::string_view label,
                                        const std::string& fingerprint) const {
  if (!active()) return 0;
  if (!plan_.fail_label_substring.empty() &&
      label.find(plan_.fail_label_substring) != std::string_view::npos) {
    return kFailsForever;
  }
  if (plan_.permanent_rate > 0.0 &&
      roll("permanent", fingerprint) < plan_.permanent_rate) {
    return kFailsForever;
  }
  if (plan_.throw_rate > 0.0 && roll("throw", fingerprint) < plan_.throw_rate) {
    return plan_.transient_failures;
  }
  return 0;
}

void FaultInjector::beforeExecute(std::string_view label,
                                  const std::string& fingerprint,
                                  unsigned attempt) const {
  if (!active()) return;
  if (plan_.slow_rate > 0.0 && plan_.slow_ms > 0 &&
      roll("slow", fingerprint) < plan_.slow_rate) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.slow_ms));
  }
  const unsigned planned = plannedFailures(label, fingerprint);
  if (attempt < planned) {
    throw FaultInjectionError(
        "injected fault: job '" + std::string(label) + "' attempt " +
        std::to_string(attempt + 1) +
        (planned == kFailsForever
             ? " (permanent, " + plan_.signature() + ")"
             : " of " + std::to_string(planned) + " planned (" +
                   plan_.signature() + ")"));
  }
}

FaultInjector::TransportFault FaultInjector::transportFault(
    std::uint64_t connection, std::uint64_t frame) const {
  if (!plan_.anyTransport()) return TransportFault::kNone;
  const std::string key = "conn" + std::to_string(connection) + "|frame" +
                          std::to_string(frame);
  if (plan_.conn_drop_rate > 0.0 &&
      roll("conn-drop", key) < plan_.conn_drop_rate) {
    return TransportFault::kDrop;
  }
  if (plan_.frame_torn_rate > 0.0 &&
      roll("frame-torn", key) < plan_.frame_torn_rate) {
    return TransportFault::kTorn;
  }
  if (plan_.frame_delay_rate > 0.0 && plan_.frame_delay_ms > 0 &&
      roll("frame-delay", key) < plan_.frame_delay_rate) {
    return TransportFault::kDelay;
  }
  return TransportFault::kNone;
}

bool FaultInjector::tornHello(std::uint64_t connection) const {
  if (plan_.hello_torn_rate <= 0.0) return false;
  return roll("hello-torn", "conn" + std::to_string(connection)) <
         plan_.hello_torn_rate;
}

std::string FaultInjector::mangleCachePayload(const std::string& fingerprint,
                                              std::string payload) const {
  if (!active() || payload.empty()) return payload;
  if (plan_.corrupt_write_rate > 0.0 &&
      roll("corrupt", fingerprint) < plan_.corrupt_write_rate) {
    const std::uint64_t h = fnv1a64("corrupt-site|" + fingerprint);
    payload[h % payload.size()] ^=
        static_cast<char>(1u << ((h >> 32) % 8));
  }
  if (plan_.torn_write_rate > 0.0 &&
      roll("torn", fingerprint) < plan_.torn_write_rate) {
    payload.resize(std::max<std::size_t>(1, payload.size() / 2));
  }
  return payload;
}

}  // namespace bridge
