// Declarative experiment jobs.
//
// A JobSpec names everything needed to reproduce one simulation point:
// platform, workload, rank count, scale, seed, and optional SocConfig
// overrides (the same "key = value" knobs the tuning tools accept). The
// sweep engine resolves a spec to a concrete SocConfig + trace program,
// runs it, and fingerprints the resolved parameters for the result cache —
// so a spec is also the cache key's source of truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "platforms/platforms.h"
#include "sim/config.h"
#include "workloads/lammps.h"
#include "workloads/npb.h"
#include "workloads/ume.h"

namespace bridge {

enum class WorkloadKind { kMicrobench, kNpb, kUme, kLammps };

std::string_view workloadKindName(WorkloadKind k);

struct JobSpec {
  std::string label;  // display only; not part of the fingerprint
  WorkloadKind kind = WorkloadKind::kMicrobench;
  PlatformId platform = PlatformId::kRocket1;
  int ranks = 1;        // multi-rank workloads (NPB / UME / LAMMPS)
  double scale = 1.0;   // workload scale knob
  std::uint64_t seed = 1;

  // Microbench-specific.
  std::string kernel;  // catalog name, e.g. "MM"
  bool warmup = true;  // run the perturbed-seed warmup instance first

  // NPB / LAMMPS benchmark selectors.
  NpbBenchmark npb = NpbBenchmark::kCG;
  LammpsBenchmark lammps = LammpsBenchmark::kLennardJones;

  // NPB extra knob (default mirrors NpbConfig): MG top-grid dimension.
  unsigned npb_mg_top = 48;

  // UME / LAMMPS extra knobs (defaults mirror the workload configs).
  unsigned ume_zones_per_dim = 32;
  std::uint64_t lammps_atoms = 8000;
  unsigned lammps_timesteps = 4;
  unsigned lammps_neighbors = 12;
  unsigned lammps_simd_lanes = 1;

  // SocConfig overrides applied on top of the platform preset; see
  // applySocOverrides() for the accepted keys.
  Config overrides;
};

/// Factory helpers; each fills a descriptive label.
JobSpec microbenchJob(PlatformId platform, std::string kernel,
                      double scale = 1.0, std::uint64_t seed = 1);
JobSpec npbJob(PlatformId platform, NpbBenchmark bench, int ranks,
               double scale = 1.0, std::uint64_t seed = 1);
JobSpec npbJob(PlatformId platform, NpbBenchmark bench, int ranks,
               const NpbConfig& cfg);
JobSpec umeJob(PlatformId platform, int ranks, const UmeConfig& cfg = {});
JobSpec lammpsJob(PlatformId platform, LammpsBenchmark bench, int ranks,
                  const LammpsConfig& cfg = {});

/// Apply "key = value" SocConfig overrides (e.g. "l2.banks", "ooo.rob",
/// "bus.width_bits"). Throws std::invalid_argument on an unknown key so a
/// typo cannot silently leave the base config — and the cache fingerprint —
/// unchanged.
void applySocOverrides(SocConfig* cfg, const Config& overrides);

/// One dotted-path unsigned knob of a SocConfig (the override keys above).
struct SocKnob {
  std::string_view key;
  unsigned* slot;
};

/// Every unsigned knob of `cfg`, addressed by override key — the single
/// source of truth shared by applySocOverrides and the tuner's parameter
/// space (which reads a base platform's current values through it).
/// freq_ghz and prefetch.enabled are handled separately.
std::vector<SocKnob> socConfigKnobs(SocConfig& cfg);

/// Current value of one unsigned knob; throws std::invalid_argument for an
/// unknown key.
unsigned socConfigKnobValue(const SocConfig& cfg, std::string_view key);

/// The SocConfig a spec runs on: platform preset, sized by the harness's
/// core rule (1 core for microbenchmarks; max(4, ranks) otherwise), with
/// overrides applied.
SocConfig resolveSocConfig(const JobSpec& spec);

/// Canonical one-line workload description (fingerprint input + debugging).
std::string describeJob(const JobSpec& spec);

/// Execute a spec synchronously on the calling thread (no pool, no cache).
/// `stats`, if non-null, receives the post-run counter snapshot.
RunResult executeJob(const JobSpec& spec, StatsSnapshot* stats = nullptr);

}  // namespace bridge
