// Branch predictor interfaces.
//
// The paper's Rocket configurations use a BTB+BHT+RAS front end and the BOOM
// configurations use a TAGE-L predictor (Table 5). Both are modeled here as
// compositions of a direction predictor, a branch target buffer, and a
// return-address stack, behind a single FrontEndPredictor interface the core
// models query per control-flow micro-op.
#pragma once

#include <cstdint>

#include "sim/types.h"
#include "uop/uop.h"

namespace bridge {

/// Predicts taken/not-taken for conditional branches.
class DirectionPredictor {
 public:
  virtual ~DirectionPredictor() = default;

  /// Predict the direction of the branch at `pc`.
  virtual bool predict(Addr pc) = 0;

  /// Train with the resolved outcome. Must be called exactly once per
  /// predicted branch, in program order.
  virtual void update(Addr pc, bool taken) = 0;
};

/// Result of a front-end lookup for one control-flow micro-op.
struct FrontEndOutcome {
  bool mispredict = false;       // core must charge the redirect penalty
  bool direction_wrong = false;  // conditional direction was wrong
  bool target_wrong = false;     // taken, but BTB missed or target stale
};

/// Full front end: direction + target + return-address prediction.
class FrontEndPredictor {
 public:
  virtual ~FrontEndPredictor() = default;

  /// Predict and then train on the resolved control-flow micro-op `op`
  /// (cls must be kBranch/kJump/kCall/kRet). Returns what the front end
  /// would have done so the core can charge redirect penalties.
  virtual FrontEndOutcome predictAndTrain(const MicroOp& op) = 0;
};

}  // namespace bridge
