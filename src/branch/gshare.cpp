#include "branch/gshare.h"

#include <cassert>

namespace bridge {

GsharePredictor::GsharePredictor(unsigned entries, unsigned history_bits)
    : table_(entries, 2u),
      mask_(entries - 1),
      history_mask_((1u << history_bits) - 1) {
  assert(entries != 0 && (entries & (entries - 1)) == 0);
  assert(history_bits <= 24);
}

std::size_t GsharePredictor::index(Addr pc) const {
  return ((pc >> 2) ^ history_) & mask_;
}

bool GsharePredictor::predict(Addr pc) { return table_[index(pc)] >= 2; }

void GsharePredictor::update(Addr pc, bool taken) {
  std::uint8_t& ctr = table_[index(pc)];
  if (taken) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

}  // namespace bridge
