// Branch target buffer: set-associative PC -> target cache. A taken branch
// whose target is absent (or stale) costs a front-end redirect even when the
// direction predictor was right.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace bridge {

class BranchTargetBuffer {
 public:
  /// `entries` and `ways` must be powers of two; entries % ways == 0.
  explicit BranchTargetBuffer(unsigned entries = 64, unsigned ways = 4);

  /// Returns true and writes *target if `pc` hits.
  bool lookup(Addr pc, Addr* target);

  /// Install / refresh the mapping pc -> target (LRU replacement).
  void update(Addr pc, Addr target);

  unsigned entries() const { return static_cast<unsigned>(slots_.size()); }
  unsigned ways() const { return ways_; }

 private:
  struct Slot {
    Addr tag = 0;
    Addr target = 0;
    std::uint64_t lru = 0;  // last-touch stamp
    bool valid = false;
  };

  std::size_t setOf(Addr pc) const;

  std::vector<Slot> slots_;  // sets_ x ways_, row-major by set
  unsigned ways_;
  std::size_t set_mask_;
  std::uint64_t tick_ = 0;
};

}  // namespace bridge
