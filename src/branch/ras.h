// Return-address stack. Calls push their fall-through address; returns pop
// and compare against the actual target. The stack is circular, as in real
// front ends: overflow clobbers the oldest entry and *underflow returns
// stale entries* rather than failing — which is exactly why same-call-site
// deep recursion (CRd) stays well-predicted beyond the stack depth while
// multi-site recursion (CRf) does not.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace bridge {

class ReturnAddressStack {
 public:
  explicit ReturnAddressStack(unsigned depth = 8);

  void push(Addr return_addr);

  /// Pops and returns the predicted return address. On underflow the
  /// circular stack yields whatever (stale) value sits in the slot.
  Addr pop();

  unsigned depth() const { return static_cast<unsigned>(stack_.size()); }
  unsigned occupancy() const { return occupancy_; }

 private:
  std::vector<Addr> stack_;  // circular buffer
  unsigned top_ = 0;         // index of next push slot
  unsigned occupancy_ = 0;
};

}  // namespace bridge
