// Bimodal branch history table: per-PC 2-bit saturating counters. This is
// the "BHT" of the Rocket front end in Table 5.
#pragma once

#include <cstdint>
#include <vector>

#include "branch/predictor.h"

namespace bridge {

class BimodalPredictor final : public DirectionPredictor {
 public:
  /// `entries` must be a power of two.
  explicit BimodalPredictor(unsigned entries = 512);

  bool predict(Addr pc) override;
  void update(Addr pc, bool taken) override;

  unsigned entries() const { return static_cast<unsigned>(table_.size()); }

 private:
  std::size_t index(Addr pc) const;

  std::vector<std::uint8_t> table_;  // 2-bit counters, init weakly-taken (2)
  std::size_t mask_;
};

}  // namespace bridge
