// gshare direction predictor: global history XOR PC indexes a table of 2-bit
// counters. Used as a mid-strength baseline between bimodal and TAGE in the
// ablation benches and as the second level of the Rocket-style front end.
#pragma once

#include <cstdint>
#include <vector>

#include "branch/predictor.h"

namespace bridge {

class GsharePredictor final : public DirectionPredictor {
 public:
  /// `entries` must be a power of two; `history_bits` <= 24.
  explicit GsharePredictor(unsigned entries = 4096, unsigned history_bits = 12);

  bool predict(Addr pc) override;
  void update(Addr pc, bool taken) override;

  std::uint32_t history() const { return history_; }

 private:
  std::size_t index(Addr pc) const;

  std::vector<std::uint8_t> table_;
  std::size_t mask_;
  std::uint32_t history_ = 0;
  std::uint32_t history_mask_;
};

}  // namespace bridge
