#include "branch/tage.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace bridge {

namespace {
constexpr bool isPow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

TagePredictor::TagePredictor(const TageConfig& cfg)
    : cfg_(cfg),
      base_(cfg.base_entries, 2u),
      tables_(cfg.num_tables, std::vector<Entry>(cfg.table_entries)) {
  assert(isPow2(cfg.base_entries));
  assert(isPow2(cfg.table_entries));
  assert(cfg.num_tables >= 1);
  assert(cfg.min_history >= 1 && cfg.max_history <= 64);
  assert(cfg.min_history <= cfg.max_history);

  // Geometric history series from min to max.
  hist_len_.resize(cfg.num_tables);
  if (cfg.num_tables == 1) {
    hist_len_[0] = cfg.min_history;
  } else {
    const double ratio =
        std::pow(static_cast<double>(cfg.max_history) / cfg.min_history,
                 1.0 / (cfg.num_tables - 1));
    double len = cfg.min_history;
    for (unsigned t = 0; t < cfg.num_tables; ++t) {
      hist_len_[t] = static_cast<unsigned>(len + 0.5);
      if (t > 0 && hist_len_[t] <= hist_len_[t - 1]) {
        hist_len_[t] = hist_len_[t - 1] + 1;
      }
      len *= ratio;
    }
    hist_len_.back() = cfg.max_history;
  }

  const unsigned idx_bits =
      static_cast<unsigned>(std::countr_zero(cfg.table_entries));
  fold_idx_.resize(cfg.num_tables);
  fold_tag1_.resize(cfg.num_tables);
  fold_tag2_.resize(cfg.num_tables);
  for (unsigned t = 0; t < cfg.num_tables; ++t) {
    fold_idx_[t] = {0, hist_len_[t], idx_bits};
    fold_tag1_[t] = {0, hist_len_[t], cfg.tag_bits};
    fold_tag2_[t] = {0, hist_len_[t], cfg.tag_bits - 1};
  }
}

bool TagePredictor::foldedHistoryConsistent() const {
  const unsigned idx_bits =
      static_cast<unsigned>(std::countr_zero(cfg_.table_entries));
  for (unsigned t = 0; t < cfg_.num_tables; ++t) {
    if (fold_idx_[t].val != foldedHistory(hist_len_[t], idx_bits) ||
        fold_tag1_[t].val != foldedHistory(hist_len_[t], cfg_.tag_bits) ||
        fold_tag2_[t].val != foldedHistory(hist_len_[t], cfg_.tag_bits - 1)) {
      return false;
    }
  }
  return true;
}

void TagePredictor::shiftHistory(bool taken) {
  for (unsigned t = 0; t < cfg_.num_tables; ++t) {
    fold_idx_[t].shift(taken, ghist_);
    fold_tag1_[t].shift(taken, ghist_);
    fold_tag2_[t].shift(taken, ghist_);
  }
  ghist_ = (ghist_ << 1) | (taken ? 1u : 0u);
}

std::size_t TagePredictor::baseIndex(Addr pc) const {
  return (pc >> 2) & (cfg_.base_entries - 1);
}

std::uint64_t TagePredictor::foldedHistory(unsigned bits,
                                           unsigned chunk) const {
  // XOR-fold the newest `bits` of global history into `chunk` bits.
  const std::uint64_t hist =
      bits >= 64 ? ghist_ : (ghist_ & ((1ull << bits) - 1));
  std::uint64_t folded = 0;
  for (unsigned shift = 0; shift < bits; shift += chunk) {
    folded ^= (hist >> shift);
  }
  return folded & ((1ull << chunk) - 1);
}

std::size_t TagePredictor::tableIndex(unsigned t, Addr pc) const {
  const unsigned idx_bits =
      static_cast<unsigned>(std::countr_zero(cfg_.table_entries));
  const std::uint64_t h = fold_idx_[t].val;
  return ((pc >> 2) ^ (pc >> (2 + idx_bits)) ^ h ^ (t * 0x9E5u)) &
         (cfg_.table_entries - 1);
}

std::uint16_t TagePredictor::tableTag(unsigned t, Addr pc) const {
  const std::uint64_t h1 = fold_tag1_[t].val;
  const std::uint64_t h2 = fold_tag2_[t].val;
  return static_cast<std::uint16_t>(
      ((pc >> 2) ^ h1 ^ (h2 << 1)) & ((1u << cfg_.tag_bits) - 1));
}

TagePredictor::Lookup TagePredictor::lookup(Addr pc) {
  Lookup out;
  out.alt_pred = base_[baseIndex(pc)] >= 2;
  out.provider_pred = out.alt_pred;
  for (int t = static_cast<int>(cfg_.num_tables) - 1; t >= 0; --t) {
    const std::size_t idx = tableIndex(static_cast<unsigned>(t), pc);
    const Entry& e = tables_[static_cast<std::size_t>(t)][idx];
    if (e.tag == tableTag(static_cast<unsigned>(t), pc) &&
        (e.ctr != 0 || e.useful != 0 || e.tag != 0)) {
      if (out.provider < 0) {
        out.provider = t;
        out.provider_idx = idx;
        out.provider_pred = e.ctr >= 0;
      } else if (out.alt < 0) {
        out.alt = t;
        out.alt_idx = idx;
        out.alt_pred = e.ctr >= 0;
        break;
      }
    }
  }
  // "Use alt" heuristic: for a freshly allocated, weak provider entry the
  // alternate prediction is statistically better.
  if (out.provider >= 0) {
    const Entry& p =
        tables_[static_cast<std::size_t>(out.provider)][out.provider_idx];
    const bool weak = (p.ctr == 0 || p.ctr == -1) && p.useful == 0;
    out.pred = (weak && use_alt_on_na_ >= 0) ? out.alt_pred : out.provider_pred;
  } else {
    out.pred = out.alt_pred;
  }
  return out;
}

bool TagePredictor::predict(Addr pc) {
  const Lookup l = lookup(pc);
  last_provider_ = l.provider < 0 ? 0 : static_cast<unsigned>(l.provider) + 1;
  cached_lookup_ = l;
  cached_pc_ = pc;
  cache_valid_ = true;
  return l.pred;
}

void TagePredictor::update(Addr pc, bool taken) {
  const Lookup l =
      (cache_valid_ && cached_pc_ == pc) ? cached_lookup_ : lookup(pc);
  cache_valid_ = false;  // table writes and the history shift below

  // Track whether the alt-on-weak heuristic helps.
  if (l.provider >= 0) {
    const Entry& p =
        tables_[static_cast<std::size_t>(l.provider)][l.provider_idx];
    const bool weak = (p.ctr == 0 || p.ctr == -1) && p.useful == 0;
    if (weak && l.provider_pred != l.alt_pred) {
      if (l.alt_pred == taken) {
        if (use_alt_on_na_ < 7) ++use_alt_on_na_;
      } else {
        if (use_alt_on_na_ > -8) --use_alt_on_na_;
      }
    }
  }

  // Update the provider's counter (or the base table).
  if (l.provider >= 0) {
    Entry& p = tables_[static_cast<std::size_t>(l.provider)][l.provider_idx];
    if (taken) {
      if (p.ctr < 3) ++p.ctr;
    } else {
      if (p.ctr > -4) --p.ctr;
    }
    // Useful bit: provider was right where alt was wrong.
    if (l.provider_pred != l.alt_pred) {
      if (l.provider_pred == taken) {
        if (p.useful < 3) ++p.useful;
      } else if (p.useful > 0) {
        --p.useful;
      }
    }
  } else {
    std::uint8_t& ctr = base_[baseIndex(pc)];
    if (taken) {
      if (ctr < 3) ++ctr;
    } else {
      if (ctr > 0) --ctr;
    }
  }

  // On a final misprediction, allocate in a longer-history table.
  if (l.pred != taken &&
      l.provider < static_cast<int>(cfg_.num_tables) - 1) {
    bool allocated = false;
    for (unsigned t = static_cast<unsigned>(l.provider + 1);
         t < cfg_.num_tables && !allocated; ++t) {
      const std::size_t idx = tableIndex(t, pc);
      Entry& e = tables_[t][idx];
      if (e.useful == 0) {
        e.tag = tableTag(t, pc);
        e.ctr = taken ? 0 : -1;
        allocated = true;
      }
    }
    if (!allocated) {
      // Everything useful: age the candidates so future allocs succeed.
      for (unsigned t = static_cast<unsigned>(l.provider + 1);
           t < cfg_.num_tables; ++t) {
        Entry& e = tables_[t][tableIndex(t, pc)];
        if (e.useful > 0) --e.useful;
      }
    }
  }

  // Periodic gradual reset of useful counters (column-wise aging).
  if (++update_count_ % cfg_.useful_reset_period == 0) {
    for (auto& table : tables_) {
      for (Entry& e : table) e.useful >>= 1;
    }
  }

  shiftHistory(taken);
}

}  // namespace bridge
