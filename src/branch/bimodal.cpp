#include "branch/bimodal.h"

#include <cassert>

namespace bridge {

namespace {
constexpr bool isPow2(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

BimodalPredictor::BimodalPredictor(unsigned entries)
    : table_(entries, 2u), mask_(entries - 1) {
  assert(isPow2(entries));
}

std::size_t BimodalPredictor::index(Addr pc) const {
  // Drop the 2 low bits (RISC-V compressed alignment) before hashing.
  return (pc >> 2) & mask_;
}

bool BimodalPredictor::predict(Addr pc) { return table_[index(pc)] >= 2; }

void BimodalPredictor::update(Addr pc, bool taken) {
  std::uint8_t& ctr = table_[index(pc)];
  if (taken) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }
}

}  // namespace bridge
