#include "branch/btb.h"

#include <cassert>

namespace bridge {

BranchTargetBuffer::BranchTargetBuffer(unsigned entries, unsigned ways)
    : slots_(entries), ways_(ways), set_mask_(entries / ways - 1) {
  assert(entries != 0 && (entries & (entries - 1)) == 0);
  assert(ways != 0 && (ways & (ways - 1)) == 0);
  assert(entries % ways == 0);
}

std::size_t BranchTargetBuffer::setOf(Addr pc) const {
  return ((pc >> 2) & set_mask_) * ways_;
}

bool BranchTargetBuffer::lookup(Addr pc, Addr* target) {
  const std::size_t base = setOf(pc);
  for (unsigned w = 0; w < ways_; ++w) {
    Slot& s = slots_[base + w];
    if (s.valid && s.tag == pc) {
      s.lru = ++tick_;
      if (target != nullptr) *target = s.target;
      return true;
    }
  }
  return false;
}

void BranchTargetBuffer::update(Addr pc, Addr target) {
  const std::size_t base = setOf(pc);
  Slot* victim = &slots_[base];
  for (unsigned w = 0; w < ways_; ++w) {
    Slot& s = slots_[base + w];
    if (s.valid && s.tag == pc) {
      s.target = target;
      s.lru = ++tick_;
      return;
    }
    if (!s.valid) {
      victim = &s;
    } else if (victim->valid && s.lru < victim->lru) {
      victim = &s;
    }
  }
  victim->valid = true;
  victim->tag = pc;
  victim->target = target;
  victim->lru = ++tick_;
}

}  // namespace bridge
