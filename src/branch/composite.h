// Composite front-end predictors.
//
// CompositeFrontEnd wires a direction predictor, a BTB, and a RAS into the
// FrontEndPredictor interface consumed by the core models:
//  * conditional branch: direction from the DirectionPredictor; if taken,
//    the target must also hit in the BTB;
//  * direct jump / call: target from the BTB (a miss costs one redirect,
//    after which the entry is installed);
//  * call additionally pushes the fall-through PC on the RAS;
//  * ret pops the RAS and compares with the resolved target.
//
// Factory helpers build the two flavors the paper uses: a Rocket-style
// BTB+BHT+RAS front end and a BOOM-style TAGE front end (Table 5).
#pragma once

#include <memory>

#include "branch/bimodal.h"
#include "branch/btb.h"
#include "branch/predictor.h"
#include "branch/ras.h"
#include "branch/tage.h"
#include "sim/stats.h"

namespace bridge {

struct FrontEndStats {
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t direction_wrong = 0;
  std::uint64_t target_wrong = 0;
  std::uint64_t ras_wrong = 0;

  double mispredictRate() const {
    return branches == 0
               ? 0.0
               : static_cast<double>(mispredicts) / static_cast<double>(branches);
  }
};

class CompositeFrontEnd final : public FrontEndPredictor {
 public:
  CompositeFrontEnd(std::unique_ptr<DirectionPredictor> direction,
                    unsigned btb_entries, unsigned btb_ways,
                    unsigned ras_depth);

  FrontEndOutcome predictAndTrain(const MicroOp& op) override;

  const FrontEndStats& stats() const { return stats_; }

 private:
  std::unique_ptr<DirectionPredictor> direction_;
  BranchTargetBuffer btb_;
  ReturnAddressStack ras_;
  FrontEndStats stats_;
};

/// Rocket-style front end: BTB + bimodal BHT + RAS (paper Table 5).
std::unique_ptr<CompositeFrontEnd> makeRocketFrontEnd(
    unsigned bht_entries = 512, unsigned btb_entries = 64,
    unsigned ras_depth = 8);

/// BOOM-style front end: TAGE + larger BTB + deeper RAS (paper Table 5).
std::unique_ptr<CompositeFrontEnd> makeBoomFrontEnd(
    const TageConfig& tage = {}, unsigned btb_entries = 512,
    unsigned ras_depth = 32);

}  // namespace bridge
