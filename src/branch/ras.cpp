#include "branch/ras.h"

#include <cassert>

namespace bridge {

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack_(depth, 0) {
  assert(depth != 0);
}

void ReturnAddressStack::push(Addr return_addr) {
  stack_[top_] = return_addr;
  top_ = (top_ + 1) % stack_.size();
  if (occupancy_ < stack_.size()) ++occupancy_;
}

Addr ReturnAddressStack::pop() {
  top_ = (top_ + stack_.size() - 1) % stack_.size();
  if (occupancy_ > 0) --occupancy_;
  return stack_[top_];
}

}  // namespace bridge
