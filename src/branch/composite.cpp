#include "branch/composite.h"

#include <cassert>
#include <utility>

namespace bridge {

CompositeFrontEnd::CompositeFrontEnd(
    std::unique_ptr<DirectionPredictor> direction, unsigned btb_entries,
    unsigned btb_ways, unsigned ras_depth)
    : direction_(std::move(direction)),
      btb_(btb_entries, btb_ways),
      ras_(ras_depth) {
  assert(direction_ != nullptr);
}

FrontEndOutcome CompositeFrontEnd::predictAndTrain(const MicroOp& op) {
  FrontEndOutcome out;
  ++stats_.branches;

  switch (op.cls) {
    case OpClass::kBranch: {
      const bool pred_taken = direction_->predict(op.pc);
      out.direction_wrong = pred_taken != op.taken;
      if (op.taken && !out.direction_wrong) {
        // Correctly predicted taken still needs the target from the BTB.
        Addr target = 0;
        if (!btb_.lookup(op.pc, &target) || target != op.addr) {
          out.target_wrong = true;
        }
      }
      direction_->update(op.pc, op.taken);
      if (op.taken) btb_.update(op.pc, op.addr);
      out.mispredict = out.direction_wrong || out.target_wrong;
      break;
    }
    case OpClass::kJump: {
      Addr target = 0;
      out.target_wrong = !btb_.lookup(op.pc, &target) || target != op.addr;
      btb_.update(op.pc, op.addr);
      out.mispredict = out.target_wrong;
      break;
    }
    case OpClass::kCall: {
      Addr target = 0;
      out.target_wrong = !btb_.lookup(op.pc, &target) || target != op.addr;
      btb_.update(op.pc, op.addr);
      // Push the fall-through address (RISC-V: pc + 4).
      ras_.push(op.pc + 4);
      out.mispredict = out.target_wrong;
      break;
    }
    case OpClass::kRet: {
      const Addr predicted = ras_.pop();
      out.target_wrong = predicted != op.addr;
      if (out.target_wrong) ++stats_.ras_wrong;
      out.mispredict = out.target_wrong;
      break;
    }
    default:
      // Non-control-flow ops never reach the front-end predictor.
      --stats_.branches;
      return out;
  }

  if (out.direction_wrong) ++stats_.direction_wrong;
  if (out.target_wrong) ++stats_.target_wrong;
  if (out.mispredict) ++stats_.mispredicts;
  return out;
}

std::unique_ptr<CompositeFrontEnd> makeRocketFrontEnd(unsigned bht_entries,
                                                      unsigned btb_entries,
                                                      unsigned ras_depth) {
  return std::make_unique<CompositeFrontEnd>(
      std::make_unique<BimodalPredictor>(bht_entries), btb_entries,
      /*btb_ways=*/4, ras_depth);
}

std::unique_ptr<CompositeFrontEnd> makeBoomFrontEnd(const TageConfig& tage,
                                                    unsigned btb_entries,
                                                    unsigned ras_depth) {
  return std::make_unique<CompositeFrontEnd>(
      std::make_unique<TagePredictor>(tage), btb_entries,
      /*btb_ways=*/4, ras_depth);
}

}  // namespace bridge
