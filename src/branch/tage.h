// TAGE direction predictor (Seznec & Michaud, JILP 2006), the family the
// BOOM front end uses ("TAGE-L branch predictor", paper Table 5).
//
// A base bimodal table is backed by `num_tables` tagged components indexed by
// geometrically increasing global-history lengths. Prediction comes from the
// longest-history component whose (partial) tag matches; allocation on a
// mispredict steals a not-useful entry in a longer component.
#pragma once

#include <cstdint>
#include <vector>

#include "branch/predictor.h"

namespace bridge {

struct TageConfig {
  unsigned base_entries = 4096;    // bimodal base table (power of two)
  unsigned table_entries = 1024;   // entries per tagged table (power of two)
  unsigned num_tables = 5;         // tagged components
  unsigned min_history = 4;        // history length of the shortest table
  unsigned max_history = 64;       // history length of the longest table
  unsigned tag_bits = 9;           // partial tag width
  unsigned useful_reset_period = 1u << 18;  // gradual u-bit aging interval
};

class TagePredictor final : public DirectionPredictor {
 public:
  explicit TagePredictor(const TageConfig& cfg = {});

  bool predict(Addr pc) override;
  void update(Addr pc, bool taken) override;

  const TageConfig& config() const { return cfg_; }

  /// Number of tagged-component hits on the last predict() (diagnostics).
  unsigned lastProviderTable() const { return last_provider_; }

  /// True iff every incrementally maintained folded-history register equals
  /// the from-scratch fold of the current global history (test hook; the
  /// hot path never recomputes).
  bool foldedHistoryConsistent() const;

 private:
  struct Entry {
    std::int8_t ctr = 0;      // signed 3-bit: >=0 predicts taken
    std::uint16_t tag = 0;
    std::uint8_t useful = 0;  // 2-bit useful counter
  };

  std::size_t baseIndex(Addr pc) const;
  std::size_t tableIndex(unsigned t, Addr pc) const;
  std::uint16_t tableTag(unsigned t, Addr pc) const;
  std::uint64_t foldedHistory(unsigned bits, unsigned chunk) const;

  // Incrementally maintained XOR-fold of the newest `bits` of global
  // history into `chunk` bits. Bit j of the fold is the XOR of the history
  // bits whose position is congruent to j mod chunk, which makes the
  // per-branch update O(1): rotate left by one inside `chunk` bits, XOR
  // the inserted bit into position 0, XOR the evicted bit (old position
  // bits-1) out of position bits mod chunk. foldedHistory() recomputes the
  // same value from scratch and is kept as the checked reference
  // (tests/test_branch.cpp cross-validates on random branch streams) —
  // the loop it runs per table per branch was the hottest part of the
  // whole predictor (bench/sim_speed profile).
  struct FoldedReg {
    std::uint64_t val = 0;
    unsigned bits = 0;   // history length folded in
    unsigned chunk = 1;  // fold width
    void shift(bool inserted, std::uint64_t prev_ghist) {
      const std::uint64_t evicted = (prev_ghist >> (bits - 1)) & 1u;
      val = ((val << 1) | (val >> (chunk - 1))) & ((1ull << chunk) - 1);
      val ^= inserted ? 1u : 0u;
      val ^= evicted << (bits % chunk);
    }
  };
  void shiftHistory(bool taken);

  // Internal lookup shared by predict/update so both see identical state.
  struct Lookup {
    int provider = -1;   // tagged table providing the prediction, -1 = base
    int alt = -1;        // next-longest matching table, -1 = base
    bool provider_pred = false;
    bool alt_pred = false;
    bool pred = false;
    std::size_t provider_idx = 0;
    std::size_t alt_idx = 0;
  };
  Lookup lookup(Addr pc);

  // predict(pc) immediately followed by update(pc, taken) — the only call
  // sequence the front end uses — would redo an identical lookup: nothing
  // it reads (tables, ghist_) changes in between. predict() caches its
  // result and update() reuses it when the pc matches; any mutation
  // (update's own table writes and history shift) invalidates the cache.
  // Purely an evaluation-order shortcut: behaviour is bit-identical, and
  // the hot fast-forward warm path spends roughly half its branch time in
  // the second lookup.
  Lookup cached_lookup_;
  Addr cached_pc_ = 0;
  bool cache_valid_ = false;

  TageConfig cfg_;
  std::vector<std::uint8_t> base_;          // 2-bit counters
  std::vector<std::vector<Entry>> tables_;  // [table][entry]
  std::vector<unsigned> hist_len_;          // history length per table
  std::vector<FoldedReg> fold_idx_;         // per-table index fold
  std::vector<FoldedReg> fold_tag1_;        // per-table tag fold, tag_bits
  std::vector<FoldedReg> fold_tag2_;        // per-table tag fold, tag_bits-1
  std::uint64_t ghist_ = 0;                 // global history, newest in bit 0
  std::uint64_t update_count_ = 0;
  unsigned last_provider_ = 0;
  // "use alt on newly allocated" counter from the TAGE paper, 4-bit signed.
  int use_alt_on_na_ = 0;
};

}  // namespace bridge
