// TAGE direction predictor (Seznec & Michaud, JILP 2006), the family the
// BOOM front end uses ("TAGE-L branch predictor", paper Table 5).
//
// A base bimodal table is backed by `num_tables` tagged components indexed by
// geometrically increasing global-history lengths. Prediction comes from the
// longest-history component whose (partial) tag matches; allocation on a
// mispredict steals a not-useful entry in a longer component.
#pragma once

#include <cstdint>
#include <vector>

#include "branch/predictor.h"

namespace bridge {

struct TageConfig {
  unsigned base_entries = 4096;    // bimodal base table (power of two)
  unsigned table_entries = 1024;   // entries per tagged table (power of two)
  unsigned num_tables = 5;         // tagged components
  unsigned min_history = 4;        // history length of the shortest table
  unsigned max_history = 64;       // history length of the longest table
  unsigned tag_bits = 9;           // partial tag width
  unsigned useful_reset_period = 1u << 18;  // gradual u-bit aging interval
};

class TagePredictor final : public DirectionPredictor {
 public:
  explicit TagePredictor(const TageConfig& cfg = {});

  bool predict(Addr pc) override;
  void update(Addr pc, bool taken) override;

  const TageConfig& config() const { return cfg_; }

  /// Number of tagged-component hits on the last predict() (diagnostics).
  unsigned lastProviderTable() const { return last_provider_; }

 private:
  struct Entry {
    std::int8_t ctr = 0;      // signed 3-bit: >=0 predicts taken
    std::uint16_t tag = 0;
    std::uint8_t useful = 0;  // 2-bit useful counter
  };

  std::size_t baseIndex(Addr pc) const;
  std::size_t tableIndex(unsigned t, Addr pc) const;
  std::uint16_t tableTag(unsigned t, Addr pc) const;
  std::uint64_t foldedHistory(unsigned bits, unsigned chunk) const;

  // Internal lookup shared by predict/update so both see identical state.
  struct Lookup {
    int provider = -1;   // tagged table providing the prediction, -1 = base
    int alt = -1;        // next-longest matching table, -1 = base
    bool provider_pred = false;
    bool alt_pred = false;
    bool pred = false;
    std::size_t provider_idx = 0;
    std::size_t alt_idx = 0;
  };
  Lookup lookup(Addr pc);

  TageConfig cfg_;
  std::vector<std::uint8_t> base_;          // 2-bit counters
  std::vector<std::vector<Entry>> tables_;  // [table][entry]
  std::vector<unsigned> hist_len_;          // history length per table
  std::uint64_t ghist_ = 0;                 // global history, newest in bit 0
  std::uint64_t update_count_ = 0;
  unsigned last_provider_ = 0;
  // "use alt on newly allocated" counter from the TAGE paper, 4-bit signed.
  int use_alt_on_na_ = 0;
};

}  // namespace bridge
