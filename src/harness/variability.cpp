#include "harness/variability.h"

#include <stdexcept>
#include <utility>

#include "sim/hwvar/dist_stats.h"
#include "workloads/microbench.h"

namespace bridge {

namespace {

struct AxisStat {
  const char* axis;
  const char* stat;
  double SampleSummary::* slot;
};

/// Series layout, per platform: two axes x four spread statistics.
constexpr AxisStat kAxisStats[] = {
    {"run", "mean", &SampleSummary::mean},
    {"run", "sd", &SampleSummary::sd},
    {"run", "median", &SampleSummary::median},
    {"run", "iqr", &SampleSummary::iqr},
    {"core", "mean", &SampleSummary::mean},
    {"core", "sd", &SampleSummary::sd},
    {"core", "median", &SampleSummary::median},
    {"core", "iqr", &SampleSummary::iqr},
};

}  // namespace

Figure computeVariabilitySpread(const VariabilityStudyOptions& options,
                                const SweepOptions& sweep) {
  if (options.replicas == 0 || options.placements == 0) {
    throw std::invalid_argument(
        "variability study needs replicas >= 1 and placements >= 1");
  }
  std::string why;
  if (!options.hwvar.validate(&why)) {
    throw std::invalid_argument("variability study hwvar spec: " + why);
  }
  for (const std::string& k : options.kernels) {
    microbenchInfo(k);  // throws std::out_of_range for an unknown kernel
  }

  // Row-major job grid: platform -> kernel -> [R replicas, P placements].
  // Every job pins its own hwvar overrides, so each lands under its own
  // cache fingerprint and the study replays bit-identically anywhere.
  std::vector<JobSpec> jobs;
  jobs.reserve(options.platforms.size() * options.kernels.size() *
               (options.replicas + options.placements));
  for (const PlatformId platform : options.platforms) {
    for (const std::string& kernel : options.kernels) {
      for (unsigned r = 0; r < options.replicas; ++r) {
        JobSpec j = microbenchJob(platform, kernel, options.scale,
                                  options.seed);
        HwVarParams p = options.hwvar;
        p.seed = hwvarReplicaSeed(options.hwvar.seed, r);
        applyHwVarOverrides(&j.overrides, p);
        j.label += "#run" + std::to_string(r);
        jobs.push_back(std::move(j));
      }
      for (unsigned c = 0; c < options.placements; ++c) {
        JobSpec j = microbenchJob(platform, kernel, options.scale,
                                  options.seed);
        HwVarParams p = options.hwvar;
        p.placement = options.hwvar.placement + c;
        applyHwVarOverrides(&j.overrides, p);
        j.label += "#core" + std::to_string(c);
        jobs.push_back(std::move(j));
      }
    }
  }

  const std::vector<SweepResult> results =
      SweepEngine(fullFidelitySweep(sweep)).run(jobs);

  Figure fig;
  fig.title = "Variability study: run-to-run and core-to-core spread";
  fig.metric = "simulated seconds (spread statistics per kernel)";
  for (const PlatformId platform : options.platforms) {
    for (const AxisStat& as : kAxisStats) {
      fig.series.push_back({std::string(platformName(platform)) + "/" +
                                as.axis + "/" + as.stat,
                            {}});
    }
  }

  std::size_t j = 0;
  std::size_t series_base = 0;
  for (std::size_t p = 0; p < options.platforms.size();
       ++p, series_base += std::size(kAxisStats)) {
    for (const std::string& kernel : options.kernels) {
      std::vector<double> run_samples;
      for (unsigned r = 0; r < options.replicas; ++r, ++j) {
        if (results[j].ok()) run_samples.push_back(results[j].result.seconds);
      }
      std::vector<double> core_samples;
      for (unsigned c = 0; c < options.placements; ++c, ++j) {
        if (results[j].ok()) core_samples.push_back(results[j].result.seconds);
      }
      const SampleSummary run = summarizeSamples(std::move(run_samples));
      const SampleSummary core = summarizeSamples(std::move(core_samples));
      for (std::size_t s = 0; s < std::size(kAxisStats); ++s) {
        const AxisStat& as = kAxisStats[s];
        const SampleSummary& summary =
            std::string_view(as.axis) == "run" ? run : core;
        fig.series[series_base + s].points.emplace_back(kernel,
                                                        summary.*as.slot);
      }
    }
  }
  return fig;
}

}  // namespace bridge
