#include "harness/npb_reference.h"

#include <stdexcept>

namespace bridge {

std::string npbCellName(const NpbGridCell& cell) {
  return std::string(npbName(cell.bench)) + "/" + std::to_string(cell.ranks) +
         "r";
}

std::vector<NpbGridCell> npbGrid(std::span<const NpbBenchmark> benchmarks,
                                 std::span<const int> rank_counts) {
  if (benchmarks.empty() || rank_counts.empty()) {
    throw std::invalid_argument("NPB grid needs benchmarks and rank counts");
  }
  std::vector<NpbGridCell> grid;
  grid.reserve(benchmarks.size() * rank_counts.size());
  for (const NpbBenchmark b : benchmarks) {
    for (const int ranks : rank_counts) {
      if (ranks < 1) {
        throw std::invalid_argument("NPB grid rank count must be >= 1");
      }
      grid.push_back({b, ranks});
    }
  }
  return grid;
}

std::vector<JobSpec> npbGridJobs(PlatformId platform,
                                 std::span<const NpbGridCell> grid,
                                 const NpbConfig& run,
                                 const Config& overrides) {
  std::vector<JobSpec> jobs;
  jobs.reserve(grid.size());
  for (const NpbGridCell& cell : grid) {
    JobSpec job = npbJob(platform, cell.bench, cell.ranks, run);
    job.overrides = overrides;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<double> npbReferenceSeconds(SweepEngine& engine,
                                        PlatformId reference,
                                        std::span<const NpbGridCell> grid,
                                        const NpbConfig& run,
                                        std::vector<std::string>* failed_cells) {
  const std::vector<SweepResult> results =
      engine.run(npbGridJobs(reference, grid, run));
  std::vector<double> seconds;
  seconds.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double s = results[i].ok() ? results[i].result.seconds : 0.0;
    if (!(s > 0.0)) {
      if (failed_cells == nullptr) {
        throw std::runtime_error("NPB reference " + npbCellName(grid[i]) +
                                 " on " + std::string(platformName(reference)) +
                                 " reported non-positive seconds");
      }
      failed_cells->push_back(npbCellName(grid[i]) + "@" +
                              std::string(platformName(reference)));
      seconds.push_back(0.0);  // degraded-mode sentinel; callers penalize
      continue;
    }
    seconds.push_back(s);
  }
  return seconds;
}

}  // namespace bridge
