// Variability-study harness: run-to-run and core-to-core spread per kernel
// (DESIGN.md §5j).
//
// The hwvar-style silicon studies this models run one probe kernel many
// times (run-to-run) and once per physical core (core-to-core) and report
// the spread of the resulting runtime distribution. The simulated
// equivalent runs a kernel x platform grid through the sweep engine:
//
//  * run-to-run: R replicas of each job, replica r under hwvar seed
//    hwvarReplicaSeed(seed, r) — fresh DVFS/thermal/noise histories on the
//    same physical core;
//  * core-to-core: P placements of each job, placement p pinning the
//    kernel to physical core base + p under the *same* seed — the
//    persistent per-core personality axis.
//
// Each axis's runtime samples reduce to deterministic spread statistics
// (dist_stats.h: mean / sd / median / IQR, all bitwise
// permutation-invariant), emitted as a Figure whose series are
// "<platform>/<axis>/<stat>" over kernel x-labels. Every replica is a
// pinned-hwvar job with its own cache fingerprint, so the whole study is
// seeded, cacheable, and bit-reproducible at any --jobs N and any worker
// count — which is what lets tests/golden/variability_spread.json pin it
// as a golden snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/figures.h"
#include "sim/hwvar/hwvar.h"

namespace bridge {

struct VariabilityStudyOptions {
  /// One probe per MicroBench category axis the spread is sensitive to:
  /// branches (Cca), dependency chains (ED1), L2-resident chase (ML2),
  /// DRAM-resident chase (MM).
  std::vector<std::string> kernels = {"Cca", "ED1", "ML2", "MM"};
  std::vector<PlatformId> platforms = {PlatformId::kBananaPiHw,
                                       PlatformId::kMilkVHw};
  double scale = 0.1;
  std::uint64_t seed = 1;
  /// Run-to-run axis: seeded replicas per (kernel, platform).
  unsigned replicas = 6;
  /// Core-to-core axis: physical-core placements per (kernel, platform).
  unsigned placements = 4;
  /// Base variability spec (replica seeds and placements derive from it).
  HwVarParams hwvar = {.enabled = true};
};

/// The spread figure: series "<platform>/<axis>/<stat>" for axis in
/// {run, core} and stat in {mean, sd, median, iqr} (values in simulated
/// seconds), one point per kernel. Engine-level sampling/hwvar in `sweep`
/// is stripped via fullFidelitySweep() — every job pins its own hwvar
/// overrides. A job that fails under a non-strict policy drops out of its
/// sample set; an axis left without samples reports zeros.
Figure computeVariabilitySpread(const VariabilityStudyOptions& options,
                                const SweepOptions& sweep = {});

}  // namespace bridge
