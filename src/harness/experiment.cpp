#include "harness/experiment.h"

#include <stdexcept>

#include "mpi/mpi.h"
#include "soc/soc.h"
#include "workloads/microbench.h"

namespace bridge {

double relativeSpeedup(double hw_seconds, double sim_seconds) {
  if (sim_seconds <= 0.0) {
    throw std::invalid_argument("simulation time must be positive");
  }
  return hw_seconds / sim_seconds;
}

RunResult runSingleCore(PlatformId platform, const TraceFactory& factory,
                        const TraceFactory& warmup) {
  return runSingleCore(makePlatform(platform, /*cores=*/1), factory, warmup);
}

RunResult runSingleCore(const SocConfig& config, const TraceFactory& factory,
                        const TraceFactory& warmup, StatsSnapshot* stats) {
  Soc soc(config);
  Cycle warm_cycles = 0;
  std::uint64_t warm_retired = 0;
  if (warmup) {
    TraceSourcePtr w = warmup();
    warm_cycles = soc.runTrace(*w);
    warm_retired = soc.core(0).retired();
  }
  TraceSourcePtr trace = factory();
  const Cycle cycles = soc.runTrace(*trace) - warm_cycles;
  RunResult r;
  r.cycles = cycles;
  r.seconds = soc.seconds(cycles);
  r.retired = soc.core(0).retired() - warm_retired;
  r.ipc = cycles == 0 ? 0.0
                      : static_cast<double>(r.retired) /
                            static_cast<double>(cycles);
  if (stats) *stats = soc.stats().allCounters();
  return r;
}

RunResult runMultiRank(
    PlatformId platform, int ranks,
    const std::function<TraceSourcePtr(int, int)>& program) {
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  const unsigned cores = ranks <= 4 ? 4 : static_cast<unsigned>(ranks);
  return runMultiRank(makePlatform(platform, cores), ranks, program);
}

RunResult runMultiRank(
    SocConfig config, int ranks,
    const std::function<TraceSourcePtr(int, int)>& program,
    StatsSnapshot* stats) {
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  // The paper models one 4-core cluster; single-rank runs still instantiate
  // the full cluster (idle cores), like binding one MPI rank on silicon.
  config.cores = ranks <= 4 ? 4 : static_cast<unsigned>(ranks);
  Soc soc(config);
  const MpiRunResult m = runMpiProgram(&soc, ranks, program);
  RunResult r;
  r.cycles = m.cycles;
  r.seconds = soc.seconds(m.cycles);
  r.retired = m.retired;
  r.ipc = m.cycles == 0 ? 0.0
                        : static_cast<double>(m.retired) /
                              static_cast<double>(m.cycles);
  r.messages = m.messages;
  if (stats) *stats = soc.stats().allCounters();
  return r;
}

RunResult runMicrobench(PlatformId platform, std::string_view kernel,
                        double scale, std::uint64_t seed) {
  // The warmup instance uses a perturbed seed: stochastic streams (random
  // accesses, chase permutations) touch the same regions without making
  // the timed instance's exact address sequence artificially resident.
  return runSingleCore(
      platform, [&] { return makeMicrobench(kernel, scale, seed); },
      [&] { return makeMicrobench(kernel, scale, seed + kWarmupSeedOffset); });
}

RunResult runNpb(PlatformId platform, NpbBenchmark bench, int ranks,
                 const NpbConfig& cfg) {
  return runMultiRank(platform, ranks, [&](int rank, int nranks) {
    return makeNpbRank(bench, rank, nranks, cfg);
  });
}

RunResult runUme(PlatformId platform, int ranks, const UmeConfig& cfg) {
  return runMultiRank(platform, ranks, [&](int rank, int nranks) {
    return makeUmeRank(rank, nranks, cfg);
  });
}

LammpsConfig resolveLammpsConfig(PlatformId platform, LammpsConfig cfg) {
  if (isHardwareModel(platform) && cfg.simd_lanes == 1) {
    // Silicon runs use GCC 13.2 builds on vector-capable cores; FireSim
    // runs use GCC 9.4 scalar code with vector units disabled (paper
    // §3.1.1 and Table 3). The K1 implements RVV 1.0 with 256-bit vectors
    // (4 doubles); the SG2042's XTheadVector is narrower and less
    // compiler-supported (2 effective lanes).
    cfg.simd_lanes = platform == PlatformId::kBananaPiHw ? 4 : 2;
  }
  return cfg;
}

RunResult runLammps(PlatformId platform, LammpsBenchmark bench, int ranks,
                    const LammpsConfig& cfg) {
  const LammpsConfig effective = resolveLammpsConfig(platform, cfg);
  return runMultiRank(platform, ranks, [&](int rank, int nranks) {
    return makeLammpsRank(bench, rank, nranks, effective);
  });
}

}  // namespace bridge
