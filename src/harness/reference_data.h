// Paper-reported reference data (from the text of §5), used by
// EXPERIMENTS.md generation and the shape-checking integration tests.
//
// Absolute runtimes exist only for UME (§5.3) and LAMMPS (§5.4); the
// microbenchmark and NPB results are bar charts, for which the paper's
// quantitative statements (e.g. "MM/MM_st at 35-37%") are recorded as
// expected ranges.
#pragma once

#include <span>
#include <string_view>

namespace bridge {

/// One paper-reported runtime pair (hardware vs FireSim simulation).
struct PaperRuntime {
  std::string_view workload;   // "ume", "lammps-lj", "lammps-chain"
  std::string_view pair;       // "bananapi" or "milkv"
  int ranks;
  double hw_seconds;
  double sim_seconds;

  double relativeSpeedup() const { return hw_seconds / sim_seconds; }
};

std::span<const PaperRuntime> paperRuntimes();

/// A qualitative expectation from the paper's text, with the range the
/// paper states or implies for the relative-speedup metric.
struct PaperExpectation {
  std::string_view id;        // e.g. "fig1.MM"
  std::string_view claim;     // the paper's statement
  double lo;                  // expected relative-speedup range
  double hi;
};

std::span<const PaperExpectation> paperExpectations();

/// Multi-rank scaling behaviour the paper's NPB results (Figs. 3-4) imply
/// at 4 ranks: EP is embarrassingly parallel and speeds up near-linearly,
/// while CG/MG are communication/memory bound and scale sublinearly (IS
/// can even slow down — its all-to-all key exchange grows with the rank
/// count). The ranges bound seconds(1 rank) / seconds(4 ranks) on the
/// simulated platforms; tests/test_npb.cpp asserts them per platform
/// family.
struct NpbScalingExpectation {
  std::string_view bench;  // npbName(): "CG", "EP", "IS", "MG"
  double min_speedup4;
  double max_speedup4;
  bool near_linear;  // true only for EP
};

std::span<const NpbScalingExpectation> npbScalingExpectations();

/// Lookup by npbName(); throws std::invalid_argument for an unknown name.
const NpbScalingExpectation& npbScalingExpectation(std::string_view bench);

}  // namespace bridge
