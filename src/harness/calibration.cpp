#include "harness/calibration.h"

#include <iomanip>
#include <ostream>

#include "harness/experiment.h"

namespace bridge {
namespace {

/// A probe is one paper claim checked against the ratio of a (hardware,
/// simulation) job pair — declarative, so the whole suite runs as one
/// sweep. Helper builders mirror the workload defaults the paper's
/// evaluation used (NPB at scale 0.3; UME/LAMMPS at full scale, 1 rank
/// unless the claim says otherwise).
struct Probe {
  CalibrationCheck check;
  JobSpec hw;
  JobSpec sim;
};

JobSpec microJob(PlatformId p, const char* kernel, double scale) {
  return microbenchJob(p, kernel, scale);
}

JobSpec npbScaledJob(PlatformId p, NpbBenchmark b, int ranks) {
  return npbJob(p, b, ranks, /*scale=*/0.3);
}

std::vector<Probe> probes(double scale) {
  using P = PlatformId;
  std::vector<Probe> v;
  auto add = [&](std::string id, std::string claim, double lo, double hi,
                 bool quantified, JobSpec hw, JobSpec sim) {
    v.push_back({{std::move(id), std::move(claim), lo, hi, quantified},
                 std::move(hw), std::move(sim)});
  };
  auto micro = [&](std::string id, std::string claim, double lo, double hi,
                   bool quantified, P sim, P hw, const char* kernel) {
    add(std::move(id), std::move(claim), lo, hi, quantified,
        microJob(hw, kernel, scale), microJob(sim, kernel, scale));
  };
  auto npb = [&](std::string id, std::string claim, double lo, double hi,
                 bool quantified, P sim, P hw, NpbBenchmark b, int ranks) {
    add(std::move(id), std::move(claim), lo, hi, quantified,
        npbScaledJob(hw, b, ranks), npbScaledJob(sim, b, ranks));
  };
  auto ume = [&](std::string id, std::string claim, double lo, double hi,
                 bool quantified, P sim, P hw, int ranks) {
    add(std::move(id), std::move(claim), lo, hi, quantified,
        umeJob(hw, ranks), umeJob(sim, ranks));
  };
  auto lammps = [&](std::string id, std::string claim, double lo, double hi,
                    bool quantified, P sim, P hw, LammpsBenchmark b) {
    add(std::move(id), std::move(claim), lo, hi, quantified,
        lammpsJob(hw, b, /*ranks=*/1), lammpsJob(sim, b, /*ranks=*/1));
  };

  // --- Figure 1 (paper-quantified statements) -------------------------
  micro("fig1.MM",
        "Banana Pi model achieves 35-37% on DRAM linked-list kernels (MM)",
        0.25, 0.55, true, P::kBananaPiSim, P::kBananaPiHw, "MM");
  micro("fig1.MM_st", "same band for MM_st", 0.25, 0.55, true,
        P::kBananaPiSim, P::kBananaPiHw, "MM_st");
  micro("fig1.compute.ED1",
        "control/data/execution underachieve fairly uniformly (dual issue)",
        0.4, 1.0, false, P::kBananaPiSim, P::kBananaPiHw, "ED1");
  micro("fig1.cache.MD", "cache kernels match or outperform hardware", 0.7,
        1.5, false, P::kBananaPiSim, P::kBananaPiHw, "MD");
  micro("fig1.fast.compute",
        "Fast (3.2 GHz) model matches compute categories better", 1.0, 2.2,
        false, P::kFastBananaPiSim, P::kBananaPiHw, "ED1");

  // --- Figure 2 --------------------------------------------------------
  micro("fig2.MM", "MILK-V model at 28-43% on memory kernels", 0.2, 0.55,
        true, P::kMilkVSim, P::kMilkVHw, "MM");
  micro("fig2.MIP",
        "MIP substantially outperforms hardware on BOOM variants (> 1)", 1.0,
        5.0, true, P::kMilkVSim, P::kMilkVHw, "MIP");
  micro("fig2.EI", "EI performs comparably with the hardware", 0.7, 1.3,
        true, P::kMilkVSim, P::kMilkVHw, "EI");
  micro("fig2.CRd", "recursive CRd among the best performers (>= ~1)", 0.9,
        3.0, true, P::kMilkVSim, P::kMilkVHw, "CRd");
  micro("fig2.control.range",
        "control-flow kernels within the paper's 0.75-1.78 family", 0.6, 1.9,
        true, P::kMilkVSim, P::kMilkVHw, "CCh");

  // --- Figures 3/4 ------------------------------------------------------
  npb("fig4.EP", "EP near performance parity on the MILK-V model", 0.7,
      1.35, true, P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kEP, 1);
  npb("fig4.CG", "CG substantially slower on the model", 0.2, 0.7, false,
      P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kCG, 1);
  npb("fig4.IS", "IS substantially slower on the model", 0.2, 0.7, false,
      P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kIS, 1);
  npb("fig4.MG", "MG substantially slower on the model", 0.05, 0.6, false,
      P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kMG, 1);
  npb("fig3.CG", "CG reasonably close on the Rocket models", 0.5, 1.1,
      false, P::kBananaPiSim, P::kBananaPiHw, NpbBenchmark::kCG, 1);
  npb("fig3.EP", "EP slower on Rocket (control/data/execution deficit)",
      0.4, 0.9, false, P::kBananaPiSim, P::kBananaPiHw, NpbBenchmark::kEP, 1);

  // --- Figure 5 (paper-quantified runtimes) ----------------------------
  ume("fig5.ume.bpi.1", "UME Banana Pi, 1 rank: paper 0.73/1.0 = 0.73",
      0.45, 0.95, true, P::kBananaPiSim, P::kBananaPiHw, 1);
  ume("fig5.ume.bpi.4", "UME Banana Pi, 4 ranks: paper 0.21/0.31 = 0.68",
      0.4, 0.95, true, P::kBananaPiSim, P::kBananaPiHw, 4);
  ume("fig5.ume.milkv.1", "UME MILK-V, 1 rank: paper 0.15/0.49 = 0.31",
      0.12, 0.45, true, P::kMilkVSim, P::kMilkVHw, 1);
  ume("fig5.ume.milkv.4", "UME MILK-V, 4 ranks: paper 0.016/0.15 = 0.11",
      0.08, 0.4, true, P::kMilkVSim, P::kMilkVHw, 4);

  // --- Figures 6/7 ------------------------------------------------------
  lammps("fig6.lj.bpi", "LAMMPS LJ Banana Pi, 1 rank: paper 13/55 = 0.24",
         0.15, 0.42, true, P::kBananaPiSim, P::kBananaPiHw,
         LammpsBenchmark::kLennardJones);
  lammps("fig6.lj.milkv", "LAMMPS LJ MILK-V, 1 rank: paper 4/21 = 0.19",
         0.1, 0.55, true, P::kMilkVSim, P::kMilkVHw,
         LammpsBenchmark::kLennardJones);
  lammps("fig7.chain.bpi", "LAMMPS Chain Banana Pi: paper 9/28 = 0.32", 0.2,
         0.5, true, P::kBananaPiSim, P::kBananaPiHw, LammpsBenchmark::kChain);
  lammps("fig7.chain.milkv", "LAMMPS Chain MILK-V: paper 4/13 = 0.31", 0.2,
         0.55, true, P::kMilkVSim, P::kMilkVHw, LammpsBenchmark::kChain);

  return v;
}

}  // namespace

std::vector<CalibrationResult> runCalibration(double scale,
                                              const SweepOptions& sweep) {
  const std::vector<Probe> suite = probes(scale);
  // Two jobs per probe (hw, sim), fanned out as one sweep.
  std::vector<JobSpec> jobs;
  jobs.reserve(suite.size() * 2);
  for (const Probe& p : suite) {
    jobs.push_back(p.hw);
    jobs.push_back(p.sim);
  }
  const std::vector<SweepResult> runs = SweepEngine(sweep).run(jobs);
  std::vector<CalibrationResult> out;
  out.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    CalibrationResult r;
    r.check = suite[i].check;
    r.measured = relativeSpeedup(runs[2 * i].result.seconds,
                                 runs[2 * i + 1].result.seconds);
    r.pass = r.measured >= r.check.lo && r.measured <= r.check.hi;
    out.push_back(std::move(r));
  }
  return out;
}

int renderCalibration(std::ostream& os,
                      const std::vector<CalibrationResult>& results) {
  int failed = 0;
  os << "Calibration against the paper's reported bands "
        "(relative speedup = hw_time / sim_time)\n\n";
  os << std::left << std::setw(20) << "check" << std::setw(10) << "measured"
     << std::setw(16) << "accepted band" << std::setw(8) << "status"
     << "claim\n";
  for (const CalibrationResult& r : results) {
    if (!r.pass) ++failed;
    os << std::left << std::setw(20) << r.check.id << std::setw(10)
       << std::fixed << std::setprecision(3) << r.measured;
    std::ostringstream band;
    band << "[" << std::setprecision(2) << r.check.lo << ", " << r.check.hi
         << "]" << (r.check.quantified ? "" : "*");
    os << std::setw(16) << band.str() << std::setw(8)
       << (r.pass ? "ok" : "MISS") << r.check.claim << '\n';
  }
  os << "\n(* band estimated from unquantified figure bars)\n";
  os << failed << " of " << results.size() << " checks outside their band\n";
  return failed;
}

}  // namespace bridge
