#include "harness/calibration.h"

#include <functional>
#include <iomanip>
#include <ostream>

#include "harness/experiment.h"

namespace bridge {
namespace {

double microRel(PlatformId sim, PlatformId hw, const char* kernel,
                double scale) {
  return relativeSpeedup(runMicrobench(hw, kernel, scale).seconds,
                         runMicrobench(sim, kernel, scale).seconds);
}

double npbRel(PlatformId sim, PlatformId hw, NpbBenchmark b, int ranks) {
  NpbConfig cfg;
  cfg.scale = 0.3;
  return relativeSpeedup(runNpb(hw, b, ranks, cfg).seconds,
                         runNpb(sim, b, ranks, cfg).seconds);
}

double umeRel(PlatformId sim, PlatformId hw, int ranks) {
  UmeConfig cfg;
  return relativeSpeedup(runUme(hw, ranks, cfg).seconds,
                         runUme(sim, ranks, cfg).seconds);
}

double lammpsRel(PlatformId sim, PlatformId hw, LammpsBenchmark b) {
  LammpsConfig cfg;
  return relativeSpeedup(runLammps(hw, b, 1, cfg).seconds,
                         runLammps(sim, b, 1, cfg).seconds);
}

struct Probe {
  CalibrationCheck check;
  std::function<double(double)> measure;
};

std::vector<Probe> probes() {
  using P = PlatformId;
  std::vector<Probe> v;
  auto add = [&](std::string id, std::string claim, double lo, double hi,
                 bool quantified, std::function<double(double)> fn) {
    v.push_back({{std::move(id), std::move(claim), lo, hi, quantified},
                 std::move(fn)});
  };

  // --- Figure 1 (paper-quantified statements) -------------------------
  add("fig1.MM",
      "Banana Pi model achieves 35-37% on DRAM linked-list kernels (MM)",
      0.25, 0.55, true,
      [](double s) { return microRel(P::kBananaPiSim, P::kBananaPiHw, "MM", s); });
  add("fig1.MM_st", "same band for MM_st", 0.25, 0.55, true, [](double s) {
    return microRel(P::kBananaPiSim, P::kBananaPiHw, "MM_st", s);
  });
  add("fig1.compute.ED1",
      "control/data/execution underachieve fairly uniformly (dual issue)",
      0.4, 1.0, false,
      [](double s) { return microRel(P::kBananaPiSim, P::kBananaPiHw, "ED1", s); });
  add("fig1.cache.MD", "cache kernels match or outperform hardware", 0.7,
      1.5, false,
      [](double s) { return microRel(P::kBananaPiSim, P::kBananaPiHw, "MD", s); });
  add("fig1.fast.compute",
      "Fast (3.2 GHz) model matches compute categories better", 1.0, 2.2,
      false, [](double s) {
        return microRel(P::kFastBananaPiSim, P::kBananaPiHw, "ED1", s);
      });

  // --- Figure 2 --------------------------------------------------------
  add("fig2.MM", "MILK-V model at 28-43% on memory kernels", 0.2, 0.55,
      true,
      [](double s) { return microRel(P::kMilkVSim, P::kMilkVHw, "MM", s); });
  add("fig2.MIP",
      "MIP substantially outperforms hardware on BOOM variants (> 1)", 1.0,
      5.0, true,
      [](double s) { return microRel(P::kMilkVSim, P::kMilkVHw, "MIP", s); });
  add("fig2.EI", "EI performs comparably with the hardware", 0.7, 1.3, true,
      [](double s) { return microRel(P::kMilkVSim, P::kMilkVHw, "EI", s); });
  add("fig2.CRd", "recursive CRd among the best performers (>= ~1)", 0.9,
      3.0, true,
      [](double s) { return microRel(P::kMilkVSim, P::kMilkVHw, "CRd", s); });
  add("fig2.control.range",
      "control-flow kernels within the paper's 0.75-1.78 family", 0.6, 1.9,
      true,
      [](double s) { return microRel(P::kMilkVSim, P::kMilkVHw, "CCh", s); });

  // --- Figures 3/4 ------------------------------------------------------
  add("fig4.EP", "EP near performance parity on the MILK-V model", 0.7,
      1.35, true,
      [](double) { return npbRel(P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kEP, 1); });
  add("fig4.CG", "CG substantially slower on the model", 0.2, 0.7, false,
      [](double) { return npbRel(P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kCG, 1); });
  add("fig4.IS", "IS substantially slower on the model", 0.2, 0.7, false,
      [](double) { return npbRel(P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kIS, 1); });
  add("fig4.MG", "MG substantially slower on the model", 0.05, 0.6, false,
      [](double) { return npbRel(P::kMilkVSim, P::kMilkVHw, NpbBenchmark::kMG, 1); });
  add("fig3.CG", "CG reasonably close on the Rocket models", 0.5, 1.1,
      false, [](double) {
        return npbRel(P::kBananaPiSim, P::kBananaPiHw, NpbBenchmark::kCG, 1);
      });
  add("fig3.EP", "EP slower on Rocket (control/data/execution deficit)",
      0.4, 0.9, false, [](double) {
        return npbRel(P::kBananaPiSim, P::kBananaPiHw, NpbBenchmark::kEP, 1);
      });

  // --- Figure 5 (paper-quantified runtimes) ----------------------------
  add("fig5.ume.bpi.1", "UME Banana Pi, 1 rank: paper 0.73/1.0 = 0.73",
      0.45, 0.95, true,
      [](double) { return umeRel(P::kBananaPiSim, P::kBananaPiHw, 1); });
  add("fig5.ume.bpi.4", "UME Banana Pi, 4 ranks: paper 0.21/0.31 = 0.68",
      0.4, 0.95, true,
      [](double) { return umeRel(P::kBananaPiSim, P::kBananaPiHw, 4); });
  add("fig5.ume.milkv.1", "UME MILK-V, 1 rank: paper 0.15/0.49 = 0.31",
      0.12, 0.45, true,
      [](double) { return umeRel(P::kMilkVSim, P::kMilkVHw, 1); });
  add("fig5.ume.milkv.4", "UME MILK-V, 4 ranks: paper 0.016/0.15 = 0.11",
      0.08, 0.4, true,
      [](double) { return umeRel(P::kMilkVSim, P::kMilkVHw, 4); });

  // --- Figures 6/7 ------------------------------------------------------
  add("fig6.lj.bpi", "LAMMPS LJ Banana Pi, 1 rank: paper 13/55 = 0.24",
      0.15, 0.42, true, [](double) {
        return lammpsRel(P::kBananaPiSim, P::kBananaPiHw,
                         LammpsBenchmark::kLennardJones);
      });
  add("fig6.lj.milkv", "LAMMPS LJ MILK-V, 1 rank: paper 4/21 = 0.19", 0.1,
      0.55, true, [](double) {
        return lammpsRel(P::kMilkVSim, P::kMilkVHw,
                         LammpsBenchmark::kLennardJones);
      });
  add("fig7.chain.bpi", "LAMMPS Chain Banana Pi: paper 9/28 = 0.32", 0.2,
      0.5, true, [](double) {
        return lammpsRel(P::kBananaPiSim, P::kBananaPiHw,
                         LammpsBenchmark::kChain);
      });
  add("fig7.chain.milkv", "LAMMPS Chain MILK-V: paper 4/13 = 0.31", 0.2,
      0.55, true, [](double) {
        return lammpsRel(P::kMilkVSim, P::kMilkVHw, LammpsBenchmark::kChain);
      });

  return v;
}

}  // namespace

std::vector<CalibrationResult> runCalibration(double scale) {
  std::vector<CalibrationResult> out;
  for (const Probe& p : probes()) {
    CalibrationResult r;
    r.check = p.check;
    r.measured = p.measure(scale);
    r.pass = r.measured >= p.check.lo && r.measured <= p.check.hi;
    out.push_back(std::move(r));
  }
  return out;
}

int renderCalibration(std::ostream& os,
                      const std::vector<CalibrationResult>& results) {
  int failed = 0;
  os << "Calibration against the paper's reported bands "
        "(relative speedup = hw_time / sim_time)\n\n";
  os << std::left << std::setw(20) << "check" << std::setw(10) << "measured"
     << std::setw(16) << "accepted band" << std::setw(8) << "status"
     << "claim\n";
  for (const CalibrationResult& r : results) {
    if (!r.pass) ++failed;
    os << std::left << std::setw(20) << r.check.id << std::setw(10)
       << std::fixed << std::setprecision(3) << r.measured;
    std::ostringstream band;
    band << "[" << std::setprecision(2) << r.check.lo << ", " << r.check.hi
         << "]" << (r.check.quantified ? "" : "*");
    os << std::setw(16) << band.str() << std::setw(8)
       << (r.pass ? "ok" : "MISS") << r.check.claim << '\n';
  }
  os << "\n(* band estimated from unquantified figure bars)\n";
  os << failed << " of " << results.size() << " checks outside their band\n";
  return failed;
}

}  // namespace bridge
