#include "harness/reference_data.h"

#include <stdexcept>
#include <string>

namespace bridge {

std::span<const PaperRuntime> paperRuntimes() {
  // Paper §5.3: "The runtimes on Banana Pi are 0.73, 0.4, 0.21 seconds for
  // 1, 2, and 4 MPI processes while the runtimes of corresponding FireSim
  // simulations are 1, 0.56, and 0.31"; MILK-V: 0.15/0.03/0.016 vs
  // 0.49/0.28/0.15. §5.4 gives LJ and Chain runtimes analogously.
  static constexpr PaperRuntime kRuntimes[] = {
      {"ume", "bananapi", 1, 0.73, 1.00},
      {"ume", "bananapi", 2, 0.40, 0.56},
      {"ume", "bananapi", 4, 0.21, 0.31},
      {"ume", "milkv", 1, 0.15, 0.49},
      {"ume", "milkv", 2, 0.03, 0.28},
      {"ume", "milkv", 4, 0.016, 0.15},
      {"lammps-lj", "bananapi", 1, 13.0, 55.0},
      {"lammps-lj", "bananapi", 2, 8.0, 28.0},
      {"lammps-lj", "bananapi", 4, 4.0, 15.0},
      {"lammps-lj", "milkv", 1, 4.0, 21.0},
      {"lammps-lj", "milkv", 2, 2.0, 11.0},
      {"lammps-lj", "milkv", 4, 1.0, 5.0},
      {"lammps-chain", "bananapi", 1, 9.0, 28.0},
      {"lammps-chain", "bananapi", 2, 5.0, 18.0},
      {"lammps-chain", "bananapi", 4, 4.0, 12.0},
      {"lammps-chain", "milkv", 1, 4.0, 13.0},
      {"lammps-chain", "milkv", 2, 2.0, 9.0},
      {"lammps-chain", "milkv", 4, 1.0, 7.0},
  };
  return kRuntimes;
}

std::span<const PaperExpectation> paperExpectations() {
  static constexpr PaperExpectation kExpectations[] = {
      {"fig1.MM",
       "simulated model achieves 35-37% of Banana Pi on DRAM-bandwidth "
       "linked-list kernels (MM, MM_st)",
       0.25, 0.55},
      {"fig1.compute",
       "control flow / data / execution kernels underachieve vs Banana Pi "
       "fairly uniformly (dual-issue advantage)",
       0.35, 1.0},
      {"fig1.fast_compute",
       "Fast (3.2 GHz) model matches better on control/data/execution",
       0.7, 2.0},
      {"fig2.memory",
       "MILK-V sim model achieves 28-43% of hardware on memory kernels",
       0.2, 0.6},
      {"fig2.MIP",
       "MIP (instruction-cache misses) substantially outperforms hardware "
       "on all BOOM variants",
       1.0, 10.0},
      {"fig2.control",
       "control flow and data parallel achieve 0.75-1.78 vs MILK-V",
       0.5, 2.0},
      {"fig4.EP",
       "EP near parity between Large-BOOM-based model and MILK-V",
       0.6, 1.4},
      {"fig5.ume_bananapi",
       "UME: Banana Pi sim closely matches hardware (~0.7 rel speedup)",
       0.5, 1.0},
      {"fig5.ume_milkv",
       "UME: MILK-V significantly outperforms its FireSim model",
       0.05, 0.45},
      {"fig6.lj",
       "LAMMPS LJ: sim 2.4-4.2x slower than silicon on both platforms",
       0.15, 0.5},
      {"fig7.chain",
       "LAMMPS Chain: sim ~3x slower than silicon",
       0.15, 0.6},
  };
  return kExpectations;
}

std::span<const NpbScalingExpectation> npbScalingExpectations() {
  // Bounds hold across the Rocket and BOOM simulation families at the
  // small problem classes the tests and the tuning objective run (the
  // communication fractions, and hence the sublinearity, grow as the
  // per-rank work shrinks).
  static const NpbScalingExpectation kScaling[] = {
      {"CG", 0.9, 2.8, false},  // allreduce-dominated at small classes
      {"EP", 3.0, 4.4, true},   // one trailing allreduce; compute splits 4x
      {"IS", 0.4, 2.5, false},  // all-to-all exchange can beat the split
      {"MG", 1.1, 3.2, false},  // per-level halos on every sweep
  };
  return kScaling;
}

const NpbScalingExpectation& npbScalingExpectation(std::string_view bench) {
  for (const NpbScalingExpectation& e : npbScalingExpectations()) {
    if (e.bench == bench) return e;
  }
  throw std::invalid_argument("unknown NPB benchmark name: " +
                              std::string(bench));
}

}  // namespace bridge
