// Figure/table computation for every result in the paper's evaluation
// (§5, Figures 1-7 and Tables 1, 4, 5). Each computeFigN() returns
// structured series (so tests can assert on shape); renderFigure() prints
// the rows the corresponding bench binary emits.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sweep/sweep.h"

namespace bridge {

/// One plotted series: label + (x-label, value) points.
struct FigureSeries {
  std::string label;
  std::vector<std::pair<std::string, double>> points;
};

struct Figure {
  std::string title;
  std::string metric;  // e.g. "relative speedup (hw_time / sim_time)"
  std::vector<FigureSeries> series;
};

/// Figures (and the variability-study figure, harness/variability.h) are
/// golden-snapshot material: they are always computed at full fidelity on
/// the deterministic machine. This strips engine-level sampling and hwvar
/// from `sweep` — each with one warning so the slower run is explainable —
/// and returns the rest untouched. Studies that *want* variability pin
/// `hwvar.*` overrides per job, which this cannot touch.
SweepOptions fullFidelitySweep(SweepOptions sweep);

/// Every computeFigN runs its (platform x workload x ranks) grid through a
/// SweepEngine: `sweep` controls worker count and result caching. The
/// default runs on all cores with the cache enabled; results are identical
/// for any worker count (each job is independently seeded).

/// Figure 1: MicroBench relative performance of BananaPiSim and
/// FastBananaPiSim vs the Banana Pi hardware model, all 39 kernels.
Figure computeFig1(double scale = 1.0, const SweepOptions& sweep = {});

/// Figure 2: MicroBench relative performance of Small/Medium/Large BOOM
/// and the tuned MilkVSim vs the MILK-V hardware model.
Figure computeFig2(double scale = 1.0, const SweepOptions& sweep = {});

/// Figure 3: NPB relative speedup, Rocket-family configs vs Banana Pi,
/// (a) single core, (b) four cores.
Figure computeFig3(int ranks, double scale = 1.0,
                   const SweepOptions& sweep = {});

/// Figure 4a: NPB relative speedup of the stock BOOM configs (1 rank);
/// Figure 4b: the tuned MILK-V simulation model at 1 and 4 ranks.
Figure computeFig4a(double scale = 1.0, const SweepOptions& sweep = {});
Figure computeFig4b(double scale = 1.0, const SweepOptions& sweep = {});

/// Figure 5: UME relative speedup at 1/2/4 ranks for both platform pairs.
Figure computeFig5(double scale = 1.0, const SweepOptions& sweep = {});

/// Figures 6/7: LAMMPS LJ / Chain relative speedup at 1/2/4 ranks.
Figure computeFig6(double scale = 1.0, const SweepOptions& sweep = {});
Figure computeFig7(double scale = 1.0, const SweepOptions& sweep = {});

/// Render as an aligned ASCII table (one row per x-label).
void renderFigure(std::ostream& os, const Figure& fig);

/// Render as CSV (header = series labels).
void renderCsv(std::ostream& os, const Figure& fig);

/// Golden-figure regression harness (tests/golden/*.json): a figure
/// serialized with exact %.17g doubles, re-parsed and compared with a
/// per-point relative tolerance. `ctest -L golden` recomputes every
/// snapshot figure at a pinned scale (cache bypassed, so a silently
/// changed timing model cannot hide behind the result cache) and fails on
/// any drift; regenerate intentionally with
/// `bridge_golden_tests --regen` after a deliberate model change.
std::string figureToJson(const Figure& fig);

/// Parse figureToJson output. Returns false on malformed input.
bool figureFromJson(const std::string& json, Figure* out);

/// True when `actual` matches `golden` exactly in shape (titles, series
/// labels, x-labels) and per-point within `rel_tol` relative error. On
/// mismatch, describes the first difference in *diff (if non-null).
bool figuresMatch(const Figure& golden, const Figure& actual, double rel_tol,
                  std::string* diff = nullptr);

/// Table 1: the MicroBench inventory.
void renderTable1(std::ostream& os);

/// Table 4: FireSim model parameters as configured in this library.
void renderTable4(std::ostream& os);

/// Table 5: hardware vs simulation model specifications.
void renderTable5(std::ostream& os);

}  // namespace bridge
