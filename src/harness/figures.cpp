#include "harness/figures.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "workloads/microbench.h"

namespace bridge {

namespace {

/// MicroBench relative-performance figure: sims vs one hardware model.
Figure microbenchFigure(const std::vector<PlatformId>& sims,
                        PlatformId hardware, double scale,
                        std::string title) {
  Figure fig;
  fig.title = std::move(title);
  fig.metric = "relative performance (hw_time / sim_time), 1.0 = parity";
  for (const PlatformId sim : sims) {
    fig.series.push_back({std::string(platformName(sim)), {}});
  }
  for (const std::string& kernel : microbenchNames()) {
    const RunResult hw = runMicrobench(hardware, kernel, scale);
    for (std::size_t i = 0; i < sims.size(); ++i) {
      const RunResult sr = runMicrobench(sims[i], kernel, scale);
      fig.series[i].points.emplace_back(
          kernel, relativeSpeedup(hw.seconds, sr.seconds));
    }
  }
  return fig;
}

Figure npbFigure(const std::vector<PlatformId>& sims, PlatformId hardware,
                 int ranks, double scale, std::string title) {
  Figure fig;
  fig.title = std::move(title);
  fig.metric = "relative speedup (hw_time / sim_time), target 1.0";
  NpbConfig cfg;
  cfg.scale = scale;
  for (const PlatformId sim : sims) {
    fig.series.push_back({std::string(platformName(sim)), {}});
  }
  for (const NpbBenchmark bench : allNpbBenchmarks()) {
    const RunResult hw = runNpb(hardware, bench, ranks, cfg);
    for (std::size_t i = 0; i < sims.size(); ++i) {
      const RunResult sr = runNpb(sims[i], bench, ranks, cfg);
      fig.series[i].points.emplace_back(
          std::string(npbName(bench)),
          relativeSpeedup(hw.seconds, sr.seconds));
    }
  }
  return fig;
}

}  // namespace

Figure computeFig1(double scale) {
  return microbenchFigure(
      {PlatformId::kBananaPiSim, PlatformId::kFastBananaPiSim},
      PlatformId::kBananaPiHw, scale,
      "Figure 1: MicroBench, Rocket-based Banana Pi models vs Banana Pi "
      "hardware");
}

Figure computeFig2(double scale) {
  return microbenchFigure(
      {PlatformId::kSmallBoom, PlatformId::kMediumBoom,
       PlatformId::kLargeBoom, PlatformId::kMilkVSim},
      PlatformId::kMilkVHw, scale,
      "Figure 2: MicroBench, BOOM models vs MILK-V hardware");
}

Figure computeFig3(int ranks, double scale) {
  return npbFigure(
      {PlatformId::kRocket1, PlatformId::kRocket2, PlatformId::kBananaPiSim,
       PlatformId::kFastBananaPiSim},
      PlatformId::kBananaPiHw, ranks, scale,
      "Figure 3" + std::string(ranks == 1 ? "a (single core)" : "b (" +
                  std::to_string(ranks) + " cores)") +
          ": NPB on Rocket configs vs Banana Pi hardware");
}

Figure computeFig4a(double scale) {
  return npbFigure(
      {PlatformId::kSmallBoom, PlatformId::kMediumBoom,
       PlatformId::kLargeBoom},
      PlatformId::kMilkVHw, /*ranks=*/1, scale,
      "Figure 4a: NPB on stock BOOM configs vs MILK-V hardware (1 core)");
}

Figure computeFig4b(double scale) {
  Figure fig;
  fig.title =
      "Figure 4b: NPB on the MILK-V simulation model vs MILK-V hardware";
  fig.metric = "relative speedup (hw_time / sim_time), target 1.0";
  NpbConfig cfg;
  cfg.scale = scale;
  for (const int ranks : {1, 4}) {
    FigureSeries s;
    s.label = "MilkVSim/" + std::to_string(ranks) + "rank";
    for (const NpbBenchmark bench : allNpbBenchmarks()) {
      const RunResult hw = runNpb(PlatformId::kMilkVHw, bench, ranks, cfg);
      const RunResult sr = runNpb(PlatformId::kMilkVSim, bench, ranks, cfg);
      s.points.emplace_back(std::string(npbName(bench)),
                            relativeSpeedup(hw.seconds, sr.seconds));
    }
    fig.series.push_back(std::move(s));
  }
  return fig;
}

namespace {

/// Shared shape of Figures 5-7: rank-scaling of one app on both platform
/// pairs; `run` maps (platform, ranks) -> seconds.
template <typename RunFn>
Figure appFigure(std::string title, RunFn&& run) {
  Figure fig;
  fig.title = std::move(title);
  fig.metric = "relative speedup (hw_time / sim_time), target 1.0";
  const struct {
    PlatformId sim;
    PlatformId hw;
    const char* label;
  } pairs[] = {
      {PlatformId::kBananaPiSim, PlatformId::kBananaPiHw,
       "BananaPiSim vs BananaPiHw"},
      {PlatformId::kMilkVSim, PlatformId::kMilkVHw,
       "MilkVSim vs MilkVHw"},
  };
  for (const auto& p : pairs) {
    FigureSeries s;
    s.label = p.label;
    for (const int ranks : {1, 2, 4}) {
      const double hw = run(p.hw, ranks);
      const double sim = run(p.sim, ranks);
      s.points.emplace_back(std::to_string(ranks) + " ranks",
                            relativeSpeedup(hw, sim));
    }
    fig.series.push_back(std::move(s));
  }
  return fig;
}

}  // namespace

Figure computeFig5(double scale) {
  UmeConfig cfg;
  cfg.scale = scale;
  return appFigure(
      "Figure 5: UME relative speedup, FireSim models vs hardware",
      [&](PlatformId p, int ranks) { return runUme(p, ranks, cfg).seconds; });
}

Figure computeFig6(double scale) {
  LammpsConfig cfg;
  cfg.scale = scale;
  return appFigure(
      "Figure 6: LAMMPS Lennard-Jones relative speedup",
      [&](PlatformId p, int ranks) {
        return runLammps(p, LammpsBenchmark::kLennardJones, ranks, cfg)
            .seconds;
      });
}

Figure computeFig7(double scale) {
  LammpsConfig cfg;
  cfg.scale = scale;
  return appFigure(
      "Figure 7: LAMMPS Polymer-Chain relative speedup",
      [&](PlatformId p, int ranks) {
        return runLammps(p, LammpsBenchmark::kChain, ranks, cfg).seconds;
      });
}

void renderFigure(std::ostream& os, const Figure& fig) {
  os << fig.title << '\n';
  os << "metric: " << fig.metric << '\n';
  if (fig.series.empty()) return;

  std::size_t label_w = 10;
  for (const auto& [x, v] : fig.series[0].points) {
    label_w = std::max(label_w, x.size());
  }
  os << std::left << std::setw(static_cast<int>(label_w) + 2) << "";
  for (const FigureSeries& s : fig.series) {
    os << std::right << std::setw(18) << s.label;
  }
  os << '\n';
  for (std::size_t row = 0; row < fig.series[0].points.size(); ++row) {
    os << std::left << std::setw(static_cast<int>(label_w) + 2)
       << fig.series[0].points[row].first;
    for (const FigureSeries& s : fig.series) {
      os << std::right << std::setw(18) << std::fixed
         << std::setprecision(3) << s.points[row].second;
    }
    os << '\n';
  }
}

void renderCsv(std::ostream& os, const Figure& fig) {
  os << "label";
  for (const FigureSeries& s : fig.series) os << ',' << s.label;
  os << '\n';
  if (fig.series.empty()) return;
  for (std::size_t row = 0; row < fig.series[0].points.size(); ++row) {
    os << fig.series[0].points[row].first;
    for (const FigureSeries& s : fig.series) {
      os << ',' << s.points[row].second;
    }
    os << '\n';
  }
}

void renderTable1(std::ostream& os) {
  os << "Table 1: MicroBench kernels, categories, and descriptions\n";
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    os << std::left << std::setw(14) << info.name << std::setw(14)
       << categoryName(info.category) << info.description
       << (info.excluded ? "  [excluded: segfaults on all systems]" : "")
       << '\n';
  }
}

void renderTable4(std::ostream& os) {
  os << "Table 4: FireSim models (as configured in this library)\n";
  os << std::left << std::setw(18) << "Model" << std::setw(10) << "Clock"
     << std::setw(20) << "Front end" << std::setw(8) << "RoB"
     << std::setw(14) << "LSQ" << std::setw(16) << "L1D sets/ways"
     << std::setw(10) << "L2 banks" << "Bus\n";
  const PlatformId models[] = {PlatformId::kRocket1, PlatformId::kRocket2,
                               PlatformId::kSmallBoom,
                               PlatformId::kMediumBoom,
                               PlatformId::kLargeBoom};
  for (const PlatformId id : models) {
    const SocConfig c = makePlatform(id, 4);
    std::ostringstream fe, rob, lsq;
    if (c.core_kind == CoreKind::kInOrder) {
      fe << "Fetch:2, Decode:" << c.inorder.issue_width;
      rob << "N/A";
      lsq << "N/A";
    } else {
      fe << "Fetch:" << c.ooo.fetch_width << ", Decode:"
         << c.ooo.decode_width;
      rob << c.ooo.rob;
      lsq << "L:" << c.ooo.ldq << " S:" << c.ooo.stq;
    }
    std::ostringstream l1;
    l1 << c.mem.l1d.sets << "/" << c.mem.l1d.ways;
    os << std::left << std::setw(18) << c.name << std::setw(10)
       << (std::to_string(c.freq_ghz) + " GHz").substr(0, 8)
       << std::setw(20) << fe.str() << std::setw(8) << rob.str()
       << std::setw(14) << lsq.str() << std::setw(16) << l1.str()
       << std::setw(10) << c.mem.l2.banks << c.mem.bus.width_bits
       << "-bit\n";
  }
}

void renderTable5(std::ostream& os) {
  os << "Table 5: platform specifications (hardware reference vs FireSim "
        "model)\n";
  const struct {
    PlatformId hw;
    PlatformId sim;
  } pairs[] = {{PlatformId::kBananaPiHw, PlatformId::kBananaPiSim},
               {PlatformId::kMilkVHw, PlatformId::kMilkVSim}};
  for (const auto& p : pairs) {
    for (const PlatformId id : {p.hw, p.sim}) {
      const SocConfig c = makePlatform(id, 4);
      os << c.name << ":\n";
      os << "  cores: " << c.cores << " @ " << c.freq_ghz << " GHz, "
         << (c.core_kind == CoreKind::kInOrder ? "in-order" : "out-of-order")
         << '\n';
      if (c.core_kind == CoreKind::kInOrder) {
        os << "  execute: " << c.inorder.issue_width << "-issue, "
           << c.inorder.pipeline_depth << "-stage pipeline\n";
      } else {
        os << "  execute: " << c.ooo.decode_width << "-wide decode, RoB "
           << c.ooo.rob << ", LDQ/STQ " << c.ooo.ldq << "/" << c.ooo.stq
           << '\n';
      }
      os << "  L1 D/I: "
         << c.mem.l1d.sets * c.mem.l1d.ways * kLineBytes / 1024 << " KiB ("
         << c.mem.l1d.sets << "/" << c.mem.l1d.ways << ")\n";
      os << "  L2: " << c.mem.l2.sets * c.mem.l2.ways * kLineBytes / 1024
         << " KiB, " << c.mem.l2.banks << " banks\n";
      os << "  bus: " << c.mem.bus.width_bits << "-bit\n";
      if (c.mem.has_llc) {
        os << "  LLC: " << c.mem.dram_channels << " x "
           << (std::uint64_t{c.mem.llc.sets} * c.mem.llc.ways * kLineBytes /
               (1024 * 1024))
           << " MiB ("
           << (c.mem.llc.mode == LlcMode::kSimplifiedSram
                   ? "simplified SRAM"
                   : "latency-accurate")
           << ")\n";
      } else {
        os << "  LLC: none\n";
      }
      os << "  DRAM: " << c.mem.dram_channels << " x " << c.mem.dram.name
         << '\n';
    }
  }
}

}  // namespace bridge
