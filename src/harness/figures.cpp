#include "harness/figures.h"

#include <cmath>
#include <functional>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/jsonio.h"
#include "sim/log.h"
#include "workloads/microbench.h"

namespace bridge {

SweepOptions fullFidelitySweep(SweepOptions sweep) {
  if (sweep.sampling.enabled) {
    BRIDGE_LOG(kWarn) << "figures: sampled execution ("
                      << sweep.sampling.specString()
                      << ") is not allowed for figure/golden computation; "
                         "running at full fidelity";
    sweep.sampling = SamplingParams{};
  }
  if (sweep.hwvar.enabled) {
    BRIDGE_LOG(kWarn) << "figures: engine-level hardware variability ("
                      << sweep.hwvar.specString()
                      << ") is not allowed for figure/golden computation; "
                         "running the deterministic machine (studies pin "
                         "hwvar per job instead)";
    sweep.hwvar = HwVarParams{};
  }
  return sweep;
}

namespace {

/// hw-vs-sims figures share one shape: per x-label, one hardware job plus
/// one job per sim series, all fanned out through the sweep engine. The
/// job list is laid out row-major ((1 + sims) jobs per x-label), so the
/// results unpack positionally.
Figure pairedFigure(const std::vector<PlatformId>& sims,
                    const std::vector<std::string>& xlabels,
                    const std::function<JobSpec(PlatformId, const std::string&)>&
                        makeJob,
                    PlatformId hardware, std::string title,
                    std::string metric, const SweepOptions& sweep) {
  Figure fig;
  fig.title = std::move(title);
  fig.metric = std::move(metric);
  for (const PlatformId sim : sims) {
    fig.series.push_back({std::string(platformName(sim)), {}});
  }
  std::vector<JobSpec> jobs;
  jobs.reserve(xlabels.size() * (1 + sims.size()));
  for (const std::string& x : xlabels) {
    jobs.push_back(makeJob(hardware, x));
    for (const PlatformId sim : sims) jobs.push_back(makeJob(sim, x));
  }
  const std::vector<SweepResult> results = SweepEngine(fullFidelitySweep(sweep)).run(jobs);
  std::size_t j = 0;
  for (const std::string& x : xlabels) {
    const double hw_seconds = results[j++].result.seconds;
    for (std::size_t i = 0; i < sims.size(); ++i) {
      fig.series[i].points.emplace_back(
          x, relativeSpeedup(hw_seconds, results[j++].result.seconds));
    }
  }
  return fig;
}

/// MicroBench relative-performance figure: sims vs one hardware model.
Figure microbenchFigure(const std::vector<PlatformId>& sims,
                        PlatformId hardware, double scale, std::string title,
                        const SweepOptions& sweep) {
  return pairedFigure(
      sims, microbenchNames(),
      [&](PlatformId p, const std::string& kernel) {
        return microbenchJob(p, kernel, scale);
      },
      hardware, std::move(title),
      "relative performance (hw_time / sim_time), 1.0 = parity", sweep);
}

Figure npbFigure(const std::vector<PlatformId>& sims, PlatformId hardware,
                 int ranks, double scale, std::string title,
                 const SweepOptions& sweep) {
  std::vector<std::string> names;
  for (const NpbBenchmark bench : allNpbBenchmarks()) {
    names.emplace_back(npbName(bench));
  }
  return pairedFigure(
      sims, names,
      [&](PlatformId p, const std::string& name) {
        for (const NpbBenchmark bench : allNpbBenchmarks()) {
          if (npbName(bench) == name) return npbJob(p, bench, ranks, scale);
        }
        throw std::invalid_argument("unknown NPB benchmark: " + name);
      },
      hardware, std::move(title),
      "relative speedup (hw_time / sim_time), target 1.0", sweep);
}

}  // namespace

Figure computeFig1(double scale, const SweepOptions& sweep) {
  return microbenchFigure(
      {PlatformId::kBananaPiSim, PlatformId::kFastBananaPiSim},
      PlatformId::kBananaPiHw, scale,
      "Figure 1: MicroBench, Rocket-based Banana Pi models vs Banana Pi "
      "hardware",
      sweep);
}

Figure computeFig2(double scale, const SweepOptions& sweep) {
  return microbenchFigure(
      {PlatformId::kSmallBoom, PlatformId::kMediumBoom,
       PlatformId::kLargeBoom, PlatformId::kMilkVSim},
      PlatformId::kMilkVHw, scale,
      "Figure 2: MicroBench, BOOM models vs MILK-V hardware", sweep);
}

Figure computeFig3(int ranks, double scale, const SweepOptions& sweep) {
  return npbFigure(
      {PlatformId::kRocket1, PlatformId::kRocket2, PlatformId::kBananaPiSim,
       PlatformId::kFastBananaPiSim},
      PlatformId::kBananaPiHw, ranks, scale,
      "Figure 3" + std::string(ranks == 1 ? "a (single core)" : "b (" +
                  std::to_string(ranks) + " cores)") +
          ": NPB on Rocket configs vs Banana Pi hardware",
      sweep);
}

Figure computeFig4a(double scale, const SweepOptions& sweep) {
  return npbFigure(
      {PlatformId::kSmallBoom, PlatformId::kMediumBoom,
       PlatformId::kLargeBoom},
      PlatformId::kMilkVHw, /*ranks=*/1, scale,
      "Figure 4a: NPB on stock BOOM configs vs MILK-V hardware (1 core)",
      sweep);
}

Figure computeFig4b(double scale, const SweepOptions& sweep) {
  Figure fig;
  fig.title =
      "Figure 4b: NPB on the MILK-V simulation model vs MILK-V hardware";
  fig.metric = "relative speedup (hw_time / sim_time), target 1.0";
  // One (hw, sim) job pair per (ranks, benchmark) point.
  std::vector<JobSpec> jobs;
  for (const int ranks : {1, 4}) {
    for (const NpbBenchmark bench : allNpbBenchmarks()) {
      jobs.push_back(npbJob(PlatformId::kMilkVHw, bench, ranks, scale));
      jobs.push_back(npbJob(PlatformId::kMilkVSim, bench, ranks, scale));
    }
  }
  const std::vector<SweepResult> results = SweepEngine(fullFidelitySweep(sweep)).run(jobs);
  std::size_t j = 0;
  for (const int ranks : {1, 4}) {
    FigureSeries s;
    s.label = "MilkVSim/" + std::to_string(ranks) + "rank";
    for (const NpbBenchmark bench : allNpbBenchmarks()) {
      const double hw_seconds = results[j++].result.seconds;
      const double sim_seconds = results[j++].result.seconds;
      s.points.emplace_back(std::string(npbName(bench)),
                            relativeSpeedup(hw_seconds, sim_seconds));
    }
    fig.series.push_back(std::move(s));
  }
  return fig;
}

namespace {

/// Shared shape of Figures 5-7: rank-scaling of one app on both platform
/// pairs; `makeJob` maps (platform, ranks) -> JobSpec.
template <typename MakeJob>
Figure appFigure(std::string title, MakeJob&& makeJob,
                 const SweepOptions& sweep) {
  Figure fig;
  fig.title = std::move(title);
  fig.metric = "relative speedup (hw_time / sim_time), target 1.0";
  const struct {
    PlatformId sim;
    PlatformId hw;
    const char* label;
  } pairs[] = {
      {PlatformId::kBananaPiSim, PlatformId::kBananaPiHw,
       "BananaPiSim vs BananaPiHw"},
      {PlatformId::kMilkVSim, PlatformId::kMilkVHw,
       "MilkVSim vs MilkVHw"},
  };
  std::vector<JobSpec> jobs;
  for (const auto& p : pairs) {
    for (const int ranks : {1, 2, 4}) {
      jobs.push_back(makeJob(p.hw, ranks));
      jobs.push_back(makeJob(p.sim, ranks));
    }
  }
  const std::vector<SweepResult> results = SweepEngine(fullFidelitySweep(sweep)).run(jobs);
  std::size_t j = 0;
  for (const auto& p : pairs) {
    FigureSeries s;
    s.label = p.label;
    for (const int ranks : {1, 2, 4}) {
      const double hw_seconds = results[j++].result.seconds;
      const double sim_seconds = results[j++].result.seconds;
      s.points.emplace_back(std::to_string(ranks) + " ranks",
                            relativeSpeedup(hw_seconds, sim_seconds));
    }
    fig.series.push_back(std::move(s));
  }
  return fig;
}

}  // namespace

Figure computeFig5(double scale, const SweepOptions& sweep) {
  UmeConfig cfg;
  cfg.scale = scale;
  return appFigure(
      "Figure 5: UME relative speedup, FireSim models vs hardware",
      [&](PlatformId p, int ranks) { return umeJob(p, ranks, cfg); }, sweep);
}

Figure computeFig6(double scale, const SweepOptions& sweep) {
  LammpsConfig cfg;
  cfg.scale = scale;
  return appFigure(
      "Figure 6: LAMMPS Lennard-Jones relative speedup",
      [&](PlatformId p, int ranks) {
        return lammpsJob(p, LammpsBenchmark::kLennardJones, ranks, cfg);
      },
      sweep);
}

Figure computeFig7(double scale, const SweepOptions& sweep) {
  LammpsConfig cfg;
  cfg.scale = scale;
  return appFigure(
      "Figure 7: LAMMPS Polymer-Chain relative speedup",
      [&](PlatformId p, int ranks) {
        return lammpsJob(p, LammpsBenchmark::kChain, ranks, cfg);
      },
      sweep);
}

void renderFigure(std::ostream& os, const Figure& fig) {
  os << fig.title << '\n';
  os << "metric: " << fig.metric << '\n';
  if (fig.series.empty()) return;

  std::size_t label_w = 10;
  for (const auto& [x, v] : fig.series[0].points) {
    label_w = std::max(label_w, x.size());
  }
  os << std::left << std::setw(static_cast<int>(label_w) + 2) << "";
  for (const FigureSeries& s : fig.series) {
    os << std::right << std::setw(18) << s.label;
  }
  os << '\n';
  for (std::size_t row = 0; row < fig.series[0].points.size(); ++row) {
    os << std::left << std::setw(static_cast<int>(label_w) + 2)
       << fig.series[0].points[row].first;
    for (const FigureSeries& s : fig.series) {
      os << std::right << std::setw(18) << std::fixed
         << std::setprecision(3) << s.points[row].second;
    }
    os << '\n';
  }
}

void renderCsv(std::ostream& os, const Figure& fig) {
  os << "label";
  for (const FigureSeries& s : fig.series) os << ',' << s.label;
  os << '\n';
  if (fig.series.empty()) return;
  for (std::size_t row = 0; row < fig.series[0].points.size(); ++row) {
    os << fig.series[0].points[row].first;
    for (const FigureSeries& s : fig.series) {
      os << ',' << s.points[row].second;
    }
    os << '\n';
  }
}

std::string figureToJson(const Figure& fig) {
  std::string out = "{\n  \"title\": ";
  jsonio::appendEscaped(&out, fig.title);
  out += ",\n  \"metric\": ";
  jsonio::appendEscaped(&out, fig.metric);
  out += ",\n  \"series\": [";
  for (std::size_t s = 0; s < fig.series.size(); ++s) {
    out += s == 0 ? "\n" : ",\n";
    out += "    {\"label\": ";
    jsonio::appendEscaped(&out, fig.series[s].label);
    out += ", \"points\": [";
    for (std::size_t p = 0; p < fig.series[s].points.size(); ++p) {
      out += p == 0 ? "\n" : ",\n";
      out += "      [";
      jsonio::appendEscaped(&out, fig.series[s].points[p].first);
      out += ", " + jsonio::formatDouble(fig.series[s].points[p].second) + "]";
    }
    out += fig.series[s].points.empty() ? "]}" : "\n    ]}";
  }
  out += fig.series.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool figureFromJson(const std::string& json, Figure* out) {
  Figure fig;
  jsonio::Parser p(json);
  const bool ok =
      p.parseObject([&](const std::string& key, jsonio::Parser& v) {
        if (key == "title") return v.parseString(&fig.title);
        if (key == "metric") return v.parseString(&fig.metric);
        if (key == "series") {
          return v.parseArray([&](jsonio::Parser& sv) {
            FigureSeries series;
            const bool series_ok = sv.parseObject(
                [&](const std::string& f, jsonio::Parser& fv) {
                  if (f == "label") return fv.parseString(&series.label);
                  if (f == "points") {
                    return fv.parseArray([&](jsonio::Parser& pv) {
                      // Each point is a two-element [xlabel, value] array;
                      // parse it field-by-field rather than via a generic
                      // element callback so extra elements fail the parse.
                      std::string xlabel;
                      double value = 0.0;
                      std::size_t field = 0;
                      const bool point_ok = pv.parseArray(
                          [&](jsonio::Parser& ev) {
                            if (field == 0) {
                              ++field;
                              return ev.parseString(&xlabel);
                            }
                            if (field == 1) {
                              ++field;
                              return ev.parseDouble(&value);
                            }
                            return false;
                          });
                      if (!point_ok || field != 2) return false;
                      series.points.emplace_back(std::move(xlabel), value);
                      return true;
                    });
                  }
                  return false;
                });
            if (!series_ok) return false;
            fig.series.push_back(std::move(series));
            return true;
          });
        }
        return false;
      });
  if (!ok || !p.atEnd()) return false;
  *out = std::move(fig);
  return true;
}

bool figuresMatch(const Figure& golden, const Figure& actual, double rel_tol,
                  std::string* diff) {
  const auto fail = [&](const std::string& msg) {
    if (diff != nullptr) *diff = msg;
    return false;
  };
  if (golden.title != actual.title) {
    return fail("title mismatch: golden '" + golden.title + "' vs actual '" +
                actual.title + "'");
  }
  if (golden.metric != actual.metric) {
    return fail("metric mismatch in '" + golden.title + "'");
  }
  if (golden.series.size() != actual.series.size()) {
    return fail("'" + golden.title + "': series count " +
                std::to_string(golden.series.size()) + " vs " +
                std::to_string(actual.series.size()));
  }
  for (std::size_t s = 0; s < golden.series.size(); ++s) {
    const FigureSeries& g = golden.series[s];
    const FigureSeries& a = actual.series[s];
    if (g.label != a.label) {
      return fail("'" + golden.title + "': series " + std::to_string(s) +
                  " label '" + g.label + "' vs '" + a.label + "'");
    }
    if (g.points.size() != a.points.size()) {
      return fail("'" + golden.title + "' series '" + g.label +
                  "': point count " + std::to_string(g.points.size()) +
                  " vs " + std::to_string(a.points.size()));
    }
    for (std::size_t p = 0; p < g.points.size(); ++p) {
      if (g.points[p].first != a.points[p].first) {
        return fail("'" + golden.title + "' series '" + g.label +
                    "': x-label '" + g.points[p].first + "' vs '" +
                    a.points[p].first + "'");
      }
      const double gv = g.points[p].second;
      const double av = a.points[p].second;
      // Relative error against the golden magnitude; exact match is always
      // accepted (covers golden == actual == 0).
      const double denom = std::max(std::abs(gv), 1e-300);
      if (gv != av && std::abs(av - gv) / denom > rel_tol) {
        std::ostringstream msg;
        msg << '\'' << golden.title << "' series '" << g.label << "' point '"
            << g.points[p].first << "': golden " << gv << " vs actual " << av
            << " (rel err " << (std::abs(av - gv) / denom) << " > tol "
            << rel_tol << ")";
        return fail(msg.str());
      }
    }
  }
  return true;
}

void renderTable1(std::ostream& os) {
  os << "Table 1: MicroBench kernels, categories, and descriptions\n";
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    os << std::left << std::setw(14) << info.name << std::setw(14)
       << categoryName(info.category) << info.description
       << (info.excluded ? "  [excluded: segfaults on all systems]" : "")
       << '\n';
  }
}

void renderTable4(std::ostream& os) {
  os << "Table 4: FireSim models (as configured in this library)\n";
  os << std::left << std::setw(18) << "Model" << std::setw(10) << "Clock"
     << std::setw(20) << "Front end" << std::setw(8) << "RoB"
     << std::setw(14) << "LSQ" << std::setw(16) << "L1D sets/ways"
     << std::setw(10) << "L2 banks" << "Bus\n";
  const PlatformId models[] = {PlatformId::kRocket1, PlatformId::kRocket2,
                               PlatformId::kSmallBoom,
                               PlatformId::kMediumBoom,
                               PlatformId::kLargeBoom};
  for (const PlatformId id : models) {
    const SocConfig c = makePlatform(id, 4);
    std::ostringstream fe, rob, lsq;
    if (c.core_kind == CoreKind::kInOrder) {
      fe << "Fetch:2, Decode:" << c.inorder.issue_width;
      rob << "N/A";
      lsq << "N/A";
    } else {
      fe << "Fetch:" << c.ooo.fetch_width << ", Decode:"
         << c.ooo.decode_width;
      rob << c.ooo.rob;
      lsq << "L:" << c.ooo.ldq << " S:" << c.ooo.stq;
    }
    std::ostringstream l1;
    l1 << c.mem.l1d.sets << "/" << c.mem.l1d.ways;
    os << std::left << std::setw(18) << c.name << std::setw(10)
       << (std::to_string(c.freq_ghz) + " GHz").substr(0, 8)
       << std::setw(20) << fe.str() << std::setw(8) << rob.str()
       << std::setw(14) << lsq.str() << std::setw(16) << l1.str()
       << std::setw(10) << c.mem.l2.banks << c.mem.bus.width_bits
       << "-bit\n";
  }
}

void renderTable5(std::ostream& os) {
  os << "Table 5: platform specifications (hardware reference vs FireSim "
        "model)\n";
  const struct {
    PlatformId hw;
    PlatformId sim;
  } pairs[] = {{PlatformId::kBananaPiHw, PlatformId::kBananaPiSim},
               {PlatformId::kMilkVHw, PlatformId::kMilkVSim}};
  for (const auto& p : pairs) {
    for (const PlatformId id : {p.hw, p.sim}) {
      const SocConfig c = makePlatform(id, 4);
      os << c.name << ":\n";
      os << "  cores: " << c.cores << " @ " << c.freq_ghz << " GHz, "
         << (c.core_kind == CoreKind::kInOrder ? "in-order" : "out-of-order")
         << '\n';
      if (c.core_kind == CoreKind::kInOrder) {
        os << "  execute: " << c.inorder.issue_width << "-issue, "
           << c.inorder.pipeline_depth << "-stage pipeline\n";
      } else {
        os << "  execute: " << c.ooo.decode_width << "-wide decode, RoB "
           << c.ooo.rob << ", LDQ/STQ " << c.ooo.ldq << "/" << c.ooo.stq
           << '\n';
      }
      os << "  L1 D/I: "
         << c.mem.l1d.sets * c.mem.l1d.ways * kLineBytes / 1024 << " KiB ("
         << c.mem.l1d.sets << "/" << c.mem.l1d.ways << ")\n";
      os << "  L2: " << c.mem.l2.sets * c.mem.l2.ways * kLineBytes / 1024
         << " KiB, " << c.mem.l2.banks << " banks\n";
      os << "  bus: " << c.mem.bus.width_bits << "-bit\n";
      if (c.mem.has_llc) {
        os << "  LLC: " << c.mem.dram_channels << " x "
           << (std::uint64_t{c.mem.llc.sets} * c.mem.llc.ways * kLineBytes /
               (1024 * 1024))
           << " MiB ("
           << (c.mem.llc.mode == LlcMode::kSimplifiedSram
                   ? "simplified SRAM"
                   : "latency-accurate")
           << ")\n";
      } else {
        os << "  LLC: none\n";
      }
      os << "  DRAM: " << c.mem.dram_channels << " x " << c.mem.dram.name
         << '\n';
    }
  }
}

}  // namespace bridge
