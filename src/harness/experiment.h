// Experiment harness: run (platform x workload x ranks), compute the
// paper's metric.
//
// Metric (paper §5): "relative speedup" = hardware_time / simulation_time,
// so 1.0 is a perfect match and 1.2 means the simulation ran 20% faster
// than the silicon.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "platforms/platforms.h"
#include "workloads/lammps.h"
#include "workloads/npb.h"
#include "workloads/ume.h"

namespace bridge {

struct RunResult {
  Cycle cycles = 0;
  double seconds = 0.0;
  std::uint64_t retired = 0;
  double ipc = 0.0;
  std::uint64_t messages = 0;  // MPI transfers (multi-rank runs)
};

/// Sorted (name, value) snapshot of a run's StatRegistry counters.
using StatsSnapshot = std::vector<std::pair<std::string, std::uint64_t>>;

/// hardware_time / simulation_time (the paper's target value is 1.0).
double relativeSpeedup(double hw_seconds, double sim_seconds);

/// Factory producing a fresh single-core trace per invocation.
using TraceFactory = std::function<TraceSourcePtr()>;

/// Run a single-core workload on a platform. If `warmup` is provided, its
/// trace runs first on the same SoC (heating caches, predictors, TLBs) and
/// its cycles are excluded — matching how the original microbenchmarks are
/// timed (steady-state loops, initialization excluded).
RunResult runSingleCore(PlatformId platform, const TraceFactory& factory,
                        const TraceFactory& warmup = nullptr);

/// Same, on an explicit (possibly hand-tuned) SocConfig. `stats`, if
/// non-null, receives the SoC's counter snapshot after the timed run —
/// the hook the sweep engine uses to cache per-job statistics.
RunResult runSingleCore(const SocConfig& config, const TraceFactory& factory,
                        const TraceFactory& warmup = nullptr,
                        StatsSnapshot* stats = nullptr);

/// Run a multi-rank workload (rank program) on a platform with `ranks`
/// cores via the simulated MPI runtime.
RunResult runMultiRank(PlatformId platform, int ranks,
                       const std::function<TraceSourcePtr(int, int)>& program);

/// Same, on an explicit SocConfig. The config's core count is forced to
/// the harness rule (a full 4-core cluster for ranks <= 4, one core per
/// rank beyond that) so hand-tuned configs follow the paper's topology.
RunResult runMultiRank(SocConfig config, int ranks,
                       const std::function<TraceSourcePtr(int, int)>& program,
                       StatsSnapshot* stats = nullptr);

/// Convenience wrappers for the paper's workloads.
RunResult runMicrobench(PlatformId platform, std::string_view kernel,
                        double scale = 1.0, std::uint64_t seed = 1);
RunResult runNpb(PlatformId platform, NpbBenchmark bench, int ranks,
                 const NpbConfig& cfg = {});
RunResult runUme(PlatformId platform, int ranks, const UmeConfig& cfg = {});
RunResult runLammps(PlatformId platform, LammpsBenchmark bench, int ranks,
                    const LammpsConfig& cfg = {});

/// The LammpsConfig actually simulated for a platform: on silicon models a
/// default (scalar) config picks up the compiler's vector lanes (paper
/// Table 3 / §3.1.1). Exposed so the sweep engine applies the same rule.
LammpsConfig resolveLammpsConfig(PlatformId platform, LammpsConfig cfg);

/// Seed perturbation used for microbenchmark warmup instances, so warmup
/// touches the same regions without making the timed instance's exact
/// address sequence artificially resident.
inline constexpr std::uint64_t kWarmupSeedOffset = 0x517CC1B7u;

}  // namespace bridge
