// Experiment harness: run (platform x workload x ranks), compute the
// paper's metric.
//
// Metric (paper §5): "relative speedup" = hardware_time / simulation_time,
// so 1.0 is a perfect match and 1.2 means the simulation ran 20% faster
// than the silicon.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "platforms/platforms.h"
#include "workloads/lammps.h"
#include "workloads/npb.h"
#include "workloads/ume.h"

namespace bridge {

struct RunResult {
  Cycle cycles = 0;
  double seconds = 0.0;
  std::uint64_t retired = 0;
  double ipc = 0.0;
  std::uint64_t messages = 0;  // MPI transfers (multi-rank runs)
};

/// hardware_time / simulation_time (the paper's target value is 1.0).
double relativeSpeedup(double hw_seconds, double sim_seconds);

/// Factory producing a fresh single-core trace per invocation.
using TraceFactory = std::function<TraceSourcePtr()>;

/// Run a single-core workload on a platform. If `warmup` is provided, its
/// trace runs first on the same SoC (heating caches, predictors, TLBs) and
/// its cycles are excluded — matching how the original microbenchmarks are
/// timed (steady-state loops, initialization excluded).
RunResult runSingleCore(PlatformId platform, const TraceFactory& factory,
                        const TraceFactory& warmup = nullptr);

/// Run a multi-rank workload (rank program) on a platform with `ranks`
/// cores via the simulated MPI runtime.
RunResult runMultiRank(PlatformId platform, int ranks,
                       const std::function<TraceSourcePtr(int, int)>& program);

/// Convenience wrappers for the paper's workloads.
RunResult runMicrobench(PlatformId platform, std::string_view kernel,
                        double scale = 1.0, std::uint64_t seed = 1);
RunResult runNpb(PlatformId platform, NpbBenchmark bench, int ranks,
                 const NpbConfig& cfg = {});
RunResult runUme(PlatformId platform, int ranks, const UmeConfig& cfg = {});
RunResult runLammps(PlatformId platform, LammpsBenchmark bench, int ranks,
                    const LammpsConfig& cfg = {});

}  // namespace bridge
