// Calibration / validation suite: every quantitative claim the paper makes
// about simulation-vs-silicon relative performance, as an executable check.
//
// This is the library-level version of the paper's own methodology: run the
// probes, compare against the published bands, and report which parts of
// the model family match the measurements. The bench binary
// `calibration_report` prints the table; EXPERIMENTS.md is its narrative.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace bridge {

struct CalibrationCheck {
  std::string id;        // e.g. "fig1.MM"
  std::string claim;     // the paper statement being checked
  double lo = 0.0;       // accepted band for the relative-speedup metric
  double hi = 0.0;
  bool quantified = true;  // false: band estimated from unquantified bars
};

struct CalibrationResult {
  CalibrationCheck check;
  double measured = 0.0;
  bool pass = false;
};

/// All checks, in paper order. `scale` trades precision for speed
/// (the microbenchmark probes use it; applications run at full scale).
/// Every probe is a (hardware, simulation) job pair executed through the
/// sweep engine, so the whole suite parallelizes and caches per `sweep`.
std::vector<CalibrationResult> runCalibration(double scale = 0.15,
                                              const SweepOptions& sweep = {});

/// Render as an aligned report; returns the number of failed checks.
int renderCalibration(std::ostream& os,
                      const std::vector<CalibrationResult>& results);

}  // namespace bridge
