// NPB reference extraction for the workload-fidelity tuning objective
// (DESIGN.md §5e).
//
// The paper reports NPB fidelity per benchmark *and* per rank count
// (Figs. 3-4: CG/EP/IS/MG at 1 and 4 ranks), but publishes the results as
// bar charts — there are no absolute NPB runtimes to tune against. The
// silicon side is therefore extracted the same way the microbenchmark
// objective does it: the hardware-analog platforms (BananaPiHw / MilkVHw)
// are simulated over the benchmark x rank-count grid, and their seconds
// become the reference the candidate models are scored against. All runs
// go through a SweepEngine, so reference extraction is fanned out across
// workers and served from the persistent result cache on revisits.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace bridge {

/// One cell of the NPB fidelity grid: a benchmark at a rank count.
struct NpbGridCell {
  NpbBenchmark bench = NpbBenchmark::kCG;
  int ranks = 1;
};

/// Display/identity name, e.g. "CG/4r" — the component names the NPB
/// objective and the golden error-vector snapshot use.
std::string npbCellName(const NpbGridCell& cell);

/// The benchmark-major grid (every benchmark at every rank count, in the
/// given orders) — the deterministic component order of the objective.
/// Throws std::invalid_argument when either list is empty or a rank count
/// is < 1.
std::vector<NpbGridCell> npbGrid(std::span<const NpbBenchmark> benchmarks,
                                 std::span<const int> rank_counts);

/// JobSpecs for the grid on one platform, with `overrides` applied to
/// every job — the candidate side of a fidelity evaluation (references
/// pass no overrides).
std::vector<JobSpec> npbGridJobs(PlatformId platform,
                                 std::span<const NpbGridCell> grid,
                                 const NpbConfig& run,
                                 const Config& overrides = {});

/// Simulated "silicon" seconds for the grid on a reference platform, in
/// grid order. A cell whose job failed, or that reports non-positive
/// seconds, cannot anchor a log-space error: with `failed_cells` null the
/// function throws std::runtime_error (the legacy strict contract); with
/// it non-null the cell records 0.0 seconds (the degraded-mode sentinel)
/// and its "<cell>@<platform>" label is appended to *failed_cells.
std::vector<double> npbReferenceSeconds(
    SweepEngine& engine, PlatformId reference,
    std::span<const NpbGridCell> grid, const NpbConfig& run,
    std::vector<std::string>* failed_cells = nullptr);

}  // namespace bridge
