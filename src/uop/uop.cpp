#include "uop/uop.h"

namespace bridge {

std::string_view opClassName(OpClass c) {
  switch (c) {
    case OpClass::kNop: return "nop";
    case OpClass::kIntAlu: return "int_alu";
    case OpClass::kIntMul: return "int_mul";
    case OpClass::kIntDiv: return "int_div";
    case OpClass::kFpAdd: return "fp_add";
    case OpClass::kFpMul: return "fp_mul";
    case OpClass::kFpDiv: return "fp_div";
    case OpClass::kFpSqrt: return "fp_sqrt";
    case OpClass::kFpCvt: return "fp_cvt";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
    case OpClass::kJump: return "jump";
    case OpClass::kCall: return "call";
    case OpClass::kRet: return "ret";
    case OpClass::kFence: return "fence";
    case OpClass::kMpi: return "mpi";
  }
  return "invalid";
}

}  // namespace bridge
