// Micro-operation intermediate representation.
//
// Workload generators (src/workloads) emit streams of MicroOps; core timing
// models (src/core) consume them. The IR is deliberately RISC-V-shaped: one
// destination, up to three sources (fused multiply-add needs three), loads
// and stores carry effective addresses, branches carry their *resolved*
// outcome and target so the timing model can charge misprediction penalties
// against its own predictor state.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.h"

namespace bridge {

/// Functional classes, matching the execution resources the Rocket/BOOM
/// (and SpacemiT K1 / SG2042) pipelines distinguish.
enum class OpClass : std::uint8_t {
  kNop = 0,
  kIntAlu,   // add/sub/logic/shift/compare
  kIntMul,   // integer multiply
  kIntDiv,   // integer divide / remainder (long latency, unpipelined)
  kFpAdd,    // fp add/sub/compare/min/max
  kFpMul,    // fp multiply and fused multiply-add
  kFpDiv,    // fp divide (long latency, unpipelined)
  kFpSqrt,   // fp square root
  kFpCvt,    // int<->fp and fp<->fp conversions
  kLoad,     // memory read
  kStore,    // memory write
  kBranch,   // conditional branch
  kJump,     // unconditional direct jump
  kCall,     // call: pushes return address (exercises the RAS)
  kRet,      // return: pops return address (exercises the RAS)
  kFence,    // full serialization (also models atomics/fences)
  kMpi,      // message-passing runtime call; consumed by bridge::mpi
};
inline constexpr unsigned kNumOpClasses = 17;

/// Register id space: 0..31 integer, 32..63 floating point. kNoReg marks an
/// absent operand. The zero register x0 is register 0 and never creates
/// dependencies (writes are discarded, reads are always ready).
using Reg = std::uint8_t;
inline constexpr Reg kNoReg = 0xFF;
inline constexpr Reg kZeroReg = 0;
inline constexpr unsigned kNumArchRegs = 64;
constexpr Reg intReg(unsigned i) { return static_cast<Reg>(i & 31u); }
constexpr Reg fpReg(unsigned i) { return static_cast<Reg>(32u + (i & 31u)); }

/// Message-passing primitives recognized by the simulated runtime.
enum class MpiKind : std::uint8_t {
  kNone = 0,
  kSend,       // blocking standard-mode send to `peer`
  kRecv,       // blocking receive from `peer` (peer == kAnyPeer matches any)
  kBarrier,
  kBcast,      // root given in `peer`
  kReduce,     // root given in `peer`
  kAllreduce,
  kAlltoall,   // `bytes` = per-destination payload
  kWaitall,    // completion point for preceding nonblocking ops (timing only)
};
inline constexpr int kAnyPeer = -1;

/// Payload for OpClass::kMpi micro-ops.
struct MpiOpInfo {
  MpiKind kind = MpiKind::kNone;
  std::int32_t peer = kAnyPeer;  // partner rank or collective root
  std::int32_t tag = 0;
  std::uint64_t bytes = 0;       // message payload in bytes
};

/// One micro-operation. Size is kept modest (fits in one cache line) because
/// generators produce hundreds of millions of these per experiment sweep.
struct MicroOp {
  OpClass cls = OpClass::kNop;
  Reg dst = kNoReg;
  Reg src0 = kNoReg;
  Reg src1 = kNoReg;
  Reg src2 = kNoReg;
  std::uint8_t mem_size = 0;  // bytes touched by load/store (1..8)
  bool taken = false;         // resolved direction for kBranch
  Addr pc = 0;                // instruction address (predictor/i-cache index)
  Addr addr = 0;              // effective address (mem) or target (ctrl flow)
  MpiOpInfo mpi{};            // valid iff cls == kMpi
};

constexpr bool isMemOp(OpClass c) {
  return c == OpClass::kLoad || c == OpClass::kStore;
}
constexpr bool isCtrlOp(OpClass c) {
  return c == OpClass::kBranch || c == OpClass::kJump ||
         c == OpClass::kCall || c == OpClass::kRet;
}
constexpr bool isFpOp(OpClass c) {
  return c == OpClass::kFpAdd || c == OpClass::kFpMul ||
         c == OpClass::kFpDiv || c == OpClass::kFpSqrt ||
         c == OpClass::kFpCvt;
}
constexpr bool isLongLatency(OpClass c) {
  return c == OpClass::kIntDiv || c == OpClass::kFpDiv ||
         c == OpClass::kFpSqrt;
}

/// Human-readable mnemonic for diagnostics.
std::string_view opClassName(OpClass c);

/// Per-class execution latencies in cycles (issue-to-writeback), excluding
/// memory time for loads/stores. Defaults approximate the Rocket FPU/MulDiv;
/// platforms override individual entries.
struct LatencyTable {
  unsigned lat[kNumOpClasses] = {
      /*kNop*/ 1,    /*kIntAlu*/ 1, /*kIntMul*/ 4, /*kIntDiv*/ 24,
      /*kFpAdd*/ 4,  /*kFpMul*/ 4,  /*kFpDiv*/ 20, /*kFpSqrt*/ 24,
      /*kFpCvt*/ 3,  /*kLoad*/ 0,   /*kStore*/ 1,  /*kBranch*/ 1,
      /*kJump*/ 1,   /*kCall*/ 1,   /*kRet*/ 1,    /*kFence*/ 1,
      /*kMpi*/ 1,
  };

  unsigned of(OpClass c) const { return lat[static_cast<unsigned>(c)]; }
  void set(OpClass c, unsigned v) { lat[static_cast<unsigned>(c)] = v; }
};

}  // namespace bridge
