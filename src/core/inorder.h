// In-order scalar/dual-issue core timing model.
//
// Covers the Rocket core (single-issue, 5-stage — FireSim's in-order tile)
// and the SpacemiT K1 core (dual-issue, 8-stage — the Banana Pi silicon).
// The model is a scoreboarded in-order pipeline:
//  * up to `issue_width` micro-ops issue per cycle, second slot refused on a
//    RAW hazard within the group or a second memory op;
//  * issue order is program order; a source operand still in flight stalls
//    issue (stall-at-use, like Rocket's scoreboard);
//  * loads access the memory hierarchy at issue; misses overlap with
//    independent work up to the L1 MSHR count (hit-under-miss);
//  * stores retire through a bounded store buffer (posted);
//  * control flow consults a BTB+BHT+RAS front end; a mispredict redirects
//    fetch `pipeline_depth - 2` cycles after the branch resolves;
//  * unpipelined dividers serialize back-to-back divides.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "branch/composite.h"
#include "cache/hierarchy.h"
#include "core/core.h"
#include "sim/stats.h"

namespace bridge {

struct InOrderParams {
  unsigned issue_width = 1;     // 1 = Rocket, 2 = SpacemiT K1
  unsigned pipeline_depth = 5;  // 5 = Rocket, 8 = SpacemiT K1
  unsigned store_buffer = 4;
  LatencyTable lat;
  // Front end (paper Table 5: "BTB, BHT, RAS branch predictors").
  unsigned bht_entries = 512;
  unsigned btb_entries = 64;
  unsigned ras_depth = 8;

  unsigned redirectPenalty() const {
    return pipeline_depth > 2 ? pipeline_depth - 2 : 1;
  }
};

class InOrderCore final : public CoreModel {
 public:
  /// `core_id` selects this core's private L1s inside `mem`.
  InOrderCore(unsigned core_id, const InOrderParams& params,
              MemoryHierarchy* mem, StatRegistry* stats,
              const std::string& stat_prefix);

  void consume(const MicroOp& op) override;
  void warmOp(const MicroOp& op) override;
  Cycle now() const override { return cur_cycle_; }
  Cycle frontier() const override;
  Cycle drain() override;
  void skipTo(Cycle c) override;
  std::uint64_t retired() const override { return retired_; }

  const FrontEndStats& frontEndStats() const { return front_end_->stats(); }

 private:
  Cycle regReady(Reg r) const;
  void setRegReady(Reg r, Cycle c);
  void chargeFetch(const MicroOp& op);

  unsigned core_id_;
  InOrderParams params_;
  MemoryHierarchy* mem_;
  std::unique_ptr<CompositeFrontEnd> front_end_;

  std::array<Cycle, kNumArchRegs> reg_ready_{};
  Cycle cur_cycle_ = 0;        // cycle the next micro-op would issue in
  unsigned issued_this_cycle_ = 0;
  bool mem_issued_this_cycle_ = false;
  // Destinations written by ops issued in the current cycle (RAW check for
  // the dual-issue second slot).
  std::array<Reg, 4> group_dsts_{};
  unsigned group_size_ = 0;

  Cycle fetch_ready_ = 0;      // front end has instructions ready
  Addr last_fetch_line_ = ~Addr{0};
  Cycle div_free_ = 0;         // unpipelined integer divider
  Cycle fdiv_free_ = 0;        // unpipelined FP divide/sqrt

  std::vector<Cycle> store_buffer_;  // completion per slot, ring
  std::size_t sb_head_ = 0;

  std::uint64_t retired_ = 0;
  Cycle max_complete_ = 0;     // frontier of all in-flight completions

  Counter* c_mispredicts_;
  Counter* c_load_stalls_;
};

}  // namespace bridge
