// Common interface for core timing models.
//
// A core consumes a stream of MicroOps (from a workload trace source) and
// advances a local cycle clock. Both models are single-pass: each micro-op
// is scheduled exactly once, which keeps full-platform sweeps fast while
// preserving width/window/dependency behaviour.
#pragma once

#include <cstdint>

#include "sim/types.h"
#include "uop/uop.h"

namespace bridge {

class CoreModel {
 public:
  virtual ~CoreModel() = default;

  /// Consume one micro-op (anything except kMpi, which the MPI runtime
  /// intercepts before the core sees it).
  virtual void consume(const MicroOp& op) = 0;

  /// Functionally execute one micro-op without charging any timing: caches,
  /// TLBs, and branch predictors observe the op (they carry the long-range
  /// history sampled fast-forward must keep warm), but the local clock, the
  /// retired count, and every timing resource stay untouched. Used by
  /// sim/sampling's fast-forward periods.
  virtual void warmOp(const MicroOp& op) = 0;

  /// Local clock: the earliest cycle at which the next micro-op could
  /// issue. Used by the multi-core scheduler to pick who advances next.
  virtual Cycle now() const = 0;

  /// The retirement frontier: the cycle drain() would return right now,
  /// computed without mutating anything. Distinct from now() because both
  /// core models defer cost — posted stores and completions nothing ever
  /// waits on only surface at drain. Sampled execution (sim/sampling)
  /// measures window cost on this clock; measuring on the issue clock
  /// would make store- or miss-bound kernels look nearly free.
  virtual Cycle frontier() const = 0;

  /// Complete all in-flight work (pipeline drain, store buffer flush).
  /// Returns the cycle everything has retired. Used at MPI call sites and
  /// at end-of-trace.
  virtual Cycle drain() = 0;

  /// Block until cycle `c` (the MPI runtime resuming a rank).
  virtual void skipTo(Cycle c) = 0;

  /// Retired micro-op count (for IPC).
  virtual std::uint64_t retired() const = 0;

  double ipc() const {
    const Cycle c = now();
    return c == 0 ? 0.0
                  : static_cast<double>(retired()) / static_cast<double>(c);
  }
};

}  // namespace bridge
