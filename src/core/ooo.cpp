#include "core/ooo.h"

#include <algorithm>
#include <cassert>

namespace bridge {

OooParams smallBoomParams() {
  OooParams p;
  p.fetch_width = 4;
  p.decode_width = 1;
  p.fetch_buffer = 8;
  p.rob = 32;
  p.int_issue = 1;
  p.mem_issue = 1;
  p.fp_issue = 1;
  p.int_iq = 8;
  p.mem_iq = 8;
  p.fp_iq = 8;
  p.ldq = 8;
  p.stq = 8;
  p.redirect_penalty = 7;
  p.tage.table_entries = 256;
  p.btb_entries = 256;
  p.ras_depth = 16;
  return p;
}

OooParams mediumBoomParams() {
  OooParams p;
  p.fetch_width = 4;
  p.decode_width = 2;
  p.fetch_buffer = 16;
  p.rob = 64;
  p.int_issue = 2;
  p.mem_issue = 1;
  p.fp_issue = 1;
  p.int_iq = 20;
  p.mem_iq = 12;
  p.fp_iq = 16;
  p.ldq = 16;
  p.stq = 16;
  p.redirect_penalty = 8;
  p.tage.table_entries = 512;
  p.btb_entries = 512;
  p.ras_depth = 24;
  return p;
}

OooParams largeBoomParams() {
  OooParams p;
  p.fetch_width = 8;
  p.decode_width = 3;
  p.fetch_buffer = 24;
  p.rob = 96;
  p.int_issue = 3;
  p.mem_issue = 1;
  p.fp_issue = 1;
  p.ldq = 24;
  p.stq = 24;
  p.redirect_penalty = 9;
  p.tage.table_entries = 1024;
  p.btb_entries = 512;
  p.ras_depth = 32;
  return p;
}

OooCore::OooCore(unsigned core_id, const OooParams& params,
                 MemoryHierarchy* mem, StatRegistry* stats,
                 const std::string& stat_prefix)
    : core_id_(core_id),
      params_(params),
      mem_(mem),
      front_end_(makeBoomFrontEnd(params.tage, params.btb_entries,
                                  params.ras_depth)),
      rob_commit_(std::max(1u, params.rob), 0),
      int_ports_(std::max(1u, params.int_issue)),
      mem_ports_(std::max(1u, params.mem_issue)),
      fp_ports_(std::max(1u, params.fp_issue)),
      int_iq_(std::max(1u, params.int_iq), 0),
      mem_iq_(std::max(1u, params.mem_iq), 0),
      fp_iq_(std::max(1u, params.fp_iq), 0),
      ldq_(std::max(1u, params.ldq), 0),
      stq_(std::max(1u, params.stq), 0),
      pending_stores_(std::max(1u, params.stq), PendingStore{}) {
  assert(mem != nullptr);
  assert(stats != nullptr);
  c_mispredicts_ = &stats->counter(stat_prefix + ".mispredicts");
  c_rob_stalls_ = &stats->counter(stat_prefix + ".rob_stalls");
}

Cycle OooCore::regReady(Reg r) const {
  if (r == kNoReg || r == kZeroReg) return 0;
  return reg_ready_[r];
}

void OooCore::setRegReady(Reg r, Cycle c) {
  if (r == kNoReg || r == kZeroReg) return;
  reg_ready_[r] = c;
}

Cycle OooCore::allocPort(std::vector<BusyCalendar>& ports, Cycle earliest) {
  // Issue on the port with the earliest free slot at or after `earliest`.
  // A port slot is one cycle; waiting ops sit in the issue queue and do
  // not occupy the port.
  Cycle best = kCycleNever;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const Cycle candidate = ports[i].peek(earliest, 1);
    if (candidate < best) {
      best = candidate;
      best_i = i;
    }
  }
  return ports[best_i].reserve(best, 1);
}

Cycle OooCore::allocQueueSlot(std::vector<Cycle>& ring, std::size_t& head,
                              Cycle earliest) {
  // A queue entry frees when the op occupying it commits; allocation waits
  // for the oldest entry if all are busy past `earliest`.
  const Cycle slot_free = ring[head];
  const Cycle when = std::max(earliest, slot_free);
  // The slot is re-armed by the caller once the commit time is known; mark
  // occupied until then with the allocation time (monotone, safe).
  if (++head == ring.size()) head = 0;
  return when;
}

void OooCore::chargeFetch(const MicroOp& op) {
  const Addr line = lineAddr(op.pc);
  if (line == last_fetch_line_) return;
  last_fetch_line_ = line;
  const MemAccess f = mem_->ifetch(core_id_, op.pc, dispatch_cycle_);
  if (!f.l1_hit) {
    fetch_ready_ = std::max(fetch_ready_, f.complete);
  }
}

Cycle OooCore::commit(Cycle complete) {
  // In-order commit, bounded by decode_width retires per cycle.
  Cycle commit_cycle = std::max(complete, last_commit_cycle_);
  if (commit_cycle == last_commit_cycle_ &&
      committed_this_cycle_ >= params_.decode_width) {
    ++commit_cycle;
  }
  if (commit_cycle > last_commit_cycle_) {
    last_commit_cycle_ = commit_cycle;
    committed_this_cycle_ = 1;
  } else {
    ++committed_this_cycle_;
  }
  max_commit_ = std::max(max_commit_, commit_cycle);
  return commit_cycle;
}

void OooCore::consume(const MicroOp& op) {
  assert(op.cls != OpClass::kMpi && "MPI ops are handled by the runtime");

  chargeFetch(op);

  // --- Dispatch ---------------------------------------------------------
  Cycle dispatch = std::max(dispatch_cycle_, fetch_ready_);
  if (dispatch == dispatch_cycle_ &&
      dispatched_this_cycle_ >= params_.decode_width) {
    ++dispatch;
  }
  // ROB window: the entry this op takes frees when the op `rob` slots ago
  // committed.
  const Cycle rob_free = rob_commit_[rob_head_];
  if (rob_free > dispatch) {
    c_rob_stalls_->add();
    dispatch = rob_free;
  }
  // Issue-queue occupancy: the slot this op takes frees when the op
  // `iq_size` entries earlier issued (entries are held dispatch->issue).
  std::vector<Cycle>* iq = &int_iq_;
  std::size_t* iq_head = &int_iq_head_;
  if (isMemOp(op.cls)) {
    iq = &mem_iq_;
    iq_head = &mem_iq_head_;
  } else if (isFpOp(op.cls)) {
    iq = &fp_iq_;
    iq_head = &fp_iq_head_;
  }
  dispatch = std::max(dispatch, (*iq)[*iq_head]);
  if (dispatch > dispatch_cycle_) {
    dispatch_cycle_ = dispatch;
    dispatched_this_cycle_ = 0;
  }
  ++dispatched_this_cycle_;

  // --- Issue ------------------------------------------------------------
  const Cycle src_ready = std::max(
      {regReady(op.src0), regReady(op.src1), regReady(op.src2)});
  Cycle earliest = std::max(dispatch + 1, src_ready);  // 1-cycle rename

  Cycle issue = earliest;
  Cycle complete = 0;
  switch (op.cls) {
    case OpClass::kLoad: {
      issue = allocPort(mem_ports_, allocQueueSlot(ldq_, ldq_head_, earliest));
      // Store-to-load forwarding: a recent older store to the same line
      // supplies the data from the store queue, bypassing the cache (and,
      // crucially, any still-in-flight miss the store started).
      const Addr line = lineAddr(op.addr);
      Cycle forward = 0;
      bool forwarded = false;
      for (const PendingStore& ps : pending_stores_) {
        if (ps.line == line && issue < ps.retire) {
          forwarded = true;
          forward = std::max(forward, ps.data_ready);
        }
      }
      if (forwarded) {
        complete = std::max(issue, forward) + 1;
        // The cache port is still occupied but data comes from the STQ.
      } else {
        const MemAccess a = mem_->load(core_id_, op.pc, op.addr, issue);
        complete = a.complete;
      }
      mem_frontier_ = std::max(mem_frontier_, issue);
      const Cycle cm = commit(complete);
      ldq_[(ldq_head_ == 0 ? ldq_.size() : ldq_head_) - 1] = cm;
      break;
    }
    case OpClass::kStore: {
      issue = allocPort(mem_ports_, allocQueueSlot(stq_, stq_head_, earliest));
      // Stores write the cache at commit; the op itself completes quickly.
      const MemAccess a = mem_->store(core_id_, op.pc, op.addr, issue);
      mem_frontier_ = std::max(mem_frontier_, issue);
      complete = issue + params_.lat.of(op.cls);
      const Cycle cm = commit(std::max(complete, a.complete));
      stq_[(stq_head_ == 0 ? stq_.size() : stq_head_) - 1] = cm;
      pending_stores_[pending_head_] = {lineAddr(op.addr), complete, cm};
      if (++pending_head_ == pending_stores_.size()) pending_head_ = 0;
      break;
    }
    case OpClass::kIntDiv: {
      issue = allocPort(int_ports_, std::max(earliest, div_free_));
      complete = issue + params_.lat.of(op.cls);
      div_free_ = complete;
      commit(complete);
      break;
    }
    case OpClass::kFpDiv:
    case OpClass::kFpSqrt: {
      issue = allocPort(fp_ports_, std::max(earliest, fdiv_free_));
      complete = issue + params_.lat.of(op.cls);
      fdiv_free_ = complete;
      commit(complete);
      break;
    }
    case OpClass::kFpAdd:
    case OpClass::kFpMul:
    case OpClass::kFpCvt: {
      issue = allocPort(fp_ports_, earliest);
      complete = issue + params_.lat.of(op.cls);
      commit(complete);
      break;
    }
    case OpClass::kFence: {
      // Serialize against everything in flight.
      Cycle frontier = std::max(earliest, max_commit_);
      issue = frontier;
      complete = frontier + params_.lat.of(op.cls);
      commit(complete);
      break;
    }
    default: {  // integer ALU, mul, control flow, nop
      issue = allocPort(int_ports_, earliest);
      complete = issue + params_.lat.of(op.cls);
      commit(complete);
      break;
    }
  }

  // Re-arm the issue-queue slot with this op's issue cycle.
  (*iq)[*iq_head] = issue;
  if (++*iq_head == iq->size()) *iq_head = 0;

  // --- Control flow -----------------------------------------------------
  if (isCtrlOp(op.cls)) {
    const FrontEndOutcome outcome = front_end_->predictAndTrain(op);
    if (outcome.mispredict) {
      c_mispredicts_->add();
      // Dispatch of younger ops waits for resolution + front-end refill.
      fetch_ready_ =
          std::max(fetch_ready_, complete + params_.redirect_penalty);
      last_fetch_line_ = ~Addr{0};
    }
  }

  setRegReady(op.dst, complete);
  // Record this op's commit time in the ROB ring (the ring index for this
  // op is the slot we advanced past at dispatch).
  rob_commit_[rob_head_] = max_commit_;  // rob_head_ is always in range
  if (++rob_head_ == rob_commit_.size()) rob_head_ = 0;

  ++retired_;
}

void OooCore::warmOp(const MicroOp& op) {
  assert(op.cls != OpClass::kMpi && "MPI ops are handled by the runtime");
  const Addr line = lineAddr(op.pc);
  if (line != last_fetch_line_) {
    last_fetch_line_ = line;
    mem_->warmIfetch(core_id_, op.pc);
  }
  if (op.cls == OpClass::kLoad) {
    // No store-to-load forwarding during fast-forward: the store queue is a
    // timing structure, and the cache already holds the warmed line.
    mem_->warmLoad(core_id_, op.pc, op.addr);
  } else if (op.cls == OpClass::kStore) {
    mem_->warmStore(core_id_, op.pc, op.addr);
  }
  if (isCtrlOp(op.cls)) {
    const FrontEndOutcome outcome = front_end_->predictAndTrain(op);
    if (outcome.mispredict) {
      c_mispredicts_->add();
      last_fetch_line_ = ~Addr{0};
    }
  }
}

Cycle OooCore::drain() {
  const Cycle f = frontier();
  skipTo(f);
  return f;
}

void OooCore::skipTo(Cycle c) {
  if (c <= dispatch_cycle_) return;
  dispatch_cycle_ = c;
  fetch_ready_ = std::max(fetch_ready_, c);
  dispatched_this_cycle_ = 0;
}

}  // namespace bridge
