#include "core/inorder.h"

#include <algorithm>
#include <cassert>

namespace bridge {

InOrderCore::InOrderCore(unsigned core_id, const InOrderParams& params,
                         MemoryHierarchy* mem, StatRegistry* stats,
                         const std::string& stat_prefix)
    : core_id_(core_id),
      params_(params),
      mem_(mem),
      front_end_(makeRocketFrontEnd(params.bht_entries, params.btb_entries,
                                    params.ras_depth)),
      store_buffer_(std::max(1u, params.store_buffer), 0) {
  assert(mem != nullptr);
  assert(stats != nullptr);
  assert(params.issue_width >= 1 && params.issue_width <= 4);
  c_mispredicts_ = &stats->counter(stat_prefix + ".mispredicts");
  c_load_stalls_ = &stats->counter(stat_prefix + ".load_use_stalls");
}

Cycle InOrderCore::regReady(Reg r) const {
  if (r == kNoReg || r == kZeroReg) return 0;
  return reg_ready_[r];
}

void InOrderCore::setRegReady(Reg r, Cycle c) {
  if (r == kNoReg || r == kZeroReg) return;
  reg_ready_[r] = c;
}

void InOrderCore::chargeFetch(const MicroOp& op) {
  const Addr line = lineAddr(op.pc);
  if (line == last_fetch_line_) return;
  last_fetch_line_ = line;
  const MemAccess f = mem_->ifetch(core_id_, op.pc, cur_cycle_);
  if (!f.l1_hit) {
    // I-cache miss: the front end runs dry until the line returns.
    fetch_ready_ = std::max(fetch_ready_, f.complete);
  }
}

void InOrderCore::consume(const MicroOp& op) {
  assert(op.cls != OpClass::kMpi && "MPI ops are handled by the runtime");

  chargeFetch(op);

  // Earliest issue by program order and front-end supply.
  Cycle issue = std::max(cur_cycle_, fetch_ready_);

  // Source operand readiness (stall-at-use).
  const Cycle src_ready = std::max(
      {regReady(op.src0), regReady(op.src1), regReady(op.src2)});
  if (src_ready > issue) {
    if (isMemOp(op.cls) || src_ready > issue + 1) c_load_stalls_->add();
    issue = src_ready;
  }

  // Issue-slot accounting: a new cycle resets the group.
  if (issue > cur_cycle_) {
    issued_this_cycle_ = 0;
    mem_issued_this_cycle_ = false;
    group_size_ = 0;
  }
  // Dual-issue constraints: width, one memory op per cycle, no RAW inside
  // the group.
  bool raw_in_group = false;
  for (unsigned i = 0; i < group_size_; ++i) {
    const Reg d = group_dsts_[i];
    if (d != kNoReg && d != kZeroReg &&
        (d == op.src0 || d == op.src1 || d == op.src2)) {
      raw_in_group = true;
      break;
    }
  }
  if (issued_this_cycle_ >= params_.issue_width || raw_in_group ||
      (isMemOp(op.cls) && mem_issued_this_cycle_)) {
    ++issue;
    issued_this_cycle_ = 0;
    mem_issued_this_cycle_ = false;
    group_size_ = 0;
  }

  // Structural hazards: unpipelined divide/sqrt units.
  if (op.cls == OpClass::kIntDiv) {
    issue = std::max(issue, div_free_);
  } else if (op.cls == OpClass::kFpDiv || op.cls == OpClass::kFpSqrt) {
    issue = std::max(issue, fdiv_free_);
  }

  // Execute.
  Cycle complete = issue + params_.lat.of(op.cls);
  switch (op.cls) {
    case OpClass::kLoad: {
      const MemAccess a = mem_->load(core_id_, op.pc, op.addr, issue);
      complete = a.complete;
      break;
    }
    case OpClass::kStore: {
      // Posted store: occupies a store buffer slot until it retires into
      // the L1; issue stalls only when the buffer is full.
      const Cycle slot_free = store_buffer_[sb_head_];
      if (slot_free > issue) issue = slot_free;
      const MemAccess a = mem_->store(core_id_, op.pc, op.addr, issue);
      store_buffer_[sb_head_] = a.complete;
      // Conditional wrap: cheaper than the modulo in this per-store path.
      if (++sb_head_ == store_buffer_.size()) sb_head_ = 0;
      complete = issue + params_.lat.of(op.cls);
      break;
    }
    case OpClass::kIntDiv:
      div_free_ = complete;
      break;
    case OpClass::kFpDiv:
    case OpClass::kFpSqrt:
      fdiv_free_ = complete;
      break;
    case OpClass::kFence: {
      // Serialize: wait for every prior completion and drain stores.
      Cycle frontier = std::max(issue, max_complete_);
      for (const Cycle c : store_buffer_) frontier = std::max(frontier, c);
      complete = frontier + params_.lat.of(op.cls);
      issue = frontier;
      break;
    }
    default:
      break;
  }

  // Control flow: consult the front end; mispredicts redirect fetch after
  // the branch resolves in execute.
  if (isCtrlOp(op.cls)) {
    const FrontEndOutcome outcome = front_end_->predictAndTrain(op);
    if (outcome.mispredict) {
      c_mispredicts_->add();
      fetch_ready_ =
          std::max(fetch_ready_, complete + params_.redirectPenalty());
      // The redirect also re-fetches the target line.
      last_fetch_line_ = ~Addr{0};
    }
  }

  setRegReady(op.dst, complete);
  max_complete_ = std::max(max_complete_, complete);

  // Account the slot.
  if (issue > cur_cycle_) {
    cur_cycle_ = issue;
    issued_this_cycle_ = 0;
    mem_issued_this_cycle_ = false;
    group_size_ = 0;
  }
  ++issued_this_cycle_;
  if (isMemOp(op.cls)) mem_issued_this_cycle_ = true;
  if (group_size_ < group_dsts_.size()) group_dsts_[group_size_++] = op.dst;
  ++retired_;
}

void InOrderCore::warmOp(const MicroOp& op) {
  assert(op.cls != OpClass::kMpi && "MPI ops are handled by the runtime");
  // Fetch-line dedup shares last_fetch_line_ with consume() so the warm and
  // detailed streams see one continuous fetch sequence.
  const Addr line = lineAddr(op.pc);
  if (line != last_fetch_line_) {
    last_fetch_line_ = line;
    mem_->warmIfetch(core_id_, op.pc);
  }
  if (op.cls == OpClass::kLoad) {
    mem_->warmLoad(core_id_, op.pc, op.addr);
  } else if (op.cls == OpClass::kStore) {
    mem_->warmStore(core_id_, op.pc, op.addr);
  }
  if (isCtrlOp(op.cls)) {
    const FrontEndOutcome outcome = front_end_->predictAndTrain(op);
    if (outcome.mispredict) {
      c_mispredicts_->add();
      last_fetch_line_ = ~Addr{0};
    }
  }
}

Cycle InOrderCore::frontier() const {
  Cycle frontier = std::max(cur_cycle_, max_complete_);
  for (const Cycle c : store_buffer_) frontier = std::max(frontier, c);
  return frontier;
}

Cycle InOrderCore::drain() {
  const Cycle frontier = this->frontier();
  skipTo(frontier);
  return frontier;
}

void InOrderCore::skipTo(Cycle c) {
  if (c <= cur_cycle_) return;
  cur_cycle_ = c;
  fetch_ready_ = std::max(fetch_ready_, c);
  issued_this_cycle_ = 0;
  mem_issued_this_cycle_ = false;
  group_size_ = 0;
}

}  // namespace bridge
