// Out-of-order core timing model (interval style).
//
// Covers the Small/Medium/Large BOOM configurations of Table 4 and the
// SOPHON SG2042 silicon reference. The model is a single-pass scheduler
// that tracks the resources the paper tunes:
//  * fetch width + fetch buffer, decode width (dispatch bandwidth);
//  * reorder buffer occupancy (dispatch stalls when the window is full;
//    entries free in order at commit);
//  * per-class issue queues with bounded issue width (int / mem / fp);
//  * load/store queues with store-to-load forwarding;
//  * TAGE+BTB+RAS front end; a mispredict redirects dispatch after the
//    branch resolves plus the front-end refill penalty;
//  * unpipelined divide/sqrt units.
//
// Wrong-path execution is not simulated (standard for one-pass models); its
// cost is folded into the redirect penalty.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "branch/composite.h"
#include "cache/hierarchy.h"
#include "sim/calendar.h"
#include "core/core.h"
#include "sim/stats.h"

namespace bridge {

struct OooParams {
  unsigned fetch_width = 8;
  unsigned decode_width = 3;   // dispatch/commit bandwidth
  unsigned fetch_buffer = 24;
  unsigned rob = 96;
  unsigned int_issue = 3;      // integer issue ports
  unsigned mem_issue = 1;      // memory issue ports (AGU/cache ports)
  unsigned fp_issue = 1;       // FP issue ports
  // Issue-queue capacities (paper Table 5: "16-entry 1-issue memory queue,
  // 32-entry 3-issue integer queue, 24-entry 1-issue fp queue"). An op
  // occupies its class queue from dispatch until it issues; a full queue
  // stalls dispatch.
  unsigned int_iq = 32;
  unsigned mem_iq = 16;
  unsigned fp_iq = 24;
  unsigned ldq = 24;
  unsigned stq = 24;
  unsigned redirect_penalty = 9;  // front-end refill after a mispredict
  LatencyTable lat;
  TageConfig tage;
  unsigned btb_entries = 512;
  unsigned ras_depth = 32;
};

/// Table 4 presets.
OooParams smallBoomParams();
OooParams mediumBoomParams();
OooParams largeBoomParams();

class OooCore final : public CoreModel {
 public:
  OooCore(unsigned core_id, const OooParams& params, MemoryHierarchy* mem,
          StatRegistry* stats, const std::string& stat_prefix);

  void consume(const MicroOp& op) override;
  void warmOp(const MicroOp& op) override;

  /// Scheduling clock for multi-core co-simulation. Dispatch alone would
  /// lag the cycles at which this core actually charges shared memory
  /// resources by up to a ROB's worth of latency, letting co-scheduled
  /// cores interleave accesses with large artificial skew (which
  /// self-amplifies through next-free resource state). Reporting the
  /// memory-charge frontier keeps cross-core charges causally aligned.
  Cycle now() const override {
    return std::max(dispatch_cycle_, mem_frontier_);
  }
  Cycle frontier() const override {
    return std::max(dispatch_cycle_, max_commit_);
  }
  Cycle drain() override;
  void skipTo(Cycle c) override;
  std::uint64_t retired() const override { return retired_; }

  const FrontEndStats& frontEndStats() const { return front_end_->stats(); }

 private:
  Cycle regReady(Reg r) const;
  void setRegReady(Reg r, Cycle c);
  Cycle allocPort(std::vector<BusyCalendar>& ports, Cycle earliest);
  Cycle allocQueueSlot(std::vector<Cycle>& ring, std::size_t& head,
                       Cycle earliest);
  void chargeFetch(const MicroOp& op);
  Cycle commit(Cycle complete);

  unsigned core_id_;
  OooParams params_;
  MemoryHierarchy* mem_;
  std::unique_ptr<CompositeFrontEnd> front_end_;

  std::array<Cycle, kNumArchRegs> reg_ready_{};

  // Dispatch bookkeeping.
  Cycle dispatch_cycle_ = 0;       // cycle of the next dispatch group
  unsigned dispatched_this_cycle_ = 0;
  Cycle fetch_ready_ = 0;
  Addr last_fetch_line_ = ~Addr{0};

  // ROB occupancy: ring of commit cycles, one per in-flight micro-op.
  std::vector<Cycle> rob_commit_;
  std::size_t rob_head_ = 0;
  // In-order commit frontier with commit-width modeling.
  Cycle last_commit_cycle_ = 0;
  unsigned committed_this_cycle_ = 0;

  // Issue ports: per class, a busy calendar of issue slots. An op holds a
  // port only in the cycle it issues; ops waiting on operands in the issue
  // queue do not block the port (unlike a scalar next-free cursor).
  std::vector<BusyCalendar> int_ports_;
  std::vector<BusyCalendar> mem_ports_;
  std::vector<BusyCalendar> fp_ports_;

  // Issue queues: rings of issue cycles; the slot an op takes frees when
  // the op `size` entries earlier issued.
  std::vector<Cycle> int_iq_;
  std::size_t int_iq_head_ = 0;
  std::vector<Cycle> mem_iq_;
  std::size_t mem_iq_head_ = 0;
  std::vector<Cycle> fp_iq_;
  std::size_t fp_iq_head_ = 0;

  // Load/store queues: rings of entry-free cycles.
  std::vector<Cycle> ldq_;
  std::size_t ldq_head_ = 0;
  std::vector<Cycle> stq_;
  std::size_t stq_head_ = 0;

  // Pending stores for store-to-load forwarding: line addr -> data ready.
  // An entry forwards only while the store still sits in the store queue
  // (issue < retire); after retirement the cache is authoritative.
  struct PendingStore {
    Addr line = 0;
    Cycle data_ready = 0;
    Cycle retire = 0;
  };
  std::vector<PendingStore> pending_stores_;  // small ring
  std::size_t pending_head_ = 0;

  Cycle div_free_ = 0;
  Cycle fdiv_free_ = 0;
  Cycle mem_frontier_ = 0;  // latest cycle we touched the memory system

  std::uint64_t retired_ = 0;
  Cycle max_commit_ = 0;

  Counter* c_mispredicts_;
  Counter* c_rob_stalls_;
};

}  // namespace bridge
