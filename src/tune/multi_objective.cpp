#include "tune/multi_objective.h"

#include <algorithm>
#include <stdexcept>

namespace bridge {

namespace {

FidelityOptions sideOptions(const BiPlatformOptions& opts, PlatformId model,
                            PlatformId reference) {
  FidelityOptions f;
  f.model = model;
  f.reference = reference;
  f.kernels = opts.kernels;
  f.scale = opts.scale;
  f.seed = opts.seed;
  f.weights = opts.weights;
  return f;
}

}  // namespace

BiPlatformObjective::BiPlatformObjective(const BiPlatformOptions& options,
                                         const SweepOptions& sweep)
    : options_(options),
      rocket_(sideOptions(options, options.rocket_model,
                          options.rocket_reference),
              sweep),
      boom_(sideOptions(options, options.boom_model, options.boom_reference),
            sweep) {}

FidelityObjective& BiPlatformObjective::objective(std::size_t side) {
  if (side == 0) return rocket_;
  if (side == 1) return boom_;
  throw std::out_of_range("BiPlatformObjective side must be 0 or 1");
}

std::vector<double> BiPlatformObjective::scoreVector(const Config& overrides) {
  return {evaluateSide(0, overrides).error, evaluateSide(1, overrides).error};
}

FidelityEval BiPlatformObjective::evaluateSide(std::size_t side,
                                               const Config& overrides) {
  const std::string_view ns = side == 0 ? kRocketNamespace : kBoomNamespace;
  return objective(side).evaluate(namespacedOverrides(overrides, ns));
}

FidelityEval BiPlatformObjective::evaluateSideOn(std::size_t side,
                                                 PlatformId model,
                                                 const Config& plain_overrides) {
  return objective(side).evaluateOn(model, plain_overrides);
}

std::string BiPlatformObjective::policySignature() const {
  return rocket_.policySignature();  // both sides share SweepOptions
}

std::vector<std::string> BiPlatformObjective::skippedComponents() const {
  std::vector<std::string> out;
  for (const std::string& s : rocket_.skippedComponents()) {
    out.push_back("rocket:" + s);
  }
  for (const std::string& s : boom_.skippedComponents()) {
    out.push_back("boom:" + s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string WeightedSumObjective::policySignature() const {
  return multi_->policySignature();
}

std::vector<std::string> WeightedSumObjective::skippedComponents() const {
  return multi_->skippedComponents();
}

WeightedSumObjective::WeightedSumObjective(MultiObjective* multi,
                                           std::vector<double> weights)
    : multi_(multi), weights_(std::move(weights)) {
  if (weights_.size() != multi_->arity()) {
    throw std::invalid_argument(
        "weighted-sum weights must match the objective arity");
  }
  double total = 0.0;
  for (const double w : weights_) {
    if (w < 0.0) {
      throw std::invalid_argument("weighted-sum weights must be >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted-sum weights must sum to > 0");
  }
}

double WeightedSumObjective::score(const Config& overrides) {
  const std::vector<double> errors = multi_->scoreVector(overrides);
  double sum = 0.0;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    sum += weights_[i] * errors[i];
  }
  return sum;
}

}  // namespace bridge
