#include "tune/dist_objective.h"

#include <stdexcept>
#include <utility>

#include "sim/hwvar/dist_stats.h"

namespace bridge {

std::string_view distributionDistanceName(DistributionDistance d) {
  switch (d) {
    case DistributionDistance::kKs: return "ks";
    case DistributionDistance::kQuantile: return "quantile";
  }
  return "?";
}

DistributionObjective::DistributionObjective(
    const DistributionOptions& options, const SweepOptions& sweep)
    : options_(options), engine_(sweep) {
  if (options_.kernels.empty()) options_.kernels = defaultProbeKernels();
  for (const std::string& k : options_.kernels) {
    microbenchInfo(k);  // throws std::out_of_range for an unknown kernel
  }
  if (options_.replicas == 0) {
    throw std::invalid_argument("DistributionOptions.replicas must be >= 1");
  }
  std::string why;
  if (!options_.hwvar.validate(&why)) {
    throw std::invalid_argument("DistributionOptions.hwvar: " + why);
  }
}

std::vector<JobSpec> DistributionObjective::replicaJobs(
    PlatformId platform, const std::string& kernel,
    const Config& overrides) const {
  std::vector<JobSpec> jobs;
  jobs.reserve(options_.replicas);
  for (unsigned r = 0; r < options_.replicas; ++r) {
    JobSpec j = microbenchJob(platform, kernel, options_.scale, options_.seed);
    j.overrides = overrides;
    // Pinned last so candidate overrides can never un-pin the replica's
    // variability: each replica runs under its own derived hwvar seed and
    // therefore its own cache fingerprint.
    HwVarParams p = options_.hwvar;
    p.seed = hwvarReplicaSeed(options_.hwvar.seed, r);
    applyHwVarOverrides(&j.overrides, p);
    j.label += "#r" + std::to_string(r);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

const std::vector<std::vector<double>>&
DistributionObjective::referenceSamples() {
  if (!reference_samples_.empty()) return reference_samples_;
  std::vector<JobSpec> jobs;
  jobs.reserve(options_.kernels.size() * options_.replicas);
  for (const std::string& k : options_.kernels) {
    std::vector<JobSpec> batch = replicaJobs(options_.reference, k, Config{});
    for (JobSpec& j : batch) jobs.push_back(std::move(j));
  }
  const std::vector<SweepResult> results = engine_.run(jobs);
  reference_samples_.resize(options_.kernels.size());
  std::size_t j = 0;
  for (std::size_t i = 0; i < options_.kernels.size(); ++i) {
    std::vector<double> samples;
    for (unsigned r = 0; r < options_.replicas; ++r, ++j) {
      // A failed reference replica is dropped; the comparison floor is
      // min_samples, below which every candidate scores the penalty for
      // this kernel (there is nothing to compare against).
      if (results[j].ok()) samples.push_back(results[j].result.seconds);
    }
    if (samples.size() < options_.min_samples) {
      skipped_.insert(options_.kernels[i] + "@" +
                      std::string(platformName(options_.reference)));
    }
    reference_samples_[i] = sortedSamples(std::move(samples));
  }
  return reference_samples_;
}

DistributionEval DistributionObjective::evaluate(const Config& overrides) {
  const std::vector<std::vector<double>>& ref = referenceSamples();
  const bool strict = engine_.options().failures.strict;

  std::vector<JobSpec> jobs;
  jobs.reserve(options_.kernels.size() * options_.replicas);
  for (const std::string& k : options_.kernels) {
    std::vector<JobSpec> batch = replicaJobs(options_.model, k, overrides);
    for (JobSpec& j : batch) jobs.push_back(std::move(j));
  }
  const std::vector<SweepResult> results = engine_.run(jobs);

  DistributionEval eval;
  std::size_t j = 0;
  for (std::size_t i = 0; i < options_.kernels.size(); ++i) {
    KernelDistributionFit fit;
    fit.kernel = options_.kernels[i];
    fit.ref_seconds = ref[i];
    std::vector<double> samples;
    for (unsigned r = 0; r < options_.replicas; ++r, ++j) {
      if (results[j].ok()) samples.push_back(results[j].result.seconds);
    }
    fit.sim_seconds = sortedSamples(std::move(samples));

    if (fit.sim_seconds.size() < options_.min_samples ||
        fit.ref_seconds.size() < options_.min_samples) {
      if (strict) {
        throw std::runtime_error(
            "distribution probe " + fit.kernel +
            " has too few surviving replicas for a comparison");
      }
      fit.skipped = true;
      fit.distance = options_.failure_penalty;
      const std::string label =
          fit.kernel + "@" + std::string(platformName(options_.model));
      eval.skipped.push_back(label);
      skipped_.insert(label);
    } else {
      fit.distance = options_.distance == DistributionDistance::kKs
                         ? ksDistance(fit.sim_seconds, fit.ref_seconds)
                         : quantileDistance(fit.sim_seconds, fit.ref_seconds);
    }
    eval.error += fit.distance;
    eval.kernels.push_back(std::move(fit));
  }
  eval.error /= static_cast<double>(options_.kernels.size());
  return eval;
}

double DistributionObjective::score(const Config& overrides) {
  return evaluate(overrides).error;
}

std::string DistributionObjective::policySignature() const {
  return engine_.policySignature();
}

std::vector<std::string> DistributionObjective::skippedComponents() const {
  return {skipped_.begin(), skipped_.end()};  // std::set: already sorted
}

}  // namespace bridge
