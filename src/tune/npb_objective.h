// NPB-driven tuning objective (DESIGN.md §5e).
//
// The paper tunes its FireSim models with the MicroBench suite (§4) but
// *reports* fidelity on NPB at 1 and 4 ranks (§5, Figs. 3-4) — so the
// MicroBench objective optimizes a proxy, not the headline metric.
// NpbObjective closes that gap: a MultiObjective whose components are the
// per-benchmark, per-rank-count log-space errors of a candidate against
// the simulated-silicon references (see harness/npb_reference.h).
//
// Component structure is what couples the combined space. Each component
// (one NpbGridCell, e.g. "CG/4r") is the *mean* of the rocket-side and
// boom-side errors |ln(hw_seconds / sim_seconds)| for that cell — so every
// component depends on BOTH the "rocket/..." and "boom/..." namespaces of
// combinedPlatformSpace(). Under the separable BiPlatformObjective a
// rocket knob can never trade off against a boom knob and the Pareto front
// collapses to one ideal point; here the shared DRAM/bus/L2-bank knobs
// pull different benchmarks in different directions on both sides at once,
// so the front is a genuine trade-off set (tests/test_npb_objective.cpp
// asserts both the coupling and the non-degenerate front).
//
// EP is deliberately excluded from the tuned set and kept as the held-out
// validation workload: after tuning on CG/IS/MG, heldOut() scores the
// candidate on EP — the generalization check Chatzopoulos et al. and
// Kodama et al. both argue microbenchmark-tuned models need.
//
// All candidate and reference runs go through the cached SweepEngine, so
// revisited candidates (annealing walks revisit constantly) are served
// from the persistent result cache, and a checkpoint-resumed tune replays
// at cache speed.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "harness/figures.h"
#include "harness/npb_reference.h"
#include "tune/multi_objective.h"
#include "tune/param_space.h"

namespace bridge {

struct NpbObjectiveOptions {
  /// Base models the namespaced overrides are applied to. The defaults
  /// make combinedStartPoint(space, BananaPiSim, MilkVSim) reproduce the
  /// MicroBench-tuned models exactly: every knob separating BananaPiSim
  /// from Rocket1 lives inside rocketMemorySpace().
  PlatformId rocket_model = PlatformId::kRocket1;
  PlatformId rocket_reference = PlatformId::kBananaPiHw;
  PlatformId boom_model = PlatformId::kMilkVSim;
  PlatformId boom_reference = PlatformId::kMilkVHw;
  /// Tuned benchmark set (EP is held out by default, matching the paper's
  /// finding that EP is compute-bound and nearly model-insensitive).
  std::vector<NpbBenchmark> benchmarks = {NpbBenchmark::kCG, NpbBenchmark::kIS,
                                          NpbBenchmark::kMG};
  std::vector<int> rank_counts = {1, 4};
  NpbBenchmark held_out = NpbBenchmark::kEP;
  /// Problem class for every probe; the small tuning class by default.
  NpbConfig run = npbTuningConfig();
  /// Degraded mode (DESIGN.md §5f): a side whose candidate or reference
  /// job failed is scored as this many log-error units instead of aborting
  /// the evaluation. Only reached under a non-strict engine policy.
  double failure_penalty = 4.0;
};

/// One side's hardware-vs-candidate comparison for one grid cell.
struct NpbSideError {
  double hw_seconds = 0.0;
  double sim_seconds = 0.0;
  double rel = 0.0;      // hw_seconds / sim_seconds (1.0 = perfect)
  double log_err = 0.0;  // |ln(rel)| (= failure_penalty when skipped)
  bool skipped = false;  // scored as the penalty, not a real comparison
};

struct NpbComponentError {
  NpbGridCell cell;
  NpbSideError rocket;
  NpbSideError boom;
  double error = 0.0;  // mean of the two sides' log_err — the tuner's view
};

struct NpbEval {
  std::vector<NpbComponentError> components;  // grid order
  double error = 0.0;  // mean over components (the scalar summary)
  /// Labels of the sides scored with the penalty this evaluation
  /// (e.g. "CG/1r@Rocket1"), in grid order, rocket side first.
  std::vector<std::string> skipped;

  /// The per-component errors alone — what scoreVector() returns.
  std::vector<double> errorVector() const;
};

class NpbObjective : public MultiObjective {
 public:
  explicit NpbObjective(const NpbObjectiveOptions& options,
                        const SweepOptions& sweep = {});

  /// benchmarks x rank_counts, benchmark-major — stable across calls and
  /// processes (the checkpoint and golden snapshot identity depends on it).
  std::size_t arity() const override { return grid_.size(); }
  const std::vector<NpbGridCell>& components() const { return grid_; }

  /// Error vector of a candidate in combinedPlatformSpace() coordinates.
  std::vector<double> scoreVector(const Config& combined) override;

  /// Full breakdown of the same evaluation.
  NpbEval evaluate(const Config& combined);

  /// Tuned-set breakdown of arbitrary per-side models with plain
  /// (un-namespaced) overrides — how fixed baselines (the hand-built
  /// platforms, the MicroBench-tuned models) are scored against the front.
  NpbEval evaluateModels(PlatformId rocket_model, PlatformId boom_model,
                         const Config& rocket_plain = {},
                         const Config& boom_plain = {});

  /// Held-out validation: the same error structure on options().held_out
  /// (EP) at every tuned rank count — never part of scoreVector(), so the
  /// tuner cannot fit it.
  NpbEval heldOut(const Config& combined);
  NpbEval heldOutModels(PlatformId rocket_model, PlatformId boom_model,
                        const Config& rocket_plain = {},
                        const Config& boom_plain = {});

  const NpbObjectiveOptions& options() const { return options_; }
  const SweepEngine& engine() const { return engine_; }

  /// MultiObjective interface: the engine's failure policy + fault plan,
  /// and every side label scored with the penalty so far.
  std::string policySignature() const override;
  std::vector<std::string> skippedComponents() const override;

 private:
  NpbEval evaluateGrid(const std::vector<NpbGridCell>& grid,
                       const std::vector<double>& rocket_ref,
                       const std::vector<double>& boom_ref,
                       PlatformId rocket_model, PlatformId boom_model,
                       const Config& rocket_overrides,
                       const Config& boom_overrides);
  /// Reference seconds for `grid` on both silicon analogs, simulated once
  /// per objective and reused (refs[0] = rocket side, refs[1] = boom).
  const std::vector<double>& referenceSeconds(
      const std::vector<NpbGridCell>& grid, std::size_t side,
      std::vector<double>* cache_slot);

  NpbObjectiveOptions options_;
  SweepEngine engine_;
  std::vector<NpbGridCell> grid_;       // tuned set
  std::vector<NpbGridCell> held_grid_;  // held-out benchmark cells
  std::vector<double> tuned_ref_[2];
  std::vector<double> held_ref_[2];
  std::set<std::string> skipped_;  // accumulated penalty labels
};

/// The NPB error-vector table for the golden regression harness
/// (tests/golden/npb_errors.json): one series per baseline model pair —
/// the stock bases (Rocket1 + SmallBoom) and the MicroBench-tuned pair
/// (BananaPiSim + MilkVSim) — with one point per tuned-set component plus
/// the held-out cells. Any timing-model or objective-definition drift
/// moves a point and fails `ctest -L golden`.
Figure npbErrorFigure(const NpbObjectiveOptions& options = {},
                      const SweepOptions& sweep = {});

}  // namespace bridge
