// Fidelity objective: how far a candidate simulation model is from a
// silicon reference (DESIGN.md §5c).
//
// A candidate is scored by running a probe-kernel set on the candidate
// model and on the hardware reference (reference runs happen once and are
// reused), computing the paper's metric — relative speedup = hw_time /
// sim_time, perfect match 1.0 — per kernel, and aggregating into a single
// error: the weighted mean of |ln(relative speedup)| (log-space MAE, so
// "sim 2x too fast" and "sim 2x too slow" are equally wrong and errors
// compose multiplicatively). Per-category weights let a tune emphasize the
// categories the paper found hardest (memory).
//
// All kernel runs go through the SweepEngine: one evaluation fans out
// across worker threads, and revisited candidates are served from the
// persistent result cache — which is what makes a checkpoint-resumed tune
// and a 200-evaluation budget affordable.
#pragma once

#include <array>
#include <set>
#include <string>
#include <vector>

#include "sweep/sweep.h"
#include "workloads/microbench.h"

namespace bridge {

/// Anything a Tuner can minimize: candidate overrides -> error (lower is
/// better). Implementations must be deterministic in their inputs.
class Objective {
 public:
  virtual ~Objective() = default;
  virtual double score(const Config& overrides) = 0;

  /// Canonical failure-policy description of whatever engine(s) run the
  /// probes ("" for pure objectives). Tuner checkpoints bind to it: a
  /// checkpoint written under one policy refuses to resume under another,
  /// because degraded scores are only comparable under the same policy.
  virtual std::string policySignature() const { return {}; }

  /// Components this objective has scored with the failure penalty so far
  /// (sorted, deduplicated) — recorded in tuner checkpoints so a degraded
  /// campaign is honest about which probes its scores exclude.
  virtual std::vector<std::string> skippedComponents() const { return {}; }
};

inline constexpr std::size_t kMicrobenchCategoryCount = 5;

struct FidelityOptions {
  PlatformId model = PlatformId::kRocket1;         // the side being tuned
  PlatformId reference = PlatformId::kBananaPiHw;  // the silicon side
  /// Probe kernels; empty selects defaultProbeKernels().
  std::vector<std::string> kernels;
  double scale = 0.15;
  std::uint64_t seed = 1;
  /// Per-category weights, indexed by MicrobenchCategory.
  std::array<double, kMicrobenchCategoryCount> weights = {1, 1, 1, 1, 1};
  /// Degraded mode (DESIGN.md §5f): a probe whose job failed (or whose
  /// reference did) is scored as this many log-error units instead of
  /// aborting the evaluation — large enough that losing a probe always
  /// hurts, finite so one bad kernel cannot veto a whole campaign. Only
  /// reached under a non-strict engine policy; strict keeps the throw.
  double failure_penalty = 4.0;
};

struct KernelFidelity {
  std::string kernel;
  MicrobenchCategory category = MicrobenchCategory::kControlFlow;
  double hw_seconds = 0.0;
  double sim_seconds = 0.0;
  double rel = 0.0;      // hw_seconds / sim_seconds (1.0 = perfect)
  double log_err = 0.0;  // |ln(rel)| (= failure_penalty when skipped)
  bool skipped = false;  // scored as the penalty, not a real comparison
};

struct FidelityEval {
  double error = 0.0;  // weighted log-space MAE over all probes
  /// Unweighted mean |ln(rel)| per category; quiet_NaN-free: categories with
  /// no probe kernel report 0 and count[] = 0.
  std::array<double, kMicrobenchCategoryCount> category_error = {};
  std::array<unsigned, kMicrobenchCategoryCount> category_count = {};
  std::vector<KernelFidelity> kernels;
  /// Labels of the probes scored with the penalty this evaluation
  /// (e.g. "MM@Rocket1"), in probe order.
  std::vector<std::string> skipped;
};

/// Two probes per MicroBench category (control flow, execution, data,
/// cache, memory) — the cheap stand-in for the full 39-kernel suite that
/// the paper's per-category tuning argument needs.
const std::vector<std::string>& defaultProbeKernels();

class FidelityObjective : public Objective {
 public:
  explicit FidelityObjective(const FidelityOptions& options,
                             const SweepOptions& sweep = {});

  /// Objective interface: evaluate `overrides` on options().model.
  double score(const Config& overrides) override;

  /// Full per-kernel/per-category breakdown on options().model.
  FidelityEval evaluate(const Config& overrides);

  /// Same breakdown for an arbitrary model platform (the tuning-loop
  /// example scores the paper's Rocket1 -> BananaPiSim ladder with this).
  FidelityEval evaluateOn(PlatformId model, const Config& overrides);

  const FidelityOptions& options() const { return options_; }
  const SweepEngine& engine() const { return engine_; }

  /// Objective interface: the engine's failure policy + fault plan, and
  /// the accumulated penalty-scored probe labels.
  std::string policySignature() const override;
  std::vector<std::string> skippedComponents() const override;

 private:
  /// Reference (hardware) seconds per probe kernel, simulated on first use.
  /// Under a non-strict policy a failed reference probe records 0.0 (a
  /// sentinel evaluateOn treats as "skip with penalty").
  const std::vector<double>& referenceSeconds();

  FidelityOptions options_;
  SweepEngine engine_;
  std::vector<double> reference_seconds_;  // parallel to options_.kernels
  std::set<std::string> skipped_;          // accumulated penalty labels
};

}  // namespace bridge
