#include "tune/tuner.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/jsonio.h"

namespace fs = std::filesystem;

namespace bridge {

namespace {

// v2 (PR 5): adds the objective's failure-policy signature and skip set.
constexpr std::uint64_t kCheckpointVersion = 2;

struct CheckpointData {
  std::uint64_t version = 0;
  std::string strategy;
  std::string space;
  std::uint64_t seed = 0;
  std::uint64_t seed_probes = 0;
  std::string policy;
  std::vector<std::string> skipped;
  std::vector<TuneEval> evals;
};

std::string checkpointToJson(const CheckpointData& cp) {
  std::string out = "{\n";
  out += "  \"version\": " + std::to_string(cp.version) + ",\n";
  out += "  \"strategy\": ";
  jsonio::appendEscaped(&out, cp.strategy);
  out += ",\n  \"space\": ";
  jsonio::appendEscaped(&out, cp.space);
  out += ",\n  \"seed\": " + std::to_string(cp.seed) + ",\n";
  out += "  \"seed_probes\": " + std::to_string(cp.seed_probes) + ",\n";
  out += "  \"policy\": ";
  jsonio::appendEscaped(&out, cp.policy);
  out += ",\n  \"skipped\": [";
  for (std::size_t i = 0; i < cp.skipped.size(); ++i) {
    if (i != 0) out += ", ";
    jsonio::appendEscaped(&out, cp.skipped[i]);
  }
  out += "],\n";
  out += "  \"evals\": [";
  for (std::size_t i = 0; i < cp.evals.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"point\": [";
    for (std::size_t j = 0; j < cp.evals[i].point.size(); ++j) {
      if (j != 0) out += ", ";
      out += std::to_string(cp.evals[i].point[j]);
    }
    out += "], \"error\": " + jsonio::formatDouble(cp.evals[i].error) + "}";
  }
  out += cp.evals.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::optional<CheckpointData> checkpointFromJson(const std::string& json) {
  CheckpointData cp;
  jsonio::Parser p(json);
  const bool ok =
      p.parseObject([&](const std::string& key, jsonio::Parser& v) {
        if (key == "version") return v.parseUint64(&cp.version);
        if (key == "strategy") return v.parseString(&cp.strategy);
        if (key == "space") return v.parseString(&cp.space);
        if (key == "seed") return v.parseUint64(&cp.seed);
        if (key == "seed_probes") return v.parseUint64(&cp.seed_probes);
        if (key == "policy") return v.parseString(&cp.policy);
        if (key == "skipped") {
          return v.parseArray([&](jsonio::Parser& sv) {
            std::string s;
            if (!sv.parseString(&s)) return false;
            cp.skipped.push_back(std::move(s));
            return true;
          });
        }
        if (key == "evals") {
          return v.parseArray([&](jsonio::Parser& ev) {
            TuneEval e;
            const bool entry_ok =
                ev.parseObject([&](const std::string& f, jsonio::Parser& fv) {
                  if (f == "point") {
                    return fv.parseArray([&](jsonio::Parser& iv) {
                      std::uint64_t idx = 0;
                      if (!iv.parseUint64(&idx)) return false;
                      e.point.push_back(static_cast<std::size_t>(idx));
                      return true;
                    });
                  }
                  if (f == "error") return fv.parseDouble(&e.error);
                  return false;
                });
            if (!entry_ok) return false;
            cp.evals.push_back(std::move(e));
            return true;
          });
        }
        return false;
      });
  if (!ok || !p.atEnd()) return std::nullopt;
  return cp;
}

}  // namespace

Tuner::Tuner(const ParamSpace& space, Objective* objective,
             TuneOptions options)
    : space_(space), objective_(objective), options_(std::move(options)) {
  if (options_.budget == 0) options_.budget = 1;
}

void Tuner::loadCheckpoint() {
  if (options_.checkpoint.empty()) return;
  std::ifstream in(options_.checkpoint);
  if (!in) return;  // nothing to resume
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<CheckpointData> cp = checkpointFromJson(buf.str());
  if (!cp) {
    throw std::runtime_error("tune checkpoint is corrupt: " +
                             options_.checkpoint);
  }
  if (cp->version != kCheckpointVersion || cp->strategy != name() ||
      cp->space != space_.signature() || cp->seed != options_.seed ||
      cp->seed_probes != options_.seed_probes ||
      cp->policy != objective_->policySignature()) {
    throw std::runtime_error(
        "tune checkpoint mismatch (different space/strategy/seed/policy): " +
        options_.checkpoint);
  }
  checkpoint_skipped_.insert(cp->skipped.begin(), cp->skipped.end());
  for (TuneEval& e : cp->evals) {
    if (!space_.valid(e.point)) {
      throw std::runtime_error("tune checkpoint holds an out-of-range point");
    }
    ledger_.emplace(space_.pointKey(e.point), e.error);
    ledger_order_.push_back(std::move(e));
  }
}

std::vector<std::string> Tuner::skippedUnion() const {
  std::set<std::string> all = checkpoint_skipped_;
  const std::vector<std::string> live = objective_->skippedComponents();
  all.insert(live.begin(), live.end());
  return {all.begin(), all.end()};
}

void Tuner::saveCheckpoint() const {
  if (options_.checkpoint.empty()) return;
  CheckpointData cp;
  cp.version = kCheckpointVersion;
  cp.strategy = std::string(name());
  cp.space = space_.signature();
  cp.seed = options_.seed;
  cp.seed_probes = options_.seed_probes;
  cp.policy = objective_->policySignature();
  // Mid-campaign faults must not invalidate resume: the skip set rides
  // along (union of what the file already recorded and what this process
  // has seen), so a resumed run still knows which components its replayed
  // errors exclude.
  cp.skipped = skippedUnion();
  cp.evals = ledger_order_;

  const fs::path path(options_.checkpoint);
  std::error_code ec;
  if (path.has_parent_path()) fs::create_directories(path.parent_path(), ec);
  const std::string tmp =
      options_.checkpoint + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write tune checkpoint: " + tmp);
    }
    out << checkpointToJson(cp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("cannot publish tune checkpoint: " +
                             options_.checkpoint);
  }
}

std::optional<double> Tuner::evaluate(const ParamPoint& p) {
  if (stopped_) return std::nullopt;
  if (!space_.valid(p)) {
    throw std::invalid_argument("tuner evaluated an out-of-range point");
  }
  const std::string key = space_.pointKey(p);

  // Revisit within this run: free, no budget, no trajectory entry.
  if (const auto it = seen_.find(key); it != seen_.end()) return it->second;

  double error = 0.0;
  bool fresh = false;
  if (const auto it = ledger_.find(key); it != ledger_.end()) {
    error = it->second;  // checkpoint replay — objective untouched
  } else {
    error = objective_->score(space_.overrides(p));
    fresh = true;
    ++objective_calls_;
    ledger_.emplace(key, error);
    ledger_order_.push_back(TuneEval{p, error});
    saveCheckpoint();
  }

  seen_.emplace(key, error);
  trajectory_.push_back(TuneEval{p, error});

  bool improved = false;
  if (!have_best_ || error < best_error_) {
    have_best_ = true;
    improved = true;
    best_ = p;
    best_error_ = error;
    since_improvement_ = 0;
  } else {
    ++since_improvement_;
  }
  if (options_.on_eval) {
    options_.on_eval(trajectory_.size(), trajectory_.back(), improved, fresh);
  }

  if (trajectory_.size() >= options_.budget) {
    stopped_ = true;
    stop_reason_ = "budget";
  } else if (options_.stagnation != 0 &&
             since_improvement_ >= options_.stagnation) {
    stopped_ = true;
    stop_reason_ = "stagnation";
  }
  return error;
}

TuneResult Tuner::run(const ParamPoint& start) {
  if (!space_.valid(start)) {
    throw std::invalid_argument("tune start point does not fit the space");
  }
  ledger_.clear();
  ledger_order_.clear();
  seen_.clear();
  trajectory_.clear();
  have_best_ = false;
  since_improvement_ = 0;
  objective_calls_ = 0;
  stopped_ = false;
  stop_reason_.clear();
  checkpoint_skipped_.clear();

  loadCheckpoint();
  search(start);

  TuneResult result;
  result.best = best_;
  result.best_overrides = have_best_ ? space_.overrides(best_) : Config{};
  result.best_error = best_error_;
  result.trajectory = trajectory_;
  result.evaluations = trajectory_.size();
  result.objective_calls = objective_calls_;
  result.stop_reason = stop_reason_.empty() ? "converged" : stop_reason_;
  result.skipped = skippedUnion();
  return result;
}

void CoordinateDescentTuner::search(const ParamPoint& start) {
  ParamPoint cur = start;
  std::optional<double> e = evaluate(cur);
  if (!e) return;
  double cur_err = *e;

  // Optional random-probe seeding: score options().seed_probes seeded
  // uniform points and descend from the best one seen. The probe sequence
  // depends only on the seed, so a fixed seed still yields a bit-identical
  // trajectory (and a checkpoint resume replays the probes from the
  // ledger).
  if (options().seed_probes > 0) {
    Xorshift64Star rng(options().seed);
    for (std::size_t i = 0; i < options().seed_probes && !stopped(); ++i) {
      ParamPoint probe = space().randomPoint(&rng);
      const std::optional<double> pe = evaluate(probe);
      if (!pe) return;
      if (*pe < cur_err) {
        cur = std::move(probe);
        cur_err = *pe;
      }
    }
    if (stopped()) return;
  }

  bool improved = true;
  while (improved && !stopped()) {
    improved = false;
    for (std::size_t dim = 0; dim < space().dims() && !stopped(); ++dim) {
      for (const int dir : {+1, -1}) {
        // Hill-climb along this dimension: keep stepping while it pays.
        for (;;) {
          ParamPoint next = cur;
          if (!space().step(&next, dim, dir)) break;
          const std::optional<double> ne = evaluate(next);
          if (!ne) return;
          if (*ne < cur_err) {
            cur = std::move(next);
            cur_err = *ne;
            improved = true;
          } else {
            break;
          }
        }
        if (stopped()) return;
      }
    }
  }
}

void AnnealingTuner::search(const ParamPoint& start) {
  Xorshift64Star rng(options().seed);
  ParamPoint cur = start;
  std::optional<double> e = evaluate(cur);
  if (!e) return;
  double cur_err = *e;
  double temp = options().initial_temperature;

  // On a tiny space the walk can revisit forever without consuming budget;
  // the iteration cap bounds that pathological case.
  const std::size_t max_iters = options().budget * 64 + 1024;
  for (std::size_t iter = 0; iter < max_iters && !stopped(); ++iter) {
    const std::size_t dim =
        static_cast<std::size_t>(rng.nextBelow(space().dims()));
    const int dir = rng.nextBool(0.5) ? +1 : -1;
    ParamPoint next = cur;
    if (!space().step(&next, dim, dir)) {
      temp *= options().cooling;
      continue;
    }
    const std::optional<double> ne = evaluate(next);
    if (!ne) return;
    const double delta = *ne - cur_err;
    if (delta <= 0.0 ||
        rng.nextDouble() < std::exp(-delta / std::max(temp, 1e-12))) {
      cur = std::move(next);
      cur_err = *ne;
    }
    temp *= options().cooling;
  }
}

void RandomSearchTuner::search(const ParamPoint& start) {
  Xorshift64Star rng(options().seed);
  if (!evaluate(start)) return;
  const std::size_t card = space().cardinality();
  const std::size_t max_iters = options().budget * 64 + 1024;
  for (std::size_t iter = 0;
       iter < max_iters && !stopped() && distinctEvaluations() < card;
       ++iter) {
    if (!evaluate(space().randomPoint(&rng))) return;
  }
}

std::unique_ptr<Tuner> makeTuner(std::string_view strategy,
                                 const ParamSpace& space, Objective* objective,
                                 const TuneOptions& options) {
  if (strategy == "cd" || strategy == "coordinate-descent") {
    return std::make_unique<CoordinateDescentTuner>(space, objective, options);
  }
  if (strategy == "anneal" || strategy == "annealing") {
    return std::make_unique<AnnealingTuner>(space, objective, options);
  }
  if (strategy == "random" || strategy == "random-search") {
    return std::make_unique<RandomSearchTuner>(space, objective, options);
  }
  throw std::invalid_argument("unknown tune strategy: " + std::string(strategy));
}

}  // namespace bridge
