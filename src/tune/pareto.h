// Pareto-front multi-objective search over a ParamSpace (DESIGN.md §5d).
//
// Point-tuning against one chip overfits to that chip; the honest
// formulation over two silicon references is the set of nondominated
// trade-offs. ParetoArchive maintains that set; ParetoTuner fills it under
// an evaluation budget.
//
// Archive invariants (tests/test_pareto_archive.cpp asserts all three):
//   * no member dominates another (weak dominance: <= in every objective,
//     < in at least one);
//   * iteration order is deterministic — entries are kept sorted by error
//     vector, then by point indices, never by insertion order;
//   * the surviving set is invariant under permutation of the inserted
//     candidates whenever the nondominated set fits the capacity; beyond
//     capacity, crowding pruning keeps the objective-extreme members and
//     drops the most crowded interior point (ties: the later entry in
//     iteration order), so the archive degrades toward an evenly spread
//     front rather than a front tail.
//
// ParetoTuner shares the scalar Tuner's mechanics — a ledger memoizing
// every (point -> error-vector) pair, distinct-candidate budgeting, and an
// atomic JSON checkpoint (schema v3: error vectors, the archive, and the
// failure policy + skip set of a degraded campaign) whose resume replays
// the deterministic search bit-identically. The search
// itself is scalarization descent (coordinate descent under a ladder of
// weight vectors, each started from the archive member best under that
// weighting) followed by seeded neighborhood exploration of archive
// members.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tune/multi_objective.h"
#include "tune/param_space.h"

namespace bridge {

/// One archive member / one distinct evaluation.
struct ParetoEntry {
  ParamPoint point;
  std::vector<double> errors;
};

/// True when `a` dominates `b`: a <= b component-wise and a < b somewhere.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

class ParetoArchive {
 public:
  explicit ParetoArchive(std::size_t capacity = 64);

  /// Offer a candidate. Returns true if it entered the archive (it was not
  /// dominated by, or error-identical to, a kept member). Dominated members
  /// are evicted; over capacity the most crowded member is pruned. Among
  /// error-identical candidates the lexicographically smallest point is
  /// kept, so the archive never depends on insertion order for ties.
  bool insert(const ParamPoint& point, const std::vector<double>& errors);

  /// True when some member dominates (or error-equals) `errors`.
  bool dominated(const std::vector<double>& errors) const;

  /// Entries sorted by (errors, point) — the deterministic iteration order.
  const std::vector<ParetoEntry>& entries() const { return entries_; }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  void pruneToCapacity();

  std::size_t capacity_;
  std::vector<ParetoEntry> entries_;
};

/// Local-search strategy used inside each scalarization leg.
enum class ParetoDescent {
  /// Exhaustive coordinate descent (the default): every leg sweeps every
  /// dimension until no single step improves. Thorough, but one leg can
  /// consume the whole budget when evaluations are expensive.
  kCoordinate,
  /// Seeded simulated annealing with a per-leg distinct-evaluation quota
  /// (budget / (legs + 1)), for objectives where one evaluation is costly
  /// (the NPB objective simulates 12 multi-rank workloads per candidate).
  /// The quota guarantees every scalarization direction gets probed before
  /// the budget runs out; the walk stays fully deterministic in the seed.
  kAnnealing,
};

struct ParetoOptions {
  /// Max distinct candidate evaluations (clamped to >= 1).
  std::size_t budget = 300;
  /// Seed for the exploration phase.
  std::uint64_t seed = 1;
  ParetoDescent descent = ParetoDescent::kCoordinate;
  /// Annealing schedule (kAnnealing only), mirroring the scalar
  /// AnnealingTuner's knobs.
  double initial_temperature = 0.5;
  double cooling = 0.95;
  /// JSON checkpoint path (schema v3); empty disables checkpointing. An
  /// existing file resumes the run and throws std::runtime_error if it
  /// belongs to a different space/seed/arity/capacity — or was written
  /// under a different failure policy, since degraded error vectors only
  /// compare under the policy that produced them.
  std::string checkpoint;
  std::size_t archive_cap = 64;
  /// Weight vectors for the scalarization-descent phase; empty selects a
  /// default ladder (per-objective extremes plus mixtures).
  std::vector<std::vector<double>> scalarizations;
  /// Called on every distinct evaluation (replayed or fresh) with its
  /// 1-based index, whether it entered the archive, and whether the
  /// objective actually ran (vs a checkpoint replay).
  std::function<void(std::size_t index, const ParetoEntry& eval, bool entered,
                     bool fresh)>
      on_eval;
};

struct ParetoResult {
  /// The final front, in archive iteration order.
  std::vector<ParetoEntry> front;
  /// Every distinct evaluation of the (possibly resumed) run, in order.
  std::vector<ParetoEntry> trajectory;
  std::size_t evaluations = 0;      // == trajectory.size()
  std::size_t objective_calls = 0;  // evaluations not served by the ledger
  std::string stop_reason;          // "budget" | "converged"
  /// Components the objective penalty-scored instead of measuring (sorted,
  /// deduplicated; union of the checkpoint's record and this run's).
  std::vector<std::string> skipped;
};

class ParetoTuner {
 public:
  ParetoTuner(const ParamSpace& space, MultiObjective* objective,
              ParetoOptions options);

  /// Also the checkpoint's `strategy` field: the descent mode is bound
  /// into the schema-v2 identity, so a coordinate-descent checkpoint can
  /// never silently resume an annealing run (or vice versa).
  std::string_view name() const {
    return options_.descent == ParetoDescent::kAnnealing ? "pareto-anneal"
                                                         : "pareto";
  }

  /// Run the search from `start`. Loads the checkpoint first if one is
  /// configured and present; saves it after every fresh evaluation.
  ParetoResult run(const ParamPoint& start);

 private:
  /// Ledger-memoized evaluation; nullopt once the budget has stopped the
  /// run (callers unwind when they see it).
  std::optional<std::vector<double>> evaluate(const ParamPoint& p);

  /// Best archive member under `weights` (or `fallback_start` on an empty
  /// archive, evaluating it); false once the budget stops the run.
  bool seedLeg(const std::vector<double>& weights,
               const ParamPoint& fallback_start, ParamPoint* cur,
               double* cur_err);
  void scalarizationDescent(const std::vector<double>& weights,
                            const ParamPoint& fallback_start);
  void annealingDescent(std::size_t leg, const std::vector<double>& weights,
                        const ParamPoint& fallback_start);
  void exploreArchive();
  void loadCheckpoint();
  void saveCheckpoint() const;
  /// Checkpoint-recorded skips ∪ the objective's accumulated skips.
  std::vector<std::string> skippedUnion() const;

  const ParamSpace& space_;
  MultiObjective* objective_;
  ParetoOptions options_;

  ParetoArchive archive_;
  std::unordered_map<std::string, std::vector<double>> ledger_;
  std::vector<ParetoEntry> ledger_order_;  // checkpoint file order
  std::unordered_map<std::string, std::vector<double>> seen_;
  std::vector<ParetoEntry> trajectory_;
  std::size_t objective_calls_ = 0;
  bool stopped_ = false;
  std::string stop_reason_;
  std::set<std::string> checkpoint_skipped_;  // skip set loaded from disk
};

}  // namespace bridge
