// Tunable parameter space for the autotuner (DESIGN.md §5c).
//
// A ParamSpace is an ordered list of SocConfig override knobs, each with an
// explicit ascending list of legal values — the step rules live in the
// lists themselves (powers of two where the hardware demands it, linear
// ranges elsewhere). A candidate configuration is a ParamPoint: one index
// per dimension. Keeping candidates as index vectors makes neighbourhood
// moves trivial (step one index) and gives every point an exact canonical
// string key for the evaluation ledger and the JSON checkpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/rng.h"
#include "soc/soc.h"

namespace bridge {

struct ParamDef {
  std::string key;                   // SocConfig override key (see job.h)
  std::vector<std::int64_t> values;  // legal values, strictly ascending
};

/// One candidate: an index into each dimension's legal-value list.
using ParamPoint = std::vector<std::size_t>;

class ParamSpace {
 public:
  /// Add a dimension with an explicit legal-value list (must be non-empty
  /// and strictly ascending; throws std::invalid_argument otherwise).
  ParamSpace& add(std::string key, std::vector<std::int64_t> values);

  /// Powers of two from `lo` to `hi` inclusive (both powers of two).
  ParamSpace& addPow2(std::string key, std::int64_t lo, std::int64_t hi);

  /// lo, lo+step, ... up to and including hi where reachable.
  ParamSpace& addLinear(std::string key, std::int64_t lo, std::int64_t hi,
                        std::int64_t step);

  std::size_t dims() const { return dims_.size(); }
  const ParamDef& dim(std::size_t i) const { return dims_.at(i); }

  /// Number of distinct points (product of the value-list sizes).
  std::size_t cardinality() const;

  /// True when `p` has one in-range index per dimension.
  bool valid(const ParamPoint& p) const;

  /// Move `p` one legal value along dimension `dim` (`direction` ±1).
  /// Returns false (leaving `p` unchanged) when the step leaves the range.
  bool step(ParamPoint* p, std::size_t dim, int direction) const;

  /// The point's "key = value" overrides, ready for a JobSpec. Every
  /// dimension is emitted, including ones equal to the base config's value
  /// (redundant overrides resolve to the same SocConfig, hence the same
  /// cache fingerprint — they cost nothing).
  Config overrides(const ParamPoint& p) const;

  /// Canonical "k=v,k=v" form: the ledger/checkpoint identity of a point.
  std::string pointKey(const ParamPoint& p) const;

  /// One-line identity of the space itself (keys + value lists). Stored in
  /// checkpoints so a resume against an edited space is rejected instead of
  /// silently replaying mismatched indices.
  std::string signature() const;

  /// The point closest to `base`'s current knob values, dimension by
  /// dimension (ties break toward the smaller value). This is how a tune
  /// starts "from Rocket1": the platform preset projected into the space.
  ParamPoint startPoint(const SocConfig& base) const;

  /// Uniform random point (for random search / annealing restarts).
  ParamPoint randomPoint(Xorshift64Star* rng) const;

 private:
  std::vector<ParamDef> dims_;
};

/// The knobs the paper's §4 tuning loop touches for the Rocket (in-order)
/// family: L2 banking, system-bus width, L1D/L2 MSHRs, and DRAM controller
/// queue depths. Start values of Rocket1 are inside every range.
ParamSpace rocketMemorySpace();

/// A wider space for the BOOM (out-of-order) family: the memory knobs above
/// plus RoB/IQ/LSQ sizes — the §6 "future tuning" directions.
ParamSpace boomCoreMemorySpace();

/// Namespace prefix separating the two model families in the combined
/// space: "rocket/l2.banks" tunes the Rocket-side model, "boom/ooo.rob"
/// the BOOM side. The prefix never reaches applySocOverrides — it is
/// stripped by namespacedOverrides() before a JobSpec sees the config.
inline constexpr std::string_view kRocketNamespace = "rocket";
inline constexpr std::string_view kBoomNamespace = "boom";

/// rocketMemorySpace() and boomCoreMemorySpace() merged into one space for
/// the multi-objective tuner, with every dimension key prefixed by its
/// family namespace ("rocket/..." / "boom/...") so the two families' knobs
/// (which share names: l2.banks appears in both) cannot collide.
ParamSpace combinedPlatformSpace();

/// The subset of `combined` whose keys live under `ns` ("rocket" | "boom"),
/// with the "ns/" prefix stripped — ready for a JobSpec's overrides.
Config namespacedOverrides(const Config& combined, std::string_view ns);

/// Start point for combinedPlatformSpace(): every "rocket/" dimension is
/// projected (nearest legal value) from `rocket_base`, every "boom/"
/// dimension from `boom_base` — how a bi-platform tune starts "from
/// Rocket1 and MilkVSim". Throws std::invalid_argument for a dimension
/// outside both namespaces.
ParamPoint combinedStartPoint(const ParamSpace& combined,
                              const SocConfig& rocket_base,
                              const SocConfig& boom_base);

}  // namespace bridge
