// Multi-objective fidelity: one candidate scored against *both* silicon
// references at once (DESIGN.md §5d).
//
// The paper calibrates each FireSim model against one chip at a time
// (Rocket -> BPI-F3, BOOM -> SG2042); per-platform point tuning overfits
// to the chip it was scored on. A MultiObjective returns a vector of
// errors — one per hardware reference — and leaves the trade-off to the
// caller: the ParetoTuner keeps the whole nondominated front, while the
// WeightedSumObjective scalarizes the vector so the single-objective
// strategies (coordinate descent, annealing, random search) can search
// the same combined space unchanged.
//
// BiPlatformObjective is the concrete two-chip case: a candidate lives in
// combinedPlatformSpace() ("rocket/..." + "boom/..." namespaced knobs);
// the rocket-side overrides are applied to a Rocket-family model and
// scored against BananaPiHw, the boom-side overrides to a BOOM-family
// model scored against MilkVHw — both through FidelityObjective (and so
// through the cached SweepEngine: stepping a rocket knob re-simulates
// only the rocket side; the boom-side probes are cache hits).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "tune/objective.h"
#include "tune/param_space.h"

namespace bridge {

/// Anything the ParetoTuner can minimize: candidate overrides -> error
/// vector (component-wise lower is better, fixed arity). Implementations
/// must be deterministic in their inputs.
class MultiObjective {
 public:
  virtual ~MultiObjective() = default;
  virtual std::size_t arity() const = 0;
  virtual std::vector<double> scoreVector(const Config& overrides) = 0;

  /// Failure-policy identity and accumulated penalty-scored components —
  /// same contract as Objective::policySignature/skippedComponents; the
  /// ParetoTuner binds both into its checkpoints.
  virtual std::string policySignature() const { return {}; }
  virtual std::vector<std::string> skippedComponents() const { return {}; }
};

struct BiPlatformOptions {
  PlatformId rocket_model = PlatformId::kRocket1;
  PlatformId rocket_reference = PlatformId::kBananaPiHw;
  PlatformId boom_model = PlatformId::kMilkVSim;
  PlatformId boom_reference = PlatformId::kMilkVHw;
  /// Probe kernels shared by both sides; empty selects
  /// defaultProbeKernels().
  std::vector<std::string> kernels;
  double scale = 0.15;
  std::uint64_t seed = 1;
  /// Per-category weights, shared by both sides.
  std::array<double, kMicrobenchCategoryCount> weights = {1, 1, 1, 1, 1};
};

class BiPlatformObjective : public MultiObjective {
 public:
  explicit BiPlatformObjective(const BiPlatformOptions& options,
                               const SweepOptions& sweep = {});

  std::size_t arity() const override { return 2; }

  /// {rocket-vs-BananaPiHw, boom-vs-MilkVHw} errors for a candidate in
  /// combinedPlatformSpace() coordinates (namespaced overrides).
  std::vector<double> scoreVector(const Config& overrides) override;

  /// Full per-kernel breakdown of one side of a combined candidate
  /// (side 0 = rocket, 1 = boom).
  FidelityEval evaluateSide(std::size_t side, const Config& overrides);

  /// Score an arbitrary platform against side `side`'s reference with
  /// plain (un-namespaced) overrides — how the hand-built BananaPiSim /
  /// MilkVSim models are benchmarked against the front.
  FidelityEval evaluateSideOn(std::size_t side, PlatformId model,
                              const Config& plain_overrides);

  const BiPlatformOptions& options() const { return options_; }

  /// Both sides run under the same SweepOptions, so one side's signature
  /// is the pair's; skipped components are the union of the sides',
  /// prefixed "rocket:" / "boom:" to stay unambiguous.
  std::string policySignature() const override;
  std::vector<std::string> skippedComponents() const override;

 private:
  FidelityObjective& objective(std::size_t side);

  BiPlatformOptions options_;
  FidelityObjective rocket_;
  FidelityObjective boom_;
};

/// Scalarization: error = dot(weights, scoreVector(...)). Weights must be
/// non-negative and sum to > 0. Lets the single-objective Tuner strategies
/// run on a MultiObjective — one weight vector per run traces one point of
/// the front.
class WeightedSumObjective : public Objective {
 public:
  WeightedSumObjective(MultiObjective* multi, std::vector<double> weights);

  double score(const Config& overrides) override;

  /// Scalarization is policy-transparent: forward the wrapped objective's.
  std::string policySignature() const override;
  std::vector<std::string> skippedComponents() const override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  MultiObjective* multi_;
  std::vector<double> weights_;
};

}  // namespace bridge
