// Gradient-free search over a ParamSpace (DESIGN.md §5c).
//
// A Tuner minimizes an Objective under an evaluation budget. All strategies
// share one mechanism: a ledger that memoizes every (point -> error) pair.
// The ledger is what makes a tune
//   * budgeted   — only *distinct* candidates count against the budget;
//                  revisits (coordinate descent backtracking, annealing
//                  walks) are free,
//   * stoppable  — budget exhaustion and stagnation flip one flag that
//                  every strategy's evaluate() call observes, and
//   * resumable  — the ledger round-trips through a JSON checkpoint.
//                  A resumed run re-executes the (deterministic) search
//                  from the start; ledger hits replay past evaluations
//                  without touching the objective, so it reproduces the
//                  interrupted trajectory bit-identically and continues
//                  where the budget ran out.
//
// Strategies: greedy coordinate descent (the paper's one-parameter-at-a-
// time §4 methodology, automated), simulated annealing, and pure random
// search (both seeded, for escaping the local optima §6 worries about).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tune/objective.h"
#include "tune/param_space.h"

namespace bridge {

/// One distinct evaluation, in evaluation order.
struct TuneEval {
  ParamPoint point;
  double error = 0.0;
};

struct TuneOptions {
  /// Max distinct candidate evaluations (clamped to >= 1).
  std::size_t budget = 200;
  /// Stop after this many consecutive distinct evaluations without a new
  /// best. 0 disables early stopping.
  std::size_t stagnation = 0;
  /// Seed for the stochastic strategies (annealing, random search).
  std::uint64_t seed = 1;
  /// Coordinate descent only: before descending, also evaluate this many
  /// seeded random probes and descend from the best of {start, probes} —
  /// the cheap escape from the start-point basin on plateaued spaces.
  /// Probes consume budget like any distinct evaluation. 0 disables.
  std::size_t seed_probes = 0;
  /// JSON checkpoint path; empty disables checkpointing. If the file
  /// exists, the run resumes from it (and throws std::runtime_error if it
  /// belongs to a different space/strategy/seed — or was written under a
  /// different failure policy, since degraded scores only compare under
  /// the policy that produced them).
  std::string checkpoint;
  /// Annealing schedule: initial temperature and geometric cooling factor.
  double initial_temperature = 0.5;
  double cooling = 0.95;
  /// Progress hook, called on every distinct evaluation (replayed or
  /// fresh) with its 1-based index and whether it set a new best.
  std::function<void(std::size_t index, const TuneEval& eval, bool improved,
                     bool fresh)>
      on_eval;
};

struct TuneResult {
  ParamPoint best;
  Config best_overrides;
  double best_error = 0.0;
  /// Every distinct evaluation of the (possibly resumed) run, in order.
  std::vector<TuneEval> trajectory;
  std::size_t evaluations = 0;          // == trajectory.size()
  std::size_t objective_calls = 0;      // evaluations not served by ledger
  std::string stop_reason;              // "budget" | "stagnation" | "converged"
  /// Components the objective penalty-scored instead of measuring (sorted,
  /// deduplicated; union of the checkpoint's record and this run's) — the
  /// honest caveat on best_error when the campaign ran degraded.
  std::vector<std::string> skipped;
};

class Tuner {
 public:
  Tuner(const ParamSpace& space, Objective* objective, TuneOptions options);
  virtual ~Tuner() = default;

  virtual std::string_view name() const = 0;

  /// Run the search from `start`. Loads the checkpoint first if one is
  /// configured and present; saves it after every fresh evaluation.
  TuneResult run(const ParamPoint& start);

 protected:
  /// Ledger-memoized evaluation; the only way strategies may score a point.
  /// Returns nullopt once a stop condition has triggered — strategies
  /// unwind when they see it.
  std::optional<double> evaluate(const ParamPoint& p);

  bool stopped() const { return stopped_; }
  const ParamSpace& space() const { return space_; }
  const TuneOptions& options() const { return options_; }
  std::size_t distinctEvaluations() const { return trajectory_.size(); }

  /// Strategy body: search from `start` until done or stopped(). A natural
  /// return with no stop flag set reports "converged".
  virtual void search(const ParamPoint& start) = 0;

 private:
  void loadCheckpoint();
  void saveCheckpoint() const;
  /// Checkpoint-recorded skips ∪ the objective's accumulated skips.
  std::vector<std::string> skippedUnion() const;

  const ParamSpace& space_;
  Objective* objective_;
  TuneOptions options_;

  std::unordered_map<std::string, double> ledger_;  // pointKey -> error
  std::vector<TuneEval> ledger_order_;              // checkpoint file order
  std::unordered_map<std::string, double> seen_;    // requested this run
  std::vector<TuneEval> trajectory_;
  ParamPoint best_;
  double best_error_ = 0.0;
  bool have_best_ = false;
  std::size_t since_improvement_ = 0;
  std::size_t objective_calls_ = 0;
  bool stopped_ = false;
  std::string stop_reason_;
  std::set<std::string> checkpoint_skipped_;  // skip set loaded from disk
};

/// The paper's §4 loop, automated: sweep the dimensions in order, hill-climb
/// each one (keep stepping while the error strictly improves), and repeat
/// until a full sweep finds nothing better.
class CoordinateDescentTuner : public Tuner {
 public:
  using Tuner::Tuner;
  std::string_view name() const override { return "coordinate-descent"; }

 protected:
  void search(const ParamPoint& start) override;
};

/// Seeded simulated annealing: random single-dimension steps, always accept
/// improvements, accept regressions with probability exp(-delta/T), T
/// cooling geometrically. Runs until the budget or stagnation stop.
class AnnealingTuner : public Tuner {
 public:
  using Tuner::Tuner;
  std::string_view name() const override { return "annealing"; }

 protected:
  void search(const ParamPoint& start) override;
};

/// Seeded uniform random search; the baseline every smarter strategy has
/// to beat.
class RandomSearchTuner : public Tuner {
 public:
  using Tuner::Tuner;
  std::string_view name() const override { return "random-search"; }

 protected:
  void search(const ParamPoint& start) override;
};

/// Factory by strategy name ("cd" | "coordinate-descent", "anneal" |
/// "annealing", "random" | "random-search"); throws std::invalid_argument
/// on anything else.
std::unique_ptr<Tuner> makeTuner(std::string_view strategy,
                                 const ParamSpace& space, Objective* objective,
                                 const TuneOptions& options);

}  // namespace bridge
