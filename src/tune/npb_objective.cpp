#include "tune/npb_objective.h"

#include <cmath>
#include <stdexcept>

namespace bridge {

std::vector<double> NpbEval::errorVector() const {
  std::vector<double> v;
  v.reserve(components.size());
  for (const NpbComponentError& c : components) v.push_back(c.error);
  return v;
}

NpbObjective::NpbObjective(const NpbObjectiveOptions& options,
                           const SweepOptions& sweep)
    : options_(options),
      engine_(sweep),
      grid_(npbGrid(options_.benchmarks, options_.rank_counts)) {
  for (const NpbBenchmark b : options_.benchmarks) {
    if (b == options_.held_out) {
      throw std::invalid_argument(
          "NPB held-out benchmark must not be in the tuned set");
    }
  }
  const NpbBenchmark held[] = {options_.held_out};
  held_grid_ = npbGrid(held, options_.rank_counts);
}

const std::vector<double>& NpbObjective::referenceSeconds(
    const std::vector<NpbGridCell>& grid, std::size_t side,
    std::vector<double>* cache_slot) {
  if (cache_slot->empty()) {
    const PlatformId reference =
        side == 0 ? options_.rocket_reference : options_.boom_reference;
    if (engine_.options().failures.strict) {
      // Legacy contract: a failed reference cell aborts the objective.
      *cache_slot =
          npbReferenceSeconds(engine_, reference, grid, options_.run);
    } else {
      // Degraded mode: failed cells record the 0.0 sentinel (evaluateGrid
      // penalizes every candidate on them) and land in the skip set.
      std::vector<std::string> failed;
      *cache_slot = npbReferenceSeconds(engine_, reference, grid,
                                        options_.run, &failed);
      skipped_.insert(failed.begin(), failed.end());
    }
  }
  return *cache_slot;
}

NpbEval NpbObjective::evaluateGrid(const std::vector<NpbGridCell>& grid,
                                   const std::vector<double>& rocket_ref,
                                   const std::vector<double>& boom_ref,
                                   PlatformId rocket_model,
                                   PlatformId boom_model,
                                   const Config& rocket_overrides,
                                   const Config& boom_overrides) {
  // One engine submission covers both sides, so the probes fan out across
  // the worker pool together; results come back in job order.
  std::vector<JobSpec> jobs =
      npbGridJobs(rocket_model, grid, options_.run, rocket_overrides);
  {
    std::vector<JobSpec> boom_jobs =
        npbGridJobs(boom_model, grid, options_.run, boom_overrides);
    for (JobSpec& j : boom_jobs) jobs.push_back(std::move(j));
  }
  const std::vector<SweepResult> results = engine_.run(jobs);
  const bool strict = engine_.options().failures.strict;

  NpbEval eval;
  const auto side_error = [&](const NpbGridCell& cell, double hw_seconds,
                              const SweepResult& sim) {
    NpbSideError e;
    e.hw_seconds = hw_seconds;
    e.sim_seconds = sim.ok() ? sim.result.seconds : 0.0;
    if (!(e.hw_seconds > 0.0) || !(e.sim_seconds > 0.0)) {
      if (strict) {
        throw std::runtime_error("NPB candidate " + npbCellName(cell) +
                                 " reported non-positive seconds");
      }
      // Degraded mode: this side failed (candidate job, or its reference
      // cell recorded the 0.0 sentinel) — penalty-score it and record the
      // skip so checkpoints can name what the score excludes.
      e.skipped = true;
      e.log_err = options_.failure_penalty;
      eval.skipped.push_back(sim.label);
      skipped_.insert(sim.label);
      return e;
    }
    e.rel = e.hw_seconds / e.sim_seconds;
    e.log_err = std::fabs(std::log(e.rel));
    return e;
  };

  eval.components.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    NpbComponentError c;
    c.cell = grid[i];
    c.rocket = side_error(grid[i], rocket_ref[i], results[i]);
    c.boom = side_error(grid[i], boom_ref[i], results[grid.size() + i]);
    // The component the tuner minimizes averages the two sides, so every
    // component depends on both namespaces — the coupling that keeps the
    // Pareto front non-degenerate.
    c.error = 0.5 * (c.rocket.log_err + c.boom.log_err);
    eval.error += c.error;
    eval.components.push_back(c);
  }
  eval.error /= static_cast<double>(eval.components.size());
  return eval;
}

NpbEval NpbObjective::evaluate(const Config& combined) {
  return evaluateGrid(grid_, referenceSeconds(grid_, 0, &tuned_ref_[0]),
                      referenceSeconds(grid_, 1, &tuned_ref_[1]),
                      options_.rocket_model, options_.boom_model,
                      namespacedOverrides(combined, kRocketNamespace),
                      namespacedOverrides(combined, kBoomNamespace));
}

std::vector<double> NpbObjective::scoreVector(const Config& combined) {
  return evaluate(combined).errorVector();
}

std::string NpbObjective::policySignature() const {
  return engine_.policySignature();
}

std::vector<std::string> NpbObjective::skippedComponents() const {
  return {skipped_.begin(), skipped_.end()};  // std::set: already sorted
}

NpbEval NpbObjective::evaluateModels(PlatformId rocket_model,
                                     PlatformId boom_model,
                                     const Config& rocket_plain,
                                     const Config& boom_plain) {
  return evaluateGrid(grid_, referenceSeconds(grid_, 0, &tuned_ref_[0]),
                      referenceSeconds(grid_, 1, &tuned_ref_[1]),
                      rocket_model, boom_model, rocket_plain, boom_plain);
}

NpbEval NpbObjective::heldOut(const Config& combined) {
  return evaluateGrid(held_grid_,
                      referenceSeconds(held_grid_, 0, &held_ref_[0]),
                      referenceSeconds(held_grid_, 1, &held_ref_[1]),
                      options_.rocket_model, options_.boom_model,
                      namespacedOverrides(combined, kRocketNamespace),
                      namespacedOverrides(combined, kBoomNamespace));
}

NpbEval NpbObjective::heldOutModels(PlatformId rocket_model,
                                    PlatformId boom_model,
                                    const Config& rocket_plain,
                                    const Config& boom_plain) {
  return evaluateGrid(held_grid_,
                      referenceSeconds(held_grid_, 0, &held_ref_[0]),
                      referenceSeconds(held_grid_, 1, &held_ref_[1]),
                      rocket_model, boom_model, rocket_plain, boom_plain);
}

Figure npbErrorFigure(const NpbObjectiveOptions& options,
                      const SweepOptions& sweep) {
  NpbObjective objective(options, sweep);

  struct Baseline {
    const char* label;
    PlatformId rocket;
    PlatformId boom;
  };
  const Baseline baselines[] = {
      {"stock (Rocket1 + SmallBoom)", PlatformId::kRocket1,
       PlatformId::kSmallBoom},
      {"microbench-tuned (BananaPiSim + MilkVSim)", PlatformId::kBananaPiSim,
       PlatformId::kMilkVSim},
  };

  Figure fig;
  fig.title = "NPB error vectors: tuned set + held-out " +
              std::string(npbName(options.held_out));
  fig.metric = "mean |ln(hw_seconds / sim_seconds)| over both platform sides";
  for (const Baseline& b : baselines) {
    FigureSeries series;
    series.label = b.label;
    const NpbEval tuned = objective.evaluateModels(b.rocket, b.boom);
    for (const NpbComponentError& c : tuned.components) {
      series.points.emplace_back(npbCellName(c.cell), c.error);
    }
    const NpbEval held = objective.heldOutModels(b.rocket, b.boom);
    for (const NpbComponentError& c : held.components) {
      series.points.emplace_back(npbCellName(c.cell) + " (held-out)",
                                 c.error);
    }
    fig.series.push_back(std::move(series));
  }
  return fig;
}

}  // namespace bridge
