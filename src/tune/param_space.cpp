#include "tune/param_space.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "sweep/job.h"

namespace bridge {

ParamSpace& ParamSpace::add(std::string key, std::vector<std::int64_t> values) {
  if (values.empty()) {
    throw std::invalid_argument("param dimension '" + key + "' has no values");
  }
  if (!std::is_sorted(values.begin(), values.end()) ||
      std::adjacent_find(values.begin(), values.end()) != values.end()) {
    throw std::invalid_argument("param dimension '" + key +
                                "' values must be strictly ascending");
  }
  dims_.push_back(ParamDef{std::move(key), std::move(values)});
  return *this;
}

ParamSpace& ParamSpace::addPow2(std::string key, std::int64_t lo,
                                std::int64_t hi) {
  auto isPow2 = [](std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; };
  if (!isPow2(lo) || !isPow2(hi) || lo > hi) {
    throw std::invalid_argument("addPow2('" + key +
                                "'): bounds must be powers of two, lo <= hi");
  }
  std::vector<std::int64_t> values;
  for (std::int64_t v = lo; v <= hi; v *= 2) values.push_back(v);
  return add(std::move(key), std::move(values));
}

ParamSpace& ParamSpace::addLinear(std::string key, std::int64_t lo,
                                  std::int64_t hi, std::int64_t step) {
  if (step <= 0 || lo > hi) {
    throw std::invalid_argument("addLinear('" + key +
                                "'): need step > 0 and lo <= hi");
  }
  std::vector<std::int64_t> values;
  for (std::int64_t v = lo; v <= hi; v += step) values.push_back(v);
  return add(std::move(key), std::move(values));
}

std::size_t ParamSpace::cardinality() const {
  std::size_t n = 1;
  for (const ParamDef& d : dims_) n *= d.values.size();
  return n;
}

bool ParamSpace::valid(const ParamPoint& p) const {
  if (p.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] >= dims_[i].values.size()) return false;
  }
  return true;
}

bool ParamSpace::step(ParamPoint* p, std::size_t dim, int direction) const {
  if (dim >= dims_.size() || !valid(*p)) return false;
  const std::size_t idx = (*p)[dim];
  if (direction > 0) {
    if (idx + 1 >= dims_[dim].values.size()) return false;
    (*p)[dim] = idx + 1;
    return true;
  }
  if (idx == 0) return false;
  (*p)[dim] = idx - 1;
  return true;
}

Config ParamSpace::overrides(const ParamPoint& p) const {
  if (!valid(p)) throw std::invalid_argument("point does not fit this space");
  Config cfg;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    cfg.set(dims_[i].key, std::to_string(dims_[i].values[p[i]]));
  }
  return cfg;
}

std::string ParamSpace::pointKey(const ParamPoint& p) const {
  if (!valid(p)) throw std::invalid_argument("point does not fit this space");
  std::ostringstream os;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ',';
    os << dims_[i].key << '=' << dims_[i].values[p[i]];
  }
  return os.str();
}

std::string ParamSpace::signature() const {
  std::ostringstream os;
  for (const ParamDef& d : dims_) {
    os << d.key << '{';
    for (std::size_t i = 0; i < d.values.size(); ++i) {
      if (i != 0) os << ' ';
      os << d.values[i];
    }
    os << '}';
  }
  return os.str();
}

namespace {

/// Index of the value in `values` closest to `current` (ties toward the
/// smaller value, since the list is strictly ascending).
std::size_t nearestIndex(const std::vector<std::int64_t>& values,
                         std::int64_t current) {
  std::size_t best = 0;
  std::int64_t best_dist = std::llabs(values[0] - current);
  for (std::size_t j = 1; j < values.size(); ++j) {
    const std::int64_t dist = std::llabs(values[j] - current);
    if (dist < best_dist) {
      best = j;
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace

ParamPoint ParamSpace::startPoint(const SocConfig& base) const {
  ParamPoint p(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const std::int64_t current =
        static_cast<std::int64_t>(socConfigKnobValue(base, dims_[i].key));
    p[i] = nearestIndex(dims_[i].values, current);
  }
  return p;
}

ParamPoint ParamSpace::randomPoint(Xorshift64Star* rng) const {
  ParamPoint p(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    p[i] = static_cast<std::size_t>(rng->nextBelow(dims_[i].values.size()));
  }
  return p;
}

ParamSpace rocketMemorySpace() {
  ParamSpace s;
  s.addPow2("l2.banks", 1, 8);
  s.addPow2("bus.width_bits", 64, 256);
  s.addPow2("l1d.mshrs", 2, 16);
  s.addPow2("l2.mshrs", 4, 32);
  s.addPow2("dram.read_queue_depth", 8, 64);
  s.addPow2("dram.write_queue_depth", 8, 64);
  return s;
}

ParamSpace boomCoreMemorySpace() {
  ParamSpace s = rocketMemorySpace();
  s.add("ooo.rob", {64, 96, 128, 160, 192});
  s.addPow2("ooo.ldq", 16, 64);
  s.addPow2("ooo.stq", 16, 64);
  s.addPow2("ooo.mem_iq", 16, 64);
  return s;
}

ParamSpace combinedPlatformSpace() {
  ParamSpace s;
  auto merge = [&s](std::string_view ns, const ParamSpace& side) {
    for (std::size_t i = 0; i < side.dims(); ++i) {
      const ParamDef& d = side.dim(i);
      s.add(std::string(ns) + "/" + d.key, d.values);
    }
  };
  merge(kRocketNamespace, rocketMemorySpace());
  merge(kBoomNamespace, boomCoreMemorySpace());
  return s;
}

Config namespacedOverrides(const Config& combined, std::string_view ns) {
  const std::string prefix = std::string(ns) + "/";
  Config out;
  combined.forEach([&](const std::string& key, const std::string& value) {
    if (key.size() > prefix.size() && key.compare(0, prefix.size(), prefix) == 0) {
      out.set(key.substr(prefix.size()), value);
    }
  });
  return out;
}

ParamPoint combinedStartPoint(const ParamSpace& combined,
                              const SocConfig& rocket_base,
                              const SocConfig& boom_base) {
  const std::string rocket_prefix = std::string(kRocketNamespace) + "/";
  const std::string boom_prefix = std::string(kBoomNamespace) + "/";
  ParamPoint p(combined.dims());
  for (std::size_t i = 0; i < combined.dims(); ++i) {
    const ParamDef& d = combined.dim(i);
    const SocConfig* base = nullptr;
    std::string_view key = d.key;
    if (key.size() > rocket_prefix.size() &&
        key.substr(0, rocket_prefix.size()) == rocket_prefix) {
      base = &rocket_base;
      key.remove_prefix(rocket_prefix.size());
    } else if (key.size() > boom_prefix.size() &&
               key.substr(0, boom_prefix.size()) == boom_prefix) {
      base = &boom_base;
      key.remove_prefix(boom_prefix.size());
    } else {
      throw std::invalid_argument("combinedStartPoint: dimension '" + d.key +
                                  "' is in neither family namespace");
    }
    const std::int64_t current =
        static_cast<std::int64_t>(socConfigKnobValue(*base, key));
    p[i] = nearestIndex(d.values, current);
  }
  return p;
}

}  // namespace bridge
