#include "tune/param_space.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "sweep/job.h"

namespace bridge {

ParamSpace& ParamSpace::add(std::string key, std::vector<std::int64_t> values) {
  if (values.empty()) {
    throw std::invalid_argument("param dimension '" + key + "' has no values");
  }
  if (!std::is_sorted(values.begin(), values.end()) ||
      std::adjacent_find(values.begin(), values.end()) != values.end()) {
    throw std::invalid_argument("param dimension '" + key +
                                "' values must be strictly ascending");
  }
  dims_.push_back(ParamDef{std::move(key), std::move(values)});
  return *this;
}

ParamSpace& ParamSpace::addPow2(std::string key, std::int64_t lo,
                                std::int64_t hi) {
  auto isPow2 = [](std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; };
  if (!isPow2(lo) || !isPow2(hi) || lo > hi) {
    throw std::invalid_argument("addPow2('" + key +
                                "'): bounds must be powers of two, lo <= hi");
  }
  std::vector<std::int64_t> values;
  for (std::int64_t v = lo; v <= hi; v *= 2) values.push_back(v);
  return add(std::move(key), std::move(values));
}

ParamSpace& ParamSpace::addLinear(std::string key, std::int64_t lo,
                                  std::int64_t hi, std::int64_t step) {
  if (step <= 0 || lo > hi) {
    throw std::invalid_argument("addLinear('" + key +
                                "'): need step > 0 and lo <= hi");
  }
  std::vector<std::int64_t> values;
  for (std::int64_t v = lo; v <= hi; v += step) values.push_back(v);
  return add(std::move(key), std::move(values));
}

std::size_t ParamSpace::cardinality() const {
  std::size_t n = 1;
  for (const ParamDef& d : dims_) n *= d.values.size();
  return n;
}

bool ParamSpace::valid(const ParamPoint& p) const {
  if (p.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] >= dims_[i].values.size()) return false;
  }
  return true;
}

bool ParamSpace::step(ParamPoint* p, std::size_t dim, int direction) const {
  if (dim >= dims_.size() || !valid(*p)) return false;
  const std::size_t idx = (*p)[dim];
  if (direction > 0) {
    if (idx + 1 >= dims_[dim].values.size()) return false;
    (*p)[dim] = idx + 1;
    return true;
  }
  if (idx == 0) return false;
  (*p)[dim] = idx - 1;
  return true;
}

Config ParamSpace::overrides(const ParamPoint& p) const {
  if (!valid(p)) throw std::invalid_argument("point does not fit this space");
  Config cfg;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    cfg.set(dims_[i].key, std::to_string(dims_[i].values[p[i]]));
  }
  return cfg;
}

std::string ParamSpace::pointKey(const ParamPoint& p) const {
  if (!valid(p)) throw std::invalid_argument("point does not fit this space");
  std::ostringstream os;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ',';
    os << dims_[i].key << '=' << dims_[i].values[p[i]];
  }
  return os.str();
}

std::string ParamSpace::signature() const {
  std::ostringstream os;
  for (const ParamDef& d : dims_) {
    os << d.key << '{';
    for (std::size_t i = 0; i < d.values.size(); ++i) {
      if (i != 0) os << ' ';
      os << d.values[i];
    }
    os << '}';
  }
  return os.str();
}

ParamPoint ParamSpace::startPoint(const SocConfig& base) const {
  ParamPoint p(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const std::int64_t current =
        static_cast<std::int64_t>(socConfigKnobValue(base, dims_[i].key));
    std::size_t best = 0;
    std::int64_t best_dist = std::llabs(dims_[i].values[0] - current);
    for (std::size_t j = 1; j < dims_[i].values.size(); ++j) {
      const std::int64_t dist = std::llabs(dims_[i].values[j] - current);
      if (dist < best_dist) {
        best = j;
        best_dist = dist;
      }
    }
    p[i] = best;
  }
  return p;
}

ParamPoint ParamSpace::randomPoint(Xorshift64Star* rng) const {
  ParamPoint p(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    p[i] = static_cast<std::size_t>(rng->nextBelow(dims_[i].values.size()));
  }
  return p;
}

ParamSpace rocketMemorySpace() {
  ParamSpace s;
  s.addPow2("l2.banks", 1, 8);
  s.addPow2("bus.width_bits", 64, 256);
  s.addPow2("l1d.mshrs", 2, 16);
  s.addPow2("l2.mshrs", 4, 32);
  s.addPow2("dram.read_queue_depth", 8, 64);
  s.addPow2("dram.write_queue_depth", 8, 64);
  return s;
}

ParamSpace boomCoreMemorySpace() {
  ParamSpace s = rocketMemorySpace();
  s.add("ooo.rob", {64, 96, 128, 160, 192});
  s.addPow2("ooo.ldq", 16, 64);
  s.addPow2("ooo.stq", 16, 64);
  s.addPow2("ooo.mem_iq", 16, 64);
  return s;
}

}  // namespace bridge
