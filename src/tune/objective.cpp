#include "tune/objective.h"

#include <cmath>
#include <stdexcept>

namespace bridge {

const std::vector<std::string>& defaultProbeKernels() {
  static const std::vector<std::string> kProbes = {
      "Cca", "CCh",    // control flow: biased vs unpredictable branches
      "ED1", "EM5",    // execution: dependency chains
      "DP1d", "DPT",   // data: parallel FP arithmetic
      "MC",  "ML2",    // cache: conflict misses, L2-resident chase
      "MM",  "MM_st",  // memory: DRAM-resident chases (the hard category)
  };
  return kProbes;
}

FidelityObjective::FidelityObjective(const FidelityOptions& options,
                                     const SweepOptions& sweep)
    : options_(options), engine_(sweep) {
  if (options_.kernels.empty()) options_.kernels = defaultProbeKernels();
  for (const std::string& k : options_.kernels) {
    microbenchInfo(k);  // throws std::out_of_range for an unknown kernel
  }
}

const std::vector<double>& FidelityObjective::referenceSeconds() {
  if (!reference_seconds_.empty()) return reference_seconds_;
  std::vector<JobSpec> jobs;
  jobs.reserve(options_.kernels.size());
  for (const std::string& k : options_.kernels) {
    jobs.push_back(microbenchJob(options_.reference, k, options_.scale,
                                 options_.seed));
  }
  for (const SweepResult& r : engine_.run(jobs)) {
    // A failed reference probe leaves the 0.0 sentinel: evaluateOn scores
    // that kernel with the penalty on every candidate (there is nothing to
    // compare against), instead of the whole objective dying. The skip set
    // names the reference job itself — "MM@BananaPiHw" tells an operator
    // the silicon side is what's missing, not the candidate.
    reference_seconds_.push_back(r.ok() ? r.result.seconds : 0.0);
    if (!r.ok()) skipped_.insert(r.label);
  }
  return reference_seconds_;
}

FidelityEval FidelityObjective::evaluateOn(PlatformId model,
                                           const Config& overrides) {
  const std::vector<double>& hw = referenceSeconds();

  std::vector<JobSpec> jobs;
  jobs.reserve(options_.kernels.size());
  for (const std::string& k : options_.kernels) {
    JobSpec j = microbenchJob(model, k, options_.scale, options_.seed);
    j.overrides = overrides;
    jobs.push_back(j);
  }
  const std::vector<SweepResult> results = engine_.run(jobs);
  const bool strict = engine_.options().failures.strict;

  FidelityEval eval;
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (std::size_t i = 0; i < options_.kernels.size(); ++i) {
    KernelFidelity kf;
    kf.kernel = options_.kernels[i];
    kf.category = microbenchInfo(kf.kernel).category;
    kf.hw_seconds = hw[i];
    kf.sim_seconds = results[i].ok() ? results[i].result.seconds : 0.0;
    if (kf.hw_seconds <= 0.0 || kf.sim_seconds <= 0.0) {
      if (strict) {
        throw std::runtime_error("non-positive runtime for probe " +
                                 kf.kernel);
      }
      // Degraded mode: the probe (or its reference) failed — score it as
      // the penalty so the candidate is still comparable, and record the
      // skip so checkpoints and reports can name what the score excludes.
      kf.skipped = true;
      kf.log_err = options_.failure_penalty;
      eval.skipped.push_back(results[i].label);
      skipped_.insert(results[i].label);
    } else {
      kf.rel = relativeSpeedup(kf.hw_seconds, kf.sim_seconds);
      kf.log_err = std::fabs(std::log(kf.rel));
    }

    const auto c = static_cast<std::size_t>(kf.category);
    eval.category_error[c] += kf.log_err;
    eval.category_count[c] += 1;
    weighted_sum += options_.weights[c] * kf.log_err;
    weight_total += options_.weights[c];
    eval.kernels.push_back(std::move(kf));
  }
  for (std::size_t c = 0; c < kMicrobenchCategoryCount; ++c) {
    if (eval.category_count[c] != 0) {
      eval.category_error[c] /= eval.category_count[c];
    }
  }
  if (weight_total <= 0.0) {
    throw std::invalid_argument("fidelity weights sum to zero");
  }
  eval.error = weighted_sum / weight_total;
  return eval;
}

FidelityEval FidelityObjective::evaluate(const Config& overrides) {
  return evaluateOn(options_.model, overrides);
}

double FidelityObjective::score(const Config& overrides) {
  return evaluate(overrides).error;
}

std::string FidelityObjective::policySignature() const {
  return engine_.policySignature();
}

std::vector<std::string> FidelityObjective::skippedComponents() const {
  return {skipped_.begin(), skipped_.end()};  // std::set: already sorted
}

}  // namespace bridge
