// Distribution-matching objective: how far a candidate model's *spread* is
// from a silicon reference distribution (DESIGN.md §5j).
//
// FidelityObjective fits scalar means — one deterministic run per probe.
// Real silicon hands you a distribution per kernel: DVFS wander, thermal
// throttling, and OS noise smear every measurement. Fitting a model to a
// single-point mean can silently land anywhere inside that cloud
// (Chatzopoulos et al. flag exactly this as a fidelity limit). This
// objective runs R seeded hwvar replicas of every probe kernel on both the
// candidate and the reference, builds the two empirical runtime
// distributions, and scores their mismatch with a deterministic two-sample
// statistic — the KS distance (sup CDF gap, location + shape in one
// number) or the scale-free quantile distance (dist_stats.h). Lower is
// better; 0 is a distribution-exact match.
//
// Replica r of a kernel runs under hwvar seed hwvarReplicaSeed(seed, r) —
// a pure splitmix64 expansion — so each replica is its own cacheable
// fingerprint: a 200-evaluation tune re-runs nothing it has already
// simulated, and any worker count regenerates the identical replica set.
// Reference distributions are simulated once and reused, mirroring
// FidelityObjective::referenceSeconds().
//
// Degraded mode: a failed replica is dropped from its kernel's sample set;
// a kernel left with fewer than min_samples surviving replicas on either
// side is scored as failure_penalty (and recorded in skippedComponents())
// instead of aborting the evaluation. Strict engine policy keeps the throw.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sim/hwvar/hwvar.h"
#include "sweep/sweep.h"
#include "tune/objective.h"
#include "workloads/microbench.h"

namespace bridge {

enum class DistributionDistance { kKs, kQuantile };

std::string_view distributionDistanceName(DistributionDistance d);

struct DistributionOptions {
  PlatformId model = PlatformId::kRocket1;         // the side being tuned
  PlatformId reference = PlatformId::kBananaPiHw;  // the silicon side
  /// Probe kernels; empty selects defaultProbeKernels() (objective.h).
  std::vector<std::string> kernels;
  double scale = 0.15;
  std::uint64_t seed = 1;
  /// Seeded hwvar replicas per (kernel, platform).
  unsigned replicas = 8;
  /// Base variability spec; replica r overrides its seed with
  /// hwvarReplicaSeed(hwvar.seed, r). Enabled by default — a disabled spec
  /// collapses every replica to the same fingerprint (zero spread), which
  /// is legal but defeats the objective.
  HwVarParams hwvar = {.enabled = true};
  DistributionDistance distance = DistributionDistance::kKs;
  /// Score for a kernel whose sample set collapsed (degraded mode). The KS
  /// statistic lives in [0, 1] and the quantile distance in [0, 2], so 2.0
  /// always dominates any real mismatch.
  double failure_penalty = 2.0;
  /// Minimum surviving replicas per side for a real comparison.
  unsigned min_samples = 2;
};

struct KernelDistributionFit {
  std::string kernel;
  std::vector<double> sim_seconds;  // surviving replicas, sorted ascending
  std::vector<double> ref_seconds;  // surviving replicas, sorted ascending
  double distance = 0.0;            // (= failure_penalty when skipped)
  bool skipped = false;
};

struct DistributionEval {
  double error = 0.0;  // mean distance over probe kernels
  std::vector<KernelDistributionFit> kernels;
  /// Labels of the kernels scored with the penalty this evaluation.
  std::vector<std::string> skipped;
};

class DistributionObjective : public Objective {
 public:
  explicit DistributionObjective(const DistributionOptions& options,
                                 const SweepOptions& sweep = {});

  /// Objective interface: evaluate `overrides` on options().model.
  double score(const Config& overrides) override;

  /// Full per-kernel breakdown (sample sets + distances).
  DistributionEval evaluate(const Config& overrides);

  const DistributionOptions& options() const { return options_; }
  const SweepEngine& engine() const { return engine_; }

  std::string policySignature() const override;
  std::vector<std::string> skippedComponents() const override;

 private:
  /// The R replica jobs of `kernel` on `platform` (candidate overrides
  /// first, then the replica's hwvar spec pinned on top).
  std::vector<JobSpec> replicaJobs(PlatformId platform,
                                   const std::string& kernel,
                                   const Config& overrides) const;

  /// Reference sample sets per probe kernel, simulated on first use;
  /// parallel to options_.kernels, each sorted ascending.
  const std::vector<std::vector<double>>& referenceSamples();

  DistributionOptions options_;
  SweepEngine engine_;
  std::vector<std::vector<double>> reference_samples_;
  std::set<std::string> skipped_;  // accumulated penalty labels
};

}  // namespace bridge
