#include "tune/pareto.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sim/jsonio.h"
#include "sim/rng.h"

namespace fs = std::filesystem;

namespace bridge {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dominance needs equal-arity error vectors");
  }
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

namespace {

bool entryLess(const ParetoEntry& a, const ParetoEntry& b) {
  if (a.errors != b.errors) return a.errors < b.errors;
  return a.point < b.point;
}

/// NSGA-II crowding distance per entry: objective-extreme members get
/// infinity, interior members the sum of normalized neighbor gaps.
std::vector<double> crowdingDistances(const std::vector<ParetoEntry>& entries) {
  const std::size_t n = entries.size();
  const std::size_t m = entries.empty() ? 0 : entries.front().errors.size();
  std::vector<double> dist(n, 0.0);
  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return entries[a].errors[obj] < entries[b].errors[obj];
                     });
    const double lo = entries[order.front()].errors[obj];
    const double hi = entries[order.back()].errors[obj];
    dist[order.front()] = std::numeric_limits<double>::infinity();
    dist[order.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;  // degenerate objective: no interior spread
    for (std::size_t i = 1; i + 1 < n; ++i) {
      dist[order[i]] += (entries[order[i + 1]].errors[obj] -
                         entries[order[i - 1]].errors[obj]) /
                        (hi - lo);
    }
  }
  return dist;
}

}  // namespace

ParetoArchive::ParetoArchive(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2)) {}

bool ParetoArchive::dominated(const std::vector<double>& errors) const {
  for (const ParetoEntry& e : entries_) {
    if (e.errors == errors || dominates(e.errors, errors)) return true;
  }
  return false;
}

bool ParetoArchive::insert(const ParamPoint& point,
                           const std::vector<double>& errors) {
  // Error-identical member: keep the lexicographically smaller point, so
  // ties never make the archive contents depend on arrival order.
  for (ParetoEntry& e : entries_) {
    if (e.errors == errors) {
      if (point < e.point) {
        e.point = point;
        return true;
      }
      return false;
    }
  }
  for (const ParetoEntry& e : entries_) {
    if (dominates(e.errors, errors)) return false;
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const ParetoEntry& e) {
                                  return dominates(errors, e.errors);
                                }),
                 entries_.end());
  ParetoEntry entry{point, errors};
  entries_.insert(
      std::upper_bound(entries_.begin(), entries_.end(), entry, entryLess),
      std::move(entry));
  pruneToCapacity();
  return true;
}

void ParetoArchive::pruneToCapacity() {
  while (entries_.size() > capacity_) {
    const std::vector<double> dist = crowdingDistances(entries_);
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (dist[i] <= dist[victim]) victim = i;  // ties: later in order
    }
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
}

namespace {

// v3 (PR 5): adds the objective's failure-policy signature and skip set.
constexpr std::uint64_t kParetoCheckpointVersion = 3;

struct ParetoCheckpoint {
  std::uint64_t version = 0;
  std::string strategy;
  std::string space;
  std::uint64_t seed = 0;
  std::uint64_t objectives = 0;
  std::uint64_t archive_cap = 0;
  std::string policy;
  std::vector<std::string> skipped;
  std::vector<ParetoEntry> evals;
  std::vector<ParamPoint> archive;
};

void appendPoint(std::string* out, const ParamPoint& p) {
  *out += "[";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i != 0) *out += ", ";
    *out += std::to_string(p[i]);
  }
  *out += "]";
}

std::string paretoCheckpointToJson(const ParetoCheckpoint& cp) {
  std::string out = "{\n";
  out += "  \"version\": " + std::to_string(cp.version) + ",\n";
  out += "  \"strategy\": ";
  jsonio::appendEscaped(&out, cp.strategy);
  out += ",\n  \"space\": ";
  jsonio::appendEscaped(&out, cp.space);
  out += ",\n  \"seed\": " + std::to_string(cp.seed) + ",\n";
  out += "  \"objectives\": " + std::to_string(cp.objectives) + ",\n";
  out += "  \"archive_cap\": " + std::to_string(cp.archive_cap) + ",\n";
  out += "  \"policy\": ";
  jsonio::appendEscaped(&out, cp.policy);
  out += ",\n  \"skipped\": [";
  for (std::size_t i = 0; i < cp.skipped.size(); ++i) {
    if (i != 0) out += ", ";
    jsonio::appendEscaped(&out, cp.skipped[i]);
  }
  out += "],\n";
  out += "  \"evals\": [";
  for (std::size_t i = 0; i < cp.evals.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"point\": ";
    appendPoint(&out, cp.evals[i].point);
    out += ", \"errors\": [";
    for (std::size_t j = 0; j < cp.evals[i].errors.size(); ++j) {
      if (j != 0) out += ", ";
      out += jsonio::formatDouble(cp.evals[i].errors[j]);
    }
    out += "]}";
  }
  out += cp.evals.empty() ? "],\n" : "\n  ],\n";
  out += "  \"archive\": [";
  for (std::size_t i = 0; i < cp.archive.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    appendPoint(&out, cp.archive[i]);
  }
  out += cp.archive.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool parsePointArray(jsonio::Parser& p, ParamPoint* out) {
  return p.parseArray([&](jsonio::Parser& iv) {
    std::uint64_t idx = 0;
    if (!iv.parseUint64(&idx)) return false;
    out->push_back(static_cast<std::size_t>(idx));
    return true;
  });
}

std::optional<ParetoCheckpoint> paretoCheckpointFromJson(
    const std::string& json) {
  ParetoCheckpoint cp;
  jsonio::Parser p(json);
  const bool ok =
      p.parseObject([&](const std::string& key, jsonio::Parser& v) {
        if (key == "version") return v.parseUint64(&cp.version);
        if (key == "strategy") return v.parseString(&cp.strategy);
        if (key == "space") return v.parseString(&cp.space);
        if (key == "seed") return v.parseUint64(&cp.seed);
        if (key == "objectives") return v.parseUint64(&cp.objectives);
        if (key == "archive_cap") return v.parseUint64(&cp.archive_cap);
        if (key == "policy") return v.parseString(&cp.policy);
        if (key == "skipped") {
          return v.parseArray([&](jsonio::Parser& sv) {
            std::string s;
            if (!sv.parseString(&s)) return false;
            cp.skipped.push_back(std::move(s));
            return true;
          });
        }
        if (key == "evals") {
          return v.parseArray([&](jsonio::Parser& ev) {
            ParetoEntry e;
            const bool entry_ok =
                ev.parseObject([&](const std::string& f, jsonio::Parser& fv) {
                  if (f == "point") return parsePointArray(fv, &e.point);
                  if (f == "errors") {
                    return fv.parseArray([&](jsonio::Parser& dv) {
                      double err = 0.0;
                      if (!dv.parseDouble(&err)) return false;
                      e.errors.push_back(err);
                      return true;
                    });
                  }
                  return false;
                });
            if (!entry_ok) return false;
            cp.evals.push_back(std::move(e));
            return true;
          });
        }
        if (key == "archive") {
          return v.parseArray([&](jsonio::Parser& av) {
            ParamPoint pt;
            if (!parsePointArray(av, &pt)) return false;
            cp.archive.push_back(std::move(pt));
            return true;
          });
        }
        return false;
      });
  if (!ok || !p.atEnd()) return std::nullopt;
  return cp;
}

}  // namespace

ParetoTuner::ParetoTuner(const ParamSpace& space, MultiObjective* objective,
                         ParetoOptions options)
    : space_(space),
      objective_(objective),
      options_(std::move(options)),
      archive_(options_.archive_cap) {
  if (options_.budget == 0) options_.budget = 1;
  if (options_.scalarizations.empty()) {
    // Per-objective extremes first (they anchor the front's endpoints),
    // then mixtures walking the trade-off interior.
    const std::size_t m = objective_->arity();
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<double> w(m, 0.0);
      w[i] = 1.0;
      options_.scalarizations.push_back(std::move(w));
    }
    options_.scalarizations.push_back(std::vector<double>(m, 1.0));
    if (m == 2) {
      options_.scalarizations.push_back({3.0, 1.0});
      options_.scalarizations.push_back({1.0, 3.0});
    }
  }
  for (const std::vector<double>& w : options_.scalarizations) {
    if (w.size() != objective_->arity()) {
      throw std::invalid_argument(
          "scalarization weight vector arity mismatch");
    }
  }
}

void ParetoTuner::loadCheckpoint() {
  if (options_.checkpoint.empty()) return;
  std::ifstream in(options_.checkpoint);
  if (!in) return;  // nothing to resume
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<ParetoCheckpoint> cp = paretoCheckpointFromJson(buf.str());
  if (!cp) {
    throw std::runtime_error("pareto checkpoint is corrupt: " +
                             options_.checkpoint);
  }
  if (cp->version != kParetoCheckpointVersion || cp->strategy != name() ||
      cp->space != space_.signature() || cp->seed != options_.seed ||
      cp->objectives != objective_->arity() ||
      cp->archive_cap != archive_.capacity() ||
      cp->policy != objective_->policySignature()) {
    throw std::runtime_error(
        "pareto checkpoint mismatch (different "
        "space/seed/arity/capacity/policy): " +
        options_.checkpoint);
  }
  checkpoint_skipped_.insert(cp->skipped.begin(), cp->skipped.end());
  ParetoArchive replay(archive_.capacity());
  for (ParetoEntry& e : cp->evals) {
    if (!space_.valid(e.point) || e.errors.size() != objective_->arity()) {
      throw std::runtime_error("pareto checkpoint holds an invalid eval");
    }
    replay.insert(e.point, e.errors);
    ledger_.emplace(space_.pointKey(e.point), e.errors);
    ledger_order_.push_back(std::move(e));
  }
  // The persisted archive must be exactly what replaying the evals yields;
  // anything else means the file was edited or truncated mid-entry.
  std::vector<ParamPoint> rebuilt;
  for (const ParetoEntry& e : replay.entries()) rebuilt.push_back(e.point);
  if (rebuilt != cp->archive) {
    throw std::runtime_error(
        "pareto checkpoint archive does not match its evals: " +
        options_.checkpoint);
  }
}

std::vector<std::string> ParetoTuner::skippedUnion() const {
  std::set<std::string> all = checkpoint_skipped_;
  const std::vector<std::string> live = objective_->skippedComponents();
  all.insert(live.begin(), live.end());
  return {all.begin(), all.end()};
}

void ParetoTuner::saveCheckpoint() const {
  if (options_.checkpoint.empty()) return;
  ParetoCheckpoint cp;
  cp.version = kParetoCheckpointVersion;
  cp.strategy = std::string(name());
  cp.space = space_.signature();
  cp.seed = options_.seed;
  cp.objectives = objective_->arity();
  cp.archive_cap = archive_.capacity();
  cp.policy = objective_->policySignature();
  // The skip set rides along (checkpoint record ∪ this process) so a
  // resumed degraded campaign still knows what its replayed errors exclude.
  cp.skipped = skippedUnion();
  cp.evals = ledger_order_;
  for (const ParetoEntry& e : archive_.entries()) {
    cp.archive.push_back(e.point);
  }

  const fs::path path(options_.checkpoint);
  std::error_code ec;
  if (path.has_parent_path()) fs::create_directories(path.parent_path(), ec);
  const std::string tmp =
      options_.checkpoint + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write pareto checkpoint: " + tmp);
    }
    out << paretoCheckpointToJson(cp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("cannot publish pareto checkpoint: " +
                             options_.checkpoint);
  }
}

std::optional<std::vector<double>> ParetoTuner::evaluate(const ParamPoint& p) {
  if (stopped_) return std::nullopt;
  if (!space_.valid(p)) {
    throw std::invalid_argument("pareto tuner evaluated an out-of-range point");
  }
  const std::string key = space_.pointKey(p);

  // Revisit within this run: free, no budget, no trajectory entry.
  if (const auto it = seen_.find(key); it != seen_.end()) return it->second;

  std::vector<double> errors;
  bool fresh = false;
  if (const auto it = ledger_.find(key); it != ledger_.end()) {
    errors = it->second;  // checkpoint replay — objective untouched
  } else {
    errors = objective_->scoreVector(space_.overrides(p));
    if (errors.size() != objective_->arity()) {
      throw std::runtime_error("objective returned a wrong-arity vector");
    }
    fresh = true;
    ++objective_calls_;
    ledger_.emplace(key, errors);
    ledger_order_.push_back(ParetoEntry{p, errors});
  }

  seen_.emplace(key, errors);
  trajectory_.push_back(ParetoEntry{p, errors});
  const bool entered = archive_.insert(p, errors);
  if (fresh) saveCheckpoint();  // after the insert so the archive is current

  if (options_.on_eval) {
    options_.on_eval(trajectory_.size(), trajectory_.back(), entered, fresh);
  }
  if (trajectory_.size() >= options_.budget) {
    stopped_ = true;
    stop_reason_ = "budget";
  }
  return errors;
}

namespace {

double weightedSum(const std::vector<double>& weights,
                   const std::vector<double>& errors) {
  double s = 0.0;
  for (std::size_t i = 0; i < errors.size(); ++i) s += weights[i] * errors[i];
  return s;
}

}  // namespace

bool ParetoTuner::seedLeg(const std::vector<double>& weights,
                          const ParamPoint& fallback_start, ParamPoint* cur,
                          double* cur_err) {
  // Start from the archive member best under this weighting (first wins on
  // ties — iteration order is deterministic), or the caller's start point.
  *cur = fallback_start;
  bool have_cur = false;
  for (const ParetoEntry& e : archive_.entries()) {
    const double s = weightedSum(weights, e.errors);
    if (!have_cur || s < *cur_err) {
      *cur = e.point;
      *cur_err = s;
      have_cur = true;
    }
  }
  if (!have_cur) {
    const std::optional<std::vector<double>> e = evaluate(*cur);
    if (!e) return false;
    *cur_err = weightedSum(weights, *e);
  }
  return true;
}

void ParetoTuner::scalarizationDescent(const std::vector<double>& weights,
                                       const ParamPoint& fallback_start) {
  const auto scalar = [&](const std::vector<double>& errors) {
    return weightedSum(weights, errors);
  };

  ParamPoint cur;
  double cur_err = 0.0;
  if (!seedLeg(weights, fallback_start, &cur, &cur_err)) return;

  bool improved = true;
  while (improved && !stopped_) {
    improved = false;
    for (std::size_t dim = 0; dim < space_.dims() && !stopped_; ++dim) {
      for (const int dir : {+1, -1}) {
        for (;;) {
          ParamPoint next = cur;
          if (!space_.step(&next, dim, dir)) break;
          const std::optional<std::vector<double>> ne = evaluate(next);
          if (!ne) return;
          const double s = scalar(*ne);
          if (s < cur_err) {
            cur = std::move(next);
            cur_err = s;
            improved = true;
          } else {
            break;
          }
        }
        if (stopped_) return;
      }
    }
  }
}

void ParetoTuner::annealingDescent(std::size_t leg,
                                   const std::vector<double>& weights,
                                   const ParamPoint& fallback_start) {
  ParamPoint cur;
  double cur_err = 0.0;
  if (!seedLeg(weights, fallback_start, &cur, &cur_err)) return;

  // Every leg gets an equal share of the distinct-evaluation budget (the
  // +1 reserves a share for the exploration phase), so an early expensive
  // leg cannot starve the later scalarization directions.
  const std::size_t quota = std::max<std::size_t>(
      1, options_.budget / (options_.scalarizations.size() + 1));
  const std::size_t leg_start = trajectory_.size();

  // The leg index perturbs the stream so each leg takes an independent
  // walk; resume stays bit-identical because the leg order is fixed.
  Xorshift64Star rng(options_.seed ^
                     (0x9E3779B97F4A7C15ull * (leg + 1)));
  double temp = options_.initial_temperature;
  // Revisits are free (no trajectory entry), so a walk trapped on a tiny
  // space could spin forever without consuming its quota; cap iterations.
  const std::size_t max_iters = quota * 64 + 1024;
  for (std::size_t iter = 0;
       iter < max_iters && !stopped_ &&
       trajectory_.size() - leg_start < quota;
       ++iter) {
    const std::size_t dim =
        static_cast<std::size_t>(rng.nextBelow(space_.dims()));
    const int dir = rng.nextBool(0.5) ? +1 : -1;
    ParamPoint next = cur;
    if (!space_.step(&next, dim, dir)) {
      temp *= options_.cooling;
      continue;
    }
    const std::optional<std::vector<double>> ne = evaluate(next);
    if (!ne) return;
    const double delta = weightedSum(weights, *ne) - cur_err;
    if (delta <= 0.0 ||
        rng.nextDouble() < std::exp(-delta / std::max(temp, 1e-12))) {
      cur = std::move(next);
      cur_err += delta;
    }
    temp *= options_.cooling;
  }
}

void ParetoTuner::exploreArchive() {
  Xorshift64Star rng(options_.seed);
  const std::size_t max_iters = options_.budget * 64 + 1024;
  for (std::size_t iter = 0; iter < max_iters && !stopped_; ++iter) {
    if (archive_.size() == 0) return;
    const std::size_t pick =
        static_cast<std::size_t>(rng.nextBelow(archive_.size()));
    ParamPoint next = archive_.entries()[pick].point;
    const std::size_t dim =
        static_cast<std::size_t>(rng.nextBelow(space_.dims()));
    const int dir = rng.nextBool(0.5) ? +1 : -1;
    if (!space_.step(&next, dim, dir)) continue;
    if (!evaluate(next)) return;
  }
}

ParetoResult ParetoTuner::run(const ParamPoint& start) {
  if (!space_.valid(start)) {
    throw std::invalid_argument("pareto start point does not fit the space");
  }
  archive_ = ParetoArchive(options_.archive_cap);
  ledger_.clear();
  ledger_order_.clear();
  seen_.clear();
  trajectory_.clear();
  objective_calls_ = 0;
  stopped_ = false;
  stop_reason_.clear();
  checkpoint_skipped_.clear();

  loadCheckpoint();

  if (evaluate(start)) {
    for (std::size_t leg = 0; leg < options_.scalarizations.size(); ++leg) {
      if (stopped_) break;
      if (options_.descent == ParetoDescent::kAnnealing) {
        annealingDescent(leg, options_.scalarizations[leg], start);
      } else {
        scalarizationDescent(options_.scalarizations[leg], start);
      }
    }
    if (!stopped_) exploreArchive();
  }

  ParetoResult result;
  result.front = archive_.entries();
  result.trajectory = trajectory_;
  result.evaluations = trajectory_.size();
  result.objective_calls = objective_calls_;
  result.stop_reason = stop_reason_.empty() ? "converged" : stop_reason_;
  result.skipped = skippedUnion();
  return result;
}

}  // namespace bridge
