// Simulated message-passing runtime.
//
// The paper runs every multi-rank workload as intra-node MPI over shared
// memory (1-4 ranks on one cluster). This runtime reproduces that: ranks
// map 1:1 onto simulated cores; sends and receives are matched by (peer,
// tag); payloads move through the *simulated* memory hierarchy (sender
// copy-in to a shared buffer, receiver copy-out), so message cost reflects
// the platform's L2/bus/DRAM — which is what makes strong-scaling shape
// platform-dependent, as in the paper.
//
// Scheduling: the runnable rank with the smallest local clock advances, up
// to a bounded skew, so shared-resource contention between cores and MPI
// rendezvous stay causal.
//
// Collectives are implemented with the textbook algorithms (dissemination
// barrier, binomial-tree bcast, recursive-doubling allreduce, pairwise
// alltoall) on top of the pt2pt cost model, so their scaling emerges rather
// than being curve-fit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "soc/soc.h"
#include "trace/trace_source.h"

namespace bridge {

struct MpiParams {
  double alpha_ns = 500.0;       // per-message software latency
  std::uint64_t eager_limit = 8192;  // bytes; larger messages rendezvous
  Cycle skew_slack = 512;        // max clock skew between runnable ranks
};

struct MpiRunResult {
  Cycle cycles = 0;                  // completion of the slowest rank
  std::vector<Cycle> rank_cycles;    // per-rank completion
  std::uint64_t retired = 0;         // micro-ops retired across ranks
  std::uint64_t messages = 0;        // pt2pt transfers (incl. collectives)
  std::uint64_t bytes_moved = 0;
};

/// Builds one rank's trace; invoked with (rank, nranks).
using RankProgram = std::function<TraceSourcePtr(int, int)>;

class MpiSimulation {
 public:
  /// `soc` must have at least `nranks` cores. One trace per rank.
  MpiSimulation(Soc* soc, std::vector<TraceSourcePtr> rank_traces,
                const MpiParams& params = {});

  /// Run all ranks to completion. Throws std::runtime_error on deadlock
  /// (mismatched send/recv or collective programs).
  MpiRunResult run();

 private:
  struct RankState {
    TraceSourcePtr trace;
    CoreModel* core = nullptr;
    bool done = false;
    bool blocked = false;
    MicroOp pending{};   // the MPI op we are blocked on
    Cycle arrive = 0;    // core drain time at the MPI call site
    std::uint64_t coll_seq = 0;  // collective call counter (matching)
  };

  struct PostedSend {
    int src = 0;
    std::int32_t tag = 0;
    std::uint64_t bytes = 0;
    Cycle data_ready = 0;  // shm buffer filled (eager) / sender arrive
    bool eager = false;
  };

  struct PostedRecv {
    std::int32_t peer = kAnyPeer;
    std::int32_t tag = 0;
    Cycle arrive = 0;
  };

  void step(int rank);
  void handleMpiOp(int rank, const MicroOp& op);
  void trySendRecvMatch(int dst);
  /// Cost of one matched transfer; unblocks participants as appropriate.
  void completeTransfer(int src, int dst, const PostedSend& send,
                        Cycle recv_arrive);
  void tryCollective(MpiKind kind);
  void resolveCollective(MpiKind kind, const std::vector<int>& ranks);

  /// Pt2pt schedule primitive used by collectives: data leaves `src` at
  /// `t_src`, lands at `dst` no earlier than `t_dst`; returns (src_done,
  /// dst_done).
  std::pair<Cycle, Cycle> transferCost(int src, int dst,
                                       std::uint64_t bytes, Cycle t_src,
                                       Cycle t_dst);

  Addr shmBuffer(int src, int dst) const;
  Addr rankBuffer(int rank) const;
  void unblock(int rank, Cycle resume);

  Soc* soc_;
  MpiParams params_;
  Cycle alpha_;
  std::vector<RankState> ranks_;
  // Unmatched queues, indexed by destination (sends) / receiver (recvs).
  std::vector<std::deque<PostedSend>> sends_;
  std::vector<std::deque<PostedRecv>> recvs_;
  MpiRunResult result_;
};

/// Convenience: build traces from a RankProgram and run.
MpiRunResult runMpiProgram(Soc* soc, int nranks, const RankProgram& program,
                           const MpiParams& params = {});

}  // namespace bridge
