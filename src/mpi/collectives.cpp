// Collective algorithms for the simulated MPI runtime.
//
// Implemented with the standard distributed algorithms so scaling behaviour
// emerges from the pt2pt cost model rather than curve fitting:
//   barrier   — dissemination (ceil(log2 n) rounds of 8-byte messages)
//   bcast     — binomial tree from the root
//   reduce    — binomial tree to the root, with per-element combine cost
//   allreduce — reduce + bcast (general n; the paper only needs n <= 4)
//   alltoall  — pairwise exchange, n-1 rounds
#include <algorithm>
#include <stdexcept>
#include <vector>

#include "mpi/mpi.h"

namespace bridge {

namespace {
// Per-element combine cost of a reduction (one fp add + bookkeeping).
constexpr Cycle kCombineCyclesPerElement = 2;
constexpr std::uint64_t kElementBytes = 8;
}  // namespace

void MpiSimulation::resolveCollective(MpiKind kind,
                                      const std::vector<int>& ranks) {
  const int n = static_cast<int>(ranks.size());
  std::vector<Cycle> t(n);
  // Every participant pays the runtime's software entry cost once, even in
  // the degenerate single-rank case.
  for (int i = 0; i < n; ++i) t[i] = ranks_[ranks[i]].arrive + alpha_;
  const std::uint64_t bytes = ranks_[ranks[0]].pending.mpi.bytes;
  const int root = std::max(0, ranks_[ranks[0]].pending.mpi.peer);

  auto combineCost = [&](std::uint64_t b) {
    return kCombineCyclesPerElement * (b / kElementBytes + 1);
  };

  switch (kind) {
    case MpiKind::kBarrier: {
      for (int k = 1; k < n; k <<= 1) {
        std::vector<Cycle> send_done(n), recv_done(n);
        for (int i = 0; i < n; ++i) {
          const int dst = (i + k) % n;
          const auto [s, r] =
              transferCost(ranks[i], ranks[dst], 8, t[i], t[dst]);
          send_done[i] = s;
          recv_done[dst] = r;
        }
        for (int i = 0; i < n; ++i) {
          t[i] = std::max(send_done[i], recv_done[i]);
        }
      }
      break;
    }
    case MpiKind::kBcast: {
      // Binomial tree rooted at `root` (relative ranks).
      for (int k = 1; k < n; k <<= 1) {
        for (int rel = 0; rel < k && rel + k < n; ++rel) {
          const int src = (root + rel) % n;
          const int dst = (root + rel + k) % n;
          const auto [s, r] =
              transferCost(ranks[src], ranks[dst], bytes, t[src], t[dst]);
          t[src] = s;
          t[dst] = std::max(t[dst], r);
        }
      }
      break;
    }
    case MpiKind::kReduce:
    case MpiKind::kAllreduce: {
      // Binomial reduce toward the root.
      for (int k = 1; k < n; k <<= 1) {
        for (int rel = 0; rel + k < n; rel += 2 * k) {
          const int dst = (root + rel) % n;       // receives and combines
          const int src = (root + rel + k) % n;   // sends its partial
          const auto [s, r] =
              transferCost(ranks[src], ranks[dst], bytes, t[src], t[dst]);
          t[src] = s;
          t[dst] = std::max(t[dst], r) + combineCost(bytes);
        }
      }
      if (kind == MpiKind::kAllreduce) {
        // Broadcast the result back down the same tree.
        for (int k = 1; k < n; k <<= 1) {
          for (int rel = 0; rel < k && rel + k < n; ++rel) {
            const int src = (root + rel) % n;
            const int dst = (root + rel + k) % n;
            const auto [s, r] =
                transferCost(ranks[src], ranks[dst], bytes, t[src], t[dst]);
            t[src] = s;
            t[dst] = std::max(t[dst], r);
          }
        }
      }
      break;
    }
    case MpiKind::kAlltoall: {
      // Pairwise exchange: in round s, rank i exchanges with (i + s) % n;
      // `bytes` is the per-destination payload.
      for (int s = 1; s < n; ++s) {
        std::vector<Cycle> next = t;
        for (int i = 0; i < n; ++i) {
          const int dst = (i + s) % n;
          const auto [sd, rd] =
              transferCost(ranks[i], ranks[dst], bytes, t[i], t[dst]);
          next[i] = std::max(next[i], sd);
          next[dst] = std::max(next[dst], rd);
        }
        t = next;
      }
      break;
    }
    default:
      throw std::logic_error("resolveCollective: not a collective");
  }

  for (int i = 0; i < n; ++i) {
    unblock(ranks[i], t[i]);
  }
}

}  // namespace bridge
