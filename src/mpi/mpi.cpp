#include "mpi/mpi.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bridge {

namespace {
// Synthetic address map: per-rank application buffers and per-pair shared
// message buffers. Reusing the same shm region per pair means small
// messages become cache-resident after warmup, as on real shared-memory
// MPI.
constexpr Addr kRankBufBase = 0x9000'0000;
constexpr Addr kRankBufStride = 0x0200'0000;
constexpr Addr kShmBase = 0xE000'0000;
constexpr Addr kShmStride = 0x0040'0000;
constexpr unsigned kStepQuantum = 4096;  // max uops per scheduling slice
}  // namespace

MpiSimulation::MpiSimulation(Soc* soc,
                             std::vector<TraceSourcePtr> rank_traces,
                             const MpiParams& params)
    : soc_(soc), params_(params) {
  assert(soc != nullptr);
  if (rank_traces.empty() ||
      rank_traces.size() > soc->numCores()) {
    throw std::invalid_argument("rank count must be in [1, numCores]");
  }
  alpha_ = nsToCycles(params.alpha_ns, soc->config().freq_ghz);
  const int n = static_cast<int>(rank_traces.size());
  ranks_.resize(n);
  sends_.resize(n);
  recvs_.resize(n);
  for (int r = 0; r < n; ++r) {
    ranks_[r].trace = std::move(rank_traces[static_cast<std::size_t>(r)]);
    ranks_[r].core = &soc->core(static_cast<unsigned>(r));
  }
  result_.rank_cycles.assign(n, 0);
}

Addr MpiSimulation::shmBuffer(int src, int dst) const {
  const int n = static_cast<int>(ranks_.size());
  return kShmBase + static_cast<Addr>(src * n + dst) * kShmStride;
}

Addr MpiSimulation::rankBuffer(int rank) const {
  return kRankBufBase + static_cast<Addr>(rank) * kRankBufStride;
}

void MpiSimulation::unblock(int rank, Cycle resume) {
  RankState& st = ranks_[rank];
  assert(st.blocked);
  st.core->skipTo(resume);
  st.blocked = false;
}

MpiRunResult MpiSimulation::run() {
  const int n = static_cast<int>(ranks_.size());
  while (true) {
    // Pick the runnable rank with the smallest local clock.
    int pick = -1;
    Cycle best = kCycleNever;
    bool all_done = true;
    for (int r = 0; r < n; ++r) {
      const RankState& st = ranks_[r];
      if (st.done) continue;
      all_done = false;
      if (!st.blocked && st.core->now() < best) {
        best = st.core->now();
        pick = r;
      }
    }
    if (all_done) break;
    if (pick < 0) {
      throw std::runtime_error(
          "MPI deadlock: all live ranks blocked (mismatched program?)");
    }
    step(pick);
  }

  result_.cycles = 0;
  result_.retired = 0;
  for (int r = 0; r < n; ++r) {
    result_.cycles = std::max(result_.cycles, result_.rank_cycles[r]);
    result_.retired += ranks_[r].core->retired();
  }
  return result_;
}

void MpiSimulation::step(int rank) {
  RankState& st = ranks_[rank];
  // Bounded skew: stop once we pass the next runnable rank's clock by the
  // slack, so shared-resource contention stays causal.
  Cycle limit = kCycleNever;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (static_cast<int>(r) == rank) continue;
    const RankState& other = ranks_[r];
    if (!other.done && !other.blocked) {
      limit = std::min(limit, other.core->now() + params_.skew_slack);
    }
  }

  MicroOp op;
  for (unsigned i = 0; i < kStepQuantum; ++i) {
    if (st.core->now() > limit) return;
    if (!st.trace->next(&op)) {
      st.done = true;
      result_.rank_cycles[rank] = st.core->drain();
      return;
    }
    if (op.cls == OpClass::kMpi) {
      handleMpiOp(rank, op);
      return;
    }
    st.core->consume(op);
  }
}

void MpiSimulation::handleMpiOp(int rank, const MicroOp& op) {
  RankState& st = ranks_[rank];
  st.arrive = st.core->drain();
  st.pending = op;
  st.blocked = true;

  switch (op.mpi.kind) {
    case MpiKind::kSend: {
      const int dst = op.mpi.peer;
      if (dst < 0 || dst >= static_cast<int>(ranks_.size()) || dst == rank) {
        throw std::invalid_argument("kSend: bad peer rank");
      }
      PostedSend s;
      s.src = rank;
      s.tag = op.mpi.tag;
      s.bytes = op.mpi.bytes;
      s.eager = op.mpi.bytes <= params_.eager_limit;
      if (s.eager) {
        // Eager: copy into the shared buffer now and return to the app.
        s.data_ready = soc_->mem().bulkCopy(
            static_cast<unsigned>(rank), rankBuffer(rank),
            shmBuffer(rank, dst), op.mpi.bytes, st.arrive + alpha_);
        unblock(rank, s.data_ready);
      } else {
        s.data_ready = st.arrive;  // rendezvous: waits for the receiver
      }
      sends_[dst].push_back(s);
      trySendRecvMatch(dst);
      break;
    }
    case MpiKind::kRecv: {
      PostedRecv r;
      r.peer = op.mpi.peer;
      r.tag = op.mpi.tag;
      r.arrive = st.arrive;
      recvs_[rank].push_back(r);
      trySendRecvMatch(rank);
      break;
    }
    case MpiKind::kWaitall:
      // All our sends/recvs are blocking; a waitall is a local no-op.
      unblock(rank, st.arrive + alpha_ / 4);
      break;
    case MpiKind::kBarrier:
    case MpiKind::kBcast:
    case MpiKind::kReduce:
    case MpiKind::kAllreduce:
    case MpiKind::kAlltoall:
      ++st.coll_seq;
      tryCollective(op.mpi.kind);
      break;
    case MpiKind::kNone:
      throw std::invalid_argument("kMpi micro-op with kind kNone");
  }
}

void MpiSimulation::trySendRecvMatch(int dst) {
  auto& rq = recvs_[dst];
  auto& sq = sends_[dst];
  while (!rq.empty()) {
    const PostedRecv recv = rq.front();
    // MPI matching order: the first posted send that satisfies (peer, tag).
    auto it = std::find_if(sq.begin(), sq.end(), [&](const PostedSend& s) {
      return (recv.peer == kAnyPeer || recv.peer == s.src) &&
             (recv.tag == -1 || recv.tag == s.tag);
    });
    if (it == sq.end()) return;
    const PostedSend send = *it;
    sq.erase(it);
    rq.pop_front();
    completeTransfer(send.src, dst, send, recv.arrive);
  }
}

void MpiSimulation::completeTransfer(int src, int dst,
                                     const PostedSend& send,
                                     Cycle recv_arrive) {
  ++result_.messages;
  result_.bytes_moved += send.bytes;

  if (send.eager) {
    // Sender already resumed at copy-in completion; the receiver drains the
    // shared buffer once both the data and the receiver are ready.
    const Cycle start = std::max(send.data_ready, recv_arrive + alpha_);
    const Cycle done = soc_->mem().bulkCopy(
        static_cast<unsigned>(dst), shmBuffer(src, dst), rankBuffer(dst),
        send.bytes, start);
    unblock(dst, done);
    return;
  }

  // Rendezvous: both sides handshake, sender streams in, receiver streams
  // out (pipelining between the two copies is folded into bulkCopy cost).
  const Cycle start = std::max(send.data_ready, recv_arrive) + alpha_;
  const Cycle in_done = soc_->mem().bulkCopy(
      static_cast<unsigned>(src), rankBuffer(src), shmBuffer(src, dst),
      send.bytes, start);
  const Cycle out_done = soc_->mem().bulkCopy(
      static_cast<unsigned>(dst), shmBuffer(src, dst), rankBuffer(dst),
      send.bytes, in_done);
  unblock(src, in_done);
  unblock(dst, out_done);
}

std::pair<Cycle, Cycle> MpiSimulation::transferCost(int src, int dst,
                                                    std::uint64_t bytes,
                                                    Cycle t_src,
                                                    Cycle t_dst) {
  ++result_.messages;
  result_.bytes_moved += bytes;
  const Cycle start = std::max(t_src, t_dst) + alpha_;
  const Cycle in_done = soc_->mem().bulkCopy(
      static_cast<unsigned>(src), rankBuffer(src), shmBuffer(src, dst),
      bytes, start);
  const Cycle out_done = soc_->mem().bulkCopy(
      static_cast<unsigned>(dst), shmBuffer(src, dst), rankBuffer(dst),
      bytes, in_done);
  return {in_done, out_done};
}

void MpiSimulation::tryCollective(MpiKind kind) {
  // All ranks must reach their next collective before it resolves.
  std::vector<int> participants;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankState& st = ranks_[r];
    if (st.done) {
      throw std::runtime_error(
          "collective posted after some rank already finished");
    }
    if (st.blocked && st.pending.cls == OpClass::kMpi &&
        st.pending.mpi.kind != MpiKind::kSend &&
        st.pending.mpi.kind != MpiKind::kRecv &&
        st.pending.mpi.kind != MpiKind::kWaitall) {
      participants.push_back(static_cast<int>(r));
    }
  }
  if (participants.size() != ranks_.size()) return;
  for (const int r : participants) {
    if (ranks_[r].pending.mpi.kind != kind) {
      throw std::runtime_error("mismatched collective kinds across ranks");
    }
  }
  resolveCollective(kind, participants);
}

MpiRunResult runMpiProgram(Soc* soc, int nranks, const RankProgram& program,
                           const MpiParams& params) {
  std::vector<TraceSourcePtr> traces;
  traces.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) traces.push_back(program(r, nranks));
  MpiSimulation sim(soc, std::move(traces), params);
  return sim.run();
}

}  // namespace bridge
