#include "serve/protocol.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "sim/jsonio.h"
#include "sweep/faults.h"

namespace bridge::serve {

namespace {

// ---------------------------------------------------------------------------
// Enum <-> name maps. Every enum crosses the wire by name, not ordinal, so
// a reordered enum in a future version fails the parse instead of silently
// meaning a different platform.

std::optional<WorkloadKind> workloadKindFromName(std::string_view name) {
  for (const WorkloadKind k :
       {WorkloadKind::kMicrobench, WorkloadKind::kNpb, WorkloadKind::kUme,
        WorkloadKind::kLammps}) {
    if (workloadKindName(k) == name) return k;
  }
  return std::nullopt;
}

std::optional<PlatformId> platformFromName(std::string_view name) {
  for (const PlatformId id : allPlatforms()) {
    if (platformName(id) == name) return id;
  }
  return std::nullopt;
}

std::optional<NpbBenchmark> npbFromName(std::string_view name) {
  for (const NpbBenchmark b : allNpbBenchmarks()) {
    if (npbName(b) == name) return b;
  }
  return std::nullopt;
}

std::string_view lammpsKindName(LammpsBenchmark b) {
  return b == LammpsBenchmark::kLennardJones ? "lj" : "chain";
}

std::optional<LammpsBenchmark> lammpsFromName(std::string_view name) {
  if (name == "lj") return LammpsBenchmark::kLennardJones;
  if (name == "chain") return LammpsBenchmark::kChain;
  return std::nullopt;
}

std::optional<JobOutcome> outcomeFromName(std::string_view name) {
  for (const JobOutcome o : {JobOutcome::kOk, JobOutcome::kFailed,
                             JobOutcome::kTimedOut, JobOutcome::kQuarantined}) {
    if (jobOutcomeName(o) == name) return o;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// JSON building helpers (the jsonio subset: bools ride as 0/1).

void appendField(std::string* out, bool* first, std::string_view key) {
  *out += *first ? "" : ",";
  *first = false;
  jsonio::appendEscaped(out, key);
  *out += ":";
}

void appendString(std::string* out, bool* first, std::string_view key,
                  std::string_view value) {
  appendField(out, first, key);
  jsonio::appendEscaped(out, value);
}

void appendUint(std::string* out, bool* first, std::string_view key,
                std::uint64_t value) {
  appendField(out, first, key);
  *out += std::to_string(value);
}

void appendDouble(std::string* out, bool* first, std::string_view key,
                  double value) {
  appendField(out, first, key);
  *out += jsonio::formatDouble(value);
}

// ---------------------------------------------------------------------------
// JobSpec

void appendJobSpec(std::string* out, const JobSpec& spec) {
  bool first = true;
  *out += "{";
  appendString(out, &first, "label", spec.label);
  appendString(out, &first, "kind", workloadKindName(spec.kind));
  appendString(out, &first, "platform", platformName(spec.platform));
  appendUint(out, &first, "ranks", static_cast<std::uint64_t>(spec.ranks));
  appendDouble(out, &first, "scale", spec.scale);
  appendUint(out, &first, "seed", spec.seed);
  appendString(out, &first, "kernel", spec.kernel);
  appendUint(out, &first, "warmup", spec.warmup ? 1 : 0);
  appendString(out, &first, "npb", npbName(spec.npb));
  appendString(out, &first, "lammps", lammpsKindName(spec.lammps));
  appendUint(out, &first, "npb_mg_top", spec.npb_mg_top);
  appendUint(out, &first, "ume_zones_per_dim", spec.ume_zones_per_dim);
  appendUint(out, &first, "lammps_atoms", spec.lammps_atoms);
  appendUint(out, &first, "lammps_timesteps", spec.lammps_timesteps);
  appendUint(out, &first, "lammps_neighbors", spec.lammps_neighbors);
  appendUint(out, &first, "lammps_simd_lanes", spec.lammps_simd_lanes);
  appendField(out, &first, "overrides");
  *out += "{";
  bool ofirst = true;
  spec.overrides.forEach([&](const std::string& key, const std::string& value) {
    appendString(out, &ofirst, key, value);
  });
  *out += "}}";
}

bool parseEnumField(jsonio::Parser& v, const auto& from_name, auto* slot) {
  std::string name;
  if (!v.parseString(&name)) return false;
  const auto parsed = from_name(name);
  if (!parsed) return false;
  *slot = *parsed;
  return true;
}

bool parseUintInto(jsonio::Parser& v, auto* slot) {
  std::uint64_t value = 0;
  if (!v.parseUint64(&value)) return false;
  *slot = static_cast<std::remove_pointer_t<decltype(slot)>>(value);
  return true;
}

bool parseBoolInto(jsonio::Parser& v, bool* slot) {
  std::uint64_t value = 0;
  if (!v.parseUint64(&value) || value > 1) return false;
  *slot = value != 0;
  return true;
}

bool parseJobSpec(jsonio::Parser& p, JobSpec* spec) {
  return p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "label") return v.parseString(&spec->label);
    if (key == "kind") return parseEnumField(v, workloadKindFromName, &spec->kind);
    if (key == "platform") {
      return parseEnumField(v, platformFromName, &spec->platform);
    }
    if (key == "ranks") return parseUintInto(v, &spec->ranks);
    if (key == "scale") return v.parseDouble(&spec->scale);
    if (key == "seed") return v.parseUint64(&spec->seed);
    if (key == "kernel") return v.parseString(&spec->kernel);
    if (key == "warmup") return parseBoolInto(v, &spec->warmup);
    if (key == "npb") return parseEnumField(v, npbFromName, &spec->npb);
    if (key == "lammps") return parseEnumField(v, lammpsFromName, &spec->lammps);
    if (key == "npb_mg_top") return parseUintInto(v, &spec->npb_mg_top);
    if (key == "ume_zones_per_dim") {
      return parseUintInto(v, &spec->ume_zones_per_dim);
    }
    if (key == "lammps_atoms") return v.parseUint64(&spec->lammps_atoms);
    if (key == "lammps_timesteps") {
      return parseUintInto(v, &spec->lammps_timesteps);
    }
    if (key == "lammps_neighbors") {
      return parseUintInto(v, &spec->lammps_neighbors);
    }
    if (key == "lammps_simd_lanes") {
      return parseUintInto(v, &spec->lammps_simd_lanes);
    }
    if (key == "overrides") {
      return v.parseObject([&](const std::string& okey, jsonio::Parser& ov) {
        std::string value;
        if (!ov.parseString(&value)) return false;
        spec->overrides.set(okey, value);
        return true;
      });
    }
    return false;  // unknown field: a different protocol version — reject
  });
}

// ---------------------------------------------------------------------------
// SweepResult

void appendSweepResult(std::string* out, const SweepResult& r) {
  bool first = true;
  *out += "{";
  appendString(out, &first, "label", r.label);
  appendString(out, &first, "fingerprint", r.fingerprint);
  appendString(out, &first, "outcome", jobOutcomeName(r.outcome));
  appendString(out, &first, "error", r.error);
  appendUint(out, &first, "attempts", r.attempts);
  appendUint(out, &first, "from_cache", r.from_cache ? 1 : 0);
  appendUint(out, &first, "cycles", r.result.cycles);
  appendDouble(out, &first, "seconds", r.result.seconds);
  appendUint(out, &first, "retired", r.result.retired);
  appendDouble(out, &first, "ipc", r.result.ipc);
  appendUint(out, &first, "messages", r.result.messages);
  appendField(out, &first, "stats");
  *out += "{";
  bool sfirst = true;
  for (const auto& [name, value] : r.stats) {
    appendUint(out, &sfirst, name, value);
  }
  *out += "}}";
}

bool parseSweepResult(jsonio::Parser& p, SweepResult* r) {
  return p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "label") return v.parseString(&r->label);
    if (key == "fingerprint") return v.parseString(&r->fingerprint);
    if (key == "outcome") return parseEnumField(v, outcomeFromName, &r->outcome);
    if (key == "error") return v.parseString(&r->error);
    if (key == "attempts") return parseUintInto(v, &r->attempts);
    if (key == "from_cache") return parseBoolInto(v, &r->from_cache);
    if (key == "cycles") return v.parseUint64(&r->result.cycles);
    if (key == "seconds") return v.parseDouble(&r->result.seconds);
    if (key == "retired") return v.parseUint64(&r->result.retired);
    if (key == "ipc") return v.parseDouble(&r->result.ipc);
    if (key == "messages") return v.parseUint64(&r->result.messages);
    if (key == "stats") {
      return v.parseObject([&](const std::string& name, jsonio::Parser& sv) {
        std::uint64_t value = 0;
        if (!sv.parseUint64(&value)) return false;
        r->stats.emplace_back(name, value);
        return true;
      });
    }
    return false;
  });
}

// ---------------------------------------------------------------------------
// RunReport

void appendRunReport(std::string* out, const RunReport& report) {
  bool first = true;
  *out += "{";
  appendUint(out, &first, "total", report.total);
  appendUint(out, &first, "ok", report.ok);
  appendUint(out, &first, "failed", report.failed);
  appendUint(out, &first, "timed_out", report.timed_out);
  appendUint(out, &first, "quarantined", report.quarantined);
  appendUint(out, &first, "from_cache", report.from_cache);
  appendUint(out, &first, "retried", report.retried);
  appendField(out, &first, "failed_labels");
  *out += "[";
  bool lfirst = true;
  for (const std::string& label : report.failed_labels) {
    *out += lfirst ? "" : ",";
    lfirst = false;
    jsonio::appendEscaped(out, label);
  }
  *out += "]}";
}

bool parseRunReport(jsonio::Parser& p, RunReport* report) {
  return p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "total") return parseUintInto(v, &report->total);
    if (key == "ok") return parseUintInto(v, &report->ok);
    if (key == "failed") return parseUintInto(v, &report->failed);
    if (key == "timed_out") return parseUintInto(v, &report->timed_out);
    if (key == "quarantined") return parseUintInto(v, &report->quarantined);
    if (key == "from_cache") return parseUintInto(v, &report->from_cache);
    if (key == "retried") return parseUintInto(v, &report->retried);
    if (key == "failed_labels") {
      return v.parseArray([&](jsonio::Parser& ev) {
        std::string label;
        if (!ev.parseString(&label)) return false;
        report->failed_labels.push_back(std::move(label));
        return true;
      });
    }
    return false;
  });
}

// ---------------------------------------------------------------------------
// ServeStats

// `elastic` gates the v2 counters: a v1 client parses stats strictly, so
// its frames must keep the exact v1 key set. The parser accepts both
// shapes (absent counters stay zero).
void appendServeStats(std::string* out, const ServeStats& stats,
                      bool elastic) {
  bool first = true;
  *out += "{";
  appendUint(out, &first, "connections", stats.connections);
  appendUint(out, &first, "requests", stats.requests);
  appendUint(out, &first, "jobs", stats.jobs);
  appendUint(out, &first, "admitted", stats.admitted);
  appendUint(out, &first, "attached", stats.attached);
  appendUint(out, &first, "executed", stats.executed);
  appendUint(out, &first, "cache_hits", stats.cache_hits);
  if (elastic) {
    appendUint(out, &first, "workers", stats.workers);
    appendUint(out, &first, "claimed", stats.claimed);
    appendUint(out, &first, "completed_remote", stats.completed_remote);
    appendUint(out, &first, "leases_expired", stats.leases_expired);
    appendUint(out, &first, "orphans_readmitted", stats.orphans_readmitted);
    appendUint(out, &first, "journal_replayed", stats.journal_replayed);
  }
  appendField(out, &first, "report");
  appendRunReport(out, stats.report);
  *out += "}";
}

bool parseServeStats(jsonio::Parser& p, ServeStats* stats) {
  return p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "connections") return v.parseUint64(&stats->connections);
    if (key == "requests") return v.parseUint64(&stats->requests);
    if (key == "jobs") return v.parseUint64(&stats->jobs);
    if (key == "admitted") return v.parseUint64(&stats->admitted);
    if (key == "attached") return v.parseUint64(&stats->attached);
    if (key == "executed") return v.parseUint64(&stats->executed);
    if (key == "cache_hits") return v.parseUint64(&stats->cache_hits);
    if (key == "workers") return v.parseUint64(&stats->workers);
    if (key == "claimed") return v.parseUint64(&stats->claimed);
    if (key == "completed_remote") {
      return v.parseUint64(&stats->completed_remote);
    }
    if (key == "leases_expired") return v.parseUint64(&stats->leases_expired);
    if (key == "orphans_readmitted") {
      return v.parseUint64(&stats->orphans_readmitted);
    }
    if (key == "journal_replayed") {
      return v.parseUint64(&stats->journal_replayed);
    }
    if (key == "report") return parseRunReport(v, &stats->report);
    return false;
  });
}

// ---------------------------------------------------------------------------
// LeaseGrant

void appendLeaseGrant(std::string* out, const LeaseGrant& grant) {
  bool first = true;
  *out += "{";
  appendUint(out, &first, "lease", grant.lease);
  appendUint(out, &first, "deadline_ms", grant.deadline_ms);
  appendField(out, &first, "job");
  appendJobSpec(out, grant.job);
  *out += "}";
}

bool parseLeaseGrant(jsonio::Parser& p, LeaseGrant* grant) {
  return p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "lease") return v.parseUint64(&grant->lease);
    if (key == "deadline_ms") return v.parseUint64(&grant->deadline_ms);
    if (key == "job") return parseJobSpec(v, &grant->job);
    return false;
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing

std::string encodeFrame(const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::length_error("serve frame payload exceeds " +
                            std::to_string(kMaxFramePayload) + " bytes");
  }
  char header[10];
  std::snprintf(header, sizeof header, "%08zx\n", payload.size());
  return header + payload;
}

std::optional<std::size_t> decodeFrameHeader(std::string_view header) {
  if (header.size() < 9 || header[8] != '\n') return std::nullopt;
  std::size_t length = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = header[i];
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return std::nullopt;  // uppercase or junk: we never write it
    }
    length = (length << 4) | static_cast<std::size_t>(digit);
  }
  if (length > kMaxFramePayload) return std::nullopt;
  return length;
}

namespace {

constexpr int kPollSliceMs = 100;

bool setIoError(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
  return false;
}

/// Read exactly `n` bytes. `*clean_eof` (if non-null) reports EOF/stop
/// hit before the first byte — the peer hung up between frames. A non-null
/// `deadline` bounds the wait; on expiry the read fails and *timed_out is
/// set (torn frames and deadlines both surface as false + error, the flag
/// is what tells them apart).
bool recvExact(int fd, char* buf, std::size_t n, std::string* error,
               const std::atomic<bool>* stop, bool* clean_eof,
               const std::chrono::steady_clock::time_point* deadline,
               bool* timed_out) {
  std::size_t got = 0;
  if (clean_eof != nullptr) *clean_eof = false;
  while (got < n) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      if (error != nullptr && got != 0) *error = "stopped mid-frame";
      return false;
    }
    int slice = kPollSliceMs;
    if (deadline != nullptr) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            *deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) {
        if (timed_out != nullptr) *timed_out = true;
        if (error != nullptr) *error = "timed out waiting for frame";
        return false;
      }
      slice = static_cast<int>(
          std::min<long long>(left, static_cast<long long>(kPollSliceMs)));
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, slice);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return setIoError(error, "poll");
    }
    if (ready == 0) continue;  // timeout slice: re-check stop + deadline
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return setIoError(error, "recv");
    }
    if (r == 0) {  // peer closed
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      if (error != nullptr && got != 0) *error = "connection closed mid-frame";
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool sendFrame(int fd, const std::string& payload, std::string* error) {
  std::string frame;
  try {
    frame = encodeFrame(payload);
  } catch (const std::length_error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return setIoError(error, "send");
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool sendTornFrame(int fd, const std::string& payload, std::string* error) {
  std::string frame;
  try {
    frame = encodeFrame(payload);
  } catch (const std::length_error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  // The header promises the full payload; deliver the header plus at most
  // half of it, so the peer reads a well-formed length and then starves —
  // exactly what a writer killed mid-send leaves on the wire.
  const std::size_t torn = std::max<std::size_t>(9, frame.size() / 2);
  std::size_t sent = 0;
  while (sent < torn) {
    const ssize_t w = ::send(fd, frame.data() + sent, torn - sent,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return setIoError(error, "send");
    }
    sent += static_cast<std::size_t>(w);
  }
  if (error != nullptr) *error = "chaos: torn frame";
  return false;
}

bool sendFrameChaos(int fd, const std::string& payload, std::string* error,
                    const FaultInjector* chaos, std::uint64_t connection,
                    std::uint64_t frame) {
  if (chaos == nullptr || !chaos->plan().anyTransport()) {
    return sendFrame(fd, payload, error);
  }
  switch (chaos->transportFault(connection, frame)) {
    case FaultInjector::TransportFault::kDrop:
      if (error != nullptr) *error = "chaos: connection dropped";
      return false;
    case FaultInjector::TransportFault::kTorn:
      return sendTornFrame(fd, payload, error);
    case FaultInjector::TransportFault::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(chaos->frameDelayMs()));
      break;
    case FaultInjector::TransportFault::kNone:
      break;
  }
  return sendFrame(fd, payload, error);
}

bool recvFrame(int fd, std::string* payload, std::string* error,
               const std::atomic<bool>* stop, std::uint64_t timeout_ms,
               bool* timed_out) {
  if (error != nullptr) error->clear();
  if (timed_out != nullptr) *timed_out = false;
  std::chrono::steady_clock::time_point deadline_storage;
  const std::chrono::steady_clock::time_point* deadline = nullptr;
  if (timeout_ms > 0) {
    deadline_storage = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }
  char header[9];
  bool clean_eof = false;
  if (!recvExact(fd, header, sizeof header, error, stop, &clean_eof, deadline,
                 timed_out)) {
    return false;  // clean_eof leaves *error empty by construction
  }
  const std::optional<std::size_t> length =
      decodeFrameHeader(std::string_view(header, sizeof header));
  if (!length) {
    if (error != nullptr) *error = "malformed frame header";
    return false;
  }
  payload->resize(*length);
  if (*length == 0) return true;
  return recvExact(fd, payload->data(), *length, error, stop, nullptr,
                   deadline, timed_out);
}

// ---------------------------------------------------------------------------
// Public codecs

std::string jobSpecToJson(const JobSpec& spec) {
  std::string out;
  appendJobSpec(&out, spec);
  return out;
}

std::optional<JobSpec> jobSpecFromJson(const std::string& json) {
  JobSpec spec;
  jsonio::Parser p(json);
  if (!parseJobSpec(p, &spec) || !p.atEnd()) return std::nullopt;
  return spec;
}

std::string sweepResultToJson(const SweepResult& result) {
  std::string out;
  appendSweepResult(&out, result);
  return out;
}

std::optional<SweepResult> sweepResultFromJson(const std::string& json) {
  SweepResult result;
  jsonio::Parser p(json);
  if (!parseSweepResult(p, &result) || !p.atEnd()) return std::nullopt;
  return result;
}

std::string runReportToJson(const RunReport& report) {
  std::string out;
  appendRunReport(&out, report);
  return out;
}

std::optional<RunReport> runReportFromJson(const std::string& json) {
  RunReport report;
  jsonio::Parser p(json);
  if (!parseRunReport(p, &report) || !p.atEnd()) return std::nullopt;
  return report;
}

std::string ServeStats::summary() const {
  std::string line = std::to_string(requests) + " requests, " +
                     std::to_string(jobs) + " jobs -> " +
                     std::to_string(admitted) + " admitted (" +
                     std::to_string(attached) + " deduped, " +
                     std::to_string(cache_hits) + " cached, " +
                     std::to_string(executed) + " executed)";
  if (journal_replayed > 0) {
    line += ", " + std::to_string(journal_replayed) + " journal-replayed";
  }
  return line;
}

std::string helloToJson(const ServeHello& hello, bool negotiated) {
  std::string out = "{";
  bool first = true;
  appendString(&out, &first, "type", "hello");
  appendString(&out, &first, "version", hello.version);
  appendString(&out, &first, "policy", hello.policy);
  appendString(&out, &first, "cache_dir", hello.cache_dir);
  appendUint(&out, &first, "workers", hello.workers);
  if (negotiated) {
    appendUint(&out, &first, "lease_ms", hello.lease_ms);
    appendUint(&out, &first, "worker_id", hello.worker_id);
  }
  out += "}";
  return out;
}

std::optional<ServeHello> helloFromJson(const std::string& json) {
  ServeHello hello;
  std::string type;
  jsonio::Parser p(json);
  const bool ok = p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "type") return v.parseString(&type);
    if (key == "version") return v.parseString(&hello.version);
    if (key == "policy") return v.parseString(&hello.policy);
    if (key == "cache_dir") return v.parseString(&hello.cache_dir);
    if (key == "workers") return v.parseUint64(&hello.workers);
    if (key == "lease_ms") return v.parseUint64(&hello.lease_ms);
    if (key == "worker_id") return v.parseUint64(&hello.worker_id);
    return false;
  });
  if (!ok || !p.atEnd() || type != "hello") return std::nullopt;
  return hello;
}

std::string statsToJson(const ServeStats& stats, bool elastic) {
  std::string out;
  appendServeStats(&out, stats, elastic);
  return out;
}

std::optional<ServeStats> statsFromJson(const std::string& json) {
  ServeStats stats;
  jsonio::Parser p(json);
  if (!parseServeStats(p, &stats) || !p.atEnd()) return std::nullopt;
  return stats;
}

std::string requestToJson(const ServeRequest& request) {
  std::string out = "{";
  bool first = true;
  switch (request.kind) {
    case ServeRequest::Kind::kRun: {
      appendString(&out, &first, "type", "run");
      appendField(&out, &first, "jobs");
      out += "[";
      bool jfirst = true;
      for (const JobSpec& job : request.jobs) {
        out += jfirst ? "" : ",";
        jfirst = false;
        appendJobSpec(&out, job);
      }
      out += "]";
      break;
    }
    case ServeRequest::Kind::kStats:
      appendString(&out, &first, "type", "stats");
      break;
    case ServeRequest::Kind::kShutdown:
      appendString(&out, &first, "type", "shutdown");
      break;
    case ServeRequest::Kind::kPing:
      appendString(&out, &first, "type", "ping");
      break;
    case ServeRequest::Kind::kHello:
      appendString(&out, &first, "type", "hello");
      appendString(&out, &first, "version", request.version);
      appendString(&out, &first, "role", request.role);
      appendString(&out, &first, "policy", request.policy);
      appendString(&out, &first, "name", request.name);
      break;
    case ServeRequest::Kind::kClaim:
      appendString(&out, &first, "type", "claim");
      appendUint(&out, &first, "max_jobs", request.max_jobs);
      break;
    case ServeRequest::Kind::kComplete:
      appendString(&out, &first, "type", "complete");
      appendUint(&out, &first, "lease", request.lease);
      appendField(&out, &first, "result");
      appendSweepResult(&out, request.result);
      break;
    case ServeRequest::Kind::kFail:
      appendString(&out, &first, "type", "fail");
      appendUint(&out, &first, "lease", request.lease);
      appendString(&out, &first, "message", request.message);
      break;
  }
  out += "}";
  return out;
}

std::optional<ServeRequest> requestFromJson(const std::string& json) {
  ServeRequest request;
  std::string type;
  jsonio::Parser p(json);
  const bool ok = p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "type") return v.parseString(&type);
    if (key == "jobs") {
      return v.parseArray([&](jsonio::Parser& ev) {
        JobSpec spec;
        if (!parseJobSpec(ev, &spec)) return false;
        request.jobs.push_back(std::move(spec));
        return true;
      });
    }
    if (key == "version") return v.parseString(&request.version);
    if (key == "role") return v.parseString(&request.role);
    if (key == "policy") return v.parseString(&request.policy);
    if (key == "name") return v.parseString(&request.name);
    if (key == "max_jobs") return v.parseUint64(&request.max_jobs);
    if (key == "lease") return v.parseUint64(&request.lease);
    if (key == "result") return parseSweepResult(v, &request.result);
    if (key == "message") return v.parseString(&request.message);
    return false;
  });
  if (!ok || !p.atEnd()) return std::nullopt;
  if (type == "run") {
    request.kind = ServeRequest::Kind::kRun;
  } else if (type == "stats") {
    request.kind = ServeRequest::Kind::kStats;
  } else if (type == "shutdown") {
    request.kind = ServeRequest::Kind::kShutdown;
  } else if (type == "ping") {
    request.kind = ServeRequest::Kind::kPing;
  } else if (type == "hello") {
    request.kind = ServeRequest::Kind::kHello;
  } else if (type == "claim") {
    request.kind = ServeRequest::Kind::kClaim;
  } else if (type == "complete") {
    request.kind = ServeRequest::Kind::kComplete;
  } else if (type == "fail") {
    request.kind = ServeRequest::Kind::kFail;
  } else {
    return std::nullopt;
  }
  return request;
}

std::string responseToJson(const ServeResponse& response, bool elastic) {
  // The negotiated hello ack is the complete hello object (type included),
  // so it reuses the hello serializer directly.
  if (response.kind == ServeResponse::Kind::kHello) {
    return helloToJson(response.hello, /*negotiated=*/true);
  }
  std::string out = "{";
  bool first = true;
  switch (response.kind) {
    case ServeResponse::Kind::kHello:
      break;  // handled above
    case ServeResponse::Kind::kClaims: {
      appendString(&out, &first, "type", "claims");
      appendUint(&out, &first, "draining", response.draining ? 1 : 0);
      appendField(&out, &first, "claims");
      out += "[";
      bool cfirst = true;
      for (const LeaseGrant& grant : response.claims) {
        out += cfirst ? "" : ",";
        cfirst = false;
        appendLeaseGrant(&out, grant);
      }
      out += "]";
      break;
    }
    case ServeResponse::Kind::kLeaseAck:
      appendString(&out, &first, "type", "lease_ack");
      appendUint(&out, &first, "accepted", response.accepted ? 1 : 0);
      appendString(&out, &first, "message", response.message);
      break;
    case ServeResponse::Kind::kResults: {
      appendString(&out, &first, "type", "results");
      appendField(&out, &first, "results");
      out += "[";
      bool rfirst = true;
      for (const SweepResult& r : response.results) {
        out += rfirst ? "" : ",";
        rfirst = false;
        appendSweepResult(&out, r);
      }
      out += "]";
      appendField(&out, &first, "report");
      appendRunReport(&out, response.report);
      break;
    }
    case ServeResponse::Kind::kStats:
      appendString(&out, &first, "type", "stats");
      appendField(&out, &first, "stats");
      appendServeStats(&out, response.stats, elastic);
      break;
    case ServeResponse::Kind::kOk:
      appendString(&out, &first, "type", "ok");
      appendField(&out, &first, "report");
      appendRunReport(&out, response.report);
      break;
    case ServeResponse::Kind::kError:
      appendString(&out, &first, "type", "error");
      appendString(&out, &first, "message", response.message);
      break;
  }
  out += "}";
  return out;
}

std::optional<ServeResponse> responseFromJson(const std::string& json) {
  ServeResponse response;
  std::string type;
  jsonio::Parser p(json);
  const bool ok = p.parseObject([&](const std::string& key, jsonio::Parser& v) {
    if (key == "type") return v.parseString(&type);
    if (key == "results") {
      return v.parseArray([&](jsonio::Parser& ev) {
        SweepResult r;
        if (!parseSweepResult(ev, &r)) return false;
        response.results.push_back(std::move(r));
        return true;
      });
    }
    if (key == "report") return parseRunReport(v, &response.report);
    if (key == "stats") return parseServeStats(v, &response.stats);
    if (key == "message") return v.parseString(&response.message);
    // v2 hello ack fields (the ack is a plain hello object).
    if (key == "version") return v.parseString(&response.hello.version);
    if (key == "policy") return v.parseString(&response.hello.policy);
    if (key == "cache_dir") return v.parseString(&response.hello.cache_dir);
    if (key == "workers") return v.parseUint64(&response.hello.workers);
    if (key == "lease_ms") return v.parseUint64(&response.hello.lease_ms);
    if (key == "worker_id") return v.parseUint64(&response.hello.worker_id);
    // v2 claims / lease_ack fields.
    if (key == "claims") {
      return v.parseArray([&](jsonio::Parser& ev) {
        LeaseGrant grant;
        if (!parseLeaseGrant(ev, &grant)) return false;
        response.claims.push_back(std::move(grant));
        return true;
      });
    }
    if (key == "draining") return parseBoolInto(v, &response.draining);
    if (key == "accepted") return parseBoolInto(v, &response.accepted);
    return false;
  });
  if (!ok || !p.atEnd()) return std::nullopt;
  if (type == "results") {
    response.kind = ServeResponse::Kind::kResults;
  } else if (type == "stats") {
    response.kind = ServeResponse::Kind::kStats;
  } else if (type == "ok") {
    response.kind = ServeResponse::Kind::kOk;
  } else if (type == "error") {
    response.kind = ServeResponse::Kind::kError;
  } else if (type == "hello") {
    response.kind = ServeResponse::Kind::kHello;
  } else if (type == "claims") {
    response.kind = ServeResponse::Kind::kClaims;
  } else if (type == "lease_ack") {
    response.kind = ServeResponse::Kind::kLeaseAck;
  } else {
    return std::nullopt;
  }
  return response;
}

}  // namespace bridge::serve
