// Sweep daemon: SweepEngine as a long-running shared service (DESIGN §5g).
//
// The paper's methodology re-runs the same grid cells over and over —
// calibration, tuning, figure regeneration — and PR 5's crash-safe cache
// plus failure policy made those runs restartable. This daemon makes them
// *shareable*: it listens on a Unix-domain socket, speaks the framed JSON
// protocol in serve/protocol.h, and admits experiment requests from any
// number of clients into one engine, so N clients asking for overlapping
// grid cells cost one simulation.
//
// Admission pipeline, per job:
//   1. fingerprint the spec (the same content address the cache uses);
//   2. if a job with that fingerprint is already *in flight*, attach the
//      request to it — no second execution, every waiter gets the same
//      SweepResult (relabelled per request, labels are display-only);
//   3. otherwise admit it into the JobScheduler (serve/scheduler.h): with
//      no workers attached the job runs on the daemon's own pool through
//      SweepEngine::runOne — cache lookup, quarantine check, retry policy,
//      chaos injection, exactly as a local run; with workers attached it
//      is queued for a lease claim and executes remotely (DESIGN §5h),
//      bit-identically, through the same sharded cache.
// Completed fingerprints leave the in-flight table; later requests hit the
// sharded cache instead. The daemon keeps a lifetime outcome tally (a
// RunReport over every *admitted* job) plus admission counters
// (requests/jobs/admitted/attached/executed/cache hits) and the elastic
// counters (workers/claimed/completed_remote/leases_expired/
// orphans_readmitted): dedup is proven when
// executed + completed_remote == unique fingerprints.
//
// Shutdown ("drain"): requestStop() — or a client `shutdown` frame — stops
// the accept loop, refuses new run requests *and* new worker claims, lets
// every admitted job finish (jobs leased to live workers complete
// remotely; orphans re-admit locally), answers the drain request with the
// final RunReport, and join() returns once all connection threads and
// workers are done. Workers are never killed mid-job (same contract as the
// engine's timeout handling).
//
// Threading: one accept thread, one thread per connection (clients are a
// handful of tuners/benches/workers, not the internet), the scheduler's
// lease reaper, and the engine's worker pool sized by SweepOptions::workers
// for the actual simulations. Worker connections outlive requestStop() —
// they are released by join() only after the scheduler is idle, so a
// drain never strands a leased job.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

namespace bridge::serve {

struct DaemonOptions {
  std::string socket_path;  // empty = defaultSocketPath()
  SweepOptions sweep;       // engine options (serve_socket is ignored:
                            // the daemon always executes locally)
  std::uint64_t lease_ms = 0;  // worker lease window; 0 = defaultLeaseMs()
  /// Write-ahead admission journal directory (DESIGN §5k). Empty = the
  /// default, AdmissionJournal::defaultDir over the cache tree (honours
  /// $BRIDGE_JOURNAL); "off" disables journaling. A cache-off daemon never
  /// journals — recovered work would have nowhere to dedup into.
  std::string journal;
};

class SweepDaemon {
 public:
  explicit SweepDaemon(const DaemonOptions& options = {});

  /// Stops and joins; equivalent to requestStop() + join().
  ~SweepDaemon();

  SweepDaemon(const SweepDaemon&) = delete;
  SweepDaemon& operator=(const SweepDaemon&) = delete;

  /// Bind + listen + start the accept loop. A stale socket file from a
  /// previous (killed) daemon is unlinked first. False + *error if the
  /// socket cannot be bound.
  bool start(std::string* error);

  /// Begin the graceful drain: stop accepting, refuse new run requests and
  /// new worker claims. In-flight jobs keep running (leased jobs on their
  /// workers); call join() to wait them out. Safe to call from any thread,
  /// any number of times (NOT from a signal handler — poll a flag and call
  /// it from the main loop, as bench/sweep_serve does).
  void requestStop();

  /// Wait for the accept loop, every admitted job (local or leased), and
  /// every connection to finish, then remove the socket file. Idempotent.
  void join();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  const std::string& socketPath() const { return socket_path_; }

  /// The identity clients must agree with at handshake time (and workers
  /// must match exactly to claim).
  std::string policySignature() const { return engine_.policySignature(); }

  /// Snapshot of the lifetime admission counters + outcome tally, elastic
  /// counters merged in from the scheduler.
  ServeStats stats() const;

  SweepEngine& engine() { return engine_; }
  const JobScheduler& scheduler() const { return scheduler_; }

  /// $BRIDGE_SERVE_SOCKET if set, else "build/sweep-serve.sock".
  static std::string defaultSocketPath();

 private:
  /// Per-connection protocol state: plain v1 until an in-band hello
  /// upgrades it (DESIGN §5h downgrade rules).
  struct ConnState {
    bool v2 = false;
    bool worker = false;
    std::uint64_t worker_id = 0;
  };

  void acceptLoop();
  void handleConnection(int fd);
  /// Open the journal (per options_.journal) and re-admit every recovered
  /// orphan through the normal scheduler path. Called by start() before
  /// the accept loop; failures degrade to journal-less operation.
  void openJournalAndReplay();
  ServeResponse handleRequest(const ServeRequest& request, ConnState* conn,
                              bool* drain);
  ServeResponse handleHello(const ServeRequest& request, ConnState* conn);
  std::vector<SweepResult> admitJobs(const std::vector<JobSpec>& jobs);
  SweepResult executeAdmitted(const JobSpec& spec,
                              const std::string& fingerprint);
  void onResolved(const SweepResult& result, JobScheduler::Origin origin);
  void tallyOutcome(const SweepResult& result);

  DaemonOptions options_;
  std::string socket_path_;
  SweepEngine engine_;
  ThreadPool pool_;
  JobScheduler scheduler_;  // declared after pool_: destroyed (reaper
                            // joined) before the pool it dispatches to

  AdmissionJournal journal_;
  std::atomic<std::uint64_t> conn_seq_{0};  // transport-chaos connection ids

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> workers_stop_{false};  // set by join() after waitIdle
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;

  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

}  // namespace bridge::serve
