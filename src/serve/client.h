// ServeClient: the library side of the sweep daemon protocol.
//
// A client owns one connected Unix-domain socket. Construction performs
// the handshake: connect, read the daemon's `hello` frame, verify the
// protocol version. Policy agreement is the caller's second step —
// requirePolicy(engine.policySignature()) throws if the daemon would
// compute results under a different failure policy than the caller
// expects, which is how SweepEngine's remote mode refuses to silently
// mix incomparable data.
//
// All request methods are strict request/response under one mutex, so a
// single ServeClient may be shared by the threads of one process; for
// concurrency *across* requests, open one client per thread — the daemon
// handles each connection independently.
//
// Every method throws std::runtime_error on socket failure, protocol
// violation, or a daemon-side `error` response.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace bridge::serve {

class ServeClient {
 public:
  /// Connect + handshake. Throws if the socket cannot be reached or the
  /// daemon speaks a different protocol version.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  const std::string& socketPath() const { return socket_path_; }

  /// The daemon's handshake frame (version, policy, cache dir, workers).
  const ServeHello& hello() const { return hello_; }

  /// Throw unless the daemon's policy signature equals `signature`.
  void requirePolicy(const std::string& signature) const;

  /// Submit a batch; blocks until the daemon has a result for every job
  /// (freshly executed, attached to an in-flight twin, or cache hit).
  /// Results come back in request order. If `report` is non-null it
  /// receives the per-request outcome tally.
  std::vector<SweepResult> run(const std::vector<JobSpec>& jobs,
                               RunReport* report = nullptr);

  /// Daemon-lifetime admission counters.
  ServeStats stats();

  /// Liveness probe; throws if the daemon is gone.
  void ping();

  /// Ask the daemon to drain: it finishes in-flight jobs, replies with its
  /// final lifetime RunReport, and exits its serve loop.
  RunReport shutdownDaemon();

 private:
  ServeResponse roundTrip(const ServeRequest& request);

  std::string socket_path_;
  int fd_ = -1;
  ServeHello hello_;
  std::mutex mu_;
};

}  // namespace bridge::serve
