// ServeClient: the library side of the sweep daemon protocol.
//
// A client owns one connected Unix-domain socket. Construction performs
// the handshake: connect, read the daemon's `hello` frame, verify the
// protocol version. Policy agreement is the caller's second step —
// requirePolicy(engine.policySignature()) throws if the daemon would
// compute results under a different failure policy than the caller
// expects, which is how SweepEngine's remote mode refuses to silently
// mix incomparable data.
//
// Deadlines (DESIGN §5k): connect and every recv honor
// ClientOptions::timeout_ms (default $BRIDGE_SERVE_TIMEOUT_MS, 0 = legacy
// block-forever), so a dead daemon surfaces as a typed ServeTimeoutError
// instead of a hung bench. Connection-level failures — timeouts, dropped
// or torn frames, a refused connect — throw ServeConnectionError;
// daemon-side `error` responses stay plain std::runtime_error and are
// never retried (the daemon answered; retrying would re-ask a question it
// already refused).
//
// Reconnect: run() survives daemon restarts and transport chaos. On a
// connection-level failure it redials with seeded exponential backoff +
// jitter (a pure hash in the FaultPlan idiom — two clients with the same
// seed back off identically, and a chaos run replays its own timing) and
// resubmits the same batch. Resubmission is safe by construction: jobs are
// content-addressed, so a restarted daemon dedupes re-sent work against
// its journal-replayed flights and the shard cache — the identity
// executed + completed_remote == unique fingerprints holds across the
// crash. Worker verbs (claim/complete/fail) do NOT auto-reconnect: a
// worker's leases die with the daemon, so SweepWorker re-hellos explicitly
// via tryReconnect() and starts a fresh registration.
//
// All request methods are strict request/response under one mutex, so a
// single ServeClient may be shared by the threads of one process; for
// concurrency *across* requests, open one client per thread — the daemon
// handles each connection independently.
//
// Every method throws std::runtime_error on socket failure, protocol
// violation, or a daemon-side `error` response.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace bridge::serve {

/// Connection-level failure: connect refused, send/recv error, torn frame,
/// or the daemon closing mid-request. Retryable by reconnecting.
class ServeConnectionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A connect or recv deadline expired ($BRIDGE_SERVE_TIMEOUT_MS). A
/// ServeConnectionError, so reconnect logic treats it like any other
/// transport failure.
class ServeTimeoutError : public ServeConnectionError {
 public:
  using ServeConnectionError::ServeConnectionError;
};

/// Deterministic reconnect schedule: attempt `a` waits
/// min(base_ms << a, cap_ms) scaled by a jitter in [0.5, 1.5) that is a
/// pure hash of (seed, epoch, attempt) — the FaultPlan idiom, so recovery
/// timing is replayable and a fleet of clients with distinct seeds
/// de-synchronizes instead of thundering back in lockstep.
struct ReconnectPolicy {
  unsigned attempts = 5;        // redials per failure; 0 = never reconnect
  std::uint64_t base_ms = 50;   // first delay
  std::uint64_t cap_ms = 2000;  // exponential ceiling
  std::uint64_t seed = 1;       // folded into the jitter hash

  /// Delay before reconnect `attempt` (0-based) of reconnect cycle
  /// `epoch`. Pure in its inputs.
  std::uint64_t delayMs(std::uint64_t epoch, unsigned attempt) const;

  /// $BRIDGE_SERVE_RECONNECT ("attempts=5,base=50,cap=2000,seed=1");
  /// unset keeps the defaults, a malformed spec keeps the defaults with
  /// one warning.
  static ReconnectPolicy fromEnv();
};

struct ClientOptions {
  /// Connect + per-recv deadline in ms; 0 = block forever (legacy).
  /// Default: $BRIDGE_SERVE_TIMEOUT_MS, else kDefaultTimeoutMs.
  std::uint64_t timeout_ms;
  ReconnectPolicy reconnect;

  ClientOptions();
};

class ServeClient {
 public:
  /// Generous enough for a cold NPB grid to simulate while the client
  /// waits; a dead daemon still surfaces in finite time.
  static constexpr std::uint64_t kDefaultTimeoutMs = 120'000;

  /// $BRIDGE_SERVE_TIMEOUT_MS if set (0 = block forever), else
  /// kDefaultTimeoutMs.
  static std::uint64_t defaultTimeoutMs();

  /// Connect + handshake. Throws ServeConnectionError/ServeTimeoutError if
  /// the socket cannot be reached in time, plain runtime_error if the
  /// daemon speaks a different protocol version.
  explicit ServeClient(const std::string& socket_path,
                       const ClientOptions& options = {});
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  const std::string& socketPath() const { return socket_path_; }
  const ClientOptions& options() const { return options_; }

  /// The daemon's handshake frame (version, policy, cache dir, workers).
  /// After a successful negotiate() this is the *negotiated* hello, which
  /// also carries lease_ms (and worker_id for role "worker").
  const ServeHello& hello() const { return hello_; }

  /// In-band protocol upgrade (DESIGN §5h): propose kProtocolVersionV2
  /// with a role ("client" or "worker"). Workers must pass their engine's
  /// policySignature() — the daemon refuses mismatched workers before they
  /// can claim anything. Throws on refusal, and on a v1-only daemon (which
  /// answers `error` to the unknown frame and drops the connection — catch
  /// and reconnect to keep talking v1).
  void negotiate(const std::string& role, const std::string& policy,
                 const std::string& name);

  /// Version in force on this connection: kProtocolVersion until a
  /// successful negotiate(), then the granted version.
  const std::string& negotiatedVersion() const { return negotiated_; }

  /// Redial with the backoff schedule: up to reconnect.attempts tries,
  /// re-handshaking (and re-negotiating, when negotiate() had succeeded —
  /// a worker comes back registered under a fresh worker_id). True on
  /// success; false once the schedule is exhausted (*error, if non-null,
  /// keeps the last failure). Used internally by run() and by SweepWorker's
  /// re-hello loop.
  bool tryReconnect(std::string* error);

  /// Successful reconnects over this client's lifetime.
  std::uint64_t reconnects() const;

  /// Worker: pull up to max_jobs leased jobs (0 = pure heartbeat, renews
  /// this worker's leases). Sets *draining when the daemon refuses new
  /// work — finish outstanding leases and disconnect.
  std::vector<LeaseGrant> claim(std::uint64_t max_jobs, bool* draining);

  /// Worker: post a result against a live lease. False + *reason when the
  /// daemon rejected it (lease expired, re-admitted elsewhere, or already
  /// resolved) — drop the result, the scheduler owns the job now.
  bool completeLease(std::uint64_t lease, const SweepResult& result,
                     std::string* reason);

  /// Worker: report a failed execution against a live lease; the daemon
  /// orphans the job (retry budget applies) rather than failing it.
  bool failLease(std::uint64_t lease, const std::string& message,
                 std::string* reason);

  /// Throw unless the daemon's policy signature equals `signature`.
  void requirePolicy(const std::string& signature) const;

  /// Submit a batch; blocks until the daemon has a result for every job
  /// (freshly executed, attached to an in-flight twin, or cache hit).
  /// Results come back in request order. If `report` is non-null it
  /// receives the per-request outcome tally. Transparently reconnects and
  /// resubmits (by fingerprint — the daemon dedupes) on connection-level
  /// failures, up to reconnect.attempts resubmissions.
  std::vector<SweepResult> run(const std::vector<JobSpec>& jobs,
                               RunReport* report = nullptr);

  /// Daemon-lifetime admission counters.
  ServeStats stats();

  /// Liveness probe; throws if the daemon is gone.
  void ping();

  /// Ask the daemon to drain: it finishes in-flight jobs, replies with its
  /// final lifetime RunReport, and exits its serve loop.
  RunReport shutdownDaemon();

 private:
  /// Dial + read the unsolicited hello + version check. Throws; on throw
  /// fd_ is closed. Caller holds mu_.
  void connectLocked();
  void negotiateLocked(const std::string& role, const std::string& policy,
                       const std::string& name);
  bool tryReconnectLocked(std::string* error);
  ServeResponse roundTrip(const ServeRequest& request);
  ServeResponse roundTripLocked(const ServeRequest& request);

  std::string socket_path_;
  ClientOptions options_;
  int fd_ = -1;
  ServeHello hello_;
  std::string negotiated_ = std::string(kProtocolVersion);
  // Remembered negotiate() arguments, replayed by tryReconnect().
  bool renegotiate_ = false;
  std::string nego_role_, nego_policy_, nego_name_;
  std::uint64_t reconnects_ = 0;
  std::uint64_t epoch_ = 0;  // reconnect cycles, folded into the jitter
  mutable std::mutex mu_;
};

}  // namespace bridge::serve
