// ServeClient: the library side of the sweep daemon protocol.
//
// A client owns one connected Unix-domain socket. Construction performs
// the handshake: connect, read the daemon's `hello` frame, verify the
// protocol version. Policy agreement is the caller's second step —
// requirePolicy(engine.policySignature()) throws if the daemon would
// compute results under a different failure policy than the caller
// expects, which is how SweepEngine's remote mode refuses to silently
// mix incomparable data.
//
// All request methods are strict request/response under one mutex, so a
// single ServeClient may be shared by the threads of one process; for
// concurrency *across* requests, open one client per thread — the daemon
// handles each connection independently.
//
// Every method throws std::runtime_error on socket failure, protocol
// violation, or a daemon-side `error` response.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace bridge::serve {

class ServeClient {
 public:
  /// Connect + handshake. Throws if the socket cannot be reached or the
  /// daemon speaks a different protocol version.
  explicit ServeClient(const std::string& socket_path);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  const std::string& socketPath() const { return socket_path_; }

  /// The daemon's handshake frame (version, policy, cache dir, workers).
  /// After a successful negotiate() this is the *negotiated* hello, which
  /// also carries lease_ms (and worker_id for role "worker").
  const ServeHello& hello() const { return hello_; }

  /// In-band protocol upgrade (DESIGN §5h): propose kProtocolVersionV2
  /// with a role ("client" or "worker"). Workers must pass their engine's
  /// policySignature() — the daemon refuses mismatched workers before they
  /// can claim anything. Throws on refusal, and on a v1-only daemon (which
  /// answers `error` to the unknown frame and drops the connection — catch
  /// and reconnect to keep talking v1).
  void negotiate(const std::string& role, const std::string& policy,
                 const std::string& name);

  /// Version in force on this connection: kProtocolVersion until a
  /// successful negotiate(), then the granted version.
  const std::string& negotiatedVersion() const { return negotiated_; }

  /// Worker: pull up to max_jobs leased jobs (0 = pure heartbeat, renews
  /// this worker's leases). Sets *draining when the daemon refuses new
  /// work — finish outstanding leases and disconnect.
  std::vector<LeaseGrant> claim(std::uint64_t max_jobs, bool* draining);

  /// Worker: post a result against a live lease. False + *reason when the
  /// daemon rejected it (lease expired, re-admitted elsewhere, or already
  /// resolved) — drop the result, the scheduler owns the job now.
  bool completeLease(std::uint64_t lease, const SweepResult& result,
                     std::string* reason);

  /// Worker: report a failed execution against a live lease; the daemon
  /// orphans the job (retry budget applies) rather than failing it.
  bool failLease(std::uint64_t lease, const std::string& message,
                 std::string* reason);

  /// Throw unless the daemon's policy signature equals `signature`.
  void requirePolicy(const std::string& signature) const;

  /// Submit a batch; blocks until the daemon has a result for every job
  /// (freshly executed, attached to an in-flight twin, or cache hit).
  /// Results come back in request order. If `report` is non-null it
  /// receives the per-request outcome tally.
  std::vector<SweepResult> run(const std::vector<JobSpec>& jobs,
                               RunReport* report = nullptr);

  /// Daemon-lifetime admission counters.
  ServeStats stats();

  /// Liveness probe; throws if the daemon is gone.
  void ping();

  /// Ask the daemon to drain: it finishes in-flight jobs, replies with its
  /// final lifetime RunReport, and exits its serve loop.
  RunReport shutdownDaemon();

 private:
  ServeResponse roundTrip(const ServeRequest& request);

  std::string socket_path_;
  int fd_ = -1;
  ServeHello hello_;
  std::string negotiated_ = std::string(kProtocolVersion);
  std::mutex mu_;
};

}  // namespace bridge::serve
