// JobScheduler: the daemon's elastic execution core (DESIGN.md §5h).
//
// PR 6's daemon ran every admitted job on its own thread pool, so capacity
// was capped at one host. The scheduler generalizes the in-flight table
// into a dispatch layer with two execution origins:
//
//   * local  — the daemon's own pool, exactly the old path; always the
//     fallback, so a deployment with zero workers behaves like PR 6;
//   * remote — a registered worker process claims the job under a *lease*
//     (id + monotonic-clock deadline) and posts complete/fail against it.
//
// Every admitted fingerprint is one Flight: one promise, shared by every
// attached request, resolved exactly once no matter which process executed
// the job. Workers write through the same sharded flock'd ResultCache as
// the daemon, so a result is bit-identical regardless of origin.
//
// Lease state machine (one job):
//
//   queued ──claim──> leased ──complete/fail──> resolved / re-admitted
//     ^                 │
//     │                 ├─ lease deadline passes   ──┐
//     └── re-admission ─┴─ worker connection drops ──┘ (orphaned)
//
// An orphaned job returns to dispatch, bounded by the FailurePolicy retry
// budget: each orphaning burns one retry, and a job orphaned more than
// max_retries times is quarantined (QuarantineList) and resolved as
// failed — a crash-looping job must not ping-pong between dying workers
// forever. A `complete` for an expired or unknown lease is rejected (the
// lease left the table when it expired, so a slow worker can never
// overwrite a re-admitted twin: first resolution wins, late results are
// dropped on the floor).
//
// Liveness: any frame a worker sends through claim() renews all of its
// leases, so a live worker grinding a slow job never loses it; only a
// worker that stopped talking (SIGKILL, hang, partition) does. Queued jobs
// no worker picks up within one lease window fall back to local execution
// — attached-but-idle workers cannot stall a sweep.
//
// Drain: beginDrain() refuses new claims (claim responses carry
// draining=1), flushes the queue to the local pool, and waitIdle() blocks
// until every flight — including jobs still leased to live workers — has
// resolved. All operations are thread-safe; a background reaper thread
// expires leases and ages the queue.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "sweep/quarantine.h"
#include "sweep/sweep.h"
#include "sweep/thread_pool.h"

namespace bridge::serve {

/// $BRIDGE_LEASE_MS if set (clamped to >= 10), else 10000.
std::uint64_t defaultLeaseMs();

class JobScheduler {
 public:
  /// Which process resolved a flight; drives the daemon's counter split
  /// (executed/cache_hits vs completed_remote).
  enum class Origin { kLocal, kRemote, kOrphaned };

  struct Submission {
    std::shared_future<SweepResult> future;
    bool attached = false;  // joined an already-in-flight twin
  };

  /// Lifetime elastic counters, merged into ServeStats by the daemon.
  struct Counters {
    std::uint64_t workers = 0;
    std::uint64_t claimed = 0;
    std::uint64_t completed_remote = 0;
    std::uint64_t leases_expired = 0;
    std::uint64_t orphans_readmitted = 0;
  };

  /// Runs one job in the calling (pool) thread; must not throw — the
  /// daemon wraps SweepEngine::runOne and converts exceptions to failed
  /// results.
  using LocalExecutor =
      std::function<SweepResult(const JobSpec&, const std::string&)>;

  /// Called exactly once per resolved flight, before the flight leaves the
  /// table (so a drain report can never miss a job). Runs outside the
  /// scheduler lock.
  using CompletionHook = std::function<void(const SweepResult&, Origin)>;

  /// True when a result for the fingerprint is already in the shared
  /// cache. Cache hits dispatch locally even with workers registered —
  /// shipping a job to a worker only to read the same cache tree would
  /// trade a microsecond lookup for a claim-poll round trip. Called under
  /// the scheduler lock, so it must be cheap (a stat(2), not a parse).
  using CacheProbe = std::function<bool(const std::string&)>;

  /// `pool` and `quarantine` must outlive the scheduler. `lease_ms` 0
  /// selects defaultLeaseMs(). `cached` may be empty (never probe).
  JobScheduler(std::uint64_t lease_ms, const FailurePolicy& failures,
               ThreadPool* pool, QuarantineList* quarantine,
               LocalExecutor local, CompletionHook on_complete,
               CacheProbe cached = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  std::uint64_t leaseMs() const { return lease_ms_; }

  /// Admit one fingerprinted job: attach to an in-flight twin, or create a
  /// flight and dispatch it (queued for workers when any are registered,
  /// else straight to the local pool).
  Submission submit(const JobSpec& spec, const std::string& fingerprint);

  /// Register a worker connection; returns its id. Counters.workers is the
  /// live registry size.
  std::uint64_t registerWorker(const std::string& name);

  /// Worker connection closed: orphan every lease it still holds (each
  /// burns one retry and is re-admitted or quarantined).
  void deregisterWorker(std::uint64_t worker_id);

  /// Pull up to `max_jobs` queued jobs as lease grants; renews every lease
  /// the worker already holds (max_jobs 0 = pure heartbeat). Sets
  /// *draining and grants nothing once beginDrain() ran. False if the
  /// worker id is unknown (never registered, or already deregistered).
  bool claim(std::uint64_t worker_id, std::uint64_t max_jobs,
             std::vector<LeaseGrant>* grants, bool* draining);

  /// Post a result against a live lease. False + *reason when the lease is
  /// unknown, expired, or held by a different worker — the caller must
  /// drop the result (the job was or will be re-admitted elsewhere).
  bool complete(std::uint64_t worker_id, std::uint64_t lease,
                const SweepResult& result, std::string* reason);

  /// Worker-side execution failure against a live lease. The job is
  /// orphaned (retry budget applies) rather than failed outright: the
  /// fault may be the worker's, not the job's.
  bool fail(std::uint64_t worker_id, std::uint64_t lease,
            const std::string& message, std::string* reason);

  /// Refuse new claims and flush the queue to the local pool. Idempotent.
  void beginDrain();

  /// Block until every flight has resolved (leases included). Call after
  /// beginDrain(), with the pool and the worker connections still alive.
  void waitIdle();

  /// Join the reaper thread. Call after waitIdle() and before the pool
  /// shuts down; submit() after stop() dispatches locally only.
  void stop();

  Counters counters() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One fingerprint's single execution; every attached request and every
  /// lease for it share this record.
  struct Flight {
    JobSpec spec;
    std::string fingerprint;
    std::promise<SweepResult> promise;
    std::shared_future<SweepResult> future;
    unsigned orphans = 0;  // times leased-and-lost; bounded by max_retries
    bool resolved = false;
  };
  using FlightPtr = std::shared_ptr<Flight>;

  struct Lease {
    std::string fingerprint;
    std::uint64_t worker = 0;
    Clock::time_point deadline;
  };

  struct QueueEntry {
    std::string fingerprint;
    Clock::time_point enqueued;
  };

  /// Queue for workers, or run on the local pool? Local whenever there are
  /// no workers, drain/stop began, or the shared cache already has the
  /// answer. Caller holds mu_.
  bool dispatchRemoteLocked(const std::string& fingerprint) const;
  /// pool_->submit guarded against a pool racing into shutdown.
  void runLocalAsync(FlightPtr flight);
  void runLocal(FlightPtr flight);
  void resolve(const FlightPtr& flight, SweepResult result, Origin origin);
  /// Resolve retry-budget-exhausted orphans as failed (outside mu_).
  void failOrphans(const std::vector<FlightPtr>& flights);
  /// Lease died (expiry, disconnect, worker-reported failure): burn one
  /// retry and re-dispatch, or quarantine. Caller holds mu_.
  void orphanLocked(const std::string& fingerprint, const std::string& why,
                    std::vector<FlightPtr>* to_local,
                    std::vector<FlightPtr>* to_fail);
  void reaperLoop();

  const std::uint64_t lease_ms_;
  const FailurePolicy failures_;
  ThreadPool* const pool_;
  QuarantineList* const quarantine_;
  const LocalExecutor local_;
  const CompletionHook on_complete_;
  const CacheProbe cached_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::unordered_map<std::string, FlightPtr> flights_;
  std::deque<QueueEntry> queue_;
  std::unordered_map<std::uint64_t, std::string> workers_;  // id -> name
  std::unordered_map<std::uint64_t, Lease> leases_;
  std::uint64_t next_worker_ = 1;
  std::uint64_t next_lease_ = 1;
  bool draining_ = false;
  Counters counters_;

  std::atomic<bool> reaper_stop_{false};
  std::thread reaper_;
};

}  // namespace bridge::serve
