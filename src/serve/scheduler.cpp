#include "serve/scheduler.h"

#include <algorithm>
#include <cstdlib>

#include "sim/log.h"

namespace bridge::serve {

namespace {

/// Reaper wake interval: a fraction of the lease window so an expired
/// lease is noticed promptly, clamped so tiny test windows don't spin and
/// production windows don't wait half a second to notice a dead worker.
std::uint64_t reaperIntervalMs(std::uint64_t lease_ms) {
  return std::clamp<std::uint64_t>(lease_ms / 4, 10, 50);
}

}  // namespace

std::uint64_t defaultLeaseMs() {
  if (const char* env = std::getenv("BRIDGE_LEASE_MS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0' && value > 0) {
      // Below ~10ms a lease expires faster than a worker can round-trip a
      // claim; clamp instead of letting a typo orphan every job.
      return std::max<std::uint64_t>(value, 10);
    }
    BRIDGE_LOG(kWarn) << "serve: ignoring malformed BRIDGE_LEASE_MS='" << env
                      << "'";
  }
  return 10000;
}

JobScheduler::JobScheduler(std::uint64_t lease_ms,
                           const FailurePolicy& failures, ThreadPool* pool,
                           QuarantineList* quarantine, LocalExecutor local,
                           CompletionHook on_complete, CacheProbe cached)
    : lease_ms_(lease_ms != 0 ? std::max<std::uint64_t>(lease_ms, 10)
                              : defaultLeaseMs()),
      failures_(failures),
      pool_(pool),
      quarantine_(quarantine),
      local_(std::move(local)),
      on_complete_(std::move(on_complete)),
      cached_(std::move(cached)) {
  reaper_ = std::thread([this] { reaperLoop(); });
}

JobScheduler::~JobScheduler() { stop(); }

void JobScheduler::stop() {
  reaper_stop_.store(true, std::memory_order_release);
  if (reaper_.joinable()) reaper_.join();
}

JobScheduler::Counters JobScheduler::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters counters = counters_;
  counters.workers = workers_.size();
  return counters;
}

bool JobScheduler::dispatchRemoteLocked(const std::string& fingerprint) const {
  return !workers_.empty() && !draining_ &&
         !reaper_stop_.load(std::memory_order_acquire) &&
         !(cached_ && cached_(fingerprint));
}

JobScheduler::Submission JobScheduler::submit(const JobSpec& spec,
                                              const std::string& fingerprint) {
  Submission sub;
  FlightPtr to_local;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = flights_.find(fingerprint);
    if (it != flights_.end() && !it->second->resolved) {
      sub.future = it->second->future;
      sub.attached = true;
      return sub;
    }
    // A resolved flight still in the table is a completed job whose
    // resolver hasn't reacquired the lock to erase it yet; its waiters
    // already have the result. This request is a fresh submission (and a
    // cache hit, not an attach), so replace the entry.
    if (it != flights_.end()) flights_.erase(it);
    auto flight = std::make_shared<Flight>();
    flight->spec = spec;
    flight->fingerprint = fingerprint;
    flight->future = flight->promise.get_future().share();
    flights_.emplace(fingerprint, flight);
    sub.future = flight->future;
    // Dispatch: workers registered and accepting -> queue for claims; the
    // reaper ages unclaimed entries back to local after one lease window.
    if (dispatchRemoteLocked(fingerprint)) {
      queue_.push_back({fingerprint, Clock::now()});
    } else {
      to_local = std::move(flight);
    }
  }
  if (to_local) runLocalAsync(std::move(to_local));
  return sub;
}

void JobScheduler::runLocalAsync(FlightPtr flight) {
  try {
    pool_->submit([this, flight] { runLocal(flight); });
  } catch (const std::exception& e) {
    // Pool already shut down (daemon racing into teardown): account for
    // the job instead of wedging its waiters on a never-set promise.
    SweepResult result;
    result.label = flight->spec.label;
    result.fingerprint = flight->fingerprint;
    result.outcome = JobOutcome::kFailed;
    result.error = std::string("local dispatch failed: ") + e.what();
    resolve(flight, std::move(result), Origin::kLocal);
  }
}

void JobScheduler::runLocal(FlightPtr flight) {
  SweepResult result;
  try {
    result = local_(flight->spec, flight->fingerprint);
  } catch (const std::exception& e) {
    result.label = flight->spec.label;
    result.fingerprint = flight->fingerprint;
    result.outcome = JobOutcome::kFailed;
    result.error = e.what();
    result.attempts = 1;
  }
  resolve(flight, std::move(result), Origin::kLocal);
}

void JobScheduler::resolve(const FlightPtr& flight, SweepResult result,
                           Origin origin) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flight->resolved) return;  // a twin beat us; drop this resolution
    flight->resolved = true;
  }
  // Hook (tally) strictly before the flight leaves the table: waitIdle()
  // returning must imply every job is in the report.
  if (on_complete_) on_complete_(result, origin);
  flight->promise.set_value(result);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Erase only our own entry: submit() may already have replaced it with
    // a fresh flight for the same fingerprint (resolved-but-not-yet-erased
    // race), and that one must live on.
    const auto it = flights_.find(flight->fingerprint);
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  idle_cv_.notify_all();
}

std::uint64_t JobScheduler::registerWorker(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_worker_++;
  workers_.emplace(id, name);
  return id;
}

void JobScheduler::deregisterWorker(std::uint64_t worker_id) {
  std::vector<FlightPtr> to_local;
  std::vector<FlightPtr> to_fail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.erase(worker_id) == 0) return;
    for (auto it = leases_.begin(); it != leases_.end();) {
      if (it->second.worker == worker_id) {
        const std::string fingerprint = it->second.fingerprint;
        it = leases_.erase(it);
        orphanLocked(fingerprint, "worker connection dropped", &to_local,
                     &to_fail);
      } else {
        ++it;
      }
    }
  }
  for (FlightPtr& flight : to_local) runLocalAsync(std::move(flight));
  failOrphans(to_fail);
}

bool JobScheduler::claim(std::uint64_t worker_id, std::uint64_t max_jobs,
                         std::vector<LeaseGrant>* grants, bool* draining) {
  std::lock_guard<std::mutex> lock(mu_);
  if (workers_.find(worker_id) == workers_.end()) return false;
  const auto now = Clock::now();
  const auto deadline = now + std::chrono::milliseconds(lease_ms_);
  // Any claim — even an empty heartbeat — proves the worker is alive, so
  // renew everything it holds. A SIGKILLed or hung worker stops claiming
  // and its leases age out; a live one grinding a slow job never does.
  for (auto& [id, lease] : leases_) {
    if (lease.worker == worker_id) lease.deadline = deadline;
  }
  if (draining != nullptr) *draining = draining_;
  if (draining_) return true;  // finish your leases and leave
  while (grants != nullptr && grants->size() < max_jobs && !queue_.empty()) {
    const QueueEntry entry = queue_.front();
    queue_.pop_front();
    const auto fit = flights_.find(entry.fingerprint);
    if (fit == flights_.end() || fit->second->resolved) continue;
    const std::uint64_t lease_id = next_lease_++;
    leases_.emplace(lease_id, Lease{entry.fingerprint, worker_id, deadline});
    LeaseGrant grant;
    grant.lease = lease_id;
    grant.deadline_ms = lease_ms_;
    grant.job = fit->second->spec;
    grants->push_back(std::move(grant));
    ++counters_.claimed;
  }
  return true;
}

bool JobScheduler::complete(std::uint64_t worker_id, std::uint64_t lease,
                            const SweepResult& result, std::string* reason) {
  FlightPtr flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = leases_.find(lease);
    if (it == leases_.end() || it->second.worker != worker_id) {
      // Expired (the reaper already re-admitted the job), double-posted,
      // or plain bogus: first resolution won, this result is dropped.
      if (reason != nullptr) *reason = "unknown or expired lease";
      return false;
    }
    const auto fit = flights_.find(it->second.fingerprint);
    leases_.erase(it);
    if (fit == flights_.end() || fit->second->resolved) {
      if (reason != nullptr) *reason = "job already resolved";
      return false;
    }
    flight = fit->second;
    ++counters_.completed_remote;
  }
  resolve(flight, result, Origin::kRemote);
  return true;
}

bool JobScheduler::fail(std::uint64_t worker_id, std::uint64_t lease,
                        const std::string& message, std::string* reason) {
  std::vector<FlightPtr> to_local;
  std::vector<FlightPtr> to_fail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = leases_.find(lease);
    if (it == leases_.end() || it->second.worker != worker_id) {
      if (reason != nullptr) *reason = "unknown or expired lease";
      return false;
    }
    const std::string fingerprint = it->second.fingerprint;
    leases_.erase(it);
    // The worker's engine threw — that may indict the worker, not the
    // job, so burn a retry and let another process try it.
    orphanLocked(fingerprint, "worker reported failure: " + message,
                 &to_local, &to_fail);
  }
  for (FlightPtr& flight : to_local) runLocalAsync(std::move(flight));
  failOrphans(to_fail);
  return true;
}

void JobScheduler::beginDrain() {
  std::vector<FlightPtr> to_local;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    // Queued-but-unclaimed jobs must not wait for a worker that will be
    // told "draining" on its next claim: execute them here.
    while (!queue_.empty()) {
      const auto fit = flights_.find(queue_.front().fingerprint);
      queue_.pop_front();
      if (fit != flights_.end() && !fit->second->resolved) {
        to_local.push_back(fit->second);
      }
    }
  }
  for (FlightPtr& flight : to_local) runLocalAsync(std::move(flight));
}

void JobScheduler::waitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return flights_.empty(); });
}

void JobScheduler::orphanLocked(const std::string& fingerprint,
                                const std::string& why,
                                std::vector<FlightPtr>* to_local,
                                std::vector<FlightPtr>* to_fail) {
  const auto it = flights_.find(fingerprint);
  if (it == flights_.end() || it->second->resolved) return;
  const FlightPtr& flight = it->second;
  ++flight->orphans;
  if (flight->orphans > failures_.max_retries) {
    // Repeated orphaning is indistinguishable from a job that kills its
    // host: stop feeding it to processes. Quarantine (policy permitting)
    // and resolve as failed so waiters unblock.
    if (failures_.quarantine && quarantine_ != nullptr) {
      quarantine_->add(fingerprint, flight->spec.label,
                       "orphaned " + std::to_string(flight->orphans) +
                           " times; last: " + why);
    }
    BRIDGE_LOG(kWarn) << "serve: job '" << flight->spec.label << "' orphaned "
                      << flight->orphans << " times (" << why
                      << "); giving up";
    to_fail->push_back(flight);
    return;
  }
  ++counters_.orphans_readmitted;
  BRIDGE_LOG(kInfo) << "serve: re-admitting orphaned job '"
                    << flight->spec.label << "' (" << why << "; attempt "
                    << flight->orphans << "/" << failures_.max_retries << ")";
  // The cache probe matters here too: a worker whose post lost the race
  // (or arrived after expiry) still wrote the shared cache first, so the
  // re-admitted job is often an instant local hit.
  if (dispatchRemoteLocked(fingerprint)) {
    queue_.push_back({fingerprint, Clock::now()});
  } else {
    to_local->push_back(flight);
  }
}

void JobScheduler::failOrphans(const std::vector<FlightPtr>& flights) {
  for (const FlightPtr& flight : flights) {
    SweepResult result;
    result.label = flight->spec.label;
    result.fingerprint = flight->fingerprint;
    result.outcome = JobOutcome::kFailed;
    result.error = "orphaned " + std::to_string(flight->orphans) +
                   " times; retry budget exhausted";
    result.attempts = flight->orphans;
    resolve(flight, std::move(result), Origin::kOrphaned);
  }
}

void JobScheduler::reaperLoop() {
  const auto interval = std::chrono::milliseconds(reaperIntervalMs(lease_ms_));
  while (!reaper_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    std::vector<FlightPtr> to_local;
    std::vector<FlightPtr> to_fail;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = Clock::now();
      for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.deadline <= now) {
          const std::string fingerprint = it->second.fingerprint;
          it = leases_.erase(it);
          ++counters_.leases_expired;
          orphanLocked(fingerprint, "lease expired", &to_local, &to_fail);
        } else {
          ++it;
        }
      }
      // Queue aging: a job no worker claimed within one lease window goes
      // local — registered-but-idle workers must not stall a sweep.
      const auto stale = now - std::chrono::milliseconds(lease_ms_);
      while (!queue_.empty() && queue_.front().enqueued <= stale) {
        const auto fit = flights_.find(queue_.front().fingerprint);
        queue_.pop_front();
        if (fit != flights_.end() && !fit->second->resolved) {
          to_local.push_back(fit->second);
        }
      }
    }
    for (FlightPtr& flight : to_local) runLocalAsync(std::move(flight));
    failOrphans(to_fail);
  }
}

}  // namespace bridge::serve
