#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace bridge::serve {

ServeClient::ServeClient(const std::string& socket_path)
    : socket_path_(socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve client: socket path too long: " +
                             socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("serve client: socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: connect " + socket_path_ + ": " +
                             reason);
  }

  std::string payload;
  std::string error;
  if (!recvFrame(fd_, &payload, &error)) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: no hello from daemon" +
                             (error.empty() ? std::string(": peer closed")
                                            : ": " + error));
  }
  const std::optional<ServeHello> hello = helloFromJson(payload);
  if (!hello) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: malformed hello frame");
  }
  if (hello->version != kProtocolVersion) {
    const std::string got = hello->version;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: protocol version mismatch: "
                             "daemon speaks '" +
                             got + "', client speaks '" +
                             std::string(kProtocolVersion) + "'");
  }
  hello_ = *hello;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::requirePolicy(const std::string& signature) const {
  if (hello_.policy != signature) {
    throw std::runtime_error(
        "serve client: policy signature mismatch — daemon runs '" +
        hello_.policy + "', this client expects '" + signature +
        "'; results would not be comparable");
  }
}

ServeResponse ServeClient::roundTrip(const ServeRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    throw std::runtime_error("serve client: connection is closed");
  }
  std::string error;
  if (!sendFrame(fd_, requestToJson(request), &error)) {
    throw std::runtime_error("serve client: send failed: " + error);
  }
  std::string payload;
  if (!recvFrame(fd_, &payload, &error)) {
    throw std::runtime_error(
        "serve client: daemon closed the connection mid-request" +
        (error.empty() ? std::string() : ": " + error));
  }
  const std::optional<ServeResponse> response = responseFromJson(payload);
  if (!response) {
    throw std::runtime_error("serve client: malformed response frame");
  }
  if (response->kind == ServeResponse::Kind::kError) {
    throw std::runtime_error("serve client: daemon error: " +
                             response->message);
  }
  return *response;
}

std::vector<SweepResult> ServeClient::run(const std::vector<JobSpec>& jobs,
                                          RunReport* report) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kRun;
  request.jobs = jobs;
  ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kResults) {
    throw std::runtime_error("serve client: expected results response");
  }
  if (response.results.size() != jobs.size()) {
    throw std::runtime_error(
        "serve client: daemon returned " +
        std::to_string(response.results.size()) + " results for " +
        std::to_string(jobs.size()) + " jobs");
  }
  if (report != nullptr) *report = response.report;
  return std::move(response.results);
}

ServeStats ServeClient::stats() {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kStats;
  ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kStats) {
    throw std::runtime_error("serve client: expected stats response");
  }
  return response.stats;
}

void ServeClient::ping() {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kPing;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kOk) {
    throw std::runtime_error("serve client: expected ok response to ping");
  }
}

void ServeClient::negotiate(const std::string& role, const std::string& policy,
                            const std::string& name) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kHello;
  request.version = std::string(kProtocolVersionV2);
  request.role = role;
  request.policy = policy;
  request.name = name;
  // A v1-only daemon answers `error` to the unknown frame and drops the
  // connection; roundTrip surfaces that as a throw — the caller decides
  // whether to reconnect and stay v1.
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kHello) {
    throw std::runtime_error("serve client: expected hello response");
  }
  hello_ = response.hello;
  negotiated_ = response.hello.version;
}

std::vector<LeaseGrant> ServeClient::claim(std::uint64_t max_jobs,
                                           bool* draining) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kClaim;
  request.max_jobs = max_jobs;
  ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kClaims) {
    throw std::runtime_error("serve client: expected claims response");
  }
  if (draining != nullptr) *draining = response.draining;
  return std::move(response.claims);
}

bool ServeClient::completeLease(std::uint64_t lease, const SweepResult& result,
                                std::string* reason) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kComplete;
  request.lease = lease;
  request.result = result;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kLeaseAck) {
    throw std::runtime_error("serve client: expected lease_ack response");
  }
  if (reason != nullptr) *reason = response.message;
  return response.accepted;
}

bool ServeClient::failLease(std::uint64_t lease, const std::string& message,
                            std::string* reason) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kFail;
  request.lease = lease;
  request.message = message;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kLeaseAck) {
    throw std::runtime_error("serve client: expected lease_ack response");
  }
  if (reason != nullptr) *reason = response.message;
  return response.accepted;
}

RunReport ServeClient::shutdownDaemon() {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kShutdown;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kOk) {
    throw std::runtime_error("serve client: expected ok response to shutdown");
  }
  return response.report;
}

}  // namespace bridge::serve
