#include "serve/client.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "sim/log.h"
#include "sweep/fingerprint.h"

namespace bridge::serve {

namespace {

// Same pure-hash construction as FaultInjector::roll: fnv1a64 over the key,
// splitmix64 finalizer, top 53 bits as a double in [0, 1).
double hash01(const std::string& key) {
  std::uint64_t h = fnv1a64(key);
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h = h ^ (h >> 31);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool parseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::uint64_t ReconnectPolicy::delayMs(std::uint64_t epoch,
                                       unsigned attempt) const {
  std::uint64_t delay = base_ms;
  for (unsigned i = 0; i < attempt && delay < cap_ms; ++i) delay <<= 1;
  delay = std::min(delay, cap_ms);
  if (delay == 0) return 0;
  const std::string key = std::to_string(seed) + "|reconnect|epoch" +
                          std::to_string(epoch) + "|attempt" +
                          std::to_string(attempt);
  const double jitter = 0.5 + hash01(key);  // [0.5, 1.5)
  return static_cast<std::uint64_t>(static_cast<double>(delay) * jitter);
}

ReconnectPolicy ReconnectPolicy::fromEnv() {
  ReconnectPolicy policy;
  const char* env = std::getenv("BRIDGE_SERVE_RECONNECT");
  if (env == nullptr || *env == '\0') return policy;
  ReconnectPolicy parsed;
  std::string_view spec(env);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    std::uint64_t value = 0;
    const bool ok =
        eq != std::string_view::npos && parseU64(item.substr(eq + 1), &value);
    const std::string_view key =
        eq == std::string_view::npos ? item : item.substr(0, eq);
    if (!ok) {
      BRIDGE_LOG(kWarn) << "BRIDGE_SERVE_RECONNECT: malformed item '" << item
                        << "' (expected key=number); using defaults";
      return policy;
    }
    if (key == "attempts" && value <= 1000) {
      parsed.attempts = static_cast<unsigned>(value);
    } else if (key == "base") {
      parsed.base_ms = value;
    } else if (key == "cap") {
      parsed.cap_ms = value;
    } else if (key == "seed") {
      parsed.seed = value;
    } else {
      BRIDGE_LOG(kWarn) << "BRIDGE_SERVE_RECONNECT: bad item '" << item
                        << "'; using defaults";
      return policy;
    }
  }
  return parsed;
}

std::uint64_t ServeClient::defaultTimeoutMs() {
  const char* env = std::getenv("BRIDGE_SERVE_TIMEOUT_MS");
  if (env == nullptr || *env == '\0') return kDefaultTimeoutMs;
  std::uint64_t value = 0;
  if (!parseU64(env, &value)) {
    BRIDGE_LOG(kWarn) << "BRIDGE_SERVE_TIMEOUT_MS: not a number: '" << env
                      << "'; using " << kDefaultTimeoutMs << " ms";
    return kDefaultTimeoutMs;
  }
  return value;  // 0 = block forever (legacy behaviour)
}

ClientOptions::ClientOptions()
    : timeout_ms(ServeClient::defaultTimeoutMs()),
      reconnect(ReconnectPolicy::fromEnv()) {}

ServeClient::ServeClient(const std::string& socket_path,
                         const ClientOptions& options)
    : socket_path_(socket_path), options_(options) {
  std::lock_guard<std::mutex> lock(mu_);
  connectLocked();
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::connectLocked() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve client: socket path too long: " +
                             socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    throw ServeConnectionError(std::string("serve client: socket: ") +
                               std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const std::string reason = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw ServeConnectionError("serve client: connect " + socket_path_ +
                                 ": " + reason);
    }
    // Await writability under the deadline, then harvest SO_ERROR.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.timeout_ms);
    for (;;) {
      int wait_ms = -1;  // timeout_ms == 0: block forever
      if (options_.timeout_ms != 0) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline -
                                       std::chrono::steady_clock::now());
        if (remaining.count() <= 0) {
          ::close(fd_);
          fd_ = -1;
          throw ServeTimeoutError(
              "serve client: connect " + socket_path_ + ": timed out after " +
              std::to_string(options_.timeout_ms) + " ms");
        }
        wait_ms = static_cast<int>(std::min<std::int64_t>(
            remaining.count(), std::numeric_limits<int>::max()));
      }
      pollfd pfd{fd_, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, wait_ms);
      if (rc > 0) break;
      if (rc == 0) continue;  // re-check the deadline at the top
      if (errno == EINTR) continue;
      const std::string reason = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw ServeConnectionError("serve client: connect poll: " + reason);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      so_error = errno;
    }
    if (so_error != 0) {
      ::close(fd_);
      fd_ = -1;
      throw ServeConnectionError("serve client: connect " + socket_path_ +
                                 ": " + std::strerror(so_error));
    }
  }
  // The deadline machinery in recvFrame polls before reading, so the socket
  // itself goes back to blocking mode for the framed request/response flow.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);

  std::string payload;
  std::string error;
  bool timed_out = false;
  if (!recvFrame(fd_, &payload, &error, nullptr, options_.timeout_ms,
                 &timed_out)) {
    ::close(fd_);
    fd_ = -1;
    if (timed_out) {
      throw ServeTimeoutError("serve client: hello from daemon: " + error);
    }
    throw ServeConnectionError("serve client: no hello from daemon" +
                               (error.empty() ? std::string(": peer closed")
                                              : ": " + error));
  }
  const std::optional<ServeHello> hello = helloFromJson(payload);
  if (!hello) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: malformed hello frame");
  }
  if (hello->version != kProtocolVersion) {
    const std::string got = hello->version;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: protocol version mismatch: "
                             "daemon speaks '" +
                             got + "', client speaks '" +
                             std::string(kProtocolVersion) + "'");
  }
  hello_ = *hello;
  negotiated_ = std::string(kProtocolVersion);
}

bool ServeClient::tryReconnect(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  return tryReconnectLocked(error);
}

bool ServeClient::tryReconnectLocked(std::string* error) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::uint64_t epoch = ++epoch_;
  std::string last = "reconnect disabled (attempts=0)";
  for (unsigned attempt = 0; attempt < options_.reconnect.attempts;
       ++attempt) {
    const std::uint64_t delay = options_.reconnect.delayMs(epoch, attempt);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    try {
      connectLocked();
      if (renegotiate_) negotiateLocked(nego_role_, nego_policy_, nego_name_);
      ++reconnects_;
      return true;
    } catch (const ServeConnectionError& e) {
      last = e.what();  // transient — keep dialing
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
    } catch (const std::exception& e) {
      // Version mismatch, policy refusal: redialing cannot fix these.
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
      if (error != nullptr) *error = e.what();
      return false;
    }
  }
  if (error != nullptr) *error = last;
  return false;
}

std::uint64_t ServeClient::reconnects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconnects_;
}

void ServeClient::requirePolicy(const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (hello_.policy != signature) {
    throw std::runtime_error(
        "serve client: policy signature mismatch — daemon runs '" +
        hello_.policy + "', this client expects '" + signature +
        "'; results would not be comparable");
  }
}

ServeResponse ServeClient::roundTrip(const ServeRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  return roundTripLocked(request);
}

ServeResponse ServeClient::roundTripLocked(const ServeRequest& request) {
  if (fd_ < 0) {
    throw ServeConnectionError("serve client: connection is closed");
  }
  std::string error;
  if (!sendFrame(fd_, requestToJson(request), &error)) {
    ::close(fd_);
    fd_ = -1;
    throw ServeConnectionError("serve client: send failed: " + error);
  }
  std::string payload;
  bool timed_out = false;
  if (!recvFrame(fd_, &payload, &error, nullptr, options_.timeout_ms,
                 &timed_out)) {
    ::close(fd_);
    fd_ = -1;
    if (timed_out) {
      throw ServeTimeoutError("serve client: request timed out after " +
                              std::to_string(options_.timeout_ms) + " ms");
    }
    throw ServeConnectionError(
        "serve client: daemon closed the connection mid-request" +
        (error.empty() ? std::string() : ": " + error));
  }
  const std::optional<ServeResponse> response = responseFromJson(payload);
  if (!response) {
    // Framing desynchronised — the fd is useless, but this is a protocol
    // bug, not a transport fault: do not invite a retry.
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: malformed response frame");
  }
  if (response->kind == ServeResponse::Kind::kError) {
    throw std::runtime_error("serve client: daemon error: " +
                             response->message);
  }
  return *response;
}

std::vector<SweepResult> ServeClient::run(const std::vector<JobSpec>& jobs,
                                          RunReport* report) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kRun;
  request.jobs = jobs;
  for (unsigned resubmit = 0;; ++resubmit) {
    try {
      ServeResponse response = roundTrip(request);
      if (response.kind != ServeResponse::Kind::kResults) {
        throw std::runtime_error("serve client: expected results response");
      }
      if (response.results.size() != jobs.size()) {
        throw std::runtime_error(
            "serve client: daemon returned " +
            std::to_string(response.results.size()) + " results for " +
            std::to_string(jobs.size()) + " jobs");
      }
      if (report != nullptr) *report = response.report;
      return std::move(response.results);
    } catch (const ServeConnectionError& e) {
      // Resubmitting the identical batch is idempotent: jobs are
      // content-addressed, so the daemon (or its restarted successor, via
      // journal replay and the shard cache) dedupes everything already
      // done or in flight.
      if (resubmit >= options_.reconnect.attempts) throw;
      std::string reason;
      if (!tryReconnect(&reason)) {
        throw ServeConnectionError(std::string(e.what()) +
                                   "; reconnect failed: " + reason);
      }
      BRIDGE_LOG(kWarn) << "serve client: connection lost (" << e.what()
                        << "); reconnected, resubmitting "
                        << jobs.size() << " jobs";
    }
  }
}

ServeStats ServeClient::stats() {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kStats;
  ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kStats) {
    throw std::runtime_error("serve client: expected stats response");
  }
  return response.stats;
}

void ServeClient::ping() {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kPing;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kOk) {
    throw std::runtime_error("serve client: expected ok response to ping");
  }
}

void ServeClient::negotiate(const std::string& role, const std::string& policy,
                            const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  negotiateLocked(role, policy, name);
}

void ServeClient::negotiateLocked(const std::string& role,
                                  const std::string& policy,
                                  const std::string& name) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kHello;
  request.version = std::string(kProtocolVersionV2);
  request.role = role;
  request.policy = policy;
  request.name = name;
  // A v1-only daemon answers `error` to the unknown frame and drops the
  // connection; roundTrip surfaces that as a throw — the caller decides
  // whether to reconnect and stay v1.
  const ServeResponse response = roundTripLocked(request);
  if (response.kind != ServeResponse::Kind::kHello) {
    throw std::runtime_error("serve client: expected hello response");
  }
  hello_ = response.hello;
  negotiated_ = response.hello.version;
  // tryReconnect replays the upgrade so a worker comes back as a worker
  // (under a fresh worker_id minted by the restarted daemon).
  renegotiate_ = true;
  nego_role_ = role;
  nego_policy_ = policy;
  nego_name_ = name;
}

std::vector<LeaseGrant> ServeClient::claim(std::uint64_t max_jobs,
                                           bool* draining) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kClaim;
  request.max_jobs = max_jobs;
  ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kClaims) {
    throw std::runtime_error("serve client: expected claims response");
  }
  if (draining != nullptr) *draining = response.draining;
  return std::move(response.claims);
}

bool ServeClient::completeLease(std::uint64_t lease, const SweepResult& result,
                                std::string* reason) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kComplete;
  request.lease = lease;
  request.result = result;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kLeaseAck) {
    throw std::runtime_error("serve client: expected lease_ack response");
  }
  if (reason != nullptr) *reason = response.message;
  return response.accepted;
}

bool ServeClient::failLease(std::uint64_t lease, const std::string& message,
                            std::string* reason) {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kFail;
  request.lease = lease;
  request.message = message;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kLeaseAck) {
    throw std::runtime_error("serve client: expected lease_ack response");
  }
  if (reason != nullptr) *reason = response.message;
  return response.accepted;
}

RunReport ServeClient::shutdownDaemon() {
  ServeRequest request;
  request.kind = ServeRequest::Kind::kShutdown;
  const ServeResponse response = roundTrip(request);
  if (response.kind != ServeResponse::Kind::kOk) {
    throw std::runtime_error("serve client: expected ok response to shutdown");
  }
  return response.report;
}

}  // namespace bridge::serve
