#include "serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <utility>

#include "sim/log.h"
#include "sweep/fingerprint.h"

namespace bridge::serve {

namespace {

constexpr int kAcceptPollMs = 100;
constexpr int kListenBacklog = 16;

/// The daemon *is* the execution side: a serve_socket in its sweep options
/// would make the engine forward right back out — strip it.
SweepOptions localSweep(SweepOptions options) {
  options.serve_socket.clear();
  return options;
}

}  // namespace

std::string SweepDaemon::defaultSocketPath() {
  if (const char* env = std::getenv("BRIDGE_SERVE_SOCKET");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/sweep-serve.sock";
}

SweepDaemon::SweepDaemon(const DaemonOptions& options)
    : options_(options),
      socket_path_(options.socket_path.empty() ? defaultSocketPath()
                                               : options.socket_path),
      engine_(localSweep(options.sweep)),
      pool_(engine_.workers()) {}

SweepDaemon::~SweepDaemon() {
  requestStop();
  join();
}

bool SweepDaemon::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long (" + std::to_string(socket_path_.size()) +
                " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
                "): " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  // A previous daemon killed without cleanup leaves its socket file behind;
  // bind() would fail on it forever. Unlinking is safe: if another daemon
  // is live on the path we steal its accept queue, which is the operator's
  // call to make — one socket path, one daemon.
  std::error_code ec;
  std::filesystem::remove(socket_path_, ec);
  std::filesystem::create_directories(
      std::filesystem::path(socket_path_).parent_path(), ec);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + socket_path_ + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) {
    return fail("listen " + socket_path_ + ": " + std::strerror(errno));
  }

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { acceptLoop(); });
  BRIDGE_LOG(kInfo) << "serve: listening on " << socket_path_ << " ("
                    << engine_.workers() << " workers, policy "
                    << policySignature() << ")";
  return true;
}

void SweepDaemon::requestStop() { stop_.store(true, std::memory_order_release); }

void SweepDaemon::join() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads exit once their recv loop observes the stop flag
  // (or their client hangs up); any thread blocked on an in-flight result
  // finishes because the worker pool below is still draining.
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
  pool_.shutdown();
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    std::error_code ec;
    std::filesystem::remove(socket_path_, ec);
  }
}

ServeStats SweepDaemon::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void SweepDaemon::acceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      BRIDGE_LOG(kWarn) << "serve: poll on listen socket failed: "
                        << std::strerror(errno);
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      BRIDGE_LOG(kWarn) << "serve: accept failed: " << std::strerror(errno);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { handleConnection(fd); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void SweepDaemon::handleConnection(int fd) {
  // The daemon speaks first: version + policy signature, so the client can
  // refuse a policy mismatch before submitting anything.
  ServeHello hello;
  hello.version = std::string(kProtocolVersion);
  hello.policy = policySignature();
  hello.cache_dir = engine_.options().use_cache ? engine_.cache().dir() : "";
  hello.workers = engine_.workers();
  std::string io_error;
  if (!sendFrame(fd, helloToJson(hello), &io_error)) {
    BRIDGE_LOG(kWarn) << "serve: hello failed: " << io_error;
    ::close(fd);
    return;
  }

  std::string payload;
  while (recvFrame(fd, &payload, &io_error, &stop_)) {
    const std::optional<ServeRequest> request = requestFromJson(payload);
    ServeResponse response;
    bool drain = false;
    if (!request) {
      response.kind = ServeResponse::Kind::kError;
      response.message = "malformed request frame";
    } else {
      response = handleRequest(*request, &drain);
    }
    if (drain) {
      // Drain semantics: stop admitting, let every in-flight job finish,
      // and only then answer — the response carries the *final* report.
      requestStop();
      waitForFlightsToDrain();
      response.report = stats().report;
    }
    if (!sendFrame(fd, responseToJson(response), &io_error)) {
      BRIDGE_LOG(kWarn) << "serve: response failed: " << io_error;
      break;
    }
    if (!request) break;  // protocol violation: drop the connection
    if (drain) break;
  }
  if (!io_error.empty()) {
    BRIDGE_LOG(kWarn) << "serve: connection error: " << io_error;
  }
  ::close(fd);
}

ServeResponse SweepDaemon::handleRequest(const ServeRequest& request,
                                         bool* drain) {
  ServeResponse response;
  switch (request.kind) {
    case ServeRequest::Kind::kPing:
      response.kind = ServeResponse::Kind::kOk;
      response.report = stats().report;
      break;
    case ServeRequest::Kind::kStats:
      response.kind = ServeResponse::Kind::kStats;
      response.stats = stats();
      break;
    case ServeRequest::Kind::kShutdown:
      response.kind = ServeResponse::Kind::kOk;
      *drain = true;
      break;
    case ServeRequest::Kind::kRun: {
      if (stop_.load(std::memory_order_acquire)) {
        response.kind = ServeResponse::Kind::kError;
        response.message = "daemon is draining; submit to a live daemon";
        break;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
        stats_.jobs += request.jobs.size();
      }
      response.kind = ServeResponse::Kind::kResults;
      response.results = admitJobs(request.jobs);
      response.report = SweepEngine::reportFor(response.results);
      break;
    }
  }
  return response;
}

std::vector<SweepResult> SweepDaemon::admitJobs(
    const std::vector<JobSpec>& jobs) {
  struct Pending {
    std::shared_future<SweepResult> future;  // invalid for immediate results
    SweepResult immediate;
  };
  std::vector<Pending> pending;
  pending.reserve(jobs.size());

  for (const JobSpec& job : jobs) {
    Pending p;
    std::string fingerprint;
    try {
      fingerprint = jobFingerprint(job);
    } catch (const std::exception& e) {
      // Same contract as SweepEngine::execute: a spec that cannot be
      // fingerprinted is a configuration error — fail it, don't dedup it.
      p.immediate.label = job.label;
      p.immediate.outcome = JobOutcome::kFailed;
      p.immediate.error = e.what();
      tallyOutcome(p.immediate);
      pending.push_back(std::move(p));
      continue;
    }

    std::lock_guard<std::mutex> lock(flight_mu_);
    const auto it = in_flight_.find(fingerprint);
    if (it != in_flight_.end()) {
      // Attach: this request rides the execution already in flight.
      p.future = it->second.result;
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.attached;
    } else {
      JobSpec copy = job;
      p.future = pool_.submit([this, copy = std::move(copy), fingerprint] {
                        return executeAdmitted(copy, fingerprint);
                      })
                     .share();
      in_flight_.emplace(fingerprint, Flight{p.future});
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.admitted;
    }
    pending.push_back(std::move(p));
  }

  std::vector<SweepResult> results;
  results.reserve(jobs.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    SweepResult r;
    if (!pending[i].future.valid()) {
      r = std::move(pending[i].immediate);
    } else {
      try {
        r = pending[i].future.get();
      } catch (const std::exception& e) {
        // Defensive: executeAdmitted doesn't throw, but a pool racing into
        // shutdown can surface a broken promise; account for the job.
        r.outcome = JobOutcome::kFailed;
        r.error = e.what();
        tallyOutcome(r);
      }
    }
    // Labels are display-only and per-request; an attached client gets the
    // shared result under *its* label, not the first requester's.
    r.label = jobs[i].label;
    results.push_back(std::move(r));
  }
  return results;
}

SweepResult SweepDaemon::executeAdmitted(const JobSpec& spec,
                                         const std::string& fingerprint) {
  SweepResult result;
  try {
    result = engine_.runOne(spec);
  } catch (const std::exception& e) {
    // A strict-policy engine rethrows job failures; if it escaped here the
    // fingerprint would be wedged in the flight table and drain would hang.
    // Convert to a failed result — the client library re-raises for strict
    // callers.
    result.label = spec.label;
    result.fingerprint = fingerprint;
    result.outcome = JobOutcome::kFailed;
    result.error = e.what();
    result.attempts = 1;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (result.from_cache) {
      ++stats_.cache_hits;
    } else if (result.attempts > 0) {
      ++stats_.executed;
    }
  }
  tallyOutcome(result);
  {
    // From here on the result lives in the cache (runOne stored it before
    // returning), so later requests are cache hits, not attachments.
    std::lock_guard<std::mutex> lock(flight_mu_);
    in_flight_.erase(fingerprint);
  }
  flight_cv_.notify_all();
  return result;
}

void SweepDaemon::tallyOutcome(const SweepResult& result) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  RunReport& report = stats_.report;
  ++report.total;
  switch (result.outcome) {
    case JobOutcome::kOk:
      ++report.ok;
      if (result.from_cache) ++report.from_cache;
      break;
    case JobOutcome::kFailed:
      ++report.failed;
      break;
    case JobOutcome::kTimedOut:
      ++report.timed_out;
      break;
    case JobOutcome::kQuarantined:
      ++report.quarantined;
      break;
  }
  if (result.outcome != JobOutcome::kOk) {
    report.failed_labels.push_back(result.label);
  }
  if (result.attempts > 1) ++report.retried;
}

void SweepDaemon::waitForFlightsToDrain() {
  std::unique_lock<std::mutex> lock(flight_mu_);
  flight_cv_.wait(lock, [this] { return in_flight_.empty(); });
}

}  // namespace bridge::serve
