#include "serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <utility>

#include "sim/log.h"
#include "sweep/fingerprint.h"

namespace bridge::serve {

namespace {

constexpr int kAcceptPollMs = 100;
constexpr int kListenBacklog = 16;

/// The daemon *is* the execution side: a serve_socket in its sweep options
/// would make the engine forward right back out — strip it. Sampling and
/// hardware variability are *client-side* decisions: specs arrive with
/// their fidelity encoded in their sampling.* / hwvar.* overrides, and an
/// engine-level default here would silently rewrite every deterministic
/// job — strip them too.
SweepOptions localSweep(SweepOptions options) {
  options.serve_socket.clear();
  options.sampling = SamplingParams{};
  options.hwvar = HwVarParams{};
  return options;
}

}  // namespace

std::string SweepDaemon::defaultSocketPath() {
  if (const char* env = std::getenv("BRIDGE_SERVE_SOCKET");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "build/sweep-serve.sock";
}

SweepDaemon::SweepDaemon(const DaemonOptions& options)
    : options_(options),
      socket_path_(options.socket_path.empty() ? defaultSocketPath()
                                               : options.socket_path),
      engine_(localSweep(options.sweep)),
      pool_(engine_.workers()),
      scheduler_(
          options.lease_ms, engine_.options().failures, &pool_,
          &engine_.quarantine(),
          [this](const JobSpec& spec, const std::string& fingerprint) {
            return executeAdmitted(spec, fingerprint);
          },
          [this](const SweepResult& result, JobScheduler::Origin origin) {
            onResolved(result, origin);
          },
          // Cache probe: a bare stat(2) on the sharded entry path. A hit
          // means the job resolves locally in microseconds instead of
          // waiting out a worker's claim poll; a corrupt entry is caught
          // later by the engine's checksummed lookup and re-simulated.
          engine_.options().use_cache
              ? JobScheduler::CacheProbe(
                    [this](const std::string& fingerprint) {
                      std::error_code ec;
                      return std::filesystem::exists(
                          engine_.cache().entryPath(fingerprint), ec);
                    })
              : JobScheduler::CacheProbe()) {}

SweepDaemon::~SweepDaemon() {
  requestStop();
  join();
}

bool SweepDaemon::start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long (" + std::to_string(socket_path_.size()) +
                " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
                "): " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return fail(std::string("socket: ") + std::strerror(errno));
  }
  // A previous daemon killed without cleanup leaves its socket file behind;
  // bind() would fail on it forever. Unlinking is safe: if another daemon
  // is live on the path we steal its accept queue, which is the operator's
  // call to make — one socket path, one daemon.
  std::error_code ec;
  std::filesystem::remove(socket_path_, ec);
  std::filesystem::create_directories(
      std::filesystem::path(socket_path_).parent_path(), ec);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + socket_path_ + ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, kListenBacklog) != 0) {
    return fail("listen " + socket_path_ + ": " + std::strerror(errno));
  }

  // Recovery happens before the first accept: a client that reconnects the
  // instant the socket exists sees a daemon whose journal orphans are
  // already back in flight, so resubmitted fingerprints attach instead of
  // re-executing.
  openJournalAndReplay();

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { acceptLoop(); });
  BRIDGE_LOG(kInfo) << "serve: listening on " << socket_path_ << " ("
                    << engine_.workers() << " workers, lease "
                    << scheduler_.leaseMs() << "ms, policy "
                    << policySignature() << ")";
  return true;
}

void SweepDaemon::requestStop() {
  stop_.store(true, std::memory_order_release);
  // Claims issued from here on answer draining=1; queued-but-unclaimed
  // jobs fall back to the local pool.
  scheduler_.beginDrain();
}

void SweepDaemon::join() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Every admitted job must resolve before worker connections are cut:
  // jobs leased to live workers complete remotely, jobs whose worker
  // vanished are orphaned by the reaper and re-admitted locally.
  scheduler_.beginDrain();
  scheduler_.waitIdle();
  workers_stop_.store(true, std::memory_order_release);
  // Client connection threads exit once their recv loop observes stop_
  // (worker threads observe workers_stop_), or their peer hangs up; any
  // thread blocked on an in-flight result already resolved above.
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
  scheduler_.stop();
  pool_.shutdown();
  journal_.close();
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    std::error_code ec;
    std::filesystem::remove(socket_path_, ec);
  }
}

ServeStats SweepDaemon::stats() const {
  ServeStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  const JobScheduler::Counters counters = scheduler_.counters();
  out.workers = counters.workers;
  out.claimed = counters.claimed;
  out.completed_remote = counters.completed_remote;
  out.leases_expired = counters.leases_expired;
  out.orphans_readmitted = counters.orphans_readmitted;
  return out;
}

void SweepDaemon::openJournalAndReplay() {
  if (options_.journal == "off") return;
  std::string dir;
  if (!options_.journal.empty()) {
    dir = options_.journal;
  } else {
    dir = AdmissionJournal::defaultDir(
        engine_.options().use_cache ? engine_.cache().dir() : "");
  }
  if (dir.empty()) return;
  std::string error;
  if (!journal_.open(dir, &error)) {
    // Availability beats the write-ahead guarantee: a daemon that cannot
    // journal still serves, it just cannot recover a crash.
    BRIDGE_LOG(kWarn) << "serve: journal disabled: " << error;
    return;
  }
  const std::vector<JournalRecord>& recovered = journal_.recovered();
  for (const JournalRecord& rec : recovered) {
    // Reseed the admit into the fresh active segment, then push the job
    // through the normal admission path — cache probe (work the dead
    // daemon *finished* resolves as a hit, never a re-execution), retry
    // budget, quarantine — exactly as if a client had just asked for it.
    journal_.admit(rec.fingerprint, rec.job);
    scheduler_.submit(rec.job, rec.fingerprint);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.admitted;
    ++stats_.journal_replayed;
  }
  if (!recovered.empty()) {
    BRIDGE_LOG(kInfo) << "serve: journal replayed " << recovered.size()
                      << " orphaned admissions from " << journal_.dir();
  }
  // The live set now exists in full in the active segment; everything
  // older is litter.
  journal_.checkpoint();
}

void SweepDaemon::acceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      BRIDGE_LOG(kWarn) << "serve: poll on listen socket failed: "
                        << std::strerror(errno);
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      BRIDGE_LOG(kWarn) << "serve: accept failed: " << std::strerror(errno);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { handleConnection(fd); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void SweepDaemon::handleConnection(int fd) {
  // Transport chaos (DESIGN §5k) is injected on the daemon's send path
  // only: decisions are pure hashes of (seed, stream, connection, frame),
  // with connection ids minted here and frames counted per connection
  // (the unsolicited hello is frame 0) — a chaos run drops/tears/delays
  // the same frames every time.
  const std::uint64_t conn_id =
      conn_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const FaultInjector* chaos = engine_.injector().plan().anyTransport()
                                   ? &engine_.injector()
                                   : nullptr;
  std::uint64_t frame = 0;

  // The daemon speaks first: version + policy signature, so the client can
  // refuse a policy mismatch before submitting anything. Always the *base*
  // version in the v1 byte shape — deployed v1 clients parse this frame
  // strictly; v2 peers upgrade with an in-band hello request.
  ServeHello hello;
  hello.version = std::string(kProtocolVersion);
  hello.policy = policySignature();
  hello.cache_dir = engine_.options().use_cache ? engine_.cache().dir() : "";
  hello.workers = engine_.workers();
  std::string io_error;
  if (chaos != nullptr && chaos->tornHello(conn_id)) {
    sendTornFrame(fd, helloToJson(hello), &io_error);
    BRIDGE_LOG(kInfo) << "serve: chaos tore the hello on connection "
                      << conn_id;
    ::close(fd);
    return;
  }
  if (!sendFrameChaos(fd, helloToJson(hello), &io_error, chaos, conn_id,
                      frame++)) {
    BRIDGE_LOG(kWarn) << "serve: hello failed: " << io_error;
    ::close(fd);
    return;
  }

  ConnState conn;
  std::string payload;
  // Worker connections switch to workers_stop_ after their hello: they
  // must survive requestStop() so leased jobs can still complete during a
  // drain; join() releases them once the scheduler is idle.
  const std::atomic<bool>* stop_flag = &stop_;
  while (recvFrame(fd, &payload, &io_error, stop_flag)) {
    const std::optional<ServeRequest> request = requestFromJson(payload);
    ServeResponse response;
    bool drain = false;
    if (!request) {
      response.kind = ServeResponse::Kind::kError;
      response.message = "malformed request frame";
    } else {
      response = handleRequest(*request, &conn, &drain);
    }
    stop_flag = conn.worker ? &workers_stop_ : &stop_;
    if (drain) {
      // Drain semantics: stop admitting, wait out every admitted job —
      // local, queued, *and* leased to workers — and only then answer:
      // the response carries the *final* report.
      requestStop();
      scheduler_.waitIdle();
      response.report = stats().report;
    }
    if (!sendFrameChaos(fd, responseToJson(response, conn.v2), &io_error,
                        chaos, conn_id, frame++)) {
      BRIDGE_LOG(kWarn) << "serve: response failed: " << io_error;
      break;
    }
    if (!request) break;  // protocol violation: drop the connection
    if (drain) break;
  }
  if (!io_error.empty()) {
    BRIDGE_LOG(kWarn) << "serve: connection error: " << io_error;
  }
  if (conn.worker) {
    // A vanished worker (clean exit or SIGKILL alike) orphans its leases:
    // each burns one retry and is re-admitted, or quarantined when the
    // budget is gone.
    scheduler_.deregisterWorker(conn.worker_id);
  }
  ::close(fd);
}

ServeResponse SweepDaemon::handleHello(const ServeRequest& request,
                                       ConnState* conn) {
  ServeResponse response;
  const auto reject = [&response](const std::string& message) {
    response.kind = ServeResponse::Kind::kError;
    response.message = message;
    return response;
  };
  if (request.role != "client" && request.role != "worker") {
    return reject("hello role must be 'client' or 'worker', got '" +
                  request.role + "'");
  }
  // Negotiate down: grant the peer's version when we know it, else our
  // own maximum (a future v3 peer reads the answer and drops to v2; a v1
  // peer never sends this frame at all, staying v1 by construction).
  const bool grant_v2 = request.version != kProtocolVersion;
  if (request.role == "worker") {
    if (!grant_v2) {
      return reject("workers require " + std::string(kProtocolVersionV2) +
                    "; '" + request.version + "' cannot hold leases");
    }
    // The policy-signature handshake gates claims: results computed under
    // a different failure policy or chaos plan are not comparable, so a
    // mismatched worker is refused before it can touch a job.
    if (request.policy != policySignature()) {
      return reject("worker policy signature mismatch — daemon runs '" +
                    policySignature() + "', worker offers '" + request.policy +
                    "'; refusing claims");
    }
  }
  response.kind = ServeResponse::Kind::kHello;
  response.hello.version = std::string(grant_v2 ? kProtocolVersionV2
                                                : kProtocolVersion);
  response.hello.policy = policySignature();
  response.hello.cache_dir =
      engine_.options().use_cache ? engine_.cache().dir() : "";
  response.hello.workers = engine_.workers();
  response.hello.lease_ms = scheduler_.leaseMs();
  conn->v2 = grant_v2;
  if (request.role == "worker") {
    conn->worker = true;
    conn->worker_id = scheduler_.registerWorker(
        request.name.empty() ? "worker" : request.name);
    response.hello.worker_id = conn->worker_id;
    BRIDGE_LOG(kInfo) << "serve: worker '" << request.name << "' attached (id "
                      << conn->worker_id << ")";
  }
  return response;
}

ServeResponse SweepDaemon::handleRequest(const ServeRequest& request,
                                         ConnState* conn, bool* drain) {
  ServeResponse response;
  switch (request.kind) {
    case ServeRequest::Kind::kPing:
      response.kind = ServeResponse::Kind::kOk;
      response.report = stats().report;
      break;
    case ServeRequest::Kind::kStats:
      response.kind = ServeResponse::Kind::kStats;
      response.stats = stats();
      break;
    case ServeRequest::Kind::kShutdown:
      response.kind = ServeResponse::Kind::kOk;
      *drain = true;
      break;
    case ServeRequest::Kind::kHello:
      response = handleHello(request, conn);
      break;
    case ServeRequest::Kind::kClaim: {
      if (!conn->worker) {
        response.kind = ServeResponse::Kind::kError;
        response.message = "claim requires a worker hello first";
        break;
      }
      response.kind = ServeResponse::Kind::kClaims;
      if (!scheduler_.claim(conn->worker_id, request.max_jobs,
                            &response.claims, &response.draining)) {
        response.kind = ServeResponse::Kind::kError;
        response.message = "worker is not registered";
      }
      break;
    }
    case ServeRequest::Kind::kComplete: {
      if (!conn->worker) {
        response.kind = ServeResponse::Kind::kError;
        response.message = "complete requires a worker hello first";
        break;
      }
      response.kind = ServeResponse::Kind::kLeaseAck;
      std::string reason;
      response.accepted = scheduler_.complete(conn->worker_id, request.lease,
                                              request.result, &reason);
      response.message = reason;
      break;
    }
    case ServeRequest::Kind::kFail: {
      if (!conn->worker) {
        response.kind = ServeResponse::Kind::kError;
        response.message = "fail requires a worker hello first";
        break;
      }
      response.kind = ServeResponse::Kind::kLeaseAck;
      std::string reason;
      response.accepted = scheduler_.fail(conn->worker_id, request.lease,
                                          request.message, &reason);
      response.message = reason;
      break;
    }
    case ServeRequest::Kind::kRun: {
      if (stop_.load(std::memory_order_acquire)) {
        response.kind = ServeResponse::Kind::kError;
        response.message = "daemon is draining; submit to a live daemon";
        break;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
        stats_.jobs += request.jobs.size();
      }
      response.kind = ServeResponse::Kind::kResults;
      response.results = admitJobs(request.jobs);
      response.report = SweepEngine::reportFor(response.results);
      break;
    }
  }
  return response;
}

std::vector<SweepResult> SweepDaemon::admitJobs(
    const std::vector<JobSpec>& jobs) {
  struct Pending {
    std::shared_future<SweepResult> future;  // invalid for immediate results
    SweepResult immediate;
  };
  std::vector<Pending> pending;
  pending.reserve(jobs.size());

  for (const JobSpec& job : jobs) {
    Pending p;
    std::string fingerprint;
    try {
      fingerprint = jobFingerprint(job);
    } catch (const std::exception& e) {
      // Same contract as SweepEngine::execute: a spec that cannot be
      // fingerprinted is a configuration error — fail it, don't dedup it.
      p.immediate.label = job.label;
      p.immediate.outcome = JobOutcome::kFailed;
      p.immediate.error = e.what();
      tallyOutcome(p.immediate);
      pending.push_back(std::move(p));
      continue;
    }

    // Write-ahead: the admit record is durable (on the kernel side of
    // write(2)) before the job can start executing, so a SIGKILL between
    // here and resolution leaves a replayable orphan, never a lost job.
    // Journaling attached jobs too is harmless — the replay live set is a
    // map — and keeps the ordering trivially correct.
    journal_.admit(fingerprint, job);
    const JobScheduler::Submission sub = scheduler_.submit(job, fingerprint);
    p.future = sub.future;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (sub.attached) {
        ++stats_.attached;
      } else {
        ++stats_.admitted;
      }
    }
    pending.push_back(std::move(p));
  }

  std::vector<SweepResult> results;
  results.reserve(jobs.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    SweepResult r;
    if (!pending[i].future.valid()) {
      r = std::move(pending[i].immediate);
    } else {
      try {
        r = pending[i].future.get();
      } catch (const std::exception& e) {
        // Defensive: the scheduler resolves every flight, but a promise
        // torn down mid-teardown surfaces here; account for the job.
        r.outcome = JobOutcome::kFailed;
        r.error = e.what();
        tallyOutcome(r);
      }
    }
    // Labels are display-only and per-request; an attached client gets the
    // shared result under *its* label, not the first requester's.
    r.label = jobs[i].label;
    results.push_back(std::move(r));
  }
  return results;
}

SweepResult SweepDaemon::executeAdmitted(const JobSpec& spec,
                                         const std::string& fingerprint) {
  try {
    return engine_.runOne(spec);
  } catch (const std::exception& e) {
    // A strict-policy engine rethrows job failures; if it escaped here the
    // fingerprint would be wedged in the flight table and drain would hang.
    // Convert to a failed result — the client library re-raises for strict
    // callers.
    SweepResult result;
    result.label = spec.label;
    result.fingerprint = fingerprint;
    result.outcome = JobOutcome::kFailed;
    result.error = e.what();
    result.attempts = 1;
    return result;
  }
}

void SweepDaemon::onResolved(const SweepResult& result,
                             JobScheduler::Origin origin) {
  // Every resolution retires its admit record — ok, failed, quarantined,
  // cache hit, local, remote, or orphan give-up alike. The flight is over;
  // a crash after this point has nothing left to recover for this job.
  if (!result.fingerprint.empty()) journal_.complete(result.fingerprint);
  if (origin == JobScheduler::Origin::kLocal) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (result.from_cache) {
      ++stats_.cache_hits;
    } else if (result.attempts > 0) {
      ++stats_.executed;
    }
  }
  // Remote completions are counted by the scheduler (completed_remote);
  // orphan give-ups count in neither origin — only the outcome tally.
  tallyOutcome(result);
}

void SweepDaemon::tallyOutcome(const SweepResult& result) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  RunReport& report = stats_.report;
  ++report.total;
  switch (result.outcome) {
    case JobOutcome::kOk:
      ++report.ok;
      if (result.from_cache) ++report.from_cache;
      break;
    case JobOutcome::kFailed:
      ++report.failed;
      break;
    case JobOutcome::kTimedOut:
      ++report.timed_out;
      break;
    case JobOutcome::kQuarantined:
      ++report.quarantined;
      break;
  }
  if (result.outcome != JobOutcome::kOk) {
    report.failed_labels.push_back(result.label);
  }
  if (result.attempts > 1) ++report.retried;
}

}  // namespace bridge::serve
