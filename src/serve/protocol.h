// Wire protocol for the sweep daemon (DESIGN.md §5g).
//
// Transport: a Unix-domain stream socket carrying length-prefixed JSON
// frames. A frame is an 8-hex-digit payload length, a newline, then exactly
// that many payload bytes:
//
//   0000002a\n{"type":"stats"}…
//
// The prefix is ASCII (not binary) so a frame dump is readable with od or
// strings; the newline terminates the header unambiguously. Payloads are
// capped at kMaxFramePayload — a garbage prefix must never turn into a
// multi-gigabyte allocation.
//
// Conversation: on accept the daemon speaks first with a `hello` frame
// carrying the protocol version and — critically — the engine's
// policySignature(). Results computed under different failure policies
// (retry counts, timeouts, chaos plans) are not comparable, so the client
// library refuses to proceed when its own expected signature differs:
// mixing is an error at handshake time, never a silent data hazard. After
// the hello, the client sends one request frame at a time and reads one
// response frame for each (strict request/response, no pipelining).
//
// Messages (the "type" field discriminates):
//   client -> daemon:  run{jobs:[JobSpec…]} | stats | shutdown | ping
//                      | hello{version,role,policy,name}       (v2 upgrade)
//                      | claim{max_jobs}                       (v2, worker)
//                      | complete{lease,result}                (v2, worker)
//                      | fail{lease,message}                   (v2, worker)
//   daemon -> client:  hello | results{results,report} | stats{stats}
//                      | ok{report} | error{message}
//                      | hello{...,lease_ms,worker_id}         (v2 ack)
//                      | claims{draining,claims:[{lease,deadline_ms,job}…]}
//                      | lease_ack{accepted,message}
//
// Versioning (DESIGN.md §5h): the unsolicited hello the daemon sends on
// accept always announces the *base* version `bridge-serve-1` and keeps the
// exact v1 field shape, because deployed v1 clients parse it strictly
// (unknown fields are a protocol violation to them). The elastic layer —
// `bridge-serve-2` — is negotiated in band: a v2 peer's first request is a
// `hello` frame proposing its version; the daemon answers with a hello
// carrying the negotiated version (its own maximum, capped at the
// proposal — a future peer proposing `bridge-serve-3` negotiates down to
// `-2`, and a v1 peer never proposes, so its connection simply stays at
// `-1`). Only negotiated-v2 connections ever see v2 response fields; a v1
// client's stats frames keep their original byte shape.
//
// All values ride the jsonio subset (objects, arrays, strings, uint64,
// %.17g doubles); booleans are encoded as 0/1. Doubles round-trip exactly,
// so a result that crossed the wire is bit-identical to one computed
// locally — asserted by the serve test suite.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sweep/sweep.h"

namespace bridge::serve {

/// Base protocol: run/stats/shutdown/ping. This is the version announced
/// in the unsolicited hello, always — see the versioning note above.
inline constexpr std::string_view kProtocolVersion = "bridge-serve-1";

/// Elastic protocol: the base plus in-band hello upgrade, worker claim
/// leases, and complete/fail (DESIGN.md §5h). Spoken only on connections
/// that negotiated it.
inline constexpr std::string_view kProtocolVersionV2 = "bridge-serve-2";

/// Hard cap on a frame payload; a malformed or hostile length prefix fails
/// the read instead of sizing an allocation.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

// ---------------------------------------------------------------------------
// Framing

/// "%08x\n" + payload. Throws std::length_error above kMaxFramePayload.
std::string encodeFrame(const std::string& payload);

/// Parse a frame header (the first 9 bytes); nullopt if malformed or the
/// declared length exceeds kMaxFramePayload.
std::optional<std::size_t> decodeFrameHeader(std::string_view header);

/// Write one frame to `fd` (handles short writes, suppresses SIGPIPE).
/// False + *error on any socket error.
bool sendFrame(int fd, const std::string& payload, std::string* error);

/// Write a deliberately truncated frame — a correct header followed by only
/// part of the payload — then return false. The peer sees a torn frame and
/// must treat the connection as dead. Chaos-only; never called on a healthy
/// path.
bool sendTornFrame(int fd, const std::string& payload, std::string* error);

/// sendFrame with the daemon's transport chaos applied (DESIGN §5k): the
/// injector decides per (connection, frame) whether this send is dropped
/// (nothing written), torn (sendTornFrame), delayed (sleep, then a normal
/// send), or clean. False means the connection must be closed; *error says
/// which fault fired. A null/inactive injector degrades to sendFrame.
bool sendFrameChaos(int fd, const std::string& payload, std::string* error,
                    const FaultInjector* chaos, std::uint64_t connection,
                    std::uint64_t frame);

/// Read one frame from `fd`. Returns false with an *empty* error on clean
/// EOF before any header byte (peer closed between requests) or when `stop`
/// flips mid-wait, and false with a non-empty error on malformed headers,
/// truncated payloads, or socket errors. Waits in short poll() slices so a
/// stopping daemon never blocks in recv().
///
/// `timeout_ms` > 0 bounds the whole read (header + payload): on expiry the
/// read fails with a "timed out" error and, if `timed_out` is non-null,
/// *timed_out = true — the client layer turns that into a typed
/// ServeTimeoutError. 0 keeps the legacy block-forever behavior.
bool recvFrame(int fd, std::string* payload, std::string* error,
               const std::atomic<bool>* stop = nullptr,
               std::uint64_t timeout_ms = 0, bool* timed_out = nullptr);

// ---------------------------------------------------------------------------
// Payload codecs (exposed for tests; every message body is plain jsonio)

std::string jobSpecToJson(const JobSpec& spec);
std::optional<JobSpec> jobSpecFromJson(const std::string& json);

std::string sweepResultToJson(const SweepResult& result);
std::optional<SweepResult> sweepResultFromJson(const std::string& json);

std::string runReportToJson(const RunReport& report);
std::optional<RunReport> runReportFromJson(const std::string& json);

// ---------------------------------------------------------------------------
// Messages

/// First frame on every connection, daemon -> client. Also reused as the
/// body of the negotiated hello *response* to an in-band v2 upgrade, where
/// the two v2 fields appear; the unsolicited hello never carries them (v1
/// clients reject unknown keys).
struct ServeHello {
  std::string version;    // kProtocolVersion, or the negotiated version
  std::string policy;     // daemon engine's policySignature()
  std::string cache_dir;  // daemon's sharded cache tree ("" = cache off)
  std::uint64_t workers = 0;
  std::uint64_t lease_ms = 0;   // v2: lease window granted to workers
  std::uint64_t worker_id = 0;  // v2: daemon-assigned id (role=worker only)
};

/// Daemon-lifetime admission counters. `jobs` counts every job received;
/// `admitted` the unique fingerprints that went to the engine; `attached`
/// the jobs that joined an already-in-flight twin instead of executing;
/// `executed` the admitted jobs that actually simulated (the rest were
/// cache hits). Dedup is proven when executed == unique fingerprints.
///
/// The elastic layer (DESIGN §5h) splits execution by origin — `executed`
/// stays daemon-local fresh executions, `completed_remote` counts results
/// posted by workers against live leases — so on a cold run with no
/// failures: executed + completed_remote == admitted. The elastic counters
/// ride only on negotiated-v2 connections; a v1 client's stats frame keeps
/// the original byte shape.
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t jobs = 0;
  std::uint64_t admitted = 0;
  std::uint64_t attached = 0;
  std::uint64_t executed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t workers = 0;             // v2: workers currently attached
  std::uint64_t claimed = 0;             // v2: lease grants handed out
  std::uint64_t completed_remote = 0;    // v2: results accepted from workers
  std::uint64_t leases_expired = 0;      // v2: deadlines missed
  std::uint64_t orphans_readmitted = 0;  // v2: orphaned jobs re-dispatched
  std::uint64_t journal_replayed = 0;    // v2: admissions recovered from the
                                         // write-ahead journal at startup
  RunReport report;  // outcome tally over every admitted job

  std::string summary() const;  // one line, for logs and driver output
};

/// `negotiated` adds the v2 hello fields; the unsolicited hello must be
/// serialized with the default (v1 byte shape).
std::string helloToJson(const ServeHello& hello, bool negotiated = false);
std::optional<ServeHello> helloFromJson(const std::string& json);

/// `elastic` gates the v2 counters; pass false on v1 connections.
std::string statsToJson(const ServeStats& stats, bool elastic = true);
std::optional<ServeStats> statsFromJson(const std::string& json);

/// One claimed job: the spec plus the lease the worker must post
/// complete/fail against. `deadline_ms` is the lease window in
/// milliseconds from the grant; the daemon tracks the actual deadline on
/// its own monotonic clock, so worker and daemon clocks never need to
/// agree.
struct LeaseGrant {
  std::uint64_t lease = 0;
  std::uint64_t deadline_ms = 0;
  JobSpec job;
};

/// Client -> daemon.
struct ServeRequest {
  enum class Kind {
    kRun, kStats, kShutdown, kPing,   // v1
    kHello, kClaim, kComplete, kFail  // v2 (elastic)
  };
  Kind kind = Kind::kPing;
  std::vector<JobSpec> jobs;  // kRun only
  // kHello: in-band upgrade. role is "client" or "worker"; workers must
  // present the daemon's exact policy signature to be allowed to claim.
  std::string version;
  std::string role;
  std::string policy;
  std::string name;
  std::uint64_t max_jobs = 0;  // kClaim (0 = heartbeat: renew leases only)
  std::uint64_t lease = 0;     // kComplete, kFail
  SweepResult result;          // kComplete
  std::string message;         // kFail
};

std::string requestToJson(const ServeRequest& request);
std::optional<ServeRequest> requestFromJson(const std::string& json);

/// Daemon -> client (everything after the hello).
struct ServeResponse {
  enum class Kind {
    kResults, kStats, kOk, kError,  // v1
    kHello, kClaims, kLeaseAck      // v2 (elastic)
  };
  Kind kind = Kind::kOk;
  std::vector<SweepResult> results;  // kResults
  RunReport report;                  // kResults, kOk (final report on drain)
  ServeStats stats;                  // kStats
  std::string message;               // kError; kLeaseAck rejection reason
  ServeHello hello;                  // kHello (negotiated upgrade ack)
  std::vector<LeaseGrant> claims;    // kClaims
  bool draining = false;  // kClaims: no new work, finish leases and leave
  bool accepted = false;  // kLeaseAck
};

/// `elastic` gates the v2 stats counters; kHello/kClaims/kLeaseAck kinds
/// serialize fully either way (they only ever travel to v2 peers).
std::string responseToJson(const ServeResponse& response, bool elastic = true);
std::optional<ServeResponse> responseFromJson(const std::string& json);

}  // namespace bridge::serve
