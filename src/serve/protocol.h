// Wire protocol for the sweep daemon (DESIGN.md §5g).
//
// Transport: a Unix-domain stream socket carrying length-prefixed JSON
// frames. A frame is an 8-hex-digit payload length, a newline, then exactly
// that many payload bytes:
//
//   0000002a\n{"type":"stats"}…
//
// The prefix is ASCII (not binary) so a frame dump is readable with od or
// strings; the newline terminates the header unambiguously. Payloads are
// capped at kMaxFramePayload — a garbage prefix must never turn into a
// multi-gigabyte allocation.
//
// Conversation: on accept the daemon speaks first with a `hello` frame
// carrying the protocol version and — critically — the engine's
// policySignature(). Results computed under different failure policies
// (retry counts, timeouts, chaos plans) are not comparable, so the client
// library refuses to proceed when its own expected signature differs:
// mixing is an error at handshake time, never a silent data hazard. After
// the hello, the client sends one request frame at a time and reads one
// response frame for each (strict request/response, no pipelining).
//
// Messages (the "type" field discriminates):
//   client -> daemon:  run{jobs:[JobSpec…]} | stats | shutdown | ping
//   daemon -> client:  hello | results{results,report} | stats{stats}
//                      | ok{report} | error{message}
//
// All values ride the jsonio subset (objects, arrays, strings, uint64,
// %.17g doubles); booleans are encoded as 0/1. Doubles round-trip exactly,
// so a result that crossed the wire is bit-identical to one computed
// locally — asserted by the serve test suite.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sweep/sweep.h"

namespace bridge::serve {

inline constexpr std::string_view kProtocolVersion = "bridge-serve-1";

/// Hard cap on a frame payload; a malformed or hostile length prefix fails
/// the read instead of sizing an allocation.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

// ---------------------------------------------------------------------------
// Framing

/// "%08x\n" + payload. Throws std::length_error above kMaxFramePayload.
std::string encodeFrame(const std::string& payload);

/// Parse a frame header (the first 9 bytes); nullopt if malformed or the
/// declared length exceeds kMaxFramePayload.
std::optional<std::size_t> decodeFrameHeader(std::string_view header);

/// Write one frame to `fd` (handles short writes, suppresses SIGPIPE).
/// False + *error on any socket error.
bool sendFrame(int fd, const std::string& payload, std::string* error);

/// Read one frame from `fd`. Returns false with an *empty* error on clean
/// EOF before any header byte (peer closed between requests) or when `stop`
/// flips mid-wait, and false with a non-empty error on malformed headers,
/// truncated payloads, or socket errors. Waits in short poll() slices so a
/// stopping daemon never blocks in recv().
bool recvFrame(int fd, std::string* payload, std::string* error,
               const std::atomic<bool>* stop = nullptr);

// ---------------------------------------------------------------------------
// Payload codecs (exposed for tests; every message body is plain jsonio)

std::string jobSpecToJson(const JobSpec& spec);
std::optional<JobSpec> jobSpecFromJson(const std::string& json);

std::string sweepResultToJson(const SweepResult& result);
std::optional<SweepResult> sweepResultFromJson(const std::string& json);

std::string runReportToJson(const RunReport& report);
std::optional<RunReport> runReportFromJson(const std::string& json);

// ---------------------------------------------------------------------------
// Messages

/// First frame on every connection, daemon -> client.
struct ServeHello {
  std::string version;    // kProtocolVersion
  std::string policy;     // daemon engine's policySignature()
  std::string cache_dir;  // daemon's sharded cache tree ("" = cache off)
  std::uint64_t workers = 0;
};

/// Daemon-lifetime admission counters. `jobs` counts every job received;
/// `admitted` the unique fingerprints that went to the engine; `attached`
/// the jobs that joined an already-in-flight twin instead of executing;
/// `executed` the admitted jobs that actually simulated (the rest were
/// cache hits). Dedup is proven when executed == unique fingerprints.
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t jobs = 0;
  std::uint64_t admitted = 0;
  std::uint64_t attached = 0;
  std::uint64_t executed = 0;
  std::uint64_t cache_hits = 0;
  RunReport report;  // outcome tally over every admitted job

  std::string summary() const;  // one line, for logs and driver output
};

std::string helloToJson(const ServeHello& hello);
std::optional<ServeHello> helloFromJson(const std::string& json);

std::string statsToJson(const ServeStats& stats);
std::optional<ServeStats> statsFromJson(const std::string& json);

/// Client -> daemon.
struct ServeRequest {
  enum class Kind { kRun, kStats, kShutdown, kPing };
  Kind kind = Kind::kPing;
  std::vector<JobSpec> jobs;  // kRun only
};

std::string requestToJson(const ServeRequest& request);
std::optional<ServeRequest> requestFromJson(const std::string& json);

/// Daemon -> client (everything after the hello).
struct ServeResponse {
  enum class Kind { kResults, kStats, kOk, kError };
  Kind kind = Kind::kOk;
  std::vector<SweepResult> results;  // kResults
  RunReport report;                  // kResults, kOk (final report on drain)
  ServeStats stats;                  // kStats
  std::string message;               // kError
};

std::string responseToJson(const ServeResponse& response);
std::optional<ServeResponse> responseFromJson(const std::string& json);

}  // namespace bridge::serve
