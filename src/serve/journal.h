// Write-ahead admission journal for the sweep daemon (DESIGN.md §5k).
//
// PR 7 made every *other* process expendable: workers can be SIGKILLed and
// their leases re-admitted, clients can vanish and their flights resolve
// into the cache anyway. The daemon itself was the last single point of
// failure — a kill mid-sweep lost every admitted-but-uncached job, because
// the in-flight table lived only in memory. The journal is that table's
// durable shadow: before a fingerprint starts executing, an `admit` record
// (carrying the full JobSpec) is appended; when its flight resolves — ok,
// failed, quarantined, cache hit, local or remote — a `done` record
// follows. A restarting daemon replays the segments, re-admits every
// admitted-minus-done fingerprint through the normal scheduler path (cache
// probe, retry budget, quarantine — so already-cached work resolves as a
// hit, never a re-execution), and the interrupted sweep converges
// bit-identically when its client resubmits.
//
// On-disk format, same discipline as the result cache's sealed entries:
// a journal is a directory of append-only segments (`seg-<seq>.wal`), each
// a sequence of crc+len-sealed records —
//
//   #bridge-journal-1 admit len=<n> crc=<16-hex fnv1a64>\n
//   <fingerprint>\n<JobSpec JSON>\n        (the `n` payload bytes)
//
// (`done` records carry only the fingerprint.) A crash mid-append leaves a
// torn tail that fails the len/crc check; replay stops at the tear and
// loses at most the record being written — which is safe, because the
// admission only proceeds after the append returns (write-ahead). Segments
// are created atomically via temp+rename, so a reader never sees a
// half-named file. Rotation doubles as compaction: when the active segment
// outgrows rotate_bytes — or the live set drains to empty — a new segment
// is seeded with the still-live admits and every older segment becomes
// removable litter. cache_fsck audits journals alongside the cache tree
// (torn tails, stale temps, compacted litter) and --repair truncates/
// removes them.
//
// Durability is rename/page-cache level, matching the cache: records
// survive any process death (SIGKILL included); surviving power loss would
// need fsync and is out of scope for a result that can always be
// recomputed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"

namespace bridge::serve {

struct JournalRecord {
  enum class Type { kAdmit, kDone };
  Type type = Type::kAdmit;
  std::string fingerprint;
  JobSpec job;  // kAdmit only
};

/// fsck audit of one journal segment.
struct JournalSegmentFsck {
  std::string file;            // segment file name (not the full path)
  bool active = false;         // highest sequence: open for append
  std::size_t records = 0;     // whole records parsed
  std::size_t admits = 0;
  std::size_t dones = 0;
  std::size_t live = 0;        // this segment's admits still outstanding
  bool torn = false;           // tail fails the len/crc seal
  std::size_t torn_bytes = 0;  // bytes past the last whole record
};

/// fsck audit of a whole journal directory.
struct JournalFsck {
  std::size_t segments = 0;
  std::size_t records = 0;
  std::size_t live = 0;       // admitted, never completed (the replay set)
  std::size_t torn = 0;       // segments with a torn tail
  std::size_t compacted = 0;  // sealed segments with no live admits (litter)
  std::size_t stale_tmp = 0;  // temp files from interrupted rotations
  std::size_t removed = 0;    // files removed or tails truncated (repair)
  std::vector<JournalSegmentFsck> segs;  // sorted by sequence
  std::vector<std::string> bad_files;    // torn segments + stale temps

  /// Compacted litter is inert (like shard lock litter): cleanliness is
  /// about torn tails and stale temps only.
  bool clean() const { return torn == 0 && stale_tmp == 0; }
};

class AdmissionJournal {
 public:
  AdmissionJournal() = default;
  ~AdmissionJournal();

  AdmissionJournal(const AdmissionJournal&) = delete;
  AdmissionJournal& operator=(const AdmissionJournal&) = delete;

  /// Create `dir` if needed, replay existing segments into the recovered
  /// live set, and open a fresh active segment for this process's appends.
  /// False + *error when the directory or segment cannot be created (the
  /// caller runs journal-less — availability beats the write-ahead
  /// guarantee, with one warning).
  bool open(const std::string& dir, std::string* error);

  /// Close the active segment. Implicit in the destructor.
  void close();

  bool enabled() const { return fd_ >= 0; }
  const std::string& dir() const { return dir_; }

  /// Jobs a previous daemon admitted but never completed, in admission
  /// order. Valid after open(); the daemon re-admits each one (admit() +
  /// scheduler submit) and then calls checkpoint().
  const std::vector<JournalRecord>& recovered() const { return recovered_; }

  /// Append an admit record; returns once it is on the kernel side of
  /// write(2), i.e. durable against process death. Call *before* the job
  /// can start executing. Best-effort: false on I/O failure (logged once).
  bool admit(const std::string& fingerprint, const JobSpec& spec);

  /// Append a done record; an empty live set triggers compaction (fresh
  /// active segment, older segments deleted).
  bool complete(const std::string& fingerprint);

  /// Delete every segment older than the active one. Safe once the
  /// recovered live set has been re-admitted into the active segment —
  /// which is exactly what the daemon's replay does before calling this.
  void checkpoint();

  /// Admitted-but-not-completed fingerprints currently known.
  std::size_t liveCount() const;

  /// Active-segment size that triggers rotation-with-compaction.
  void setRotateBytes(std::size_t bytes) { rotate_bytes_ = bytes; }

  /// Audit (and with `repair` fix) a journal directory: truncate torn
  /// tails, remove stale temps and compacted-litter segments. Run on a
  /// journal nobody has open, like the cache fsck.
  static JournalFsck fsck(const std::string& dir, bool repair);

  /// Record codec (exposed for tests and fsck). decodeRecord parses the
  /// record at text[*pos...]: 1 = parsed (advances *pos), 0 = clean end of
  /// input, -1 = torn or corrupt tail (*pos is the tear offset).
  static std::string encodeRecord(const JournalRecord& record);
  static int decodeRecord(std::string_view text, std::size_t* pos,
                          JournalRecord* record);

  /// Journal directory for a cache tree, honoring $BRIDGE_JOURNAL:
  /// "off"/"0" disables (returns ""), a path overrides, unset/empty means
  /// <cache_dir>/journal ("" when the cache is off — no cache, no
  /// recovery target, no journal).
  static std::string defaultDir(const std::string& cache_dir);

 private:
  bool openSegmentLocked(std::string* error);
  bool appendLocked(const JournalRecord& record);
  /// Seal the active segment, open the next one seeded with the live set,
  /// and delete every older segment. The compaction step.
  void rotateLocked();
  void removeOlderSegmentsLocked();

  mutable std::mutex mu_;
  std::string dir_;
  int fd_ = -1;
  std::uint64_t active_seq_ = 0;
  std::size_t active_bytes_ = 0;
  std::size_t rotate_bytes_ = 1u << 20;
  bool warned_ = false;  // one warning per journal on append failure
  std::vector<JournalRecord> recovered_;
  std::unordered_map<std::string, JobSpec> live_;
};

}  // namespace bridge::serve
