#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/log.h"
#include "sweep/fingerprint.h"

namespace bridge::serve {

namespace {

constexpr std::string_view kMagic = "#bridge-journal-1";

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string segmentName(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%08llu.wal",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// seg-<8 digits>.wal -> sequence, or 0 (never a valid sequence: numbering
/// starts at 1) for anything else.
std::uint64_t segmentSeq(const std::string& name) {
  unsigned long long seq = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "seg-%8llu.wa%c", &seq, &tail) != 2 ||
      tail != 'l' || name.size() != segmentName(seq).size()) {
    return 0;
  }
  return seq;
}

/// Segment files sorted by sequence (replay must see admits before their
/// dones regardless of directory iteration order).
std::vector<std::pair<std::uint64_t, std::string>> listSegments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::uint64_t seq = segmentSeq(name);
    if (seq != 0) segments.emplace_back(seq, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

std::string AdmissionJournal::encodeRecord(const JournalRecord& record) {
  std::string payload = record.fingerprint;
  if (record.type == JournalRecord::Type::kAdmit) {
    payload += '\n';
    payload += jobSpecToJson(record.job);
  }
  std::string out(kMagic);
  out += record.type == JournalRecord::Type::kAdmit ? " admit" : " done";
  out += " len=" + std::to_string(payload.size());
  out += " crc=" + hex16(fnv1a64(payload));
  out += '\n';
  out += payload;
  out += '\n';
  return out;
}

int AdmissionJournal::decodeRecord(std::string_view text, std::size_t* pos,
                                   JournalRecord* record) {
  if (*pos >= text.size()) return 0;
  const std::size_t nl = text.find('\n', *pos);
  if (nl == std::string_view::npos) return -1;  // torn header
  const std::string header(text.substr(*pos, nl - *pos));
  char type[8] = {};
  unsigned long long len = 0;
  char crc[17] = {};
  if (std::sscanf(header.c_str(), "#bridge-journal-1 %7s len=%llu crc=%16s",
                  type, &len, crc) != 3 ||
      std::strlen(crc) != 16) {
    return -1;  // corrupt header
  }
  JournalRecord::Type rtype;
  if (std::strcmp(type, "admit") == 0) {
    rtype = JournalRecord::Type::kAdmit;
  } else if (std::strcmp(type, "done") == 0) {
    rtype = JournalRecord::Type::kDone;
  } else {
    return -1;
  }
  const std::size_t body = nl + 1;
  if (body + len + 1 > text.size() || text[body + len] != '\n') {
    return -1;  // torn payload
  }
  const std::string_view payload = text.substr(body, len);
  if (hex16(fnv1a64(payload)) != crc) return -1;  // checksum mismatch
  const std::size_t split = payload.find('\n');
  if (rtype == JournalRecord::Type::kAdmit) {
    if (split == std::string_view::npos) return -1;
    const auto spec = jobSpecFromJson(std::string(payload.substr(split + 1)));
    if (!spec) return -1;  // sealed but unparseable: treat as a tear
    record->job = *spec;
    record->fingerprint = std::string(payload.substr(0, split));
  } else {
    if (split != std::string_view::npos) return -1;
    record->fingerprint = std::string(payload);
    record->job = JobSpec{};
  }
  if (record->fingerprint.empty()) return -1;
  record->type = rtype;
  *pos = body + len + 1;
  return 1;
}

std::string AdmissionJournal::defaultDir(const std::string& cache_dir) {
  if (const char* env = std::getenv("BRIDGE_JOURNAL");
      env != nullptr && *env != '\0') {
    const std::string_view value(env);
    if (value == "off" || value == "0") return {};
    return std::string(value);
  }
  if (cache_dir.empty()) return {};
  return cache_dir + "/journal";
}

AdmissionJournal::~AdmissionJournal() { close(); }

void AdmissionJournal::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool AdmissionJournal::open(const std::string& dir, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = dir;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    if (error != nullptr) *error = "mkdir " + dir_ + ": " + ec.message();
    return false;
  }

  // Replay: admits insert, dones erase; what survives is the orphan set a
  // previous daemon never finished. A torn tail ends its segment's replay
  // (records past a tear cannot be trusted), but later segments still
  // count — they were sealed before the tear was written.
  recovered_.clear();
  live_.clear();
  std::vector<std::string> order;
  std::uint64_t max_seq = 0;
  for (const auto& [seq, path] : listSegments(dir_)) {
    max_seq = std::max(max_seq, seq);
    const std::string text = readWholeFile(path);
    std::size_t pos = 0;
    JournalRecord record;
    int status;
    while ((status = decodeRecord(text, &pos, &record)) == 1) {
      if (record.type == JournalRecord::Type::kAdmit) {
        if (live_.emplace(record.fingerprint, record.job).second) {
          order.push_back(record.fingerprint);
        }
      } else {
        live_.erase(record.fingerprint);
      }
    }
    if (status < 0) {
      BRIDGE_LOG(kWarn) << "journal: torn tail in " << path << " at byte "
                        << pos << " (" << text.size() - pos
                        << " bytes ignored)";
    }
  }
  for (const std::string& fingerprint : order) {
    const auto it = live_.find(fingerprint);
    if (it == live_.end()) continue;
    JournalRecord record;
    record.type = JournalRecord::Type::kAdmit;
    record.fingerprint = fingerprint;
    record.job = it->second;
    recovered_.push_back(std::move(record));
  }

  active_seq_ = max_seq + 1;
  return openSegmentLocked(error);
}

bool AdmissionJournal::openSegmentLocked(std::string* error) {
  // temp+rename creation: the segment appears in the directory atomically,
  // so a concurrent fsck (or the next daemon) never sees a half-named file.
  const std::string final_path = dir_ + "/" + segmentName(active_seq_);
  const std::string tmp_path =
      final_path + ".tmp." + std::to_string(::getpid());
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    if (error != nullptr) {
      *error = "open " + tmp_path + ": " + std::strerror(errno);
    }
    return false;
  }
  ::close(tmp_fd);
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + tmp_path + ": " + std::strerror(errno);
    }
    std::remove(tmp_path.c_str());
    return false;
  }
  fd_ = ::open(final_path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "open " + final_path + ": " + std::strerror(errno);
    }
    return false;
  }
  active_bytes_ = 0;
  return true;
}

bool AdmissionJournal::appendLocked(const JournalRecord& record) {
  if (fd_ < 0) return false;
  const std::string bytes = encodeRecord(record);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t w =
        ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (!warned_) {
        warned_ = true;
        BRIDGE_LOG(kWarn) << "journal: append to " << dir_
                          << " failed: " << std::strerror(errno)
                          << " (recovery coverage degrades)";
      }
      return false;
    }
    written += static_cast<std::size_t>(w);
  }
  active_bytes_ += bytes.size();
  return true;
}

bool AdmissionJournal::admit(const std::string& fingerprint,
                             const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return false;
  JournalRecord record;
  record.type = JournalRecord::Type::kAdmit;
  record.fingerprint = fingerprint;
  record.job = spec;
  const bool ok = appendLocked(record);
  live_[fingerprint] = spec;
  if (ok && active_bytes_ > rotate_bytes_) rotateLocked();
  return ok;
}

bool AdmissionJournal::complete(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return false;
  JournalRecord record;
  record.type = JournalRecord::Type::kDone;
  record.fingerprint = fingerprint;
  const bool ok = appendLocked(record);
  live_.erase(fingerprint);
  // Completion compaction: a drained live set means every record written so
  // far is history — collapse to a fresh empty segment instead of letting
  // an admit/done ledger grow without bound across a long-lived daemon.
  if (ok && live_.empty() && active_bytes_ > 0) rotateLocked();
  return ok;
}

void AdmissionJournal::rotateLocked() {
  ::close(fd_);
  fd_ = -1;
  ++active_seq_;
  std::string error;
  if (!openSegmentLocked(&error)) {
    BRIDGE_LOG(kWarn) << "journal: rotation failed: " << error
                      << " (journal disabled)";
    return;
  }
  // Seed the new segment with the still-live admits (compaction by copy):
  // once they are durable here, every older segment is pure litter.
  for (const auto& [fingerprint, spec] : live_) {
    JournalRecord record;
    record.type = JournalRecord::Type::kAdmit;
    record.fingerprint = fingerprint;
    record.job = spec;
    if (!appendLocked(record)) return;  // keep older segments as backstop
  }
  removeOlderSegmentsLocked();
}

void AdmissionJournal::removeOlderSegmentsLocked() {
  for (const auto& [seq, path] : listSegments(dir_)) {
    if (seq >= active_seq_) continue;
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

void AdmissionJournal::checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  removeOlderSegmentsLocked();
}

std::size_t AdmissionJournal::liveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

JournalFsck AdmissionJournal::fsck(const std::string& dir, bool repair) {
  JournalFsck report;
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return report;

  // Stale temps first: an interrupted rotation leaves `<seg>.tmp.<pid>`
  // behind, exactly like the cache's interrupted writers.
  std::vector<std::string> tmps;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      tmps.push_back(entry.path().string());
    }
  }
  report.stale_tmp = tmps.size();
  for (const std::string& path : tmps) {
    report.bad_files.push_back(path);
    if (repair && std::filesystem::remove(path, ec)) ++report.removed;
  }

  const auto segments = listSegments(dir);
  report.segments = segments.size();
  const std::uint64_t active_seq =
      segments.empty() ? 0 : segments.back().first;

  // Two passes: parse everything to learn the global live set, then decide
  // which sealed segments still matter.
  std::unordered_map<std::string, std::uint64_t> live;  // fp -> admit seq
  struct Parsed {
    JournalSegmentFsck seg;
    std::string path;
    std::vector<std::string> admits;
    std::size_t good_bytes = 0;
  };
  std::vector<Parsed> parsed;
  for (const auto& [seq, path] : segments) {
    Parsed p;
    p.path = path;
    p.seg.file = std::filesystem::path(path).filename().string();
    p.seg.active = seq == active_seq;
    const std::string text = readWholeFile(path);
    std::size_t pos = 0;
    JournalRecord record;
    int status;
    while ((status = decodeRecord(text, &pos, &record)) == 1) {
      ++p.seg.records;
      if (record.type == JournalRecord::Type::kAdmit) {
        ++p.seg.admits;
        p.admits.push_back(record.fingerprint);
        live[record.fingerprint] = seq;
      } else {
        ++p.seg.dones;
        live.erase(record.fingerprint);
      }
    }
    p.good_bytes = pos;
    if (status < 0) {
      p.seg.torn = true;
      p.seg.torn_bytes = text.size() - pos;
    }
    parsed.push_back(std::move(p));
  }

  for (Parsed& p : parsed) {
    for (const std::string& fp : p.admits) {
      const auto it = live.find(fp);
      if (it != live.end()) ++p.seg.live;
    }
    report.records += p.seg.records;
    if (p.seg.torn) {
      ++report.torn;
      report.bad_files.push_back(p.path);
      if (repair) {
        // Truncate the tail back to the last whole record: everything
        // before the tear is sealed and trustworthy, everything after is
        // an interrupted write that never acknowledged.
        std::filesystem::resize_file(p.path, p.good_bytes, ec);
        if (!ec) {
          p.seg.torn = false;
          p.seg.torn_bytes = 0;
          --report.torn;
          ++report.removed;
        }
      }
    }
    // A sealed (non-active) segment with no live admits was fully
    // superseded by compaction — litter, same class as shard locks.
    if (!p.seg.active && p.seg.live == 0) {
      ++report.compacted;
      if (repair && std::filesystem::remove(p.path, ec)) ++report.removed;
    }
    report.segs.push_back(p.seg);
  }
  report.live = live.size();
  return report;
}

}  // namespace bridge::serve
