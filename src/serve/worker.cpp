#include "serve/worker.h"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "serve/daemon.h"
#include "sim/log.h"
#include "sweep/thread_pool.h"

namespace bridge::serve {

namespace {

/// Claim-loop idle poll. Doubles as the heartbeat period while all slots
/// are busy, so it must sit far below the minimum lease window (10ms is
/// the defaultLeaseMs() clamp floor).
constexpr auto kClaimPollInterval = std::chrono::milliseconds(10);

}  // namespace

std::string SweepWorker::defaultSocketPath() {
  if (const char* env = std::getenv("BRIDGE_WORKER_SOCKET");
      env != nullptr && *env != '\0') {
    return env;
  }
  return SweepDaemon::defaultSocketPath();
}

std::string WorkerReport::summary() const {
  std::string line = std::to_string(claimed) + " claimed, " +
                     std::to_string(completed) + " completed, " +
                     std::to_string(failed) + " failed, " +
                     std::to_string(rejected) + " rejected";
  if (reconnects > 0) {
    line += ", " + std::to_string(reconnects) + " reconnects";
  }
  return line;
}

SweepWorker::SweepWorker(const WorkerOptions& options) : options_(options) {
  const std::string socket = options_.socket_path.empty()
                                 ? defaultSocketPath()
                                 : options_.socket_path;
  client_ = std::make_unique<ServeClient>(socket, options_.client);

  // The worker executes locally, through the *daemon's* cache tree: one
  // deployment, one sharded flock'd cache, whoever executes. A daemon
  // running cache-off turns the worker's cache off too — a worker must
  // never serve a sweep from state the daemon doesn't share.
  SweepOptions sweep = options_.sweep;
  sweep.serve_socket.clear();
  // Leased specs carry their fidelity in their sampling.* overrides and
  // their variability in hwvar.*; an engine-level default here (say, an
  // inherited BRIDGE_SAMPLING or BRIDGE_HWVAR) would rewrite
  // full-fidelity jobs behind the daemon's back.
  sweep.sampling = SamplingParams{};
  sweep.hwvar = HwVarParams{};
  const std::string& cache_dir = client_->hello().cache_dir;
  if (cache_dir.empty()) {
    sweep.use_cache = false;
  } else {
    sweep.use_cache = true;
    sweep.cache_dir = cache_dir;
  }
  engine_ = std::make_unique<SweepEngine>(sweep);

  // The upgrade doubles as the claim gate: the daemon refuses a worker
  // whose policy signature (failure policy + chaos plan) differs from its
  // own, and a v1-only daemon answers `error` — both surface as throws.
  client_->negotiate("worker", engine_->policySignature(),
                     options_.name.empty() ? "worker" : options_.name);
  BRIDGE_LOG(kInfo) << "worker: attached to " << socket << " as id "
                    << client_->hello().worker_id << " (lease "
                    << client_->hello().lease_ms << "ms, "
                    << engine_->workers() << " slots)";
}

SweepWorker::~SweepWorker() = default;

WorkerReport SweepWorker::run() {
  WorkerReport report;
  ThreadPool pool(engine_->workers());
  std::atomic<std::uint64_t> active{0};

  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t busy = active.load(std::memory_order_acquire);
    const std::uint64_t slots =
        busy < engine_->workers() ? engine_->workers() - busy : 0;
    bool draining = false;
    std::vector<LeaseGrant> grants;
    try {
      // slots == 0 is the heartbeat: no grants wanted, but the round trip
      // renews every lease this worker holds.
      grants = client_->claim(slots, &draining);
    } catch (const ServeConnectionError& e) {
      // The daemon died (or the connection was chaos-dropped). Re-dial and
      // re-hello: tryReconnect replays the role-"worker" upgrade, so the
      // restarted daemon registers us under a fresh worker_id. Our old
      // leases died with the old daemon — in-flight posts get rejected and
      // the journal replay re-admits those jobs.
      if (stop_.load(std::memory_order_acquire)) break;
      std::string reason;
      if (options_.client.reconnect.attempts == 0 ||
          !client_->tryReconnect(&reason)) {
        BRIDGE_LOG(kWarn) << "worker: daemon unreachable, exiting: "
                          << (reason.empty() ? e.what() : reason.c_str());
        break;
      }
      BRIDGE_LOG(kInfo) << "worker: re-attached to " << client_->socketPath()
                        << " as id " << client_->hello().worker_id
                        << " after connection loss (" << e.what() << ")";
      std::lock_guard<std::mutex> lock(report_mu_);
      ++report.reconnects;
      continue;
    } catch (const std::exception& e) {
      BRIDGE_LOG(kWarn) << "worker: daemon refused us, exiting: " << e.what();
      break;
    }
    if (!grants.empty()) {
      std::lock_guard<std::mutex> lock(report_mu_);
      report.claimed += grants.size();
    }
    for (LeaseGrant& grant : grants) {
      active.fetch_add(1, std::memory_order_acq_rel);
      pool.submit([this, grant = std::move(grant), &active, &report] {
        execOne(grant, &report);
        active.fetch_sub(1, std::memory_order_acq_rel);
      });
    }
    const bool idle =
        grants.empty() && active.load(std::memory_order_acquire) == 0;
    if (draining && idle) break;  // daemon is leaving; so are we
    if (options_.drain && idle && slots > 0) break;  // queue ran dry
    if (grants.empty()) std::this_thread::sleep_for(kClaimPollInterval);
  }

  // Clean shutdown contract: claimed jobs are finished and posted, never
  // abandoned — the pool drains before we return (and before the client
  // socket closes).
  pool.shutdown();
  std::lock_guard<std::mutex> lock(report_mu_);
  return report;
}

void SweepWorker::execOne(const LeaseGrant& grant, WorkerReport* report) {
  SweepResult result;
  std::string exec_error;
  bool ok = true;
  try {
    result = engine_->runOne(grant.job);
  } catch (const std::exception& e) {
    // Strict-policy engines rethrow job failures; post them as `fail` so
    // the daemon can retry the job on another process.
    ok = false;
    exec_error = e.what();
  }

  try {
    std::string reason;
    const bool accepted =
        ok ? client_->completeLease(grant.lease, result, &reason)
           : client_->failLease(grant.lease, exec_error, &reason);
    std::lock_guard<std::mutex> lock(report_mu_);
    if (!accepted) {
      // Lease expired while we ground away (or the job was re-admitted
      // and resolved elsewhere): the daemon's first resolution wins, this
      // result is dropped on the floor by design.
      ++report->rejected;
      BRIDGE_LOG(kInfo) << "worker: post for lease " << grant.lease
                        << " rejected (" << reason << ")";
    } else if (ok) {
      ++report->completed;
    } else {
      ++report->failed;
    }
  } catch (const std::exception& e) {
    BRIDGE_LOG(kWarn) << "worker: lost daemon mid-post: " << e.what();
    std::lock_guard<std::mutex> lock(report_mu_);
    ++report->rejected;
    // With reconnect enabled the claim loop owns recovery: it notices the
    // dead connection on its next round trip and re-hellos. Only a
    // reconnect-disabled worker treats a lost post as fatal.
    if (options_.client.reconnect.attempts == 0) {
      stop_.store(true, std::memory_order_release);
    }
  }
}

}  // namespace bridge::serve
