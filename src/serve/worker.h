// SweepWorker: the remote execution half of the elastic pool (DESIGN §5h).
//
// A worker is a process that connects to a sweep daemon, upgrades the
// connection to bridge-serve-2 with role "worker", and then pulls admitted
// jobs in a claim loop: each grant carries a lease id and a deadline, the
// job runs through the worker's own SweepEngine (same simulator, same
// failure policy, same sharded flock'd ResultCache — results are
// bit-identical to daemon-local execution), and the result is posted back
// with `complete` against the lease. A job whose engine throws is posted
// with `fail`, which the daemon treats as an orphaning (retry budget, not
// an immediate job failure — the fault may be this host's).
//
// The handshake is the claim gate: the worker presents its engine's
// policySignature() and the daemon refuses a mismatch outright, so a
// worker with different retry/timeout/chaos settings can never contribute
// incomparable results. The cache directory is taken from the daemon's
// hello, not local configuration — every process in a deployment writes
// through one cache tree.
//
// Liveness is implicit: every claim round-trip (including the empty
// heartbeat sent while all execution slots are busy) renews the worker's
// leases. A worker that is SIGKILLed or partitioned simply stops claiming;
// its leases expire (or its connection drop is noticed sooner) and the
// daemon re-admits the orphaned jobs. A slow worker whose result arrives
// after its lease expired gets a rejected lease_ack and drops the result —
// the daemon's first resolution won.
//
// Restart survival (DESIGN §5k): a worker outlives its daemon. When the
// claim loop hits a connection-level failure it re-dials through
// ServeClient::tryReconnect — seeded backoff, fresh handshake, and a
// replayed role-"worker" upgrade, so the restarted daemon mints a new
// worker_id and rebuilds its registry from the re-hellos. Leases claimed
// from the dead daemon are finished and posted anyway; the new daemon has
// never heard of them and rejects the posts (counted `rejected`), while
// the journal replay re-admits those jobs for clean re-execution — first
// resolution still wins, nothing is double-counted. Only when the backoff
// schedule is exhausted (or reconnect is disabled) does the worker exit
// with the old "daemon unreachable" behaviour.
//
// Exit conditions for run(): requestStop() (signal-handler safe), the
// daemon announcing it is draining (finish active jobs, then leave), the
// connection dying with the reconnect schedule exhausted, or — with
// WorkerOptions::drain — the queue running dry while this worker is idle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/client.h"
#include "serve/protocol.h"
#include "sweep/sweep.h"

namespace bridge::serve {

struct WorkerOptions {
  std::string socket_path;  // empty = SweepWorker::defaultSocketPath()
  std::string name;         // shown in the daemon's worker registry/logs
  /// Engine options: `workers` is this process's execution slots; the
  /// failure policy and fault plan must match the daemon's (signature
  /// checked at the hello). serve_socket and cache_dir are overridden —
  /// the worker always executes locally, through the daemon's cache tree.
  SweepOptions sweep;
  /// Exit once the daemon's queue is dry instead of idling for more work.
  bool drain = false;
  /// Connection deadlines + reconnect schedule (defaults honour
  /// $BRIDGE_SERVE_TIMEOUT_MS / $BRIDGE_SERVE_RECONNECT). attempts=0
  /// restores the pre-§5k behaviour: exit on the first connection loss.
  ClientOptions client;
};

/// What one worker session did, for logs and tests.
struct WorkerReport {
  std::uint64_t claimed = 0;    // lease grants received
  std::uint64_t completed = 0;  // results posted and accepted
  std::uint64_t failed = 0;     // `fail` posts accepted (engine threw)
  std::uint64_t rejected = 0;   // posts the daemon refused (stale lease)
  std::uint64_t reconnects = 0;  // re-hellos after losing the daemon

  std::string summary() const;  // one line
};

class SweepWorker {
 public:
  /// Connect + upgrade + register. Throws if the daemon is unreachable,
  /// speaks only bridge-serve-1, or refuses the policy signature.
  explicit SweepWorker(const WorkerOptions& options);
  ~SweepWorker();

  SweepWorker(const SweepWorker&) = delete;
  SweepWorker& operator=(const SweepWorker&) = delete;

  /// The claim loop; blocks until an exit condition (see file comment).
  /// Jobs in flight at stop time are finished and posted, never abandoned.
  WorkerReport run();

  /// Async-signal-safe stop request; run() notices within one poll slice.
  void requestStop() { stop_.store(true, std::memory_order_release); }

  /// The negotiated hello (lease_ms, worker_id, shared cache_dir).
  const ServeHello& hello() const { return client_->hello(); }

  SweepEngine& engine() { return *engine_; }

  /// $BRIDGE_WORKER_SOCKET if set, else the daemon's default socket path.
  static std::string defaultSocketPath();

 private:
  void execOne(const LeaseGrant& grant, WorkerReport* report);

  WorkerOptions options_;
  std::unique_ptr<ServeClient> client_;
  std::unique_ptr<SweepEngine> engine_;
  std::atomic<bool> stop_{false};
  std::mutex report_mu_;
};

}  // namespace bridge::serve
