// LAMMPS molecular-dynamics workload models: the Lennard-Jones and
// Polymer-Chain benchmarks the paper runs (32,000 atoms, 100 timesteps;
// scaled here per DESIGN.md §6).
//
// Per timestep each rank:
//  * LJ: walks its atoms' neighbor lists — streamed neighbor indices
//    feeding position gathers, a cutoff branch, and an LJ force pipeline
//    (r^2, 1/r^2 divide, r^-6, force fmas) — then integrates;
//  * Chain: bonded-force loop (2 bonds/atom, lighter math) plus a soft
//    pair loop with fewer neighbors;
//  * exchanges halo positions with its spatial-decomposition neighbours
//    and (every few steps) rebuilds neighbor bins (random scatter).
#pragma once

#include <cstdint>

#include "trace/trace_source.h"

namespace bridge {

enum class LammpsBenchmark { kLennardJones, kChain };

struct LammpsConfig {
  std::uint64_t atoms = 8000;   // scaled from the paper's 32,000
  unsigned timesteps = 4;       // scaled from the paper's 100
  unsigned neighbors = 12;      // average half-list length (LJ)
  double scale = 1.0;           // multiplies atoms
  // Software-stack factor: lanes the force pipeline retires per FP
  // instruction. The paper's silicon runs were built with GCC 13.2 for
  // cores with vector units, while FireSim runs used GCC 9.4 scalar code
  // (paper Table 3 and §3.2.5) — the silicon executes materially fewer FP
  // instructions for the same physics. Gather/neighbor traffic stays
  // scalar (indexed loads do not vectorize here).
  unsigned simd_lanes = 1;
  std::uint64_t seed = 1;
};

TraceSourcePtr makeLammpsRank(LammpsBenchmark bench, int rank, int nranks,
                              const LammpsConfig& cfg = {});

}  // namespace bridge
