#include "workloads/npb.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "trace/kernel.h"

namespace bridge {
namespace {

constexpr std::uint64_t kKiB = 1024;

/// Per-rank private data regions, 64 MiB apart.
Addr rankData(int rank, unsigned which = 0) {
  return 0x2000'0000 + static_cast<Addr>(rank) * 0x0400'0000 +
         static_cast<Addr>(which) * 0x0080'0000;
}

std::uint64_t scaled(double scale, std::uint64_t base) {
  const double v = scale * static_cast<double>(base);
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

// ---------------------------------------------------------------- CG ----

// Scaled CG: n = 32768 rows, 8 nonzeros per row, 4 solver iterations.
// Each iteration: sparse matvec (streamed column indices feeding dependent
// gathers), a dot-product allreduce, and a streamed axpy. The gather
// vector is the rank's full local copy of x (NPB CG exchanges segments so
// every rank gathers over the complete vector), so its 256 KiB footprint
// is *independent of the rank count* — which both preserves strong-scaling
// behaviour and keeps CG in the L1-sensitive regime the paper's §5.2.2
// L1-doubling ablation probes.
TraceSourcePtr cgRank(int rank, int nranks, const NpbConfig& cfg) {
  // Class A proportions: n = 14000 (gather vector ~112 KiB), ~11 nonzeros
  // per row — the working set whose L1 hit rate doubles when the L1 goes
  // from 32 KiB to 64 KiB, the paper's §5.2.2 ablation.
  const std::uint64_t n = scaled(cfg.scale, 14336);
  const std::uint64_t rows_local = n / nranks;
  const unsigned nnz = 11;
  const unsigned cg_iters = 5;

  auto seq = std::make_unique<SequenceTrace>("npb.cg.rank" +
                                             std::to_string(rank));
  const Addr idx_base = rankData(rank, 0);   // column index arrays
  const Addr x_base = rankData(rank, 1);     // gather vector (shared size)
  const Addr y_base = rankData(rank, 2);     // result / axpy vectors

  for (unsigned it = 0; it < cg_iters; ++it) {
    // Sparse matvec over the local rows.
    KernelBuilder mv("npb.cg.matvec");
    const int idx = mv.addrGen(std::make_unique<StrideGen>(
        idx_base, 4, rows_local * nnz * 4));
    const int gather = mv.addrGen(std::make_unique<RandomGen>(
        x_base, n * 8, 8, cfg.seed + it));
    const int out = mv.addrGen(std::make_unique<StrideGen>(
        y_base, 8, rows_local * 8));
    Segment& row = mv.segment(rows_local);
    // sum = 0: breaks the accumulator dependence *between* rows, so row
    // chains overlap in the out-of-order window as in the real code.
    row.add(fmul(fpReg(2), fpReg(10), fpReg(11)));
    for (unsigned k = 0; k < nnz; ++k) {
      row.add(load(intReg(7), idx, kNoReg, 4));             // column index
      row.add(load(fpReg(1), gather, /*addr_src=*/intReg(7)));  // x[col]
      row.add(fma(fpReg(2), fpReg(2), fpReg(1), fpReg(3)));
    }
    row.add(store(out, fpReg(2)));
    seq->append(mv.build());

    // rho = dot(r, r): streamed reduction, then allreduce of one double.
    KernelBuilder dot("npb.cg.dot");
    const int rvec = dot.addrGen(std::make_unique<StrideGen>(
        y_base, 8, rows_local * 8));
    dot.segment(rows_local / 4)
        .add(load(fpReg(4), rvec))
        .add(load(fpReg(5), rvec))
        .add(fma(fpReg(6), fpReg(6), fpReg(4), fpReg(4)))
        .add(fma(fpReg(7), fpReg(7), fpReg(5), fpReg(5)));
    seq->append(dot.build());
    if (nranks > 1) seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 8));

    // axpy: p = r + beta * p (streamed).
    KernelBuilder axpy("npb.cg.axpy");
    const int pin = axpy.addrGen(std::make_unique<StrideGen>(
        y_base, 8, rows_local * 8));
    const int pout = axpy.addrGen(std::make_unique<StrideGen>(
        y_base + rows_local * 8, 8, rows_local * 8));
    axpy.segment(rows_local / 2)
        .add(load(fpReg(1), pin))
        .add(fma(fpReg(2), fpReg(1), fpReg(8), fpReg(9)))
        .add(store(pout, fpReg(2)));
    seq->append(axpy.build());
    // In NPB CG, ranks also exchange boundary segments of p each
    // iteration; model as an allreduce of the local chunk.
    if (nranks > 1) {
      seq->appendOp(
          makeMpiOp(MpiKind::kAllreduce, 0, (n / nranks) * 8));
    }
  }
  return seq;
}

// ---------------------------------------------------------------- EP ----

// Scaled EP: each rank generates samples with an LCG (integer chain) and
// pushes them through a transcendental pipeline (log/sqrt-like polynomial);
// a rare branch models the acceptance test. One small allreduce at the end.
TraceSourcePtr epRank(int rank, int nranks, const NpbConfig& cfg) {
  const std::uint64_t samples = scaled(cfg.scale, 160000) / nranks;

  auto seq = std::make_unique<SequenceTrace>("npb.ep.rank" +
                                             std::to_string(rank));
  KernelBuilder b("npb.ep.body");
  const int accept = b.branchGen(std::make_unique<RandomBranchGen>(
      0.215, cfg.seed + static_cast<std::uint64_t>(rank)));  // pi/4 - ish
  Segment& seg = b.segment(samples);
  // LCG: x = a*x + c (serial integer chain, 2 per sample for the pair).
  seg.add(mul(intReg(5), intReg(5), intReg(6)));
  seg.add(alu(intReg(5), intReg(5)));
  seg.add(mul(intReg(7), intReg(7), intReg(6)));
  seg.add(alu(intReg(7), intReg(7)));
  // Convert to doubles in (-1, 1).
  seg.add(fcvt(fpReg(1), intReg(5)));
  seg.add(fcvt(fpReg(2), intReg(7)));
  // t = x1^2 + x2^2; acceptance test.
  seg.add(fmul(fpReg(3), fpReg(1), fpReg(1)));
  seg.add(fma(fpReg(3), fpReg(3), fpReg(2), fpReg(2)));
  seg.add(branch(accept, fpReg(3)));
  // log(t)/t and sqrt: polynomial + a genuine fdiv/fsqrt pair.
  for (unsigned i = 0; i < 6; ++i) {
    seg.add(fma(fpReg(4), fpReg(4), fpReg(3), fpReg(10)));
  }
  seg.add(fdiv(fpReg(5), fpReg(4), fpReg(3)));
  {
    UopTemplate t;
    t.cls = OpClass::kFpSqrt;
    t.dst = fpReg(6);
    t.src0 = fpReg(5);
    seg.add(t);
  }
  seg.add(fmul(fpReg(7), fpReg(1), fpReg(6)));
  seg.add(fmul(fpReg(8), fpReg(2), fpReg(6)));
  seq->append(b.build());
  if (nranks > 1) {
    seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 10 * 8));
  }
  return seq;
}

// ---------------------------------------------------------------- IS ----

// Scaled IS: 262144 keys total; histogram into a 256 KiB bucket array —
// NPB IS's Gaussian key distribution keeps bucket increments cache-local,
// so the kernel is dominated by the key *streams* (memory bandwidth), with
// an all-to-all key exchange and a ranking scan.
TraceSourcePtr isRank(int rank, int nranks, const NpbConfig& cfg) {
  const std::uint64_t keys_total = scaled(cfg.scale, 262144);
  const std::uint64_t keys_local = keys_total / nranks;
  const std::uint64_t bucket_bytes = 256 * kKiB;
  const unsigned is_iters = 3;  // NPB IS repeats the ranking

  auto seq = std::make_unique<SequenceTrace>("npb.is.rank" +
                                             std::to_string(rank));
  const Addr keys_base = rankData(rank, 0);
  const Addr bucket_base = rankData(rank, 1);
  const Addr recv_base = rankData(rank, 2);

  for (unsigned it = 0; it < is_iters; ++it) {
    // Phase 1: histogram — stream keys, random bucket increments.
    KernelBuilder hist("npb.is.hist");
    const int key = hist.addrGen(std::make_unique<StrideGen>(
        keys_base, 4, keys_local * 4));
    const int bucket = hist.addrGen(std::make_unique<RandomGen>(
        bucket_base, bucket_bytes, 4, cfg.seed + it));
    hist.segment(keys_local)
        .add(load(intReg(5), key, kNoReg, 4))
        .add(alu(intReg(6), intReg(5)))                     // bucket index
        .add(load(intReg(7), bucket, /*addr_src=*/intReg(6), 4))
        .add(alu(intReg(7), intReg(7)))
        .add(store(bucket, intReg(7), /*addr_src=*/intReg(6), 4));
    seq->append(hist.build());

    // Bucket-size allreduce then the bulk key exchange.
    if (nranks > 1) {
      seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 4096));
      seq->appendOp(makeMpiOp(MpiKind::kAlltoall, 0,
                              keys_local * 4 / nranks));
    }

    // Phase 2: ranking scan over received keys.
    KernelBuilder scan("npb.is.rank_scan");
    const int rk = scan.addrGen(std::make_unique<StrideGen>(
        recv_base, 4, keys_local * 4));
    const int out = scan.addrGen(std::make_unique<StrideGen>(
        recv_base + keys_local * 4, 4, keys_local * 4));
    scan.segment(keys_local)
        .add(load(intReg(5), rk, kNoReg, 4))
        .add(alu(intReg(6), intReg(5)))
        .add(store(out, intReg(6), kNoReg, 4));
    seq->append(scan.build());
  }
  return seq;
}

// ---------------------------------------------------------------- MG ----

// Scaled MG: 48^3 top grid, levels 48/24/12/6, 3 V-cycles. Per level and
// sweep a 7-point stencil: two same-line neighbors (hits), two line-strided
// neighbors, two plane-strided neighbors, fma chain, store. Grid cells are
// 32-byte records (u plus the residual/rhs fields the real MG carries), so
// the top level's working set (~3.5 MiB read + written) stays DRAM-resident
// on the LLC-less platforms at every rank count, as Class A (256^3) does.
// Ranks split the grid along z and exchange face halos per level per sweep.
TraceSourcePtr mgRank(int rank, int nranks, const NpbConfig& cfg) {
  const unsigned top = cfg.mg_top;
  const unsigned cell = 32;  // bytes per grid cell record
  const unsigned cycles = static_cast<unsigned>(scaled(cfg.scale, 3));

  auto seq = std::make_unique<SequenceTrace>("npb.mg.rank" +
                                             std::to_string(rank));
  const Addr grid_base = rankData(rank, 0);

  for (unsigned vc = 0; vc < cycles; ++vc) {
    for (unsigned level_dim = top; level_dim >= 6; level_dim /= 2) {
      const std::uint64_t points =
          std::uint64_t{level_dim} * level_dim * level_dim / nranks;
      const std::uint64_t plane_bytes =
          std::uint64_t{level_dim} * level_dim * cell;
      const std::uint64_t grid_bytes = points * cell;

      for (unsigned sweep = 0; sweep < 2; ++sweep) {
        KernelBuilder st("npb.mg.stencil");
        const int center = st.addrGen(std::make_unique<StrideGen>(
            grid_base, cell, grid_bytes));
        const int ystride = st.addrGen(std::make_unique<StrideGen>(
            grid_base + level_dim * cell, cell, grid_bytes));
        const int zstride = st.addrGen(std::make_unique<StrideGen>(
            grid_base + plane_bytes, cell, grid_bytes));
        const int out = st.addrGen(std::make_unique<StrideGen>(
            grid_base + grid_bytes, cell, grid_bytes));
        st.segment(points)
            .add(load(fpReg(1), center))    // includes x neighbors (hits)
            .add(load(fpReg(2), ystride))   // y-neighbor line
            .add(load(fpReg(3), zstride))   // z-neighbor plane
            .add(fma(fpReg(4), fpReg(1), fpReg(10), fpReg(2)))
            .add(fma(fpReg(4), fpReg(4), fpReg(11), fpReg(3)))
            .add(store(out, fpReg(4)));
        seq->append(st.build());

        // Halo exchange with z-neighbors (non-periodic split).
        if (nranks > 1) {
          const int up = rank + 1;
          const int down = rank - 1;
          // Even ranks send first; odd ranks receive first (no deadlock).
          if (rank % 2 == 0) {
            if (up < nranks) {
              seq->appendOp(makeMpiOp(MpiKind::kSend, up, plane_bytes, 7));
              seq->appendOp(makeMpiOp(MpiKind::kRecv, up, plane_bytes, 7));
            }
            if (down >= 0) {
              seq->appendOp(makeMpiOp(MpiKind::kSend, down, plane_bytes, 7));
              seq->appendOp(makeMpiOp(MpiKind::kRecv, down, plane_bytes, 7));
            }
          } else {
            if (down >= 0) {
              seq->appendOp(makeMpiOp(MpiKind::kRecv, down, plane_bytes, 7));
              seq->appendOp(makeMpiOp(MpiKind::kSend, down, plane_bytes, 7));
            }
            if (up < nranks) {
              seq->appendOp(makeMpiOp(MpiKind::kRecv, up, plane_bytes, 7));
              seq->appendOp(makeMpiOp(MpiKind::kSend, up, plane_bytes, 7));
            }
          }
        }
      }
    }
    // Residual norm: one allreduce per V-cycle.
    if (nranks > 1) seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 8));
  }
  return seq;
}

}  // namespace

std::string_view npbName(NpbBenchmark b) {
  switch (b) {
    case NpbBenchmark::kCG: return "CG";
    case NpbBenchmark::kEP: return "EP";
    case NpbBenchmark::kIS: return "IS";
    case NpbBenchmark::kMG: return "MG";
  }
  return "unknown";
}

std::vector<NpbBenchmark> allNpbBenchmarks() {
  return {NpbBenchmark::kCG, NpbBenchmark::kEP, NpbBenchmark::kIS,
          NpbBenchmark::kMG};
}

NpbConfig npbTuningConfig() {
  NpbConfig cfg;
  cfg.scale = 0.05;
  cfg.mg_top = 24;
  return cfg;
}

TraceSourcePtr makeNpbRank(NpbBenchmark b, int rank, int nranks,
                           const NpbConfig& cfg) {
  if (rank < 0 || nranks < 1 || rank >= nranks) {
    throw std::invalid_argument("bad rank/nranks");
  }
  if (cfg.mg_top < 6) {
    throw std::invalid_argument("NpbConfig::mg_top must be >= 6");
  }
  switch (b) {
    case NpbBenchmark::kCG: return cgRank(rank, nranks, cfg);
    case NpbBenchmark::kEP: return epRank(rank, nranks, cfg);
    case NpbBenchmark::kIS: return isRank(rank, nranks, cfg);
    case NpbBenchmark::kMG: return mgRank(rank, nranks, cfg);
  }
  throw std::invalid_argument("unknown NPB benchmark");
}

}  // namespace bridge
