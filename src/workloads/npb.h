// NAS Parallel Benchmarks (paper Table 2): CG, EP, IS, MG — Class-A-scaled
// analogs with the original computation/communication patterns:
//   CG — sparse matrix-vector iterations: streamed index loads feeding
//        irregular gathers, dot-product allreduces (memory latency);
//   EP — pseudo-random pair generation with a transcendental pipeline and
//        one final small allreduce (compute bound);
//   IS — bucket sort: streamed keys, random histogram updates, a bulk
//        all-to-all key exchange, and a ranking scan (memory lat + BW);
//   MG — multigrid V-cycles: 7-point stencil sweeps over a grid hierarchy
//        with per-level halo exchanges (memory BW).
//
// Problem sizes are scaled from Class A so a full sweep simulates in
// seconds (see DESIGN.md §6); working sets keep the paper's regime (CG
// gather vector ~128 KiB, IS buckets ~1 MiB, MG top grid ~256 KiB/rank).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "trace/trace_source.h"

namespace bridge {

enum class NpbBenchmark { kCG, kEP, kIS, kMG };

std::string_view npbName(NpbBenchmark b);
std::vector<NpbBenchmark> allNpbBenchmarks();

struct NpbConfig {
  double scale = 1.0;      // multiplies iteration/sample counts
  std::uint64_t seed = 1;
  /// MG top-grid dimension. The default matches the Class-A-scaled analog
  /// (48^3 top grid); smaller values shrink the whole grid hierarchy
  /// cubically, which is what makes per-candidate tuning probes cheap —
  /// MG's grid (unlike the other benchmarks' loop counts) does not shrink
  /// with `scale`. Must be >= 6 (the coarsest level).
  unsigned mg_top = 48;
};

/// The small-class configuration the NPB tuning objective probes with:
/// reduced iteration scale plus a 24^3 MG top grid (~8x fewer stencil
/// points than the default 48^3), so one candidate evaluation simulates in
/// about a second instead of tens of seconds.
NpbConfig npbTuningConfig();

/// Build rank `rank` of `nranks`'s trace for benchmark `b`. Throws
/// std::invalid_argument on a bad rank/nranks pair or cfg.mg_top < 6.
TraceSourcePtr makeNpbRank(NpbBenchmark b, int rank, int nranks,
                           const NpbConfig& cfg = {});

}  // namespace bridge
