#include "workloads/lammps.h"

#include <cmath>
#include <memory>
#include <string>

#include "trace/kernel.h"

namespace bridge {
namespace {

Addr rankData(int rank, unsigned which) {
  return 0xA000'0000 + static_cast<Addr>(rank) * 0x0400'0000 +
         static_cast<Addr>(which) * 0x0080'0000;
}

/// Halo exchange of boundary-atom positions with the two spatial
/// neighbours (even/odd ordered ring).
void appendHalo(SequenceTrace* seq, int rank, int nranks,
                std::uint64_t bytes, int tag) {
  if (nranks <= 1) return;
  const int up = (rank + 1) % nranks;
  const int down = (rank + nranks - 1) % nranks;
  if (rank % 2 == 0) {
    seq->appendOp(makeMpiOp(MpiKind::kSend, up, bytes, tag));
    seq->appendOp(makeMpiOp(MpiKind::kRecv, down, bytes, tag));
    seq->appendOp(makeMpiOp(MpiKind::kSend, down, bytes, tag + 1));
    seq->appendOp(makeMpiOp(MpiKind::kRecv, up, bytes, tag + 1));
  } else {
    seq->appendOp(makeMpiOp(MpiKind::kRecv, down, bytes, tag));
    seq->appendOp(makeMpiOp(MpiKind::kSend, up, bytes, tag));
    seq->appendOp(makeMpiOp(MpiKind::kRecv, up, bytes, tag + 1));
    seq->appendOp(makeMpiOp(MpiKind::kSend, down, bytes, tag + 1));
  }
}

/// Pair-force loop: per atom, `neighbors` iterations of index load ->
/// position gather -> cutoff branch -> force pipeline (with divide for LJ).
TraceSourcePtr pairForceKernel(const char* name, Addr nlist, Addr pos,
                               Addr force, std::uint64_t atoms,
                               unsigned neighbors, bool lj_math,
                               std::uint64_t pos_bytes, unsigned simd_lanes,
                               std::uint64_t seed) {
  KernelBuilder b(name);
  const int nl = b.addrGen(std::make_unique<StrideGen>(
      nlist, 4, atoms * neighbors * 4));
  const int gather =
      b.addrGen(std::make_unique<RandomGen>(pos, pos_bytes, 8, seed));
  const int fout =
      b.addrGen(std::make_unique<StrideGen>(force, 8, atoms * 24));
  const int cutoff =
      b.branchGen(std::make_unique<RandomBranchGen>(0.35, seed + 1));

  Segment& atom = b.segment(atoms);
  const unsigned lanes = simd_lanes == 0 ? 1 : simd_lanes;
  for (unsigned n = 0; n < neighbors; ++n) {
    atom.add(load(intReg(7), nl, kNoReg, 4));                // neighbor id
    atom.add(load(fpReg(1), gather, /*addr_src=*/intReg(7)));  // x,y
    atom.add(load(fpReg(2), gather, /*addr_src=*/intReg(7)));  // z + pad
    // The FP pipeline retires once per `lanes` neighbors (vectorized
    // silicon builds); the gathers above stay scalar either way.
    if (n % lanes != 0) continue;
    // del = xi - xj; rsq = del . del
    atom.add(fadd(fpReg(3), fpReg(1), fpReg(11)));
    atom.add(fmul(fpReg(4), fpReg(3), fpReg(3)));
    atom.add(fma(fpReg(4), fpReg(2), fpReg(2), fpReg(4)));
    atom.add(branch(cutoff, fpReg(4)));  // taken = outside cutoff (skip)
    if (lj_math) {
      // r2inv = 1/rsq; r6inv = r2inv^3; f = r6inv*(c1*r6inv - c2)*r2inv
      atom.add(fdiv(fpReg(5), fpReg(12), fpReg(4)));
      atom.add(fmul(fpReg(6), fpReg(5), fpReg(5)));
      atom.add(fmul(fpReg(6), fpReg(6), fpReg(5)));
      atom.add(fma(fpReg(7), fpReg(6), fpReg(13), fpReg(14)));
      atom.add(fmul(fpReg(8), fpReg(7), fpReg(5)));
      atom.add(fma(fpReg(9), fpReg(8), fpReg(3), fpReg(9)));
    } else {
      // Soft/bonded pair: cheaper polynomial, no divide.
      atom.add(fma(fpReg(7), fpReg(4), fpReg(13), fpReg(14)));
      atom.add(fma(fpReg(9), fpReg(7), fpReg(3), fpReg(9)));
    }
  }
  atom.add(store(fout, fpReg(9)));
  return b.build();
}

/// Velocity-Verlet integration: streamed update of positions/velocities.
TraceSourcePtr integrateKernel(Addr pos, Addr vel, std::uint64_t atoms) {
  KernelBuilder b("lammps.integrate");
  const int p = b.addrGen(std::make_unique<StrideGen>(pos, 8, atoms * 24));
  const int v = b.addrGen(std::make_unique<StrideGen>(vel, 8, atoms * 24));
  b.segment(atoms)
      .add(load(fpReg(1), p))
      .add(load(fpReg(2), v))
      .add(fma(fpReg(2), fpReg(3), fpReg(10), fpReg(2)))  // v += f*dt/m
      .add(fma(fpReg(1), fpReg(2), fpReg(11), fpReg(1)))  // x += v*dt
      .add(store(v, fpReg(2)))
      .add(store(p, fpReg(1)));
  return b.build();
}

/// Neighbor-list rebuild: bin atoms (random scatter into the cell grid).
TraceSourcePtr rebuildKernel(Addr pos, Addr cells, std::uint64_t atoms,
                             std::uint64_t seed) {
  KernelBuilder b("lammps.rebuild");
  const int p = b.addrGen(std::make_unique<StrideGen>(pos, 8, atoms * 24));
  const int cell = b.addrGen(std::make_unique<RandomGen>(
      cells, atoms * 8, 8, seed));
  b.segment(atoms)
      .add(load(fpReg(1), p))
      .add(fcvt(intReg(7), fpReg(1)))     // coordinate -> bin index
      .add(alu(intReg(8), intReg(7)))
      .add(load(intReg(9), cell, /*addr_src=*/intReg(8)))
      .add(alu(intReg(9), intReg(9)))
      .add(store(cell, intReg(9), /*addr_src=*/intReg(8)));
  return b.build();
}

}  // namespace

TraceSourcePtr makeLammpsRank(LammpsBenchmark bench, int rank, int nranks,
                              const LammpsConfig& cfg) {
  const std::uint64_t atoms_total = static_cast<std::uint64_t>(
      static_cast<double>(cfg.atoms) * cfg.scale);
  const std::uint64_t atoms = std::max<std::uint64_t>(
      64, atoms_total / static_cast<std::uint64_t>(nranks));
  const std::uint64_t pos_bytes = atoms * 24;
  // Surface-to-volume: boundary atoms scale as N^(2/3).
  const std::uint64_t halo_atoms = static_cast<std::uint64_t>(
      std::cbrt(static_cast<double>(atoms)) *
      std::cbrt(static_cast<double>(atoms)));
  const std::uint64_t halo_bytes = halo_atoms * 24;

  const Addr nlist = rankData(rank, 0);
  const Addr pos = rankData(rank, 1);
  const Addr force = rankData(rank, 2);
  const Addr vel = rankData(rank, 3);
  const Addr cells = rankData(rank, 4);

  const bool lj = bench == LammpsBenchmark::kLennardJones;
  const char* fname = lj ? "lammps.lj.force" : "lammps.chain.force";
  const unsigned pair_neighbors = lj ? cfg.neighbors : cfg.neighbors / 3;

  auto seq = std::make_unique<SequenceTrace>(
      std::string(lj ? "lammps.lj.rank" : "lammps.chain.rank") +
      std::to_string(rank));

  for (unsigned step = 0; step < cfg.timesteps; ++step) {
    appendHalo(seq.get(), rank, nranks, halo_bytes, 11);
    if (!lj) {
      // Chain: bonded-force loop first (2 bonds per atom, FMA-only math).
      seq->append(pairForceKernel("lammps.chain.bond", nlist, pos, force,
                                  atoms, /*neighbors=*/2, /*lj_math=*/false,
                                  pos_bytes, cfg.simd_lanes,
                                  cfg.seed + step));
    }
    seq->append(pairForceKernel(fname, nlist, pos, force, atoms,
                                pair_neighbors, lj, pos_bytes,
                                cfg.simd_lanes, cfg.seed + 100 + step));
    // Reverse communication of ghost forces.
    appendHalo(seq.get(), rank, nranks, halo_bytes, 21);
    seq->append(integrateKernel(pos, vel, atoms));
    if (step + 1 == cfg.timesteps / 2) {
      seq->append(rebuildKernel(pos, cells, atoms, cfg.seed + 7));
    }
    // Thermo output every few steps: a tiny allreduce.
    if (nranks > 1 && step % 2 == 1) {
      seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 48));
    }
  }
  return seq;
}

}  // namespace bridge
