// UME (Unstructured Mesh Explorations) proxy-app model.
//
// UME's defining property (paper §3.2.3): connectivity hierarchies cause
// multi-level indirection, so loops have very high integer-op counts, very
// high load/store ratios and low floating-point intensity. The paper sums
// three kernels — the original (zone-centered) kernel, the inverted
// (point-centered) kernel, and the face-area kernel — on a 32^3-zone mesh.
//
// Each kernel is modeled as: stream the connectivity map (sequential index
// loads), chase the indirection (dependent gathers into entity coordinate
// arrays larger than L2), a small amount of FP, and a store per entity.
#pragma once

#include <cstdint>

#include "trace/trace_source.h"

namespace bridge {

struct UmeConfig {
  unsigned zones_per_dim = 32;  // paper: 32^3 zones
  double scale = 1.0;           // multiplies entity counts
  std::uint64_t seed = 1;
};

/// Rank program: original + inverted + face-area kernels with ghost
/// exchanges between neighbouring ranks, matching the paper's summed
/// total-runtime metric.
TraceSourcePtr makeUmeRank(int rank, int nranks, const UmeConfig& cfg = {});

}  // namespace bridge
