// Internal factories for MicroBench kernels that need bespoke generators
// (irregular recursion trees, sorting). Used by microbench_catalog.cpp.
#pragma once

#include <cstdint>

#include "trace/trace_source.h"

namespace bridge::detail {

/// CRf: Fibonacci recursion tree — two call sites interleaved in tree
/// order, which defeats a shallow RAS once the depth exceeds it.
TraceSourcePtr makeFibTrace(unsigned n, unsigned rounds, std::uint64_t seed);

/// CRm: recursive merge sort over `elements` 8-byte keys (data-dependent
/// branches + streaming merges). Implemented but excluded from sweeps.
TraceSourcePtr makeMergeSortTrace(unsigned elements, std::uint64_t seed);

}  // namespace bridge::detail
