#include "workloads/microbench.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/rng.h"
#include "workloads/microbench_detail.h"

namespace bridge {

std::string_view categoryName(MicrobenchCategory c) {
  switch (c) {
    case MicrobenchCategory::kControlFlow: return "Control Flow";
    case MicrobenchCategory::kExecution: return "Execution";
    case MicrobenchCategory::kData: return "Data";
    case MicrobenchCategory::kCache: return "Cache";
    case MicrobenchCategory::kMemory: return "Memory";
  }
  return "unknown";
}

std::vector<std::string> microbenchNames(bool include_excluded) {
  std::vector<std::string> out;
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    if (info.excluded && !include_excluded) continue;
    out.push_back(info.name);
  }
  return out;
}

const MicrobenchInfo& microbenchInfo(std::string_view name) {
  for (const MicrobenchInfo& info : microbenchCatalog()) {
    if (info.name == name) return info;
  }
  throw std::out_of_range("unknown microbenchmark: " + std::string(name));
}

namespace detail {
namespace {

// Program-counter layout for the custom generators.
constexpr Addr kFibBase = 0x50'0000;
constexpr Addr kSortBase = 0x52'0000;

/// CRf: explicit walk of the fib(n) recursion tree. Each tree node costs a
/// few integer ops; internal nodes make two calls from *distinct* sites, so
/// return addresses alternate irregularly — the pattern that stresses a
/// return-address stack beyond simple linear recursion.
class FibTrace final : public TraceSource {
 public:
  FibTrace(unsigned n, unsigned rounds, std::uint64_t seed)
      : name_("microbench.CRf"), n_(n), rounds_(rounds), rng_(seed) {}

  bool next(MicroOp* out) override {
    while (queue_empty()) {
      if (!stepTree()) return false;
    }
    *out = queue_[q_head_++];
    if (q_head_ == q_size_) q_head_ = q_size_ = 0;
    return true;
  }

  const std::string& name() const override { return name_; }

 private:
  struct Frame {
    int n = 0;
    int stage = 0;  // 0 = entry, 1 = after first child, 2 = after second
  };

  bool queue_empty() const { return q_head_ == q_size_; }

  void push(const MicroOp& op) { queue_[q_size_++] = op; }

  MicroOp aluOp(Addr pc, Reg dst, Reg src) const {
    MicroOp op;
    op.cls = OpClass::kIntAlu;
    op.dst = dst;
    op.src0 = src;
    op.pc = pc;
    return op;
  }

  void emitCall(Addr site) {
    MicroOp op;
    op.cls = OpClass::kCall;
    op.pc = site;
    op.addr = kFibBase;  // function entry
    shadow_.push_back(site + 4);
    push(op);
  }

  void emitRet() {
    MicroOp op;
    op.cls = OpClass::kRet;
    op.pc = kFibBase + 0x80;
    if (!shadow_.empty()) {
      op.addr = shadow_.back();
      shadow_.pop_back();
    } else {
      op.addr = kFibBase;
    }
    push(op);
  }

  void emitEntry(int n) {
    // Prologue + the n < 2 test (taken only at leaves).
    push(aluOp(kFibBase + 0, intReg(5), intReg(5)));
    push(aluOp(kFibBase + 4, intReg(6), intReg(5)));
    MicroOp br;
    br.cls = OpClass::kBranch;
    br.pc = kFibBase + 8;
    br.addr = kFibBase + 0x60;
    br.taken = n < 2;
    br.src0 = intReg(6);
    push(br);
  }

  // Advance the tree walk by one node event; refills the op queue.
  bool stepTree() {
    if (stack_.empty()) {
      if (round_ >= rounds_) return false;
      ++round_;
      // Top-level call into fib(n): keeps calls and returns balanced
      // (the root's final ret pops this frame's return address).
      emitCall(kFibBase + 0x30);
      stack_.push_back({static_cast<int>(n_), 0});
      return true;
    }
    Frame& f = stack_.back();
    switch (f.stage) {
      case 0:
        emitEntry(f.n);
        if (f.n < 2) {
          push(aluOp(kFibBase + 0x60, intReg(10), kNoReg));
          emitRet();
          stack_.pop_back();
        } else {
          f.stage = 1;
          emitCall(kFibBase + 0x10);  // first call site
          stack_.push_back({f.n - 1, 0});
        }
        break;
      case 1:
        push(aluOp(kFibBase + 0x18, intReg(11), intReg(10)));
        f.stage = 2;
        emitCall(kFibBase + 0x20);  // second call site
        stack_.push_back({f.n - 2, 0});
        break;
      default:
        push(aluOp(kFibBase + 0x28, intReg(10), intReg(11)));
        emitRet();
        stack_.pop_back();
        break;
    }
    return true;
  }

  std::string name_;
  unsigned n_;
  unsigned rounds_;
  unsigned round_ = 0;
  Xorshift64Star rng_;
  std::vector<Frame> stack_;
  std::vector<Addr> shadow_;
  MicroOp queue_[8];
  unsigned q_head_ = 0;
  unsigned q_size_ = 0;
};

/// CRm: bottom-up merge sort over `elements` keys; per element merged we
/// emit two stream loads, a data-dependent compare branch, and a store,
/// plus per-block call/return overhead, for log2(elements) passes.
class MergeSortTrace final : public TraceSource {
 public:
  MergeSortTrace(unsigned elements, std::uint64_t seed)
      : name_("microbench.CRm"), elements_(elements), rng_(seed) {}

  bool next(MicroOp* out) override {
    if (width_ >= elements_) return false;

    const Addr src = 0x1000'0000 + (pass_ % 2) * 0x0100'0000;
    const Addr dst = 0x1000'0000 + ((pass_ + 1) % 2) * 0x0100'0000;

    switch (phase_) {
      case 0: {  // load from the left or right run
        out->cls = OpClass::kLoad;
        out->dst = intReg(7);
        out->pc = kSortBase + 0;
        out->addr = src + (pos_ % elements_) * 8;
        out->mem_size = 8;
        phase_ = 1;
        return true;
      }
      case 1: {  // compare: direction is data-dependent (random keys)
        out->cls = OpClass::kBranch;
        out->src0 = intReg(7);
        out->pc = kSortBase + 4;
        out->addr = kSortBase + 0x20;
        out->taken = rng_.nextBool(0.5);
        phase_ = 2;
        return true;
      }
      case 2: {  // store the winner
        out->cls = OpClass::kStore;
        out->src0 = intReg(7);
        out->pc = kSortBase + 8;
        out->addr = dst + (pos_ % elements_) * 8;
        out->mem_size = 8;
        phase_ = 0;
        ++pos_;
        if (pos_ % (2 * width_ == 0 ? 1 : 2 * width_) == 0) {
          // Block boundary: recursion bookkeeping (call + ret).
          phase_ = 3;
        }
        if (pos_ >= elements_) {
          pos_ = 0;
          width_ = width_ == 0 ? 1 : width_ * 2;
          ++pass_;
        }
        return true;
      }
      case 3: {
        out->cls = OpClass::kCall;
        out->pc = kSortBase + 12;
        out->addr = kSortBase;
        shadow_.push_back(out->pc + 4);
        phase_ = 4;
        return true;
      }
      default: {
        out->cls = OpClass::kRet;
        out->pc = kSortBase + 0x40;
        out->addr = shadow_.empty() ? kSortBase : shadow_.back();
        if (!shadow_.empty()) shadow_.pop_back();
        phase_ = 0;
        return true;
      }
    }
  }

  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  unsigned elements_;
  Xorshift64Star rng_;
  unsigned width_ = 1;
  unsigned pass_ = 0;
  std::uint64_t pos_ = 0;
  int phase_ = 0;
  std::vector<Addr> shadow_;
};

}  // namespace

TraceSourcePtr makeFibTrace(unsigned n, unsigned rounds, std::uint64_t seed) {
  return std::make_unique<FibTrace>(n, rounds, seed);
}

TraceSourcePtr makeMergeSortTrace(unsigned elements, std::uint64_t seed) {
  return std::make_unique<MergeSortTrace>(elements, seed);
}

}  // namespace detail
}  // namespace bridge
