// The MicroBench suite (paper Table 1): 40 kernels targeting individual
// microarchitectural features, in five categories — Control Flow,
// Execution, Data (parallel arithmetic), Cache and Memory.
//
// Each kernel is synthesized as a micro-op stream reproducing the original
// kernel's defining pattern (dependency shape, branch behaviour, working-set
// size, access pattern). Iteration counts are scaled down from the silicon
// originals by the `scale` parameter (1.0 ~ a few hundred thousand
// micro-ops) and documented per kernel in microbench_catalog.cpp.
//
// CRm (merge sort) is implemented but flagged `excluded`, mirroring the
// paper: "39 of the 40 benchmarks were used ... since CRm resulted in a
// segfault on all simulated and real hardware."
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace_source.h"

namespace bridge {

enum class MicrobenchCategory {
  kControlFlow,
  kExecution,
  kData,
  kCache,
  kMemory,
};

std::string_view categoryName(MicrobenchCategory c);

struct MicrobenchInfo {
  std::string name;
  MicrobenchCategory category = MicrobenchCategory::kControlFlow;
  std::string description;
  bool excluded = false;  // CRm: excluded from sweeps, like the paper
};

/// The full Table 1 catalog, in the paper's order.
const std::vector<MicrobenchInfo>& microbenchCatalog();

/// Names of the 39 kernels used in evaluation (catalog minus excluded).
std::vector<std::string> microbenchNames(bool include_excluded = false);

/// Look up catalog info; throws std::out_of_range for unknown names.
const MicrobenchInfo& microbenchInfo(std::string_view name);

/// Instantiate a kernel's trace. `scale` multiplies iteration counts;
/// `seed` perturbs its stochastic streams.
TraceSourcePtr makeMicrobench(std::string_view name, double scale = 1.0,
                              std::uint64_t seed = 1);

}  // namespace bridge
