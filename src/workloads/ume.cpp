#include "workloads/ume.h"

#include <memory>
#include <string>

#include "trace/kernel.h"

namespace bridge {
namespace {

Addr rankData(int rank, unsigned which) {
  return 0x6000'0000 + static_cast<Addr>(rank) * 0x0400'0000 +
         static_cast<Addr>(which) * 0x0080'0000;
}

std::uint64_t scaled(double scale, std::uint64_t base) {
  const double v = scale * static_cast<double>(base);
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

/// Ghost exchange with mesh-partition neighbours (ring, even/odd ordered).
void appendGhostExchange(SequenceTrace* seq, int rank, int nranks,
                         std::uint64_t bytes) {
  if (nranks <= 1) return;
  const int up = (rank + 1) % nranks;
  const int down = (rank + nranks - 1) % nranks;
  if (rank % 2 == 0) {
    seq->appendOp(makeMpiOp(MpiKind::kSend, up, bytes, 3));
    seq->appendOp(makeMpiOp(MpiKind::kRecv, down, bytes, 3));
  } else {
    seq->appendOp(makeMpiOp(MpiKind::kRecv, down, bytes, 3));
    seq->appendOp(makeMpiOp(MpiKind::kSend, up, bytes, 3));
  }
}

}  // namespace

TraceSourcePtr makeUmeRank(int rank, int nranks, const UmeConfig& cfg) {
  const std::uint64_t zones_total =
      scaled(cfg.scale, std::uint64_t{cfg.zones_per_dim} *
                            cfg.zones_per_dim * cfg.zones_per_dim);
  const std::uint64_t zones = zones_total / nranks;
  const std::uint64_t points = zones;          // ~8 points/zone, shared 8x
  const std::uint64_t corners = zones * 8;     // ~8 corners per zone
  const std::uint64_t faces = zones * 3;       // interior faces ~ 3/zone

  // Entity arrays. Coordinate/state records are one cache line per entity
  // (coordinates plus the physics fields UME carries alongside), which is
  // what keeps the gather footprint DRAM-resident at every rank count —
  // the regime the real 32^3 run (~25 MiB of mesh data) operates in.
  // Index maps are 4 bytes per slot.
  const Addr corner_map = rankData(rank, 0);   // zone -> corner indices
  const Addr point_map = rankData(rank, 1);    // corner -> point index
  const Addr point_xyz = rankData(rank, 2);    // point records
  const Addr zone_out = rankData(rank, 3);
  const Addr zone_xyz = rankData(rank, 4);     // zone records
  const Addr face_map = rankData(rank, 5);

  const std::uint64_t point_bytes = points * 64;
  const std::uint64_t zone_bytes = zones * 64;
  const std::uint64_t ghost_bytes = zones_total / 16 * 8;

  auto seq = std::make_unique<SequenceTrace>("ume.rank" +
                                             std::to_string(rank));

  // --- Original kernel: zone-centered gather over corners --------------
  {
    KernelBuilder b("ume.original");
    const int cmap = b.addrGen(
        std::make_unique<StrideGen>(corner_map, 4, corners * 4));
    // Mesh connectivity is spatially local: consecutive zones reference
    // mostly nearby corners/points, with occasional far references.
    const int pmap = b.addrGen(std::make_unique<LocalityGen>(
        point_map, corners * 4, /*window=*/8 * 1024, 4, /*far=*/0.03,
        cfg.seed));
    const int coords = b.addrGen(std::make_unique<LocalityGen>(
        point_xyz, point_bytes, /*window=*/16 * 1024, 8, /*far=*/0.03,
        cfg.seed + 1));
    const int out =
        b.addrGen(std::make_unique<StrideGen>(zone_out, 8, zone_bytes));
    Segment& z = b.segment(zones);
    for (unsigned c = 0; c < 8; ++c) {
      // corner index -> point index -> coordinates (two-level indirection)
      z.add(load(intReg(7), cmap, kNoReg, 4));
      z.add(load(intReg(8), pmap, /*addr_src=*/intReg(7), 4));
      z.add(load(fpReg(1), coords, /*addr_src=*/intReg(8)));
      z.add(alu(intReg(9), intReg(8), intReg(7)));   // index arithmetic
      z.add(alu(intReg(10), intReg(9)));
      z.add(fadd(fpReg(2), fpReg(2), fpReg(1)));
    }
    z.add(fmul(fpReg(3), fpReg(2), fpReg(10)));
    z.add(store(out, fpReg(3)));
    seq->append(b.build());
  }
  appendGhostExchange(seq.get(), rank, nranks, ghost_bytes);

  // --- Inverted kernel: point-centered gather over incident zones ------
  {
    KernelBuilder b("ume.inverted");
    const int zmap = b.addrGen(std::make_unique<StrideGen>(
        corner_map, 4, corners * 4));
    const int zvals = b.addrGen(std::make_unique<LocalityGen>(
        zone_xyz, zone_bytes, /*window=*/16 * 1024, 8, /*far=*/0.03,
        cfg.seed + 2));
    const int out = b.addrGen(
        std::make_unique<StrideGen>(zone_out + zone_bytes, 8, point_bytes));
    Segment& p = b.segment(points);
    for (unsigned c = 0; c < 8; ++c) {
      p.add(load(intReg(7), zmap, kNoReg, 4));
      p.add(load(fpReg(1), zvals, /*addr_src=*/intReg(7)));
      p.add(alu(intReg(8), intReg(7)));
      p.add(fadd(fpReg(2), fpReg(2), fpReg(1)));
    }
    p.add(store(out, fpReg(2)));
    seq->append(b.build());
  }
  appendGhostExchange(seq.get(), rank, nranks, ghost_bytes);

  // --- Face-area kernel: gather 4 points per face, cross product -------
  {
    KernelBuilder b("ume.face_area");
    const int fmap =
        b.addrGen(std::make_unique<StrideGen>(face_map, 4, faces * 16));
    const int coords = b.addrGen(std::make_unique<LocalityGen>(
        point_xyz, point_bytes, /*window=*/16 * 1024, 8, /*far=*/0.03,
        cfg.seed + 3));
    const int out = b.addrGen(std::make_unique<StrideGen>(
        zone_out + 2 * zone_bytes, 8, faces * 8));
    Segment& f = b.segment(faces);
    for (unsigned v = 0; v < 4; ++v) {
      f.add(load(intReg(7), fmap, kNoReg, 4));
      f.add(load(fpReg(1 + v), coords, /*addr_src=*/intReg(7)));
      f.add(alu(intReg(8), intReg(7)));
    }
    // Cross product + magnitude: 6 multiplies, 3 adds.
    f.add(fmul(fpReg(5), fpReg(1), fpReg(2)));
    f.add(fmul(fpReg(6), fpReg(3), fpReg(4)));
    f.add(fadd(fpReg(7), fpReg(5), fpReg(6)));
    f.add(fmul(fpReg(8), fpReg(7), fpReg(7)));
    f.add(store(out, fpReg(8)));
    seq->append(b.build());
  }
  if (nranks > 1) {
    seq->appendOp(makeMpiOp(MpiKind::kBarrier, 0, 0));
  }
  return seq;
}

}  // namespace bridge
