// Definitions of all 40 MicroBench kernels (paper Table 1).
//
// Working-set sizes are chosen against the platforms' cache capacities
// (L1 32-64 KiB, L2 512 KiB - 1 MiB, LLC 0 / 64 MiB):
//   L1-resident  :   8 KiB   (MD, MI, STc)
//   L2-resident  : 256 KiB   (ML2 family, STL2 family, MIM, MIM2)
//   DRAM-resident: 128 MiB   (MM, MM_st — beyond even the MILK-V LLC)
// Conflict kernels stride by 8 KiB so all accesses collide into one set on
// every modeled L1 geometry (64 or 128 sets x 64 B lines).
//
// Iteration counts at scale = 1.0 put each kernel near 160-260k micro-ops;
// the paper's originals run ~1e9 iterations on silicon, but relative
// performance of these steady-state loops is iteration-count invariant.
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>

#include "trace/kernel.h"
#include "workloads/microbench.h"
#include "workloads/microbench_detail.h"

namespace bridge {
namespace {

using Factory =
    std::function<TraceSourcePtr(double scale, std::uint64_t seed)>;

constexpr Addr kData = 0x1000'0000;    // per-kernel private data region
constexpr Addr kData2 = 0x1800'0000;   // secondary region
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

std::uint64_t iters(double scale, std::uint64_t base) {
  const double v = scale * static_cast<double>(base);
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

// --- Control flow -------------------------------------------------------

TraceSourcePtr cca(double s, std::uint64_t) {
  KernelBuilder b("microbench.Cca");
  const int g = b.branchGen(std::make_unique<ConstantBranchGen>(true));
  b.segment(iters(s, 40000))
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(6), intReg(6)))
      .add(branch(g, intReg(5)));
  return b.build();
}

TraceSourcePtr cce(double s, std::uint64_t) {
  KernelBuilder b("microbench.Cce");
  const int g = b.branchGen(std::make_unique<AlternatingBranchGen>(1));
  b.segment(iters(s, 40000))
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(6), intReg(6)))
      .add(branch(g, intReg(5)));
  return b.build();
}

TraceSourcePtr cch(double s, std::uint64_t seed) {
  KernelBuilder b("microbench.CCh");
  const int g = b.branchGen(std::make_unique<RandomBranchGen>(0.5, seed));
  b.segment(iters(s, 40000))
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(6), intReg(6)))
      .add(branch(g, intReg(5)));
  return b.build();
}

TraceSourcePtr cch_st(double s, std::uint64_t seed) {
  KernelBuilder b("microbench.CCh_st");
  const int g = b.branchGen(std::make_unique<RandomBranchGen>(0.5, seed));
  const int st = b.addrGen(std::make_unique<StrideGen>(kData, 8, 8 * kKiB));
  b.segment(iters(s, 32000))
      .add(alu(intReg(5), intReg(5)))
      .add(store(st, intReg(5)))
      .add(branch(g, intReg(5)));
  return b.build();
}

TraceSourcePtr ccl(double s, std::uint64_t seed) {
  // Impossible control flow with large basic blocks: the mispredict cost is
  // amortized over ~16 useful instructions.
  KernelBuilder b("microbench.CCl");
  const int g = b.branchGen(std::make_unique<RandomBranchGen>(0.5, seed));
  Segment& seg = b.segment(iters(s, 12000));
  for (unsigned i = 0; i < 16; ++i) {
    seg.add(alu(intReg(5 + (i % 8)), intReg(5 + ((i + 1) % 8))));
  }
  seg.add(branch(g, intReg(5)));
  return b.build();
}

TraceSourcePtr ccm(double s, std::uint64_t seed) {
  KernelBuilder b("microbench.CCm");
  const int g = b.branchGen(std::make_unique<RandomBranchGen>(0.98, seed));
  b.segment(iters(s, 40000))
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(6), intReg(6)))
      .add(branch(g, intReg(5)));
  return b.build();
}

TraceSourcePtr cf1(double s, std::uint64_t) {
  // Inlining test: a call to a function containing a short loop, per
  // outer iteration — call/return overhead dominates if not inlined.
  KernelBuilder b("microbench.CF1");
  b.segment(iters(s, 10000))
      .add(call())
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(6), intReg(5)))
      .add(alu(intReg(7), intReg(6)))
      .add(alu(intReg(5), intReg(7)))
      .add(ret());
  return b.build();
}

TraceSourcePtr crd(double s, std::uint64_t) {
  // Recursive control flow, 1000 deep: descend then unwind, repeatedly.
  // All calls come from one site, so a RAS predicts the unwind perfectly.
  KernelBuilder b("microbench.CRd");
  const std::uint64_t depth = 1000;
  const std::uint64_t rounds = iters(s, 20);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    b.segment(depth)
        .add(alu(intReg(5), intReg(5)))
        .add(call())
        .add(alu(intReg(6), intReg(5)));
    b.segment(depth)
        .add(alu(intReg(7), intReg(6)))
        .add(ret());
  }
  return b.build();
}

TraceSourcePtr crf(double s, std::uint64_t seed) {
  return detail::makeFibTrace(/*n=*/18, /*rounds=*/
                              static_cast<unsigned>(iters(s, 3)), seed);
}

TraceSourcePtr crm(double s, std::uint64_t seed) {
  return detail::makeMergeSortTrace(
      static_cast<unsigned>(iters(s, 4096)), seed);
}

TraceSourcePtr cs1(double s, std::uint64_t) {
  // Switch, different target each time: an indirect jump over 8 targets in
  // a pseudo-random order — the BTB's single stored target almost always
  // misses.
  KernelBuilder b("microbench.CS1");
  b.segment(iters(s, 30000))
      .add(alu(intReg(5), intReg(5)))
      .add(indirectJump(/*targets=*/8, /*period=*/0))
      .add(alu(intReg(6), intReg(5)));
  return b.build();
}

TraceSourcePtr cs3(double s, std::uint64_t) {
  // Switch, different target every third execution.
  KernelBuilder b("microbench.CS3");
  b.segment(iters(s, 30000))
      .add(alu(intReg(5), intReg(5)))
      .add(indirectJump(/*targets=*/8, /*period=*/3))
      .add(alu(intReg(6), intReg(5)));
  return b.build();
}

// --- Data-parallel ------------------------------------------------------

TraceSourcePtr dataParallel(const char* name, double s, bool dbl,
                            unsigned sin_ops) {
  // load x[i]; arithmetic; store y[i] — fully independent iterations.
  KernelBuilder b(name);
  const unsigned esz = dbl ? 8 : 4;
  const int ld =
      b.addrGen(std::make_unique<StrideGen>(kData, esz, 64 * kKiB));
  const int st =
      b.addrGen(std::make_unique<StrideGen>(kData2, esz, 64 * kKiB));
  Segment& seg = b.segment(iters(s, sin_ops != 0 ? 5000 : 20000));
  seg.add(load(fpReg(1), ld, kNoReg, static_cast<std::uint8_t>(esz)));
  if (sin_ops == 0) {
    seg.add(fmul(fpReg(2), fpReg(1), fpReg(10)));
    seg.add(fadd(fpReg(3), fpReg(2), fpReg(11)));
  } else {
    // sin(): a libm polynomial — range reduction then a Horner chain.
    seg.add(fmul(fpReg(2), fpReg(1), fpReg(10)));
    seg.add(fcvt(fpReg(3), fpReg(2)));
    for (unsigned i = 0; i < sin_ops; ++i) {
      seg.add(fma(fpReg(4), fpReg(4), fpReg(3), fpReg(12)));
    }
    seg.add(fmul(fpReg(3), fpReg(4), fpReg(1)));
  }
  seg.add(store(st, fpReg(3), kNoReg, static_cast<std::uint8_t>(esz)));
  return b.build();
}

TraceSourcePtr dp1d(double s, std::uint64_t) {
  return dataParallel("microbench.DP1d", s, true, 0);
}
TraceSourcePtr dp1f(double s, std::uint64_t) {
  return dataParallel("microbench.DP1f", s, false, 0);
}
TraceSourcePtr dpt(double s, std::uint64_t) {
  return dataParallel("microbench.DPT", s, false, 12);
}
TraceSourcePtr dptd(double s, std::uint64_t) {
  return dataParallel("microbench.DPTd", s, true, 14);
}

TraceSourcePtr dpcvt(double s, std::uint64_t) {
  KernelBuilder b("microbench.DPcvt");
  const int ld = b.addrGen(std::make_unique<StrideGen>(kData, 4, 64 * kKiB));
  const int st =
      b.addrGen(std::make_unique<StrideGen>(kData2, 8, 128 * kKiB));
  b.segment(iters(s, 20000))
      .add(load(fpReg(1), ld, kNoReg, 4))
      .add(fcvt(fpReg(2), fpReg(1)))
      .add(store(st, fpReg(2)));
  return b.build();
}

// --- Execution ----------------------------------------------------------

TraceSourcePtr ed1(double s, std::uint64_t) {
  // Serial ALU dependency chain: IPC pinned at ~1 on any width.
  KernelBuilder b("microbench.ED1");
  b.segment(iters(s, 30000))
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(5), intReg(5)))
      .add(alu(intReg(5), intReg(5)));
  return b.build();
}

TraceSourcePtr em1(double s, std::uint64_t) {
  // Serial multiply chain: exposes the multiplier latency.
  KernelBuilder b("microbench.EM1");
  b.segment(iters(s, 20000))
      .add(mul(intReg(5), intReg(5), intReg(6)))
      .add(mul(intReg(5), intReg(5), intReg(6)));
  return b.build();
}

TraceSourcePtr em5(double s, std::uint64_t) {
  // Five interleaved multiply chains: latency-tolerant given enough window.
  KernelBuilder b("microbench.EM5");
  Segment& seg = b.segment(iters(s, 12000));
  for (unsigned i = 0; i < 5; ++i) {
    seg.add(mul(intReg(5 + i), intReg(5 + i), intReg(11)));
  }
  return b.build();
}

TraceSourcePtr ef(double s, std::uint64_t) {
  // Eight independent FP instructions per iteration.
  KernelBuilder b("microbench.EF");
  Segment& seg = b.segment(iters(s, 8000));
  for (unsigned i = 0; i < 8; ++i) {
    seg.add(fadd(fpReg(1 + i), fpReg(1 + i), fpReg(12)));
  }
  return b.build();
}

TraceSourcePtr ei(double s, std::uint64_t) {
  // Eight independent integer computations per iteration.
  KernelBuilder b("microbench.EI");
  Segment& seg = b.segment(iters(s, 8000));
  for (unsigned i = 0; i < 8; ++i) {
    seg.add(alu(intReg(5 + i), intReg(5 + i)));
  }
  return b.build();
}

// --- Cache --------------------------------------------------------------

TraceSourcePtr mc(double s, std::uint64_t) {
  // Conflict misses: 24 lines, all landing in one L1 set (stride 8 KiB).
  KernelBuilder b("microbench.MC");
  const int g =
      b.addrGen(std::make_unique<ConflictGen>(kData, 8 * kKiB, 24));
  b.segment(iters(s, 40000)).add(load(intReg(5), g));
  return b.build();
}

TraceSourcePtr mcs(double s, std::uint64_t) {
  KernelBuilder b("microbench.MCS");
  const int g =
      b.addrGen(std::make_unique<ConflictGen>(kData, 8 * kKiB, 24));
  const int st =
      b.addrGen(std::make_unique<ConflictGen>(kData2, 8 * kKiB, 24));
  b.segment(iters(s, 24000))
      .add(load(intReg(5), g))
      .add(store(st, intReg(5)));
  return b.build();
}

TraceSourcePtr md(double s, std::uint64_t seed) {
  // L1-resident pointer chase: pure load-to-load latency.
  KernelBuilder b("microbench.MD");
  const int g =
      b.addrGen(std::make_unique<ChaseGen>(kData, 128, 64, seed));
  b.segment(iters(s, 40000))
      .add(load(intReg(5), g, /*addr_src=*/intReg(5)));
  return b.build();
}

TraceSourcePtr mi(double s, std::uint64_t seed) {
  // Independent random accesses, L1-resident.
  KernelBuilder b("microbench.MI");
  const int g =
      b.addrGen(std::make_unique<RandomGen>(kData, 8 * kKiB, 8, seed));
  Segment& seg = b.segment(iters(s, 20000));
  seg.add(load(intReg(5), g));
  seg.add(load(intReg(6), g));
  return b.build();
}

TraceSourcePtr mim(double s, std::uint64_t seed) {
  // Independent accesses missing L1, no set conflicts: measures MLP.
  KernelBuilder b("microbench.MIM");
  const int g =
      b.addrGen(std::make_unique<RandomGen>(kData, 256 * kKiB, 64, seed));
  Segment& seg = b.segment(iters(s, 15000));
  seg.add(load(intReg(5), g));
  seg.add(load(intReg(6), g));
  return b.build();
}

TraceSourcePtr mim2(double s, std::uint64_t) {
  // Like MIM but two coalescing accesses per line.
  KernelBuilder b("microbench.MIM2");
  const int g =
      b.addrGen(std::make_unique<StrideGen>(kData, 32, 256 * kKiB));
  Segment& seg = b.segment(iters(s, 15000));
  seg.add(load(intReg(5), g));
  seg.add(load(intReg(6), g));
  return b.build();
}

TraceSourcePtr mip(double s, std::uint64_t) {
  // Instruction-cache misses: the loop body sweeps a 3 MiB code footprint
  // repeatedly — larger than every modeled L2, smaller than the MILK-V
  // LLC, so the i-fetch miss stream is served by the LLC models whose
  // fidelity the paper's MIP anomaly exposes (simplified SRAM vs real).
  KernelBuilder b("microbench.MIP");
  // The sweep must wrap the footprint even at reduced scales, or every
  // fetch is a cold DRAM miss and the LLC-model contrast disappears.
  Segment& seg = b.segment(iters(std::max(s, 0.7), 90000));
  seg.code_footprint = 3 * kMiB;
  for (unsigned i = 0; i < 16; ++i) {
    seg.add(alu(intReg(5 + (i % 8)), intReg(5 + (i % 8))));
  }
  return b.build();
}

TraceSourcePtr chaseKernel(const char* name, double s, std::uint64_t seed,
                           std::uint64_t region, bool with_store,
                           std::uint64_t base_iters) {
  KernelBuilder b(name);
  const int g = b.addrGen(std::make_unique<ChaseGen>(
      kData, region / 64, 64, seed));
  Segment& seg = b.segment(iters(s, base_iters));
  seg.add(load(intReg(5), g, /*addr_src=*/intReg(5)));
  if (with_store) {
    const int st = b.addrGen(std::make_unique<StrideGen>(
        kData2, 64, region));
    seg.add(store(st, intReg(5)));
  }
  return b.build();
}

TraceSourcePtr ml2(double s, std::uint64_t seed) {
  return chaseKernel("microbench.ML2", s, seed, 256 * kKiB, false, 30000);
}

TraceSourcePtr ml2_st(double s, std::uint64_t seed) {
  return chaseKernel("microbench.ML2_st", s, seed, 256 * kKiB, true, 20000);
}

TraceSourcePtr bwKernel(const char* name, double s, unsigned loads,
                        unsigned stores) {
  // L2-bandwidth kernels: independent line-strided streams.
  KernelBuilder b(name);
  Segment& seg = b.segment(iters(s, 20000));
  if (loads != 0) {
    const int g =
        b.addrGen(std::make_unique<StrideGen>(kData, 64, 256 * kKiB));
    for (unsigned i = 0; i < loads; ++i) {
      seg.add(load(intReg(5 + i), g));
    }
  }
  if (stores != 0) {
    const int g =
        b.addrGen(std::make_unique<StrideGen>(kData2, 64, 256 * kKiB));
    for (unsigned i = 0; i < stores; ++i) {
      seg.add(store(g, intReg(5)));
    }
  }
  return b.build();
}

TraceSourcePtr ml2_bw_ld(double s, std::uint64_t) {
  return bwKernel("microbench.ML2_BW_ld", s, 2, 0);
}
TraceSourcePtr ml2_bw_ldst(double s, std::uint64_t) {
  return bwKernel("microbench.ML2_BW_ldst", s, 1, 1);
}
TraceSourcePtr ml2_bw_st(double s, std::uint64_t) {
  return bwKernel("microbench.ML2_BW_st", s, 0, 2);
}

TraceSourcePtr stl2(double s, std::uint64_t) {
  // Repeated stores over an L2-resident region.
  KernelBuilder b("microbench.STL2");
  const int g = b.addrGen(std::make_unique<StrideGen>(kData, 8, 256 * kKiB));
  b.segment(iters(s, 40000)).add(store(g, intReg(5)));
  return b.build();
}

TraceSourcePtr stl2b(double s, std::uint64_t) {
  // Occasional stores: one store per 8 ALU ops, L2 resident.
  KernelBuilder b("microbench.STL2b");
  const int g = b.addrGen(std::make_unique<StrideGen>(kData, 8, 256 * kKiB));
  Segment& seg = b.segment(iters(s, 10000));
  for (unsigned i = 0; i < 8; ++i) {
    seg.add(alu(intReg(5 + (i % 4)), intReg(5 + (i % 4))));
  }
  seg.add(store(g, intReg(5)));
  return b.build();
}

TraceSourcePtr stc(double s, std::uint64_t) {
  // Hammer one L1-resident line with consecutive stores.
  KernelBuilder b("microbench.STc");
  const int g = b.addrGen(std::make_unique<ConstGen>(kData));
  b.segment(iters(s, 40000))
      .add(store(g, intReg(5)))
      .add(store(g, intReg(6)));
  return b.build();
}

TraceSourcePtr m_dyn(double s, std::uint64_t seed) {
  // Loads feeding store addresses: serialized load->store dependences.
  KernelBuilder b("microbench.M_Dyn");
  const int ld =
      b.addrGen(std::make_unique<ChaseGen>(kData, 256, 64, seed));
  const int st =
      b.addrGen(std::make_unique<RandomGen>(kData2, 16 * kKiB, 8, seed + 1));
  b.segment(iters(s, 25000))
      .add(load(intReg(5), ld, /*addr_src=*/intReg(5)))
      .add(store(st, intReg(6), /*addr_src=*/intReg(5)));
  return b.build();
}

// --- Memory -------------------------------------------------------------

TraceSourcePtr mm(double s, std::uint64_t seed) {
  return chaseKernel("microbench.MM", s, seed, 128 * kMiB, false, 25000);
}

TraceSourcePtr mm_st(double s, std::uint64_t seed) {
  return chaseKernel("microbench.MM_st", s, seed, 128 * kMiB, true, 18000);
}

struct CatalogEntry {
  MicrobenchInfo info;
  Factory factory;
};

const std::vector<CatalogEntry>& catalog() {
  using C = MicrobenchCategory;
  static const std::vector<CatalogEntry> kCatalog = {
      {{"Cca", C::kControlFlow, "Completely biased branch", false}, cca},
      {{"Cce", C::kControlFlow, "Alternating branches", false}, cce},
      {{"CCh", C::kControlFlow, "Random control flow", false}, cch},
      {{"CCh_st", C::kControlFlow, "Impossible to predict control + stores",
        false},
       cch_st},
      {{"CCl", C::kControlFlow, "Impossible control w/ large basic blocks",
        false},
       ccl},
      {{"CCm", C::kControlFlow, "Heavily biased branches", false}, ccm},
      {{"CF1", C::kControlFlow, "Inlining test for functions w/ loops",
        false},
       cf1},
      {{"CRd", C::kControlFlow, "Recursive control flow - 1000 deep", false},
       crd},
      {{"CRf", C::kControlFlow, "Recursive control flow - Fibonacci", false},
       crf},
      {{"CRm", C::kControlFlow, "Merge sort", true}, crm},
      {{"CS1", C::kControlFlow, "Switch - different each time", false}, cs1},
      {{"CS3", C::kControlFlow, "Switch - different every third time",
        false},
       cs3},
      {{"DP1d", C::kData, "Data parallel loop - double arithmetic", false},
       dp1d},
      {{"DP1f", C::kData, "Data parallel loop - float arithmetic", false},
       dp1f},
      {{"DPT", C::kData, "Data parallel loop - sin()", false}, dpt},
      {{"DPTd", C::kData, "Data parallel loop - double sin()", false}, dptd},
      {{"DPcvt", C::kData, "Data parallel loop - float to double", false},
       dpcvt},
      {{"ED1", C::kExecution, "Int - length 1 dependency chain", false},
       ed1},
      {{"EM1", C::kExecution, "Int mul - length 1 dependency chain", false},
       em1},
      {{"EM5", C::kExecution, "Int mul - length 5 dependency chain", false},
       em5},
      {{"EF", C::kExecution, "FP - 8 independent instructions", false}, ef},
      {{"EI", C::kExecution, "Int - 8 independent computations", false}, ei},
      {{"MC", C::kCache, "Conflict misses", false}, mc},
      {{"MCS", C::kCache, "Conflict misses with stores", false}, mcs},
      {{"MD", C::kCache, "Cache-resident linked list traversal", false}, md},
      {{"MI", C::kCache, "Independent access, cache resident", false}, mi},
      {{"MIM", C::kCache, "Independent access, no conflicts", false}, mim},
      {{"MIM2", C::kCache, "Independent access - 2 coalescing ops", false},
       mim2},
      {{"MIP", C::kCache, "Instruction cache misses", false}, mip},
      {{"ML2", C::kCache, "L2 linked-list", false}, ml2},
      {{"ML2_BW_ld", C::kCache, "L2 linked-list - B/W limited (lds)", false},
       ml2_bw_ld},
      {{"ML2_BW_ldst", C::kCache, "L2 linked-list - B/W limited (ld/sts)",
        false},
       ml2_bw_ldst},
      {{"ML2_BW_st", C::kCache, "L2 linked-list - B/W limited (sts)", false},
       ml2_bw_st},
      {{"ML2_st", C::kCache, "L2 linked-list (sts)", false}, ml2_st},
      {{"STL2", C::kCache, "Repeatedly store, L2 resident", false}, stl2},
      {{"STL2b", C::kCache, "Occasional stores, L2 resident", false}, stl2b},
      {{"STc", C::kCache, "Repeated consecutive L1 store", false}, stc},
      {{"M_Dyn", C::kCache, "Load store w/ dynamic dependencies", false},
       m_dyn},
      {{"MM", C::kMemory, "Non-cache resident linked-list", false}, mm},
      {{"MM_st", C::kMemory, "Non-cache resident linked-list (sts)", false},
       mm_st},
  };
  return kCatalog;
}

}  // namespace

const std::vector<MicrobenchInfo>& microbenchCatalog() {
  static const std::vector<MicrobenchInfo> kInfos = [] {
    std::vector<MicrobenchInfo> out;
    for (const CatalogEntry& e : catalog()) out.push_back(e.info);
    return out;
  }();
  return kInfos;
}

TraceSourcePtr makeMicrobench(std::string_view name, double scale,
                              std::uint64_t seed) {
  for (const CatalogEntry& e : catalog()) {
    if (e.info.name == name) return e.factory(scale, seed);
  }
  throw std::out_of_range("unknown microbenchmark: " + std::string(name));
}

}  // namespace bridge
