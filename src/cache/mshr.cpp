#include "cache/mshr.h"

#include <algorithm>
#include <cassert>

namespace bridge {

MshrFile::MshrFile(unsigned entries) : slots_(std::max(1u, entries)) {}

MshrFile::Admission MshrFile::admit(Addr line_addr, Cycle now) {
  line_addr = lineAddr(line_addr);
  Admission out;
  out.ready = now;

  // First, retire any slots whose fill has already landed.
  for (Slot& s : slots_) {
    if (s.busy && s.fill != kCycleNever && s.fill <= now) s.busy = false;
  }

  // Merge with an in-flight miss to the same line.
  for (Slot& s : slots_) {
    if (s.busy && s.line == line_addr) {
      ++merges_;
      out.merged = true;
      out.merged_fill = s.fill;
      return out;
    }
  }

  // Allocate a free slot, or wait for the earliest fill.
  Slot* free_slot = nullptr;
  Cycle earliest_fill = kCycleNever;
  Slot* earliest_slot = nullptr;
  for (Slot& s : slots_) {
    if (!s.busy) {
      free_slot = &s;
      break;
    }
    if (s.fill < earliest_fill) {
      earliest_fill = s.fill;
      earliest_slot = &s;
    }
  }
  if (free_slot == nullptr) {
    // All registers busy with unresolved or future fills: stall until the
    // earliest one frees. An unresolved fill (kCycleNever) can only happen
    // if the caller interleaves admissions without completing, which the
    // hierarchy never does; assert to catch misuse.
    assert(earliest_fill != kCycleNever &&
           "admit() while a previous admission was never completed");
    ++stall_events_;
    out.ready = earliest_fill;
    earliest_slot->busy = false;
    free_slot = earliest_slot;
  }
  free_slot->busy = true;
  free_slot->line = line_addr;
  free_slot->fill = kCycleNever;
  return out;
}

void MshrFile::complete(Addr line_addr, Cycle fill_cycle) {
  line_addr = lineAddr(line_addr);
  for (Slot& s : slots_) {
    if (s.busy && s.line == line_addr && s.fill == kCycleNever) {
      s.fill = fill_cycle;
      return;
    }
  }
  assert(false && "complete() without a matching admission");
}

}  // namespace bridge
