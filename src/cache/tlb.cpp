#include "cache/tlb.h"

#include <cassert>

namespace bridge {

Tlb::Tlb(const TlbParams& params)
    : params_(params),
      l1_(params.l1_entries),
      l2_(params.l2_entries, ~std::uint64_t{0}) {
  assert(params.l1_entries >= 1);
}

Tlb::Outcome Tlb::access(Addr addr) {
  const std::uint64_t page = pageOf(addr);

  // L1: fully associative, LRU.
  Entry* victim = &l1_[0];
  for (Entry& e : l1_) {
    if (e.page == page) {
      e.lru = ++tick_;
      ++l1_hits_;
      return Outcome::kL1Hit;
    }
    if (e.lru < victim->lru) victim = &e;
  }

  // L2: direct mapped by page number.
  Outcome out = Outcome::kMiss;
  if (!l2_.empty()) {
    std::uint64_t& slot = l2_[page % l2_.size()];
    if (slot == page) {
      ++l2_hits_;
      out = Outcome::kL2Hit;
    } else {
      ++misses_;
      slot = page;  // refill after the walk
    }
  } else {
    ++misses_;
  }

  // Install in L1 (the L1 victim falls into the L2 by direct mapping).
  if (!l2_.empty() && victim->page != ~std::uint64_t{0}) {
    l2_[victim->page % l2_.size()] = victim->page;
  }
  victim->page = page;
  victim->lru = ++tick_;
  return out;
}

}  // namespace bridge
