#include "cache/tlb.h"

#include <cassert>

namespace bridge {

Tlb::Tlb(const TlbParams& params)
    : params_(params),
      l1_page_(params.l1_entries, ~std::uint64_t{0}),
      l1_lru_(params.l1_entries, 0),
      l2_(params.l2_entries, ~std::uint64_t{0}) {
  assert(params.l1_entries >= 1);
}

Tlb::Outcome Tlb::access(Addr addr) {
  const std::uint64_t page = pageOf(addr);

  if (page == mru_page_) {
    l1_lru_[mru_slot_] = ++tick_;
    ++l1_hits_;
    return Outcome::kL1Hit;
  }

  // L1: fully associative, LRU. Two tight same-typed scans (match, then
  // victim only when needed) instead of one interleaved loop — the match
  // scan vectorizes, and a hit skips the victim scan entirely. Outcomes,
  // LRU ticks, and victim choice are identical to the interleaved form:
  // the victim is the LRU-minimum at the same point in time either way.
  const std::size_t n = l1_page_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (l1_page_[i] == page) {
      l1_lru_[i] = ++tick_;
      ++l1_hits_;
      mru_page_ = page;
      mru_slot_ = i;
      return Outcome::kL1Hit;
    }
  }
  std::size_t victim = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (l1_lru_[i] < l1_lru_[victim]) victim = i;
  }

  // L2: direct mapped by page number.
  Outcome out = Outcome::kMiss;
  if (!l2_.empty()) {
    std::uint64_t& slot = l2_[page % l2_.size()];
    if (slot == page) {
      ++l2_hits_;
      out = Outcome::kL2Hit;
    } else {
      ++misses_;
      slot = page;  // refill after the walk
    }
  } else {
    ++misses_;
  }

  // Install in L1 (the L1 victim falls into the L2 by direct mapping).
  if (!l2_.empty() && l1_page_[victim] != ~std::uint64_t{0}) {
    l2_[l1_page_[victim] % l2_.size()] = l1_page_[victim];
  }
  l1_page_[victim] = page;
  l1_lru_[victim] = ++tick_;
  mru_page_ = page;
  mru_slot_ = victim;
  return out;
}

}  // namespace bridge
