#include "cache/llc.h"

#include <algorithm>

namespace bridge {

LlcSlice::LlcSlice(const LlcParams& params, std::uint64_t seed)
    : params_(params),
      tags_(CacheGeometry{params.sets, params.ways, ReplacementPolicy::kLru},
            seed),
      banks_(std::max(1u, params.banks)) {}

LlcSlice::Result LlcSlice::warmAccess(Addr line_addr, bool is_store) {
  Result out;
  const CacheAccess a = tags_.access(line_addr, is_store);
  out.hit = a.hit;
  out.writeback = a.writeback;
  out.victim_line = a.victim_line;
  return out;
}

LlcSlice::Result LlcSlice::access(Addr line_addr, bool is_store, Cycle now) {
  Result out;
  const CacheAccess a = tags_.access(line_addr, is_store);
  out.hit = a.hit;
  out.writeback = a.writeback;
  out.victim_line = a.victim_line;

  if (params_.mode == LlcMode::kSimplifiedSram) {
    // FireSim-style: a flat SRAM latency regardless of load; effectively an
    // idealized tag+data access with no contention.
    out.complete = now + params_.sram_latency;
    return out;
  }

  // Realistic mode: tag pipeline, then a banked data array with occupancy.
  const std::size_t bank = (line_addr >> kLineShift) % banks_.size();
  const Cycle tag_done = now + params_.tag_latency;
  const Cycle start = banks_[bank].reserve(tag_done, params_.bank_busy);
  out.complete = out.hit ? start + params_.data_latency : tag_done;
  return out;
}

}  // namespace bridge
