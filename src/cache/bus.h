// System bus occupancy model.
//
// The paper's Rocket2 -> "Banana Pi Sim Model" step widens the system bus
// from 64 to 128 bits; this model makes that knob meaningful: a 64-byte line
// takes 64 / (width/8) beats on the bus, and the bus is a shared resource
// between the L2 and the memory side (LLC/DRAM).
//
// TileLink-style split channels: command beats (requests) and data beats
// (line transfers) ride independent channels, so a request is never stuck
// behind an in-flight response burst. Each channel is a BusyCalendar, so
// charges arriving out of order from skewed cores only contend when their
// intervals genuinely collide.
#pragma once

#include <cstdint>

#include "sim/calendar.h"
#include "sim/types.h"

namespace bridge {

struct BusParams {
  unsigned width_bits = 128;   // data width
  unsigned request_cycles = 1; // address/command beat for a read request
};

class SystemBus {
 public:
  explicit SystemBus(const BusParams& params);

  /// Beats needed to move one cache line on the data channel.
  unsigned beatsPerLine() const { return beats_per_line_; }

  /// Occupy the command channel for a request beat starting no earlier
  /// than `ready`; returns when the request has been delivered.
  Cycle sendRequest(Cycle ready);

  /// Occupy the data channel for a full line transfer starting no earlier
  /// than `ready`; returns when the last beat lands.
  Cycle transferLine(Cycle ready);

  std::uint64_t busyCycles() const {
    return cmd_.busyCycles() + data_.busyCycles();
  }
  Cycle nextFree() const { return data_.horizon(); }
  const BusParams& params() const { return params_; }

 private:
  BusParams params_;
  unsigned beats_per_line_;
  BusyCalendar cmd_;
  BusyCalendar data_;
};

}  // namespace bridge
