// Last-level cache models.
//
// FireSim's LLC model "behaves like an SRAM and does not account for
// detailed cache system latencies such as tag access delay or data retrieval
// latency" (paper §4). We provide both that simplified model and a
// latency-accurate one used by the silicon reference platforms, so the
// FireSim-vs-silicon LLC fidelity question is directly expressible.
#pragma once

#include <cstdint>
#include <memory>

#include "cache/cache.h"
#include "sim/calendar.h"
#include "sim/types.h"

namespace bridge {

enum class LlcMode : std::uint8_t {
  kSimplifiedSram,  // FireSim-style: flat access latency, no queuing
  kRealistic,       // tag + data pipeline, banked, queued
};

struct LlcParams {
  LlcMode mode = LlcMode::kSimplifiedSram;
  unsigned sets = 16384;  // 16 MiB with 16 ways (one FireSim LLC slice)
  unsigned ways = 16;
  unsigned sram_latency = 8;   // simplified mode: flat latency
  unsigned tag_latency = 6;    // realistic mode: tag pipeline
  unsigned data_latency = 24;  // realistic mode: data array
  unsigned banks = 4;          // realistic mode: bank-level parallelism
  unsigned bank_busy = 4;      // realistic mode: bank occupancy per access
};

/// One LLC slice (the paper attaches one slice per DRAM channel).
class LlcSlice {
 public:
  explicit LlcSlice(const LlcParams& params, std::uint64_t seed = 7);

  struct Result {
    bool hit = false;
    Cycle complete = 0;      // data available (hit) or lookup resolved (miss)
    bool writeback = false;  // dirty victim must go to DRAM
    Addr victim_line = 0;
  };

  /// Allocating access at cycle `now`. On a miss the caller fetches the
  /// line from DRAM and the line is already installed here (fill-on-miss).
  Result access(Addr line_addr, bool is_store, Cycle now);

  /// Functional-only access for sampled fast-forward: updates residency,
  /// LRU, and dirtiness exactly like access() but charges no bank calendar
  /// time (complete is meaningless and left 0). Timing state must stay
  /// untouched so warmed history can never push out a later detailed
  /// access.
  Result warmAccess(Addr line_addr, bool is_store);

  const SetAssocCache& tags() const { return tags_; }
  const LlcParams& params() const { return params_; }

 private:
  LlcParams params_;
  SetAssocCache tags_;
  std::vector<BusyCalendar> banks_;
};

}  // namespace bridge
