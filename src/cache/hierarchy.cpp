#include "cache/hierarchy.h"

#include <algorithm>
#include <cassert>

namespace bridge {

MemoryHierarchy::MemoryHierarchy(unsigned num_cores,
                                 const MemSysParams& params,
                                 StatRegistry* stats)
    : params_(params),
      l2_(CacheGeometry{params.l2.sets, params.l2.ways,
                        ReplacementPolicy::kLru},
          /*replacement_seed=*/11),
      l2_banks_(std::max(1u, params.l2.banks)),
      l2_mshr_(params.l2.mshrs),
      bus_(params.bus),
      stats_(stats) {
  assert(num_cores >= 1);
  assert(stats != nullptr);
  assert(params.dram_channels >= 1);

  cores_.reserve(num_cores);
  for (unsigned c = 0; c < num_cores; ++c) {
    CorePrivate priv;
    priv.l1i = std::make_unique<SetAssocCache>(
        CacheGeometry{params.l1i.sets, params.l1i.ways,
                      ReplacementPolicy::kLru},
        /*replacement_seed=*/100 + c);
    priv.l1d = std::make_unique<SetAssocCache>(
        CacheGeometry{params.l1d.sets, params.l1d.ways,
                      ReplacementPolicy::kLru},
        /*replacement_seed=*/200 + c);
    priv.mshr = std::make_unique<MshrFile>(params.l1d.mshrs);
    priv.prefetcher = std::make_unique<StridePrefetcher>(params.prefetch);
    if (params.tlb.enabled) {
      priv.dtlb = std::make_unique<Tlb>(params.tlb);
    }
    cores_.push_back(std::move(priv));
  }

  for (unsigned ch = 0; ch < params.dram_channels; ++ch) {
    if (params.has_llc) {
      llc_.push_back(std::make_unique<LlcSlice>(params.llc, 300 + ch));
    }
    dram_.push_back(
        std::make_unique<DramController>(params.dram, params.freq_ghz));
  }

  c_l1d_hit_ = &stats->counter("mem.l1d.hit");
  c_l1d_miss_ = &stats->counter("mem.l1d.miss");
  c_l1i_hit_ = &stats->counter("mem.l1i.hit");
  c_l1i_miss_ = &stats->counter("mem.l1i.miss");
  c_l2_hit_ = &stats->counter("mem.l2.hit");
  c_l2_miss_ = &stats->counter("mem.l2.miss");
  c_llc_hit_ = &stats->counter("mem.llc.hit");
  c_llc_miss_ = &stats->counter("mem.llc.miss");
  c_writebacks_ = &stats->counter("mem.writebacks");
  c_prefetches_ = &stats->counter("mem.prefetches");
  c_tlb_l2_hit_ = &stats->counter("mem.tlb.l2_hit");
  c_tlb_miss_ = &stats->counter("mem.tlb.miss");
}

Cycle MemoryHierarchy::translate(unsigned core, Addr addr, Cycle now) {
  CorePrivate& priv = cores_[core];
  if (!priv.dtlb) return now;
  switch (priv.dtlb->access(addr)) {
    case Tlb::Outcome::kL1Hit:
      return now;
    case Tlb::Outcome::kL2Hit:
      c_tlb_l2_hit_->add();
      return now + params_.tlb.l2_latency;
    case Tlb::Outcome::kMiss: {
      c_tlb_miss_->add();
      // Page-table walk: `walk_levels` dependent loads. Like Rocket's PTW,
      // walk accesses go through the walker core's L1D — page-table lines
      // are heavily reused (one line covers 8 PTEs = 32 KiB of reach), so
      // warm walks are L1 hits and only cold page-table lines pay the
      // shared-path cost. Synthetic addresses: upper levels reuse a tiny
      // region, the leaf level spreads with the page number.
      const std::uint64_t page = addr >> params_.tlb.page_bits;
      Cycle t = now + params_.tlb.l2_latency;
      const Addr pt_base =
          0xF800'0000 + static_cast<Addr>(core) * 0x0100'0000;
      for (unsigned level = 0; level < params_.tlb.walk_levels; ++level) {
        const std::uint64_t index = page >> (9 * (params_.tlb.walk_levels -
                                                  1 - level));
        const Addr pte = lineAddr(pt_base +
                                  static_cast<Addr>(level) * 0x0020'0000 +
                                  index * 8);
        if (Cycle line_ready = 0;
            priv.l1d->touchIfPresent(pte, false, &line_ready)) {
          t = std::max(t, line_ready) + params_.l1d.latency;
        } else {
          t = accessShared(pte, /*is_store=*/false, t + params_.l1d.latency)
                  .complete +
              params_.l1d.latency;
          priv.l1d->fill(pte, /*dirty=*/false, t);
        }
      }
      return t;
    }
  }
  return now;
}

unsigned MemoryHierarchy::channelOf(Addr line) const {
  return static_cast<unsigned>((line >> kLineShift) % dram_.size());
}

unsigned MemoryHierarchy::l2BankOf(Addr line) const {
  return static_cast<unsigned>((line >> kLineShift) % l2_banks_.size());
}

void MemoryHierarchy::writebackFromL2(Addr victim_line, Cycle now) {
  c_writebacks_->add();
  // Dirty L2 victim drains over the bus to the memory side; posted.
  const Cycle on_bus = bus_.transferLine(now);
  const unsigned ch = channelOf(victim_line);
  if (params_.has_llc) {
    // Write-allocate into the LLC; its own dirty victim goes to DRAM.
    const LlcSlice::Result r =
        llc_[ch]->access(victim_line, /*is_store=*/true, on_bus);
    if (r.writeback) dram_[ch]->write(r.victim_line, r.complete);
  } else {
    dram_[ch]->write(victim_line, on_bus);
  }
}

MemoryHierarchy::BeyondL2Result MemoryHierarchy::accessBeyondL2(
    Addr line, bool is_store, Cycle ready) {
  BeyondL2Result out;
  const Cycle req_done = bus_.sendRequest(ready);
  const unsigned ch = channelOf(line);

  Cycle data_at_edge = 0;
  if (params_.has_llc) {
    const LlcSlice::Result r = llc_[ch]->access(line, is_store, req_done);
    if (r.writeback) dram_[ch]->write(r.victim_line, r.complete);
    if (r.hit) {
      out.llc_hit = true;
      c_llc_hit_->add();
      data_at_edge = r.complete;
    } else {
      c_llc_miss_->add();
      data_at_edge = dram_[ch]->read(line, r.complete);
    }
  } else {
    data_at_edge = dram_[ch]->read(line, req_done);
  }

  out.complete = bus_.transferLine(data_at_edge);
  return out;
}

MemoryHierarchy::MemSideResult MemoryHierarchy::accessShared(Addr line,
                                                             bool is_store,
                                                             Cycle ready) {
  MemSideResult out;
  const unsigned bank = l2BankOf(line);
  const Cycle start = l2_banks_[bank].reserve(ready, params_.l2.bank_busy);

  if (Cycle line_ready = 0; l2_.touchIfPresent(line, is_store, &line_ready)) {
    c_l2_hit_->add();
    out.l2_hit = true;
    out.complete = std::max(start, line_ready) + params_.l2.latency;
    return out;
  }
  c_l2_miss_->add();

  const MshrFile::Admission adm = l2_mshr_.admit(line, start);
  if (adm.merged) {
    out.complete = std::max(adm.merged_fill, start + params_.l2.latency);
    return out;
  }

  const BeyondL2Result beyond = accessBeyondL2(
      line, /*is_store=*/false, adm.ready + params_.l2.latency);
  out.llc_hit = beyond.llc_hit;
  out.complete = beyond.complete;

  const CacheAccess fill = l2_.fill(line, is_store, out.complete);
  if (fill.writeback) writebackFromL2(fill.victim_line, out.complete);

  l2_mshr_.complete(line, out.complete);
  return out;
}

MemAccess MemoryHierarchy::load(unsigned core, Addr pc, Addr addr,
                                Cycle now) {
  assert(core < cores_.size());
  CorePrivate& priv = cores_[core];
  const Addr line = lineAddr(addr);
  MemAccess out;

  issuePrefetches(core, pc, addr, now);
  now = translate(core, addr, now);

  if (Cycle line_ready = 0;
      priv.l1d->touchIfPresent(line, /*is_store=*/false, &line_ready)) {
    c_l1d_hit_->add();
    out.l1_hit = true;
    out.complete = std::max(now, line_ready) + params_.l1d.latency;
    return out;
  }
  c_l1d_miss_->add();

  const MshrFile::Admission adm = priv.mshr->admit(line, now);
  if (adm.merged) {
    out.complete = std::max(adm.merged_fill, now + params_.l1d.latency);
    return out;
  }

  const MemSideResult mem = accessShared(
      line, /*is_store=*/false, adm.ready + params_.l1d.latency);
  out.l2_hit = mem.l2_hit;
  out.llc_hit = mem.llc_hit;
  // The returning line streams through the L1 refill port, then fill-to-use.
  const unsigned beats = bus_.beatsPerLine();
  out.complete = priv.refill.reserve(mem.complete, beats) + beats +
                 params_.l1d.latency;

  const CacheAccess fill =
      priv.l1d->fill(line, /*dirty=*/false, out.complete);
  if (fill.writeback) {
    // Dirty L1 victim lands in L2: charge an L2 bank write slot.
    const unsigned bank = l2BankOf(fill.victim_line);
    l2_banks_[bank].reserve(now, params_.l2.bank_busy);
    const CacheAccess l2fill = l2_.fill(fill.victim_line, /*dirty=*/true, now);
    if (l2fill.writeback) writebackFromL2(l2fill.victim_line, now);
  }
  priv.mshr->complete(line, out.complete);
  return out;
}

MemAccess MemoryHierarchy::store(unsigned core, Addr pc, Addr addr,
                                 Cycle now) {
  assert(core < cores_.size());
  CorePrivate& priv = cores_[core];
  const Addr line = lineAddr(addr);
  MemAccess out;

  issuePrefetches(core, pc, addr, now);
  now = translate(core, addr, now);

  if (Cycle line_ready = 0;
      priv.l1d->touchIfPresent(line, /*is_store=*/true, &line_ready)) {
    c_l1d_hit_->add();
    out.l1_hit = true;
    out.complete = std::max(now, line_ready) + params_.l1d.latency;
    return out;
  }
  c_l1d_miss_->add();

  // Write-allocate: fetch the line, then retire the store into it.
  const MshrFile::Admission adm = priv.mshr->admit(line, now);
  if (adm.merged) {
    out.complete = std::max(adm.merged_fill, now + params_.l1d.latency);
    return out;
  }
  const MemSideResult mem = accessShared(
      line, /*is_store=*/false, adm.ready + params_.l1d.latency);
  out.l2_hit = mem.l2_hit;
  out.llc_hit = mem.llc_hit;
  const unsigned beats = bus_.beatsPerLine();
  out.complete = priv.refill.reserve(mem.complete, beats) + beats +
                 params_.l1d.latency;

  const CacheAccess fill = priv.l1d->fill(line, /*dirty=*/true, out.complete);
  if (fill.writeback) {
    const unsigned bank = l2BankOf(fill.victim_line);
    l2_banks_[bank].reserve(now, params_.l2.bank_busy);
    const CacheAccess l2fill = l2_.fill(fill.victim_line, /*dirty=*/true, now);
    if (l2fill.writeback) writebackFromL2(l2fill.victim_line, now);
  }
  priv.mshr->complete(line, out.complete);
  return out;
}

MemAccess MemoryHierarchy::ifetch(unsigned core, Addr pc, Cycle now) {
  assert(core < cores_.size());
  CorePrivate& priv = cores_[core];
  const Addr line = lineAddr(pc);
  MemAccess out;

  if (Cycle line_ready = 0;
      priv.l1i->touchIfPresent(line, /*is_store=*/false, &line_ready)) {
    c_l1i_hit_->add();
    out.l1_hit = true;
    out.complete = std::max(now, line_ready) + params_.l1i.latency;
    return out;
  }
  c_l1i_miss_->add();

  // Instruction fetch is blocking (no L1I MSHR): straight to the shared L2.
  const MemSideResult mem =
      accessShared(line, /*is_store=*/false, now + params_.l1i.latency);
  out.l2_hit = mem.l2_hit;
  out.llc_hit = mem.llc_hit;
  out.complete = mem.complete + params_.l1i.latency;
  priv.l1i->fill(line, /*dirty=*/false, out.complete);
  return out;
}

void MemoryHierarchy::issuePrefetches(unsigned core, Addr pc, Addr addr,
                                      Cycle now) {
  CorePrivate& priv = cores_[core];
  if (!priv.prefetcher->params().enabled) return;
  prefetch_scratch_.clear();
  priv.prefetcher->observe(pc, addr, &prefetch_scratch_);
  for (const Addr line : prefetch_scratch_) {
    if (priv.l1d->probe(line) || l2_.probe(line)) continue;
    c_prefetches_->add();
    // Background fill into L2: charges the shared path but nobody waits.
    const BeyondL2Result r = accessBeyondL2(line, /*is_store=*/false, now);
    const CacheAccess fill = l2_.fill(line, /*dirty=*/false, r.complete);
    if (fill.writeback) writebackFromL2(fill.victim_line, r.complete);
  }
}

void MemoryHierarchy::warmWritebackFromL2(Addr victim_line) {
  c_writebacks_->add();
  if (params_.has_llc) {
    // Write-allocate into the LLC slice; the drain to DRAM carries no
    // functional state (DRAM row history is timing-only), so it stops here.
    llc_[channelOf(victim_line)]->warmAccess(victim_line, /*is_store=*/true);
  }
}

void MemoryHierarchy::warmShared(Addr line, bool is_store) {
  if (Cycle ready = 0; l2_.touchIfPresent(line, is_store, &ready)) {
    c_l2_hit_->add();
    return;
  }
  c_l2_miss_->add();
  if (params_.has_llc) {
    const LlcSlice::Result r =
        llc_[channelOf(line)]->warmAccess(line, /*is_store=*/false);
    if (r.hit) {
      c_llc_hit_->add();
    } else {
      c_llc_miss_->add();
    }
  }
  const CacheAccess fill = l2_.fill(line, is_store, /*ready=*/0);
  if (fill.writeback) warmWritebackFromL2(fill.victim_line);
}

void MemoryHierarchy::warmTranslate(unsigned core, Addr addr) {
  CorePrivate& priv = cores_[core];
  if (!priv.dtlb) return;
  switch (priv.dtlb->access(addr)) {
    case Tlb::Outcome::kL1Hit:
      return;
    case Tlb::Outcome::kL2Hit:
      c_tlb_l2_hit_->add();
      return;
    case Tlb::Outcome::kMiss: {
      c_tlb_miss_->add();
      // Same synthetic walk addresses as translate(), so warmed page-table
      // lines are exactly the ones a detailed walk would hit.
      const std::uint64_t page = addr >> params_.tlb.page_bits;
      const Addr pt_base =
          0xF800'0000 + static_cast<Addr>(core) * 0x0100'0000;
      for (unsigned level = 0; level < params_.tlb.walk_levels; ++level) {
        const std::uint64_t index = page >> (9 * (params_.tlb.walk_levels -
                                                  1 - level));
        const Addr pte = lineAddr(pt_base +
                                  static_cast<Addr>(level) * 0x0020'0000 +
                                  index * 8);
        if (Cycle ready = 0; priv.l1d->touchIfPresent(pte, false, &ready)) {
          // warmed walk line already resident
        } else {
          warmShared(pte, /*is_store=*/false);
          priv.l1d->fill(pte, /*dirty=*/false, /*ready=*/0);
        }
      }
      return;
    }
  }
}

void MemoryHierarchy::warmDemand(unsigned core, Addr pc, Addr addr,
                                 bool is_store) {
  CorePrivate& priv = cores_[core];
  const Addr line = lineAddr(addr);

  // Train the prefetcher and functionally install what it would fetch, so
  // detailed windows start with the same prefetch coverage as a full run.
  if (priv.prefetcher->params().enabled) {
    prefetch_scratch_.clear();
    priv.prefetcher->observe(pc, addr, &prefetch_scratch_);
    for (const Addr pline : prefetch_scratch_) {
      if (priv.l1d->probe(pline) || l2_.probe(pline)) continue;
      c_prefetches_->add();
      if (params_.has_llc) {
        const LlcSlice::Result r =
            llc_[channelOf(pline)]->warmAccess(pline, /*is_store=*/false);
        if (r.hit) {
          c_llc_hit_->add();
        } else {
          c_llc_miss_->add();
        }
      }
      const CacheAccess fill = l2_.fill(pline, /*dirty=*/false, /*ready=*/0);
      if (fill.writeback) warmWritebackFromL2(fill.victim_line);
    }
  }

  warmTranslate(core, addr);

  if (Cycle ready = 0; priv.l1d->touchIfPresent(line, is_store, &ready)) {
    c_l1d_hit_->add();
    return;
  }
  c_l1d_miss_->add();
  // Write-allocate like the detailed path: the shared levels see a clean
  // fetch, only the L1 copy carries the store's dirtiness.
  warmShared(line, /*is_store=*/false);
  const CacheAccess fill = priv.l1d->fill(line, is_store, /*ready=*/0);
  if (fill.writeback) {
    const CacheAccess l2fill =
        l2_.fill(fill.victim_line, /*dirty=*/true, /*ready=*/0);
    if (l2fill.writeback) warmWritebackFromL2(l2fill.victim_line);
  }
}

void MemoryHierarchy::warmLoad(unsigned core, Addr pc, Addr addr) {
  assert(core < cores_.size());
  warmDemand(core, pc, addr, /*is_store=*/false);
}

void MemoryHierarchy::warmStore(unsigned core, Addr pc, Addr addr) {
  assert(core < cores_.size());
  warmDemand(core, pc, addr, /*is_store=*/true);
}

void MemoryHierarchy::warmIfetch(unsigned core, Addr pc) {
  assert(core < cores_.size());
  CorePrivate& priv = cores_[core];
  const Addr line = lineAddr(pc);
  if (Cycle ready = 0;
      priv.l1i->touchIfPresent(line, /*is_store=*/false, &ready)) {
    c_l1i_hit_->add();
    return;
  }
  c_l1i_miss_->add();
  warmShared(line, /*is_store=*/false);
  priv.l1i->fill(line, /*dirty=*/false, /*ready=*/0);
}

Cycle MemoryHierarchy::bulkCopy(unsigned core, Addr src, Addr dst,
                                std::uint64_t bytes, Cycle now) {
  // Model the MPI shared-memory copy as a pipelined line-by-line read of the
  // source and write of the destination, issued by `core`. Lines are issued
  // back-to-back (the copy loop is trivially strided), so throughput is
  // bounded by the shared levels, not by dependency chains.
  if (bytes == 0) return now;
  const std::uint64_t lines = (bytes + kLineBytes - 1) / kLineBytes;
  Cycle t = now;
  Cycle done = now;
  const Addr copy_pc = 0xC0DE000;  // synthetic PC: lets prefetchers lock on
  for (std::uint64_t i = 0; i < lines; ++i) {
    const MemAccess rd = load(core, copy_pc, src + i * kLineBytes, t);
    const MemAccess wr = store(core, copy_pc + 4, dst + i * kLineBytes, t);
    done = std::max(rd.complete, wr.complete);
    // The copy loop issues one line per few cycles; it never outruns the L1
    // but is not serialized on the previous line's fill.
    t += 4;
  }
  return std::max(done, t);
}

}  // namespace bridge
