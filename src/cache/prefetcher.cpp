#include "cache/prefetcher.h"

#include <cassert>

namespace bridge {

StridePrefetcher::StridePrefetcher(const PrefetcherParams& params)
    : params_(params), table_(params.table_entries) {
  assert(params.table_entries != 0 &&
         (params.table_entries & (params.table_entries - 1)) == 0);
}

void StridePrefetcher::observe(Addr pc, Addr addr, std::vector<Addr>* out) {
  if (!params_.enabled) return;
  Entry& e = table_[(pc >> 2) & (table_.size() - 1)];

  if (!e.valid || e.pc != pc) {
    e.valid = true;
    e.pc = pc;
    e.last_addr = addr;
    e.stride = 0;
    e.confidence = 0;
    return;
  }

  const std::int64_t stride =
      static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(e.last_addr);
  e.last_addr = addr;
  if (stride == 0) return;

  if (stride == e.stride) {
    if (e.confidence < 15) ++e.confidence;
  } else {
    e.stride = stride;
    e.confidence = 1;
    return;
  }

  if (e.confidence >= params_.min_confidence && out != nullptr) {
    Addr next = addr;
    Addr last_line = lineAddr(addr);
    for (unsigned d = 0; d < params_.degree; ++d) {
      next = static_cast<Addr>(static_cast<std::int64_t>(next) + e.stride);
      const Addr line = lineAddr(next);
      if (line != last_line) {
        out->push_back(line);
        last_line = line;
        ++issued_;
      }
    }
  }
}

}  // namespace bridge
