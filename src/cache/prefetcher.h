// Hardware prefetcher models.
//
// The SpacemiT K1 and SG2042 both ship stride prefetchers; FireSim's Rocket
// and BOOM configurations in the paper do not. Giving the silicon reference
// platforms a per-PC stride prefetcher (and leaving it off for the FireSim
// models) reproduces part of the streaming-bandwidth advantage the paper
// measures on real hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace bridge {

struct PrefetcherParams {
  bool enabled = false;
  unsigned table_entries = 64;  // per-PC stride table (power of two)
  unsigned degree = 2;          // lines fetched ahead once a stride locks
  unsigned min_confidence = 2;  // strides seen before issuing
};

/// Classic reference-prediction-table stride prefetcher. The owner calls
/// observe() on every L1D access and issues the returned candidate line
/// addresses to the memory side.
class StridePrefetcher {
 public:
  explicit StridePrefetcher(const PrefetcherParams& params);

  /// Observe a demand access (pc, byte address). Appends up to `degree`
  /// prefetch candidate *line* addresses to `out`.
  void observe(Addr pc, Addr addr, std::vector<Addr>* out);

  std::uint64_t issued() const { return issued_; }
  const PrefetcherParams& params() const { return params_; }

 private:
  struct Entry {
    Addr pc = 0;
    Addr last_addr = 0;
    std::int64_t stride = 0;
    unsigned confidence = 0;
    bool valid = false;
  };

  PrefetcherParams params_;
  std::vector<Entry> table_;
  std::uint64_t issued_ = 0;
};

}  // namespace bridge
