// TLB model.
//
// Table 5 of the paper specifies TLB geometry for both FireSim models
// (32-entry fully-associative L1 D/I TLBs; BOOM adds a 1024-entry
// direct-mapped L2 TLB) while the silicon vendors disclose nothing — one
// of the undisclosed-parameter gaps the paper calls out. The model charges
// translation cost per demand access: an L1 TLB hit is free (folded into
// the cache hit latency), an L2 TLB hit costs a few cycles, and a full
// miss launches a page-table walk whose loads go through the *memory
// hierarchy* (so walk cost scales with the platform's memory latency, and
// walks from multiple cores contend).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace bridge {

struct TlbParams {
  bool enabled = false;
  unsigned l1_entries = 32;    // fully associative
  unsigned l2_entries = 0;     // direct mapped; 0 = no L2 TLB
  unsigned l2_latency = 4;     // cycles on an L1-miss/L2-hit
  unsigned walk_levels = 2;    // dependent memory accesses per walk
  unsigned page_bits = 12;     // 4 KiB pages
};

/// One core's TLB state. The owner (MemoryHierarchy) performs the walk
/// accesses; this class only tracks residency.
class Tlb {
 public:
  explicit Tlb(const TlbParams& params);

  enum class Outcome { kL1Hit, kL2Hit, kMiss };

  /// Look up the page of `addr`, updating recency/registration.
  Outcome access(Addr addr);

  const TlbParams& params() const { return params_; }
  std::uint64_t l1Hits() const { return l1_hits_; }
  std::uint64_t l2Hits() const { return l2_hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::uint64_t pageOf(Addr addr) const { return addr >> params_.page_bits; }

  TlbParams params_;
  // L1 kept as parallel arrays rather than an array of {page, lru} structs:
  // the fully-associative match scan and the LRU victim scan then run over
  // contiguous same-typed words and vectorize (the scans dominate
  // translation cost on TLB-miss-heavy kernels — bench/sim_speed profile).
  std::vector<std::uint64_t> l1_page_;  // fully associative, LRU
  std::vector<std::uint64_t> l1_lru_;
  std::vector<std::uint64_t> l2_;  // direct mapped, tag = page number
  // MRU filter: streaming access touches the same 4 KiB page dozens of
  // times in a row; remembering the last-hit slot skips the associative
  // scan. Pure shortcut — the slot the previous access touched cannot have
  // been evicted since (only access() evicts), so outcome, LRU ticks, and
  // victim choice are bit-identical to the plain scan.
  std::uint64_t mru_page_ = ~std::uint64_t{0};
  std::size_t mru_slot_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t l1_hits_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace bridge
