// Miss-status holding registers.
//
// An MSHR file bounds the number of outstanding misses a cache can sustain.
// A second miss to an in-flight line merges (completes with the original
// fill); a miss with no free register back-pressures the requester until the
// oldest in-flight miss completes. MSHR count is one of the knobs the paper
// calls out as needed to close the MILK-V memory gap ("higher cache MSHRs").
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace bridge {

class MshrFile {
 public:
  explicit MshrFile(unsigned entries);

  struct Admission {
    Cycle ready = 0;     // cycle at which the miss may proceed to the next
                         // level (>= request time; later if we had to wait)
    bool merged = false; // the line was already in flight
    Cycle merged_fill = 0;  // completion of the earlier fill if merged
  };

  /// Try to admit a miss for `line_addr` at cycle `now`.
  Admission admit(Addr line_addr, Cycle now);

  /// Record the fill completion for the register admitted for `line_addr`.
  /// Must be called once per non-merged admission.
  void complete(Addr line_addr, Cycle fill_cycle);

  unsigned entries() const { return static_cast<unsigned>(slots_.size()); }
  std::uint64_t stallEvents() const { return stall_events_; }
  std::uint64_t merges() const { return merges_; }

 private:
  struct Slot {
    Addr line = 0;
    Cycle fill = 0;   // completion; kCycleNever while still being resolved
    bool busy = false;
  };

  std::vector<Slot> slots_;
  std::uint64_t stall_events_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace bridge
