#include "cache/bus.h"

#include <algorithm>
#include <cassert>

namespace bridge {

SystemBus::SystemBus(const BusParams& params)
    : params_(params),
      beats_per_line_(kLineBytes / std::max(1u, params.width_bits / 8)) {
  assert(params.width_bits >= 8 && params.width_bits % 8 == 0);
  if (beats_per_line_ == 0) beats_per_line_ = 1;
}

Cycle SystemBus::sendRequest(Cycle ready) {
  return cmd_.reserve(ready, params_.request_cycles) +
         params_.request_cycles;
}

Cycle SystemBus::transferLine(Cycle ready) {
  return data_.reserve(ready, beats_per_line_) + beats_per_line_;
}

}  // namespace bridge
