// Full SoC memory hierarchy timing model.
//
// Topology (matching the paper's Chipyard/FireSim targets, Table 4/5):
//
//   core i --> private L1I / L1D (+ MSHRs, optional stride prefetcher)
//          \-> shared banked L2 (the "L2 Banks" column of Table 4)
//           -> system bus (64/128-bit)
//           -> per-channel [optional LLC slice] + DRAM controller
//
// Timing is a one-pass occupancy model: every shared resource (L2 bank, bus,
// LLC bank, DRAM bank/data-bus/queues) keeps next-free state, so concurrent
// cores contend realistically. State (which lines are where, dirtiness,
// writebacks) is tracked exactly.
//
// Coherence: L1s are private and the hierarchy does not simulate an
// invalidation protocol; cross-core communication timing is charged by the
// MPI runtime through bulkCopy(), which moves payloads through the shared
// levels. This matches the workloads, which share no writable lines outside
// MPI buffers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/bus.h"
#include "cache/cache.h"
#include "cache/llc.h"
#include "cache/mshr.h"
#include "cache/prefetcher.h"
#include "cache/tlb.h"
#include "sim/calendar.h"
#include "dram/controller.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace bridge {

struct L1Params {
  unsigned sets = 64;
  unsigned ways = 8;
  unsigned latency = 2;  // hit latency, cycles
  unsigned mshrs = 4;
};

struct L2Params {
  unsigned sets = 1024;
  unsigned ways = 8;
  unsigned latency = 14;    // bank hit latency, cycles
  unsigned banks = 1;       // Table 4 "L2 Banks"
  unsigned bank_busy = 2;   // bank occupancy per access
  unsigned mshrs = 8;
};

struct MemSysParams {
  L1Params l1i;
  L1Params l1d;
  L2Params l2;
  BusParams bus;
  bool has_llc = false;
  LlcParams llc;            // per-channel slice
  DramTimings dram;         // per-channel device timings
  unsigned dram_channels = 1;
  PrefetcherParams prefetch;
  TlbParams tlb;            // per-core data TLB
  double freq_ghz = 1.6;
};

/// Outcome of one demand access, for core models and tests.
struct MemAccess {
  Cycle complete = 0;  // data ready (load/ifetch) or write retired (store)
  bool l1_hit = false;
  bool l2_hit = false;
  bool llc_hit = false;
};

class MemoryHierarchy {
 public:
  MemoryHierarchy(unsigned num_cores, const MemSysParams& params,
                  StatRegistry* stats);

  MemAccess load(unsigned core, Addr pc, Addr addr, Cycle now);
  MemAccess store(unsigned core, Addr pc, Addr addr, Cycle now);
  MemAccess ifetch(unsigned core, Addr pc, Cycle now);

  /// Functional-only accesses for sampled fast-forward (sim/sampling):
  /// they update every structure that carries long-range history — cache
  /// residency/LRU/dirtiness at all levels, TLB entries and functional
  /// page-table lines, prefetcher strides, hit/miss counters — but charge
  /// no timing whatsoever (no MSHR, bus, bank calendar, refill port, or
  /// DRAM state), so a warmed period can never delay a later detailed
  /// access.
  void warmLoad(unsigned core, Addr pc, Addr addr);
  void warmStore(unsigned core, Addr pc, Addr addr);
  void warmIfetch(unsigned core, Addr pc);

  /// Cost of moving `bytes` from `src` to `dst` on behalf of `core`
  /// (the MPI runtime's shared-memory copy). Returns completion cycle.
  Cycle bulkCopy(unsigned core, Addr src, Addr dst, std::uint64_t bytes,
                 Cycle now);

  const MemSysParams& params() const { return params_; }
  unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }

  /// Idle-hierarchy latencies, used by tests and the MPI cost model.
  Cycle l1HitLatency() const { return params_.l1d.latency; }
  Cycle l2HitLatency() const {
    return params_.l1d.latency + params_.l2.latency;
  }

 private:
  struct CorePrivate {
    std::unique_ptr<SetAssocCache> l1i;
    std::unique_ptr<SetAssocCache> l1d;
    std::unique_ptr<MshrFile> mshr;
    std::unique_ptr<StridePrefetcher> prefetcher;
    std::unique_ptr<Tlb> dtlb;
    // L1D refill port: each incoming line occupies the array for
    // line-size / bus-width beats, so miss *count* costs core-local
    // bandwidth even when miss latency overlaps.
    BusyCalendar refill;
  };

  /// Translate `addr` for `core` at `now`; returns when translation is
  /// available (page-walk loads are charged through the shared levels).
  Cycle translate(unsigned core, Addr addr, Cycle now);

  /// Shared path: request leaves L1 at `ready`; returns data-at-L1 cycle.
  struct MemSideResult {
    Cycle complete = 0;
    bool l2_hit = false;
    bool llc_hit = false;
  };
  MemSideResult accessShared(Addr line, bool is_store, Cycle ready);

  /// Memory side beyond L2 (bus -> LLC -> DRAM). Returns data-at-L2 cycle.
  struct BeyondL2Result {
    Cycle complete = 0;
    bool llc_hit = false;
  };
  BeyondL2Result accessBeyondL2(Addr line, bool is_store, Cycle ready);

  void writebackFromL2(Addr victim_line, Cycle now);
  void issuePrefetches(unsigned core, Addr pc, Addr addr, Cycle now);

  /// Functional counterparts of the demand path (see warmLoad).
  void warmDemand(unsigned core, Addr pc, Addr addr, bool is_store);
  void warmShared(Addr line, bool is_store);
  void warmWritebackFromL2(Addr victim_line);
  void warmTranslate(unsigned core, Addr addr);
  unsigned channelOf(Addr line) const;
  unsigned l2BankOf(Addr line) const;

  MemSysParams params_;
  std::vector<CorePrivate> cores_;

  SetAssocCache l2_;
  std::vector<BusyCalendar> l2_banks_;
  MshrFile l2_mshr_;
  SystemBus bus_;
  std::vector<std::unique_ptr<LlcSlice>> llc_;
  std::vector<std::unique_ptr<DramController>> dram_;

  StatRegistry* stats_;
  Counter* c_l1d_hit_;
  Counter* c_l1d_miss_;
  Counter* c_l1i_hit_;
  Counter* c_l1i_miss_;
  Counter* c_l2_hit_;
  Counter* c_l2_miss_;
  Counter* c_llc_hit_;
  Counter* c_llc_miss_;
  Counter* c_writebacks_;
  Counter* c_prefetches_;
  Counter* c_tlb_l2_hit_;
  Counter* c_tlb_miss_;
  std::vector<Addr> prefetch_scratch_;
};

}  // namespace bridge
