// Set-associative cache tag array with LRU or random replacement.
//
// This models *state* (which lines are resident, dirty, and when their data
// actually arrives); timing is layered on top by MemoryHierarchy. Each line
// carries a `ready` cycle stamped at fill time, so an access that hits a
// line whose fill is still in flight waits for it — which is what makes
// memory-level parallelism (and its absence) come out right in the
// independent-miss microbenchmarks (MIM, MIM2).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace bridge {

enum class ReplacementPolicy : std::uint8_t { kLru, kRandom };

struct CacheGeometry {
  unsigned sets = 64;
  unsigned ways = 8;
  ReplacementPolicy repl = ReplacementPolicy::kLru;

  std::uint64_t sizeBytes() const {
    return std::uint64_t{sets} * ways * kLineBytes;
  }
};

/// Result of an allocating access or fill.
struct CacheAccess {
  bool hit = false;
  Cycle ready_at = 0;      // when the line's data is available (hits)
  bool writeback = false;  // a dirty victim was evicted
  Addr victim_line = 0;    // line address of the dirty victim
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geom,
                         std::uint64_t replacement_seed = 1);

  /// Non-allocating lookup; does not touch replacement state.
  bool probe(Addr line_addr) const;

  /// Hit path: the line must be present. Updates LRU and dirtiness and
  /// returns the cycle at which the line's data is available.
  Cycle touch(Addr line_addr, bool is_store);

  /// Fused probe + touch: one set scan instead of two. If the line is
  /// resident, updates LRU/dirtiness exactly like touch(), stores its
  /// ready cycle in `*ready`, and returns true; otherwise leaves all state
  /// (including `*ready`) untouched and returns false. Every demand lookup
  /// in the hierarchy is a probe() immediately followed by touch() on hit
  /// — the second identical scan is pure overhead (bench/sim_speed
  /// profile), so the hot paths use this instead.
  bool touchIfPresent(Addr line_addr, bool is_store, Cycle* ready);

  /// Install a line whose data arrives at `ready`. Returns writeback info
  /// for a dirty victim. If the line is already present, only updates
  /// dirtiness (a prefetch raced a demand fill).
  CacheAccess fill(Addr line_addr, bool dirty, Cycle ready);

  /// Convenience allocating access (probe + touch-or-fill with ready = 0).
  /// Used by the LLC slice and by tests that don't track fill timing.
  CacheAccess access(Addr line_addr, bool is_store);

  /// Drop a line if present; returns true if it was present and dirty.
  bool invalidate(Addr line_addr);

  const CacheGeometry& geometry() const { return geom_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double missRate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(misses_) /
                            static_cast<double>(total);
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    Cycle ready = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t setBase(Addr line_addr) const;
  std::uint64_t tagOf(Addr line_addr) const;
  Line* find(Addr line_addr);
  const Line* find(Addr line_addr) const;
  Line& pickVictim(std::size_t base);

  CacheGeometry geom_;
  // sets is asserted to be a power of two, so the set/tag split is a
  // shift+mask — measurably cheaper than div/mod in the per-access lookup,
  // the hottest path of the whole hierarchy (bench/sim_speed profile).
  unsigned set_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  Xorshift64Star rng_;
};

}  // namespace bridge
