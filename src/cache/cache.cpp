#include "cache/cache.h"

#include <cassert>

namespace bridge {

SetAssocCache::SetAssocCache(const CacheGeometry& geom,
                             std::uint64_t replacement_seed)
    : geom_(geom),
      lines_(std::size_t{geom.sets} * geom.ways),
      rng_(replacement_seed) {
  assert(geom.sets != 0 && (geom.sets & (geom.sets - 1)) == 0);
  assert(geom.ways != 0);
  set_mask_ = geom.sets - 1;
  while ((1u << set_shift_) < geom.sets) ++set_shift_;
}

std::size_t SetAssocCache::setBase(Addr line_addr) const {
  const std::uint64_t line_index = line_addr >> kLineShift;
  return (line_index & set_mask_) * geom_.ways;
}

std::uint64_t SetAssocCache::tagOf(Addr line_addr) const {
  return (line_addr >> kLineShift) >> set_shift_;
}

SetAssocCache::Line* SetAssocCache::find(Addr line_addr) {
  const std::size_t base = setBase(line_addr);
  const std::uint64_t tag = tagOf(line_addr);
  for (unsigned w = 0; w < geom_.ways; ++w) {
    Line& l = lines_[base + w];
    if (l.valid && l.tag == tag) return &l;
  }
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(Addr line_addr) const {
  return const_cast<SetAssocCache*>(this)->find(line_addr);
}

SetAssocCache::Line& SetAssocCache::pickVictim(std::size_t base) {
  for (unsigned w = 0; w < geom_.ways; ++w) {
    if (!lines_[base + w].valid) return lines_[base + w];
  }
  if (geom_.repl == ReplacementPolicy::kRandom) {
    return lines_[base + rng_.nextBelow(geom_.ways)];
  }
  Line* victim = &lines_[base];
  for (unsigned w = 1; w < geom_.ways; ++w) {
    if (lines_[base + w].lru < victim->lru) victim = &lines_[base + w];
  }
  return *victim;
}

bool SetAssocCache::probe(Addr line_addr) const {
  return find(lineAddr(line_addr)) != nullptr;
}

Cycle SetAssocCache::touch(Addr line_addr, bool is_store) {
  Line* l = find(lineAddr(line_addr));
  assert(l != nullptr && "touch() on a non-resident line");
  l->lru = ++tick_;
  l->dirty = l->dirty || is_store;
  ++hits_;
  return l->ready;
}

bool SetAssocCache::touchIfPresent(Addr line_addr, bool is_store,
                                   Cycle* ready) {
  Line* l = find(lineAddr(line_addr));
  if (l == nullptr) return false;
  l->lru = ++tick_;
  l->dirty = l->dirty || is_store;
  ++hits_;
  *ready = l->ready;
  return true;
}

CacheAccess SetAssocCache::fill(Addr line_addr, bool dirty, Cycle ready) {
  line_addr = lineAddr(line_addr);
  CacheAccess out;
  if (Line* l = find(line_addr)) {
    // Already present (e.g. a prefetch raced a demand fill): keep the
    // earlier ready time, just merge dirtiness.
    l->dirty = l->dirty || dirty;
    out.hit = true;
    out.ready_at = l->ready;
    return out;
  }
  ++misses_;
  const std::size_t base = setBase(line_addr);
  Line& victim = pickVictim(base);
  if (victim.valid && victim.dirty) {
    out.writeback = true;
    const std::uint64_t set_index = base / geom_.ways;
    out.victim_line = ((victim.tag << set_shift_) | set_index) << kLineShift;
  }
  victim.valid = true;
  victim.dirty = dirty;
  victim.tag = tagOf(line_addr);
  victim.lru = ++tick_;
  victim.ready = ready;
  out.ready_at = ready;
  return out;
}

CacheAccess SetAssocCache::access(Addr line_addr, bool is_store) {
  line_addr = lineAddr(line_addr);
  CacheAccess out;
  if (touchIfPresent(line_addr, is_store, &out.ready_at)) {
    out.hit = true;
    return out;
  }
  return fill(line_addr, is_store, /*ready=*/0);
}

bool SetAssocCache::invalidate(Addr line_addr) {
  if (Line* l = find(lineAddr(line_addr))) {
    const bool was_dirty = l->dirty;
    l->valid = false;
    l->dirty = false;
    return was_dirty;
  }
  return false;
}

}  // namespace bridge
