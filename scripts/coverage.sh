#!/usr/bin/env bash
# Line-coverage gate for the tuning subsystem.
#
# Configures a BRIDGE_COVERAGE=ON build (gcov instrumentation, -O0 so
# inlining cannot hide lines), runs the `tune`-labeled tests — the suite
# that exercises src/tune/ — and fails if aggregate line coverage of
# src/tune/ falls below the floor (default 85%).
#
#   $ scripts/coverage.sh             # build-coverage/, floor 85
#   $ COVERAGE_FLOOR=90 scripts/coverage.sh
#   $ BUILD_DIR=/tmp/cov scripts/coverage.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-coverage}"
FLOOR="${COVERAGE_FLOOR:-85}"

cmake -B "$BUILD" -S "$ROOT" -DBRIDGE_COVERAGE=ON
cmake --build "$BUILD" -j "$(nproc)"

# Stale counters from a previous run would inflate the numbers.
find "$BUILD" -name '*.gcda' -delete

ctest --test-dir "$BUILD" -L tune --output-on-failure -j "$(nproc)"

OBJ_DIR="$BUILD/src/CMakeFiles/bridge.dir/tune"
if ! ls "$OBJ_DIR"/*.gcda >/dev/null 2>&1; then
  echo "error: no .gcda coverage data under $OBJ_DIR" >&2
  exit 1
fi

# Completeness: every src/tune/ translation unit must have been executed
# by the tune-labeled suite. A new objective added without tests would
# otherwise be invisible to the aggregate (no .gcda, no gcov report) and
# silently inflate the percentage.
for src in "$ROOT"/src/tune/*.cpp; do
  name="$(basename "$src")"
  if [ ! -f "$OBJ_DIR/$name.gcda" ]; then
    echo "error: $name has no coverage data — no tune-labeled test executes it" >&2
    exit 1
  fi
done

# gcov prints, per source file (including headers pulled into each TU):
#   File '<path>'
#   Lines executed:<pct>% of <count>
# Aggregate over everything under src/tune/ (sources and headers), taking
# each file's best-covered report when it appears in several TUs. The
# counters are named after the object files (tuner.cpp.gcno), so gcov is
# pointed at the .o files, not the sources.
cd "$BUILD"
gcov --no-output "$OBJ_DIR"/*.cpp.o 2>/dev/null |
  awk -v root="$ROOT/src/tune/" -v floor="$FLOOR" '
    /^File / {
      file = $0
      sub(/^File .\.?\/?/, "", file)
      gsub(/\x27/, "", file)
      in_tune = index(file, "src/tune/") > 0
      next
    }
    /^Lines executed:/ && in_tune {
      pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
      count = $0; sub(/.* of /, "", count)
      covered = pct / 100.0 * count
      if (covered > best_cov[file]) {
        best_cov[file] = covered
        best_tot[file] = count
      }
      in_tune = 0
    }
    END {
      total = 0; hit = 0
      for (f in best_tot) {
        printf "%6.2f%%  %5d lines  %s\n", \
               100.0 * best_cov[f] / best_tot[f], best_tot[f], f
        total += best_tot[f]
        hit += best_cov[f]
      }
      if (total == 0) {
        print "error: gcov reported no lines for src/tune/" > "/dev/stderr"
        exit 1
      }
      pct = 100.0 * hit / total
      printf "\nsrc/tune/ line coverage: %.2f%% (floor %s%%)\n", pct, floor
      if (pct < floor + 0) {
        print "FAIL: coverage below floor" > "/dev/stderr"
        exit 1
      }
      print "PASS"
    }'
