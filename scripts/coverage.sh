#!/usr/bin/env bash
# Line-coverage gate for the tuning, sweep, serve, sampling, and hwvar
# subsystems.
#
# Configures a BRIDGE_COVERAGE=ON build (gcov instrumentation, -O0 so
# inlining cannot hide lines), runs the `tune`-, `sweep`-, `chaos`-,
# `serve`-, `elastic`-, `sampling`-, `hwvar`-, and `recover`-labeled
# tests — the suites that exercise src/tune/, src/sweep/, src/serve/
# (including the elastic scheduler, worker, and admission journal),
# src/sim/sampling/, and src/sim/hwvar/ — and fails if aggregate line
# coverage of any subsystem falls below the floor (default 85%). Also
# smoke-tests the cache-fsck tool against a deliberately corrupted cache
# fixture, journal included.
#
#   $ scripts/coverage.sh             # build-coverage/, floor 85
#   $ COVERAGE_FLOOR=90 scripts/coverage.sh
#   $ BUILD_DIR=/tmp/cov scripts/coverage.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-coverage}"
FLOOR="${COVERAGE_FLOOR:-85}"

cmake -B "$BUILD" -S "$ROOT" -DBRIDGE_COVERAGE=ON
cmake --build "$BUILD" -j "$(nproc)"

# Stale counters from a previous run would inflate the numbers.
find "$BUILD" -name '*.gcda' -delete

ctest --test-dir "$BUILD" \
  -L 'tune|sweep|chaos|serve|elastic|sampling|hwvar|recover' \
  --output-on-failure -j "$(nproc)"

# cache-fsck end-to-end against a hand-corrupted fixture: a legacy flat
# garbage entry (fails the footer check), a sharded garbage entry, a stale
# temp file from an "interrupted" writer, and a stale shard lock file from
# a "killed" daemon. Report mode must flag the defects and exit 1; repair
# mode must delete them (and the lock litter) and exit 0; a re-check of
# the repaired directory must be clean.
FSCK="$BUILD/bench/cache_fsck"
FIXTURE="$BUILD/fsck-fixture"
rm -rf "$FIXTURE"
mkdir -p "$FIXTURE/de"
printf 'this is not a sealed cache entry' > "$FIXTURE/deadbeef00000001.json"
printf 'nor is this' > "$FIXTURE/de/deadbeef00000003.json"
printf 'half-written' > "$FIXTURE/de/deadbeef00000002.json.tmp.12345.0"
touch "$FIXTURE/de/.lock"
# Admission-journal defects in the same tree (DESIGN §5k): a torn tail on
# the active segment and a stale rotation temp. Report mode must flag
# them; repair mode must truncate/remove them.
mkdir -p "$FIXTURE/journal"
printf '#bridge-journal-1 admit len=999 crc=deadbeefdeadbeef\ntorn' \
  > "$FIXTURE/journal/seg-00000001.wal"
printf 'interrupted rotation' > "$FIXTURE/journal/seg-00000002.wal.tmp.12345"
if "$FSCK" "$FIXTURE"; then
  echo "error: cache_fsck reported a corrupted fixture as clean" >&2
  exit 1
fi
"$FSCK" --repair "$FIXTURE"
"$FSCK" "$FIXTURE"
echo "cache-fsck fixture: PASS"

# Per-subsystem coverage: completeness first — every translation unit of
# the subsystem must have been executed (a new file added without tests
# would otherwise have no .gcda, no gcov report, and silently inflate the
# percentage) — then the aggregate line floor.
check_subsystem() {
  local sub="$1"
  local obj_dir="$BUILD/src/CMakeFiles/bridge.dir/$sub"

  if ! ls "$obj_dir"/*.gcda >/dev/null 2>&1; then
    echo "error: no .gcda coverage data under $obj_dir" >&2
    exit 1
  fi

  local src name
  for src in "$ROOT/src/$sub"/*.cpp; do
    name="$(basename "$src")"
    if [ ! -f "$obj_dir/$name.gcda" ]; then
      echo "error: $sub/$name has no coverage data — no labeled test executes it" >&2
      exit 1
    fi
  done

  # gcov prints, per source file (including headers pulled into each TU):
  #   File '<path>'
  #   Lines executed:<pct>% of <count>
  # Aggregate over everything under src/<sub>/ (sources and headers),
  # taking each file's best-covered report when it appears in several TUs.
  # The counters are named after the object files (tuner.cpp.gcno), so
  # gcov is pointed at the .o files, not the sources.
  (cd "$BUILD" && gcov --no-output "$obj_dir"/*.cpp.o 2>/dev/null) |
    awk -v subdir="src/$sub/" -v floor="$FLOOR" '
      /^File / {
        file = $0
        sub(/^File .\.?\/?/, "", file)
        gsub(/\x27/, "", file)
        in_sub = index(file, subdir) > 0
        next
      }
      /^Lines executed:/ && in_sub {
        pct = $0; sub(/^Lines executed:/, "", pct); sub(/%.*/, "", pct)
        count = $0; sub(/.* of /, "", count)
        covered = pct / 100.0 * count
        if (covered > best_cov[file]) {
          best_cov[file] = covered
          best_tot[file] = count
        }
        in_sub = 0
      }
      END {
        total = 0; hit = 0
        for (f in best_tot) {
          printf "%6.2f%%  %5d lines  %s\n", \
                 100.0 * best_cov[f] / best_tot[f], best_tot[f], f
          total += best_tot[f]
          hit += best_cov[f]
        }
        if (total == 0) {
          printf "error: gcov reported no lines for %s\n", subdir > "/dev/stderr"
          exit 1
        }
        pct = 100.0 * hit / total
        printf "\n%s line coverage: %.2f%% (floor %s%%)\n", subdir, pct, floor
        if (pct < floor + 0) {
          print "FAIL: coverage below floor" > "/dev/stderr"
          exit 1
        }
        print "PASS"
      }'
}

# Check every subsystem before failing so one shortfall cannot mask
# another's report (the exit status still reflects any failure).
status=0
check_subsystem tune || status=1
check_subsystem sweep || status=1
check_subsystem serve || status=1
check_subsystem sim/sampling || status=1
check_subsystem sim/hwvar || status=1
exit "$status"
