#include "tune/tuner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "tune/objective.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

// Synthetic objective: sum of squared distances of each knob value from a
// target — a convex bowl the tuner must descend. Counts objective calls so
// tests can tell fresh evaluations from ledger replays.
class QuadraticObjective : public Objective {
 public:
  QuadraticObjective(std::vector<std::pair<std::string, double>> targets)
      : targets_(std::move(targets)) {}

  double score(const Config& overrides) override {
    ++calls_;
    double err = 0.0;
    for (const auto& [key, target] : targets_) {
      const double v = overrides.getDouble(key, 0.0);
      err += (v - target) * (v - target);
    }
    return err;
  }

  int calls() const { return calls_; }

 private:
  std::vector<std::pair<std::string, double>> targets_;
  int calls_ = 0;
};

ParamSpace smallSpace() {
  ParamSpace s;
  s.addLinear("l2.latency", 2, 32, 2);       // 16 values, target 14
  s.addPow2("l2.banks", 1, 8);               // 4 values, target 4
  s.addPow2("bus.width_bits", 64, 256);      // 3 values, target 128
  return s;
}

QuadraticObjective smallObjective() {
  return QuadraticObjective(
      {{"l2.latency", 14.0}, {"l2.banks", 4.0}, {"bus.width_bits", 128.0}});
}

std::string trajectoryString(const TuneResult& r, const ParamSpace& s) {
  std::ostringstream os;
  for (const TuneEval& e : r.trajectory) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", e.error);
    os << s.pointKey(e.point) << " -> " << buf << "\n";
  }
  return os.str();
}

std::string checkpointPath(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("bridge-tune-" + std::string(tag));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return (dir / "checkpoint.json").string();
}

TEST(CoordinateDescentTest, ConvergesOnQuadratic) {
  const ParamSpace space = smallSpace();
  QuadraticObjective obj = smallObjective();
  TuneOptions opts;
  opts.budget = 100;
  CoordinateDescentTuner tuner(space, &obj, opts);
  const TuneResult r = tuner.run({0, 0, 0});  // far corner
  EXPECT_EQ(r.stop_reason, "converged");
  EXPECT_DOUBLE_EQ(r.best_error, 0.0);
  EXPECT_EQ(space.pointKey(r.best),
            "l2.latency=14,l2.banks=4,bus.width_bits=128");
  EXPECT_EQ(r.evaluations, r.trajectory.size());
  EXPECT_EQ(static_cast<int>(r.objective_calls), obj.calls());
}

TEST(AnnealingTest, ImprovesOnQuadraticAndIsSeedDeterministic) {
  const ParamSpace space = smallSpace();
  TuneOptions opts;
  opts.budget = 60;
  opts.seed = 42;

  QuadraticObjective a = smallObjective();
  const TuneResult ra = AnnealingTuner(space, &a, opts).run({0, 0, 0});
  QuadraticObjective b = smallObjective();
  const TuneResult rb = AnnealingTuner(space, &b, opts).run({0, 0, 0});

  EXPECT_EQ(trajectoryString(ra, space), trajectoryString(rb, space));
  const double start_error = ra.trajectory.front().error;
  EXPECT_LT(ra.best_error, start_error);
  EXPECT_LE(ra.best_error, 16.0);  // within two latency steps of the bowl

  // A different seed explores a different path.
  TuneOptions other = opts;
  other.seed = 43;
  QuadraticObjective c = smallObjective();
  const TuneResult rc = AnnealingTuner(space, &c, other).run({0, 0, 0});
  EXPECT_NE(trajectoryString(ra, space), trajectoryString(rc, space));
}

TEST(RandomSearchTest, StopsWhenSpaceIsExhausted) {
  ParamSpace space;
  space.addPow2("l2.banks", 1, 4);  // 3 points
  QuadraticObjective obj({{"l2.banks", 2.0}});
  TuneOptions opts;
  opts.budget = 50;
  RandomSearchTuner tuner(space, &obj, opts);
  const TuneResult r = tuner.run({0});
  EXPECT_EQ(r.evaluations, 3u);  // every distinct point exactly once
  EXPECT_EQ(r.stop_reason, "converged");
  EXPECT_DOUBLE_EQ(r.best_error, 0.0);
}

TEST(TunerTest, BudgetIsEnforced) {
  const ParamSpace space = smallSpace();
  QuadraticObjective obj = smallObjective();
  TuneOptions opts;
  opts.budget = 5;
  CoordinateDescentTuner tuner(space, &obj, opts);
  const TuneResult r = tuner.run({0, 0, 0});
  EXPECT_EQ(r.evaluations, 5u);
  EXPECT_EQ(obj.calls(), 5);
  EXPECT_EQ(r.stop_reason, "budget");
}

TEST(TunerTest, StagnationStopsEarly) {
  ParamSpace space;
  space.addLinear("l2.latency", 1, 64, 1);
  QuadraticObjective obj({{"l2.latency", 0.0}});  // start is already best
  TuneOptions opts;
  opts.budget = 1000;
  opts.stagnation = 7;
  opts.seed = 3;
  RandomSearchTuner tuner(space, &obj, opts);
  const TuneResult r = tuner.run({0});
  // 1 improving start + 7 consecutive non-improving evaluations.
  EXPECT_EQ(r.evaluations, 8u);
  EXPECT_EQ(r.stop_reason, "stagnation");
}

TEST(TunerTest, RevisitsAreFree) {
  const ParamSpace space = smallSpace();
  QuadraticObjective obj = smallObjective();
  TuneOptions opts;
  opts.budget = 100;
  CoordinateDescentTuner tuner(space, &obj, opts);
  const TuneResult r = tuner.run({0, 0, 0});
  // Coordinate descent backtracks constantly; every distinct point must be
  // scored exactly once.
  EXPECT_EQ(static_cast<int>(r.evaluations), obj.calls());
}

TEST(TunerCheckpointTest, ResumeReproducesTrajectoryBitIdentically) {
  const ParamSpace space = smallSpace();
  const std::string ckpt = checkpointPath("resume");

  // Uninterrupted reference run (no checkpoint).
  QuadraticObjective ref = smallObjective();
  TuneOptions opts;
  opts.budget = 60;
  const TuneResult full = CoordinateDescentTuner(space, &ref, opts).run({0, 0, 0});

  // Interrupted run: stop after 7 evaluations, checkpointing as we go.
  QuadraticObjective first = smallObjective();
  TuneOptions interrupted = opts;
  interrupted.budget = 7;
  interrupted.checkpoint = ckpt;
  const TuneResult partial =
      CoordinateDescentTuner(space, &first, interrupted).run({0, 0, 0});
  EXPECT_EQ(partial.evaluations, 7u);
  EXPECT_EQ(first.calls(), 7);

  // Resume with the full budget: the replayed prefix plus the continuation
  // must equal the uninterrupted run, bit for bit, and the objective must
  // only be called for the work the interrupted run never did.
  QuadraticObjective second = smallObjective();
  TuneOptions resumed = opts;
  resumed.checkpoint = ckpt;
  const TuneResult cont =
      CoordinateDescentTuner(space, &second, resumed).run({0, 0, 0});
  EXPECT_EQ(trajectoryString(cont, space), trajectoryString(full, space));
  EXPECT_EQ(cont.best_error, full.best_error);
  EXPECT_EQ(space.pointKey(cont.best), space.pointKey(full.best));
  EXPECT_EQ(second.calls(), static_cast<int>(full.objective_calls) - 7);
}

TEST(SeedProbesTest, FixedSeedYieldsBitIdenticalTrajectory) {
  const ParamSpace space = smallSpace();
  TuneOptions opts;
  opts.budget = 40;
  opts.seed = 17;
  opts.seed_probes = 6;

  QuadraticObjective a = smallObjective();
  const TuneResult ra = CoordinateDescentTuner(space, &a, opts).run({0, 0, 0});
  QuadraticObjective b = smallObjective();
  const TuneResult rb = CoordinateDescentTuner(space, &b, opts).run({0, 0, 0});
  EXPECT_EQ(trajectoryString(ra, space), trajectoryString(rb, space));
  EXPECT_DOUBLE_EQ(ra.best_error, 0.0);  // still descends to the bowl

  // A different seed probes different points.
  TuneOptions other = opts;
  other.seed = 18;
  QuadraticObjective c = smallObjective();
  const TuneResult rc =
      CoordinateDescentTuner(space, &c, other).run({0, 0, 0});
  EXPECT_NE(trajectoryString(ra, space), trajectoryString(rc, space));
}

TEST(SeedProbesTest, ProbesConsumeBudget) {
  const ParamSpace space = smallSpace();
  QuadraticObjective obj = smallObjective();
  TuneOptions opts;
  opts.budget = 5;  // 1 start + at most 4 distinct probes
  opts.seed_probes = 10;
  CoordinateDescentTuner tuner(space, &obj, opts);
  const TuneResult r = tuner.run({0, 0, 0});
  EXPECT_EQ(r.evaluations, 5u);
  EXPECT_EQ(r.stop_reason, "budget");
}

TEST(SeedProbesTest, ProbeCountIsPartOfTheCheckpointIdentity) {
  const ParamSpace space = smallSpace();
  const std::string ckpt = checkpointPath("seed-probes");
  {
    QuadraticObjective obj = smallObjective();
    TuneOptions opts;
    opts.budget = 6;
    opts.seed_probes = 3;
    opts.checkpoint = ckpt;
    CoordinateDescentTuner(space, &obj, opts).run({0, 0, 0});
  }
  // Resuming with a different probe count would replay a different
  // trajectory; it must be rejected, not silently diverge.
  {
    QuadraticObjective obj = smallObjective();
    TuneOptions opts;
    opts.budget = 6;
    opts.seed_probes = 4;
    opts.checkpoint = ckpt;
    CoordinateDescentTuner tuner(space, &obj, opts);
    EXPECT_THROW(tuner.run({0, 0, 0}), std::runtime_error);
  }
  // The matching probe count resumes cleanly.
  {
    QuadraticObjective obj = smallObjective();
    TuneOptions opts;
    opts.budget = 12;
    opts.seed_probes = 3;
    opts.checkpoint = ckpt;
    CoordinateDescentTuner tuner(space, &obj, opts);
    const TuneResult r = tuner.run({0, 0, 0});
    EXPECT_EQ(obj.calls(), static_cast<int>(r.objective_calls));
    EXPECT_GE(r.evaluations, 6u);
  }
}

TEST(TunerCheckpointTest, MismatchedCheckpointIsRejected) {
  const ParamSpace space = smallSpace();
  const std::string ckpt = checkpointPath("mismatch");
  {
    QuadraticObjective obj = smallObjective();
    TuneOptions opts;
    opts.budget = 5;
    opts.checkpoint = ckpt;
    CoordinateDescentTuner(space, &obj, opts).run({0, 0, 0});
  }
  // Different strategy.
  {
    QuadraticObjective obj = smallObjective();
    TuneOptions opts;
    opts.budget = 5;
    opts.checkpoint = ckpt;
    AnnealingTuner tuner(space, &obj, opts);
    EXPECT_THROW(tuner.run({0, 0, 0}), std::runtime_error);
  }
  // Different space.
  {
    ParamSpace other;
    other.addPow2("l2.banks", 1, 8);
    QuadraticObjective obj({{"l2.banks", 4.0}});
    TuneOptions opts;
    opts.budget = 5;
    opts.checkpoint = ckpt;
    CoordinateDescentTuner tuner(other, &obj, opts);
    EXPECT_THROW(tuner.run({0}), std::runtime_error);
  }
  // Corrupt file.
  {
    std::ofstream out(ckpt, std::ios::trunc);
    out << "{ not json";
  }
  {
    QuadraticObjective obj = smallObjective();
    TuneOptions opts;
    opts.budget = 5;
    opts.checkpoint = ckpt;
    CoordinateDescentTuner tuner(space, &obj, opts);
    EXPECT_THROW(tuner.run({0, 0, 0}), std::runtime_error);
  }
}

TEST(TunerCheckpointTest, ProgressCallbackSeesReplayedAndFreshEvals) {
  const ParamSpace space = smallSpace();
  const std::string ckpt = checkpointPath("callback");
  {
    QuadraticObjective obj = smallObjective();
    TuneOptions opts;
    opts.budget = 4;
    opts.checkpoint = ckpt;
    CoordinateDescentTuner(space, &obj, opts).run({0, 0, 0});
  }
  QuadraticObjective obj = smallObjective();
  TuneOptions opts;
  opts.budget = 8;
  opts.checkpoint = ckpt;
  int replayed = 0, fresh = 0;
  opts.on_eval = [&](std::size_t, const TuneEval&, bool, bool is_fresh) {
    (is_fresh ? fresh : replayed)++;
  };
  CoordinateDescentTuner(space, &obj, opts).run({0, 0, 0});
  EXPECT_EQ(replayed, 4);
  EXPECT_EQ(fresh, 4);
}

// The tuner's concurrent evaluation path: one FidelityObjective evaluation
// fans probe kernels across SweepEngine workers. The trajectory must be
// independent of the worker count (this is the test the TSan smoke job
// exercises under -DBRIDGE_SANITIZE=thread).
TEST(TunerFidelityTest, TrajectoryIsWorkerCountInvariant) {
  ParamSpace space;
  space.addPow2("l2.banks", 1, 4).addPow2("bus.width_bits", 64, 128);

  auto runWith = [&](unsigned workers) {
    FidelityOptions fopts;
    fopts.model = PlatformId::kRocket1;
    fopts.reference = PlatformId::kBananaPiHw;
    fopts.kernels = {"ED1", "ML2", "MM"};
    fopts.scale = 0.05;
    SweepOptions sweep;
    sweep.workers = workers;
    sweep.use_cache = false;  // force real concurrent simulation
    FidelityObjective objective(fopts, sweep);
    TuneOptions opts;
    opts.budget = 6;
    CoordinateDescentTuner tuner(space, &objective, opts);
    return tuner.run({0, 0});
  };

  const TuneResult serial = runWith(1);
  const TuneResult parallel = runWith(4);
  EXPECT_EQ(trajectoryString(serial, space), trajectoryString(parallel, space));
  EXPECT_EQ(serial.best_error, parallel.best_error);
  EXPECT_GT(serial.best_error, 0.0);  // a real model never matches exactly
}

// Fidelity error must actually reward the paper's tuning steps: the
// hand-built BananaPiSim model scores better than the untuned Rocket1.
TEST(TunerFidelityTest, HandBuiltModelBeatsBase) {
  FidelityOptions fopts;
  fopts.model = PlatformId::kRocket1;
  fopts.reference = PlatformId::kBananaPiHw;
  fopts.kernels = {"DP1d", "ML2", "MC"};
  fopts.scale = 0.05;
  SweepOptions sweep;
  sweep.workers = 2;
  sweep.use_cache = false;
  FidelityObjective objective(fopts, sweep);
  const FidelityEval base = objective.evaluate({});
  const FidelityEval tuned = objective.evaluateOn(PlatformId::kBananaPiSim, {});
  EXPECT_LT(tuned.error, base.error);
  for (const KernelFidelity& k : tuned.kernels) {
    EXPECT_GT(k.rel, 0.0);
    EXPECT_LT(k.rel, 1.5);
  }
}

TEST(TunerFidelityTest, RejectsUnknownProbeKernel) {
  FidelityOptions fopts;
  fopts.kernels = {"NotAKernel"};
  EXPECT_THROW(FidelityObjective objective(fopts), std::out_of_range);
}

}  // namespace
}  // namespace bridge
