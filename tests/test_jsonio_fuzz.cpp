// Fuzz/round-trip coverage for sim/jsonio (`ctest -L fuzz`): the writer's
// output must re-parse to the same values for arbitrary nested trees, and
// the recursive-descent parser must reject — not crash on — truncated
// documents, bad escapes, and pathologically deep nesting (the
// kMaxParseDepth guard).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/jsonio.h"
#include "sim/rng.h"

namespace bridge {
namespace {

// A small test-local JSON value tree: enough to express everything the
// writer can emit (objects, arrays, strings, unsigned ints, doubles).
struct Value {
  enum class Kind { kString, kUint, kDouble, kArray, kObject } kind;
  std::string str;
  std::uint64_t uint_val = 0;
  double dbl = 0.0;
  std::vector<std::pair<std::string, std::unique_ptr<Value>>> fields;
  std::vector<std::unique_ptr<Value>> elements;
};

std::string randomString(Xorshift64Star* rng) {
  static const char pool[] =
      "abcXYZ012 _-/\\\"\n\t\x01\x1f{}[],:";
  std::string s;
  const std::size_t len = rng->nextBelow(12);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(pool[rng->nextBelow(sizeof(pool) - 1)]);
  }
  return s;
}

double randomDouble(Xorshift64Star* rng) {
  switch (rng->nextBelow(4)) {
    case 0: return 0.0;
    case 1: return -1.0 / 3.0;
    case 2: return rng->nextDouble() * 1e17;
    default: return rng->nextDouble() * 1e-9 - 0.5e-9;
  }
}

std::unique_ptr<Value> randomValue(Xorshift64Star* rng, std::size_t depth) {
  auto v = std::make_unique<Value>();
  // Bias toward leaves as depth grows so trees stay bounded.
  const std::uint64_t pick = rng->nextBelow(depth >= 6 ? 3 : 5);
  switch (pick) {
    case 0:
      v->kind = Value::Kind::kString;
      v->str = randomString(rng);
      break;
    case 1:
      v->kind = Value::Kind::kUint;
      v->uint_val = rng->next() >> (rng->nextBelow(64));
      break;
    case 2:
      v->kind = Value::Kind::kDouble;
      v->dbl = randomDouble(rng);
      break;
    case 3: {
      v->kind = Value::Kind::kArray;
      const std::size_t n = rng->nextBelow(4);
      for (std::size_t i = 0; i < n; ++i) {
        v->elements.push_back(randomValue(rng, depth + 1));
      }
      break;
    }
    default: {
      v->kind = Value::Kind::kObject;
      const std::size_t n = rng->nextBelow(4);
      for (std::size_t i = 0; i < n; ++i) {
        // Keys must be unique for the schema-directed re-parse below.
        v->fields.emplace_back("k" + std::to_string(i) + randomString(rng),
                               randomValue(rng, depth + 1));
      }
      break;
    }
  }
  return v;
}

void serialize(const Value& v, std::string* out) {
  switch (v.kind) {
    case Value::Kind::kString:
      jsonio::appendEscaped(out, v.str);
      break;
    case Value::Kind::kUint:
      *out += std::to_string(v.uint_val);
      break;
    case Value::Kind::kDouble:
      *out += jsonio::formatDouble(v.dbl);
      break;
    case Value::Kind::kArray:
      out->push_back('[');
      for (std::size_t i = 0; i < v.elements.size(); ++i) {
        if (i != 0) out->push_back(',');
        serialize(*v.elements[i], out);
      }
      out->push_back(']');
      break;
    case Value::Kind::kObject:
      out->push_back('{');
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i != 0) out->push_back(',');
        jsonio::appendEscaped(out, v.fields[i].first);
        out->push_back(':');
        serialize(*v.fields[i].second, out);
      }
      out->push_back('}');
      break;
  }
}

// Schema-directed parse: the generator knows the tree shape, so the parse
// follows it (exactly how real callers use the Parser) and checks every
// leaf against the original.
bool parseAndCompare(jsonio::Parser& p, const Value& expect) {
  switch (expect.kind) {
    case Value::Kind::kString: {
      std::string s;
      return p.parseString(&s) && s == expect.str;
    }
    case Value::Kind::kUint: {
      std::uint64_t u = 0;
      return p.parseUint64(&u) && u == expect.uint_val;
    }
    case Value::Kind::kDouble: {
      double d = 0.0;
      // %.17g round-trips exactly: bit-equality, not tolerance.
      return p.parseDouble(&d) && d == expect.dbl;
    }
    case Value::Kind::kArray: {
      std::size_t next = 0;
      return p.parseArray([&](jsonio::Parser& ev) {
               if (next >= expect.elements.size()) return false;
               return parseAndCompare(ev, *expect.elements[next++]);
             }) &&
             next == expect.elements.size();
    }
    case Value::Kind::kObject: {
      std::size_t next = 0;
      return p.parseObject([&](const std::string& key, jsonio::Parser& fv) {
               if (next >= expect.fields.size()) return false;
               if (key != expect.fields[next].first) return false;
               return parseAndCompare(fv, *expect.fields[next++].second);
             }) &&
             next == expect.fields.size();
    }
  }
  return false;
}

class JsonioRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonioRoundTrip, ArbitraryNestedValuesSurvive) {
  Xorshift64Star rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    // Root is always a container, like every real checkpoint/snapshot.
    auto root = std::make_unique<Value>();
    root->kind = rng.nextBool(0.5) ? Value::Kind::kObject
                                   : Value::Kind::kArray;
    const std::size_t n = 1 + rng.nextBelow(5);
    for (std::size_t i = 0; i < n; ++i) {
      if (root->kind == Value::Kind::kObject) {
        root->fields.emplace_back("f" + std::to_string(i),
                                  randomValue(&rng, 1));
      } else {
        root->elements.push_back(randomValue(&rng, 1));
      }
    }
    std::string json;
    serialize(*root, &json);
    jsonio::Parser p(json);
    EXPECT_TRUE(parseAndCompare(p, *root)) << json;
    EXPECT_TRUE(p.atEnd()) << json;
  }
}

TEST_P(JsonioRoundTrip, TruncatedDocumentsFailCleanly) {
  Xorshift64Star rng(GetParam() + 1000);
  auto root = std::make_unique<Value>();
  root->kind = Value::Kind::kObject;
  for (std::size_t i = 0; i < 4; ++i) {
    root->fields.emplace_back("f" + std::to_string(i), randomValue(&rng, 1));
  }
  std::string json;
  serialize(*root, &json);
  // Every strict prefix must either fail the parse or leave trailing
  // structure unconsumed — callers treat both as corrupt. Mostly it just
  // must not crash or hang.
  for (std::size_t cut = 0; cut < json.size(); ++cut) {
    jsonio::Parser p(json.substr(0, cut));
    const bool ok = parseAndCompare(p, *root);
    EXPECT_FALSE(ok && p.atEnd()) << "prefix of length " << cut
                                  << " parsed as the full document";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonioRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(JsonioMalformed, BadEscapesAreRejected) {
  for (const char* bad : {
           "\"\\x41\"",    // unknown escape
           "\"\\u12\"",    // truncated \u
           "\"\\u12g4\"",  // non-hex digit
           "\"\\uFFFF\"",  // beyond the ASCII subset the writer emits
           "\"\\",         // escape at end of input
           "\"open",       // unterminated string
       }) {
    jsonio::Parser p(bad);
    std::string s;
    EXPECT_FALSE(p.parseString(&s)) << bad;
  }
}

TEST(JsonioMalformed, StructuralGarbageIsRejected) {
  const auto objectFails = [](const std::string& text) {
    jsonio::Parser p(text);
    std::uint64_t sink = 0;
    const bool ok = p.parseObject([&](const std::string&, jsonio::Parser& v) {
      return v.parseUint64(&sink);
    });
    return !(ok && p.atEnd());
  };
  EXPECT_TRUE(objectFails(""));
  EXPECT_TRUE(objectFails("{"));
  EXPECT_TRUE(objectFails("{\"a\" 1}"));
  EXPECT_TRUE(objectFails("{\"a\": 1,}"));
  EXPECT_TRUE(objectFails("{\"a\": 1} trailing"));
  EXPECT_TRUE(objectFails("[1]"));
}

TEST(JsonioDepth, NestingWithinTheCapParses) {
  // kMaxParseDepth - 1 nested arrays around a leaf: must parse.
  const std::size_t depth = jsonio::kMaxParseDepth - 1;
  std::string json(depth, '[');
  json += "7";
  json.append(depth, ']');
  std::function<bool(jsonio::Parser&, std::size_t)> descend =
      [&](jsonio::Parser& p, std::size_t remaining) -> bool {
    if (remaining == 0) {
      std::uint64_t u = 0;
      return p.parseUint64(&u) && u == 7;
    }
    return p.parseArray(
        [&](jsonio::Parser& ev) { return descend(ev, remaining - 1); });
  };
  jsonio::Parser p(json);
  EXPECT_TRUE(descend(p, depth));
  EXPECT_TRUE(p.atEnd());
}

TEST(JsonioDepth, PathologicalNestingFailsInsteadOfOverflowing) {
  // A megabyte of '[' must fail the parse (depth cap), not smash the
  // stack. The callback recurses unconditionally, so only the cap stops it.
  const std::string bomb(1 << 20, '[');
  std::function<bool(jsonio::Parser&)> descend =
      [&](jsonio::Parser& p) -> bool {
    return p.parseArray([&](jsonio::Parser& ev) { return descend(ev); });
  };
  jsonio::Parser p(bomb);
  EXPECT_FALSE(descend(p));

  // Same for objects.
  std::string obj_bomb;
  for (int i = 0; i < (1 << 17); ++i) obj_bomb += "{\"k\":";
  std::function<bool(jsonio::Parser&)> descend_obj =
      [&](jsonio::Parser& p2) -> bool {
    return p2.parseObject([&](const std::string&, jsonio::Parser& v) {
      return descend_obj(v);
    });
  };
  jsonio::Parser po(obj_bomb);
  EXPECT_FALSE(descend_obj(po));
}

}  // namespace
}  // namespace bridge
