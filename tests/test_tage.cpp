#include "branch/tage.h"

#include <gtest/gtest.h>

#include "branch/bimodal.h"
#include "sim/rng.h"

namespace bridge {
namespace {

double trainAndMeasure(DirectionPredictor& p, Addr pc,
                       const std::vector<bool>& outcomes,
                       std::size_t warmup) {
  int wrong = 0;
  std::size_t measured = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const bool pred = p.predict(pc);
    if (i >= warmup) {
      ++measured;
      if (pred != outcomes[i]) ++wrong;
    }
    p.update(pc, outcomes[i]);
  }
  return static_cast<double>(wrong) / static_cast<double>(measured);
}

TEST(Tage, HistoryLengthsAreGeometricAndIncreasing) {
  TageConfig cfg;
  cfg.num_tables = 5;
  cfg.min_history = 4;
  cfg.max_history = 64;
  TagePredictor p(cfg);
  // Sanity: construction with defaults doesn't blow asserts; predictions
  // are callable.
  EXPECT_NO_THROW(p.predict(0x400));
}

TEST(Tage, LearnsBiasedBranchFast) {
  TagePredictor p;
  std::vector<bool> taken(2000, true);
  EXPECT_LT(trainAndMeasure(p, 0x400, taken, 100), 0.01);
}

TEST(Tage, LearnsAlternation) {
  TagePredictor p;
  std::vector<bool> alt;
  for (int i = 0; i < 6000; ++i) alt.push_back(i % 2 == 0);
  EXPECT_LT(trainAndMeasure(p, 0x400, alt, 2000), 0.02);
}

TEST(Tage, LearnsLongPeriodPatternBimodalCannot) {
  // Period-24 pattern needs long history.
  std::vector<bool> pattern;
  Xorshift64Star rng(17);
  std::vector<bool> proto;
  for (int i = 0; i < 24; ++i) proto.push_back(rng.nextBool(0.5));
  for (int i = 0; i < 40000; ++i) pattern.push_back(proto[i % 24]);

  TagePredictor tage;
  BimodalPredictor bimodal(4096);
  const double tage_rate = trainAndMeasure(tage, 0x400, pattern, 20000);
  const double bimodal_rate =
      trainAndMeasure(bimodal, 0x400, pattern, 20000);
  EXPECT_LT(tage_rate, 0.10);
  EXPECT_GT(bimodal_rate, 0.20);
  EXPECT_LT(tage_rate, bimodal_rate * 0.5);
}

TEST(Tage, RandomStreamStaysUnpredictable) {
  TagePredictor p;
  Xorshift64Star rng(23);
  std::vector<bool> random;
  for (int i = 0; i < 20000; ++i) random.push_back(rng.nextBool(0.5));
  EXPECT_GT(trainAndMeasure(p, 0x400, random, 5000), 0.35);
}

TEST(Tage, MultiplePcsCoexist) {
  TagePredictor p;
  for (int i = 0; i < 3000; ++i) {
    p.update(0x400, true);
    p.update(0x800, false);
  }
  EXPECT_TRUE(p.predict(0x400));
  EXPECT_FALSE(p.predict(0x800));
}

TEST(Tage, SingleTableConfigWorks) {
  TageConfig cfg;
  cfg.num_tables = 1;
  cfg.min_history = 8;
  cfg.max_history = 8;
  TagePredictor p(cfg);
  std::vector<bool> taken(1000, true);
  EXPECT_LT(trainAndMeasure(p, 0x400, taken, 100), 0.02);
}

// The hot path maintains each table's folded history incrementally
// (rotate + insert + evict per branch); foldedHistory() recomputes the
// same fold from scratch. Drive a random stream through every config
// shape the incremental update has to survive — history shorter than the
// fold width, history at the 64-bit ceiling, a single table — and check
// the registers against the reference after every update.
TEST(Tage, IncrementalFoldMatchesScratchRecomputation) {
  std::vector<TageConfig> configs(3);
  configs[1].min_history = 2;   // shorter than every fold width
  configs[1].max_history = 64;  // full ghist word
  configs[2].num_tables = 1;
  configs[2].min_history = 13;
  configs[2].max_history = 13;
  for (const TageConfig& cfg : configs) {
    TagePredictor p(cfg);
    Xorshift64Star rng(7);
    EXPECT_TRUE(p.foldedHistoryConsistent());
    for (int i = 0; i < 2000; ++i) {
      const Addr pc = 0x400 + 4 * (rng.next() % 97);
      p.predict(pc);
      p.update(pc, rng.nextBool(0.5));
      ASSERT_TRUE(p.foldedHistoryConsistent()) << "after update " << i;
    }
  }
}

}  // namespace
}  // namespace bridge
