#include "tune/param_space.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "platforms/platforms.h"
#include "sweep/job.h"

namespace bridge {
namespace {

TEST(ParamSpaceTest, AddPow2ExpandsInclusiveRange) {
  ParamSpace s;
  s.addPow2("l2.banks", 1, 8);
  ASSERT_EQ(s.dims(), 1u);
  EXPECT_EQ(s.dim(0).values, (std::vector<std::int64_t>{1, 2, 4, 8}));
}

TEST(ParamSpaceTest, AddLinearStopsAtUpperBound) {
  ParamSpace s;
  s.addLinear("ooo.rob", 64, 200, 32);
  EXPECT_EQ(s.dim(0).values, (std::vector<std::int64_t>{64, 96, 128, 160, 192}));
}

TEST(ParamSpaceTest, RejectsBadDimensions) {
  ParamSpace s;
  EXPECT_THROW(s.add("x", {}), std::invalid_argument);
  EXPECT_THROW(s.add("x", {4, 2}), std::invalid_argument);
  EXPECT_THROW(s.add("x", {2, 2}), std::invalid_argument);
  EXPECT_THROW(s.addPow2("x", 3, 8), std::invalid_argument);
  EXPECT_THROW(s.addLinear("x", 8, 4, 1), std::invalid_argument);
}

TEST(ParamSpaceTest, CardinalityAndValidity) {
  ParamSpace s;
  s.addPow2("l2.banks", 1, 8).addPow2("bus.width_bits", 64, 256);
  EXPECT_EQ(s.cardinality(), 12u);
  EXPECT_TRUE(s.valid({0, 0}));
  EXPECT_TRUE(s.valid({3, 2}));
  EXPECT_FALSE(s.valid({4, 0}));  // index out of range
  EXPECT_FALSE(s.valid({0}));     // wrong arity
}

TEST(ParamSpaceTest, StepMovesOneIndexAndRespectsBounds) {
  ParamSpace s;
  s.addPow2("l2.banks", 1, 8);
  ParamPoint p{0};
  EXPECT_FALSE(s.step(&p, 0, -1));
  EXPECT_EQ(p, (ParamPoint{0}));
  EXPECT_TRUE(s.step(&p, 0, +1));
  EXPECT_EQ(p, (ParamPoint{1}));
  p = {3};
  EXPECT_FALSE(s.step(&p, 0, +1));
  EXPECT_TRUE(s.step(&p, 0, -1));
  EXPECT_EQ(p, (ParamPoint{2}));
}

TEST(ParamSpaceTest, OverridesAndPointKeyAreCanonical) {
  ParamSpace s;
  s.addPow2("l2.banks", 1, 8).addPow2("bus.width_bits", 64, 256);
  const ParamPoint p{2, 1};
  EXPECT_EQ(s.pointKey(p), "l2.banks=4,bus.width_bits=128");
  const Config cfg = s.overrides(p);
  EXPECT_EQ(cfg.getInt("l2.banks", 0), 4);
  EXPECT_EQ(cfg.getInt("bus.width_bits", 0), 128);

  // The overrides must be applicable to a SocConfig (keys are real knobs).
  SocConfig soc = makePlatform(PlatformId::kRocket1, 1);
  applySocOverrides(&soc, cfg);
  EXPECT_EQ(soc.mem.l2.banks, 4u);
  EXPECT_EQ(soc.mem.bus.width_bits, 128u);
}

TEST(ParamSpaceTest, StartPointProjectsPlatformValues) {
  const ParamSpace s = rocketMemorySpace();
  const SocConfig rocket1 = makePlatform(PlatformId::kRocket1, 1);
  const ParamPoint p = s.startPoint(rocket1);
  ASSERT_TRUE(s.valid(p));
  // Every dimension lands on the value closest to the platform's own.
  for (std::size_t i = 0; i < s.dims(); ++i) {
    const auto current =
        static_cast<std::int64_t>(socConfigKnobValue(rocket1, s.dim(i).key));
    for (const std::int64_t v : s.dim(i).values) {
      EXPECT_LE(std::abs(s.dim(i).values[p[i]] - current),
                std::abs(v - current));
    }
  }
  // Rocket1 concretely: 1 L2 bank, 64-bit bus, 4 L1D MSHRs.
  EXPECT_EQ(s.dim(0).values[p[0]], 1);
  EXPECT_EQ(s.dim(1).values[p[1]], 64);
  EXPECT_EQ(s.dim(2).values[p[2]], 4);
}

TEST(ParamSpaceTest, StartPointThrowsOnUnknownKey) {
  ParamSpace s;
  s.add("no.such.knob", {1, 2});
  EXPECT_THROW(s.startPoint(makePlatform(PlatformId::kRocket1, 1)),
               std::invalid_argument);
}

TEST(ParamSpaceTest, SignatureChangesWithValues) {
  ParamSpace a;
  a.addPow2("l2.banks", 1, 8);
  ParamSpace b;
  b.addPow2("l2.banks", 1, 4);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(ParamSpaceTest, RandomPointIsInRangeAndSeeded) {
  const ParamSpace s = rocketMemorySpace();
  Xorshift64Star rng1(7), rng2(7);
  for (int i = 0; i < 100; ++i) {
    const ParamPoint p = s.randomPoint(&rng1);
    EXPECT_TRUE(s.valid(p));
    EXPECT_EQ(p, s.randomPoint(&rng2));
  }
}

TEST(ParamSpaceTest, KnobValueReadsResolvedConfig) {
  const SocConfig banana = makePlatform(PlatformId::kBananaPiSim, 1);
  EXPECT_EQ(socConfigKnobValue(banana, "l2.banks"), 4u);
  EXPECT_EQ(socConfigKnobValue(banana, "bus.width_bits"), 128u);
  EXPECT_THROW(socConfigKnobValue(banana, "nope"), std::invalid_argument);
}

}  // namespace
}  // namespace bridge
