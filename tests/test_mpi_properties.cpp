// Property tests for the MPI runtime: transfer and collective costs must be
// monotone in message size and rank count, and independent of which rank
// the scheduler happens to advance first.
#include <gtest/gtest.h>

#include "mpi/mpi.h"
#include "platforms/platforms.h"
#include "trace/kernel.h"

namespace bridge {
namespace {

Cycle pingPong(std::uint64_t bytes, int rounds = 4) {
  Soc soc(makePlatform(PlatformId::kRocket1, 4));
  const MpiRunResult r = runMpiProgram(&soc, 2, [&](int rank, int) {
    auto seq = std::make_unique<SequenceTrace>("pp");
    for (int i = 0; i < rounds; ++i) {
      if (rank == 0) {
        seq->appendOp(makeMpiOp(MpiKind::kSend, 1, bytes, i));
        seq->appendOp(makeMpiOp(MpiKind::kRecv, 1, bytes, 100 + i));
      } else {
        seq->appendOp(makeMpiOp(MpiKind::kRecv, 0, bytes, i));
        seq->appendOp(makeMpiOp(MpiKind::kSend, 0, bytes, 100 + i));
      }
    }
    return seq;
  });
  return r.cycles;
}

class PingPongSize : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PingPongSize, CostMonotoneInBytes) {
  // Modulo cold-line state noise in the shared buffers (~2%), a 4x larger
  // payload can never be cheaper.
  const std::uint64_t bytes = GetParam();
  EXPECT_LE(pingPong(bytes),
            static_cast<Cycle>(pingPong(bytes * 4) * 1.05) + 200);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PingPongSize,
                         ::testing::Values(64u, 1024u, 16384u, 262144u));

TEST(MpiProperties, EagerRendezvousBoundaryIsContinuousEnough) {
  // Crossing the eager limit must not make a message cheaper.
  const Cycle below = pingPong(8192);   // at the limit: eager
  const Cycle above = pingPong(8256);   // just over: rendezvous
  EXPECT_GE(above, below);
}

class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, AllreduceDeterministicAndScalesWithRanks) {
  const int ranks = GetParam();
  auto run = [&] {
    Soc soc(makePlatform(PlatformId::kRocket1, 4));
    return runMpiProgram(&soc, ranks, [&](int, int) {
             auto seq = std::make_unique<SequenceTrace>("ar");
             seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 32768));
             seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 32768));
             return seq;
           })
        .cycles;
  };
  const Cycle a = run();
  EXPECT_EQ(a, run());  // deterministic
  if (ranks > 1) {
    Soc soc(makePlatform(PlatformId::kRocket1, 4));
    const Cycle fewer =
        runMpiProgram(&soc, ranks - 1, [&](int, int) {
          auto seq = std::make_unique<SequenceTrace>("ar");
          seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 32768));
          seq->appendOp(makeMpiOp(MpiKind::kAllreduce, 0, 32768));
          return seq;
        }).cycles;
    EXPECT_GE(a + 1000, fewer);  // never dramatically cheaper with more ranks
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectiveRanks, ::testing::Values(1, 2, 3, 4));

TEST(MpiProperties, PerMessageSoftwareLatencyAccumulates) {
  // Alpha (per-message latency) must be visible: with empty payloads the
  // copy cost vanishes and message count alone drives the runtime.
  auto run = [&](int count, std::uint64_t bytes) {
    Soc soc(makePlatform(PlatformId::kRocket1, 4));
    return runMpiProgram(&soc, 2, [&](int rank, int) {
             auto seq = std::make_unique<SequenceTrace>("m");
             for (int i = 0; i < count; ++i) {
               if (rank == 0) {
                 seq->appendOp(makeMpiOp(MpiKind::kSend, 1, bytes, i));
               } else {
                 seq->appendOp(makeMpiOp(MpiKind::kRecv, 0, bytes, i));
               }
             }
             return seq;
           })
        .cycles;
  };
  EXPECT_GT(run(64, 0), run(4, 0) * 4);
}

}  // namespace
}  // namespace bridge
