#include "sim/config.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(Config, SetAndGetTyped) {
  Config c;
  c.set("core.fetch_width", "8");
  c.set("freq", "3.2");
  c.set("prefetch", "true");
  c.set("name", "rocket");
  EXPECT_EQ(c.getInt("core.fetch_width"), 8);
  EXPECT_DOUBLE_EQ(*c.getDouble("freq"), 3.2);
  EXPECT_EQ(c.getBool("prefetch"), true);
  EXPECT_EQ(c.getString("name"), "rocket");
}

TEST(Config, DefaultsWhenMissing) {
  Config c;
  EXPECT_EQ(c.getInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
  EXPECT_EQ(c.getBool("missing", true), true);
  EXPECT_EQ(c.getString("missing", "x"), "x");
}

TEST(Config, MalformedValuesReturnNullopt) {
  Config c;
  c.set("k", "not_a_number");
  EXPECT_FALSE(c.getInt("k").has_value());
  EXPECT_FALSE(c.getDouble("k").has_value());
  EXPECT_FALSE(c.getBool("k").has_value());
  EXPECT_TRUE(c.getString("k").has_value());
}

TEST(Config, ParseHandlesCommentsAndWhitespace) {
  Config c;
  const char* text =
      "# platform overrides\n"
      "  core.rob = 128   # bigger window\n"
      "\n"
      "dram.kind = ddr4-3200\n";
  std::string err;
  ASSERT_TRUE(c.parse(text, &err)) << err;
  EXPECT_EQ(c.getInt("core.rob"), 128);
  EXPECT_EQ(c.getString("dram.kind"), "ddr4-3200");
  EXPECT_EQ(c.size(), 2u);
}

TEST(Config, ParseRejectsMissingEquals) {
  Config c;
  std::string err;
  EXPECT_FALSE(c.parse("justakey\n", &err));
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(Config, ParseRejectsEmptyKey) {
  Config c;
  std::string err;
  EXPECT_FALSE(c.parse(" = value\n", &err));
}

TEST(Config, LaterDuplicatesWin) {
  Config c;
  ASSERT_TRUE(c.parse("a = 1\na = 2\n"));
  EXPECT_EQ(c.getInt("a"), 2);
}

TEST(Config, RoundTripThroughText) {
  Config c;
  c.set("b", "2");
  c.set("a", "1");
  Config c2;
  ASSERT_TRUE(c2.parse(c.toText()));
  EXPECT_EQ(c2.getInt("a"), 1);
  EXPECT_EQ(c2.getInt("b"), 2);
}

TEST(Config, BoolSpellings) {
  Config c;
  for (const char* t : {"true", "1", "yes", "on"}) {
    c.set("k", t);
    EXPECT_EQ(c.getBool("k"), true) << t;
  }
  for (const char* f : {"false", "0", "no", "off"}) {
    c.set("k", f);
    EXPECT_EQ(c.getBool("k"), false) << f;
  }
}

}  // namespace
}  // namespace bridge
