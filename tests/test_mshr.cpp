#include "cache/mshr.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(Mshr, AdmitsUpToCapacityWithoutStall) {
  MshrFile m(4);
  for (int i = 0; i < 4; ++i) {
    const auto adm = m.admit(static_cast<Addr>(i) * 64, 10);
    EXPECT_EQ(adm.ready, 10u);
    EXPECT_FALSE(adm.merged);
    m.complete(static_cast<Addr>(i) * 64, 100 + i);
  }
  EXPECT_EQ(m.stallEvents(), 0u);
}

TEST(Mshr, FullFileStallsUntilEarliestFill) {
  MshrFile m(2);
  auto a = m.admit(0x000, 0);
  m.complete(0x000, 100);
  auto b = m.admit(0x040, 0);
  m.complete(0x040, 80);
  (void)a;
  (void)b;
  // Third miss at t=10: both slots busy; earliest fill is 80.
  const auto c = m.admit(0x080, 10);
  EXPECT_EQ(c.ready, 80u);
  EXPECT_EQ(m.stallEvents(), 1u);
  m.complete(0x080, 200);
}

TEST(Mshr, SameLineMerges) {
  MshrFile m(4);
  m.admit(0x1000, 0);
  m.complete(0x1000, 500);
  const auto merged = m.admit(0x1000, 10);
  EXPECT_TRUE(merged.merged);
  EXPECT_EQ(merged.merged_fill, 500u);
  EXPECT_EQ(m.merges(), 1u);
}

TEST(Mshr, SubLineAddressesMergeToo) {
  MshrFile m(4);
  m.admit(0x1000, 0);
  m.complete(0x1000, 500);
  const auto merged = m.admit(0x1020, 10);  // same 64B line
  EXPECT_TRUE(merged.merged);
}

TEST(Mshr, SlotFreesAfterFillLands) {
  MshrFile m(1);
  m.admit(0x000, 0);
  m.complete(0x000, 50);
  // At t=60 the fill has landed: no stall for a new miss.
  const auto adm = m.admit(0x040, 60);
  EXPECT_EQ(adm.ready, 60u);
  EXPECT_FALSE(adm.merged);
  EXPECT_EQ(m.stallEvents(), 0u);
  m.complete(0x040, 120);
}

TEST(Mshr, CompletedLineNoLongerMerges) {
  MshrFile m(2);
  m.admit(0x1000, 0);
  m.complete(0x1000, 50);
  // After the fill retires (t >= 50), the line is no longer "in flight".
  const auto adm = m.admit(0x1000, 100);
  EXPECT_FALSE(adm.merged);
  m.complete(0x1000, 300);
}

TEST(Mshr, ZeroEntriesClampedToOne) {
  MshrFile m(0);
  EXPECT_EQ(m.entries(), 1u);
}

}  // namespace
}  // namespace bridge
