#include "cache/tlb.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bridge {
namespace {

TlbParams smallTlb(unsigned l1, unsigned l2) {
  TlbParams p;
  p.enabled = true;
  p.l1_entries = l1;
  p.l2_entries = l2;
  return p;
}

TEST(Tlb, FirstTouchMissesThenHits) {
  Tlb tlb(smallTlb(4, 0));
  EXPECT_EQ(tlb.access(0x1000), Tlb::Outcome::kMiss);
  EXPECT_EQ(tlb.access(0x1008), Tlb::Outcome::kL1Hit);  // same page
  EXPECT_EQ(tlb.access(0x1FFF), Tlb::Outcome::kL1Hit);
  EXPECT_EQ(tlb.access(0x2000), Tlb::Outcome::kMiss);   // next page
}

TEST(Tlb, L1LruEviction) {
  Tlb tlb(smallTlb(2, 0));
  tlb.access(0x1000);  // page 1
  tlb.access(0x2000);  // page 2
  tlb.access(0x1000);  // touch page 1 -> page 2 is LRU
  tlb.access(0x3000);  // evicts page 2
  EXPECT_EQ(tlb.access(0x1000), Tlb::Outcome::kL1Hit);
  EXPECT_NE(tlb.access(0x2000), Tlb::Outcome::kL1Hit);
}

TEST(Tlb, L2CatchesL1Victims) {
  Tlb tlb(smallTlb(2, 64));
  tlb.access(0x1000);
  tlb.access(0x2000);
  tlb.access(0x3000);  // evicts page 1 into L2
  EXPECT_EQ(tlb.access(0x1000), Tlb::Outcome::kL2Hit);
  // And it is promoted back into L1.
  EXPECT_EQ(tlb.access(0x1000), Tlb::Outcome::kL1Hit);
}

TEST(Tlb, NoL2MeansFullMissAfterEviction) {
  Tlb tlb(smallTlb(2, 0));
  tlb.access(0x1000);
  tlb.access(0x2000);
  tlb.access(0x3000);
  EXPECT_EQ(tlb.access(0x1000), Tlb::Outcome::kMiss);
}

TEST(Tlb, LargePageBitsWidenReach) {
  TlbParams p = smallTlb(2, 0);
  p.page_bits = 21;  // 2 MiB pages
  Tlb tlb(p);
  tlb.access(0x10'0000);
  EXPECT_EQ(tlb.access(0x1F'FFFF), Tlb::Outcome::kL1Hit);
}

TEST(Tlb, StatsAccumulate) {
  Tlb tlb(smallTlb(4, 16));
  Xorshift64Star rng(5);
  for (int i = 0; i < 5000; ++i) {
    tlb.access(rng.nextBelow(256) << 12);
  }
  EXPECT_EQ(tlb.l1Hits() + tlb.l2Hits() + tlb.misses(), 5000u);
  EXPECT_GT(tlb.misses(), 0u);
  EXPECT_GT(tlb.l2Hits(), 0u);
}

TEST(Tlb, WorkingSetWithinL1NeverMissesSteadyState) {
  Tlb tlb(smallTlb(8, 0));
  for (int round = 0; round < 4; ++round) {
    for (Addr page = 0; page < 8; ++page) {
      const auto outcome = tlb.access(page << 12);
      if (round > 0) {
        EXPECT_EQ(outcome, Tlb::Outcome::kL1Hit);
      }
    }
  }
}

// A direct-mapped L2 has conflict behaviour: pages that alias evict.
TEST(Tlb, L2DirectMappedAliasing) {
  Tlb tlb(smallTlb(1, 4));
  tlb.access(0x0 << 12);        // page 0
  tlb.access(0x4 << 12);        // page 4: L1 evicts page 0 -> L2 slot 0
  tlb.access(0x8 << 12);        // page 8: L1 evicts 4 -> L2 slot 0 (clobbers)
  EXPECT_EQ(tlb.access(0x4 << 12), Tlb::Outcome::kL2Hit);  // 4 in slot 0
  EXPECT_NE(tlb.access(0x0 << 12), Tlb::Outcome::kL1Hit);
}

}  // namespace
}  // namespace bridge
