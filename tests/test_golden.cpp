// Golden-figure regression harness (`ctest -L golden`): every paper figure
// is recomputed at a pinned reduced scale and compared point-by-point
// against the checked-in snapshots under tests/golden/. The sweep cache is
// bypassed so a timing-model change that forgot to bump kSimulatorVersion
// still fails here instead of being masked by stale cached seconds.
//
// After a *deliberate* model change, regenerate the snapshots and commit
// them alongside the change:
//
//   $ ./bridge_golden_tests --regen
//
// The golden directory defaults to the source tree's tests/golden
// (BRIDGE_GOLDEN_DIR compile definition); the environment variable of the
// same name overrides it, which the regen path and CI both use.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/figures.h"
#include "harness/variability.h"
#include "tune/npb_objective.h"

namespace bridge {
namespace {

// Reduced but fixed scale: large enough that every kernel takes a
// non-degenerate path through the timing model, small enough that the
// whole suite recomputes in seconds.
constexpr double kGoldenScale = 0.03;

// Figures are deterministic, so snapshots match to the last bit on the
// machine that wrote them; the loose-ish tolerance only forgives
// libm/architecture drift across hosts while still catching any real
// model change (the negative test injects 5% and must fail at 1e-6).
constexpr double kGoldenRelTol = 1e-6;

SweepOptions goldenSweep() {
  SweepOptions sweep;
  sweep.use_cache = false;  // never trust cached seconds for a regression
  return sweep;
}

// The variability-spread study at golden scale: a lively spec (short
// intervals, low thermal threshold, frequent noise) so every axis shows
// nonzero spread even on the small pinned runs, over two probe kernels
// with opposite memory behaviour. The study is a pure function of this
// spec — seeded replicas, pinned placements — which is what lets a
// *stochastic-looking* figure be a golden snapshot at all.
VariabilityStudyOptions goldenVariability() {
  VariabilityStudyOptions options;
  options.kernels = {"MM", "ED1"};
  options.platforms = {PlatformId::kBananaPiHw};
  options.scale = kGoldenScale;
  options.seed = 5;
  options.replicas = 3;
  options.placements = 3;
  options.hwvar.enabled = true;
  options.hwvar.seed = 5;
  options.hwvar.interval_ops = 600;
  options.hwvar.levels = 4;
  options.hwvar.min_freq_pct = 60;
  options.hwvar.dvfs_shift_pm = 400;
  options.hwvar.dvfs_latency_cycles = 300;
  options.hwvar.therm_heat_pm = 400;
  options.hwvar.therm_cool_pm = 300;
  options.hwvar.therm_threshold = 2000;
  options.hwvar.tick_ops = 300;
  options.hwvar.tick_cycles = 150;
  options.hwvar.preempt_pm = 200;
  options.hwvar.preempt_cycles = 5000;
  return options;
}

struct GoldenCase {
  const char* file;  // snapshot filename under the golden directory
  Figure (*compute)();
};

const GoldenCase kGoldenCases[] = {
    {"fig1.json", [] { return computeFig1(kGoldenScale, goldenSweep()); }},
    {"fig2.json", [] { return computeFig2(kGoldenScale, goldenSweep()); }},
    {"fig3_r1.json",
     [] { return computeFig3(1, kGoldenScale, goldenSweep()); }},
    {"fig3_r4.json",
     [] { return computeFig3(4, kGoldenScale, goldenSweep()); }},
    {"fig4a.json", [] { return computeFig4a(kGoldenScale, goldenSweep()); }},
    {"fig4b.json", [] { return computeFig4b(kGoldenScale, goldenSweep()); }},
    {"fig5.json", [] { return computeFig5(kGoldenScale, goldenSweep()); }},
    {"fig6.json", [] { return computeFig6(kGoldenScale, goldenSweep()); }},
    {"fig7.json", [] { return computeFig7(kGoldenScale, goldenSweep()); }},
    // The NPB objective's error-vector table: objective-definition drift
    // (component order, side averaging, reference extraction) is caught
    // here exactly like timing-model drift in the figures. The 12^3 MG
    // grid keeps the recompute fast; the cache is bypassed like the rest.
    {"npb_errors.json",
     [] {
       NpbObjectiveOptions opts;
       opts.run.scale = kGoldenScale;
       opts.run.mg_top = 12;
       return npbErrorFigure(opts, goldenSweep());
     }},
    // Variability-spread table (DESIGN §5j): seeded replicas and pinned
    // placements make the spread statistics a deterministic function of
    // the study spec, so the harness catches drift in the hwvar decision
    // hashes, the HwVarCore interval arithmetic, or the distribution
    // statistics exactly like timing-model drift in the figures.
    {"variability_spread.json",
     [] { return computeVariabilitySpread(goldenVariability(), goldenSweep()); }},
};

std::string goldenDir() {
  if (const char* env = std::getenv("BRIDGE_GOLDEN_DIR")) return env;
  return BRIDGE_GOLDEN_DIR;
}

std::string goldenPath(const char* file) {
  return goldenDir() + "/" + file;
}

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

class GoldenFigure : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenFigure, MatchesSnapshot) {
  const GoldenCase& c = GetParam();
  std::string json;
  ASSERT_TRUE(readFile(goldenPath(c.file), &json))
      << "missing golden snapshot " << goldenPath(c.file)
      << " — run `bridge_golden_tests --regen` and commit the result";
  Figure golden;
  ASSERT_TRUE(figureFromJson(json, &golden))
      << goldenPath(c.file) << " is not a valid figure snapshot";
  const Figure actual = c.compute();
  std::string diff;
  EXPECT_TRUE(figuresMatch(golden, actual, kGoldenRelTol, &diff))
      << c.file << ": " << diff
      << "\nIf the model change is intentional, regenerate with "
         "`bridge_golden_tests --regen` and commit the snapshots.";
}

INSTANTIATE_TEST_SUITE_P(Figures, GoldenFigure,
                         ::testing::ValuesIn(kGoldenCases),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                           std::string name = info.param.file;
                           return name.substr(0, name.find('.'));
                         });

TEST(GoldenHarness, JsonRoundTripIsExact) {
  Figure fig;
  fig.title = "Figure T \"quoted\"";
  fig.metric = "metric\nwith newline";
  fig.series.push_back(
      {"A", {{"x1", 1.0 / 3.0}, {"x2", 1e-17}, {"x3", 12345.6789012345678}}});
  fig.series.push_back({"empty", {}});
  Figure back;
  ASSERT_TRUE(figureFromJson(figureToJson(fig), &back));
  ASSERT_EQ(back.series.size(), fig.series.size());
  EXPECT_EQ(back.title, fig.title);
  EXPECT_EQ(back.metric, fig.metric);
  for (std::size_t s = 0; s < fig.series.size(); ++s) {
    EXPECT_EQ(back.series[s].label, fig.series[s].label);
    ASSERT_EQ(back.series[s].points.size(), fig.series[s].points.size());
    for (std::size_t p = 0; p < fig.series[s].points.size(); ++p) {
      EXPECT_EQ(back.series[s].points[p].first, fig.series[s].points[p].first);
      // %.17g round-trips doubles exactly — the property the bit-level
      // golden compare relies on.
      EXPECT_EQ(back.series[s].points[p].second,
                fig.series[s].points[p].second);
    }
  }
}

// Negative test: the harness must actually catch regressions. A 5% bump on
// a single point of a real snapshot has to fail the compare and name the
// perturbed point — checked on a figure snapshot and on the variability
// spread table (whose tiny sd/iqr values are exactly where a too-loose
// tolerance would hide drift).
TEST(GoldenHarness, CatchesFivePercentPerturbation) {
  for (const char* file : {"fig1.json", "variability_spread.json"}) {
    std::string json;
    ASSERT_TRUE(readFile(goldenPath(file), &json))
        << "missing " << file << " — run `bridge_golden_tests --regen`";
    Figure golden;
    ASSERT_TRUE(figureFromJson(json, &golden));
    ASSERT_FALSE(golden.series.empty());
    ASSERT_FALSE(golden.series[0].points.empty());

    Figure perturbed = golden;
    auto& victim =
        perturbed.series[0].points[perturbed.series[0].points.size() / 2];
    victim.second *= 1.05;

    std::string diff;
    EXPECT_FALSE(figuresMatch(golden, perturbed, kGoldenRelTol, &diff))
        << file;
    EXPECT_NE(diff.find(victim.first), std::string::npos) << file << ": "
                                                          << diff;

    // And an identical copy passes.
    EXPECT_TRUE(figuresMatch(golden, golden, kGoldenRelTol, nullptr)) << file;
  }
}

// Golden snapshots are produced only by full-fidelity runs: the figure
// harness strips engine-level sampling (with a warning) from whatever
// SweepOptions it is handed, so even a caller who inherited
// BRIDGE_SAMPLING through SweepCli recomputes figures exactly — and the
// recompute matches the checked-in snapshot bit-for-bit.
TEST(GoldenHarness, SamplingIsBypassedWhenComputingFigures) {
  std::string json;
  ASSERT_TRUE(readFile(goldenPath("fig1.json"), &json))
      << "missing fig1.json — run `bridge_golden_tests --regen`";
  Figure golden;
  ASSERT_TRUE(figureFromJson(json, &golden));

  SweepOptions sampled = goldenSweep();
  sampled.sampling.enabled = true;
  sampled.sampling.interval_ops = 2000;
  sampled.sampling.warmup_ops = 100;
  sampled.sampling.measure_ops = 200;
  const Figure via_sampled_options = computeFig1(kGoldenScale, sampled);

  std::string diff;
  EXPECT_TRUE(
      figuresMatch(golden, via_sampled_options, kGoldenRelTol, &diff))
      << "figure computed under sampling-enabled SweepOptions diverged "
         "from the full-fidelity snapshot: "
      << diff;

  // And it is not merely close: it is the same full-fidelity computation.
  const Figure full = computeFig1(kGoldenScale, goldenSweep());
  EXPECT_TRUE(figuresMatch(full, via_sampled_options, 0.0, &diff)) << diff;
}

// Engine-level hardware variability is stripped the same way: paper
// figures model the deterministic machine, so a caller who inherited
// BRIDGE_HWVAR must still recompute the snapshot bit-for-bit. (The
// variability_spread snapshot is unaffected either way — its jobs pin
// their own hwvar.* overrides, which engine-level hwvar never rewrites.)
TEST(GoldenHarness, HwVarIsBypassedWhenComputingFigures) {
  std::string json;
  ASSERT_TRUE(readFile(goldenPath("fig1.json"), &json))
      << "missing fig1.json — run `bridge_golden_tests --regen`";
  Figure golden;
  ASSERT_TRUE(figureFromJson(json, &golden));

  SweepOptions varied = goldenSweep();
  varied.hwvar.enabled = true;
  varied.hwvar.interval_ops = 500;
  varied.hwvar.preempt_pm = 500;
  varied.hwvar.preempt_cycles = 9000;
  varied.hwvar.tick_ops = 200;
  const Figure via_hwvar_options = computeFig1(kGoldenScale, varied);

  std::string diff;
  EXPECT_TRUE(figuresMatch(golden, via_hwvar_options, kGoldenRelTol, &diff))
      << "figure computed under hwvar-enabled SweepOptions diverged from "
         "the deterministic snapshot: "
      << diff;

  const Figure full = computeFig1(kGoldenScale, goldenSweep());
  EXPECT_TRUE(figuresMatch(full, via_hwvar_options, 0.0, &diff)) << diff;
}

TEST(GoldenHarness, ShapeMismatchesAreReported) {
  Figure a;
  a.title = "F";
  a.series.push_back({"S", {{"x", 1.0}}});
  Figure b = a;
  b.series[0].points.emplace_back("y", 2.0);
  std::string diff;
  EXPECT_FALSE(figuresMatch(a, b, 1.0, &diff));
  EXPECT_NE(diff.find("point count"), std::string::npos) << diff;
  b = a;
  b.series[0].label = "other";
  EXPECT_FALSE(figuresMatch(a, b, 1.0, &diff));
  b = a;
  b.title = "G";
  EXPECT_FALSE(figuresMatch(a, b, 1.0, &diff));
}

int regenerate() {
  const std::string dir = goldenDir();
  for (const GoldenCase& c : kGoldenCases) {
    const Figure fig = c.compute();
    const std::string path = dir + "/" + c.file;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    out << figureToJson(fig);
    std::printf("wrote %s (%zu series)\n", path.c_str(), fig.series.size());
  }
  return 0;
}

}  // namespace
}  // namespace bridge

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") return bridge::regenerate();
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
