// Cross-module behaviour: the branch-heavy MicroBench kernels must
// distinguish the Rocket-style (bimodal) and BOOM-style (TAGE) front ends
// in the way the paper's control-flow results rely on.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace bridge {
namespace {

double ipcOf(PlatformId p, const char* kernel) {
  return runMicrobench(p, kernel, /*scale=*/0.2).ipc;
}

TEST(PredictorWorkloads, AlternatingBranchesHurtRocketNotBoom) {
  // Cce alternates every execution: 2-bit bimodal counters thrash, TAGE
  // learns the period-2 history instantly.
  const double rocket_biased = ipcOf(PlatformId::kRocket1, "Cca");
  const double rocket_alt = ipcOf(PlatformId::kRocket1, "Cce");
  const double boom_biased = ipcOf(PlatformId::kLargeBoom, "Cca");
  const double boom_alt = ipcOf(PlatformId::kLargeBoom, "Cce");
  EXPECT_LT(rocket_alt, rocket_biased * 0.8);   // clear penalty on Rocket
  EXPECT_GT(boom_alt, boom_biased * 0.9);       // negligible on BOOM
}

TEST(PredictorWorkloads, RandomControlHurtsEveryone) {
  const double rocket = ipcOf(PlatformId::kRocket1, "CCh");
  const double rocket_biased = ipcOf(PlatformId::kRocket1, "Cca");
  const double boom = ipcOf(PlatformId::kLargeBoom, "CCh");
  const double boom_biased = ipcOf(PlatformId::kLargeBoom, "Cca");
  EXPECT_LT(rocket, rocket_biased);
  EXPECT_LT(boom, boom_biased * 0.75);
}

TEST(PredictorWorkloads, LargeBasicBlocksAmortizeMispredicts) {
  // CCl has the same impossible branches as CCh but 16-instruction blocks.
  EXPECT_GT(ipcOf(PlatformId::kRocket1, "CCl"),
            ipcOf(PlatformId::kRocket1, "CCh") * 1.15);
}

TEST(PredictorWorkloads, DeepRecursionStaysCheapOnBothFrontEnds) {
  // CRd: one call site -> RAS-friendly even beyond its depth.
  EXPECT_GT(ipcOf(PlatformId::kRocket1, "CRd"), 0.5);
  EXPECT_GT(ipcOf(PlatformId::kLargeBoom, "CRd"), 1.0);
}

TEST(PredictorWorkloads, SwitchTargetsThrashBtb) {
  // CS1 (random target each time) must be clearly worse than CS3
  // (target changes every third execution).
  EXPECT_LT(ipcOf(PlatformId::kRocket1, "CS1"),
            ipcOf(PlatformId::kRocket1, "CS3"));
}

TEST(PredictorWorkloads, HeavilyBiasedBranchesNearBiasedPerformance) {
  const double biased = ipcOf(PlatformId::kLargeBoom, "Cca");
  const double mostly = ipcOf(PlatformId::kLargeBoom, "CCm");  // 98% taken
  EXPECT_GT(mostly, biased * 0.6);
}

}  // namespace
}  // namespace bridge
