#include "workloads/ume.h"

#include <gtest/gtest.h>

#include <map>

namespace bridge {
namespace {

std::map<OpClass, std::uint64_t> histogram(TraceSource& t) {
  std::map<OpClass, std::uint64_t> h;
  MicroOp op;
  while (t.next(&op)) ++h[op.cls];
  return h;
}

UmeConfig tiny() {
  UmeConfig cfg;
  cfg.zones_per_dim = 8;
  return cfg;
}

TEST(Ume, HighIntegerAndLoadStoreLowFp) {
  // The paper's characterization: high int ops, high load/store ratio,
  // low floating-point intensity.
  auto t = makeUmeRank(0, 1, tiny());
  const auto h = histogram(*t);
  std::uint64_t loads = h.at(OpClass::kLoad);
  std::uint64_t ints = h.at(OpClass::kIntAlu);
  std::uint64_t fp = 0;
  for (const auto& [cls, n] : h) {
    if (isFpOp(cls)) fp += n;
  }
  EXPECT_GT(loads, fp);      // more memory than FP
  EXPECT_GT(ints + loads, 2 * fp);
}

TEST(Ume, TwoLevelIndirectionPresent) {
  auto t = makeUmeRank(0, 1, tiny());
  MicroOp op;
  std::uint64_t dependent_loads = 0;
  while (t->next(&op)) {
    if (op.cls == OpClass::kLoad && op.src0 != kNoReg) ++dependent_loads;
  }
  EXPECT_GT(dependent_loads, 1000u);
}

TEST(Ume, SingleRankHasNoMpi) {
  auto t = makeUmeRank(0, 1, tiny());
  MicroOp op;
  while (t->next(&op)) EXPECT_NE(op.cls, OpClass::kMpi);
}

TEST(Ume, MultiRankExchangesGhostsAndBarriers) {
  auto t = makeUmeRank(0, 4, tiny());
  MicroOp op;
  std::uint64_t sends = 0, recvs = 0, barriers = 0;
  while (t->next(&op)) {
    if (op.cls != OpClass::kMpi) continue;
    if (op.mpi.kind == MpiKind::kSend) ++sends;
    if (op.mpi.kind == MpiKind::kRecv) ++recvs;
    if (op.mpi.kind == MpiKind::kBarrier) ++barriers;
  }
  EXPECT_EQ(sends, 2u);    // one per ghost exchange
  EXPECT_EQ(recvs, 2u);
  EXPECT_EQ(barriers, 1u);
}

TEST(Ume, WorkScalesDownWithRanks) {
  auto count = [](int nranks) {
    auto t = makeUmeRank(0, nranks, tiny());
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) {
      if (op.cls != OpClass::kMpi) ++n;
    }
    return n;
  };
  EXPECT_NEAR(static_cast<double>(count(1)) / count(4), 4.0, 0.6);
}

TEST(Ume, ZoneCountFollowsConfig) {
  UmeConfig small = tiny();
  UmeConfig large = tiny();
  large.zones_per_dim = 16;
  auto count = [](const UmeConfig& cfg) {
    auto t = makeUmeRank(0, 1, cfg);
    MicroOp op;
    std::uint64_t n = 0;
    while (t->next(&op)) ++n;
    return n;
  };
  EXPECT_NEAR(static_cast<double>(count(large)) / count(small), 8.0, 1.0);
}

}  // namespace
}  // namespace bridge
