#include <gtest/gtest.h>

#include "mpi/mpi.h"
#include "platforms/platforms.h"
#include "trace/kernel.h"

namespace bridge {
namespace {

Soc makeSoc(unsigned cores = 4) {
  return Soc(makePlatform(PlatformId::kRocket1, cores));
}

TraceSourcePtr collectiveProgram(MpiKind kind, std::uint64_t bytes,
                                 int repeats, int skew_iters_per_rank,
                                 int rank) {
  auto seq = std::make_unique<SequenceTrace>("coll");
  if (skew_iters_per_rank > 0) {
    KernelBuilder b("skew");
    b.segment(static_cast<std::uint64_t>(skew_iters_per_rank) *
              static_cast<std::uint64_t>(rank + 1))
        .add(alu(intReg(5), intReg(6)));
    seq->append(b.build());
  }
  for (int i = 0; i < repeats; ++i) {
    seq->appendOp(makeMpiOp(kind, 0, bytes));
  }
  return seq;
}

MpiRunResult runCollective(int ranks, MpiKind kind, std::uint64_t bytes,
                           int repeats = 1, int skew = 0) {
  Soc soc = makeSoc();
  return runMpiProgram(&soc, ranks, [&](int rank, int) {
    return collectiveProgram(kind, bytes, repeats, skew, rank);
  });
}

TEST(Collectives, BarrierCompletesForAllRankCounts) {
  for (const int ranks : {1, 2, 3, 4}) {
    const MpiRunResult r = runCollective(ranks, MpiKind::kBarrier, 0);
    EXPECT_GT(r.cycles, 0u) << ranks;
  }
}

TEST(Collectives, BarrierSynchronizesSkewedRanks) {
  // With heavy skew, every rank's completion is >= the slowest arrival.
  Soc soc = makeSoc();
  std::vector<Cycle> completions;
  const MpiRunResult r = runMpiProgram(&soc, 4, [&](int rank, int) {
    return collectiveProgram(MpiKind::kBarrier, 0, 1, 20000, rank);
  });
  // Rank 3 runs 80k iterations; everyone leaves the barrier after that.
  for (const Cycle c : r.rank_cycles) EXPECT_GT(c, 80000u);
}

TEST(Collectives, AllreduceCostGrowsWithBytes) {
  const MpiRunResult small = runCollective(4, MpiKind::kAllreduce, 8);
  const MpiRunResult large =
      runCollective(4, MpiKind::kAllreduce, 1 << 20);
  EXPECT_GT(large.cycles, small.cycles);
}

TEST(Collectives, AllreduceCostGrowsWithRanks) {
  const MpiRunResult two =
      runCollective(2, MpiKind::kAllreduce, 64 * 1024, 4);
  const MpiRunResult four =
      runCollective(4, MpiKind::kAllreduce, 64 * 1024, 4);
  EXPECT_GT(four.cycles, two.cycles);
}

TEST(Collectives, BcastCompletes) {
  const MpiRunResult r = runCollective(4, MpiKind::kBcast, 4096, 3);
  EXPECT_GT(r.messages, 0u);
}

TEST(Collectives, ReduceCompletes) {
  const MpiRunResult r = runCollective(4, MpiKind::kReduce, 4096, 3);
  EXPECT_GT(r.messages, 0u);
}

TEST(Collectives, AlltoallMovesQuadraticBytes) {
  const MpiRunResult r = runCollective(4, MpiKind::kAlltoall, 8192);
  // Pairwise exchange: n*(n-1) transfers of `bytes`.
  EXPECT_EQ(r.bytes_moved, 12u * 8192u);
}

TEST(Collectives, SingleRankCollectivesAreLocal) {
  const MpiRunResult r = runCollective(1, MpiKind::kAllreduce, 1 << 20);
  EXPECT_EQ(r.messages, 0u);
}

TEST(Collectives, MismatchedKindsThrow) {
  Soc soc = makeSoc();
  EXPECT_THROW(
      runMpiProgram(&soc, 2,
                    [&](int rank, int) {
                      auto seq = std::make_unique<SequenceTrace>("bad");
                      seq->appendOp(makeMpiOp(
                          rank == 0 ? MpiKind::kBarrier : MpiKind::kAllreduce,
                          0, 8));
                      return seq;
                    }),
      std::runtime_error);
}

TEST(Collectives, RepeatedBarriersStayOrdered) {
  const MpiRunResult once = runCollective(4, MpiKind::kBarrier, 0, 1);
  const MpiRunResult many = runCollective(4, MpiKind::kBarrier, 0, 10);
  EXPECT_GT(many.cycles, once.cycles);
}

}  // namespace
}  // namespace bridge
