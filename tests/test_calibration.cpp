// The paper-quantified calibration checks must hold — this is the
// reproduction's headline regression test. Unquantified-bar checks are
// reported by bench/calibration_report but not asserted here.
#include "harness/calibration.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bridge {
namespace {

TEST(Calibration, QuantifiedPaperBandsHold) {
  const auto results = runCalibration(/*scale=*/0.1);
  ASSERT_FALSE(results.empty());
  for (const CalibrationResult& r : results) {
    if (!r.check.quantified) continue;
    EXPECT_TRUE(r.pass) << r.check.id << ": measured " << r.measured
                        << " outside [" << r.check.lo << ", " << r.check.hi
                        << "] — " << r.check.claim;
  }
}

TEST(Calibration, ReportRendersEveryCheck) {
  std::vector<CalibrationResult> fake;
  fake.push_back({{"x.one", "claim one", 0.5, 1.5, true}, 1.0, true});
  fake.push_back({{"x.two", "claim two", 0.5, 1.5, false}, 2.0, false});
  std::ostringstream os;
  const int failed = renderCalibration(os, fake);
  EXPECT_EQ(failed, 1);
  EXPECT_NE(os.str().find("x.one"), std::string::npos);
  EXPECT_NE(os.str().find("MISS"), std::string::npos);
}

}  // namespace
}  // namespace bridge
