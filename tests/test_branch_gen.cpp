#include "trace/branch_gen.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(ConstantBranchGen, AlwaysSame) {
  ConstantBranchGen t(true), f(false);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.next());
    EXPECT_FALSE(f.next());
  }
}

TEST(AlternatingBranchGen, PeriodOne) {
  AlternatingBranchGen g(1);
  EXPECT_TRUE(g.next());
  EXPECT_FALSE(g.next());
  EXPECT_TRUE(g.next());
  EXPECT_FALSE(g.next());
}

TEST(AlternatingBranchGen, PeriodThree) {
  AlternatingBranchGen g(3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(g.next());
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(g.next());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(g.next());
}

TEST(RandomBranchGen, RoughlyCalibrated) {
  RandomBranchGen g(0.8, 5);
  int taken = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (g.next()) ++taken;
  }
  EXPECT_NEAR(static_cast<double>(taken) / n, 0.8, 0.02);
}

TEST(RandomBranchGen, DeterministicPerSeed) {
  RandomBranchGen a(0.5, 9), b(0.5, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(PatternBranchGen, RepeatsPattern) {
  PatternBranchGen g({true, false, false});
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(g.next());
    EXPECT_FALSE(g.next());
    EXPECT_FALSE(g.next());
  }
}

}  // namespace
}  // namespace bridge
