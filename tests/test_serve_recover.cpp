// Crash-recovery tests (DESIGN.md §5k): client deadlines surfacing as
// typed timeouts, the deterministic reconnect backoff, journal replay
// through the normal admission path (cache dedup, retry budget,
// quarantine), client reconnect-and-resubmit under connection chaos, the
// tentpole SIGKILL-the-daemon acceptance (restart + resubmit converges
// bit-identically with zero duplicate executions), worker re-hello across
// a daemon restart, and transport chaos being schedule-independent.
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/worker.h"
#include "sweep/faults.h"
#include "sweep/fingerprint.h"
#include "sweep/job.h"
#include "sweep/sweep.h"

namespace bridge::serve {
namespace {

namespace fs = std::filesystem;

/// Scratch tree per test, same conventions as the elastic suite.
class ServeRecoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("bridge-recover-") + info->name() + "-" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string socketPath(const char* tag = "d") const {
    return (dir_ / (std::string(tag) + ".sock")).string();
  }
  std::string cachePath(const char* tag = "cache") const {
    return (dir_ / tag).string();
  }

  DaemonOptions daemonOptions(const char* socket_tag = "d") const {
    DaemonOptions options;
    options.socket_path = socketPath(socket_tag);
    options.sweep.workers = 4;
    options.sweep.cache_dir = cachePath();
    return options;
  }

  /// Fast, patient reconnect schedule for chaos tests: redial almost
  /// immediately, many times, so recovery dominates the wall clock.
  static ClientOptions chaosClientOptions(std::uint64_t seed = 3) {
    ClientOptions options;
    options.timeout_ms = 30'000;
    options.reconnect.attempts = 100;
    options.reconnect.base_ms = 1;
    options.reconnect.cap_ms = 10;
    options.reconnect.seed = seed;
    return options;
  }

  /// Dial until the daemon answers its hello — construction is a single
  /// attempt by design (reconnect only wraps established clients), so
  /// tests retry it while a forked daemon boots or chaos eats the hello.
  static std::unique_ptr<ServeClient> dialClient(const std::string& socket,
                                                 const ClientOptions& options) {
    for (int spins = 0; spins < 5000; ++spins) {
      try {
        return std::make_unique<ServeClient>(socket, options);
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    return std::make_unique<ServeClient>(socket, options);  // last throw wins
  }

  /// Spawn a real sweep_serve daemon process on `socket` + `cache`. argv
  /// is assembled before fork(); the child only execs.
  static pid_t spawnDaemon(const std::string& socket, const std::string& cache,
                           const char* chaos = nullptr) {
    static std::vector<std::string> args;  // outlives the fork window
    args = {BRIDGE_SWEEP_SERVE_BIN, "--socket", socket, "--cache-dir", cache,
            "--jobs", "1"};
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    if (chaos != nullptr) {
      ::setenv("BRIDGE_CHAOS", chaos, 1);  // inherited by the child
    }
    const pid_t pid = ::fork();
    if (pid != 0) {
      if (chaos != nullptr) ::unsetenv("BRIDGE_CHAOS");
      return pid;
    }
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  static void reapProcess(pid_t pid, int sig = SIGTERM) {
    ::kill(pid, sig);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }

  /// Poll `cond` until true or ~10s (forked daemons compile nothing but do
  /// simulate); returns its final value.
  static bool eventually(const std::function<bool()>& cond) {
    for (int spins = 0; spins < 10000; ++spins) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cond();
  }

  /// Write a crashed daemon's journal: every job admitted, none done.
  static void fabricateCrashJournal(const std::string& cache,
                                    const std::vector<JobSpec>& jobs) {
    AdmissionJournal wal;
    std::string error;
    ASSERT_TRUE(wal.open(cache + "/journal", &error)) << error;
    for (const JobSpec& job : jobs) wal.admit(jobFingerprint(job), job);
    wal.close();
  }

  fs::path dir_;
};

void expectSamePayload(const SweepResult& a, const SweepResult& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.retired, b.result.retired);
  // Bitwise double equality: recovered work must be indistinguishable from
  // uninterrupted work, not merely close.
  EXPECT_EQ(
      std::memcmp(&a.result.seconds, &b.result.seconds, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.result.ipc, &b.result.ipc, sizeof(double)), 0);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.error, b.error);
}

TEST_F(ServeRecoverTest, ClientTimeoutOnSilentServerIsTyped) {
  // A listener that never accepts: connect() completes against the backlog,
  // then the hello never arrives — exactly a wedged daemon.
  const std::string path = socketPath("silent");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);

  ClientOptions options;
  options.timeout_ms = 100;
  options.reconnect.attempts = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(ServeClient(path, options), ServeTimeoutError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // The deadline actually bounds the wait (the legacy behavior blocked
  // forever here); generous upper bound for slow CI.
  EXPECT_GE(elapsed.count(), 90);
  EXPECT_LT(elapsed.count(), 5000);

  // ServeTimeoutError IS a ServeConnectionError: reconnect logic treats an
  // expired deadline like any transport failure.
  EXPECT_THROW(
      { throw ServeTimeoutError("x"); }, ServeConnectionError);
  ::close(listen_fd);
}

TEST_F(ServeRecoverTest, ReconnectBackoffIsDeterministicAndBounded) {
  ReconnectPolicy policy;
  policy.base_ms = 50;
  policy.cap_ms = 2000;
  policy.seed = 42;
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    const std::uint64_t raw =
        std::min<std::uint64_t>(policy.base_ms << attempt, policy.cap_ms);
    const std::uint64_t delay = policy.delayMs(/*epoch=*/0, attempt);
    // Jitter scales by [0.5, 1.5): exponential shape survives, lockstep
    // does not.
    EXPECT_GE(delay, raw / 2) << "attempt " << attempt;
    EXPECT_LE(delay, raw + raw / 2) << "attempt " << attempt;
    // Pure in its inputs: a chaos run replays its own recovery timing.
    EXPECT_EQ(delay, policy.delayMs(0, attempt));
  }
  // Distinct epochs and seeds de-synchronize (deterministically).
  EXPECT_NE(policy.delayMs(0, 3), policy.delayMs(1, 3));
  ReconnectPolicy other = policy;
  other.seed = 43;
  EXPECT_NE(policy.delayMs(0, 3), other.delayMs(0, 3));

  ::setenv("BRIDGE_SERVE_RECONNECT", "attempts=9,base=10,cap=100,seed=77", 1);
  const ReconnectPolicy env = ReconnectPolicy::fromEnv();
  EXPECT_EQ(env.attempts, 9u);
  EXPECT_EQ(env.base_ms, 10u);
  EXPECT_EQ(env.cap_ms, 100u);
  EXPECT_EQ(env.seed, 77u);
  ::setenv("BRIDGE_SERVE_RECONNECT", "attempts=banana", 1);
  const ReconnectPolicy bad = ReconnectPolicy::fromEnv();
  EXPECT_EQ(bad.attempts, ReconnectPolicy{}.attempts);  // malformed -> default
  ::unsetenv("BRIDGE_SERVE_RECONNECT");

  ::setenv("BRIDGE_SERVE_TIMEOUT_MS", "250", 1);
  EXPECT_EQ(ServeClient::defaultTimeoutMs(), 250u);
  ::setenv("BRIDGE_SERVE_TIMEOUT_MS", "junk", 1);
  EXPECT_EQ(ServeClient::defaultTimeoutMs(), ServeClient::kDefaultTimeoutMs);
  ::unsetenv("BRIDGE_SERVE_TIMEOUT_MS");
  EXPECT_EQ(ServeClient::defaultTimeoutMs(), ServeClient::kDefaultTimeoutMs);
}

TEST_F(ServeRecoverTest, DaemonReplaysJournalThroughCacheAndScheduler) {
  const JobSpec cached = microbenchJob(PlatformId::kRocket1, "MM", 0.25, 91);
  const JobSpec orphan = microbenchJob(PlatformId::kRocket1, "MIM", 0.25, 92);

  // The "crashed daemon" had already cached one of its two admitted jobs.
  SweepOptions local_options;
  local_options.workers = 1;
  local_options.cache_dir = cachePath();
  SweepEngine local(local_options);
  ASSERT_TRUE(local.run({cached})[0].ok());
  fabricateCrashJournal(cachePath(), {cached, orphan});

  SweepDaemon daemon(daemonOptions());
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Replay went through the normal admission path: the cached job resolved
  // as a hit (never re-executed), the orphan executed once.
  ASSERT_TRUE(eventually([&] { return daemon.stats().report.total == 2; }));
  ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.journal_replayed, 2u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.report.ok, 2u);

  // A client resubmitting the interrupted sweep converges on cache hits —
  // no third execution, the §5k identity holds.
  ServeClient client(daemon.socketPath());
  const std::vector<SweepResult> results = client.run({cached, orphan});
  ASSERT_EQ(results.size(), 2u);
  for (const SweepResult& r : results) EXPECT_TRUE(r.ok()) << r.error;
  stats = daemon.stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.executed + stats.completed_remote, 1u);  // one unique exec
}

TEST_F(ServeRecoverTest, ReplayRespectsRetryBudgetAndQuarantine) {
  DaemonOptions options = daemonOptions();
  options.sweep.faults = FaultPlan::fromSpec("match=poison");

  JobSpec poison = microbenchJob(PlatformId::kRocket1, "MM", 0.25, 95);
  poison.label = "poison " + poison.label;
  const JobSpec healthy = microbenchJob(PlatformId::kRocket1, "MIM", 0.25, 96);
  fabricateCrashJournal(cachePath(), {poison, healthy});

  {
    // First restart: the replayed poison job burns the full retry budget
    // and is quarantined; the healthy one completes.
    SweepDaemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    ASSERT_TRUE(eventually([&] { return daemon.stats().report.total == 2; }));
    const ServeStats stats = daemon.stats();
    EXPECT_EQ(stats.journal_replayed, 2u);
    EXPECT_EQ(stats.report.ok, 1u);
    EXPECT_EQ(stats.report.failed, 1u);
    EXPECT_EQ(stats.report.quarantined, 0u);  // first exhaustion is kFailed
  }

  // Second crash+restart with the poison job still journaled: quarantine
  // (persisted in the cache tree) blocks re-execution entirely — a
  // poisoned job cannot crash-loop the daemon into re-running it forever.
  fabricateCrashJournal(cachePath(), {poison});
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  ASSERT_TRUE(eventually([&] { return daemon.stats().report.total == 1; }));
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.journal_replayed, 1u);
  EXPECT_EQ(stats.report.quarantined, 1u);
  EXPECT_EQ(stats.executed, 0u);  // never reached the simulator
}

TEST_F(ServeRecoverTest, ClientReconnectDedupesUnderConnectionDrops) {
  DaemonOptions options = daemonOptions();
  // Deterministic connection chaos: many daemon replies are "answered" by
  // closing the socket instead. Decisions are pure hashes of (seed,
  // connection, frame); this seed's schedule passes the first connection's
  // hello, drops its run reply, then lets connection 2 through — so the
  // test exercises exactly one reconnect-and-resubmit cycle, every run.
  options.sweep.faults = FaultPlan::fromSpec("conn-drop=0.7,seed=1");
  SweepDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  std::vector<JobSpec> grid;
  for (unsigned i = 0; i < 4; ++i) {
    grid.push_back(microbenchJob(PlatformId::kRocket1, "MM", 0.25, 110 + i));
  }

  const auto client = dialClient(daemon.socketPath(), chaosClientOptions());
  const std::vector<SweepResult> results = client->run(grid);
  ASSERT_EQ(results.size(), grid.size());
  for (const SweepResult& r : results) EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_GE(client->reconnects(), 1u) << "chaos never dropped a reply";

  // Every resubmitted batch deduped against flights/cache: four unique
  // fingerprints, four executions, no matter how many times the batch was
  // re-sent.
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.executed + stats.completed_remote, 4u);
  EXPECT_GE(stats.requests, 2u);  // the dropped replies forced re-asks
}

TEST_F(ServeRecoverTest, DaemonKill9MidSweepConvergesBitIdentically) {
  // The tentpole acceptance: SIGKILL the daemon process mid-sweep, restart
  // it over the same cache+journal, let the client reconnect and resubmit —
  // the sweep must converge bit-identically to an uninterrupted local run,
  // with every unique fingerprint executed at most once per process epoch
  // and zero duplicate executions after the restart.
  std::vector<JobSpec> grid;
  for (unsigned i = 0; i < 6; ++i) {
    grid.push_back(microbenchJob(PlatformId::kRocket1, "MM", 0.25, 120 + i));
  }

  // Ground truth on a private cache. (Chaos below only delays execution;
  // payloads are untouched.)
  SweepOptions local_options;
  local_options.workers = 2;
  local_options.cache_dir = cachePath("truth-cache");
  SweepEngine local(local_options);
  std::map<std::string, SweepResult> truth;
  for (const SweepResult& r : local.run(grid)) truth.emplace(r.fingerprint, r);

  // Daemon A: one job at a time, every execution slowed by 400ms so the
  // SIGKILL is guaranteed to land mid-sweep with admitted-but-unfinished
  // work in the journal.
  const pid_t a = spawnDaemon(socketPath(), cachePath(),
                              "slow=1.0,slow-ms=400,seed=7");
  ASSERT_GT(a, 0);

  ClientOptions copts;
  copts.timeout_ms = 60'000;
  copts.reconnect.attempts = 60;
  copts.reconnect.base_ms = 20;
  copts.reconnect.cap_ms = 200;
  copts.reconnect.seed = 9;
  const auto client = dialClient(socketPath(), copts);

  std::vector<SweepResult> results;
  std::thread submit([&] { results = client->run(grid); });

  // Kill A once the batch is admitted but before it can finish (6 jobs x
  // 400ms floor at --jobs 1 leaves a wide window).
  {
    const auto probe = dialClient(socketPath(), copts);
    ASSERT_TRUE(eventually([&] { return probe->stats().admitted >= 6; }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  reapProcess(a, SIGKILL);

  // Daemon B: same socket, same cache tree — it replays A's journal, the
  // client's backoff rides out the restart, and the resubmitted batch
  // attaches to replayed flights or hits the cache.
  const pid_t b = spawnDaemon(socketPath(), cachePath());
  ASSERT_GT(b, 0);
  submit.join();

  ASSERT_EQ(results.size(), grid.size());
  for (const SweepResult& r : results) {
    EXPECT_TRUE(r.ok()) << r.label << ": " << r.error;
    ASSERT_TRUE(truth.count(r.fingerprint)) << r.label;
    expectSamePayload(r, truth.at(r.fingerprint));
  }
  EXPECT_GE(client->reconnects(), 1u) << "the kill was never even noticed";

  // B's books: it replayed orphans from A's journal, and nothing ran twice
  // inside B — executed + completed_remote + cache_hits covers every
  // admission, and a full re-run of the sweep adds only cache hits.
  auto stats_client = dialClient(socketPath(), copts);
  stats_client->negotiate("client", "", "recover-probe");
  ServeStats stats = stats_client->stats();
  EXPECT_GE(stats.journal_replayed, 1u) << "A died with an empty journal?";
  const std::uint64_t executed_after_converge =
      stats.executed + stats.completed_remote;
  const std::vector<SweepResult> replay = client->run(grid);
  ASSERT_EQ(replay.size(), grid.size());
  for (const SweepResult& r : replay) expectSamePayload(r, truth.at(r.fingerprint));
  stats = stats_client->stats();
  EXPECT_EQ(stats.executed + stats.completed_remote, executed_after_converge)
      << "resubmission after convergence re-executed cached work";

  reapProcess(b, SIGTERM);
}

TEST_F(ServeRecoverTest, WorkerReHellosAfterDaemonRestart) {
  const pid_t a = spawnDaemon(socketPath(), cachePath());
  ASSERT_GT(a, 0);

  // In-process worker with an aggressive redial schedule: it must survive
  // the daemon's death and re-register against the replacement.
  WorkerOptions wopts;
  wopts.socket_path = socketPath();
  wopts.name = "phoenix";
  wopts.sweep.workers = 2;
  wopts.client.reconnect.attempts = 500;
  wopts.client.reconnect.base_ms = 2;
  wopts.client.reconnect.cap_ms = 20;
  std::unique_ptr<SweepWorker> worker;
  ASSERT_TRUE(eventually([&] {
    try {
      worker = std::make_unique<SweepWorker>(wopts);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  })) << "worker never attached to daemon A";
  WorkerReport wreport;
  std::thread worker_thread([&] { wreport = worker->run(); });

  ClientOptions copts = chaosClientOptions();
  copts.reconnect.base_ms = 10;
  copts.reconnect.cap_ms = 100;
  {
    const auto probe = dialClient(socketPath(), copts);
    probe->negotiate("client", "", "probe-a");
    ASSERT_TRUE(eventually([&] { return probe->stats().workers == 1; }));
  }

  reapProcess(a, SIGKILL);
  const pid_t b = spawnDaemon(socketPath(), cachePath());
  ASSERT_GT(b, 0);

  // The worker re-hellos on its own: B's registry rebuilds without anyone
  // restarting the worker process.
  const auto probe = dialClient(socketPath(), copts);
  probe->negotiate("client", "", "probe-b");
  ASSERT_TRUE(eventually([&] { return probe->stats().workers == 1; }))
      << "worker never re-registered with daemon B";

  // And it still does work: a sweep against B completes remotely.
  const auto client = dialClient(socketPath(), copts);
  const std::vector<SweepResult> results = client->run({
      microbenchJob(PlatformId::kRocket1, "MM", 0.25, 130),
      microbenchJob(PlatformId::kRocket1, "MIM", 0.25, 131),
  });
  ASSERT_EQ(results.size(), 2u);
  for (const SweepResult& r : results) EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_GE(probe->stats().completed_remote, 1u)
      << "re-registered worker never completed a job";

  worker->requestStop();
  worker_thread.join();
  EXPECT_GE(wreport.reconnects, 1u);
  reapProcess(b, SIGTERM);
}

TEST_F(ServeRecoverTest, TransportChaosIsScheduleIndependent) {
  // The §5f guarantee extended to the socket layer: the same chaos plan
  // over the same jobs injects the same faults at --jobs 1 and --jobs 8,
  // and recovery makes the *results* bit-identical to a fault-free run.
  const char* kChaos =
      "conn-drop=0.3,frame-torn=0.3,frame-delay=0.5,frame-delay-ms=5,"
      "hello-torn=0.2,seed=5";
  std::vector<JobSpec> grid;
  for (unsigned i = 0; i < 5; ++i) {
    grid.push_back(microbenchJob(PlatformId::kRocket1, "MM", 0.25, 140 + i));
  }

  SweepOptions local_options;
  local_options.workers = 2;
  local_options.cache_dir = cachePath("truth-cache");
  SweepEngine local(local_options);
  std::map<std::string, SweepResult> truth;
  for (const SweepResult& r : local.run(grid)) truth.emplace(r.fingerprint, r);

  const auto runThrough = [&](const char* tag, unsigned jobs) {
    DaemonOptions options;
    options.socket_path = socketPath(tag);
    options.sweep.cache_dir = cachePath(tag);
    options.sweep.workers = jobs;
    options.sweep.faults = FaultPlan::fromSpec(kChaos);
    SweepDaemon daemon(options);
    std::string error;
    EXPECT_TRUE(daemon.start(&error)) << error;
    const auto client =
        dialClient(daemon.socketPath(), chaosClientOptions(/*seed=*/21));
    return client->run(grid);
  };
  const std::vector<SweepResult> serial = runThrough("serial", 1);
  const std::vector<SweepResult> wide = runThrough("wide", 8);

  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(wide.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(serial[i].ok()) << serial[i].error;
    expectSamePayload(serial[i], wide[i]);
    ASSERT_TRUE(truth.count(serial[i].fingerprint));
    expectSamePayload(serial[i], truth.at(serial[i].fingerprint));
  }
}

}  // namespace
}  // namespace bridge::serve
