#include "sim/stats.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, TracksMoments) {
  Distribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  d.sample(2.0);
  d.sample(4.0);
  d.sample(6.0);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.sum(), 12.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.min(), 2.0);
  EXPECT_DOUBLE_EQ(d.max(), 6.0);
}

TEST(StatRegistry, CounterReferencesAreStable) {
  StatRegistry reg;
  Counter& a = reg.counter("x.a");
  a.add(5);
  // Interleave registrations; the reference must stay valid.
  for (int i = 0; i < 100; ++i) {
    reg.counter("x.b" + std::to_string(i));
  }
  Counter& a2 = reg.counter("x.a");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(a2.value(), 5u);
}

TEST(StatRegistry, CounterValueForUnknownNameIsZero) {
  StatRegistry reg;
  EXPECT_EQ(reg.counterValue("never.registered"), 0u);
  EXPECT_FALSE(reg.hasCounter("never.registered"));
}

TEST(StatRegistry, AllCountersSortedByName) {
  StatRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.counter("c").add(3);
  const auto all = reg.allCounters();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[1].first, "b");
  EXPECT_EQ(all[2].first, "c");
  EXPECT_EQ(all[2].second, 3u);
}

TEST(StatRegistry, ResetAllClearsEverything) {
  StatRegistry reg;
  reg.counter("a").add(7);
  reg.distribution("d").sample(1.0);
  reg.resetAll();
  EXPECT_EQ(reg.counterValue("a"), 0u);
  EXPECT_EQ(reg.distribution("d").count(), 0u);
}

}  // namespace
}  // namespace bridge
