#include "cache/cache.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c({64, 8, ReplacementPolicy::kLru});
  EXPECT_FALSE(c.probe(0x1000));
  const CacheAccess miss = c.access(0x1000, false);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(c.probe(0x1000));
  const CacheAccess hit = c.access(0x1000, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, SameLineDifferentOffsetsHit) {
  SetAssocCache c({64, 8, ReplacementPolicy::kLru});
  c.access(0x1000, false);
  EXPECT_TRUE(c.access(0x1030, false).hit);
  EXPECT_TRUE(c.access(0x103F, false).hit);
}

TEST(SetAssocCache, LruEvictionOrder) {
  SetAssocCache c({1, 2, ReplacementPolicy::kLru});  // 2 lines total
  c.access(0x0, false);
  c.access(0x40, false);
  c.access(0x0, false);    // touch 0x0 -> 0x40 is LRU
  c.access(0x80, false);   // evicts 0x40
  EXPECT_TRUE(c.probe(0x0));
  EXPECT_FALSE(c.probe(0x40));
  EXPECT_TRUE(c.probe(0x80));
}

TEST(SetAssocCache, DirtyVictimReportsWriteback) {
  SetAssocCache c({1, 1, ReplacementPolicy::kLru});
  c.access(0x1000, /*is_store=*/true);
  const CacheAccess a = c.access(0x2000, false);
  EXPECT_TRUE(a.writeback);
  EXPECT_EQ(a.victim_line, 0x1000u);
}

TEST(SetAssocCache, CleanVictimNoWriteback) {
  SetAssocCache c({1, 1, ReplacementPolicy::kLru});
  c.access(0x1000, /*is_store=*/false);
  const CacheAccess a = c.access(0x2000, false);
  EXPECT_FALSE(a.writeback);
}

TEST(SetAssocCache, VictimLineAddressReconstruction) {
  SetAssocCache c({64, 1, ReplacementPolicy::kLru});
  const Addr victim = 0x4000'1040;  // arbitrary set/tag
  c.access(victim, true);
  // Another line in the same set: set index = (0x1040 >> 6) & 63.
  const Addr attacker = victim + 64ull * 64 * 1024;  // same set, new tag
  const CacheAccess a = c.access(attacker, false);
  ASSERT_TRUE(a.writeback);
  EXPECT_EQ(a.victim_line, lineAddr(victim));
}

TEST(SetAssocCache, StoreMarksDirtyOnHitToo) {
  SetAssocCache c({1, 1, ReplacementPolicy::kLru});
  c.access(0x1000, false);
  c.access(0x1000, true);  // hit, makes dirty
  const CacheAccess a = c.access(0x2000, false);
  EXPECT_TRUE(a.writeback);
}

TEST(SetAssocCache, FillCarriesReadyTime) {
  SetAssocCache c({64, 8, ReplacementPolicy::kLru});
  c.fill(0x1000, false, /*ready=*/500);
  EXPECT_EQ(c.touch(0x1000, false), 500u);
}

TEST(SetAssocCache, RefillKeepsEarlierReady) {
  SetAssocCache c({64, 8, ReplacementPolicy::kLru});
  c.fill(0x1000, false, 500);
  const CacheAccess again = c.fill(0x1000, true, 900);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(again.ready_at, 500u);
}

TEST(SetAssocCache, InvalidateReportsDirtiness) {
  SetAssocCache c({64, 8, ReplacementPolicy::kLru});
  c.access(0x1000, true);
  c.access(0x2000, false);
  EXPECT_TRUE(c.invalidate(0x1000));
  EXPECT_FALSE(c.invalidate(0x2000));
  EXPECT_FALSE(c.invalidate(0x3000));
  EXPECT_FALSE(c.probe(0x1000));
}

TEST(SetAssocCache, GeometrySizeBytes) {
  CacheGeometry g{64, 8, ReplacementPolicy::kLru};
  EXPECT_EQ(g.sizeBytes(), 32u * 1024);  // the Rocket L1
  CacheGeometry big{16384, 16, ReplacementPolicy::kLru};
  EXPECT_EQ(big.sizeBytes(), 16u * 1024 * 1024);  // one LLC slice
}

TEST(SetAssocCache, RandomReplacementStaysWithinSet) {
  SetAssocCache c({2, 2, ReplacementPolicy::kRandom}, /*seed=*/99);
  // Fill set 0 (even line indices) and set 1 (odd).
  c.access(0x000, false);
  c.access(0x100, false);
  c.access(0x040, false);  // set 1
  // Overflow set 0: one of {0x000, 0x100} evicted, set 1 untouched.
  c.access(0x200, false);
  EXPECT_TRUE(c.probe(0x040));
  const int set0_present =
      (c.probe(0x000) ? 1 : 0) + (c.probe(0x100) ? 1 : 0) +
      (c.probe(0x200) ? 1 : 0);
  EXPECT_EQ(set0_present, 2);
}

TEST(SetAssocCache, ConflictStrideThrashesSingleSet) {
  // 64 sets x 8 ways: 8 KiB stride maps everything to set 0.
  SetAssocCache c({64, 8, ReplacementPolicy::kLru});
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 16; ++i) {
      c.access(static_cast<Addr>(i) * 8192, false);
    }
  }
  // 16 lines in an 8-way set: steady-state misses (LRU worst case).
  EXPECT_GT(c.missRate(), 0.9);
}

}  // namespace
}  // namespace bridge
