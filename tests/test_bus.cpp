#include "cache/bus.h"

#include <gtest/gtest.h>

namespace bridge {
namespace {

TEST(SystemBus, BeatsPerLineScalesWithWidth) {
  EXPECT_EQ(SystemBus({64, 1}).beatsPerLine(), 8u);
  EXPECT_EQ(SystemBus({128, 1}).beatsPerLine(), 4u);
  EXPECT_EQ(SystemBus({256, 1}).beatsPerLine(), 2u);
}

TEST(SystemBus, TransferOccupiesBeats) {
  SystemBus bus({128, 1});
  const Cycle done = bus.transferLine(100);
  EXPECT_EQ(done, 104u);
  EXPECT_EQ(bus.busyCycles(), 4u);
}

TEST(SystemBus, BackToBackTransfersSerialize) {
  SystemBus bus({64, 1});
  const Cycle a = bus.transferLine(0);
  const Cycle b = bus.transferLine(0);
  EXPECT_EQ(a, 8u);
  EXPECT_EQ(b, 16u);
}

TEST(SystemBus, WiderBusFinishesStreamsSooner) {
  SystemBus narrow({64, 1});
  SystemBus wide({128, 1});
  Cycle n = 0, w = 0;
  for (int i = 0; i < 100; ++i) {
    n = narrow.transferLine(0);
    w = wide.transferLine(0);
  }
  EXPECT_EQ(n, 2 * w);
}

TEST(SystemBus, RequestBeatCheaperThanLine) {
  SystemBus bus({128, 1});
  const Cycle req = bus.sendRequest(0);
  EXPECT_EQ(req, 1u);
  const Cycle line = bus.transferLine(req);
  EXPECT_EQ(line, 5u);
}

TEST(SystemBus, IdleGapsDontAccumulateBusy) {
  SystemBus bus({128, 1});
  bus.transferLine(0);
  bus.transferLine(1000);
  EXPECT_EQ(bus.busyCycles(), 8u);
  EXPECT_EQ(bus.nextFree(), 1004u);
}

}  // namespace
}  // namespace bridge
