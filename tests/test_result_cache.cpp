#include "sweep/result_cache.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sweep/fingerprint.h"
#include "sweep/job.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("bridge-cache-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static CachedRun sampleRun() {
    CachedRun run;
    run.result.cycles = 123456;
    run.result.seconds = 0.0771625;
    run.result.retired = 98765;
    run.result.ipc = 0.8;
    run.result.messages = 12;
    run.stats = {{"l1d.misses", 321}, {"rob.stalls", 7}};
    run.description = "version|config|workload";
    return run;
  }

  fs::path dir_;
};

TEST_F(ResultCacheTest, StoreThenLookupRoundTrips) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("deadbeef00000001", sampleRun()));

  const auto hit = cache.lookup("deadbeef00000001");
  ASSERT_TRUE(hit.has_value());
  const CachedRun want = sampleRun();
  EXPECT_EQ(hit->result.cycles, want.result.cycles);
  EXPECT_DOUBLE_EQ(hit->result.seconds, want.result.seconds);
  EXPECT_EQ(hit->result.retired, want.result.retired);
  EXPECT_DOUBLE_EQ(hit->result.ipc, want.result.ipc);
  EXPECT_EQ(hit->result.messages, want.result.messages);
  EXPECT_EQ(hit->stats, want.stats);
  EXPECT_EQ(hit->description, want.description);
}

TEST_F(ResultCacheTest, UnknownKeyIsAMiss) {
  ResultCache cache(dir_.string());
  EXPECT_FALSE(cache.lookup("0000000000000000").has_value());
}

TEST_F(ResultCacheTest, MalformedEntryIsAMiss) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("deadbeef00000002", sampleRun()));
  std::ofstream(cache.entryPath("deadbeef00000002"), std::ios::trunc)
      << "{ not json";
  EXPECT_FALSE(cache.lookup("deadbeef00000002").has_value());
}

TEST_F(ResultCacheTest, EntriesLandInFingerprintPrefixShards) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("deadbeef00000001", sampleRun()));
  ASSERT_TRUE(cache.store("a000000000000001", sampleRun()));

  EXPECT_EQ(ResultCache::shardFor("deadbeef00000001"), "de");
  EXPECT_TRUE(fs::exists(dir_ / "de" / "deadbeef00000001.json"));
  EXPECT_TRUE(fs::exists(dir_ / "a0" / "a000000000000001.json"));
  EXPECT_FALSE(fs::exists(dir_ / "deadbeef00000001.json"));  // not flat

  // Odd keys from tests or tools are sanitized, never path components.
  EXPECT_EQ(ResultCache::shardFor("x"), "x0");
  EXPECT_EQ(ResultCache::shardFor("../escape"), "__");
  EXPECT_EQ(ResultCache::shardFor(""), "00");
}

TEST_F(ResultCacheTest, LegacyFlatEntryIsStillServed) {
  ResultCache cache(dir_.string());
  // An entry written by a pre-shard version sits at the directory root.
  fs::create_directories(dir_);
  std::ofstream(dir_ / "feedface00000001.json")
      << sealCacheEntry(cachedRunToJson(sampleRun()));

  const auto hit = cache.lookup("feedface00000001");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result.cycles, sampleRun().result.cycles);

  // A sharded entry shadows the flat one: the shard is authoritative.
  CachedRun newer = sampleRun();
  newer.result.cycles = 999;
  ASSERT_TRUE(cache.store("feedface00000001", newer));
  EXPECT_EQ(cache.lookup("feedface00000001")->result.cycles, 999u);
}

TEST_F(ResultCacheTest, ClearEvictsEverything) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("a000000000000001", sampleRun()));
  ASSERT_TRUE(cache.store("a000000000000002", sampleRun()));
  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_FALSE(cache.lookup("a000000000000001").has_value());
  EXPECT_FALSE(cache.lookup("a000000000000002").has_value());
}

TEST_F(ResultCacheTest, JsonRoundTripPreservesExactDoubles) {
  CachedRun run = sampleRun();
  run.result.seconds = 0.1 + 0.2;  // not exactly representable as text
  const auto back = cachedRunFromJson(cachedRunToJson(run));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->result.seconds, run.result.seconds);  // bit-exact
  EXPECT_EQ(back->result.ipc, run.result.ipc);
}

TEST_F(ResultCacheTest, SealedEntryRoundTripsThroughVerify) {
  const std::string json = cachedRunToJson(sampleRun());
  const std::string sealed = sealCacheEntry(json);
  EXPECT_NE(sealed.find("#bridge-cache-v2 crc="), std::string::npos);

  std::string body;
  std::string reason;
  ASSERT_TRUE(verifyCacheEntry(sealed, &body, &reason)) << reason;
  EXPECT_EQ(body, json);
}

TEST_F(ResultCacheTest, TruncationIsDetectedByTheFooter) {
  const std::string sealed = sealCacheEntry(cachedRunToJson(sampleRun()));
  std::string reason;

  // Cut inside the body: the length check catches it even when the footer
  // itself survives (simulating a torn write of the first filesystem block).
  std::string cut_body = sealed;
  const std::size_t footer = cut_body.rfind("#bridge-cache-v2");
  ASSERT_NE(footer, std::string::npos);
  cut_body.erase(footer / 2, 8);
  EXPECT_FALSE(verifyCacheEntry(cut_body, nullptr, &reason));

  // Cut the tail off: the footer disappears entirely.
  const std::string cut_tail = sealed.substr(0, sealed.size() / 2);
  EXPECT_FALSE(verifyCacheEntry(cut_tail, nullptr, &reason));
  EXPECT_NE(reason.find("missing footer"), std::string::npos);

  // Empty file (open() succeeded, write never happened).
  EXPECT_FALSE(verifyCacheEntry("", nullptr, &reason));
}

TEST_F(ResultCacheTest, BitFlipIsDetectedByTheChecksum) {
  const std::string sealed = sealCacheEntry(cachedRunToJson(sampleRun()));
  for (const std::size_t at : {std::size_t{0}, sealed.size() / 3}) {
    std::string flipped = sealed;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x01);
    std::string reason;
    EXPECT_FALSE(verifyCacheEntry(flipped, nullptr, &reason));
    EXPECT_EQ(reason, "checksum mismatch");
  }
}

TEST_F(ResultCacheTest, TrailingGarbageAndWrongVersionAreRejected) {
  const std::string sealed = sealCacheEntry(cachedRunToJson(sampleRun()));
  std::string reason;
  EXPECT_FALSE(verifyCacheEntry(sealed + "x", nullptr, &reason));
  EXPECT_EQ(reason, "trailing garbage");

  // A future-version footer must not parse as v2.
  std::string v3 = sealed;
  const std::size_t at = v3.rfind("cache-v2");
  v3.replace(at, 8, "cache-v3");
  EXPECT_FALSE(verifyCacheEntry(v3, nullptr, &reason));
}

TEST_F(ResultCacheTest, CorruptEntryIsDeletedAndBecomesAMiss) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("deadbeef00000003", sampleRun()));
  const fs::path file = cache.entryPath("deadbeef00000003");

  // Flip one byte in place (keeps the file size, so only the checksum can
  // catch it).
  std::string bytes;
  {
    std::ifstream in(file);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() / 4] ^= 0x10;
  std::ofstream(file, std::ios::trunc) << bytes;

  EXPECT_FALSE(cache.lookup("deadbeef00000003").has_value());
  EXPECT_FALSE(fs::exists(file));  // deleted, so the next store recomputes

  // The recomputed entry is served again.
  ASSERT_TRUE(cache.store("deadbeef00000003", sampleRun()));
  EXPECT_TRUE(cache.lookup("deadbeef00000003").has_value());
}

TEST_F(ResultCacheTest, FsckReportsAndRepairs) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("feed000000000001", sampleRun()));
  ASSERT_TRUE(cache.store("feed000000000002", sampleRun()));

  // One truncated entry, one stale temp file from an "interrupted" writer.
  const fs::path corrupt = cache.entryPath("feed000000000002");
  std::string bytes;
  {
    std::ifstream in(corrupt);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  std::ofstream(corrupt, std::ios::trunc) << bytes.substr(0, bytes.size() / 2);
  std::ofstream(dir_ / "feed000000000003.json.tmp.123.0") << "partial";

  const CacheFsck report = cache.fsck(/*repair=*/false);
  EXPECT_EQ(report.scanned, 2u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_EQ(report.stale_tmp, 1u);
  // Both writers exited, so their shard lock file is unheld litter.
  EXPECT_EQ(report.stale_lock, 1u);
  EXPECT_EQ(report.removed, 0u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.bad_files.size(), 3u);  // corrupt + stale tmp + lock
  EXPECT_TRUE(fs::exists(corrupt));        // report mode never deletes

  // Per-shard breakdown: the root ("/") holds the stale temp, shard "fe"
  // holds both entries and the lock.
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].shard, "/");
  EXPECT_EQ(report.shards[0].stale_tmp, 1u);
  EXPECT_EQ(report.shards[1].shard, "fe");
  EXPECT_EQ(report.shards[1].scanned, 2u);
  EXPECT_EQ(report.shards[1].corrupt, 1u);
  EXPECT_EQ(report.shards[1].stale_lock, 1u);

  const CacheFsck repaired = cache.fsck(/*repair=*/true);
  EXPECT_EQ(repaired.corrupt, 1u);
  EXPECT_EQ(repaired.stale_tmp, 1u);
  EXPECT_EQ(repaired.removed, 3u);
  EXPECT_FALSE(fs::exists(corrupt));
  EXPECT_FALSE(fs::exists(dir_ / "feed000000000003.json.tmp.123.0"));
  EXPECT_FALSE(fs::exists(dir_ / "fe" / ".lock"));

  // After repair: clean, and the good entry survived.
  EXPECT_TRUE(cache.fsck(false).clean());
  EXPECT_TRUE(cache.lookup("feed000000000001").has_value());
  EXPECT_FALSE(cache.lookup("feed000000000002").has_value());
}

TEST_F(ResultCacheTest, UnheldLockFilesAreLitterNotDefects) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("ab00000000000001", sampleRun()));
  ASSERT_TRUE(fs::exists(dir_ / "ab" / ".lock"));

  // Nobody holds the flock, so the file is reported stale — but the cache
  // is still *clean*: lock litter never fails an audit on its own.
  const CacheFsck report = cache.fsck(/*repair=*/false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.stale_lock, 1u);
  EXPECT_TRUE(fs::exists(dir_ / "ab" / ".lock"));

  const CacheFsck repaired = cache.fsck(/*repair=*/true);
  EXPECT_EQ(repaired.stale_lock, 1u);
  EXPECT_EQ(repaired.removed, 1u);
  EXPECT_FALSE(fs::exists(dir_ / "ab" / ".lock"));

  // The entry itself is untouched, and the next store recreates the lock.
  EXPECT_TRUE(cache.lookup("ab00000000000001").has_value());
  ASSERT_TRUE(cache.store("ab00000000000002", sampleRun()));
  EXPECT_TRUE(fs::exists(dir_ / "ab" / ".lock"));
}

TEST_F(ResultCacheTest, ConcurrentWritersOnOneTreeAllLand) {
  // Model several daemon/worker *processes* sharing one cache tree: each
  // thread gets its own ResultCache instance (no shared in-process state),
  // all hammering overlapping keys across a handful of shards.
  constexpr int kWriters = 8;
  constexpr int kKeys = 24;
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; ++i) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%02x%014x", i % 5, i);
    keys.push_back(buf);
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, &keys] {
      ResultCache mine(dir_.string());
      for (const std::string& key : keys) {
        EXPECT_TRUE(mine.store(key, sampleRun()));
      }
    });
  }
  for (std::thread& t : writers) t.join();

  ResultCache cache(dir_.string());
  for (const std::string& key : keys) {
    ASSERT_TRUE(cache.lookup(key).has_value()) << key;
  }
  const CacheFsck report = cache.fsck(/*repair=*/false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.ok, static_cast<std::size_t>(kKeys));
}

TEST(JobFingerprintTest, PlatformParamOverrideChangesFingerprint) {
  JobSpec base = npbJob(PlatformId::kMilkVSim, NpbBenchmark::kCG, 1);
  JobSpec tuned = base;
  tuned.overrides.set("l1d.sets", "256");
  EXPECT_NE(jobFingerprint(base), jobFingerprint(tuned));
}

TEST(JobFingerprintTest, SeedAndScaleChangeFingerprint) {
  const JobSpec base = microbenchJob(PlatformId::kRocket1, "MM", 0.2, 1);
  EXPECT_NE(jobFingerprint(base),
            jobFingerprint(microbenchJob(PlatformId::kRocket1, "MM", 0.2, 2)));
  EXPECT_NE(jobFingerprint(base),
            jobFingerprint(microbenchJob(PlatformId::kRocket1, "MM", 0.3, 1)));
}

TEST(JobFingerprintTest, LabelIsNotPartOfTheFingerprint) {
  JobSpec a = microbenchJob(PlatformId::kRocket1, "MM", 0.2);
  JobSpec b = a;
  b.label = "a completely different display name";
  EXPECT_EQ(jobFingerprint(a), jobFingerprint(b));
}

TEST(JobFingerprintTest, StableAcrossProcessRestarts) {
  // The cache persists across runs, so the hash must be a function of the
  // input text alone (FNV-1a), not of pointer values or iteration order.
  EXPECT_EQ(fnv1a64("bridge"), fnv1a64("bridge"));
  const JobSpec job = microbenchJob(PlatformId::kBananaPiSim, "STL2", 0.15);
  EXPECT_EQ(jobFingerprint(job), jobFingerprint(job));
  EXPECT_EQ(jobFingerprint(job).size(), 16u);
}

}  // namespace
}  // namespace bridge
