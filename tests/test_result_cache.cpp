#include "sweep/result_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "sweep/fingerprint.h"
#include "sweep/job.h"

namespace bridge {
namespace {

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("bridge-cache-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static CachedRun sampleRun() {
    CachedRun run;
    run.result.cycles = 123456;
    run.result.seconds = 0.0771625;
    run.result.retired = 98765;
    run.result.ipc = 0.8;
    run.result.messages = 12;
    run.stats = {{"l1d.misses", 321}, {"rob.stalls", 7}};
    run.description = "version|config|workload";
    return run;
  }

  fs::path dir_;
};

TEST_F(ResultCacheTest, StoreThenLookupRoundTrips) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("deadbeef00000001", sampleRun()));

  const auto hit = cache.lookup("deadbeef00000001");
  ASSERT_TRUE(hit.has_value());
  const CachedRun want = sampleRun();
  EXPECT_EQ(hit->result.cycles, want.result.cycles);
  EXPECT_DOUBLE_EQ(hit->result.seconds, want.result.seconds);
  EXPECT_EQ(hit->result.retired, want.result.retired);
  EXPECT_DOUBLE_EQ(hit->result.ipc, want.result.ipc);
  EXPECT_EQ(hit->result.messages, want.result.messages);
  EXPECT_EQ(hit->stats, want.stats);
  EXPECT_EQ(hit->description, want.description);
}

TEST_F(ResultCacheTest, UnknownKeyIsAMiss) {
  ResultCache cache(dir_.string());
  EXPECT_FALSE(cache.lookup("0000000000000000").has_value());
}

TEST_F(ResultCacheTest, MalformedEntryIsAMiss) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("deadbeef00000002", sampleRun()));
  std::ofstream(dir_ / "deadbeef00000002.json") << "{ not json";
  EXPECT_FALSE(cache.lookup("deadbeef00000002").has_value());
}

TEST_F(ResultCacheTest, ClearEvictsEverything) {
  ResultCache cache(dir_.string());
  ASSERT_TRUE(cache.store("a000000000000001", sampleRun()));
  ASSERT_TRUE(cache.store("a000000000000002", sampleRun()));
  EXPECT_EQ(cache.clear(), 2u);
  EXPECT_FALSE(cache.lookup("a000000000000001").has_value());
  EXPECT_FALSE(cache.lookup("a000000000000002").has_value());
}

TEST_F(ResultCacheTest, JsonRoundTripPreservesExactDoubles) {
  CachedRun run = sampleRun();
  run.result.seconds = 0.1 + 0.2;  // not exactly representable as text
  const auto back = cachedRunFromJson(cachedRunToJson(run));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->result.seconds, run.result.seconds);  // bit-exact
  EXPECT_EQ(back->result.ipc, run.result.ipc);
}

TEST(JobFingerprintTest, PlatformParamOverrideChangesFingerprint) {
  JobSpec base = npbJob(PlatformId::kMilkVSim, NpbBenchmark::kCG, 1);
  JobSpec tuned = base;
  tuned.overrides.set("l1d.sets", "256");
  EXPECT_NE(jobFingerprint(base), jobFingerprint(tuned));
}

TEST(JobFingerprintTest, SeedAndScaleChangeFingerprint) {
  const JobSpec base = microbenchJob(PlatformId::kRocket1, "MM", 0.2, 1);
  EXPECT_NE(jobFingerprint(base),
            jobFingerprint(microbenchJob(PlatformId::kRocket1, "MM", 0.2, 2)));
  EXPECT_NE(jobFingerprint(base),
            jobFingerprint(microbenchJob(PlatformId::kRocket1, "MM", 0.3, 1)));
}

TEST(JobFingerprintTest, LabelIsNotPartOfTheFingerprint) {
  JobSpec a = microbenchJob(PlatformId::kRocket1, "MM", 0.2);
  JobSpec b = a;
  b.label = "a completely different display name";
  EXPECT_EQ(jobFingerprint(a), jobFingerprint(b));
}

TEST(JobFingerprintTest, StableAcrossProcessRestarts) {
  // The cache persists across runs, so the hash must be a function of the
  // input text alone (FNV-1a), not of pointer values or iteration order.
  EXPECT_EQ(fnv1a64("bridge"), fnv1a64("bridge"));
  const JobSpec job = microbenchJob(PlatformId::kBananaPiSim, "STL2", 0.15);
  EXPECT_EQ(jobFingerprint(job), jobFingerprint(job));
  EXPECT_EQ(jobFingerprint(job).size(), 16u);
}

}  // namespace
}  // namespace bridge
