// Fuzz-style robustness: random kernel programs (random op mixes, address
// generators, branch behaviours, segment structures) must run to completion
// on every platform with monotone clocks and bounded IPC — no assertion
// failures, no hangs, no impossible timing.
#include <gtest/gtest.h>

#include "platforms/platforms.h"
#include "sim/rng.h"
#include "soc/soc.h"
#include "trace/kernel.h"

namespace bridge {
namespace {

TraceSourcePtr randomKernel(std::uint64_t seed) {
  SplitMix64 sm(seed);
  Xorshift64Star rng(sm.next());
  KernelBuilder b("fuzz." + std::to_string(seed));

  // A pool of generators shared by the segments.
  std::vector<int> addr_gens;
  for (int i = 0; i < 4; ++i) {
    const Addr base = 0x1000'0000 + i * 0x0100'0000;
    switch (rng.nextBelow(4)) {
      case 0:
        addr_gens.push_back(b.addrGen(std::make_unique<StrideGen>(
            base, 8 << rng.nextBelow(4), 4096 << rng.nextBelow(8))));
        break;
      case 1:
        addr_gens.push_back(b.addrGen(std::make_unique<RandomGen>(
            base, 4096 << rng.nextBelow(10), 8, sm.next())));
        break;
      case 2:
        addr_gens.push_back(b.addrGen(std::make_unique<ChaseGen>(
            base, 64 << rng.nextBelow(6), 64, sm.next())));
        break;
      default:
        addr_gens.push_back(b.addrGen(std::make_unique<ConflictGen>(
            base, 8192, 2 + static_cast<unsigned>(rng.nextBelow(30)))));
        break;
    }
  }
  std::vector<int> branch_gens;
  branch_gens.push_back(
      b.branchGen(std::make_unique<RandomBranchGen>(rng.nextDouble(),
                                                    sm.next())));
  branch_gens.push_back(b.branchGen(std::make_unique<AlternatingBranchGen>(
      1 + static_cast<unsigned>(rng.nextBelow(5)))));

  const unsigned num_segments = 1 + static_cast<unsigned>(rng.nextBelow(4));
  for (unsigned si = 0; si < num_segments; ++si) {
    Segment& seg = b.segment(100 + rng.nextBelow(2000));
    if (rng.nextBool(0.2)) seg.code_footprint = 4096 << rng.nextBelow(6);
    const unsigned body = 1 + static_cast<unsigned>(rng.nextBelow(12));
    unsigned calls = 0;
    for (unsigned i = 0; i < body; ++i) {
      const Reg dst = intReg(5 + static_cast<unsigned>(rng.nextBelow(16)));
      const Reg src = intReg(5 + static_cast<unsigned>(rng.nextBelow(16)));
      switch (rng.nextBelow(10)) {
        case 0:
          seg.add(load(dst, addr_gens[rng.nextBelow(addr_gens.size())],
                       rng.nextBool(0.3) ? src : kNoReg));
          break;
        case 1:
          seg.add(store(addr_gens[rng.nextBelow(addr_gens.size())], src));
          break;
        case 2:
          seg.add(branch(branch_gens[rng.nextBelow(branch_gens.size())],
                         src));
          break;
        case 3:
          seg.add(fma(fpReg(1 + static_cast<unsigned>(rng.nextBelow(8))),
                      fpReg(1), fpReg(2), fpReg(3)));
          break;
        case 4:
          seg.add(mul(dst, src, intReg(20)));
          break;
        case 5:
          seg.add(idiv(dst, src, intReg(21)));
          break;
        case 6:
          seg.add(indirectJump(
              1 + static_cast<unsigned>(rng.nextBelow(8)),
              static_cast<unsigned>(rng.nextBelow(4))));
          break;
        case 7:
          // Balanced call/ret pair (kept nested within the body).
          seg.add(call());
          ++calls;
          break;
        default:
          seg.add(alu(dst, src));
          break;
      }
    }
    for (unsigned c = 0; c < calls; ++c) seg.add(ret());
  }
  return b.build();
}

class FuzzKernels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzKernels, RunsEverywhereWithSaneTiming) {
  const std::uint64_t seed = GetParam();
  for (const PlatformId p :
       {PlatformId::kBananaPiSim, PlatformId::kFastBananaPiSim,
        PlatformId::kMilkVSim, PlatformId::kMilkVHw}) {
    Soc soc(makePlatform(p, 1));
    auto trace = randomKernel(seed);
    const Cycle cycles = soc.runTrace(*trace);
    const std::uint64_t retired = soc.core(0).retired();
    ASSERT_GT(retired, 0u) << platformName(p);
    EXPECT_GT(cycles, 0u) << platformName(p);
    // IPC sanity: no core is wider than 4.
    EXPECT_LE(static_cast<double>(retired) / cycles, 4.0)
        << platformName(p);
    // And no op can take more than ~10k cycles on average even in the
    // most pathological DRAM-bound kernel.
    EXPECT_LT(cycles, retired * 10000u) << platformName(p);
  }
}

TEST_P(FuzzKernels, DeterministicAcrossRuns) {
  const std::uint64_t seed = GetParam();
  auto run = [&] {
    Soc soc(makePlatform(PlatformId::kMilkVSim, 1));
    auto trace = randomKernel(seed);
    return soc.runTrace(*trace);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernels,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace bridge
